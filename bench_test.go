// Benchmark harness reproducing the paper's evaluation. Each benchmark
// family corresponds to one table or figure of the experiment index in
// DESIGN.md; EXPERIMENTS.md records the measured results next to the
// paper's qualitative claims.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package modpeg

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"modpeg/internal/codegen/gencalc"
	"modpeg/internal/codegen/genjson"
	"modpeg/internal/core"
	"modpeg/internal/grammars"
	"modpeg/internal/peg"
	"modpeg/internal/telemetry"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

// mustProgram composes top, applies topts, compiles with eopts.
func mustProgram(b *testing.B, top string, topts transform.Options, eopts vm.Options) *vm.Program {
	b.Helper()
	g, err := grammars.Compose(top)
	if err != nil {
		b.Fatal(err)
	}
	tg, _, err := transform.Apply(g, topts)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := vm.Compile(tg, eopts)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func benchParse(b *testing.B, prog *vm.Program, input string) {
	src := text.NewSource("bench", input)
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := prog.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- Table 1
//
// Grammar modularity statistics: how large each composed grammar is and
// how much of it the optimizer strips. The "benchmark" measures full
// composition time (load + parse modules + resolve + modify); the counts
// are attached as custom metrics so `-bench Table1` prints the table.

func BenchmarkTable1GrammarStats(b *testing.B) {
	for _, top := range grammars.TopModules() {
		b.Run(top, func(b *testing.B) {
			var g *peg.Grammar
			var err error
			for i := 0; i < b.N; i++ {
				g, err = grammars.Compose(top)
				if err != nil {
					b.Fatal(err)
				}
			}
			s := peg.StatsOfGrammar(g)
			tg, _, err := transform.Apply(g, transform.Defaults())
			if err != nil {
				b.Fatal(err)
			}
			so := peg.StatsOfGrammar(tg)
			b.ReportMetric(float64(s.Modules), "modules")
			b.ReportMetric(float64(s.Productions), "prods")
			b.ReportMetric(float64(s.Alternatives), "alts")
			b.ReportMetric(float64(so.Productions), "prods-opt")
			b.ReportMetric(float64(so.Transient), "transient-opt")
		})
	}
}

// ---------------------------------------------------------------- Table 2
//
// Optimization impact, leave-one-out: the full pipeline with each pass
// (or engine feature) disabled in turn, parsing the Java-subset corpus.
// The paper's corresponding table shows which optimizations carry the
// speedup; transient marking and engine features dominate here too.

func BenchmarkTable2Ablation(b *testing.B) {
	input := workload.JavaProgram(workload.Config{Seed: 42, Size: 40 * 1024})

	type cfg struct {
		name  string
		topts transform.Options
		eopts vm.Options
	}
	all := transform.Defaults()
	configs := []cfg{
		{"all-on", all, vm.Optimized()},
		{"no-transient", func() transform.Options { o := all; o.MarkTransient = false; return o }(), vm.Optimized()},
		{"no-inline", func() transform.Options { o := all; o.Inline = false; return o }(), vm.Optimized()},
		{"no-fold", func() transform.Options { o := all; o.FoldPrefixes = false; o.MergeClasses = false; return o }(), vm.Optimized()},
		{"no-deadcode", func() transform.Options { o := all; o.DeadCode = false; return o }(), vm.Optimized()},
		{"no-dispatch", all, func() vm.Options { o := vm.Optimized(); o.Dispatch = false; return o }()},
		{"no-chunks", all, func() vm.Options { o := vm.Optimized(); o.ChunkedMemo = false; return o }()},
		{"expand-repetitions", func() transform.Options { o := all; o.ExpandRepetitions = true; return o }(), vm.Optimized()},
		{"all-off(naive)", transform.Baseline(), vm.NaivePackrat()},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			prog := mustProgram(b, grammars.JavaCore, c.topts, c.eopts)
			_, stats, err := prog.Parse(text.NewSource("probe", input))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.MemoBytes)/float64(len(input)), "memoB/inputB")
			benchParse(b, prog, input)
		})
	}
}

// ---------------------------------------------------------------- Table 3
//
// Engine comparison on realistic corpora: plain backtracking vs naive
// packrat vs the optimized engine, on the Java and C subsets, plus the
// generated-code parser vs the interpreting engine on the calculator.

func BenchmarkTable3Engines(b *testing.B) {
	corpora := []struct {
		lang  string
		top   string
		input string
	}{
		// The java corpus is named by size, not language: the bench gate
		// (scripts/bench.sh → bench_check.sh) derives java-40KB-ns-per-byte
		// from the "size=40KB/optimized" row, matching the seed reference
		// row recorded in the bench JSON.
		{"size=40KB", grammars.JavaCore, workload.JavaProgram(workload.Config{Seed: 7, Size: 40 * 1024})},
		{"c", grammars.CCore, workload.CProgram(workload.Config{Seed: 7, Size: 40 * 1024})},
		{"json", grammars.JSON, workload.JSONDoc(workload.Config{Seed: 7, Size: 40 * 1024})},
	}
	engines := []struct {
		name  string
		topts transform.Options
		eopts vm.Options
		pgo   bool // recompile with a profile of the same corpus
	}{
		{"backtracking", transform.Defaults(), vm.Backtracking(), false},
		{"naive-packrat", transform.Baseline(), vm.NaivePackrat(), false},
		{"optimized", transform.Defaults(), vm.Optimized(), false},
		{"optimized+pgo", transform.Defaults(), vm.Optimized(), true},
	}
	for _, c := range corpora {
		for _, e := range engines {
			b.Run(c.lang+"/"+e.name, func(b *testing.B) {
				eopts := e.eopts
				if e.pgo {
					// Profile-guided compilation: one profiled parse of the
					// corpus feeds the hot-production report back into Compile.
					prog := mustProgram(b, c.top, e.topts, eopts)
					_, _, profile, err := prog.ParseWithProfile(text.NewSource("bench", c.input))
					if err != nil {
						b.Fatal(err)
					}
					eopts.PGO = profile.PGO()
				}
				prog := mustProgram(b, c.top, e.topts, eopts)
				benchParse(b, prog, c.input)
			})
		}
	}
}

// BenchmarkTable3Generated compares the interpreting engine with the
// generated standalone parser on the same calculator inputs (the
// parser-generator path the paper ships).
func BenchmarkTable3Generated(b *testing.B) {
	calcInput := workload.Expression(workload.Config{Seed: 3, Size: 40 * 1024})
	jsonInput := workload.JSONDoc(workload.Config{Seed: 3, Size: 40 * 1024})
	// gencalc/genjson are generated from the bundled grammars; build the
	// matching interpreters from the same modules.
	b.Run("calc/interpreter", func(b *testing.B) {
		prog := mustProgram(b, grammars.CalcCore, transform.Defaults(), vm.Optimized())
		benchParse(b, prog, calcInput)
	})
	b.Run("calc/generated", func(b *testing.B) {
		b.SetBytes(int64(len(calcInput)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gencalc.Parse(calcInput); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json/interpreter", func(b *testing.B) {
		prog := mustProgram(b, grammars.JSON, transform.Defaults(), vm.Optimized())
		benchParse(b, prog, jsonInput)
	})
	b.Run("json/generated", func(b *testing.B) {
		b.SetBytes(int64(len(jsonInput)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := genjson.Parse(jsonInput); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3Compiled compares the closure-compiled engine against
// the optimized interpreter with a paired-alternating measurement: both
// engines parse the same input inside the same benchmark iteration, so
// CPU-frequency and scheduler noise hit both sides equally and the
// "speedup" metric is stable run to run (phase-isolated A/B timing on
// this family drifts by tens of percent between minutes).
//
// Two corpora bracket the engine's win. The valued java row is
// end-to-end: both engines share the AST construction and GC cost, so
// Amdahl caps the observed ratio well below the engine-only gain. The
// void row parses with warm sessions and no semantic values — pure
// parser machinery — and shows the closure tree's raw advantage.
// scripts/bench.sh derives compiled-speedup-x1000 and
// compiled-void-speedup-x1000 from these rows; bench_check.sh ratchets
// them (the void row carries the >= 2x floor).
func BenchmarkTable3Compiled(b *testing.B) {
	paired := func(b *testing.B, nbytes int, parseOpt, parseComp func() error) {
		b.SetBytes(int64(nbytes))
		var tOpt, tComp time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if err := parseOpt(); err != nil {
				b.Fatal(err)
			}
			t1 := time.Now()
			if err := parseComp(); err != nil {
				b.Fatal(err)
			}
			t2 := time.Now()
			tOpt += t1.Sub(t0)
			tComp += t2.Sub(t1)
		}
		b.ReportMetric(float64(tOpt.Nanoseconds())/float64(tComp.Nanoseconds()), "speedup")
		b.ReportMetric(float64(tOpt.Nanoseconds())/float64(b.N)/1e6, "interp-ms")
		b.ReportMetric(float64(tComp.Nanoseconds())/float64(b.N)/1e6, "compiled-ms")
	}
	b.Run("java-64KB", func(b *testing.B) {
		input := workload.JavaProgram(workload.Config{Seed: 7, Size: 64 * 1024})
		src := text.NewSource("bench", input)
		opt := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
		comp := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.CompiledEngine())
		paired(b, len(input), func() error {
			_, _, err := opt.Parse(src)
			return err
		}, func() error {
			_, _, err := comp.Parse(src)
			return err
		})
	})
	b.Run("void-64KB", func(b *testing.B) {
		g, err := core.Compose("voidcalc", core.MapResolver{"voidcalc": voidBenchGrammar})
		if err != nil {
			b.Fatal(err)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		input := "(1+2)*3-4/5+"
		for len(input) < 64*1024 {
			input += input
		}
		input += "6"
		src := text.NewSource("bench", input)
		mk := func(opts vm.Options) *vm.Session {
			prog, err := vm.Compile(tg, opts)
			if err != nil {
				b.Fatal(err)
			}
			s := prog.NewSession()
			if _, _, err := s.Parse(src); err != nil {
				b.Fatal(err)
			}
			return s
		}
		opt := mk(vm.Optimized())
		comp := mk(vm.CompiledEngine())
		paired(b, len(input), func() error {
			_, _, err := opt.Parse(src)
			return err
		}, func() error {
			_, _, err := comp.Parse(src)
			return err
		})
	})
}

// ---------------------------------------------------------------- Table 4
//
// Cost of modular composition: the base Java grammar vs the grammar
// composed with three extension modules, parsing the same base-language
// corpus (no extension constructs), plus composition time itself.

func BenchmarkTable4Composition(b *testing.B) {
	input := workload.JavaProgram(workload.Config{Seed: 11, Size: 40 * 1024})
	extInput := workload.JavaProgramExt(workload.Config{Seed: 11, Size: 40 * 1024})

	b.Run("parse/base-grammar", func(b *testing.B) {
		prog := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
		benchParse(b, prog, input)
	})
	b.Run("parse/composed-grammar", func(b *testing.B) {
		prog := mustProgram(b, grammars.JavaFull, transform.Defaults(), vm.Optimized())
		benchParse(b, prog, input)
	})
	b.Run("parse/composed-grammar-ext-input", func(b *testing.B) {
		prog := mustProgram(b, grammars.JavaFull, transform.Defaults(), vm.Optimized())
		benchParse(b, prog, extInput)
	})
	b.Run("compose/base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := grammars.Compose(grammars.JavaCore); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compose/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := grammars.Compose(grammars.JavaFull); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------- Fig. 1
//
// Linear-time scaling: parse time per input byte across input sizes. A
// packrat parser's ns/byte stays flat; the benchmark reports throughput
// per size so the series can be plotted.

func BenchmarkFig1Scaling(b *testing.B) {
	prog := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
	for _, kb := range []int{4, 16, 64, 256} {
		input := workload.JavaProgram(workload.Config{Seed: 5, Size: kb * 1024})
		b.Run(fmt.Sprintf("size=%dKB", kb), func(b *testing.B) {
			benchParse(b, prog, input)
		})
	}
}

// ---------------------------------------------------------------- Fig. 2
//
// Heap utilization of memoization: memo bytes per input byte across
// engine configurations and input sizes. Chunked memoization with
// transient productions cuts the constant severalfold vs naive packrat.

func BenchmarkFig2Heap(b *testing.B) {
	configs := []struct {
		name  string
		topts transform.Options
		eopts vm.Options
	}{
		{"naive-packrat", transform.Baseline(), vm.NaivePackrat()},
		{"chunked-memoall", transform.Baseline(), func() vm.Options {
			o := vm.NaivePackrat()
			o.ChunkedMemo = true
			return o
		}()},
		{"optimized", transform.Defaults(), vm.Optimized()},
	}
	for _, kb := range []int{16, 64} {
		input := workload.JavaProgram(workload.Config{Seed: 9, Size: kb * 1024})
		for _, c := range configs {
			b.Run(fmt.Sprintf("size=%dKB/%s", kb, c.name), func(b *testing.B) {
				prog := mustProgram(b, grammars.JavaCore, c.topts, c.eopts)
				_, stats, err := prog.Parse(text.NewSource("probe", input))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.MemoBytes)/float64(len(input)), "memoB/inputB")
				benchParse(b, prog, input)
			})
		}
	}
}

// ---------------------------------------------------------------- Fig. 3
//
// Why packrat: on the pathological shared-prefix grammar, plain
// backtracking explodes exponentially with nesting depth while the
// memoizing engines stay linear. Depths are kept small enough that the
// exponential side still terminates.

func BenchmarkFig3Pathological(b *testing.B) {
	g, err := core.Compose("path", core.MapResolver{"path": workload.PathologicalGrammar})
	if err != nil {
		b.Fatal(err)
	}
	tg, _, err := transform.Apply(g, transform.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{8, 12, 16, 20} {
		input := workload.Pathological(depth)
		for _, e := range []struct {
			name string
			opts vm.Options
		}{
			{"backtracking", vm.Backtracking()},
			{"packrat", vm.NaivePackrat()},
			{"optimized", vm.Optimized()},
		} {
			b.Run(fmt.Sprintf("depth=%d/%s", depth, e.name), func(b *testing.B) {
				prog, err := vm.Compile(tg, e.opts)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := prog.Parse(text.NewSource("probe", input))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Calls), "calls")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := prog.Parse(text.NewSource("bench", input)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------- Table 5
//
// Engine residency: how much of a parse's cost is machinery allocation
// that a resident (pooled or explicitly reused) session amortizes away.
// "cold" builds a fresh session per parse — the seed's behaviour —
// while "pooled" exercises Program.Parse's internal sync.Pool and
// "session" reuses one explicit session. The memo arena, chunk
// directory, and scratch buffers are recycled; semantic values still
// allocate (slab-amortized), so allocs/op does not reach zero on valued
// grammars (see TestSteadyStateAllocsVoidGrammar for the zero case).

func BenchmarkTable5Sessions(b *testing.B) {
	for _, w := range []struct {
		name string
		top  string
		gen  func() string
	}{
		{"calc", "calc.full", func() string { return workload.Expression(workload.Config{Seed: 7, Size: 40 * 1024}) }},
		{"java", "java.core", func() string {
			return workload.JavaProgram(workload.Config{Seed: 7, Size: 40 * 1024})
		}},
	} {
		input := w.gen()
		src := text.NewSource("bench", input)
		prog := mustProgram(b, w.top, transform.Defaults(), vm.Optimized())
		b.Run(w.name+"/cold", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prog.NewSession().Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/pooled", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prog.Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/session", func(b *testing.B) {
			s := prog.NewSession()
			if _, _, err := s.Parse(src); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5Batch compares parsing a 16-file batch sequentially on
// one session against fanning it across GOMAXPROCS workers with
// Program.ParseAll. On a multi-core machine the batch row should
// approach a worker-count speedup; on one core it matches sequential.
func BenchmarkTable5Batch(b *testing.B) {
	const nFiles = 16
	prog := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
	var srcs []*text.Source
	var total int
	for i := 0; i < nFiles; i++ {
		in := workload.JavaProgram(workload.Config{Seed: int64(200 + i), Size: 8 * 1024})
		total += len(in)
		srcs = append(srcs, text.NewSource(fmt.Sprintf("file%d", i), in))
	}
	b.Run("sequential", func(b *testing.B) {
		s := prog.NewSession()
		b.SetBytes(int64(total))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, src := range srcs {
				if _, _, err := s.Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(total))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range prog.ParseAll(srcs, 0) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// voidBenchGrammar is an all-void calculator: it exercises memoization,
// choices, and repetition while producing no semantic values, so a warm
// session parse is pure parser machinery. The steady state must be
// exactly 0 allocs/op — scripts/bench_check.sh gates CI on this row's
// allocs_per_op staying zero.
const voidBenchGrammar = `module voidcalc;
option root = S;
public void S = Expr !. ;
void Expr = Term (("+" / "-") Term)* ;
void Term = Factor (("*" / "/") Factor)* ;
void Factor = Number / "(" Expr ")" ;
void Number = [0-9]+ ;
`

// BenchmarkTable5VoidSteadyState is the allocation canary: a warm
// session parsing a void grammar. Machinery allocations have nowhere to
// hide behind semantic values here, so allocs/op must be exactly 0 —
// any regression in the arena, session, or governance layers shows up
// as a nonzero column in the bench JSON and fails the CI gate. Both the
// interpreter and the closure-compiled engine are held to the zero
// floor: bench_check.sh requires every VoidSteadyState row to report 0.
func BenchmarkTable5VoidSteadyState(b *testing.B) {
	g, err := core.Compose("voidcalc", core.MapResolver{"voidcalc": voidBenchGrammar})
	if err != nil {
		b.Fatal(err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	input := "(1+2)*3-4/5+"
	for len(input) < 8*1024 {
		input += input
	}
	input += "6"
	src := text.NewSource("bench", input)
	for _, e := range []struct {
		name string
		opts vm.Options
	}{
		{"optimized", vm.Optimized()},
		{"compiled", vm.CompiledEngine()},
	} {
		b.Run(e.name, func(b *testing.B) {
			prog, err := vm.Compile(tg, e.opts)
			if err != nil {
				b.Fatal(err)
			}
			s := prog.NewSession()
			if _, _, err := s.Parse(src); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The serve layer's default hot path: pooled, governed, traced entry
	// point with sampling off and no trace ID. The sampling decision is
	// one atomic load per checkout and the exemplar branch one string
	// compare, so this row is held to the same 0 allocs/op floor as the
	// session rows — the always-on profiler must cost nothing when off.
	b.Run("sampling-off", func(b *testing.B) {
		prog, err := vm.Compile(tg, vm.Optimized())
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, _, err := prog.ParseContextTraced(ctx, src, vm.Limits{}, ""); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := prog.ParseContextTraced(ctx, src, vm.Limits{}, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------- Table 7
//
// Resource-governance overhead: the java.core workload parsed
// ungoverned, governed with zero limits (the arming cost alone), and
// governed with every budget armed but generous (the polling cost on
// the chunk-allocation and backtrack edges). The acceptance bound is
// the zero-limits row matching the ungoverned row within noise.

func BenchmarkTable7Governance(b *testing.B) {
	prog := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
	input := workload.JavaProgram(workload.Config{Seed: 7, Size: 40 * 1024})
	src := text.NewSource("bench", input)
	ctx := context.Background()
	s := prog.NewSession()
	if _, _, err := s.Parse(src); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, lim vm.Limits, governed bool) {
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if governed {
				_, _, err = s.ParseContext(ctx, src, lim)
			} else {
				_, _, err = s.Parse(src)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ungoverned", func(b *testing.B) { run(b, vm.Limits{}, false) })
	b.Run("zero-limits", func(b *testing.B) { run(b, vm.Limits{}, true) })
	b.Run("all-budgets", func(b *testing.B) {
		run(b, vm.Limits{
			MaxInputBytes:    1 << 30,
			MaxMemoBytes:     1 << 30,
			MaxCallDepth:     1 << 20,
			MaxParseDuration: time.Hour,
		}, true)
	})
}

// ---------------------------------------------------------------- Table 6
//
// Observability overhead: the 40 KB java.core workload parsed with
// instrumentation disabled (nil hook — must match Table 5's java/pooled
// row within noise; the acceptance bound is <= 2%), with the
// per-production profiler installed, and with the call trace streaming
// into a discarding writer. scripts/bench.sh records this family in
// BENCH_2.json.

func BenchmarkTable6Observability(b *testing.B) {
	input := workload.JavaProgram(workload.Config{Seed: 7, Size: 40 * 1024})
	src := text.NewSource("bench", input)
	prog := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())

	b.Run("disabled", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := prog.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("profiled", func(b *testing.B) {
		pr := prog.NewProfiler()
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := prog.ParseWithHook(src, pr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := prog.ParseWithTrace(src, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable6SamplingOverhead measures the cost of always-on
// 1-in-100 sampled profiling end to end on the 64 KB java corpus. Two
// identically compiled programs parse the same input inside the same
// benchmark iteration: one with sampling off, one at SetSampling(1) so
// EVERY parse takes the sampled path (interpreter under a borrowed
// profiler, merged into the rolling profile). Measuring the fully
// sampled path and amortizing it over the 1-in-100 duty cycle —
// overhead = 1 + (sampled/off - 1)/100 — gives every iteration signal;
// a literal rate-100 run at CI's -benchtime 20x would never fire the
// sampler at all. The "overhead" metric is that amortized ratio;
// scripts/bench.sh records it as derived/sampling-overhead-x1000 and
// bench_check.sh ratchets it at <= 2% (1020). Measured: the sampled
// path is ~1.9x the optimized parse, so the amortized overhead is
// ~1.009.
func BenchmarkTable6SamplingOverhead(b *testing.B) {
	input := workload.JavaProgram(workload.Config{Seed: 7, Size: 64 * 1024})
	src := text.NewSource("bench", input)
	off := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
	sampled := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
	sampled.SetLabel("bench/sampling-overhead")
	sampled.SetSampling(1)
	defer vm.ResetSampledProfiles()
	// Warm both pools so neither side pays a first-iteration build.
	for _, prog := range []*vm.Program{off, sampled} {
		if _, _, err := prog.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(input)))
	var tOff, tSampled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, _, err := off.Parse(src); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, _, err := sampled.Parse(src); err != nil {
			b.Fatal(err)
		}
		tOff += t1.Sub(t0)
		tSampled += time.Since(t1)
	}
	ratio := float64(tSampled.Nanoseconds()) / float64(tOff.Nanoseconds())
	b.ReportMetric(1+(ratio-1)/100, "overhead")
}

// ---------------------------------------------------------------- Table 8
//
// Incremental reparsing over recycled memo tables: for each input size
// and edit shape, the "full" row parses the edited text from scratch and
// the "incremental" row applies the edit to a warm Document (alternating
// an insertion with its exact inverse so every iteration invalidates,
// relocates, and reparses for real). The acceptance bound is the
// 64KB/line incremental row at >= 5x the full row; scripts/bench.sh
// records the family (and that derived speedup) in BENCH_4.json.

func BenchmarkTable8Incremental(b *testing.B) {
	prog := mustProgram(b, grammars.JavaCore, transform.Defaults(), vm.Optimized())
	for _, kb := range []int{4, 16, 64, 256} {
		input := workload.JavaProgram(workload.Config{Seed: 8, Size: kb * 1024})
		for _, e := range []struct {
			name string
			p    workload.EditPair
		}{
			{"byte", workload.JavaEditByte(input)},
			{"line", workload.JavaEditLine(input)},
			{"blob10pct", workload.JavaEditBlob(input, 0.10)},
		} {
			edited := input[:e.p.Insert.Off] + e.p.Insert.Text + input[e.p.Insert.Off:]
			editedSrc := text.NewSource("bench", edited)
			b.Run(fmt.Sprintf("%dKB/%s/full", kb, e.name), func(b *testing.B) {
				b.SetBytes(int64(len(edited)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := prog.Parse(editedSrc); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%dKB/%s/incremental", kb, e.name), func(b *testing.B) {
				d := prog.NewDocument(text.NewSource("bench", input))
				if d.Err() != nil {
					b.Fatal(d.Err())
				}
				// Warm the ping-pong cycle once so the steady state is measured.
				d.Apply(e.p.Insert)
				d.Apply(e.p.Delete)
				b.SetBytes(int64(len(edited)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ed := e.p.Insert
					if i%2 == 1 {
						ed = e.p.Delete
					}
					if _, _, err := d.Apply(ed); err != nil || d.Err() != nil {
						b.Fatalf("apply: %v, parse: %v", err, d.Err())
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------- Table 9
//
// Telemetry-pipeline overhead: the same governed parse with the metrics
// registry disabled ("bare"), with the default registry + latency/input
// histograms + per-grammar counters ("metrics"), and with the Chrome
// trace-event exporter installed as a ParseHook ("traced"). The
// acceptance bound is the metrics row within ~5% of bare;
// scripts/bench.sh records the family (and the derived overhead ratio)
// in BENCH_5.json.

func BenchmarkTable9Telemetry(b *testing.B) {
	input := workload.Expression(workload.Config{Seed: 9, Size: 40 * 1024})
	src := text.NewSource("bench", input)
	prog := mustProgram(b, grammars.CalcFull, transform.Defaults(), vm.Optimized())

	b.Run("bare", func(b *testing.B) {
		prev := vm.SetTelemetry(false)
		defer vm.SetTelemetry(prev)
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := prog.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metrics", func(b *testing.B) {
		prev := vm.SetTelemetry(true)
		defer vm.SetTelemetry(prev)
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := prog.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		prev := vm.SetTelemetry(true)
		defer vm.SetTelemetry(prev)
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := telemetry.NewTrace(prog, io.Discard)
			if _, _, err := prog.ParseWithHook(src, tr); err != nil {
				b.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
