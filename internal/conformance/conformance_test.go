// Package conformance holds the cross-engine differential harness: every
// bundled grammar, fed every corpus the workload package can generate for
// it (plus deliberately broken variants), through all four execution
// strategies — plain backtracking is covered elsewhere; here the lanes
// are the naive packrat baseline, the memoize-everything chunked engine,
// the optimized engine (plus its scan-fusion-off and PGO variants), the
// closure-compiled engine, and the generated standalone Go parser. All
// lanes must agree on accept/reject and produce structurally identical
// values; lanes sharing a transform pipeline must report byte-identical
// errors.
package conformance

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/codegen"
	"modpeg/internal/grammars"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

// corpusCase is one input for one grammar. mustParse marks the generated
// corpora, which the reference engine is required to accept; the damaged
// variants carry no expectation (a splice can land inside a string
// literal, a truncation on an expression boundary) — for those the
// harness checks only that every lane agrees.
type corpusCase struct {
	name      string
	input     string
	mustParse bool
}

// corporaFor returns the differential corpus for a top module: generated
// valid inputs at two sizes plus damaged variants (a control-byte splice
// and a truncation) and the empty input.
func corporaFor(top string) []corpusCase {
	gen := map[string]func(workload.Config) string{
		grammars.CalcCore:    workload.Expression,
		grammars.CalcFull:    workload.ExpressionExt,
		grammars.JSON:        workload.JSONDoc,
		grammars.JSONRelaxed: workload.JSONDoc,
		grammars.JavaCore:    workload.JavaProgram,
		grammars.JavaFull:    workload.JavaProgramExt,
		grammars.JavaSQL:     workload.JavaSQLProgram,
		grammars.CCore:       workload.CProgram,
		grammars.CFull:       workload.CProgram,
		grammars.SQL:         workload.SQLQuery,
	}[top]
	var cases []corpusCase
	for _, size := range []int{300, 4000} {
		src := gen(workload.Config{Seed: int64(size), Size: size})
		cases = append(cases, corpusCase{fmt.Sprintf("gen%d", size), src, true})
		mid := len(src) / 2
		cases = append(cases,
			corpusCase{fmt.Sprintf("splice%d", size), src[:mid] + "\x01" + src[mid:], false},
			corpusCase{fmt.Sprintf("trunc%d", size), strings.TrimRight(src[:mid], " \t\n"), false},
		)
	}
	cases = append(cases, corpusCase{"empty", "", false})
	return cases
}

type lane struct {
	name string
	prog *vm.Program
	// strictErr: the lane shares the default transform pipeline (and
	// dispatch tables) with the optimized reference, so its error text
	// must be byte-identical, not merely accept/reject-equal.
	strictErr bool
}

func lanesFor(t *testing.T, top string) []lane {
	t.Helper()
	g, err := grammars.Compose(top)
	if err != nil {
		t.Fatalf("compose %s: %v", top, err)
	}
	mk := func(topts transform.Options, eopts vm.Options) *vm.Program {
		tg, _, err := transform.Apply(g, topts)
		if err != nil {
			t.Fatalf("%s: transform: %v", top, err)
		}
		prog, err := vm.Compile(tg, eopts)
		if err != nil {
			t.Fatalf("%s: compile: %v", top, err)
		}
		return prog
	}
	noscan := vm.Optimized()
	noscan.ScanFusion = false
	pgo := vm.Optimized()
	// Static PGO (nil Calls): every small production is inlined, so the
	// inlining fast path runs over the whole corpus, not just hot spots.
	pgo.PGO = &vm.PGO{}
	return []lane{
		{"naive", mk(transform.Baseline(), vm.NaivePackrat()), false},
		{"full-packrat", mk(transform.Defaults(),
			vm.Options{Memoize: true, MemoEverything: true, ChunkedMemo: true, Dispatch: true}), true},
		{"optimized", mk(transform.Defaults(), vm.Optimized()), true},
		{"optimized-noscan", mk(transform.Defaults(), noscan), true},
		{"optimized+pgo", mk(transform.Defaults(), pgo), true},
		// The closure-compiled engine shares the default pipeline and
		// the interpreter's failure-recording edges, so its diagnostics
		// are held to byte-identical error text, not just accept/reject.
		{"compiled", mk(transform.Defaults(), vm.CompiledEngine()), true},
	}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestInterpretedEnginesAgree runs the interpreted lanes over every
// grammar's corpus. The optimized engine is the reference: every lane
// must match its accept/reject decision and its value; the lanes
// compiled through the default transform pipeline (full-packrat,
// scan-fusion-disabled, PGO-inlined) must also report byte-identical
// errors (the naive lane uses the baseline pipeline, whose diagnostics
// legitimately name different productions).
func TestInterpretedEnginesAgree(t *testing.T) {
	for _, top := range grammars.TopModules() {
		top := top
		t.Run(top, func(t *testing.T) {
			t.Parallel()
			lanes := lanesFor(t, top)
			ref := lanes[2]
			if ref.name != "optimized" {
				t.Fatalf("lanes[2] = %q, want the optimized reference", ref.name)
			}
			for _, c := range corporaFor(top) {
				src := text.NewSource(c.name, c.input)
				refV, _, refErr := ref.prog.Parse(src)
				if c.mustParse && refErr != nil {
					t.Fatalf("%s/%s: generated corpus must parse, got %v", top, c.name, refErr)
				}
				for _, l := range lanes {
					if l.name == ref.name {
						continue
					}
					v, _, err := l.prog.Parse(src)
					if (err == nil) != (refErr == nil) {
						t.Fatalf("%s/%s: %s accept=%v vs optimized accept=%v\n %s: %v\n optimized: %v",
							top, c.name, l.name, err == nil, refErr == nil, l.name, err, refErr)
					}
					if err == nil && !ast.Equal(v, refV) {
						t.Fatalf("%s/%s: %s value differs from optimized", top, c.name, l.name)
					}
					if l.strictErr && errStr(err) != errStr(refErr) {
						t.Fatalf("%s/%s: error text differs\n full-packrat: %v\n optimized:    %v",
							top, c.name, err, refErr)
					}
				}
			}
		})
	}
}

// TestGeneratedParsersAgree covers the fourth lane: a standalone Go
// parser is generated for every bundled grammar, all of them are compiled
// into one throwaway module with a manifest-driven driver, and a single
// `go run` parses every corpus case. The driver reports accept/reject and
// the value's s-expression rendering, which must equal ast.Format of the
// optimized interpreter's value.
func TestGeneratedParsersAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a generated module; skipped in -short")
	}
	tops := grammars.TopModules()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module conformance\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// One subpackage per grammar plus a driver that walks the manifest.
	var imports, table strings.Builder
	for i, top := range tops {
		g, err := grammars.Compose(top)
		if err != nil {
			t.Fatalf("compose %s: %v", top, err)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			t.Fatalf("%s: transform: %v", top, err)
		}
		pkg := fmt.Sprintf("p%d", i)
		src, err := codegen.Generate(tg, codegen.Options{Package: pkg, EntryComment: "grammar: " + top})
		if err != nil {
			t.Fatalf("%s: generate: %v", top, err)
		}
		if err := os.MkdirAll(filepath.Join(dir, pkg), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, pkg, pkg+".go"), src, 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&imports, "\t%q\n", "conformance/"+pkg)
		fmt.Fprintf(&table, "\tfunc(in string) (string, bool) { v, err := %s.Parse(in); if err != nil { return \"\", false }; return %s.Format(v), true },\n", pkg, pkg)
	}
	driver := `package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

` + imports.String() + `)

var parsers = []func(string) (string, bool){
` + table.String() + `}

// Manifest lines: <parserIndex>\t<inputFile>\t<outputFile>. The output
// file gets "OK\n<format>" or "ERR".
func main() {
	f, err := os.Open(os.Args[1])
	if err != nil {
		panic(err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 3)
		idx, _ := strconv.Atoi(parts[0])
		in, err := os.ReadFile(parts[1])
		if err != nil {
			panic(err)
		}
		out := "ERR"
		if s, ok := parsers[idx](string(in)); ok {
			out = "OK\n" + s
		}
		if err := os.WriteFile(parts[2], []byte(out), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Println("done")
}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(driver), 0o644); err != nil {
		t.Fatal(err)
	}

	// Manifest + expected results from the optimized interpreter.
	type expect struct {
		top, name, out string // out is "" for reject, else the format string
		accept         bool
	}
	var manifest strings.Builder
	var expects []expect
	caseNo := 0
	for i, top := range tops {
		g, err := grammars.Compose(top)
		if err != nil {
			t.Fatal(err)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		prog, err := vm.Compile(tg, vm.Optimized())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range corporaFor(top) {
			inPath := filepath.Join(dir, fmt.Sprintf("in%d.txt", caseNo))
			outPath := filepath.Join(dir, fmt.Sprintf("out%d.txt", caseNo))
			if err := os.WriteFile(inPath, []byte(c.input), 0o644); err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&manifest, "%d\t%s\t%s\n", i, inPath, outPath)
			v, _, err := prog.Parse(text.NewSource(c.name, c.input))
			e := expect{top: top, name: c.name, accept: err == nil}
			if err == nil {
				e.out = ast.Format(v)
			}
			expects = append(expects, e)
			caseNo++
		}
	}
	manifestPath := filepath.Join(dir, "manifest.tsv")
	if err := os.WriteFile(manifestPath, []byte(manifest.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".", manifestPath)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}

	for i, e := range expects {
		got, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("out%d.txt", i)))
		if err != nil {
			t.Fatalf("%s/%s: driver wrote no result: %v", e.top, e.name, err)
		}
		s := string(got)
		if e.accept != strings.HasPrefix(s, "OK\n") {
			t.Errorf("%s/%s: generated accept=%v, interpreter accept=%v",
				e.top, e.name, strings.HasPrefix(s, "OK\n"), e.accept)
			continue
		}
		if e.accept && strings.TrimPrefix(s, "OK\n") != e.out {
			t.Errorf("%s/%s: generated value differs from interpreter\n gen: %.200s\n vm:  %.200s",
				e.top, e.name, strings.TrimPrefix(s, "OK\n"), e.out)
		}
	}
}
