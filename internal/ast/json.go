package ast

import (
	"encoding/json"
	"fmt"
)

// jsonValue is the wire form of a Value:
//
//	{"kind":"node","name":"Add","start":0,"end":3,"children":[...]}
//	{"kind":"token","text":"1","start":0,"end":1}
//	{"kind":"list","items":[...]}
//	null
type jsonValue struct {
	Kind     string       `json:"kind"`
	Name     string       `json:"name,omitempty"`
	Text     string       `json:"text,omitempty"`
	Start    *int         `json:"start,omitempty"`
	End      *int         `json:"end,omitempty"`
	Children []*jsonValue `json:"children,omitempty"`
	Items    []*jsonValue `json:"items,omitempty"`
}

// ToJSON renders a value as indented JSON for machine consumption (editor
// tooling, test fixtures). Spans are included when valid.
func ToJSON(v Value) (string, error) {
	jv := toJSONValue(v)
	data, err := json.MarshalIndent(jv, "", "  ")
	if err != nil {
		return "", fmt.Errorf("ast: %w", err)
	}
	return string(data), nil
}

// ToJSONCompact renders a value as single-line JSON. Indented rendering
// of a deeply nested AST is quadratic in the nesting depth (every line
// carries its full indent prefix), so wire protocols must use this
// form: a depth-2000 value serializes in linear size here but to
// hundreds of megabytes through ToJSON.
func ToJSONCompact(v Value) (string, error) {
	data, err := json.Marshal(toJSONValue(v))
	if err != nil {
		return "", fmt.Errorf("ast: %w", err)
	}
	return string(data), nil
}

func toJSONValue(v Value) *jsonValue {
	switch v := v.(type) {
	case nil:
		return nil
	case *Token:
		if v == nil {
			return nil
		}
		jv := &jsonValue{Kind: "token", Text: v.Text}
		if v.Span.IsValid() {
			s, e := int(v.Span.Start), int(v.Span.End)
			jv.Start, jv.End = &s, &e
		}
		return jv
	case *Node:
		if v == nil {
			return nil
		}
		jv := &jsonValue{Kind: "node", Name: v.Name}
		if v.Span.IsValid() {
			s, e := int(v.Span.Start), int(v.Span.End)
			jv.Start, jv.End = &s, &e
		}
		// Children are kept positional: nil children marshal as JSON null.
		jv.Children = make([]*jsonValue, len(v.Children))
		for i, c := range v.Children {
			jv.Children[i] = toJSONValue(c)
		}
		return jv
	case List:
		jv := &jsonValue{Kind: "list", Items: make([]*jsonValue, len(v))}
		for i, c := range v {
			jv.Items[i] = toJSONValue(c)
		}
		return jv
	case string:
		return &jsonValue{Kind: "token", Text: v}
	default:
		return &jsonValue{Kind: "token", Text: fmt.Sprint(v)}
	}
}
