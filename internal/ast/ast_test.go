package ast

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"modpeg/internal/text"
)

func tok(s string) *Token { return NewToken(s, text.NewSpan(0, text.Pos(len(s)))) }

func sample() *Node {
	return NewNode("Binary",
		NewNode("Number", tok("1")),
		tok("+"),
		NewNode("Number", tok("2")),
	)
}

func TestNodeAccessors(t *testing.T) {
	n := sample()
	if n.NumChildren() != 3 {
		t.Fatalf("NumChildren = %d", n.NumChildren())
	}
	if n.Child(-1) != nil || n.Child(3) != nil {
		t.Fatal("out-of-range Child must be nil")
	}
	if c, ok := n.Child(1).(*Token); !ok || c.Text != "+" {
		t.Fatalf("Child(1) = %v", n.Child(1))
	}
	var nilNode *Node
	if nilNode.NumChildren() != 0 || nilNode.Child(0) != nil {
		t.Fatal("nil node accessors must be safe")
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "()"},
		{tok("x"), `"x"`},
		{NewNode("Empty"), "(Empty)"},
		{sample(), `(Binary (Number "1") "+" (Number "2"))`},
		{List{tok("a"), nil, tok("b")}, `["a" () "b"]`},
		{List{}, "[]"},
		{"lit", `"lit"`},
		{42, "42"},
		{(*Token)(nil), "()"},
		{(*Node)(nil), "()"},
	}
	for _, c := range cases {
		if got := Format(c.v); got != c.want {
			t.Errorf("Format(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
	if sample().String() != Format(sample()) {
		t.Error("Node.String must match Format")
	}
	if (List{}).String() != "[]" {
		t.Error("List.String must match Format")
	}
	if tok("q").String() != `"q"` {
		t.Error("Token.String must quote")
	}
}

func TestIndent(t *testing.T) {
	got := Indent(sample())
	want := "(Binary\n  (Number\n    \"1\"\n  )\n  \"+\"\n  (Number\n    \"2\"\n  )\n)\n"
	if got != want {
		t.Fatalf("Indent:\n%q\nwant\n%q", got, want)
	}
	if Indent(nil) != "()\n" {
		t.Fatal("Indent(nil)")
	}
	if Indent(List{}) != "[]\n" {
		t.Fatal("Indent(empty list)")
	}
	if !strings.Contains(Indent(List{tok("z")}), "\"z\"") {
		t.Fatal("Indent list contents")
	}
	if Indent(7) != "7\n" {
		t.Fatal("Indent scalar")
	}
	if Indent((*Node)(nil)) != "()\n" || Indent((*Token)(nil)) != "()\n" {
		t.Fatal("Indent typed nils")
	}
	if Indent(NewNode("Leaf")) != "(Leaf)\n" {
		t.Fatal("Indent leaf node")
	}
}

func TestSpanOf(t *testing.T) {
	n := NewNode("X")
	n.Span = text.NewSpan(3, 9)
	if SpanOf(n) != (text.NewSpan(3, 9)) {
		t.Fatal("node span")
	}
	tk := NewToken("ab", text.NewSpan(5, 7))
	if SpanOf(tk) != (text.NewSpan(5, 7)) {
		t.Fatal("token span")
	}
	l := List{NewToken("a", text.NewSpan(2, 3)), NewToken("b", text.NewSpan(8, 9))}
	if SpanOf(l) != (text.NewSpan(2, 9)) {
		t.Fatal("list span union")
	}
	if SpanOf(nil).IsValid() || SpanOf("s").IsValid() {
		t.Fatal("span of nil/string must be invalid")
	}
	if SpanOf((*Node)(nil)).IsValid() || SpanOf((*Token)(nil)).IsValid() {
		t.Fatal("span of typed nil must be invalid")
	}
}

func TestTextOf(t *testing.T) {
	if got := TextOf(sample()); got != "1+2" {
		t.Fatalf("TextOf = %q", got)
	}
	if got := TextOf(List{tok("a"), NewNode("N", tok("b")), "c"}); got != "abc" {
		t.Fatalf("TextOf list = %q", got)
	}
	if TextOf(nil) != "" || TextOf((*Token)(nil)) != "" || TextOf((*Node)(nil)) != "" {
		t.Fatal("TextOf nils must be empty")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	// Spans must be ignored.
	b.Span = text.NewSpan(100, 200)
	if !Equal(a, b) {
		t.Fatal("structurally equal trees must be Equal")
	}
	b.Children[1] = tok("-")
	if Equal(a, b) {
		t.Fatal("different operator must differ")
	}
	if Equal(sample(), nil) || Equal(nil, sample()) || !Equal(nil, nil) {
		t.Fatal("nil comparisons")
	}
	if Equal(NewNode("A"), NewNode("B")) {
		t.Fatal("names must match")
	}
	if Equal(NewNode("A", tok("x")), NewNode("A")) {
		t.Fatal("arity must match")
	}
	if !Equal(List{tok("x")}, List{tok("x")}) || Equal(List{tok("x")}, List{}) {
		t.Fatal("list equality")
	}
	if Equal(List{tok("x")}, tok("x")) {
		t.Fatal("kind mismatch")
	}
	if !Equal("s", "s") || Equal("s", "t") || Equal("s", 1) {
		t.Fatal("string equality")
	}
	if !Equal(3, 3) || Equal(3, 4) {
		t.Fatal("scalar equality")
	}
	if Equal(tok("x"), NewNode("x")) {
		t.Fatal("token vs node")
	}
	if !Equal((*Node)(nil), (*Node)(nil)) || Equal((*Node)(nil), NewNode("A")) {
		t.Fatal("typed nil node equality")
	}
	if !Equal((*Token)(nil), (*Token)(nil)) || Equal(tok("x"), (*Token)(nil)) {
		t.Fatal("typed nil token equality")
	}
}

func TestCount(t *testing.T) {
	if got := Count(sample()); got != 6 {
		t.Fatalf("Count = %d, want 6", got) // 3 nodes + 3 tokens
	}
	if Count(nil) != 0 || Count("x") != 0 {
		t.Fatal("count of non-tree values must be 0")
	}
	if Count(List{tok("a")}) != 2 {
		t.Fatal("list counts as a cell")
	}
	if Count((*Node)(nil)) != 0 || Count((*Token)(nil)) != 0 {
		t.Fatal("typed nils count 0")
	}
}

func TestWalkFind(t *testing.T) {
	root := NewNode("Root", sample(), List{NewNode("Number", tok("9"))})
	var names []string
	Walk(root, func(v Value) bool {
		if n, ok := v.(*Node); ok && n != nil {
			names = append(names, n.Name)
		}
		return true
	})
	want := []string{"Root", "Binary", "Number", "Number", "Number"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Walk order = %v, want %v", names, want)
	}

	if f := Find(root, "Binary"); f == nil || f.Name != "Binary" {
		t.Fatal("Find Binary")
	}
	if Find(root, "Missing") != nil {
		t.Fatal("Find missing must be nil")
	}
	// Find returns the *first* in pre-order.
	first := Find(root, "Number")
	if TextOf(first) != "1" {
		t.Fatalf("Find returned %v, want the first Number", first)
	}
	all := FindAll(root, "Number")
	if len(all) != 3 {
		t.Fatalf("FindAll = %d, want 3", len(all))
	}
	// Early-stop: fn returning false prunes the subtree.
	var visited int
	Walk(root, func(v Value) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("pruned walk visited %d", visited)
	}
}

// randomValue builds a random tree with the given budget; used by the
// property tests below.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return nil
		case 1:
			return NewToken(string(rune('a'+r.Intn(26))), text.NewSpan(0, 1))
		default:
			return "s"
		}
	}
	switch r.Intn(4) {
	case 0:
		return NewToken("t", text.NewSpan(0, 1))
	case 1:
		k := r.Intn(3)
		l := make(List, k)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return l
	default:
		k := r.Intn(3)
		n := NewNode(string(rune('A' + r.Intn(4))))
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, randomValue(r, depth-1))
		}
		return n
	}
}

func TestEqualIsReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)), 4)
		return Equal(v, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatDistinguishesUnequalProperty(t *testing.T) {
	// Format is injective enough for trees over distinct constructors:
	// if the formatted strings match, Equal must hold.
	f := func(s1, s2 int64) bool {
		v1 := randomValue(rand.New(rand.NewSource(s1)), 4)
		v2 := randomValue(rand.New(rand.NewSource(s2)), 4)
		if Format(v1) == Format(v2) {
			return Equal(v1, v2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesWalkProperty(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)), 5)
		walked := 0
		Walk(v, func(u Value) bool {
			switch u := u.(type) {
			case *Node:
				if u != nil {
					walked++
				}
			case *Token:
				if u != nil {
					walked++
				}
			case List:
				walked++
			}
			return true
		})
		return walked == Count(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToJSON(t *testing.T) {
	n := sample()
	n.Span = text.NewSpan(0, 3)
	out, err := ToJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if decoded["kind"] != "node" || decoded["name"] != "Binary" {
		t.Fatalf("decoded = %v", decoded)
	}
	if decoded["start"].(float64) != 0 || decoded["end"].(float64) != 3 {
		t.Fatalf("span = %v", decoded)
	}
	children := decoded["children"].([]any)
	if len(children) != 3 {
		t.Fatalf("children = %d", len(children))
	}
	tok := children[1].(map[string]any)
	if tok["kind"] != "token" || tok["text"] != "+" {
		t.Fatalf("token = %v", tok)
	}

	// nil marshals to null; lists and positional nil children round-trip.
	out, err = ToJSON(List{nil, tok2("a"), "raw", 7})
	if err != nil {
		t.Fatal(err)
	}
	var l map[string]any
	if err := json.Unmarshal([]byte(out), &l); err != nil {
		t.Fatal(err)
	}
	items := l["items"].([]any)
	if items[0] != nil {
		t.Fatalf("nil item = %v", items[0])
	}
	if items[2].(map[string]any)["text"] != "raw" || items[3].(map[string]any)["text"] != "7" {
		t.Fatalf("items = %v", items)
	}
	if s, err := ToJSON(nil); err != nil || s != "null" {
		t.Fatalf("ToJSON(nil) = %q, %v", s, err)
	}
	if s, _ := ToJSON((*Node)(nil)); s != "null" {
		t.Fatalf("ToJSON(typed nil) = %q", s)
	}
	if s, _ := ToJSON((*Token)(nil)); s != "null" {
		t.Fatalf("ToJSON(typed nil token) = %q", s)
	}
}

func tok2(s string) *Token { return NewToken(s, text.NoSpan) }
