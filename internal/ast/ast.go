// Package ast defines the generic abstract-syntax-tree values produced by
// modpeg parsers.
//
// Following the Rats! design, parsers built from modular grammars do not
// produce grammar-specific struct types: they produce *generic* nodes whose
// name is the defining production (or an explicit @Name constructor given in
// the grammar) and whose children are the semantic values of the bound
// sub-expressions. This is what makes grammar modules composable — an
// extension module can introduce new constructs without anyone regenerating
// or recompiling a typed AST.
//
// The value vocabulary is deliberately small:
//
//   - *Node:  an interior node with a constructor name and child values
//   - *Token: a lexeme — a slice of the input with a span
//   - List:   an ordered sequence of values (from repetitions)
//   - nil:    the absence of a value (from failed options, void expressions)
package ast

import (
	"fmt"
	"strings"

	"modpeg/internal/text"
)

// Value is any semantic value a parser can produce: *Node, *Token, List, or
// nil. String-typed values are also permitted for synthesized results.
type Value interface{}

// Node is a generic interior AST node. Name identifies the construct (for
// example "Binary" or "IfStatement"); Children holds the semantic values of
// the bound sub-expressions in grammar order.
type Node struct {
	Name     string
	Children []Value
	Span     text.Span
}

// NewNode builds a node from a constructor name and children.
func NewNode(name string, children ...Value) *Node {
	return &Node{Name: name, Children: children, Span: text.NoSpan}
}

// Child returns the i-th child, or nil when out of range.
func (n *Node) Child(i int) Value {
	if n == nil || i < 0 || i >= len(n.Children) {
		return nil
	}
	return n.Children[i]
}

// NumChildren returns the number of children; safe on nil.
func (n *Node) NumChildren() int {
	if n == nil {
		return 0
	}
	return len(n.Children)
}

// String renders the node as a compact s-expression, e.g.
// (Binary (Token "1") (Token "+") (Token "2")).
func (n *Node) String() string { return Format(n) }

// Token is a terminal value: the matched input text together with where it
// was matched.
type Token struct {
	Text string
	Span text.Span
}

// NewToken builds a token value.
func NewToken(txt string, sp text.Span) *Token {
	return &Token{Text: txt, Span: sp}
}

func (t *Token) String() string { return fmt.Sprintf("%q", t.Text) }

// List is an ordered sequence of semantic values, produced by repetitions
// and by explicit list bindings in grammars.
type List []Value

func (l List) String() string { return Format(l) }

// SpanOf extracts the source span from a value, when it carries one. Lists
// yield the union of their elements' spans.
func SpanOf(v Value) text.Span {
	switch v := v.(type) {
	case *Node:
		if v == nil {
			return text.NoSpan
		}
		return v.Span
	case *Token:
		if v == nil {
			return text.NoSpan
		}
		return v.Span
	case List:
		sp := text.NoSpan
		for _, e := range v {
			sp = sp.Union(SpanOf(e))
		}
		return sp
	default:
		return text.NoSpan
	}
}

// TextOf extracts the concatenated terminal text underneath a value. It is
// the inverse-ish of parsing for token-bearing subtrees: tokens contribute
// their text, nodes and lists contribute their children's text in order.
func TextOf(v Value) string {
	var b strings.Builder
	appendText(&b, v)
	return b.String()
}

func appendText(b *strings.Builder, v Value) {
	switch v := v.(type) {
	case *Token:
		if v != nil {
			b.WriteString(v.Text)
		}
	case *Node:
		if v != nil {
			for _, c := range v.Children {
				appendText(b, c)
			}
		}
	case List:
		for _, c := range v {
			appendText(b, c)
		}
	case string:
		b.WriteString(v)
	}
}

// Format renders any Value as a compact s-expression. nil renders as "()".
func Format(v Value) string {
	var b strings.Builder
	format(&b, v)
	return b.String()
}

func format(b *strings.Builder, v Value) {
	switch v := v.(type) {
	case nil:
		b.WriteString("()")
	case *Token:
		if v == nil {
			b.WriteString("()")
			return
		}
		fmt.Fprintf(b, "%q", v.Text)
	case *Node:
		if v == nil {
			b.WriteString("()")
			return
		}
		b.WriteByte('(')
		b.WriteString(v.Name)
		for _, c := range v.Children {
			b.WriteByte(' ')
			format(b, c)
		}
		b.WriteByte(')')
	case List:
		b.WriteByte('[')
		for i, c := range v {
			if i > 0 {
				b.WriteByte(' ')
			}
			format(b, c)
		}
		b.WriteByte(']')
	case string:
		fmt.Fprintf(b, "%q", v)
	default:
		fmt.Fprintf(b, "%v", v)
	}
}

// Indent renders a Value as an indented multi-line tree, one node per line,
// suitable for CLI dumps of large parses.
func Indent(v Value) string {
	var b strings.Builder
	indent(&b, v, 0)
	return b.String()
}

func indent(b *strings.Builder, v Value, depth int) {
	pad := strings.Repeat("  ", depth)
	switch v := v.(type) {
	case nil:
		b.WriteString(pad + "()\n")
	case *Token:
		if v == nil {
			b.WriteString(pad + "()\n")
			return
		}
		fmt.Fprintf(b, "%s%q\n", pad, v.Text)
	case *Node:
		if v == nil {
			b.WriteString(pad + "()\n")
			return
		}
		if len(v.Children) == 0 {
			fmt.Fprintf(b, "%s(%s)\n", pad, v.Name)
			return
		}
		fmt.Fprintf(b, "%s(%s\n", pad, v.Name)
		for _, c := range v.Children {
			indent(b, c, depth+1)
		}
		b.WriteString(pad + ")\n")
	case List:
		if len(v) == 0 {
			b.WriteString(pad + "[]\n")
			return
		}
		b.WriteString(pad + "[\n")
		for _, c := range v {
			indent(b, c, depth+1)
		}
		b.WriteString(pad + "]\n")
	default:
		fmt.Fprintf(b, "%s%v\n", pad, v)
	}
}

// Equal reports deep structural equality of two values, ignoring spans.
// It is the comparison used by the engine-equivalence property tests: two
// parse engines agree iff their results are Equal.
func Equal(a, b Value) bool {
	switch a := a.(type) {
	case nil:
		return b == nil
	case *Token:
		bt, ok := b.(*Token)
		if !ok {
			return false
		}
		if a == nil || bt == nil {
			return a == nil && bt == nil
		}
		return a.Text == bt.Text
	case *Node:
		bn, ok := b.(*Node)
		if !ok {
			return false
		}
		if a == nil || bn == nil {
			return a == nil && bn == nil
		}
		if a.Name != bn.Name || len(a.Children) != len(bn.Children) {
			return false
		}
		for i := range a.Children {
			if !Equal(a.Children[i], bn.Children[i]) {
				return false
			}
		}
		return true
	case List:
		bl, ok := b.(List)
		if !ok || len(a) != len(bl) {
			return false
		}
		for i := range a {
			if !Equal(a[i], bl[i]) {
				return false
			}
		}
		return true
	case string:
		bs, ok := b.(string)
		return ok && a == bs
	default:
		return a == b
	}
}

// Count returns the total number of nodes, tokens, and list cells in the
// tree — a size metric used by benchmarks and tests.
func Count(v Value) int {
	switch v := v.(type) {
	case *Node:
		if v == nil {
			return 0
		}
		n := 1
		for _, c := range v.Children {
			n += Count(c)
		}
		return n
	case *Token:
		if v == nil {
			return 0
		}
		return 1
	case List:
		n := 1
		for _, c := range v {
			n += Count(c)
		}
		return n
	default:
		return 0
	}
}

// Walk applies fn to v and, recursively, to every descendant value in
// depth-first pre-order. Walking stops within a subtree when fn returns
// false for its root.
func Walk(v Value, fn func(Value) bool) {
	if !fn(v) {
		return
	}
	switch v := v.(type) {
	case *Node:
		if v != nil {
			for _, c := range v.Children {
				Walk(c, fn)
			}
		}
	case List:
		for _, c := range v {
			Walk(c, fn)
		}
	}
}

// Find returns the first node (pre-order) with the given constructor name,
// or nil if none exists.
func Find(v Value, name string) *Node {
	var found *Node
	Walk(v, func(v Value) bool {
		if found != nil {
			return false
		}
		if n, ok := v.(*Node); ok && n != nil && n.Name == name {
			found = n
			return false
		}
		return true
	})
	return found
}

// FindAll returns every node (pre-order) with the given constructor name.
func FindAll(v Value, name string) []*Node {
	var out []*Node
	Walk(v, func(v Value) bool {
		if n, ok := v.(*Node); ok && n != nil && n.Name == name {
			out = append(out, n)
		}
		return true
	})
	return out
}
