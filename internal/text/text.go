// Package text provides the source-text substrate shared by every layer of
// modpeg: immutable source buffers, byte-offset positions, human-readable
// line/column coordinates, and spans.
//
// All parsing machinery in this repository — the grammar-language front end
// in internal/syntax, the packrat engines in internal/vm, and parsers emitted
// by internal/codegen — reports locations in terms of this package, so error
// messages and AST locations are uniform across the system.
package text

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is an absolute byte offset into a Source. The zero value is the start
// of the input. Pos is deliberately a plain integer type so that hot parser
// loops can manipulate it without indirection.
type Pos int

// NoPos marks an unknown or absent position.
const NoPos Pos = -1

// IsValid reports whether p refers to an actual offset.
func (p Pos) IsValid() bool { return p >= 0 }

// Span is a half-open byte range [Start, End) within a single Source.
type Span struct {
	Start Pos
	End   Pos
}

// NoSpan marks an unknown or absent range.
var NoSpan = Span{NoPos, NoPos}

// NewSpan constructs the half-open span [start, end).
func NewSpan(start, end Pos) Span { return Span{Start: start, End: end} }

// IsValid reports whether the span refers to an actual range.
func (s Span) IsValid() bool { return s.Start.IsValid() && s.End.IsValid() && s.End >= s.Start }

// Len returns the number of bytes covered by the span, or 0 if invalid.
func (s Span) Len() int {
	if !s.IsValid() {
		return 0
	}
	return int(s.End - s.Start)
}

// Union returns the smallest span covering both s and o. Invalid operands
// are ignored; if both are invalid the result is invalid.
func (s Span) Union(o Span) Span {
	switch {
	case !s.IsValid():
		return o
	case !o.IsValid():
		return s
	}
	u := s
	if o.Start < u.Start {
		u.Start = o.Start
	}
	if o.End > u.End {
		u.End = o.End
	}
	return u
}

// Contains reports whether the byte offset p lies inside the span.
func (s Span) Contains(p Pos) bool {
	return s.IsValid() && p >= s.Start && p < s.End
}

func (s Span) String() string {
	if !s.IsValid() {
		return "<no span>"
	}
	return fmt.Sprintf("[%d,%d)", s.Start, s.End)
}

// Location is a human-readable coordinate: file name, 1-based line, 1-based
// column (in bytes). It is derived from a Pos via Source.Location.
type Location struct {
	File   string
	Line   int // 1-based
	Column int // 1-based, byte column
	Offset Pos
}

func (l Location) String() string {
	if l.File == "" {
		return fmt.Sprintf("%d:%d", l.Line, l.Column)
	}
	return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Column)
}

// Source is an immutable named input buffer with a lazily built line index.
// It is safe for concurrent readers once constructed.
type Source struct {
	name    string
	content string
	lines   []Pos // byte offset of the start of each line; lines[0] == 0
}

// NewSource builds a Source from a name (typically a file path; may be
// empty) and its full contents.
func NewSource(name, content string) *Source {
	s := &Source{name: name, content: content}
	s.lines = append(s.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			s.lines = append(s.lines, Pos(i+1))
		}
	}
	return s
}

// Name returns the source's name, e.g. its file path.
func (s *Source) Name() string { return s.name }

// Content returns the full text of the source.
func (s *Source) Content() string { return s.content }

// Len returns the length of the source in bytes.
func (s *Source) Len() int { return len(s.content) }

// Slice returns the text covered by the span, clamped to the buffer.
func (s *Source) Slice(sp Span) string {
	if !sp.IsValid() {
		return ""
	}
	start, end := int(sp.Start), int(sp.End)
	if start < 0 {
		start = 0
	}
	if end > len(s.content) {
		end = len(s.content)
	}
	if start >= end {
		return ""
	}
	return s.content[start:end]
}

// LineCount returns the number of lines in the source. An empty source has
// one (empty) line.
func (s *Source) LineCount() int { return len(s.lines) }

// Location converts a byte offset into file/line/column coordinates.
// Offsets past the end of the buffer are clamped to the final position.
func (s *Source) Location(p Pos) Location {
	if p < 0 {
		p = 0
	}
	if int(p) > len(s.content) {
		p = Pos(len(s.content))
	}
	// Find the last line start <= p.
	i := sort.Search(len(s.lines), func(i int) bool { return s.lines[i] > p }) - 1
	if i < 0 {
		i = 0
	}
	return Location{
		File:   s.name,
		Line:   i + 1,
		Column: int(p-s.lines[i]) + 1,
		Offset: p,
	}
}

// Line returns the text of the 1-based line number n without its trailing
// newline. Out-of-range line numbers yield the empty string.
func (s *Source) Line(n int) string {
	if n < 1 || n > len(s.lines) {
		return ""
	}
	start := int(s.lines[n-1])
	end := len(s.content)
	if n < len(s.lines) {
		end = int(s.lines[n]) - 1 // strip '\n'
	}
	if start > end {
		return ""
	}
	return s.content[start:end]
}

// Quote renders a single-line caret diagnostic for the given span, in the
// style of modern compilers:
//
//	3 | total = total + x
//	  |         ^^^^^
//
// Only the first line of multi-line spans is underlined.
func (s *Source) Quote(sp Span) string {
	if !sp.IsValid() {
		return ""
	}
	loc := s.Location(sp.Start)
	line := s.Line(loc.Line)
	prefix := fmt.Sprintf("%d | ", loc.Line)
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString(line)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", len(fmt.Sprint(loc.Line))))
	b.WriteString(" | ")
	b.WriteString(strings.Repeat(" ", loc.Column-1))
	n := sp.Len()
	if rem := len(line) - (loc.Column - 1); n > rem {
		n = rem
	}
	if n < 1 {
		n = 1
	}
	b.WriteString(strings.Repeat("^", n))
	return b.String()
}
