package text

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosValidity(t *testing.T) {
	if NoPos.IsValid() {
		t.Fatal("NoPos must be invalid")
	}
	if !Pos(0).IsValid() {
		t.Fatal("Pos(0) must be valid")
	}
	if !Pos(17).IsValid() {
		t.Fatal("Pos(17) must be valid")
	}
}

func TestSpanBasics(t *testing.T) {
	s := Span{2, 5}
	if !s.IsValid() || s.Len() != 3 {
		t.Fatalf("span %v: valid=%v len=%d", s, s.IsValid(), s.Len())
	}
	if NoSpan.IsValid() || NoSpan.Len() != 0 {
		t.Fatal("NoSpan must be invalid with zero length")
	}
	if (Span{5, 2}).IsValid() {
		t.Fatal("inverted span must be invalid")
	}
	if !s.Contains(2) || !s.Contains(4) || s.Contains(5) || s.Contains(1) {
		t.Fatal("Contains is wrong at boundaries")
	}
	if got := s.String(); got != "[2,5)" {
		t.Fatalf("String = %q", got)
	}
	if got := NoSpan.String(); got != "<no span>" {
		t.Fatalf("NoSpan.String = %q", got)
	}
}

func TestSpanUnion(t *testing.T) {
	cases := []struct {
		a, b, want Span
	}{
		{Span{1, 3}, Span{2, 7}, Span{1, 7}},
		{Span{4, 5}, Span{1, 2}, Span{1, 5}},
		{NoSpan, Span{1, 2}, Span{1, 2}},
		{Span{1, 2}, NoSpan, Span{1, 2}},
		{NoSpan, NoSpan, NoSpan},
		{Span{3, 3}, Span{3, 3}, Span{3, 3}},
	}
	for _, c := range cases {
		if got := c.a.Union(c.b); got != c.want {
			t.Errorf("Union(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSpanUnionProperties(t *testing.T) {
	// Union is commutative and covers both operands.
	f := func(a0, a1, b0, b1 uint8) bool {
		a := Span{Pos(a0), Pos(a0) + Pos(a1)}
		b := Span{Pos(b0), Pos(b0) + Pos(b1)}
		u := a.Union(b)
		if u != b.Union(a) {
			return false
		}
		return u.Start <= a.Start && u.Start <= b.Start && u.End >= a.End && u.End >= b.End
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceLocation(t *testing.T) {
	src := NewSource("f.mpeg", "ab\ncd\n\nxyz")
	cases := []struct {
		p    Pos
		line int
		col  int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // "ab\n": newline belongs to line 1
		{3, 2, 1}, {5, 2, 3},
		{6, 3, 1},
		{7, 4, 1}, {9, 4, 3}, {10, 4, 4}, // 10 == len, clamped end
		{99, 4, 4}, // clamped
		{-4, 1, 1}, // clamped
	}
	for _, c := range cases {
		loc := src.Location(c.p)
		if loc.Line != c.line || loc.Column != c.col {
			t.Errorf("Location(%d) = %d:%d, want %d:%d", c.p, loc.Line, loc.Column, c.line, c.col)
		}
	}
	if got := src.Location(3).String(); got != "f.mpeg:2:1" {
		t.Fatalf("Location.String = %q", got)
	}
	if got := (Location{Line: 2, Column: 1}).String(); got != "2:1" {
		t.Fatalf("anonymous Location.String = %q", got)
	}
}

func TestSourceLines(t *testing.T) {
	src := NewSource("", "one\ntwo\nthree")
	if src.LineCount() != 3 {
		t.Fatalf("LineCount = %d", src.LineCount())
	}
	want := []string{"one", "two", "three"}
	for i, w := range want {
		if got := src.Line(i + 1); got != w {
			t.Errorf("Line(%d) = %q, want %q", i+1, got, w)
		}
	}
	if src.Line(0) != "" || src.Line(4) != "" {
		t.Error("out-of-range lines must be empty")
	}
	empty := NewSource("", "")
	if empty.LineCount() != 1 || empty.Line(1) != "" {
		t.Error("empty source must have one empty line")
	}
}

func TestSourceSlice(t *testing.T) {
	src := NewSource("", "hello world")
	if got := src.Slice(Span{0, 5}); got != "hello" {
		t.Fatalf("Slice = %q", got)
	}
	if got := src.Slice(Span{6, 99}); got != "world" {
		t.Fatalf("clamped Slice = %q", got)
	}
	if got := src.Slice(NoSpan); got != "" {
		t.Fatalf("Slice(NoSpan) = %q", got)
	}
	if got := src.Slice(Span{8, 3}); got != "" {
		t.Fatalf("Slice(inverted) = %q", got)
	}
}

func TestLocationRoundTripProperty(t *testing.T) {
	// For random content and every offset, line/column must map back to the
	// same offset via the line start table.
	f := func(raw []byte) bool {
		content := strings.Map(func(r rune) rune {
			if r == '\r' {
				return 'x'
			}
			return r
		}, string(raw))
		src := NewSource("p", content)
		for p := 0; p <= len(content); p++ {
			loc := src.Location(Pos(p))
			lineStart := int(src.lines[loc.Line-1])
			if lineStart+loc.Column-1 != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuote(t *testing.T) {
	src := NewSource("g", "a = b / c ;\nnext")
	q := src.Quote(Span{4, 9})
	want := "1 | a = b / c ;\n  |     ^^^^^"
	if q != want {
		t.Fatalf("Quote:\n%q\nwant\n%q", q, want)
	}
	if src.Quote(NoSpan) != "" {
		t.Fatal("Quote(NoSpan) must be empty")
	}
	// Span running past end of line: caret run is clamped to the line.
	q = src.Quote(Span{10, 40})
	if !strings.HasSuffix(q, "^") || strings.Count(q, "^") != 1 {
		t.Fatalf("clamped Quote = %q", q)
	}
}

func TestErrorRendering(t *testing.T) {
	src := NewSource("m.mpeg", "module m;\nbad")
	e := Errorf(src, Span{10, 13}, "unexpected %q", "bad")
	if got := e.Error(); got != `m.mpeg:2:1: unexpected "bad"` {
		t.Fatalf("Error = %q", got)
	}
	if d := e.Detail(); !strings.Contains(d, "2 | bad") || !strings.Contains(d, "^^^") {
		t.Fatalf("Detail = %q", d)
	}
	anon := &Error{Msg: "plain"}
	if anon.Error() != "plain" || anon.Detail() != "plain" {
		t.Fatal("anonymous error must render message only")
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.Err() != nil || l.Len() != 0 {
		t.Fatal("empty list must be nil error")
	}
	src := NewSource("z", "x\ny")
	l.Addf(src, Span{2, 3}, "second")
	l.Addf(src, Span{0, 1}, "first")
	l.Addf(nil, NoSpan, "anon")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Sort()
	all := l.All()
	if all[0].Msg != "anon" || all[1].Msg != "first" || all[2].Msg != "second" {
		t.Fatalf("sorted order wrong: %v, %v, %v", all[0].Msg, all[1].Msg, all[2].Msg)
	}
	if err := l.Err(); err == nil || !strings.Contains(err.Error(), "first") {
		t.Fatalf("Err = %v", err)
	}

	var single ErrorList
	single.Addf(src, Span{0, 1}, "only")
	if got := single.Error(); strings.Contains(got, "\n") {
		t.Fatalf("single error must be one line: %q", got)
	}

	var merged ErrorList
	merged.Merge(&l)
	merged.Merge(nil)
	if merged.Len() != 3 {
		t.Fatalf("Merge len = %d", merged.Len())
	}
	var nilList *ErrorList
	if nilList.Len() != 0 || nilList.All() != nil {
		t.Fatal("nil list accessors must be safe")
	}
}
