package text

import (
	"fmt"
	"sort"
	"strings"
)

// Error is a diagnostic anchored to a location in a Source. It is the error
// currency of the whole system: the grammar front end, the module composer,
// the analyzer, and the parse engines all report *Error (or ErrorList)
// values so that callers can render consistent, source-quoting messages.
type Error struct {
	Src  *Source
	Span Span
	Msg  string
}

// Errorf creates an Error with a formatted message.
func Errorf(src *Source, sp Span, format string, args ...any) *Error {
	return &Error{Src: src, Span: sp, Msg: fmt.Sprintf(format, args...)}
}

// Error implements the error interface, rendering "file:line:col: msg".
func (e *Error) Error() string {
	if e.Src == nil || !e.Span.IsValid() {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Src.Location(e.Span.Start), e.Msg)
}

// Detail renders the error together with a quoted, caret-underlined source
// line, when location information is available.
func (e *Error) Detail() string {
	base := e.Error()
	if e.Src == nil || !e.Span.IsValid() {
		return base
	}
	return base + "\n" + e.Src.Quote(e.Span)
}

// ErrorList accumulates diagnostics. The zero value is ready to use. A nil
// or empty list is "no error"; use Err to convert to a plain error.
type ErrorList struct {
	list []*Error
}

// Add appends a diagnostic to the list.
func (l *ErrorList) Add(e *Error) { l.list = append(l.list, e) }

// Addf formats and appends a diagnostic.
func (l *ErrorList) Addf(src *Source, sp Span, format string, args ...any) {
	l.Add(Errorf(src, sp, format, args...))
}

// Merge appends every diagnostic from another list.
func (l *ErrorList) Merge(o *ErrorList) {
	if o != nil {
		l.list = append(l.list, o.list...)
	}
}

// Len returns the number of accumulated diagnostics.
func (l *ErrorList) Len() int {
	if l == nil {
		return 0
	}
	return len(l.list)
}

// All returns the accumulated diagnostics in order of addition.
func (l *ErrorList) All() []*Error {
	if l == nil {
		return nil
	}
	return l.list
}

// Sort orders diagnostics by source name, then offset, then message. It
// makes composed-module error output deterministic.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.list, func(i, j int) bool {
		a, b := l.list[i], l.list[j]
		an, bn := "", ""
		if a.Src != nil {
			an = a.Src.Name()
		}
		if b.Src != nil {
			bn = b.Src.Name()
		}
		if an != bn {
			return an < bn
		}
		if a.Span.Start != b.Span.Start {
			return a.Span.Start < b.Span.Start
		}
		return a.Msg < b.Msg
	})
}

// Error implements the error interface, one diagnostic per line.
func (l *ErrorList) Error() string {
	switch l.Len() {
	case 0:
		return "no errors"
	case 1:
		return l.list[0].Error()
	}
	var b strings.Builder
	for i, e := range l.list {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil when the list is empty.
func (l *ErrorList) Err() error {
	if l.Len() == 0 {
		return nil
	}
	return l
}
