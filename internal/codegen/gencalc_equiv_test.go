package codegen

import (
	"strings"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/codegen/gencalc"
	"modpeg/internal/grammars"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
)

// TestGeneratedMatchesInterpreter checks the central codegen property: the
// generated parser and the interpreting engine accept the same inputs and
// produce structurally identical values (compared via their s-expression
// renderings, which both sides define identically).
func TestGeneratedMatchesInterpreter(t *testing.T) {
	g, err := grammars.Compose(grammars.CalcCore)
	if err != nil {
		t.Fatal(err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Compile(tg, vm.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []string{
		"1",
		"1+2*3",
		"(1+2)*3",
		" 1 - 2 - 3 ",
		"((7))",
		"1*2+3*4-5",
		"",
		"1+",
		"x",
		"(1",
	}
	for _, in := range inputs {
		vVM, _, errVM := prog.Parse(text.NewSource("in", in))
		vGen, errGen := gencalc.Parse(in)
		if (errVM == nil) != (errGen == nil) {
			t.Fatalf("input %q: vm err=%v, gen err=%v", in, errVM, errGen)
		}
		if errVM != nil {
			continue
		}
		if ast.Format(vVM) != gencalc.Format(vGen) {
			t.Fatalf("input %q:\n  vm : %s\n  gen: %s", in, ast.Format(vVM), gencalc.Format(vGen))
		}
	}
}

func TestGeneratedErrorPositions(t *testing.T) {
	_, err := gencalc.Parse("1 + ")
	if err == nil {
		t.Fatal("must fail")
	}
	pe, ok := err.(*gencalc.ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos != 4 || pe.Line != 1 || pe.Column != 5 {
		t.Fatalf("error position = %+v", pe)
	}
	if !strings.Contains(err.Error(), "syntax error") {
		t.Fatalf("error = %v", err)
	}
	// Trailing garbage fails at the stuck position (the grammar's !. EOF
	// guard rejects it).
	_, err = gencalc.Parse("1 2")
	if err == nil {
		t.Fatal("trailing garbage must fail")
	}
	if pe := err.(*gencalc.ParseError); pe.Pos != 2 {
		t.Fatalf("error position = %+v", pe)
	}
}

func TestGeneratedValueShapes(t *testing.T) {
	v, err := gencalc.Parse("1 + 2*3")
	if err != nil {
		t.Fatal(err)
	}
	want := `(Add (Num "1") (Mul (Num "2") (Num "3")))`
	if got := gencalc.Format(v); got != want {
		t.Fatalf("value = %s", got)
	}
	n := v.(*gencalc.Node)
	if n.Name != "Add" || len(n.Children) != 2 {
		t.Fatalf("node = %+v", n)
	}
	if n.Start != 0 || n.End != 7 {
		t.Fatalf("span = [%d,%d)", n.Start, n.End)
	}
}
