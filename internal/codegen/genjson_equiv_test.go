package codegen

import (
	"go/format"
	"os"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/codegen/genjson"
	"modpeg/internal/grammars"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

func TestGoldenGenjson(t *testing.T) {
	data, err := os.ReadFile("genjson/genjson.go")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	g, err := grammars.Compose(grammars.JSON)
	if err != nil {
		t.Fatal(err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(tg, Options{Package: "genjson", EntryComment: "grammar: json.value (bundled)"})
	if err != nil {
		t.Fatal(err)
	}
	formatted, err := format.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(formatted) != string(data) {
		t.Fatal("genjson/genjson.go is stale; regenerate with go run ./internal/tools/gengrammar")
	}
}

func TestGenjsonMatchesInterpreter(t *testing.T) {
	g, err := grammars.Compose(grammars.JSON)
	if err != nil {
		t.Fatal(err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Compile(tg, vm.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []string{
		`null`, `[]`, `{}`, `{"a": [1, {"b": null}], "c": "s"}`,
		`-1.5e+3`, `"\""`,
		``, `{`, `[1,]`, `nul`,
	}
	// Plus generated corpora.
	for seed := int64(0); seed < 3; seed++ {
		inputs = append(inputs, workload.JSONDoc(workload.Config{Seed: seed, Size: 2000}))
	}
	for _, in := range inputs {
		vVM, _, errVM := prog.Parse(text.NewSource("in", in))
		vGen, errGen := genjson.Parse(in)
		if (errVM == nil) != (errGen == nil) {
			t.Fatalf("input %.40q: vm err=%v, gen err=%v", in, errVM, errGen)
		}
		if errVM != nil {
			continue
		}
		if ast.Format(vVM) != genjson.Format(vGen) {
			t.Fatalf("input %.60q:\n vm : %.200s\n gen: %.200s", in, ast.Format(vVM), genjson.Format(vGen))
		}
	}
}
