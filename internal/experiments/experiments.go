// Package experiments reproduces the paper's evaluation tables and
// figures as programmatic measurements, independent of the testing.B
// framework, so the CLI can print them and EXPERIMENTS.md can record
// them. Each function corresponds to one entry of the experiment index in
// DESIGN.md.
//
// Numbers are wall-clock measurements on synthetic corpora (see
// internal/workload); the paper's absolute numbers came from a 2006
// JVM testbed, so only the *shapes* — who wins, by what factor, where the
// crossovers are — are comparable.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"time"

	"modpeg/internal/core"
	"modpeg/internal/grammars"
	"modpeg/internal/loadbench"
	"modpeg/internal/peg"
	"modpeg/internal/serve"
	"modpeg/internal/syntax"
	"modpeg/internal/telemetry"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

// Options tunes measurement effort.
type Options struct {
	// InputKB is the corpus size for throughput experiments.
	InputKB int
	// MinTime is the minimum measurement window per configuration.
	MinTime time.Duration
}

// Defaults returns the options used for the recorded results.
func Defaults() Options {
	return Options{InputKB: 40, MinTime: 300 * time.Millisecond}
}

func (o Options) normalized() Options {
	if o.InputKB <= 0 {
		o.InputKB = 40
	}
	if o.MinTime <= 0 {
		o.MinTime = 300 * time.Millisecond
	}
	return o
}

// Table holds one rendered experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment.
func All(opts Options) []Table {
	return []Table{
		Table1(), Table2(opts), Table3(opts), Table4(opts), Table5(opts),
		Table7(opts), Table8(opts), Table9(opts), Table11(opts),
		Fig1(opts), Fig2(opts), Fig3(opts), HotProds(opts),
	}
}

// ByID runs one experiment by its identifier ("table1" ... "fig3",
// "hotprods", "limits").
func ByID(id string, opts Options) (Table, error) {
	switch strings.ToLower(id) {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(opts), nil
	case "table3":
		return Table3(opts), nil
	case "table4":
		return Table4(opts), nil
	case "table5":
		return Table5(opts), nil
	case "table7", "limits":
		return Table7(opts), nil
	case "table8", "incremental":
		return Table8(opts), nil
	case "table9", "telemetry":
		return Table9(opts), nil
	case "table11", "capacity":
		return Table11(opts), nil
	case "fig1":
		return Fig1(opts), nil
	case "fig2":
		return Fig2(opts), nil
	case "fig3":
		return Fig3(opts), nil
	case "hotprods":
		return HotProds(opts), nil
	}
	return Table{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ------------------------------------------------------------- measuring

// measure runs fn repeatedly for at least minTime and returns the mean
// duration of one run.
func measure(minTime time.Duration, fn func()) time.Duration {
	// Warm up once (memo tables, caches).
	fn()
	var n int
	start := time.Now()
	for time.Since(start) < minTime {
		fn()
		n++
	}
	return time.Since(start) / time.Duration(n)
}

// measureBest runs fn repeatedly for at least minTime and returns the
// fastest single run. Used where two timings are compared as a ratio
// (Table 8): the minimum discards GC pauses and scheduler noise that a
// short-window mean folds into one side of the ratio.
func measureBest(minTime time.Duration, fn func()) time.Duration {
	fn()
	best := time.Duration(1<<63 - 1)
	start := time.Now()
	for time.Since(start) < minTime {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func mbPerSec(bytes int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(bytes)/d.Seconds()/1e6)
}

func buildProgram(top string, topts transform.Options, eopts vm.Options) (*vm.Program, error) {
	g, err := grammars.Compose(top)
	if err != nil {
		return nil, err
	}
	tg, _, err := transform.Apply(g, topts)
	if err != nil {
		return nil, err
	}
	return vm.Compile(tg, eopts)
}

// ---------------------------------------------------------------- table1

// Table1 reports grammar modularity statistics for each bundled module —
// the analogue of the paper's per-module grammar size table.
func Table1() Table {
	t := Table{
		ID:     "Table 1",
		Title:  "grammar modularity statistics (per bundled module)",
		Header: []string{"module", "imports", "modifies", "prods", "overrides", "adds", "removes", "alts"},
	}
	resolver := grammars.Resolver()
	for _, name := range grammars.ModuleNames() {
		src, err := resolver.Resolve(name)
		if err != nil {
			continue
		}
		m, err := syntax.Parse(src)
		if err != nil {
			continue
		}
		s := peg.StatsOf(m)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(s.Imports), fmt.Sprint(s.Modifies),
			fmt.Sprint(s.Productions), fmt.Sprint(s.Overrides),
			fmt.Sprint(s.Additions), fmt.Sprint(s.Removals),
			fmt.Sprint(s.Alternatives),
		})
	}
	for _, top := range grammars.TopModules() {
		g, err := grammars.Compose(top)
		if err != nil {
			continue
		}
		s := peg.StatsOfGrammar(g)
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			continue
		}
		so := peg.StatsOfGrammar(tg)
		t.Rows = append(t.Rows, []string{
			"composed:" + top,
			fmt.Sprint(s.Modules), "-",
			fmt.Sprint(s.Productions), "-", "-", "-",
			fmt.Sprint(s.Alternatives),
		})
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %d productions after optimization, %d transient",
			top, so.Productions, so.Transient))
	}
	return t
}

// ---------------------------------------------------------------- table2

// ablationConfigs is shared between Table2 and the bench harness.
func ablationConfigs() []struct {
	Name  string
	Topts transform.Options
	Eopts vm.Options
} {
	all := transform.Defaults()
	mod := func(f func(*transform.Options)) transform.Options {
		o := all
		f(&o)
		return o
	}
	engine := func(f func(*vm.Options)) vm.Options {
		o := vm.Optimized()
		f(&o)
		return o
	}
	return []struct {
		Name  string
		Topts transform.Options
		Eopts vm.Options
	}{
		{"all-on", all, vm.Optimized()},
		{"no-transient-marking", mod(func(o *transform.Options) { o.MarkTransient = false }), vm.Optimized()},
		{"no-inlining", mod(func(o *transform.Options) { o.Inline = false }), vm.Optimized()},
		{"no-folding", mod(func(o *transform.Options) { o.FoldPrefixes = false; o.MergeClasses = false }), vm.Optimized()},
		{"no-dead-code", mod(func(o *transform.Options) { o.DeadCode = false }), vm.Optimized()},
		{"no-dispatch", all, engine(func(o *vm.Options) { o.Dispatch = false })},
		{"no-scan-fusion", all, engine(func(o *vm.Options) { o.ScanFusion = false })},
		// Static PGO: a nil Calls map treats every small production as
		// hot, exercising the inlining path without a profile run.
		{"pgo-inlining", all, engine(func(o *vm.Options) { o.PGO = &vm.PGO{} })},
		{"map-memo (no chunks)", all, engine(func(o *vm.Options) { o.ChunkedMemo = false })},
		{"expanded-repetitions", mod(func(o *transform.Options) { o.ExpandRepetitions = true }), vm.Optimized()},
		{"all-off (naive packrat)", transform.Baseline(), vm.NaivePackrat()},
	}
}

// Table2 reports the optimization-impact ablation on the Java-subset
// corpus: throughput and memo footprint with each optimization disabled
// in turn.
func Table2(opts Options) Table {
	opts = opts.normalized()
	input := workload.JavaProgram(workload.Config{Seed: 42, Size: opts.InputKB * 1024})
	src := text.NewSource("bench", input)
	t := Table{
		ID:     "Table 2",
		Title:  fmt.Sprintf("optimization ablation, java.core corpus (%d KB)", len(input)/1024),
		Header: []string{"configuration", "MB/s", "rel-time", "memoKB", "memo stores", "calls"},
	}
	var base time.Duration
	for _, c := range ablationConfigs() {
		prog, err := buildProgram(grammars.JavaCore, c.Topts, c.Eopts)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", c.Name, err))
			continue
		}
		_, stats, err := prog.Parse(src)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", c.Name, err))
			continue
		}
		d := measure(opts.MinTime, func() { prog.Parse(src) })
		if base == 0 {
			base = d
		}
		t.Rows = append(t.Rows, []string{
			c.Name,
			mbPerSec(len(input), d),
			fmt.Sprintf("%.2fx", float64(d)/float64(base)),
			fmt.Sprint(stats.MemoBytes / 1024),
			fmt.Sprint(stats.MemoStores),
			fmt.Sprint(stats.Calls),
		})
	}
	return t
}

// ---------------------------------------------------------------- table3

// Table3 compares the engines across the realistic corpora.
func Table3(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:     "Table 3",
		Title:  fmt.Sprintf("engine comparison (%d KB corpora)", opts.InputKB),
		Header: []string{"corpus", "engine", "MB/s", "rel-time", "memoKB"},
	}
	corpora := []struct {
		lang  string
		top   string
		input string
	}{
		{"java", grammars.JavaCore, workload.JavaProgram(workload.Config{Seed: 7, Size: opts.InputKB * 1024})},
		{"c", grammars.CCore, workload.CProgram(workload.Config{Seed: 7, Size: opts.InputKB * 1024})},
		{"json", grammars.JSON, workload.JSONDoc(workload.Config{Seed: 7, Size: opts.InputKB * 1024})},
		{"calc", grammars.CalcCore, workload.Expression(workload.Config{Seed: 7, Size: opts.InputKB * 1024})},
	}
	engines := []struct {
		name  string
		topts transform.Options
		eopts vm.Options
		pgo   bool // recompile with a profile of the same corpus
	}{
		{"backtracking", transform.Defaults(), vm.Backtracking(), false},
		{"naive-packrat", transform.Baseline(), vm.NaivePackrat(), false},
		{"optimized", transform.Defaults(), vm.Optimized(), false},
		{"optimized+pgo", transform.Defaults(), vm.Optimized(), true},
	}
	for _, c := range corpora {
		src := text.NewSource("bench", c.input)
		for _, e := range engines {
			eopts := e.eopts
			if e.pgo {
				// One profiled parse of the corpus feeds the
				// hot-production report back into Compile.
				base, err := buildProgram(c.top, e.topts, eopts)
				if err != nil {
					t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: %v", c.lang, e.name, err))
					continue
				}
				_, _, profile, err := base.ParseWithProfile(src)
				if err != nil {
					t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: %v", c.lang, e.name, err))
					continue
				}
				eopts.PGO = profile.PGO()
			}
			prog, err := buildProgram(c.top, e.topts, eopts)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: %v", c.lang, e.name, err))
				continue
			}
			_, stats, err := prog.Parse(src)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: %v", c.lang, e.name, err))
				continue
			}
			d := measure(opts.MinTime, func() { prog.Parse(src) })
			t.Rows = append(t.Rows, []string{
				c.lang, e.name,
				mbPerSec(len(c.input), d),
				"", // filled below once the optimized time is known
				fmt.Sprint(stats.MemoBytes / 1024),
			})
			// Store duration in the rel-time cell temporarily.
			t.Rows[len(t.Rows)-1][3] = fmt.Sprint(int64(d))
		}
		// Normalize rel-time to the optimized engine of this corpus.
		var opt int64
		for _, row := range t.Rows {
			if row[0] == c.lang && row[1] == "optimized" {
				fmt.Sscan(row[3], &opt)
			}
		}
		for _, row := range t.Rows {
			if row[0] == c.lang {
				var d int64
				fmt.Sscan(row[3], &d)
				row[3] = fmt.Sprintf("%.2fx", float64(d)/float64(opt))
			}
		}
	}
	return t
}

// ---------------------------------------------------------------- table4

// Table4 measures what modular composition costs: base vs extended
// grammar on the same base-language corpus.
func Table4(opts Options) Table {
	opts = opts.normalized()
	input := workload.JavaProgram(workload.Config{Seed: 11, Size: opts.InputKB * 1024})
	extInput := workload.JavaProgramExt(workload.Config{Seed: 11, Size: opts.InputKB * 1024})
	t := Table{
		ID:     "Table 4",
		Title:  "cost of modular composition (java.core vs java.full)",
		Header: []string{"measurement", "base (java.core)", "composed (java.full)"},
	}

	composeTime := func(top string) time.Duration {
		return measure(opts.MinTime, func() { grammars.Compose(top) })
	}
	t.Rows = append(t.Rows, []string{
		"compose time",
		composeTime(grammars.JavaCore).String(),
		composeTime(grammars.JavaFull).String(),
	})

	baseProg, err := buildProgram(grammars.JavaCore, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	fullProg, err := buildProgram(grammars.JavaFull, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	src := text.NewSource("bench", input)
	dBase := measure(opts.MinTime, func() { baseProg.Parse(src) })
	dFull := measure(opts.MinTime, func() { fullProg.Parse(src) })
	t.Rows = append(t.Rows, []string{
		"parse base-language corpus (MB/s)",
		mbPerSec(len(input), dBase),
		mbPerSec(len(input), dFull),
	})
	t.Rows = append(t.Rows, []string{
		"composition overhead on base corpus", "1.00x",
		fmt.Sprintf("%.2fx", float64(dFull)/float64(dBase)),
	})
	extSrc := text.NewSource("bench", extInput)
	dExt := measure(opts.MinTime, func() { fullProg.Parse(extSrc) })
	t.Rows = append(t.Rows, []string{
		"parse extended-language corpus (MB/s)", "n/a (rejects)",
		mbPerSec(len(extInput), dExt),
	})
	return t
}

// ---------------------------------------------------------------- table5

// allocsPerOp measures the mean heap allocations and bytes of one run of
// fn (after one warm-up run), independent of testing.B so the CLI can
// report it.
func allocsPerOp(fn func()) (allocs, bytes float64) {
	fn()
	const runs = 4
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs,
		float64(after.TotalAlloc-before.TotalAlloc) / runs
}

// Table5 measures engine residency: what amortizing the parse session's
// memo storage across parses buys. One operation parses a corpus of
// distinct Java-subset files, either with a cold session per file (the
// allocate-everything-per-parse baseline), with pooled sessions
// (Program.Parse's steady state), with one explicit reused session, or
// fanned across GOMAXPROCS workers via the concurrent batch API.
func Table5(opts Options) Table {
	opts = opts.normalized()
	const nFiles = 16
	fileKB := opts.InputKB / 4
	if fileKB < 1 {
		fileKB = 1
	}
	var srcs []*text.Source
	var totalBytes int
	for i := 0; i < nFiles; i++ {
		in := workload.JavaProgram(workload.Config{Seed: int64(100 + i), Size: fileKB * 1024})
		totalBytes += len(in)
		srcs = append(srcs, text.NewSource(fmt.Sprintf("file%d", i), in))
	}
	workers := runtime.GOMAXPROCS(0)
	t := Table{
		ID:     "Table 5",
		Title:  fmt.Sprintf("engine residency (java.core, %d files x %d KB per op)", nFiles, fileKB),
		Header: []string{"configuration", "MB/s", "rel-time", "allocs/op", "allocKB/op"},
		Notes: []string{
			fmt.Sprintf("batch-parallel uses %d worker(s) (GOMAXPROCS)", workers),
			"one op = parse all files; cold builds a fresh session per file, the others recycle memo storage",
		},
	}
	prog, err := buildProgram(grammars.JavaCore, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	session := prog.NewSession()
	configs := []struct {
		name string
		op   func()
	}{
		{"cold session per parse", func() {
			for _, src := range srcs {
				prog.NewSession().Parse(src)
			}
		}},
		{"pooled (Program.Parse)", func() {
			for _, src := range srcs {
				prog.Parse(src)
			}
		}},
		{"reused session", func() {
			for _, src := range srcs {
				session.Parse(src)
			}
		}},
		{"batch-parallel (ParseAll)", func() {
			prog.ParseAll(srcs, workers)
		}},
	}
	var base time.Duration
	for _, c := range configs {
		runtime.GC() // level the heap so earlier rows' garbage doesn't skew later ones
		d := measure(opts.MinTime, c.op)
		allocs, bytes := allocsPerOp(c.op)
		if base == 0 {
			base = d
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			mbPerSec(totalBytes, d),
			fmt.Sprintf("%.2fx", float64(d)/float64(base)),
			fmt.Sprintf("%.0f", allocs),
			fmt.Sprintf("%.0f", bytes/1024),
		})
	}
	return t
}

// ---------------------------------------------------------------- table7

// Table7 measures the resource-governance layer (vm.Limits): what
// governance costs when armed but idle, how fast a deadline stops an
// adversarial parse, and what memo-budget shedding degrades throughput
// to while keeping the footprint bounded. The serving-grade claims the
// table backs: governed-but-unlimited parsing is free, hostile inputs
// are stopped in bounded wall-clock time, and memory stays within the
// configured budget with the parse still completing.
func Table7(opts Options) Table {
	opts = opts.normalized()
	ctx := context.Background()
	input := workload.JavaProgram(workload.Config{Seed: 33, Size: opts.InputKB * 1024})
	src := text.NewSource("bench", input)
	t := Table{
		ID:     "Table 7",
		Title:  fmt.Sprintf("resource governance (java.core %d KB; adversarial inputs)", len(input)/1024),
		Header: []string{"scenario", "budget", "outcome", "MB/s", "detail"},
	}
	prog, err := buildProgram(grammars.JavaCore, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}

	// Baseline vs armed-but-unlimited governance.
	_, full, err := prog.Parse(src)
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	dPlain := measure(opts.MinTime, func() { prog.Parse(src) })
	t.Rows = append(t.Rows, []string{
		"ungoverned baseline", "-", "completes", mbPerSec(len(input), dPlain),
		fmt.Sprintf("memo %d KB", full.MemoBytes/1024),
	})
	dGov := measure(opts.MinTime, func() { prog.ParseContext(ctx, src, vm.Limits{}) })
	t.Rows = append(t.Rows, []string{
		"governed, zero limits", "-", "completes", mbPerSec(len(input), dGov),
		fmt.Sprintf("overhead %.2fx", float64(dGov)/float64(dPlain)),
	})

	// Memo-budget shedding: quarter of the corpus's natural footprint.
	budget := full.MemoBytes / 4
	session := prog.NewSession()
	_, shedStats, err := session.ParseContext(ctx, src, vm.Limits{MaxMemoBytes: budget})
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("shedding: %v", err))
	} else {
		dShed := measure(opts.MinTime, func() { session.ParseContext(ctx, src, vm.Limits{MaxMemoBytes: budget}) })
		t.Rows = append(t.Rows, []string{
			"memo budget (shedding)", fmt.Sprintf("%d KB", budget/1024),
			"completes degraded", mbPerSec(len(input), dShed),
			fmt.Sprintf("peak memo %d KB, sheds %d", shedStats.MemoBytes/1024, shedStats.MemoSheds),
		})
	}
	if _, _, err := prog.ParseContext(ctx, src, vm.Limits{MaxMemoBytes: budget, Strict: true}); err != nil {
		t.Rows = append(t.Rows, []string{
			"memo budget (strict)", fmt.Sprintf("%d KB", budget/1024),
			outcomeOf(err), "-", "-",
		})
	}

	// Depth limit against deep nesting.
	deep := text.NewSource("deep", workload.DeepExpression(20000))
	calcProg, err := buildProgram(grammars.CalcFull, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	if _, _, err := calcProg.ParseContext(ctx, deep, vm.Limits{MaxCallDepth: 256}); err != nil {
		t.Rows = append(t.Rows, []string{
			"call depth, 20000-deep parens", "256", outcomeOf(err), "-", "-",
		})
	}

	// Deadline against exponential backtracking: report worst observed
	// abort latency over repeated 1ms-deadline parses.
	g, err := core.Compose("path", core.MapResolver{"path": workload.PathologicalGrammar})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	tg, _, err := transform.Apply(g, transform.Baseline())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	pathProg, err := vm.Compile(tg, vm.Backtracking())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	advSrc := text.NewSource("adversarial", workload.Pathological(40))
	var worst time.Duration
	var lastErr error
	for i := 0; i < 10; i++ {
		start := time.Now()
		_, _, lastErr = pathProg.ParseContext(ctx, advSrc, vm.Limits{MaxParseDuration: time.Millisecond})
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	t.Rows = append(t.Rows, []string{
		"1ms deadline, exponential backtracking", "1ms", outcomeOf(lastErr), "-",
		fmt.Sprintf("worst abort latency %s over 10 runs", worst.Round(10*time.Microsecond)),
	})
	t.Notes = append(t.Notes,
		"shedding keeps the parse running with the memo table frozen at the budget; strict converts the same event into an error")
	return t
}

// outcomeOf renders an error for a Table7 outcome cell.
func outcomeOf(err error) string {
	var le *vm.LimitError
	if errors.As(err, &le) {
		return fmt.Sprintf("limit error (%s)", le.Kind)
	}
	if err != nil {
		return err.Error()
	}
	return "completes"
}

// ------------------------------------------------------------- hotprods

// HotProds is the profile-backed hot-production experiment: where does
// the optimized engine actually spend its time on the Java corpus? The
// per-production profiler answers with self-time rankings — the
// engine-level analogue of the paper's "which optimization pays"
// tables, aimed at grammar authors ("which production to mark
// transient/inline next"). It also measures what the profiler itself
// costs against the uninstrumented engine, since an observability tool
// that distorts the workload lies about it.
func HotProds(opts Options) Table {
	opts = opts.normalized()
	input := workload.JavaProgram(workload.Config{Seed: 21, Size: opts.InputKB * 1024})
	src := text.NewSource("bench", input)
	t := Table{
		ID:     "HotProds",
		Title:  fmt.Sprintf("hot productions by self time (java.core, %d KB, optimized engine)", len(input)/1024),
		Header: []string{"production", "calls", "memo-hits", "self-ms", "cum-ms", "self%"},
	}
	prog, err := buildProgram(grammars.JavaCore, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	pr := prog.NewProfiler()
	var stats vm.Stats
	const reps = 3
	for i := 0; i < reps; i++ {
		_, st, err := prog.ParseWithHook(src, pr)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			return t
		}
		stats.Add(st)
	}
	prof := pr.Profile()
	var totalSelf int64
	for i := range prof.Prods {
		totalSelf += prof.Prods[i].SelfNanos
	}
	for _, r := range prof.Top(10) {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprint(r.Calls), fmt.Sprint(r.MemoHits),
			fmt.Sprintf("%.2f", float64(r.SelfNanos)/1e6),
			fmt.Sprintf("%.2f", float64(r.CumNanos)/1e6),
			fmt.Sprintf("%.1f", 100*float64(r.SelfNanos)/float64(totalSelf)),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"profile aggregates %d parses; total calls %d == engine stats calls %d",
		reps, prof.TotalCalls(), stats.Calls))
	dPlain := measure(opts.MinTime, func() { prog.Parse(src) })
	dProf := measure(opts.MinTime, func() { prog.ParseWithHook(src, pr) })
	t.Notes = append(t.Notes, fmt.Sprintf(
		"profiler overhead: %.2fx (%s plain, %s profiled per parse)",
		float64(dProf)/float64(dPlain), dPlain, dProf))
	return t
}

// ------------------------------------------------------------------ fig1

// Fig1 reports parse time per input byte across input sizes — the
// linear-time scaling series.
func Fig1(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:     "Fig 1",
		Title:  "time scaling with input size (java.core, optimized engine)",
		Header: []string{"input KB", "parse time", "ns/byte"},
	}
	prog, err := buildProgram(grammars.JavaCore, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for _, kb := range []int{4, 16, 64, 256} {
		input := workload.JavaProgram(workload.Config{Seed: 5, Size: kb * 1024})
		src := text.NewSource("bench", input)
		d := measure(opts.MinTime, func() { prog.Parse(src) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(len(input) / 1024),
			d.String(),
			fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(len(input))),
		})
	}
	return t
}

// ------------------------------------------------------------------ fig2

// Fig2 reports the heap footprint of memoization per input byte.
func Fig2(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:     "Fig 2",
		Title:  "memoization heap per input byte (java.core)",
		Header: []string{"input KB", "configuration", "memoKB", "memoB/inputB"},
	}
	configs := []struct {
		name  string
		topts transform.Options
		eopts vm.Options
	}{
		{"naive packrat (map memo)", transform.Baseline(), vm.NaivePackrat()},
		{"optimized (chunks+transient)", transform.Defaults(), vm.Optimized()},
	}
	for _, kb := range []int{16, 64} {
		input := workload.JavaProgram(workload.Config{Seed: 9, Size: kb * 1024})
		src := text.NewSource("bench", input)
		for _, c := range configs {
			prog, err := buildProgram(grammars.JavaCore, c.topts, c.eopts)
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				continue
			}
			_, stats, err := prog.Parse(src)
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				continue
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(len(input) / 1024),
				c.name,
				fmt.Sprint(stats.MemoBytes / 1024),
				fmt.Sprintf("%.1f", float64(stats.MemoBytes)/float64(len(input))),
			})
		}
	}
	return t
}

// ------------------------------------------------------------------ fig3

// Fig3 demonstrates exponential backtracking vs linear packrat on the
// pathological grammar.
func Fig3(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:     "Fig 3",
		Title:  "pathological input: backtracking explodes, packrat stays linear",
		Header: []string{"depth", "engine", "production calls", "time"},
	}
	g, err := core.Compose("path", core.MapResolver{"path": workload.PathologicalGrammar})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	tg, _, err := transform.Apply(g, transform.Baseline())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for _, depth := range []int{8, 12, 16, 20} {
		input := workload.Pathological(depth)
		src := text.NewSource("bench", input)
		for _, e := range []struct {
			name string
			opts vm.Options
		}{
			{"backtracking", vm.Backtracking()},
			{"packrat", vm.NaivePackrat()},
		} {
			prog, err := vm.Compile(tg, e.opts)
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				continue
			}
			_, stats, err := prog.Parse(src)
			if err != nil {
				t.Notes = append(t.Notes, err.Error())
				continue
			}
			d := measure(opts.MinTime/4, func() { prog.Parse(src) })
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(depth), e.name,
				fmt.Sprint(stats.Calls),
				d.String(),
			})
		}
	}
	return t
}

// ---------------------------------------------------------------- table8

// Table8 measures incremental reparsing over recycled memo tables on the
// Java-subset corpus: the cost of a from-scratch reparse of the edited
// text vs an incremental Document.Apply, for three edit shapes — one
// byte, one statement line, and a 10% paste — at input sizes from 4 KB
// to 256 KB. The measured Apply alternates an insertion with its exact
// inverse, so every iteration does real invalidation work against a warm
// document; the reuse counters come from the insertion step.
func Table8(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:    "Table 8",
		Title: "incremental reparse vs full reparse, java.core corpus",
		Header: []string{"inputKB", "edit", "full", "incremental", "speedup",
			"reused", "invalidated", "relocated"},
	}
	prog, err := buildProgram(grammars.JavaCore, transform.Defaults(), vm.Optimized())
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	sizes := []int{4, 16, 64, 256}
	if opts.InputKB < 16 {
		// Fast mode (tests): keep the shape, skip the slow upper rungs.
		sizes = sizes[:2]
	}
	for _, kb := range sizes {
		input := workload.JavaProgram(workload.Config{Seed: 8, Size: kb * 1024})
		for _, e := range []struct {
			name string
			p    workload.EditPair
		}{
			{"1 byte", workload.JavaEditByte(input)},
			{"1 line", workload.JavaEditLine(input)},
			{"10% paste", workload.JavaEditBlob(input, 0.10)},
		} {
			edited := input[:e.p.Insert.Off] + e.p.Insert.Text + input[e.p.Insert.Off:]
			editedSrc := text.NewSource("bench", edited)
			if _, _, err := prog.Parse(editedSrc); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%dKB %s: %v", kb, e.name, err))
				continue
			}
			full := measureBest(opts.MinTime, func() { prog.Parse(editedSrc) })

			d := prog.NewDocument(text.NewSource("bench", input))
			if d.Err() != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%dKB %s: %v", kb, e.name, d.Err()))
				continue
			}
			pairTime := measureBest(opts.MinTime, func() {
				d.Apply(e.p.Insert)
				d.Apply(e.p.Delete)
			})
			incr := pairTime / 2
			_, stats, applyErr := d.Apply(e.p.Insert)
			if applyErr != nil || d.Err() != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%dKB %s: apply=%v parse=%v", kb, e.name, applyErr, d.Err()))
				continue
			}
			d.Apply(e.p.Delete)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(len(input) / 1024),
				e.name,
				full.Round(time.Microsecond).String(),
				incr.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1fx", float64(full)/float64(incr)),
				fmt.Sprint(stats.MemoReused),
				fmt.Sprint(stats.MemoInvalidated),
				fmt.Sprint(stats.MemoRelocated),
			})
		}
	}
	t.Notes = append(t.Notes,
		"incremental = mean of an insert/inverse-delete pair on a warm document; counters from the insert")
	return t
}

// ---------------------------------------------------------------- table9

// Table9 quantifies the telemetry pipeline's overhead: bare governed
// stats with the metrics registry disabled, the default configuration
// (registry counters + latency/input histograms + per-grammar
// counters), and full Chrome trace-event export through a ParseHook.
func Table9(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:    "Table 9",
		Title: "telemetry overhead: bare stats vs metrics+histograms vs trace export",
		Header: []string{"grammar", "inputKB", "bare", "metrics", "traced",
			"metrics-over", "trace-over"},
	}
	prev := vm.SetTelemetry(true)
	defer vm.SetTelemetry(prev)
	for _, cfg := range []struct {
		top string
		gen func(workload.Config) string
	}{
		{grammars.CalcFull, workload.Expression},
		{grammars.JSON, workload.JSONDoc},
	} {
		prog, err := buildProgram(cfg.top, transform.Defaults(), vm.Optimized())
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		input := cfg.gen(workload.Config{Seed: 9, Size: opts.InputKB * 1024})
		src := text.NewSource("bench", input)
		if _, _, err := prog.Parse(src); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", cfg.top, err))
			continue
		}

		vm.SetTelemetry(false)
		bare := measure(opts.MinTime, func() { prog.Parse(src) })
		vm.SetTelemetry(true)
		withMetrics := measure(opts.MinTime, func() { prog.Parse(src) })
		traced := measure(opts.MinTime, func() {
			tr := telemetry.NewTrace(prog, io.Discard)
			prog.ParseWithHook(src, tr)
			tr.Close()
		})

		over := func(base, d time.Duration) string {
			return fmt.Sprintf("%+.1f%%", (float64(d)-float64(base))/float64(base)*100)
		}
		t.Rows = append(t.Rows, []string{
			cfg.top,
			fmt.Sprint(len(input) / 1024),
			bare.Round(time.Microsecond).String(),
			withMetrics.Round(time.Microsecond).String(),
			traced.Round(time.Microsecond).String(),
			over(bare, withMetrics),
			over(bare, traced),
		})
	}
	t.Notes = append(t.Notes,
		"bare = SetTelemetry(false); metrics = default registry+histograms; traced = Chrome trace-event hook to io.Discard")
	return t
}

// --------------------------------------------------------------- table11

// Table11 measures end-to-end service capacity: the loadbench harness
// drives an in-process serve instance (closed loop, fixed worker
// count) under three traffic shapes and reports throughput and
// client-side latency quantiles. The contrast between "full" and
// "omit-values" isolates AST-serialization cost from parse cost; the
// contrast with "no-adversarial" shows what the worst-case corpus
// items cost the mix.
func Table11(opts Options) Table {
	opts = opts.normalized()
	t := Table{
		ID:     "Table 11",
		Title:  "serve capacity: closed-loop RPS and latency by traffic shape",
		Header: []string{"traffic", "rps", "p50", "p99", "p99.9", "requests", "errors"},
	}
	s, err := serve.New(serve.Config{
		Limits: vm.Limits{
			MaxInputBytes:    4 << 20,
			MaxMemoBytes:     64 << 20,
			MaxCallDepth:     100000,
			MaxParseDuration: 5 * time.Second,
		},
	})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	srvCtx, stop := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Serve(srvCtx, ln); close(done) }()
	defer func() {
		stop()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
		}
	}()
	base := "http://" + ln.Addr().String()

	phaseDur := 4 * opts.MinTime
	if phaseDur < 200*time.Millisecond {
		phaseDur = 200 * time.Millisecond
	}
	for _, cfg := range []struct {
		label       string
		adversarial bool
		omitValues  bool
	}{
		{"full corpus", true, false},
		{"omit-values", true, true},
		{"no-adversarial", false, false},
	} {
		rep, err := loadbench.Run(context.Background(), loadbench.Config{
			BaseURL:    base,
			Corpus:     loadbench.DefaultCorpus(cfg.adversarial),
			Mode:       loadbench.ModeClosed,
			Workers:    8,
			Duration:   phaseDur,
			Seed:       11,
			OmitValues: cfg.omitValues,
			Warmup:     phaseDur / 4,
		})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", cfg.label, err))
			continue
		}
		ph := rep.Phases[0]
		t.Rows = append(t.Rows, []string{
			cfg.label,
			fmt.Sprintf("%.0f", ph.AchievedRPS),
			time.Duration(ph.P50NS).Round(10 * time.Microsecond).String(),
			time.Duration(ph.P99NS).Round(10 * time.Microsecond).String(),
			time.Duration(ph.P999NS).Round(10 * time.Microsecond).String(),
			fmt.Sprint(ph.Sent),
			fmt.Sprint(ph.Unexpected),
		})
	}
	t.Notes = append(t.Notes,
		"closed loop, 8 workers, in-process server; DefaultCorpus mixes calc.full/json.value/java.core across 64B-64KB plus adversarial deep/huge/syntax-error items",
		"omit-values sets ParseRequest.OmitValue: parse capacity without AST serialization and transfer",
		"saturation search under an SLO: modpeg loadtest -mode ramp")
	return t
}
