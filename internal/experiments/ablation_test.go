package experiments

import (
	"fmt"
	"strings"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/grammars"
	"modpeg/internal/text"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

// TestAblationEquivalence is the property behind Table 2: every
// leave-one-out optimizer configuration is an *optimization*, not a
// semantics change. Each configuration must produce a bit-identical
// value rendering on the Java-subset corpus, agree on accept/reject for
// damaged inputs, and fail at the identical input position when it does
// fail (diagnostic production names may differ across transform
// pipelines; positions may not).
func TestAblationEquivalence(t *testing.T) {
	corpus := []struct {
		name  string
		input string
	}{
		{"small", workload.JavaProgram(workload.Config{Seed: 1, Size: 2_000})},
		{"medium", workload.JavaProgram(workload.Config{Seed: 2, Size: 24_000})},
	}
	// Damaged variants: drop a closing brace, splice a stray token.
	base := corpus[0].input
	mid := len(base) / 2
	corpus = append(corpus,
		struct{ name, input string }{"spliced", base[:mid] + " @@ " + base[mid:]},
		struct{ name, input string }{"truncated", strings.TrimRight(base[:mid], " \t\n")},
		struct{ name, input string }{"unbalanced", strings.Replace(base, "}", "", 1)},
	)

	configs := ablationConfigs()
	ref := configs[0]
	if ref.Name != "all-on" {
		t.Fatalf("ablationConfigs()[0] = %q, want all-on reference first", ref.Name)
	}
	refProg, err := buildProgram(grammars.JavaCore, ref.Topts, ref.Eopts)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		format string
		pos    text.Pos
		failed bool
	}
	parse := func(prog *vm.Program, name, input string) result {
		v, _, err := prog.Parse(text.NewSource(name, input))
		if err != nil {
			pe, ok := err.(*vm.ParseError)
			if !ok {
				t.Fatalf("%s: unexpected error type %T: %v", name, err, err)
			}
			return result{failed: true, pos: pe.Pos}
		}
		return result{format: ast.Format(v)}
	}

	refResults := map[string]result{}
	for _, c := range corpus {
		refResults[c.name] = parse(refProg, c.name, c.input)
	}

	for _, cfg := range configs[1:] {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := buildProgram(grammars.JavaCore, cfg.Topts, cfg.Eopts)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range corpus {
				got := parse(prog, c.name, c.input)
				want := refResults[c.name]
				if got.failed != want.failed {
					t.Fatalf("%s: accept=%v, all-on accept=%v", c.name, !got.failed, !want.failed)
				}
				if got.failed {
					if got.pos != want.pos {
						t.Fatalf("%s: fails at %d, all-on fails at %d", c.name, got.pos, want.pos)
					}
					continue
				}
				if got.format != want.format {
					t.Fatalf("%s: value rendering differs from all-on\n%s", c.name, diffHint(got.format, want.format))
				}
			}
		})
	}
}

// diffHint locates the first divergence between two renderings.
func diffHint(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			ha, hb := hi, hi
			if ha > len(a) {
				ha = len(a)
			}
			if hb > len(b) {
				hb = len(b)
			}
			return fmt.Sprintf("first divergence at byte %d:\n got:  ...%s\n want: ...%s", i, a[lo:ha], b[lo:hb])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}
