package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"modpeg/internal/vm"
)

// fast returns options tuned for test speed (tiny corpora, minimal
// windows); the shapes the assertions check hold regardless.
func fast() Options {
	return Options{InputKB: 6, MinTime: 5 * time.Millisecond}
}

func cell(t Table, row, col int) string { return t.Rows[row][col] }

func TestTable1Shapes(t *testing.T) {
	tbl := Table1()
	if tbl.ID != "Table 1" || len(tbl.Rows) < 20 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var sawExt, sawComposed bool
	for _, row := range tbl.Rows {
		if row[0] == "java.ext.assert" {
			sawExt = true
			if row[2] != "1" { // one modify clause
				t.Errorf("assert ext modifies = %s", row[2])
			}
			if row[5] != "1" { // one += addition
				t.Errorf("assert ext adds = %s", row[5])
			}
		}
		if strings.HasPrefix(row[0], "composed:java.full") {
			sawComposed = true
		}
	}
	if !sawExt || !sawComposed {
		t.Fatal("expected extension and composed rows")
	}
	out := tbl.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "module") {
		t.Fatalf("render = %q", out[:80])
	}
}

func TestTable2Shapes(t *testing.T) {
	tbl := Table2(fast())
	if len(tbl.Rows) != 11 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	if cell(tbl, 0, 0) != "all-on" || cell(tbl, 0, 2) != "1.00x" {
		t.Fatalf("baseline row = %v", tbl.Rows[0])
	}
	// The headline claims: disabling transient marking inflates the memo
	// table, and the naive configuration is slower than all-on.
	var allOnMemo, noTransientMemo int
	for _, row := range tbl.Rows {
		switch row[0] {
		case "all-on":
			if _, err := fmtSscan(row[3], &allOnMemo); err != nil {
				t.Fatal(err)
			}
		case "no-transient-marking":
			if _, err := fmtSscan(row[3], &noTransientMemo); err != nil {
				t.Fatal(err)
			}
		}
	}
	if noTransientMemo <= allOnMemo {
		t.Fatalf("no-transient memo %d must exceed all-on %d", noTransientMemo, allOnMemo)
	}
}

func TestTable3Shapes(t *testing.T) {
	tbl := Table3(fast())
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	// Every corpus must have its optimized engine at rel-time 1.00x.
	count := 0
	for _, row := range tbl.Rows {
		if row[1] == "optimized" {
			if row[3] != "1.00x" {
				t.Fatalf("optimized rel-time = %v", row)
			}
			count++
		}
		if row[1] == "backtracking" && row[4] != "0" {
			t.Fatalf("backtracking memo must be 0: %v", row)
		}
	}
	if count != 4 {
		t.Fatalf("optimized rows = %d", count)
	}
}

func TestTable4Shapes(t *testing.T) {
	tbl := Table4(fast())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	if cell(tbl, 2, 1) != "1.00x" {
		t.Fatalf("base overhead = %v", tbl.Rows[2])
	}
}

func TestFig1Shapes(t *testing.T) {
	tbl := Fig1(Options{InputKB: 4, MinTime: 5 * time.Millisecond})
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig2Shapes(t *testing.T) {
	tbl := Fig2(fast())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	// Optimized must use less memo per byte than naive at each size.
	for i := 0; i < len(tbl.Rows); i += 2 {
		var naive, opt float64
		if _, err := fmtSscan(tbl.Rows[i][3], &naive); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(tbl.Rows[i+1][3], &opt); err != nil {
			t.Fatal(err)
		}
		if opt >= naive {
			t.Fatalf("optimized memo/byte %.1f must beat naive %.1f", opt, naive)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	tbl := Fig3(Options{MinTime: 4 * time.Millisecond})
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Backtracking calls must grow superlinearly with depth while packrat
	// calls stay roughly linear.
	var backCalls, packCalls []float64
	for _, row := range tbl.Rows {
		var c float64
		if _, err := fmtSscan(row[2], &c); err != nil {
			t.Fatal(err)
		}
		if row[1] == "backtracking" {
			backCalls = append(backCalls, c)
		} else {
			packCalls = append(packCalls, c)
		}
	}
	// depth 8 -> 20: backtracking should blow up by far more than the
	// depth ratio; packrat by roughly the depth ratio.
	if backCalls[len(backCalls)-1]/backCalls[0] < 100 {
		t.Fatalf("backtracking growth too small: %v", backCalls)
	}
	if packCalls[len(packCalls)-1]/packCalls[0] > 10 {
		t.Fatalf("packrat growth too large: %v", packCalls)
	}
}

func TestByIDAndAll(t *testing.T) {
	if _, err := ByID("nope", fast()); err == nil {
		t.Fatal("unknown id must fail")
	}
	tbl, err := ByID("TABLE1", fast())
	if err != nil || tbl.ID != "Table 1" {
		t.Fatalf("ByID: %v", err)
	}
	for _, id := range []string{"table2", "table3", "table4", "table5", "table7", "limits", "table8", "incremental", "table9", "telemetry", "table11", "capacity", "fig1", "fig2", "fig3", "hotprods"} {
		if _, err := ByID(id, Options{InputKB: 2, MinTime: time.Millisecond}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	// All with minimal settings must produce 13 tables.
	if got := All(Options{InputKB: 2, MinTime: time.Millisecond}); len(got) != 13 {
		t.Fatalf("All = %d tables", len(got))
	}
}

// fmtSscan is a tiny wrapper so tests read naturally.
func fmtSscan(s string, v any) (int, error) {
	return sscan(s, v)
}

func sscan(s string, v any) (int, error) { return fmt.Sscan(s, v) }

func TestTable7Shapes(t *testing.T) {
	tbl := Table7(fast())
	if tbl.ID != "Table 7" || len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	outcomes := map[string]string{}
	for _, row := range tbl.Rows {
		outcomes[row[0]] = row[2]
	}
	if outcomes["ungoverned baseline"] != "completes" ||
		outcomes["governed, zero limits"] != "completes" {
		t.Fatalf("governed/ungoverned rows: %v", outcomes)
	}
	if outcomes["memo budget (shedding)"] != "completes degraded" {
		t.Fatalf("shedding row: %v", outcomes)
	}
	if outcomes["memo budget (strict)"] != "limit error (memo-bytes)" {
		t.Fatalf("strict row: %v", outcomes)
	}
	if outcomes["call depth, 20000-deep parens"] != "limit error (call-depth)" {
		t.Fatalf("depth row: %v", outcomes)
	}
	if outcomes["1ms deadline, exponential backtracking"] != "limit error (deadline)" {
		t.Fatalf("deadline row: %v", outcomes)
	}
}

func TestTable5Shapes(t *testing.T) {
	tbl := Table5(fast())
	if tbl.ID != "Table 5" || len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	if cell(tbl, 0, 0) != "cold session per parse" || cell(tbl, 0, 2) != "1.00x" {
		t.Fatalf("baseline row = %v", tbl.Rows[0])
	}
	// The headline claim: recycling sessions sheds the per-parse
	// allocations. The reused-session row must allocate far less than the
	// cold baseline (machinery gone; only semantic values remain).
	var coldAllocs, warmAllocs float64
	fmt.Sscan(cell(tbl, 0, 3), &coldAllocs)
	fmt.Sscan(cell(tbl, 2, 3), &warmAllocs)
	if warmAllocs >= coldAllocs {
		t.Errorf("reused session allocs %v must be below cold %v", warmAllocs, coldAllocs)
	}
	out := tbl.Render()
	if !strings.Contains(out, "engine residency") {
		t.Fatalf("render = %q", out[:60])
	}
}

func TestTable8Shapes(t *testing.T) {
	tbl := Table8(fast())
	// Fast mode trims the size ladder to 4 and 16 KB; three edit shapes each.
	if tbl.ID != "Table 8" || len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	for _, row := range tbl.Rows {
		var speedup float64
		if _, err := fmt.Sscanf(row[4], "%fx", &speedup); err != nil {
			t.Fatalf("speedup cell %q: %v", row[4], err)
		}
		if speedup <= 1 {
			t.Errorf("%s KB / %s: incremental apply is not faster than full reparse (%s)",
				row[0], row[1], row[4])
		}
		var relocated int
		fmt.Sscan(row[7], &relocated)
		if relocated == 0 {
			t.Errorf("%s KB / %s: no entries relocated — reuse machinery idle", row[0], row[1])
		}
	}
}

func TestTable9Shapes(t *testing.T) {
	tbl := Table9(fast())
	if tbl.ID != "Table 9" || len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Notes)
	}
	if !vm.TelemetryEnabled() {
		t.Error("Table9 left the telemetry registry disabled")
	}
	for _, row := range tbl.Rows {
		for _, cell := range []string{row[5], row[6]} {
			var pct float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(cell, "+"), "%f%%", &pct); err != nil {
				t.Fatalf("overhead cell %q: %v", cell, err)
			}
		}
	}
}

func TestTable11Shapes(t *testing.T) {
	tbl := Table11(fast())
	if tbl.ID != "Table 11" {
		t.Fatalf("ID = %q", tbl.ID)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 traffic shapes (notes: %v)", len(tbl.Rows), tbl.Notes)
	}
	labels := map[string]bool{}
	for _, row := range tbl.Rows {
		labels[row[0]] = true
		if row[1] == "0" {
			t.Errorf("%s: zero achieved RPS", row[0])
		}
		if row[6] != "0" {
			t.Errorf("%s: unexpected errors against in-process server: %s", row[0], row[6])
		}
	}
	for _, want := range []string{"full corpus", "omit-values", "no-adversarial"} {
		if !labels[want] {
			t.Errorf("missing traffic shape %q", want)
		}
	}
	if !strings.Contains(tbl.Render(), "p99") {
		t.Error("render missing header")
	}
}
