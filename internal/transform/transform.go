// Package transform implements the grammar-level optimization suite of the
// paper's system as independent, toggleable passes. Together with the
// engine-level options in internal/vm (chunked memoization, transient skip,
// terminal dispatch), these are what make packrat parsing practical.
//
// Passes (in application order):
//
//   - NormalizeClasses: sort and merge character-class ranges.
//   - LeftRecursion: rewrite directly left-recursive productions into
//     peg.LeftRec iteration nodes, preserving left-associative value
//     construction.
//   - ExpandRepetitions: a *pessimization* used to build the paper's
//     baseline — desugars e*/e+ into synthetic recursive productions so
//     that every iteration step is a memoized nonterminal, the way naive
//     packrat parsers work. Off by default.
//   - Inline: replace references to cheap, non-recursive productions with
//     their bodies (value semantics preserved; void and text productions
//     are wrapped accordingly).
//   - FoldPrefixes: factor common alternative prefixes, applied only in
//     value-free contexts (void/text productions and inside captures).
//   - MergeClasses: merge single-byte alternatives into one character
//     class, in value-free contexts.
//   - DeadCode: drop alternatives that can never be reached (after an
//     unconditionally succeeding empty alternative) and productions
//     unreachable from the root.
//   - MarkTransient: mark productions whose memoization cannot pay off
//     (single reference site, or cheaper to re-parse than to memoize) as
//     transient, unless explicitly pinned with `memo`.
//
// Apply clones the input grammar, so optimized and unoptimized versions of
// the same grammar can be compared side by side (the ablation benchmarks do
// exactly that).
package transform

import (
	"fmt"
	"strings"

	"modpeg/internal/analysis"
	"modpeg/internal/peg"
)

// Options selects the passes to run. The zero value runs nothing; use
// Defaults for the standard optimizing pipeline.
type Options struct {
	NormalizeClasses bool
	LeftRecursion    bool
	// ExpandRepetitions is a pessimization used for baseline measurements;
	// it conflicts with nothing but costs time and memo space.
	ExpandRepetitions bool
	Inline            bool
	// InlineCostLimit bounds the body cost of productions considered for
	// inlining (analysis.ExprCost units). Zero means DefaultInlineCost.
	InlineCostLimit int
	FoldPrefixes    bool
	MergeClasses    bool
	DeadCode        bool
	MarkTransient   bool
	// TransientCostLimit bounds the body cost under which re-parsing is
	// considered cheaper than memoizing. Zero means DefaultTransientCost.
	TransientCostLimit int
}

// DefaultInlineCost is the default inlining body-cost bound.
const DefaultInlineCost = 12

// DefaultTransientCost is the default cheaper-to-reparse bound.
const DefaultTransientCost = 6

// Defaults returns the full optimizing pipeline.
func Defaults() Options {
	return Options{
		NormalizeClasses: true,
		LeftRecursion:    true,
		Inline:           true,
		FoldPrefixes:     true,
		MergeClasses:     true,
		DeadCode:         true,
		MarkTransient:    true,
	}
}

// Baseline returns the naive-packrat configuration used as the paper's
// "no optimizations" comparison point: left recursion must still be
// transformed (the engines cannot run it), repetitions are expanded into
// memoized recursive productions, and nothing else runs.
func Baseline() Options {
	return Options{LeftRecursion: true, ExpandRepetitions: true}
}

// Report counts what each pass did, for logs and the ablation tables.
type Report struct {
	ClassesNormalized int
	LeftRecRewritten  int
	RepetitionsSplit  int
	Inlined           int
	PrefixesFolded    int
	ClassesMerged     int
	DeadAlternatives  int
	DeadProductions   int
	MarkedTransient   int
}

// String renders the report as one line per non-zero counter.
func (r *Report) String() string {
	var b strings.Builder
	add := func(label string, n int) {
		if n > 0 {
			fmt.Fprintf(&b, "%s: %d\n", label, n)
		}
	}
	add("character classes normalized", r.ClassesNormalized)
	add("left-recursive productions rewritten", r.LeftRecRewritten)
	add("repetitions expanded", r.RepetitionsSplit)
	add("references inlined", r.Inlined)
	add("common prefixes folded", r.PrefixesFolded)
	add("alternatives merged into classes", r.ClassesMerged)
	add("dead alternatives removed", r.DeadAlternatives)
	add("unreachable productions removed", r.DeadProductions)
	add("productions marked transient", r.MarkedTransient)
	if b.Len() == 0 {
		return "no changes\n"
	}
	return b.String()
}

// Apply runs the selected passes over a clone of g and returns the
// transformed grammar plus a report. The input grammar is not modified.
func Apply(g *peg.Grammar, opts Options) (*peg.Grammar, *Report, error) {
	out := g.Clone()
	rep := &Report{}
	if opts.NormalizeClasses {
		normalizeClasses(out, rep)
	}
	if opts.LeftRecursion {
		if err := rewriteLeftRecursion(out, rep); err != nil {
			return nil, nil, err
		}
	}
	if opts.ExpandRepetitions {
		expandRepetitions(out, rep)
	}
	if opts.Inline {
		limit := opts.InlineCostLimit
		if limit == 0 {
			limit = DefaultInlineCost
		}
		inline(out, rep, limit)
	}
	if opts.FoldPrefixes {
		foldPrefixes(out, rep)
	}
	if opts.MergeClasses {
		mergeClasses(out, rep)
	}
	if opts.DeadCode {
		deadCode(out, rep)
	}
	if opts.MarkTransient {
		limit := opts.TransientCostLimit
		if limit == 0 {
			limit = DefaultTransientCost
		}
		markTransient(out, rep, limit)
	}
	return out, rep, nil
}

// ----------------------------------------------------------- class passes

func normalizeClasses(g *peg.Grammar, rep *Report) {
	for _, name := range g.Order {
		peg.Walk(g.Prods[name].Choice, func(e peg.Expr) {
			if c, ok := e.(*peg.CharClass); ok {
				before := len(c.Ranges)
				c.Normalize()
				if len(c.Ranges) != before {
					rep.ClassesNormalized++
				}
			}
		})
	}
}

// -------------------------------------------------------- left recursion

// rewriteLeftRecursion converts every directly left-recursive production
// "P = P s1 / P s2 / b1 / b2" into "P = leftrec((b1/b2) ; s1 / s2)".
// An alternative counts as left-recursive exactly when its first item is a
// reference to P itself; remaining (indirect/hidden) left recursion is a
// hard error, matching the paper's tool which rejects what it cannot
// transform.
func rewriteLeftRecursion(g *peg.Grammar, rep *Report) error {
	a := analysis.Analyze(g)
	for _, name := range g.Order {
		p := g.Prods[name]
		if p.Choice == nil || !a.DirectLeftRec[name] {
			continue
		}
		var seeds []*peg.Seq
		var suffixes []*peg.Seq
		for _, alt := range p.Choice.Alts {
			if len(alt.Items) > 0 {
				if nt, ok := alt.Items[0].Expr.(*peg.NonTerm); ok && nt.Name == name {
					suffix := &peg.Seq{
						Label: alt.Label,
						Items: alt.Items[1:],
						Ctor:  alt.Ctor,
						Sp:    alt.Sp,
					}
					suffixes = append(suffixes, suffix)
					continue
				}
			}
			seeds = append(seeds, alt)
		}
		if len(seeds) == 0 {
			return fmt.Errorf("transform: production %q is left-recursive in every alternative", name)
		}
		lr := &peg.LeftRec{
			Name:     name,
			Seed:     &peg.Choice{Alts: seeds, Sp: p.Choice.Sp},
			Suffixes: suffixes,
			Sp:       p.Choice.Sp,
		}
		p.Choice = &peg.Choice{Alts: []*peg.Seq{{Items: []peg.Item{{Expr: lr}}, Sp: p.Choice.Sp}}, Sp: p.Choice.Sp}
		p.Attrs |= peg.AttrSynthetic
		rep.LeftRecRewritten++
	}
	return nil
}

// ------------------------------------------------- repetition expansion

// expandRepetitions desugars each repetition into a synthetic recursive
// production, re-creating the structure a naive packrat parser memoizes
// at every step:
//
//	e*  becomes  R      where  R = e R / ()
//	e+  becomes  e R
//
// To keep semantic values identical to the iterative form, the synthetic
// sequences use the engines' splice protocol: items bound to peg.BindHead
// contribute their (non-nil) value, items bound to peg.BindTail splice the
// callee's list, and the whole sequence produces a flat ast.List — exactly
// what an iterative repetition produces. Repetitions over value-free
// bodies expand to plain void structure instead (their iterative value is
// nil, not an empty list).
func expandRepetitions(g *peg.Grammar, rep *Report) {
	x := &repExpander{g: g, rep: rep, a: analysis.Analyze(g)}
	for _, name := range append([]string(nil), g.Order...) {
		p := g.Prods[name]
		if p.Choice == nil {
			continue
		}
		x.prod = name
		p.Choice = x.expand(p.Choice).(*peg.Choice)
	}
}

// repExpander rewrites repetitions top-down: the valued/void decision for
// an outer repetition must be taken while its body still contains the
// *original* inner repetitions (a synthesized helper reference would look
// value-producing even when the body is void).
type repExpander struct {
	g       *peg.Grammar
	rep     *Report
	a       *analysis.Analysis
	prod    string
	counter int
}

func (x *repExpander) expand(e peg.Expr) peg.Expr {
	switch e := e.(type) {
	case *peg.Repeat:
		return x.expandRepeat(e)
	case *peg.Seq:
		for i := range e.Items {
			e.Items[i].Expr = x.expand(e.Items[i].Expr)
		}
	case *peg.Choice:
		for i, a := range e.Alts {
			e.Alts[i] = x.expand(a).(*peg.Seq)
		}
	case *peg.Optional:
		e.Expr = x.expand(e.Expr)
	case *peg.And:
		e.Expr = x.expand(e.Expr)
	case *peg.Not:
		e.Expr = x.expand(e.Expr)
	case *peg.Capture:
		e.Expr = x.expand(e.Expr)
	case *peg.LeftRec:
		e.Seed = x.expand(e.Seed).(*peg.Choice)
		for i, s := range e.Suffixes {
			e.Suffixes[i] = x.expand(s).(*peg.Seq)
		}
	}
	return e
}

func (x *repExpander) expandRepeat(r *peg.Repeat) peg.Expr {
	x.counter++
	x.rep.RepetitionsSplit++
	helper := fmt.Sprintf("%s#rep%d", x.prod, x.counter)
	valued := x.a.ExprValued(r.Expr) // decided on the un-expanded body
	body := x.expand(peg.CloneExpr(r.Expr))
	bodyAgain := x.expand(peg.CloneExpr(r.Expr))

	var helperBody *peg.Choice
	var plusSeq *peg.Seq
	attrs := peg.AttrSynthetic
	if valued {
		helperBody = &peg.Choice{Alts: []*peg.Seq{
			{Items: []peg.Item{
				{Bind: peg.BindHead, Expr: body},
				{Bind: peg.BindTail, Expr: peg.Ref(helper)},
			}},
			{Items: []peg.Item{{Bind: peg.BindEmpty, Expr: peg.Eps()}}},
		}}
		plusSeq = &peg.Seq{Items: []peg.Item{
			{Bind: peg.BindHead, Expr: bodyAgain},
			{Bind: peg.BindTail, Expr: &peg.NonTerm{Name: helper, Sp: r.Sp}},
		}, Sp: r.Sp}
	} else {
		// The iterative form of a value-free repetition yields nil, so the
		// expansion is void as well.
		attrs |= peg.AttrVoid
		helperBody = peg.Alt(
			peg.SeqOf(body, peg.Ref(helper)),
			peg.SeqOf(peg.Eps()),
		)
		plusSeq = &peg.Seq{Items: []peg.Item{
			{Expr: bodyAgain},
			{Expr: &peg.NonTerm{Name: helper, Sp: r.Sp}},
		}, Sp: r.Sp}
	}
	x.g.Add(&peg.Production{
		Name:   helper,
		Attrs:  attrs,
		Kind:   peg.Define,
		Choice: helperBody,
	})
	if r.Min == 0 {
		return &peg.NonTerm{Name: helper, Sp: r.Sp}
	}
	return plusSeq
}

// ----------------------------------------------------------------- inline

// inline replaces references to small, non-recursive productions with
// their bodies.
func inline(g *peg.Grammar, rep *Report, costLimit int) {
	// Iterate to a fixpoint but bound the rounds to keep growth in check.
	for round := 0; round < 4; round++ {
		a := analysis.Analyze(g)
		candidates := map[string]*peg.Production{}
		for _, name := range g.Order {
			p := g.Prods[name]
			if name == g.Root || p.Choice == nil {
				continue
			}
			if p.Attrs.Has(peg.AttrNoInline) || p.Attrs.Has(peg.AttrMemo) {
				continue
			}
			if a.Recursive[name] {
				continue
			}
			if hasLeftRec(p.Choice) {
				continue
			}
			if !p.Attrs.Has(peg.AttrInline) && a.Cost[name] > costLimit {
				continue
			}
			candidates[name] = p
		}
		if len(candidates) == 0 {
			return
		}
		changed := 0
		for _, name := range g.Order {
			p := g.Prods[name]
			if p.Choice == nil {
				continue
			}
			p.Choice = peg.Rewrite(p.Choice, func(e peg.Expr) peg.Expr {
				nt, ok := e.(*peg.NonTerm)
				if !ok {
					return e
				}
				target, ok := candidates[nt.Name]
				if !ok || nt.Name == name {
					return e
				}
				body, ok := inlineBody(a, target, nt)
				if !ok {
					return e
				}
				changed++
				rep.Inlined++
				return body
			}).(*peg.Choice)
		}
		if changed == 0 {
			return
		}
	}
}

func hasLeftRec(e peg.Expr) bool {
	found := false
	peg.Walk(e, func(x peg.Expr) {
		if _, ok := x.(*peg.LeftRec); ok {
			found = true
		}
	})
	return found
}

// inlineBody clones target's body in a form whose value semantics equal a
// reference to it; ok is false when no such form exists (void productions
// whose bodies produce values).
func inlineBody(a *analysis.Analysis, target *peg.Production, at *peg.NonTerm) (peg.Expr, bool) {
	body := peg.CloneExpr(target.Choice).(*peg.Choice)
	// Inlined copies must not carry anchor labels (those are per-production).
	for _, alt := range body.Alts {
		alt.Label = ""
	}
	var e peg.Expr = body
	if len(body.Alts) == 1 {
		alt := body.Alts[0]
		if alt.Ctor == "" && len(alt.Items) == 1 && alt.Items[0].Bind == "" {
			e = alt.Items[0].Expr
		} else if alt.Ctor == "" && !alt.HasBindings() && len(alt.Items) > 1 {
			e = alt
		}
	}
	switch {
	case target.Attrs.Has(peg.AttrText):
		return &peg.Capture{Expr: e, Sp: at.Sp}, true
	case target.Attrs.Has(peg.AttrVoid):
		// A void production produces nil. Inlining its body would expose
		// the body's values, so only value-free bodies are inlinable.
		if a.ExprValued(e) {
			return nil, false
		}
		return e, true
	default:
		return e, true
	}
}
