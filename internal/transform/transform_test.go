package transform

import (
	"strings"
	"testing"

	"modpeg/internal/analysis"
	"modpeg/internal/core"
	"modpeg/internal/peg"
)

func grammarOf(t *testing.T, body string) *peg.Grammar {
	t.Helper()
	g, err := core.Compose("m", core.MapResolver{"m": "module m;\n" + body})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	return g
}

func apply(t *testing.T, g *peg.Grammar, opts Options) (*peg.Grammar, *Report) {
	t.Helper()
	out, rep, err := Apply(g, opts)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return out, rep
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	g := grammarOf(t, `
public S = S "+" T / T ;
T = [0-9] ;
`)
	before := peg.FormatGrammar(g)
	apply(t, g, Defaults())
	if peg.FormatGrammar(g) != before {
		t.Fatal("Apply mutated its input")
	}
}

func TestLeftRecursionRewrite(t *testing.T) {
	g := grammarOf(t, `
public S = Sum ;
Sum = <add> l:Sum "+" r:Prod @Add / <sub> l:Sum "-" r:Prod @Sub / Prod ;
Prod = [0-9] ;
`)
	out, rep := apply(t, g, Options{LeftRecursion: true})
	if rep.LeftRecRewritten != 1 {
		t.Fatalf("rewritten = %d", rep.LeftRecRewritten)
	}
	sum := out.Prods["m.Sum"]
	lr, ok := sum.Choice.Alts[0].Items[0].Expr.(*peg.LeftRec)
	if !ok {
		t.Fatalf("Sum body = %s", peg.FormatExpr(sum.Choice))
	}
	if len(lr.Suffixes) != 2 || lr.Suffixes[0].Ctor != "Add" || lr.Suffixes[1].Ctor != "Sub" {
		t.Fatalf("suffixes = %v", lr.Suffixes)
	}
	// The leading self-reference must be stripped from suffixes.
	if len(lr.Suffixes[0].Items) != 2 {
		t.Fatalf("suffix items = %d", len(lr.Suffixes[0].Items))
	}
	if len(lr.Seed.Alts) != 1 {
		t.Fatalf("seed alts = %d", len(lr.Seed.Alts))
	}
	// Result must pass the strict post-transform check.
	if err := analysis.Analyze(out).CheckTransformed(); err != nil {
		t.Fatalf("CheckTransformed: %v", err)
	}
}

func TestLeftRecursionAllRecursiveFails(t *testing.T) {
	g := grammarOf(t, `
public S = S "x" ;
`)
	if _, _, err := Apply(g, Options{LeftRecursion: true}); err == nil ||
		!strings.Contains(err.Error(), "every alternative") {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandRepetitions(t *testing.T) {
	g := grammarOf(t, `
public S = "a"* "b"+ ;
`)
	out, rep := apply(t, g, Options{ExpandRepetitions: true})
	if rep.RepetitionsSplit != 2 {
		t.Fatalf("split = %d", rep.RepetitionsSplit)
	}
	// No Repeat nodes must remain.
	for _, name := range out.Order {
		peg.Walk(out.Prods[name].Choice, func(e peg.Expr) {
			if _, ok := e.(*peg.Repeat); ok {
				t.Fatalf("repeat survived in %s", name)
			}
		})
	}
	// Synthetic helpers exist and are well-formed.
	if len(out.Order) != 3 {
		t.Fatalf("order = %v", out.Order)
	}
	if err := analysis.Analyze(out).CheckTransformed(); err != nil {
		t.Fatalf("CheckTransformed: %v", err)
	}
}

func TestInlineTrivialProduction(t *testing.T) {
	g := grammarOf(t, `
public S = Digit Digit ;
Digit = [0-9] ;
`)
	out, rep := apply(t, g, Options{Inline: true, DeadCode: true})
	if rep.Inlined != 2 {
		t.Fatalf("inlined = %d", rep.Inlined)
	}
	s := out.Prods["m.S"]
	for _, it := range s.Choice.Alts[0].Items {
		if _, ok := it.Expr.(*peg.CharClass); !ok {
			t.Fatalf("S body = %s", peg.FormatExpr(s.Choice))
		}
	}
	// Digit became unreachable and must be gone.
	if out.Prods["m.Digit"] != nil {
		t.Fatal("inlined production not removed")
	}
}

func TestInlineRespectsBarriers(t *testing.T) {
	g := grammarOf(t, `
public S = Rec Big NoInl Memo ;
Rec = "(" Rec ")" / "r" ;
Big = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" ;
noinline NoInl = "n" ;
memo Memo = "m" ;
`)
	out, rep := apply(t, g, Options{Inline: true})
	if rep.Inlined != 0 {
		t.Fatalf("inlined = %d", rep.Inlined)
	}
	refs := 0
	peg.Walk(out.Prods["m.S"].Choice, func(e peg.Expr) {
		if _, ok := e.(*peg.NonTerm); ok {
			refs++
		}
	})
	if refs != 4 {
		t.Fatalf("refs = %d", refs)
	}
}

func TestInlineForcedByAttr(t *testing.T) {
	g := grammarOf(t, `
public S = Big ;
inline Big = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" "bbbbbbbbbbbbbbbbbbbb" ;
`)
	_, rep := apply(t, g, Options{Inline: true})
	if rep.Inlined != 1 {
		t.Fatalf("inlined = %d", rep.Inlined)
	}
}

func TestInlineTextProductionWrapsInCapture(t *testing.T) {
	g := grammarOf(t, `
public S = Num ;
text Num = [0-9] ;
`)
	out, rep := apply(t, g, Options{Inline: true})
	if rep.Inlined != 1 {
		t.Fatalf("inlined = %d", rep.Inlined)
	}
	it := out.Prods["m.S"].Choice.Alts[0].Items[0]
	if _, ok := it.Expr.(*peg.Capture); !ok {
		t.Fatalf("text inline = %s", peg.FormatExpr(it.Expr))
	}
}

func TestInlineVoidProduction(t *testing.T) {
	g := grammarOf(t, `
public S = Sp "x" Tok ;
void Sp = " " ;
void Tok = [a-z] ;
`)
	out, rep := apply(t, g, Options{Inline: true})
	// Sp's body is value-free -> inlined; Tok's body produces a token that
	// void discards -> must NOT be inlined (would change the value).
	if rep.Inlined != 1 {
		t.Fatalf("inlined = %d", rep.Inlined)
	}
	items := out.Prods["m.S"].Choice.Alts[0].Items
	if _, ok := items[0].Expr.(*peg.Literal); !ok {
		t.Fatalf("Sp not inlined: %s", peg.FormatExpr(items[0].Expr))
	}
	if _, ok := items[2].Expr.(*peg.NonTerm); !ok {
		t.Fatalf("Tok must stay a reference: %s", peg.FormatExpr(items[2].Expr))
	}
}

func TestFoldPrefixes(t *testing.T) {
	g := grammarOf(t, `
public S = Key ;
text Key = "interface" / "int" / "if" / "while" ;
`)
	out, rep := apply(t, g, Options{FoldPrefixes: true})
	// "interface"/"int"/"if" are distinct literal items, so item-level
	// folding does not apply to them.
	if rep.PrefixesFolded != 0 {
		t.Fatalf("folded distinct literals: %d", rep.PrefixesFolded)
	}
	body := peg.FormatExpr(out.Prods["m.Key"].Choice)
	// Identical first items do fold:
	g2 := grammarOf(t, `
public S = T ;
text T = "a" "x" / "a" "y" / "b" ;
`)
	out2, rep2 := apply(t, g2, Options{FoldPrefixes: true})
	if rep2.PrefixesFolded != 1 {
		t.Fatalf("folded = %d (first grammar body: %s)", rep2.PrefixesFolded, body)
	}
	b2 := peg.FormatExpr(out2.Prods["m.T"].Choice)
	if !strings.Contains(b2, `"a" ("x" / "y")`) {
		t.Fatalf("folded body = %s", b2)
	}
}

func TestFoldPrefixesSkipsValueContexts(t *testing.T) {
	g := grammarOf(t, `
public S = A "x" @X / A "y" @Y ;
A = "a" ;
`)
	out, rep := apply(t, g, Options{FoldPrefixes: true})
	if rep.PrefixesFolded != 0 {
		t.Fatalf("folded = %d", rep.PrefixesFolded)
	}
	if len(out.Prods["m.S"].Choice.Alts) != 2 {
		t.Fatal("alternatives must be unchanged")
	}
}

func TestFoldPrefixesInsideCapture(t *testing.T) {
	g := grammarOf(t, `
public S = $( "ab" "c" / "ab" "d" ) ;
`)
	_, rep := apply(t, g, Options{FoldPrefixes: true})
	if rep.PrefixesFolded != 1 {
		t.Fatalf("folded = %d", rep.PrefixesFolded)
	}
}

func TestMergeClasses(t *testing.T) {
	g := grammarOf(t, `
public S = W ;
void W = "a" / [b-d] / "e" / "xx" / [f-g] ;
`)
	out, rep := apply(t, g, Options{MergeClasses: true})
	if rep.ClassesMerged != 2 {
		t.Fatalf("merged = %d", rep.ClassesMerged)
	}
	body := peg.FormatExpr(out.Prods["m.W"].Choice)
	if !strings.Contains(body, "[a-e]") {
		t.Fatalf("body = %s", body)
	}
	// "xx" (two bytes) breaks the run; [f-g] stands alone after it.
	if !strings.Contains(body, `"xx"`) || !strings.Contains(body, "[f-g]") {
		t.Fatalf("body = %s", body)
	}
}

func TestMergeClassesSkipsValueContexts(t *testing.T) {
	g := grammarOf(t, `
public S = "a" / [b-c] ;
`)
	_, rep := apply(t, g, Options{MergeClasses: true})
	if rep.ClassesMerged != 0 {
		t.Fatalf("merged = %d", rep.ClassesMerged)
	}
}

func TestDeadCode(t *testing.T) {
	g := grammarOf(t, `
public S = "a" / "b"? / "c" ;
Dead = "d" ;
`)
	out, rep := apply(t, g, Options{DeadCode: true})
	if rep.DeadAlternatives != 1 {
		t.Fatalf("dead alts = %d", rep.DeadAlternatives)
	}
	if rep.DeadProductions != 1 {
		t.Fatalf("dead prods = %d", rep.DeadProductions)
	}
	if len(out.Prods["m.S"].Choice.Alts) != 2 {
		t.Fatal("alt count after dead-code")
	}
	if out.Prods["m.Dead"] != nil {
		t.Fatal("Dead must be removed")
	}
}

func TestMarkTransient(t *testing.T) {
	g := grammarOf(t, `
public S = Once Multi Multi Cheap Cheap Pinned Pinned ;
Once = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaa" "bbbbbbbbbbbbb" ;
Multi = "mmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmm" "nnnnnnnnnnnn" ;
Cheap = "c" ;
memo Pinned = "p" ;
`)
	out, rep := apply(t, g, Options{MarkTransient: true})
	if !out.Prods["m.Once"].Attrs.Has(peg.AttrTransient) {
		t.Fatal("single-reference production must be transient")
	}
	if out.Prods["m.Multi"].Attrs.Has(peg.AttrTransient) {
		t.Fatal("expensive multi-reference production must stay memoized")
	}
	if !out.Prods["m.Cheap"].Attrs.Has(peg.AttrTransient) {
		t.Fatal("cheap production must be transient")
	}
	if out.Prods["m.Pinned"].Attrs.Has(peg.AttrTransient) {
		t.Fatal("memo pin must win")
	}
	if rep.MarkedTransient < 2 {
		t.Fatalf("marked = %d", rep.MarkedTransient)
	}
}

func TestNormalizeClasses(t *testing.T) {
	g := grammarOf(t, `
public S = [cab-d] ;
`)
	out, rep := apply(t, g, Options{NormalizeClasses: true})
	if rep.ClassesNormalized != 1 {
		t.Fatalf("normalized = %d", rep.ClassesNormalized)
	}
	cls := out.Prods["m.S"].Choice.Alts[0].Items[0].Expr.(*peg.CharClass)
	if len(cls.Ranges) != 1 || cls.Ranges[0] != (peg.CharRange{Lo: 'a', Hi: 'd'}) {
		t.Fatalf("ranges = %v", cls.Ranges)
	}
}

func TestDefaultsEndToEnd(t *testing.T) {
	g := grammarOf(t, `
option root = Program;
public Program = Spacing Sum ;
Sum = <add> l:Sum "+" r:Atom @Add / Atom ;
Atom = Number / "(" Sum ")" ;
text Number = [0-9]+ ;
void Spacing = (" " / "\t")* ;
Unused = "zzz" ;
`)
	out, rep := apply(t, g, Defaults())
	if rep.LeftRecRewritten != 1 || rep.DeadProductions < 1 {
		t.Fatalf("report = %+v", rep)
	}
	if out.Prods["m.Unused"] != nil {
		t.Fatal("Unused must be removed")
	}
	if err := analysis.Analyze(out).CheckTransformed(); err != nil {
		t.Fatalf("CheckTransformed: %v", err)
	}
	if !strings.Contains(rep.String(), "left-recursive productions rewritten: 1") {
		t.Fatalf("report string = %q", rep.String())
	}
	empty := &Report{}
	if empty.String() != "no changes\n" {
		t.Fatalf("empty report = %q", empty.String())
	}
}

func TestBaselineOptions(t *testing.T) {
	b := Baseline()
	if !b.LeftRecursion || !b.ExpandRepetitions || b.Inline || b.MarkTransient {
		t.Fatalf("baseline = %+v", b)
	}
	g := grammarOf(t, `
public S = S "+" [0-9] / [0-9] ;
`)
	out, _ := apply(t, g, b)
	if err := analysis.Analyze(out).CheckTransformed(); err != nil {
		t.Fatalf("baseline grammar must still be runnable: %v", err)
	}
}

func TestLeftRecTransformIdempotent(t *testing.T) {
	g := grammarOf(t, `
public S = S "+" [0-9] / [0-9] ;
`)
	out1, _ := apply(t, g, Options{LeftRecursion: true})
	out2, rep2 := apply(t, out1, Options{LeftRecursion: true})
	if rep2.LeftRecRewritten != 0 {
		t.Fatal("second transform must be a no-op")
	}
	if !peg.EqualGrammar(out1, out2) {
		t.Fatal("transform must be idempotent")
	}
}
