package transform

import (
	"modpeg/internal/analysis"
	"modpeg/internal/peg"
)

// ----------------------------------------------------------- fold prefixes

// foldPrefixes factors common leading items out of adjacent alternatives,
// but only in value-free contexts (void/text productions and capture
// bodies), where restructuring cannot change semantic values:
//
//	"ab" X / "ab" Y / "c"   becomes   "ab" (X / Y) / "c"
func foldPrefixes(g *peg.Grammar, rep *Report) {
	for _, name := range g.Order {
		p := g.Prods[name]
		if p.Choice == nil {
			continue
		}
		if p.Attrs.Has(peg.AttrVoid) || p.Attrs.Has(peg.AttrText) {
			p.Choice = foldChoice(p.Choice, rep)
		}
		// Inside captures the inner values are discarded, so folding is
		// always safe there.
		p.Choice = peg.Rewrite(p.Choice, func(e peg.Expr) peg.Expr {
			if cap, ok := e.(*peg.Capture); ok {
				if c, ok := cap.Expr.(*peg.Choice); ok {
					cap.Expr = foldChoice(c, rep)
				}
			}
			return e
		}).(*peg.Choice)
	}
}

// foldChoice folds runs of adjacent alternatives that share their first
// item; it recurses into the folded tails.
func foldChoice(c *peg.Choice, rep *Report) *peg.Choice {
	if len(c.Alts) < 2 {
		return c
	}
	var out []*peg.Seq
	i := 0
	for i < len(c.Alts) {
		run := []*peg.Seq{c.Alts[i]}
		j := i + 1
		for j < len(c.Alts) && foldable(c.Alts[i], c.Alts[j]) {
			run = append(run, c.Alts[j])
			j++
		}
		if len(run) < 2 {
			out = append(out, c.Alts[i])
			i++
			continue
		}
		rep.PrefixesFolded += len(run) - 1
		head := run[0].Items[0]
		tails := &peg.Choice{Sp: c.Sp}
		for _, alt := range run {
			tails.Alts = append(tails.Alts, &peg.Seq{Items: alt.Items[1:], Sp: alt.Sp})
		}
		tails = foldChoice(tails, rep)
		folded := &peg.Seq{
			Items: []peg.Item{head, {Expr: tails}},
			Sp:    run[0].Sp,
		}
		out = append(out, folded)
		i = j
	}
	c.Alts = out
	return c
}

// foldable reports whether two alternatives may be folded on their first
// item: both must be unlabeled (labels are modification anchors),
// constructor-free, binding-free, non-empty, and share an equal first item.
func foldable(a, b *peg.Seq) bool {
	if a.Label != "" || b.Label != "" || a.Ctor != "" || b.Ctor != "" {
		return false
	}
	if a.HasBindings() || b.HasBindings() {
		return false
	}
	if len(a.Items) == 0 || len(b.Items) == 0 {
		return false
	}
	// Folding a nullable head would change backtracking behaviour only in
	// the presence of predicates; item equality keeps it safe because a
	// PEG's first item match is deterministic for identical expressions.
	return peg.EqualExpr(a.Items[0].Expr, b.Items[0].Expr)
}

// ----------------------------------------------------------- merge classes

// mergeClasses merges runs of adjacent single-byte alternatives (one-byte
// literals and character classes) into a single character class — the
// terminal optimization for lexical choices. Value-free contexts only,
// because a literal is void while a class produces a token.
func mergeClasses(g *peg.Grammar, rep *Report) {
	for _, name := range g.Order {
		p := g.Prods[name]
		if p.Choice == nil {
			continue
		}
		inValueFree := p.Attrs.Has(peg.AttrVoid) || p.Attrs.Has(peg.AttrText)
		p.Choice = peg.Rewrite(p.Choice, func(e peg.Expr) peg.Expr {
			switch e := e.(type) {
			case *peg.Capture:
				if c, ok := e.Expr.(*peg.Choice); ok {
					e.Expr = mergeChoice(c, rep)
				}
			case *peg.Choice:
				if inValueFree {
					return mergeChoice(e, rep)
				}
			}
			return e
		}).(*peg.Choice)
		if inValueFree {
			p.Choice = mergeChoice(p.Choice, rep)
		}
	}
}

func mergeChoice(c *peg.Choice, rep *Report) *peg.Choice {
	if len(c.Alts) < 2 {
		return c
	}
	var out []*peg.Seq
	i := 0
	for i < len(c.Alts) {
		cls, ok := singleByteAlt(c.Alts[i])
		if !ok {
			out = append(out, c.Alts[i])
			i++
			continue
		}
		merged := &peg.CharClass{Ranges: append([]peg.CharRange(nil), cls.Ranges...), Sp: c.Alts[i].Sp}
		j := i + 1
		for j < len(c.Alts) {
			next, ok := singleByteAlt(c.Alts[j])
			if !ok || next.Negated {
				break
			}
			merged.Ranges = append(merged.Ranges, next.Ranges...)
			j++
		}
		if j == i+1 {
			out = append(out, c.Alts[i])
			i++
			continue
		}
		rep.ClassesMerged += j - i - 1
		merged.Normalize()
		out = append(out, &peg.Seq{Items: []peg.Item{{Expr: merged}}, Sp: merged.Sp})
		i = j
	}
	c.Alts = out
	return c
}

// singleByteAlt recognizes an unlabeled, unbound, constructor-free
// alternative consisting of exactly one one-byte literal or one
// non-negated character class, returning it as a class.
func singleByteAlt(a *peg.Seq) (*peg.CharClass, bool) {
	if a.Label != "" || a.Ctor != "" || len(a.Items) != 1 || a.Items[0].Bind != "" {
		return nil, false
	}
	switch e := a.Items[0].Expr.(type) {
	case *peg.Literal:
		if len(e.Text) == 1 {
			return &peg.CharClass{Ranges: []peg.CharRange{{Lo: e.Text[0], Hi: e.Text[0]}}}, true
		}
	case *peg.CharClass:
		if !e.Negated {
			return e, true
		}
	}
	return nil, false
}

// -------------------------------------------------------------- dead code

// deadCode removes alternatives that can never be tried (everything after
// an alternative that always succeeds without predicates) and productions
// unreachable from the root.
func deadCode(g *peg.Grammar, rep *Report) {
	a := analysis.Analyze(g)
	for _, name := range g.Order {
		p := g.Prods[name]
		if p.Choice == nil {
			continue
		}
		p.Choice = peg.Rewrite(p.Choice, func(e peg.Expr) peg.Expr {
			c, ok := e.(*peg.Choice)
			if !ok {
				return e
			}
			for i, alt := range c.Alts {
				if i == len(c.Alts)-1 {
					break
				}
				if alwaysSucceeds(a, alt) {
					rep.DeadAlternatives += len(c.Alts) - i - 1
					c.Alts = c.Alts[:i+1]
					break
				}
			}
			return c
		}).(*peg.Choice)
	}
	// Unreachable productions, recomputed after alternative removal.
	a = analysis.Analyze(g)
	for _, name := range append([]string(nil), g.Order...) {
		if !a.Reachable[name] {
			g.Remove(name)
			rep.DeadProductions++
		}
	}
}

// alwaysSucceeds conservatively reports whether an alternative matches at
// every position (so later alternatives are unreachable). Only trivially
// empty shapes qualify.
func alwaysSucceeds(a *analysis.Analysis, s *peg.Seq) bool {
	for _, it := range s.Items {
		switch e := it.Expr.(type) {
		case *peg.Empty:
		case *peg.Optional, *peg.Repeat:
			if r, ok := e.(*peg.Repeat); ok && r.Min > 0 {
				return false
			}
			// e? and e* succeed for any input.
		default:
			return false
		}
	}
	return true
}

// ---------------------------------------------------------- mark transient

// markTransient marks productions whose memoization cannot pay for itself:
// those referenced from at most one site (they can still be re-invoked at
// the same position only via backtracking through that one site, which the
// memo table would serve — but the hit rate is too low to matter, the
// paper's key observation), and those cheaper to re-parse than to probe.
// `memo` pins a production; text/void lexical workhorses referenced from
// many sites stay memoized.
func markTransient(g *peg.Grammar, rep *Report, costLimit int) {
	a := analysis.Analyze(g)
	for _, name := range g.Order {
		p := g.Prods[name]
		if p.Attrs.Has(peg.AttrMemo) || p.Attrs.Has(peg.AttrTransient) {
			continue
		}
		single := a.RefCount[name] <= 1
		cheap := a.Cost[name] <= costLimit && !a.Recursive[name]
		if single || cheap {
			p.Attrs |= peg.AttrTransient
			rep.MarkedTransient++
		}
	}
}
