package grammars

import (
	"strings"
	"testing"

	"modpeg/internal/analysis"
	"modpeg/internal/ast"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
)

// buildProg composes, transforms, and compiles a bundled grammar.
func buildProg(t *testing.T, top string) *vm.Program {
	t.Helper()
	g, err := Compose(top)
	if err != nil {
		t.Fatalf("compose %s: %v", top, err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatalf("transform %s: %v", top, err)
	}
	prog, err := vm.Compile(tg, vm.Optimized())
	if err != nil {
		t.Fatalf("compile %s: %v", top, err)
	}
	return prog
}

func parseOK(t *testing.T, prog *vm.Program, input string) ast.Value {
	t.Helper()
	v, _, err := prog.Parse(text.NewSource("input", input))
	if err != nil {
		if pe, ok := err.(*vm.ParseError); ok {
			t.Fatalf("parse failed: %v\n%s", err, pe.Detail())
		}
		t.Fatalf("parse failed: %v", err)
	}
	return v
}

func parseFails(t *testing.T, prog *vm.Program, input string) {
	t.Helper()
	if _, _, err := prog.Parse(text.NewSource("input", input)); err == nil {
		t.Fatalf("parse of %q must fail", input)
	}
}

// TestAllTopModulesCompose is the basic health check: every bundled top
// module composes, passes analysis, transforms, and compiles under every
// engine configuration.
func TestAllTopModulesCompose(t *testing.T) {
	for _, top := range TopModules() {
		t.Run(top, func(t *testing.T) {
			g, err := Compose(top)
			if err != nil {
				t.Fatalf("compose: %v", err)
			}
			if err := analysis.Analyze(g).Check(); err != nil {
				t.Fatalf("check: %v", err)
			}
			tg, _, err := transform.Apply(g, transform.Defaults())
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if err := analysis.Analyze(tg).CheckTransformed(); err != nil {
				t.Fatalf("post-transform check: %v", err)
			}
			for _, opts := range []vm.Options{vm.Backtracking(), vm.NaivePackrat(), vm.Optimized()} {
				if _, err := vm.Compile(tg, opts); err != nil {
					t.Fatalf("compile %v: %v", opts, err)
				}
			}
			// Baseline transform must also be runnable.
			bg, _, err := transform.Apply(g, transform.Baseline())
			if err != nil {
				t.Fatalf("baseline transform: %v", err)
			}
			if _, err := vm.Compile(bg, vm.NaivePackrat()); err != nil {
				t.Fatalf("baseline compile: %v", err)
			}
		})
	}
}

func TestModuleNamesListsEverything(t *testing.T) {
	names := ModuleNames()
	if len(names) < 20 {
		t.Fatalf("expected at least 20 bundled modules, got %d: %v", len(names), names)
	}
	for _, top := range TopModules() {
		found := false
		for _, n := range names {
			if n == top {
				found = true
			}
		}
		if !found {
			t.Errorf("top module %s missing from ModuleNames", top)
		}
	}
	if _, err := Source("calc.core"); err != nil {
		t.Fatal(err)
	}
	if _, err := Source("no.such.module"); err == nil {
		t.Fatal("unknown module must error")
	}
	if _, err := Resolver().Resolve("no.such.module"); err == nil {
		t.Fatal("unknown module must error via resolver")
	}
	if _, err := Compose("no.such.module"); err == nil {
		t.Fatal("unknown top must error")
	}
}

// ----------------------------------------------------------------- calc

func TestCalcCore(t *testing.T) {
	prog := buildProg(t, CalcCore)
	cases := []struct{ in, want string }{
		{"1+2", `(Add (Num "1") (Num "2"))`},
		{"1+2*3", `(Add (Num "1") (Mul (Num "2") (Num "3")))`},
		{"1-2-3", `(Sub (Sub (Num "1") (Num "2")) (Num "3"))`},
		{"8/4/2", `(Div (Div (Num "8") (Num "4")) (Num "2"))`},
		{"(1+2)*3", `(Mul (Add (Num "1") (Num "2")) (Num "3"))`},
		{"  3.14 # pi\n", `(Num "3.14")`},
	}
	for _, c := range cases {
		if got := ast.Format(parseOK(t, prog, c.in)); got != c.want {
			t.Errorf("%q = %s, want %s", c.in, got, c.want)
		}
	}
	parseFails(t, prog, "1 +")
	parseFails(t, prog, "2 ** 3") // pow is not in core
	parseFails(t, prog, "1 < 2")  // cmp is not in core
}

func TestCalcFullExtensions(t *testing.T) {
	prog := buildProg(t, CalcFull)
	cases := []struct{ in, want string }{
		// calc.pow: right-associative, binds tighter than * via anchor.
		{"2**3", `(Pow (Num "2") (Num "3"))`},
		{"2**3**2", `(Pow (Num "2") (Pow (Num "3") (Num "2")))`},
		{"2**3*4", `(Mul (Pow (Num "2") (Num "3")) (Num "4"))`},
		// calc.cmp: overriding the root added a comparison layer.
		{"1+2 < 2*3", `(Lt (Add (Num "1") (Num "2")) (Mul (Num "2") (Num "3")))`},
		{"4 > 1", `(Gt (Num "4") (Num "1"))`},
		// Base grammar still works.
		{"1+2*3", `(Add (Num "1") (Mul (Num "2") (Num "3")))`},
	}
	for _, c := range cases {
		if got := ast.Format(parseOK(t, prog, c.in)); got != c.want {
			t.Errorf("%q = %s, want %s", c.in, got, c.want)
		}
	}
}

// ----------------------------------------------------------------- json

func TestJSON(t *testing.T) {
	prog := buildProg(t, JSON)
	inputs := []string{
		`null`,
		`true`,
		`false`,
		`42`,
		`-3.25e+10`,
		`"hello \"world\""`,
		`[]`,
		`[1, 2, 3]`,
		`{}`,
		`{"a": 1}`,
		`{"a": {"b": [1, true, null, "x"]}, "c": []}`,
		"\n\t {\"k\" : [ {} , [ ] ] } \n",
	}
	for _, in := range inputs {
		parseOK(t, prog, in)
	}
	for _, bad := range []string{``, `{`, `[1,]`, `{"a" 1}`, `tru`, `"unterminated`, `[1 2]`, `{1: 2}`} {
		parseFails(t, prog, bad)
	}
	v := parseOK(t, prog, `{"a": 1, "b": [true]}`)
	if got := ast.Format(v); !strings.Contains(got, `(Member (Str "\"a\"") (Num "1"))`) {
		t.Fatalf("value = %s", got)
	}
}

func TestJSONRelaxedExtensions(t *testing.T) {
	strict := buildProg(t, JSON)
	relaxed := buildProg(t, JSONRelaxed)
	relaxedInputs := []string{
		"// leading comment\n{\"a\": 1}",
		"{\"a\": 1, /* inline */ \"b\": 2}",
		"[1, 2, 3,]",
		"{\"a\": 1,}",
		"[/* only */ 1]",
		"{\n  // k\n  \"k\": [1,],\n}",
	}
	for _, in := range relaxedInputs {
		parseFails(t, strict, in)
		parseOK(t, relaxed, in)
	}
	// Strict documents still parse under the relaxed grammar.
	for _, in := range []string{`{"a": [1, 2]}`, `[]`, `null`} {
		parseOK(t, relaxed, in)
	}
	// Unterminated comments and double trailing commas still fail.
	parseFails(t, relaxed, "{\"a\": 1} /* never closed")
	parseFails(t, relaxed, "[1,,]")
}

// ----------------------------------------------------------------- java

const javaSample = `
package com.example.demo;

import java.util.List;
import java.io.*;

public class Point extends Base {
    private int x;
    private int y = 0;
    static final int ORIGIN = 0;

    public Point(int x, int y) {
        this.x = x;
        this.y = y;
    }

    public int distSquared(Point other) {
        int dx = x - other.x;
        int dy = y - other.y;
        return dx * dx + dy * dy;
    }

    int loop(int n) {
        int total = 0;
        for (int i = 0; i < n; i++) {
            if (i % 2 == 0) {
                total += i;
            } else {
                total -= i;
            }
        }
        while (total > 100) {
            total = total / 2;
        }
        do {
            total++;
        } while (total < 0);
        return total;
    }

    int classify(int kind) {
        int[] weights = {1, 2, 3,};
        switch (kind % 3) {
        case 0:
            return weights[0];
        case 1:
            break;
        default:
            kind = super.hashCode();
        }
        outer:
        for (int i = 0; i < 3; i++) {
            while (true) {
                if (i > 1) {
                    break outer;
                }
                continue outer;
            }
        }
        return kind;
    }

    String describe() {
        char c = 'x';
        float f = 2.5f;
        boolean flag = true && !false || 1 < 2;
        int[] xs = new int[10];
        xs[0] = (int) f;
        Object o = new Object();
        String s = "hi\n";
        if (o instanceof String) {
            return s + c;
        }
        try {
            int q = xs[1] << 2 & 0xFF | 7 ^ 3;
            q = flag ? q : -q;
        } catch (Exception e) {
            throw e;
        } finally {
            s = null;
        }
        return s;
    }
}
`

func TestJavaCore(t *testing.T) {
	prog := buildProg(t, JavaCore)
	v := parseOK(t, prog, javaSample)
	unit, ok := v.(*ast.Node)
	if !ok || unit.Name != "Unit" {
		t.Fatalf("root = %s", ast.Format(v))
	}
	if cls := ast.Find(v, "Class"); cls == nil {
		t.Fatal("no Class node")
	}
	methods := ast.FindAll(v, "Method")
	if len(methods) != 4 {
		t.Fatalf("methods = %d", len(methods))
	}
	for _, name := range []string{"Switch", "Case", "Default", "Label", "Super", "ArrayInit"} {
		if ast.Find(v, name) == nil {
			t.Errorf("missing %s node", name)
		}
	}
	if ctor := ast.FindAll(v, "Ctor"); len(ctor) != 1 {
		t.Fatalf("ctors = %d", len(ctor))
	}
	if fields := ast.FindAll(v, "FieldDecl"); len(fields) != 3 {
		t.Fatalf("fields = %d", len(fields))
	}
	// Interfaces and implements clauses.
	v = parseOK(t, prog, `
interface Shape extends Base {
    int area();
}
class Circle extends Object implements Shape, Comparable {
    int area() { return 3; }
}
`)
	if ast.Find(v, "Interface") == nil || ast.Find(v, "Implements") == nil {
		t.Fatal("missing Interface/Implements nodes")
	}
	// assert/foreach/pow are extensions and must NOT parse in core.
	parseFails(t, prog, "class A { void m() { assert 1 == 1; } }")
	parseFails(t, prog, "class A { void m(int[] xs) { for (int x : xs) { } } }")
	parseFails(t, prog, "class A { int m() { return 2 ** 3; } }")
}

func TestJavaFullExtensions(t *testing.T) {
	prog := buildProg(t, JavaFull)
	// Base programs still parse.
	parseOK(t, prog, javaSample)
	// assert statement.
	v := parseOK(t, prog, "class A { void m() { assert x == 1 : \"boom\"; } }")
	if ast.Find(v, "Assert") == nil {
		t.Fatalf("no Assert node in %s", ast.Format(v))
	}
	// enhanced for.
	v = parseOK(t, prog, "class A { void m(int[] xs) { for (int x : xs) { use(x); } } }")
	if ast.Find(v, "ForEach") == nil {
		t.Fatal("no ForEach node")
	}
	// classic for still works.
	v = parseOK(t, prog, "class A { void m() { for (i = 0; i < 3; i++) { } } }")
	if ast.Find(v, "For") == nil {
		t.Fatal("no For node")
	}
	// pow operator, right associative, tighter than *.
	v = parseOK(t, prog, "class A { int m() { return 2 ** 3 ** 2 * 4; } }")
	pow := ast.Find(v, "Pow")
	if pow == nil {
		t.Fatal("no Pow node")
	}
	if inner := ast.Find(pow.Child(1), "Pow"); inner == nil {
		t.Fatalf("pow must be right associative: %s", ast.Format(pow))
	}
	if ast.Find(v, "Mul") == nil {
		t.Fatal("no Mul node around pow")
	}
}

func TestJavaSQLComposition(t *testing.T) {
	prog := buildProg(t, JavaSQL)
	src := "class A { void m() { rs = `SELECT name, age FROM users WHERE age >= 18 AND name <> 'x'`; } }"
	v := parseOK(t, prog, src)
	sel := ast.Find(v, "Select")
	if sel == nil {
		t.Fatalf("no Select node in %s", ast.Format(v))
	}
	if cols := ast.FindAll(sel, "Name"); len(cols) < 3 {
		t.Fatalf("column/table names = %d", len(cols))
	}
	if ast.Find(v, "SqlAnd") == nil {
		t.Fatal("no SqlAnd node")
	}
	// The star form too.
	v = parseOK(t, prog, "class A { void m() { x = `SELECT * FROM t`; } }")
	if ast.Find(v, "AllColumns") == nil {
		t.Fatal("no AllColumns node")
	}
	// Plain Java still parses.
	parseOK(t, prog, javaSample)
}

// -------------------------------------------------------------------- c

const cSample = `
// A small C program exercising the subset.
#include <stdio.h>

typedef unsigned long size_t;

struct Point {
    int x;
    int y;
    char name[16];
};

static int counter = 0;

int add(int a, int b) {
    return a + b;
}

static void process(struct Point *p, int n) {
    int i;
    for (i = 0; i < n; i++) {
        p->x += i;
        p->y = p->x * 2;
        (*p).name[0] = 'a';
    }
    switch (n % 3) {
    case 0:
        counter++;
        break;
    case 1:
        goto done;
    default:
        counter = ~counter & 0xFF;
        break;
    }
done:
    return;
}

int main(void) {
    struct Point pt;
    int values[4];
    int *ptr = &counter;
    unsigned int u = 42u;
    double d = 1.5;
    values[0] = add(1, 2);
    if (values[0] >= 3 && *ptr != 0 || d < 2.0) {
        process(&pt, sizeof(struct Point));
    } else {
        do {
            u = u >> 1 | 1u << 3;
        } while (u > 0);
    }
    return (int)d;
}
`

func TestCCore(t *testing.T) {
	prog := buildProg(t, CCore)
	v := parseOK(t, prog, cSample)
	if fns := ast.FindAll(v, "Function"); len(fns) != 3 {
		t.Fatalf("functions = %d", len(fns))
	}
	if ast.Find(v, "Struct") == nil || ast.Find(v, "Typedef") == nil {
		t.Fatal("missing struct/typedef")
	}
	if ast.Find(v, "Arrow") == nil || ast.Find(v, "Deref") == nil {
		t.Fatal("missing pointer operations")
	}
	if ast.Find(v, "Switch") == nil || ast.Find(v, "Goto") == nil || ast.Find(v, "Label") == nil {
		t.Fatal("missing switch/goto/label")
	}
	parseFails(t, prog, "int f( { }")
	parseFails(t, prog, "class A {}") // Java, not C
}

func TestCFullStatementExpressions(t *testing.T) {
	base := buildProg(t, CCore)
	full := buildProg(t, CFull)
	src := `
int f(int a) {
    int x = ({ int t = a * 2; t + 1; });
    return x + ({ 0; });
}
`
	parseFails(t, base, src)
	v := parseOK(t, full, src)
	if got := len(ast.FindAll(v, "StmtExpr")); got != 2 {
		t.Fatalf("StmtExpr nodes = %d", got)
	}
	// Plain C still parses under the composed grammar.
	parseOK(t, full, cSample)
}

// ------------------------------------------------------- cross-engine

func TestBundledGrammarsEngineEquivalence(t *testing.T) {
	cases := []struct {
		top   string
		input string
	}{
		{CalcFull, "1+2**3 < 4*5"},
		{JSON, `{"a": [1, {"b": null}], "c": "s"}`},
		{JavaFull, "class A { int f() { assert 1 < 2; return 2 ** 8; } }"},
		{CCore, "int main(void) { return 1 + 2 * 3; }"},
	}
	for _, c := range cases {
		g, err := Compose(c.top)
		if err != nil {
			t.Fatal(err)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		var ref ast.Value
		for i, opts := range []vm.Options{vm.Backtracking(), vm.NaivePackrat(), vm.Optimized()} {
			prog, err := vm.Compile(tg, opts)
			if err != nil {
				t.Fatal(err)
			}
			v, _, err := prog.Parse(text.NewSource("in", c.input))
			if err != nil {
				t.Fatalf("%s %v: %v", c.top, opts, err)
			}
			if i == 0 {
				ref = v
			} else if !ast.Equal(ref, v) {
				t.Fatalf("%s: engine %v disagrees:\n%s\nvs\n%s",
					c.top, opts, ast.Format(v), ast.Format(ref))
			}
		}
	}
}
