// Package grammars bundles the repository's grammar modules — the
// evaluation objects of the reproduction: a calculator (with extension
// modules), JSON, a Java subset (with three extensions and an embedded-SQL
// composition demo), and a C subset.
//
// The .mpeg sources are embedded in the binary; Resolver exposes them to
// the composition engine, and Compose is a convenience wrapper for the
// common case.
package grammars

import (
	"embed"
	"fmt"
	"strings"

	"modpeg/internal/core"
	"modpeg/internal/peg"
	"modpeg/internal/text"
)

//go:embed modules/*.mpeg
var moduleFS embed.FS

// Top-module names of the bundled grammars.
const (
	CalcCore    = "calc.core"
	CalcFull    = "calc.full"
	JSON        = "json.value"
	JSONRelaxed = "json.relaxed"
	JavaCore    = "java.core"
	JavaFull    = "java.full"
	JavaSQL     = "demo.javasql.top"
	CCore       = "c.core"
	CFull       = "c.full"
	SQL         = "sql"
)

// TopModules lists the composable top-level grammars bundled with modpeg.
func TopModules() []string {
	return []string{CalcCore, CalcFull, JSON, JSONRelaxed, JavaCore, JavaFull, JavaSQL, CCore, CFull, SQL}
}

// ModuleNames lists every bundled module, sorted.
func ModuleNames() []string {
	entries, err := moduleFS.ReadDir("modules")
	if err != nil {
		panic(fmt.Sprintf("grammars: embedded modules unreadable: %v", err))
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".mpeg"))
	}
	return names
}

// embeddedResolver resolves bundled module names.
type embeddedResolver struct{}

// Resolver returns a core.Resolver over the embedded modules.
func Resolver() core.Resolver { return embeddedResolver{} }

func (embeddedResolver) Resolve(name string) (*text.Source, error) {
	data, err := moduleFS.ReadFile("modules/" + name + ".mpeg")
	if err != nil {
		return nil, fmt.Errorf("grammars: unknown bundled module %q", name)
	}
	return text.NewSource(name+".mpeg", string(data)), nil
}

// Source returns the raw text of a bundled module.
func Source(name string) (string, error) {
	data, err := moduleFS.ReadFile("modules/" + name + ".mpeg")
	if err != nil {
		return "", fmt.Errorf("grammars: unknown bundled module %q", name)
	}
	return string(data), nil
}

// Compose composes a bundled top module into a closed grammar.
func Compose(top string) (*peg.Grammar, error) {
	return core.Compose(top, Resolver())
}
