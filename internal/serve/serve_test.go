package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"modpeg"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

func testServer(t *testing.T, cfg Config) http.Handler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Handler()
}

func postParse(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/parse", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, rec.Body.String())
	}
	return e
}

func TestParseSuccess(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := postParse(t, h, `{"grammar":"calc.core","input":"1+2*3"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var resp ParseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.Grammar != "calc.core" || len(resp.Value) == 0 {
		t.Errorf("response = %+v", resp)
	}
	if resp.Stats.Calls <= 0 || resp.Stats.MaxPos != 5 {
		t.Errorf("stats = %+v", resp.Stats)
	}
	if resp.DurationNS <= 0 {
		t.Errorf("duration_ns = %d", resp.DurationNS)
	}
	if resp.Profile != nil {
		t.Errorf("unrequested profile present")
	}
}

func TestParseProfile(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := postParse(t, h, `{"grammar":"calc.core","input":"1+2*(3-4)","profile":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ParseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var prof struct {
		TotalCalls  int64            `json:"total_calls"`
		Productions []map[string]any `json:"productions"`
	}
	if err := json.Unmarshal(resp.Profile, &prof); err != nil {
		t.Fatalf("profile not JSON: %v", err)
	}
	if prof.TotalCalls <= 0 || len(prof.Productions) == 0 {
		t.Errorf("profile = %+v", prof)
	}
}

func TestParseSyntaxError(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := postParse(t, h, `{"grammar":"calc.core","input":"1+","name":"doc.txt"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body.String())
	}
	e := decodeError(t, rec)
	if e.Error != "syntax" {
		t.Errorf("error kind %q", e.Error)
	}
	if len(e.Expected) == 0 {
		t.Errorf("expected set not passed through: %+v", e)
	}
	if e.Location == nil || e.Location.File != "doc.txt" || e.Location.Line != 1 ||
		e.Location.Offset != 2 {
		t.Errorf("location = %+v", e.Location)
	}
}

func TestParseLimitBreaches(t *testing.T) {
	h := testServer(t, Config{
		Grammars: []string{"calc.core"},
		Limits:   modpeg.Limits{MaxInputBytes: 16, MaxCallDepth: 8},
	})

	rec := postParse(t, h, `{"grammar":"calc.core","input":"1+1+1+1+1+1+1+1+1+1+1+1"}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("input breach status %d, want 413: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Error != "limit" || e.Kind != "input-bytes" {
		t.Errorf("input breach body = %+v", e)
	}

	rec = postParse(t, h, `{"grammar":"calc.core","input":"((((((1))))))"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("depth breach status %d, want 422: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Error != "limit" || e.Kind != "call-depth" {
		t.Errorf("depth breach body = %+v", e)
	}

	// A request can tighten the server budget but not exceed it.
	rec = postParse(t, h, `{"grammar":"calc.core","input":"1+2","max_input_bytes":2}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("request-tightened limit ignored: %d", rec.Code)
	}
	rec = postParse(t, h, `{"grammar":"calc.core","input":"1+1+1+1+1+1+1+1+1","max_input_bytes":4096}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("request loosened the server limit: %d", rec.Code)
	}
}

func TestParseBadRequests(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})

	rec := postParse(t, h, `{not json`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", rec.Code)
	}
	rec = postParse(t, h, `{"input":"1"}`)
	if rec.Code != http.StatusBadRequest || decodeError(t, rec).Error != "bad-request" {
		t.Errorf("missing grammar status %d", rec.Code)
	}
	rec = postParse(t, h, `{"grammar":"json.value","input":"[1]"}`)
	if rec.Code != http.StatusBadRequest || decodeError(t, rec).Error != "unknown-grammar" {
		t.Errorf("unserved grammar status %d: %s", rec.Code, rec.Body.String())
	}
	rec = postParse(t, h, `{"grammar":"calc.core","production":"calc.core.NoSuchProd","input":"1"}`)
	if rec.Code != http.StatusBadRequest || decodeError(t, rec).Error != "unknown-grammar" {
		t.Errorf("bad production status %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/parse", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /parse status %d", rec.Code)
	}

	small, err := New(Config{Grammars: []string{"calc.core"}, MaxBodyBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	rec = postParse(t, small.Handler(), `{"grammar":"calc.core","input":"`+strings.Repeat("1", 100)+`"}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d", rec.Code)
	}
}

func TestParseProductionOverride(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	// Parsing from an inner production both exercises WithRoot and
	// proves the cache keys on (grammar, production).
	rec := postParse(t, h, `{"grammar":"calc.core","production":"calc.core.Atom","input":"42"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ParseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Production != "calc.core.Atom" {
		t.Errorf("production = %q", resp.Production)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	modpeg.ResetMetrics()
	defer modpeg.ResetMetrics()
	postParse(t, h, `{"grammar":"calc.core","input":"1+2"}`)
	postParse(t, h, `{"grammar":"calc.core","input":"1+"}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"modpeg_parses_started_total 2",
		"# TYPE modpeg_parse_duration_seconds histogram",
		`modpeg_parse_duration_seconds_bucket{le="+Inf"} 2`,
		`modpeg_grammar_parses_total{grammar="calc.core",outcome="completed"} 1`,
		`modpeg_grammar_parses_total{grammar="calc.core",outcome="failed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	s, err := New(Config{Grammars: []string{"calc.core"}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s status %d", path, rec.Code)
		}
	}
	s.ready.Store(false)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz status %d", rec.Code)
	}
}

func TestPprofGating(t *testing.T) {
	plain := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof reachable without EnablePprof: %d", rec.Code)
	}
	enabled := testServer(t, Config{Grammars: []string{"calc.core"}, EnablePprof: true})
	rec = httptest.NewRecorder()
	enabled.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index status %d", rec.Code)
	}
}

func TestBadGrammarFailsFast(t *testing.T) {
	if _, err := New(Config{Grammars: []string{"no.such.module"}}); err == nil {
		t.Fatal("New accepted a nonexistent grammar")
	}
}

// TestServeGracefulShutdown runs the real listener path: requests
// succeed, then canceling the context drains the server and Serve
// returns.
func TestServeGracefulShutdown(t *testing.T) {
	s, err := New(Config{Grammars: []string{"calc.core"}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Post(base+"/parse", "application/json",
		strings.NewReader(`{"grammar":"calc.core","input":"1+2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /parse status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if s.ready.Load() {
		t.Error("ready flag still set after shutdown")
	}
}

// TestConcurrentAdversarial hammers one server from many goroutines
// with the adversarial corpus under tight budgets; run with -race this
// checks the pooled-parser path and the limit plumbing for data races.
func TestConcurrentAdversarial(t *testing.T) {
	h := testServer(t, Config{
		Grammars: []string{"calc.full", "json.value"},
		Limits: modpeg.Limits{
			MaxInputBytes:    1 << 20,
			MaxMemoBytes:     1 << 20,
			MaxCallDepth:     200,
			MaxParseDuration: 250 * time.Millisecond,
		},
	})
	var corpus []workload.AdversarialInput
	for _, in := range workload.AdversarialCorpus(400, 1<<12) {
		if in.Module == "path" { // not a bundled module; served grammars only
			continue
		}
		corpus = append(corpus, in)
	}
	if len(corpus) < 3 {
		t.Fatalf("corpus too small: %d", len(corpus))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				in := corpus[(w+i)%len(corpus)]
				body, _ := json.Marshal(ParseRequest{
					Grammar: in.Module, Input: in.Input, Name: in.Name,
				})
				req := httptest.NewRequest(http.MethodPost, "/parse", strings.NewReader(string(body)))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK, http.StatusUnprocessableEntity,
					http.StatusRequestEntityTooLarge, http.StatusRequestTimeout:
				default:
					t.Errorf("%s: unexpected status %d: %s", in.Name, rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRequestIDGenerated checks that every response carries a generated
// X-Request-ID when the client sends none, and that typed error bodies
// echo it.
func TestRequestIDGenerated(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := postParse(t, h, `{"grammar":"calc.core","input":"1+2"}`)
	id := rec.Header().Get("X-Request-ID")
	if len(id) != 16 {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
	for _, c := range id {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("generated X-Request-ID %q is not lowercase hex", id)
		}
	}

	rec = postParse(t, h, `{"grammar":"calc.core","input":"1+"}`)
	errID := rec.Header().Get("X-Request-ID")
	if errID == "" {
		t.Fatal("error response missing X-Request-ID header")
	}
	if e := decodeError(t, rec); e.RequestID != errID {
		t.Errorf("error body request_id = %q, header = %q", e.RequestID, errID)
	}
	if errID == id {
		t.Errorf("two requests shared request id %q", id)
	}
}

// TestRequestIDEchoed checks that a client-supplied id survives to the
// response header and the error body, and that an oversized one is
// replaced rather than reflected.
func TestRequestIDEchoed(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	req := httptest.NewRequest(http.MethodPost, "/parse",
		strings.NewReader(`{"grammar":"calc.core","input":"1+"}`))
	req.Header.Set("X-Request-ID", "client-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("X-Request-ID = %q, want echo of client-id-42", got)
	}
	if e := decodeError(t, rec); e.RequestID != "client-id-42" {
		t.Errorf("error body request_id = %q", e.RequestID)
	}

	req = httptest.NewRequest(http.MethodPost, "/parse",
		strings.NewReader(`{"grammar":"calc.core","input":"1"}`))
	req.Header.Set("X-Request-ID", strings.Repeat("x", 500))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("oversized client id not replaced: %q", got)
	}
}

// TestMetricsContentTypeExact pins /metrics to the Prometheus text
// exposition content type, and checks the runtime gauges are scrapeable
// through the serve mux.
func TestMetricsContentTypeExact(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := rec.Header().Get("Content-Type"); got != want {
		t.Errorf("Content-Type = %q, want %q", got, want)
	}
	out := rec.Body.String()
	for _, name := range []string{
		"modpeg_goroutines ", "modpeg_heap_bytes ", "modpeg_gc_pause_seconds ",
		"modpeg_inflight_requests ", "modpeg_uptime_seconds ",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("/metrics missing runtime gauge %q", strings.TrimSpace(name))
		}
	}
}

// TestInflightGauge observes the in-flight gauge from inside a request:
// a parse of a grammar whose hook scrapes the gauge must see itself.
func TestInflightGauge(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	before := vm.Metrics().InflightRequests
	done := make(chan int64, 1)
	// Hold a request open by blocking in the body reader.
	pr, pw := io.Pipe()
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/parse", pr)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		done <- 0
	}()
	// Wait until the handler has entered the bracket.
	deadline := time.Now().Add(2 * time.Second)
	for vm.Metrics().InflightRequests != before+1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight gauge never rose")
		}
		time.Sleep(time.Millisecond)
	}
	pw.Write([]byte(`{"grammar":"calc.core","input":"1+2"}`))
	pw.Close()
	<-done
	if got := vm.Metrics().InflightRequests; got != before {
		t.Errorf("in-flight gauge after request = %d, want %d", got, before)
	}
}

// TestOmitValue checks the capacity-probe knob: omit_value drops the
// AST from the response while stats and timing survive.
func TestOmitValue(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := postParse(t, h, `{"grammar":"calc.core","input":"1+2*3","omit_value":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ParseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Value) != 0 {
		t.Errorf("omit_value response still carries a value: %s", resp.Value)
	}
	if resp.Stats.Calls == 0 || resp.DurationNS <= 0 {
		t.Errorf("stats/timing missing from omit_value response: %+v", resp)
	}
	if strings.Contains(rec.Body.String(), `"value"`) {
		t.Errorf("value key present in omit_value body: %s", rec.Body.String())
	}
}

// TestCompactResponses pins the wire encoding to single-line JSON.
// Indented rendering is quadratic in AST nesting depth — a 4 KB
// deeply nested input produced a ~300 MB pretty-printed response
// before this was fixed — so deep inputs must stay linear.
func TestCompactResponses(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"json.value"}})
	rec := postParse(t, h, `{"grammar":"json.value","input":"[[1,2],[3]]"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if n := strings.Count(strings.TrimSpace(rec.Body.String()), "\n"); n != 0 {
		t.Errorf("success body spans %d extra lines, want compact single-line JSON", n)
	}

	// Response size must grow linearly with nesting depth, not
	// quadratically: depth 512 vs 256 within a factor of ~3.
	deep := func(depth int) int {
		in := strings.Repeat("[", depth) + "1" + strings.Repeat("]", depth)
		rec := postParse(t, h, `{"grammar":"json.value","input":`+string(mustJSON(t, in))+`}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("depth %d: status %d: %s", depth, rec.Code, rec.Body.String())
		}
		return rec.Body.Len()
	}
	d256, d512 := deep(256), deep(512)
	if d512 > 3*d256 {
		t.Errorf("response size superlinear in depth: %d bytes at 256, %d at 512", d256, d512)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
