package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"time"

	"modpeg"
	"modpeg/internal/telemetry"
	"modpeg/internal/vm"
)

// This file is the serve layer's tail-latency forensics surface: W3C
// trace-context propagation (traceparent in, traceparent out, trace ID
// threaded through every parse), the readiness gate in front of the
// debug endpoints, and the glue that turns a finished parse into a
// flight-recorder entry. The design rule throughout is the same as the
// engine's: a request that carries no trace and finishes fast pays
// nothing beyond one header lookup.

// ctxKey keys the values this package stashes on request contexts.
type ctxKey int

const traceIDKey ctxKey = iota

// isHex reports whether s is entirely lowercase-hex, as the W3C
// trace-context grammar requires (uppercase headers are malformed and
// get a fresh trace minted instead).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isZero reports whether s is all '0' — the trace-context spec forbids
// all-zero trace and parent IDs.
func isZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// parseTraceparent extracts the trace ID from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). ok is
// false for malformed headers, unknown versions, and the all-zero IDs
// the spec forbids — the caller mints a fresh trace in that case.
func parseTraceparent(h string) (traceID string, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	trace, parent, flags := h[3:35], h[36:52], h[53:55]
	if !isHex(trace) || !isHex(parent) || !isHex(flags) || isZero(trace) || isZero(parent) {
		return "", false
	}
	return trace, true
}

// newTraceID returns a fresh random 32-hex-char W3C trace ID.
func newTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// withTraceContext accepts the client's traceparent header — or mints
// a fresh trace when the header is absent or malformed — regenerates
// the parent ID so this service shows up as its own span, echoes the
// header on the response, and stashes the trace ID on the request
// context. Downstream the trace ID joins three signals to the
// distributed trace: the latency-histogram exemplars, the flight
// recorder, and the Chrome-trace exporter's metadata record.
func withTraceContext(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID, ok := parseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			traceID = newTraceID()
		}
		// newRequestID is 8 random bytes hex-encoded — exactly the
		// 16-hex-char parent ID the traceparent grammar wants.
		w.Header().Set("traceparent", "00-"+traceID+"-"+newRequestID()+"-01")
		ctx := context.WithValue(r.Context(), traceIDKey, traceID)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// traceIDFrom returns the trace ID withTraceContext stashed on the
// context ("" outside the middleware, e.g. in direct handler tests).
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// gateDebug wraps a debug handler behind the readiness gate: once
// /readyz flips to draining, the debug surface (pprof, sampled
// profiles, flight recorder) answers 503 as well. A draining instance
// is seconds from exit — letting a long CPU profile or a heavyweight
// heap dump start there only delays the drain it already promised the
// balancer.
func (s *Server) gateDebug(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// handleProfiles serves GET /debug/profiles: the rolling sampled
// per-production profiles, one entry per grammar label, hottest
// productions first.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	data, err := vm.SampledProfilesJSON()
	if err != nil {
		http.Error(w, "profile encoding failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(data)
	w.Write([]byte("\n"))
}

// handleFlightRecorder serves GET /debug/flightrecorder: the ring of
// slow, limit-breaching, and failed parses, newest first.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	data, err := s.recorder.JSON()
	if err != nil {
		http.Error(w, "flight-recorder encoding failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(data)
	w.Write([]byte("\n"))
}

// flightTrigger decides whether a finished parse deserves a flight
// record and why: "limit" for any budget breach (slow by definition of
// the budget, whatever the wall time), "error" for engine failures,
// "slow" for anything — success or syntax error — that crossed the
// latency threshold. "" means the parse was healthy: don't record.
// Fast syntax errors are deliberately not recorded; they are a client
// problem, not a tail-latency one, and would flood the ring.
func flightTrigger(elapsed, threshold time.Duration, err error) string {
	var le *modpeg.LimitError
	if errors.As(err, &le) {
		return "limit"
	}
	var pe *modpeg.ParseError
	if err != nil && !errors.As(err, &pe) {
		return "error"
	}
	if elapsed >= threshold {
		return "slow"
	}
	return ""
}

// flightOutcome classifies how the parse ended for the record:
// "ok", "syntax", "limit:<kind>", or "engine".
func flightOutcome(err error) string {
	if err == nil {
		return "ok"
	}
	var le *modpeg.LimitError
	if errors.As(err, &le) {
		return "limit:" + le.Kind.String()
	}
	var pe *modpeg.ParseError
	if errors.As(err, &pe) {
		return "syntax"
	}
	return "engine"
}

// flightFailPos is the farthest input position the parse reached: the
// syntax error's position when it failed to match, the stats
// high-water mark otherwise.
func flightFailPos(err error, st modpeg.ParseStats) int {
	var pe *modpeg.ParseError
	if errors.As(err, &pe) {
		return int(pe.Pos)
	}
	return st.MaxPos
}

// flightTopK bounds the per-record profile payload.
const flightTopK = 10

// flightTopProductions picks the "why was it slow" rows for a record:
// the request's own profiler when the client asked for one (exact for
// this parse), else the grammar's rolling sampled profile (statistical,
// and only present when the tenant's sampler has caught parses).
func flightTopProductions(profiler *modpeg.Profiler, label string) []vm.ProdProfile {
	if profiler != nil {
		return profiler.Profile().Top(flightTopK)
	}
	if sp, ok := vm.SampledProfileFor(label); ok {
		rows := sp.Productions
		if len(rows) > flightTopK {
			rows = rows[:flightTopK]
		}
		return rows
	}
	return nil
}

// recordFlight assembles and stores one flight record. Called on the
// request path only for parses that already triggered — the healthy
// fast path never reaches it.
func (s *Server) recordFlight(w http.ResponseWriter, req *ParseRequest, traceID, label, trigger string,
	elapsed time.Duration, lim modpeg.Limits, st modpeg.ParseStats, parseErr error, profiler *modpeg.Profiler) {
	s.recorder.Record(telemetry.FlightRecord{
		Time:           time.Now().UTC(),
		RequestID:      w.Header().Get("X-Request-ID"),
		TraceID:        traceID,
		Tenant:         req.Tenant,
		Grammar:        label,
		Production:     req.Production,
		InputBytes:     len(req.Input),
		DurationNS:     elapsed.Nanoseconds(),
		Outcome:        flightOutcome(parseErr),
		Trigger:        trigger,
		FailPos:        flightFailPos(parseErr, st),
		Limits:         lim,
		TopProductions: flightTopProductions(profiler, label),
	})
}
