package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"modpeg/internal/registry"
)

// This file is the registry's HTTP surface — the runtime grammar
// lifecycle of a multi-tenant parse service:
//
//	POST   /grammars/{tenant}/{name}            upload a module version
//	GET    /grammars                            full registry listing
//	GET    /grammars/{tenant}/{name}            one grammar's versions
//	DELETE /grammars/{tenant}/{name}/{version}  delete / roll back
//
// Uploads compile and conformance-smoke in the background and respond
// with the build outcome; activation is an atomic pointer swap, so the
// first /parse request after a 201 already sees the new version.
// Registry endpoints exist only when Config.Registry is set.

// UploadResponse is the POST /grammars/{tenant}/{name} success body.
type UploadResponse struct {
	Tenant  string `json:"tenant"`
	Grammar string `json:"grammar"`
	Version int    `json:"version"`
	State   string `json:"state"`
	// Label is the telemetry label ("tenant/grammar@vN") the version's
	// parses are counted under in /metrics.
	Label string `json:"label"`
	// Active reports whether this upload activated the version.
	Active bool `json:"active"`
}

// registryStatus maps a typed registry error onto an HTTP status.
func registryStatus(err error) (int, ErrorResponse) {
	var re *registry.Error
	if !errors.As(err, &re) {
		return http.StatusInternalServerError, ErrorResponse{Error: "engine", Message: err.Error()}
	}
	resp := ErrorResponse{Error: "registry-" + string(re.Kind), Message: re.Error()}
	switch re.Kind {
	case registry.KindNotFound:
		return http.StatusNotFound, resp
	case registry.KindCapacity:
		return http.StatusTooManyRequests, resp
	case registry.KindModule, registry.KindSmoke:
		return http.StatusUnprocessableEntity, resp
	default:
		return http.StatusBadRequest, resp
	}
}

func (s *Server) handleRegistryUpload(w http.ResponseWriter, r *http.Request) {
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var up registry.Upload
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&up); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, ErrorResponse{
			Error: "bad-request", Message: "invalid upload body: " + err.Error()})
		return
	}
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	info, err := s.cfg.Registry.Upload(r.Context(), tenant, name, up)
	if err != nil {
		status, resp := registryStatus(err)
		writeError(w, status, resp)
		return
	}
	writeJSON(w, http.StatusCreated, UploadResponse{
		Tenant:  tenant,
		Grammar: name,
		Version: info.Version,
		State:   info.State,
		Label:   registry.Label(tenant, name, info.Version),
		Active:  info.State == "active",
	})
}

func (s *Server) handleRegistryList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Registry.List())
}

func (s *Server) handleRegistryGet(w http.ResponseWriter, r *http.Request) {
	gi, err := s.cfg.Registry.Grammar(r.PathValue("tenant"), r.PathValue("name"))
	if err != nil {
		status, resp := registryStatus(err)
		writeError(w, status, resp)
		return
	}
	writeJSON(w, http.StatusOK, gi)
}

func (s *Server) handleRegistryDelete(w http.ResponseWriter, r *http.Request) {
	versionNumber, err := strconv.Atoi(r.PathValue("version"))
	if err != nil || versionNumber <= 0 {
		writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "bad-request", Message: "version must be a positive integer"})
		return
	}
	res, err := s.cfg.Registry.Delete(r.PathValue("tenant"), r.PathValue("name"), versionNumber)
	if err != nil {
		status, resp := registryStatus(err)
		writeError(w, status, resp)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
