package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"modpeg"
	"modpeg/internal/registry"
)

// The registry lifecycle over HTTP: upload a base grammar, extend it
// with a modification module, hot-swap versions, pin, roll back — the
// full runtime surface the paper's modular syntax machinery enables.

const rtBase = `module t.base;
option root = Top;
public Top = Item+ EOF ;
Item = <a> "a" ;
void EOF = !. ;
`

const rtBaseV2 = `module t.base;
option root = Top;
public Top = Item+ EOF ;
Item = <a> "a" / <z> "z" ;
void EOF = !. ;
`

const rtExt = `module t.ext;
modify t.base;
option root = t.base.Top;
Item += <b> "b" ;
`

func registryServer(t *testing.T) http.Handler {
	t.Helper()
	reg, err := registry.New(registry.Config{
		DefaultLimits: modpeg.Limits{MaxInputBytes: 1 << 20, MaxCallDepth: 10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return testServer(t, Config{Grammars: []string{"calc.core"}, Registry: reg})
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func mustUploadHTTP(t *testing.T, h http.Handler, tenant, name, src string) UploadResponse {
	t.Helper()
	body, err := json.Marshal(registry.Upload{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, h, http.MethodPost, "/grammars/"+tenant+"/"+name, string(body))
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload %s/%s: status %d: %s", tenant, name, rec.Code, rec.Body.String())
	}
	var resp UploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("upload response not JSON: %v", err)
	}
	return resp
}

func TestRegistryUploadAndParse(t *testing.T) {
	h := registryServer(t)
	up := mustUploadHTTP(t, h, "acme", "t.base", rtBase)
	if up.Version != 1 || !up.Active || up.Label != "acme/t.base@v1" {
		t.Fatalf("upload response = %+v", up)
	}

	rec := postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"aaa"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("tenant parse: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ParseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "acme" || resp.Version != 1 || resp.Grammar != "t.base" {
		t.Errorf("parse response = tenant %q grammar %q v%d", resp.Tenant, resp.Grammar, resp.Version)
	}

	// The static grammar table is unaffected by registry traffic.
	rec = postParse(t, h, `{"grammar":"calc.core","input":"1+2"}`)
	if rec.Code != http.StatusOK {
		t.Errorf("static parse broke: %d %s", rec.Code, rec.Body.String())
	}
	// The registry namespace is not reachable without the tenant field.
	rec = postParse(t, h, `{"grammar":"t.base","input":"aaa"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("tenant-less parse of a registry grammar: %d, want 400", rec.Code)
	}
	if e := decodeError(t, rec); e.Error != "unknown-grammar" {
		t.Errorf("tenant-less parse error code %q, want unknown-grammar", e.Error)
	}
}

func TestRegistryExtensionLifecycle(t *testing.T) {
	h := registryServer(t)
	mustUploadHTTP(t, h, "acme", "t.base", rtBase)
	mustUploadHTTP(t, h, "acme", "t.ext", rtExt)

	// The extension accepts what the base cannot.
	rec := postParse(t, h, `{"tenant":"acme","grammar":"t.ext","input":"ab"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("extension parse: %d %s", rec.Code, rec.Body.String())
	}
	rec = postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"ab"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("base must reject the extension's language: %d", rec.Code)
	}

	// Hot-swap the base and pin the old version.
	up := mustUploadHTTP(t, h, "acme", "t.base", rtBaseV2)
	if up.Version != 2 {
		t.Fatalf("second upload = %+v", up)
	}
	rec = postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"az"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("v2 parse: %d %s", rec.Code, rec.Body.String())
	}
	rec = postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"az","version":1}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("pinned v1 must reject \"z\": %d %s", rec.Code, rec.Body.String())
	}
	var resp ParseResponse
	rec = postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"aa","version":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("pinned v1 parse: %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Version != 1 {
		t.Errorf("pinned parse echoed version %d, want 1", resp.Version)
	}

	// Roll back by deleting v2; the next parse serves v1 again.
	rec = doJSON(t, h, http.MethodDelete, "/grammars/acme/t.base/2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	var del registry.DeleteResult
	if err := json.Unmarshal(rec.Body.Bytes(), &del); err != nil || del.NewActive != 1 {
		t.Fatalf("delete result = %+v (err %v), want new_active 1", del, err)
	}
	rec = postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"az"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("post-rollback parse of \"az\": %d, want 422", rec.Code)
	}
}

func TestRegistryListAndGet(t *testing.T) {
	h := registryServer(t)
	mustUploadHTTP(t, h, "acme", "t.base", rtBase)

	rec := doJSON(t, h, http.MethodGet, "/grammars", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	var listing registry.Listing
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tenants) != 1 || listing.Tenants[0].Name != "acme" {
		t.Fatalf("listing = %+v", listing)
	}

	rec = doJSON(t, h, http.MethodGet, "/grammars/acme/t.base", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d", rec.Code)
	}
	var gi registry.GrammarInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &gi); err != nil {
		t.Fatal(err)
	}
	if gi.Active != 1 || len(gi.Versions) != 1 || gi.Versions[0].Label != "acme/t.base@v1" {
		t.Fatalf("grammar info = %+v", gi)
	}

	rec = doJSON(t, h, http.MethodGet, "/grammars/acme/t.missing", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("get missing grammar: %d, want 404", rec.Code)
	}
}

func TestRegistryErrorMapping(t *testing.T) {
	h := registryServer(t)
	mustUploadHTTP(t, h, "acme", "t.base", rtBase)

	cases := []struct {
		name       string
		method     string
		path, body string
		status     int
		errCode    string
	}{
		{"unknown tenant parse", http.MethodPost, "/parse",
			`{"tenant":"ghost","grammar":"t.base","input":"a"}`,
			http.StatusNotFound, "registry-not-found"},
		{"unknown version parse", http.MethodPost, "/parse",
			`{"tenant":"acme","grammar":"t.base","input":"a","version":9}`,
			http.StatusNotFound, "registry-not-found"},
		{"version without tenant", http.MethodPost, "/parse",
			`{"grammar":"calc.core","input":"1","version":2}`,
			http.StatusBadRequest, "bad-request"},
		{"production override with tenant", http.MethodPost, "/parse",
			`{"tenant":"acme","grammar":"t.base","input":"a","production":"Item"}`,
			http.StatusBadRequest, "bad-request"},
		{"non-module upload", http.MethodPost, "/grammars/acme/t.base",
			`{"source":"not a module"}`,
			http.StatusUnprocessableEntity, "registry-module"},
		{"bad tenant name upload", http.MethodPost, "/grammars/UPPER/t.base",
			`{"source":"module t.base;\npublic Top = \"a\" ;\n"}`,
			http.StatusBadRequest, "registry-bad-request"},
		{"unknown field upload", http.MethodPost, "/grammars/acme/t.base",
			`{"source":"x","bogus":1}`,
			http.StatusBadRequest, "bad-request"},
		{"bad delete version", http.MethodDelete, "/grammars/acme/t.base/zero", "",
			http.StatusBadRequest, "bad-request"},
		{"delete missing version", http.MethodDelete, "/grammars/acme/t.base/7", "",
			http.StatusNotFound, "registry-not-found"},
	}
	for _, tc := range cases {
		rec := doJSON(t, h, tc.method, tc.path, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		e := decodeError(t, rec)
		if e.Error != tc.errCode {
			t.Errorf("%s: error code %q, want %q", tc.name, e.Error, tc.errCode)
		}
	}

	// A smoke-gated upload surfaces as 422 registry-smoke.
	body, _ := json.Marshal(registry.Upload{
		Source: rtBase,
		Probes: []registry.Probe{{Name: "impossible", Input: "zz"}},
	})
	rec := doJSON(t, h, http.MethodPost, "/grammars/acme/t.base", string(body))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("smoke-failing upload: %d, want 422", rec.Code)
	}
	if e := decodeError(t, rec); e.Error != "registry-smoke" {
		t.Errorf("smoke failure error code %q", e.Error)
	}
}

func TestRegistryDisabled(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	rec := postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"a"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("tenant parse without registry: %d, want 400", rec.Code)
	}
	rec = doJSON(t, h, http.MethodGet, "/grammars", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /grammars without registry: %d, want 404", rec.Code)
	}
}

// TestRegistryMetricsLabel: registry-backed parses surface in /metrics
// under their tenant/grammar@version label — the acceptance criterion's
// observability half.
func TestRegistryMetricsLabel(t *testing.T) {
	h := registryServer(t)
	mustUploadHTTP(t, h, "acme", "t.base", rtBase)
	for i := 0; i < 3; i++ {
		if rec := postParse(t, h, `{"tenant":"acme","grammar":"t.base","input":"aaa"}`); rec.Code != http.StatusOK {
			t.Fatalf("parse %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := doJSON(t, h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `grammar="acme/t.base@v1"`) {
		t.Errorf("/metrics lacks the tenant/grammar@version label:\n%s",
			firstMatchingLines(rec.Body.String(), "grammar="))
	}
}

func firstMatchingLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
			if len(out) >= 10 {
				break
			}
		}
	}
	return strings.Join(out, "\n")
}
