package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modpeg"
	"modpeg/internal/telemetry"
)

const wellFormedTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		header string
		trace  string
		ok     bool
	}{
		{wellFormedTraceparent, "4bf92f3577b34da6a3ce929d0e0e4736", true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", "4bf92f3577b34da6a3ce929d0e0e4736", true},
		{"", "", false},
		{"not-a-traceparent", "", false},
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", false}, // unknown version
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", "", false}, // uppercase hex
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", "", false}, // zero trace ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", "", false}, // zero parent ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1", "", false},  // short flags
		{"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", false}, // bad separator
	}
	for _, c := range cases {
		trace, ok := parseTraceparent(c.header)
		if trace != c.trace || ok != c.ok {
			t.Errorf("parseTraceparent(%q) = (%q, %v), want (%q, %v)", c.header, trace, ok, c.trace, c.ok)
		}
	}
}

// TestTraceparentEchoed checks the propagation half of the trace
// contract: a well-formed inbound traceparent keeps its trace ID on the
// response, but the parent span ID is regenerated — this service is its
// own span, not an impersonation of its caller's.
func TestTraceparentEchoed(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	req := httptest.NewRequest(http.MethodPost, "/parse",
		strings.NewReader(`{"grammar":"calc.core","input":"1+2"}`))
	req.Header.Set("traceparent", wellFormedTraceparent)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := rec.Header().Get("traceparent")
	if _, ok := parseTraceparent(out); !ok {
		t.Fatalf("response traceparent %q is malformed", out)
	}
	if got := out[3:35]; got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("response trace ID %q, want the inbound one", got)
	}
	if out[36:52] == "00f067aa0ba902b7" {
		t.Error("response parent ID echoes the caller's span instead of a fresh one")
	}
}

// TestTraceparentMinted checks the generation half: absent or malformed
// headers get a fresh valid trace rather than a reflection.
func TestTraceparentMinted(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}})
	for _, header := range []string{"", "garbage", strings.ToUpper(wellFormedTraceparent)} {
		req := httptest.NewRequest(http.MethodPost, "/parse",
			strings.NewReader(`{"grammar":"calc.core","input":"1+2"}`))
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		out := rec.Header().Get("traceparent")
		trace, ok := parseTraceparent(out)
		if !ok {
			t.Fatalf("minted traceparent %q is malformed (inbound %q)", out, header)
		}
		if len(header) == 55 && trace == strings.ToLower(header[3:35]) {
			t.Errorf("malformed inbound header %q had its trace ID trusted", header)
		}
	}
}

// TestDebugEndpointsDrainGated pins satellite 1: once /readyz flips to
// draining, the whole debug surface — pprof and the two forensics
// endpoints — answers 503 instead of starting work on a dying instance.
func TestDebugEndpointsDrainGated(t *testing.T) {
	s, err := New(Config{Grammars: []string{"calc.core"}, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	paths := []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/profiles", "/debug/flightrecorder"}
	for _, path := range paths {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("ready: GET %s status %d, want 200", path, rec.Code)
		}
	}
	s.ready.Store(false)
	for _, path := range paths {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("draining: GET %s status %d, want 503", path, rec.Code)
		}
	}
}

func dumpFlightRecorder(t *testing.T, h http.Handler) telemetry.FlightDump {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/flightrecorder", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/flightrecorder status %d: %s", rec.Code, rec.Body.String())
	}
	var dump telemetry.FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("flight dump is not JSON: %v", err)
	}
	return dump
}

// TestFlightRecorderCapturesSlowParse drives a parse over a
// deliberately tiny latency threshold and checks the flight record
// carries the full forensic join: request ID, the propagated trace ID,
// grammar label, duration, and outcome.
func TestFlightRecorderCapturesSlowParse(t *testing.T) {
	h := testServer(t, Config{Grammars: []string{"calc.core"}, SlowParse: time.Nanosecond})
	req := httptest.NewRequest(http.MethodPost, "/parse",
		strings.NewReader(`{"grammar":"calc.core","input":"1+2*3"}`))
	req.Header.Set("traceparent", wellFormedTraceparent)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	dump := dumpFlightRecorder(t, h)
	if dump.Total != 1 || len(dump.Records) != 1 {
		t.Fatalf("flight recorder holds %d records (total %d), want 1", len(dump.Records), dump.Total)
	}
	fr := dump.Records[0]
	if fr.Trigger != "slow" || fr.Outcome != "ok" {
		t.Errorf("record trigger/outcome = %q/%q, want slow/ok", fr.Trigger, fr.Outcome)
	}
	if fr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("record trace ID = %q, want the propagated one", fr.TraceID)
	}
	if fr.RequestID != rec.Header().Get("X-Request-ID") {
		t.Errorf("record request ID = %q, header = %q", fr.RequestID, rec.Header().Get("X-Request-ID"))
	}
	if fr.Grammar != "calc.core" || fr.InputBytes != 5 || fr.DurationNS <= 0 {
		t.Errorf("record = %+v", fr)
	}
}

// TestFlightRecorderCapturesLimitBreach checks the "limit" trigger: a
// budget breach is recorded whatever its wall time, with the breach
// kind in the outcome and the farthest position reached.
func TestFlightRecorderCapturesLimitBreach(t *testing.T) {
	h := testServer(t, Config{
		Grammars: []string{"calc.core"},
		Limits:   modpeg.Limits{MaxCallDepth: 8},
	})
	rec := postParse(t, h, `{"grammar":"calc.core","input":"((((((((((1))))))))))"}`)
	if rec.Code == http.StatusOK {
		t.Fatalf("depth-bomb parse succeeded: %s", rec.Body.String())
	}

	dump := dumpFlightRecorder(t, h)
	if len(dump.Records) != 1 {
		t.Fatalf("flight recorder holds %d records, want 1", len(dump.Records))
	}
	fr := dump.Records[0]
	if fr.Trigger != "limit" || !strings.HasPrefix(fr.Outcome, "limit:") {
		t.Errorf("record trigger/outcome = %q/%q, want limit/limit:*", fr.Trigger, fr.Outcome)
	}
	if fr.FailPos < 0 {
		t.Errorf("record fail_pos = %d, want the breach position", fr.FailPos)
	}
	if fr.Limits.MaxCallDepth != 8 {
		t.Errorf("record limits = %+v, want the effective MaxCallDepth 8", fr.Limits)
	}

	// A fast syntax error, by contrast, is a client problem and stays
	// out of the ring.
	postParse(t, h, `{"grammar":"calc.core","input":"1+"}`)
	if dump = dumpFlightRecorder(t, h); len(dump.Records) != 1 {
		t.Errorf("fast syntax error was recorded: %d records", len(dump.Records))
	}
}

// TestSampledProfilesEndpoint turns the always-on sampler to 1-in-1 and
// checks GET /debug/profiles serves the rolling per-production profile
// for the grammar's label.
func TestSampledProfilesEndpoint(t *testing.T) {
	t.Cleanup(modpeg.ResetSampledProfiles)
	h := testServer(t, Config{Grammars: []string{"calc.core"}, SampleEvery: 1})
	for i := 0; i < 3; i++ {
		if rec := postParse(t, h, `{"grammar":"calc.core","input":"1+2*(3-4)"}`); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/profiles status %d: %s", rec.Code, rec.Body.String())
	}
	var profiles []modpeg.SampledProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &profiles); err != nil {
		t.Fatalf("profiles payload is not JSON: %v", err)
	}
	found := false
	for _, sp := range profiles {
		if sp.Label == "calc.core" {
			found = true
			if sp.Parses != 3 {
				t.Errorf("sampled parses = %d, want 3 at rate 1", sp.Parses)
			}
			if len(sp.Productions) == 0 {
				t.Error("sampled profile has no production rows")
			}
		}
	}
	if !found {
		t.Fatalf("no profile for calc.core in %s", rec.Body.String())
	}
}
