// Package serve implements the modpeg parse service: an HTTP server
// exposing the engine's parsers behind POST /parse, the telemetry
// registry behind GET /metrics (Prometheus text exposition), liveness
// and readiness probes, and optional net/http/pprof handlers.
//
// Every request runs under the governed-parse machinery: per-request
// Limits (server defaults tightened by request overrides) plus the
// request context's cancellation, so a slow client disconnect or a
// pathological input can never pin a worker. Parsers are compiled once
// per (grammar, production) pair and reused across requests; the
// underlying vm pool makes concurrent parses on one parser cheap.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modpeg"
	"modpeg/internal/registry"
	"modpeg/internal/telemetry"
	"modpeg/internal/vm"
)

// DefaultMaxBodyBytes caps the request body when Config.MaxBodyBytes
// is zero. The parse input rides inside a JSON string, so the body cap
// should sit above the input-byte limit.
const DefaultMaxBodyBytes = 8 << 20

// shutdownGrace bounds how long Serve waits for in-flight requests
// after its context is canceled.
const shutdownGrace = 10 * time.Second

// DefaultSlowParse is the flight-recorder latency threshold when
// Config.SlowParse is zero: parses slower than this are captured.
const DefaultSlowParse = 250 * time.Millisecond

// Config describes a parse service.
type Config struct {
	// Grammars lists the top modules the service accepts. Every entry
	// is compiled at construction (so a bad grammar fails fast, before
	// the listener opens) and requests for any other grammar are
	// rejected. Empty means: accept any grammar the resolver can load,
	// compiled lazily on first use.
	Grammars []string
	// ModuleDir adds a directory of .mpeg modules to the resolver, in
	// front of the bundled grammars.
	ModuleDir string
	// Limits are the per-request parse budgets. A request may tighten
	// them but never exceed them.
	Limits modpeg.Limits
	// Engine selects the parse engine for grammars the server compiles
	// itself (bundled and module-dir grammars): "" or "optimized" for
	// the interpreting engine, "compiled" for the closure-compiled one.
	// Registry-served grammars choose their engine per upload instead.
	Engine string
	// MaxBodyBytes caps the request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Logger receives one structured record per HTTP request and one
	// per parse. Nil disables logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SampleEvery enables always-on sampled profiling for the server's
	// statically configured grammars: 1 in SampleEvery parse sessions
	// runs under the per-production profiler, feeding the rolling
	// per-grammar profiles on GET /debug/profiles and the
	// hot-production counters on /metrics. 0 disables sampling (the
	// default — the untouched parse path stays allocation-free).
	// Registry tenants choose their own rate per upload instead.
	SampleEvery int
	// SlowParse is the flight-recorder latency threshold: parses
	// slower than this are captured on GET /debug/flightrecorder.
	// 0 means DefaultSlowParse. A registry tenant's slow_parse_ms
	// setting overrides it for that tenant's parses.
	SlowParse time.Duration
	// FlightRecords caps the flight-recorder ring
	// (0 = telemetry.DefaultFlightRecords).
	FlightRecords int
	// Registry, when set, enables the multi-tenant grammar registry:
	// the /grammars upload/list/delete endpoints, and tenant-scoped
	// /parse requests (ParseRequest.Tenant/Version) served from
	// hot-swappable registered grammar versions.
	Registry *registry.Registry
}

// Server is a parse service. Create one with New, expose it with
// Handler (for tests or custom servers) or Serve / ListenAndServe.
type Server struct {
	cfg     Config
	allowed map[string]bool // non-nil iff cfg.Grammars was non-empty

	mu      sync.Mutex
	parsers map[parserKey]*modpeg.Parser

	recorder *telemetry.FlightRecorder

	ready atomic.Bool
}

type parserKey struct {
	grammar    string
	production string
}

// New builds a Server, compiling every configured grammar up front.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:      cfg,
		parsers:  make(map[parserKey]*modpeg.Parser),
		recorder: telemetry.NewFlightRecorder(cfg.FlightRecords),
	}
	if len(cfg.Grammars) > 0 {
		s.allowed = make(map[string]bool, len(cfg.Grammars))
		for _, g := range cfg.Grammars {
			s.allowed[g] = true
		}
		for _, g := range cfg.Grammars {
			if _, err := s.parserFor(g, ""); err != nil {
				return nil, fmt.Errorf("grammar %q: %w", g, err)
			}
		}
	}
	s.ready.Store(true)
	return s, nil
}

// parserFor returns the cached parser for (grammar, production),
// compiling it on first use.
func (s *Server) parserFor(grammar, production string) (*modpeg.Parser, error) {
	key := parserKey{grammar, production}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.parsers[key]; ok {
		return p, nil
	}
	opts := []modpeg.Option{}
	if s.cfg.ModuleDir != "" {
		opts = append(opts, modpeg.WithModuleDir(s.cfg.ModuleDir))
	}
	if production != "" {
		opts = append(opts, modpeg.WithRoot(production))
	}
	if s.cfg.Engine != "" {
		e, err := modpeg.EngineByName(s.cfg.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, modpeg.WithEngine(e))
	}
	p, err := modpeg.New(grammar, opts...)
	if err != nil {
		return nil, err
	}
	if s.cfg.SampleEvery > 0 {
		p.SetSampling(s.cfg.SampleEvery)
	}
	s.parsers[key] = p
	return p, nil
}

// Grammars returns the sorted grammar list the service accepts, or nil
// when any resolvable grammar is accepted.
func (s *Server) Grammars() []string {
	if s.allowed == nil {
		return nil
	}
	out := make([]string, 0, len(s.allowed))
	for g := range s.allowed {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// maxRequestIDLen caps a client-supplied X-Request-ID; anything longer
// (or empty) is replaced by a generated id.
const maxRequestIDLen = 128

// newRequestID returns a 16-hex-char random request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID accepts the client's X-Request-ID header (or generates
// one), stamps it on the response, and makes it available on the
// request context — every response, success or typed error, carries an
// id a client can quote back and an operator can grep the request log
// for.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > maxRequestIDLen {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r)
	})
}

// Handler returns the service's HTTP handler: POST /parse,
// GET /metrics, GET /healthz, GET /readyz, the tail-latency debug
// surface (GET /debug/profiles and GET /debug/flightrecorder, both
// readiness-gated), and (when enabled) /debug/pprof/, gated the same
// way. The whole mux is wrapped in the request-id and trace-context
// middlewares and the structured request logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/parse", s.handleParse)
	if s.cfg.Registry != nil {
		mux.HandleFunc("GET /grammars", s.handleRegistryList)
		mux.HandleFunc("GET /grammars/{tenant}/{name}", s.handleRegistryGet)
		mux.HandleFunc("POST /grammars/{tenant}/{name}", s.handleRegistryUpload)
		mux.HandleFunc("DELETE /grammars/{tenant}/{name}/{version}", s.handleRegistryDelete)
	}
	mux.Handle("/metrics", telemetry.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", s.gateDebug(pprof.Index))
		mux.HandleFunc("/debug/pprof/cmdline", s.gateDebug(pprof.Cmdline))
		mux.HandleFunc("/debug/pprof/profile", s.gateDebug(pprof.Profile))
		mux.HandleFunc("/debug/pprof/symbol", s.gateDebug(pprof.Symbol))
		mux.HandleFunc("/debug/pprof/trace", s.gateDebug(pprof.Trace))
	}
	mux.HandleFunc("GET /debug/profiles", s.gateDebug(s.handleProfiles))
	mux.HandleFunc("GET /debug/flightrecorder", s.gateDebug(s.handleFlightRecorder))
	return telemetry.LogRequests(s.cfg.Logger, withRequestID(withTraceContext(mux)))
}

// Serve accepts connections on ln until ctx is canceled, then flips
// /readyz to 503 and drains in-flight requests (bounded by
// shutdownGrace) before returning.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.ready.Store(false)
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("listening", slog.String("addr", ln.Addr().String()))
	}
	return s.Serve(ctx, ln)
}

// ParseRequest is the POST /parse body.
type ParseRequest struct {
	// Grammar names the top module, e.g. "calc.core". With Tenant set
	// it instead names a registered grammar of that tenant.
	Grammar string `json:"grammar"`
	// Tenant routes the request to the grammar registry: the parse
	// runs against tenant's registered grammar named Grammar (the
	// active version, or the one pinned by Version) under the tenant's
	// budgets. Empty uses the server's statically configured grammars.
	Tenant string `json:"tenant,omitempty"`
	// Version pins a specific registered grammar version; 0 parses
	// against the currently active version. Only valid with Tenant.
	Version int `json:"version,omitempty"`
	// Production optionally overrides the start production (fully
	// qualified, e.g. "calc.core.Sum"). Empty uses the grammar's root.
	Production string `json:"production,omitempty"`
	// Input is the text to parse.
	Input string `json:"input"`
	// Name labels the input in errors and logs (defaults to "request").
	Name string `json:"name,omitempty"`
	// Profile requests a per-production profile in the response.
	Profile bool `json:"profile,omitempty"`
	// OmitValue drops the parsed value from the response, leaving only
	// stats and timing. Capacity probes (modpeg loadtest) use this to
	// measure parse cost without paying AST serialization and transfer.
	OmitValue bool `json:"omit_value,omitempty"`

	// Optional per-request budget overrides. Each tightens the server
	// default; a request can never exceed the configured limit.
	TimeoutMS     int `json:"timeout_ms,omitempty"`
	MaxInputBytes int `json:"max_input_bytes,omitempty"`
	MaxMemoBytes  int `json:"max_memo_bytes,omitempty"`
	MaxCallDepth  int `json:"max_call_depth,omitempty"`
}

// ParseResponse is the POST /parse success body.
type ParseResponse struct {
	Grammar string `json:"grammar"`
	// Tenant and Version echo registry-backed requests; Version is the
	// grammar version that actually served the parse (the active one
	// when the request did not pin).
	Tenant     string          `json:"tenant,omitempty"`
	Version    int             `json:"version,omitempty"`
	Production string          `json:"production,omitempty"`
	Value      json.RawMessage `json:"value,omitempty"`
	Stats      StatsJSON       `json:"stats"`
	DurationNS int64           `json:"duration_ns"`
	Profile    json.RawMessage `json:"profile,omitempty"`
}

// StatsJSON is the wire form of modpeg.ParseStats.
type StatsJSON struct {
	Calls         int `json:"calls"`
	DispatchSkips int `json:"dispatch_skips"`
	MemoHits      int `json:"memo_hits"`
	MemoMisses    int `json:"memo_misses"`
	MemoStores    int `json:"memo_stores"`
	MemoBytes     int `json:"memo_bytes"`
	MemoSheds     int `json:"memo_sheds,omitempty"`
	MaxPos        int `json:"max_pos"`
}

func statsJSON(st modpeg.ParseStats) StatsJSON {
	return StatsJSON{
		Calls:         st.Calls,
		DispatchSkips: st.DispatchSkips,
		MemoHits:      st.MemoHits,
		MemoMisses:    st.MemoMisses,
		MemoStores:    st.MemoStores,
		MemoBytes:     st.MemoBytes,
		MemoSheds:     st.MemoSheds,
		MaxPos:        st.MaxPos,
	}
}

// ErrorResponse is the body of every non-2xx /parse response.
type ErrorResponse struct {
	// Error is the machine-readable kind: "bad-request",
	// "unknown-grammar", "syntax", "limit", or "engine".
	Error string `json:"error"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Kind names the exhausted budget for Error == "limit"
	// ("input-bytes", "memo-bytes", "call-depth", "deadline",
	// "canceled").
	Kind string `json:"kind,omitempty"`
	// Expected lists the terminals/productions a syntax error wanted.
	Expected []string `json:"expected,omitempty"`
	// Location pinpoints a syntax error.
	Location *LocationJSON `json:"location,omitempty"`
	// RequestID echoes the request's X-Request-ID (client-supplied or
	// generated), so an error body alone is enough to find the matching
	// request-log record.
	RequestID string `json:"request_id,omitempty"`
}

// LocationJSON is the wire form of a source location.
type LocationJSON struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Offset int    `json:"offset"`
}

// writeJSON writes v compactly. Responses embed parsed ASTs, and
// indented rendering is quadratic in their nesting depth — a 4 KB
// deeply nested input once ballooned to a ~300 MB pretty-printed
// response. Clients that want indentation can re-indent locally.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, resp ErrorResponse) {
	// The request-id middleware stamped the id on the response headers
	// before the handler ran; thread it into the typed error body.
	if resp.RequestID == "" {
		resp.RequestID = w.Header().Get("X-Request-ID")
	}
	writeJSON(w, status, resp)
}

// effectiveLimits layers the request's overrides onto base (the server
// defaults, already tightened by tenant budgets for registry requests).
// Every layer only tightens: no request can exceed the layer above it
// (vm.Limits.Tighten).
func effectiveLimits(base modpeg.Limits, req *ParseRequest) modpeg.Limits {
	return base.Tighten(modpeg.Limits{
		MaxInputBytes:    req.MaxInputBytes,
		MaxMemoBytes:     req.MaxMemoBytes,
		MaxCallDepth:     req.MaxCallDepth,
		MaxParseDuration: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	// Bracket the whole request (decode + parse + encode) in the
	// in-flight gauge: a /metrics scrape mid-loadtest shows how many
	// requests the process is actually holding.
	vm.AddInflight(1)
	defer vm.AddInflight(-1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{
			Error: "bad-request", Message: "POST required"})
		return
	}
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req ParseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, ErrorResponse{
			Error: "bad-request", Message: "invalid request body: " + err.Error()})
		return
	}
	if req.Grammar == "" {
		writeError(w, http.StatusBadRequest, ErrorResponse{
			Error: "bad-request", Message: "missing grammar"})
		return
	}
	base := s.cfg.Limits
	slowParse := s.cfg.SlowParse
	if slowParse <= 0 {
		slowParse = DefaultSlowParse
	}
	var p *modpeg.Parser
	servedVersion := 0
	switch {
	case req.Tenant != "":
		// Registry-backed parse: lease the tenant's grammar version
		// (active, or pinned by req.Version) and hold the lease until
		// the response is written — the in-flight count is the drain
		// signal a hot swap's old version waits out.
		if s.cfg.Registry == nil {
			writeError(w, http.StatusBadRequest, ErrorResponse{
				Error: "bad-request", Message: "this server has no grammar registry"})
			return
		}
		if req.Production != "" {
			writeError(w, http.StatusBadRequest, ErrorResponse{
				Error: "bad-request", Message: "production override is not supported for registry grammars"})
			return
		}
		lease, err := s.cfg.Registry.Acquire(req.Tenant, req.Grammar, req.Version)
		if err != nil {
			status, resp := registryStatus(err)
			writeError(w, status, resp)
			return
		}
		defer lease.Release()
		p = lease.Parser
		base = base.Tighten(lease.Limits)
		servedVersion = lease.Version
		if lease.SlowParse > 0 {
			slowParse = lease.SlowParse
		}
	default:
		if s.allowed != nil && !s.allowed[req.Grammar] {
			writeError(w, http.StatusBadRequest, ErrorResponse{
				Error: "unknown-grammar",
				Message: fmt.Sprintf("grammar %q is not served (configured: %v)",
					req.Grammar, s.Grammars())})
			return
		}
		if req.Version != 0 {
			writeError(w, http.StatusBadRequest, ErrorResponse{
				Error: "bad-request", Message: "version pinning requires a tenant"})
			return
		}
		var err error
		p, err = s.parserFor(req.Grammar, req.Production)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrorResponse{
				Error: "unknown-grammar", Message: err.Error()})
			return
		}
	}

	name := req.Name
	if name == "" {
		name = "request"
	}
	lim := effectiveLimits(base, &req)

	var (
		val      modpeg.Value
		st       modpeg.ParseStats
		parseErr error
		profiler *modpeg.Profiler
	)
	traceID := traceIDFrom(r.Context())
	start := time.Now()
	if req.Profile {
		profiler = p.NewProfiler()
		val, st, parseErr = p.ParseContextTracedWithHook(r.Context(), name, req.Input, lim, traceID, profiler)
	} else {
		val, st, parseErr = p.ParseContextTraced(r.Context(), name, req.Input, lim, traceID)
	}
	elapsed := time.Since(start)
	telemetry.LogParse(s.cfg.Logger, p.Label(), name, len(req.Input), elapsed, st, parseErr)
	if trigger := flightTrigger(elapsed, slowParse, parseErr); trigger != "" {
		s.recordFlight(w, &req, traceID, p.Label(), trigger, elapsed, lim, st, parseErr, profiler)
	}

	if parseErr != nil {
		s.writeParseError(w, parseErr)
		return
	}
	resp := ParseResponse{
		Grammar:    req.Grammar,
		Tenant:     req.Tenant,
		Version:    servedVersion,
		Production: req.Production,
		Stats:      statsJSON(st),
		DurationNS: elapsed.Nanoseconds(),
	}
	if !req.OmitValue {
		valueJSON, err := modpeg.ValueToJSONCompact(val)
		if err != nil {
			writeError(w, http.StatusInternalServerError, ErrorResponse{
				Error: "engine", Message: "value encoding failed: " + err.Error()})
			return
		}
		resp.Value = json.RawMessage(valueJSON)
	}
	if profiler != nil {
		if pj, err := profiler.Profile().JSON(); err == nil {
			resp.Profile = pj
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeParseError maps engine errors onto HTTP statuses: syntax errors
// are 422 with the expected-set and location, input-size breaches 413,
// deadline/cancellation 408, other budget breaches 422 with the limit
// kind, and contained engine panics 500.
func (s *Server) writeParseError(w http.ResponseWriter, err error) {
	var pe *modpeg.ParseError
	var le *modpeg.LimitError
	var ee *modpeg.EngineError
	switch {
	case errors.As(err, &le):
		status := http.StatusUnprocessableEntity
		switch le.Kind {
		case modpeg.LimitInput:
			status = http.StatusRequestEntityTooLarge
		case modpeg.LimitTime, modpeg.LimitCanceled:
			status = http.StatusRequestTimeout
		}
		writeError(w, status, ErrorResponse{
			Error: "limit", Kind: le.Kind.String(), Message: err.Error()})
	case errors.As(err, &pe):
		loc := pe.Src.Location(pe.Pos)
		writeError(w, http.StatusUnprocessableEntity, ErrorResponse{
			Error:    "syntax",
			Message:  pe.Error(),
			Expected: pe.Expected,
			Location: &LocationJSON{
				File:   loc.File,
				Line:   loc.Line,
				Column: loc.Column,
				Offset: int(loc.Offset),
			},
		})
	case errors.As(err, &ee):
		writeError(w, http.StatusInternalServerError, ErrorResponse{
			Error: "engine", Message: err.Error()})
	default:
		writeError(w, http.StatusInternalServerError, ErrorResponse{
			Error: "engine", Message: err.Error()})
	}
}
