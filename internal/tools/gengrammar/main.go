// Command gengrammar regenerates the checked-in generated parsers (the
// codegen golden files). Run it after changing internal/codegen or the
// bundled grammars:
//
//	go run ./internal/tools/gengrammar
package main

import (
	"fmt"
	"go/format"
	"os"

	"modpeg/internal/codegen"
	"modpeg/internal/grammars"
	"modpeg/internal/transform"
)

// targets lists the generated-parser golden packages.
var targets = []struct {
	top  string
	pkg  string
	path string
}{
	{grammars.CalcCore, "gencalc", "internal/codegen/gencalc/gencalc.go"},
	{grammars.JSON, "genjson", "internal/codegen/genjson/genjson.go"},
}

func main() {
	for _, t := range targets {
		g, err := grammars.Compose(t.top)
		if err != nil {
			panic(err)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			panic(err)
		}
		src, err := codegen.Generate(tg, codegen.Options{
			Package:      t.pkg,
			EntryComment: "grammar: " + t.top + " (bundled)",
		})
		if err != nil {
			panic(err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			panic(fmt.Sprintf("%s: generated code does not format: %v", t.top, err))
		}
		if err := os.WriteFile(t.path, formatted, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s: %d bytes\n", t.path, len(formatted))
	}
}
