package syntax

import (
	"testing"

	"modpeg/internal/peg"
)

// FuzzParseModule feeds arbitrary bytes to the module parser. The
// contract under fuzzing: the parser never panics, and whenever it
// accepts an input, the printed form re-parses to a structurally equal
// module with the printer a fixpoint — the round-trip property
// TestRandomModuleRoundTrip checks on generated modules, extended to
// whatever the fuzzer digs up.
func FuzzParseModule(f *testing.F) {
	f.Add("module m;\npublic S = \"a\" ;\n")
	f.Add("module m;\noption root = S;\nS = A / B ;\nA = [a-z]+ ;\nB = !\"x\" . ;\n")
	f.Add("module p(x); import q; modify q.S += <tag> \"y\" ;")
	f.Add("module m;\nvoid Sp = [ \\t\\n]* ;\nS = e:Sp $(\"a\"*) @Node ;")
	f.Add("module m\nS = ") // truncated input
	f.Add("")
	f.Add("module \x00;\nS = [z-a] ;")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseString("fuzz.mpeg", src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		printed := peg.FormatModule(m)
		m2, err := ParseString("fuzz2.mpeg", printed)
		if err != nil {
			t.Fatalf("accepted module does not re-parse: %v\n--- input\n%s\n--- printed\n%s",
				err, src, printed)
		}
		if !peg.EqualModule(m, m2) {
			t.Fatalf("round-trip mismatch\n--- input\n%s\n--- printed\n%s\n--- reprinted\n%s",
				src, printed, peg.FormatModule(m2))
		}
		if again := peg.FormatModule(m2); again != printed {
			t.Fatalf("printer not a fixpoint\n--- first\n%s\n--- second\n%s", printed, again)
		}
	})
}
