package syntax

import (
	"strings"
	"testing"

	"modpeg/internal/peg"
)

func mustParse(t *testing.T, src string) *peg.Module {
	t.Helper()
	m, err := ParseString("test.mpeg", src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	return m
}

func mustExpr(t *testing.T, src string) *peg.Choice {
	t.Helper()
	c, err := ParseExprString(src)
	if err != nil {
		t.Fatalf("parse expr %q failed: %v", src, err)
	}
	return c
}

func TestParseModuleHeader(t *testing.T) {
	m := mustParse(t, "module calc.base;\n")
	if m.Name != "calc.base" || len(m.Params) != 0 || len(m.Prods) != 0 {
		t.Fatalf("module = %+v", m)
	}
	m = mustParse(t, "module calc.expr(Space, Atom);\n")
	if m.Name != "calc.expr" || len(m.Params) != 2 || m.Params[0] != "Space" || m.Params[1] != "Atom" {
		t.Fatalf("params = %v", m.Params)
	}
}

func TestParseDependencies(t *testing.T) {
	m := mustParse(t, `
module a.b;
import c.d;
import c.expr(a.Space, a.Atom);
modify c.base;
`)
	if len(m.Deps) != 3 {
		t.Fatalf("deps = %d", len(m.Deps))
	}
	if m.Deps[0].Module != "c.d" || m.Deps[0].Modify || m.Deps[0].Args != nil {
		t.Fatalf("dep0 = %+v", m.Deps[0])
	}
	if m.Deps[1].Module != "c.expr" || len(m.Deps[1].Args) != 2 || m.Deps[1].Args[1] != "a.Atom" {
		t.Fatalf("dep1 = %+v", m.Deps[1])
	}
	if !m.Deps[2].Modify {
		t.Fatal("dep2 must be a modify clause")
	}
}

func TestParseOptions(t *testing.T) {
	m := mustParse(t, `
module a;
option root = Program;
option flavor = "fancy";
`)
	if m.Options["root"] != "Program" || m.Options["flavor"] != "fancy" {
		t.Fatalf("options = %v", m.Options)
	}
}

func TestParseProductionAttributes(t *testing.T) {
	m := mustParse(t, `
module a;
public transient Program = "p" ;
void Spacing = " " ;
text Number = [0-9]+ ;
memo Expr = "e" ;
`)
	if len(m.Prods) != 4 {
		t.Fatalf("prods = %d", len(m.Prods))
	}
	if !m.Prods[0].Attrs.Has(peg.AttrPublic | peg.AttrTransient) {
		t.Fatal("attrs of Program")
	}
	if !m.Prods[1].Attrs.Has(peg.AttrVoid) || !m.Prods[2].Attrs.Has(peg.AttrText) || !m.Prods[3].Attrs.Has(peg.AttrMemo) {
		t.Fatal("attrs of others")
	}
}

func TestParseExpressionShapes(t *testing.T) {
	cases := []struct {
		src  string
		want peg.Expr
	}{
		{`"if"`, peg.Alt(peg.SeqOf(peg.Lit("if")))},
		{`'x'`, peg.Alt(peg.SeqOf(peg.Lit("x")))},
		{`A B`, peg.Alt(peg.SeqOf(peg.Ref("A"), peg.Ref("B")))},
		{`A / B`, peg.Alt(peg.SeqOf(peg.Ref("A")), peg.SeqOf(peg.Ref("B")))},
		{`A* B+ C?`, peg.Alt(peg.SeqOf(peg.Star(peg.Ref("A")), peg.Plus(peg.Ref("B")), peg.Opt(peg.Ref("C"))))},
		{`&A !B`, peg.Alt(peg.SeqOf(peg.Ahead(peg.Ref("A")), peg.Never(peg.Ref("B"))))},
		{`.`, peg.Alt(peg.SeqOf(peg.Dot()))},
		{`()`, peg.Alt(peg.SeqOf(peg.Eps()))},
		{`""`, peg.Alt(peg.SeqOf(peg.Eps()))},
		{`$([0-9]+)`, peg.Alt(peg.SeqOf(peg.Text(peg.Plus(peg.Class('0', '9')))))},
		{`[a-z0-9_]`, peg.Alt(peg.SeqOf(peg.Class('a', 'z', '0', '9', '_', '_')))},
		{`[^"\\]`, peg.Alt(peg.SeqOf(peg.NotClass('"', '"', '\\', '\\')))},
		{`[\t\n\r ]`, peg.Alt(peg.SeqOf(peg.Class('\t', '\t', '\n', '\n', '\r', '\r', ' ', ' ')))},
		{`("a" / "b") "c"`, peg.Alt(peg.SeqOf(peg.Alt(peg.SeqOf(peg.Lit("a")), peg.SeqOf(peg.Lit("b"))), peg.Lit("c")))},
		{`(A)`, peg.Alt(peg.SeqOf(peg.Ref("A")))},
		{`calc.lex.Space`, peg.Alt(peg.SeqOf(peg.Ref("calc.lex.Space")))},
		{`"\x41\n\t\\\"" `, peg.Alt(peg.SeqOf(peg.Lit("A\n\t\\\"")))},
	}
	for _, c := range cases {
		got := mustExpr(t, c.src)
		if !peg.EqualExpr(got, c.want) {
			t.Errorf("parse %q = %s, want %s", c.src, peg.FormatExpr(got), peg.FormatExpr(c.want))
		}
	}
}

func TestParseBindingsLabelsCtors(t *testing.T) {
	c := mustExpr(t, `<add> l:Mul "+" r:Sum @Add / Mul`)
	if len(c.Alts) != 2 {
		t.Fatalf("alts = %d", len(c.Alts))
	}
	a := c.Alts[0]
	if a.Label != "add" || a.Ctor != "Add" {
		t.Fatalf("label/ctor = %q/%q", a.Label, a.Ctor)
	}
	if len(a.Items) != 3 || a.Items[0].Bind != "l" || a.Items[1].Bind != "" || a.Items[2].Bind != "r" {
		t.Fatalf("items = %+v", a.Items)
	}
	// Binding binds only the immediately following suffixed expression.
	c = mustExpr(t, `xs:A* B`)
	it := c.Alts[0].Items
	if len(it) != 2 || it[0].Bind != "xs" {
		t.Fatalf("items = %+v", it)
	}
	if _, ok := it[0].Expr.(*peg.Repeat); !ok {
		t.Fatalf("bound expr = %T", it[0].Expr)
	}
}

func TestParseModifications(t *testing.T) {
	m := mustParse(t, `
module ext;
modify base;
Sum += <mod> l:Prod "%" r:Sum @Mod after <sub> ;
Sum += "z" before <add> ;
Sum += "w" ;
Sum -= sub, add ;
Number := $([0-9]+) ;
`)
	if len(m.Prods) != 5 {
		t.Fatalf("prods = %d", len(m.Prods))
	}
	p0 := m.Prods[0]
	if p0.Kind != peg.AddAlts || p0.Anchor != peg.After || p0.AnchorLabel != "sub" {
		t.Fatalf("p0 = %+v", p0)
	}
	if p0.Choice.Alts[0].Label != "mod" {
		t.Fatal("added alternative label")
	}
	p1 := m.Prods[1]
	if p1.Anchor != peg.Before || p1.AnchorLabel != "add" {
		t.Fatalf("p1 = %+v", p1)
	}
	if m.Prods[2].Anchor != peg.AtEnd {
		t.Fatal("p2 anchor")
	}
	p3 := m.Prods[3]
	if p3.Kind != peg.RemoveAlts || len(p3.Removed) != 2 || p3.Removed[0] != "sub" || p3.Removed[1] != "add" {
		t.Fatalf("p3 = %+v", p3)
	}
	if m.Prods[4].Kind != peg.Override {
		t.Fatal("p4 kind")
	}
}

func TestParseEpsilonAlternative(t *testing.T) {
	c := mustExpr(t, `"a" / `)
	if len(c.Alts) != 2 {
		t.Fatalf("alts = %d", len(c.Alts))
	}
	if len(c.Alts[1].Items) != 1 {
		t.Fatalf("epsilon alt items = %d", len(c.Alts[1].Items))
	}
	if _, ok := c.Alts[1].Items[0].Expr.(*peg.Empty); !ok {
		t.Fatalf("epsilon alt = %T", c.Alts[1].Items[0].Expr)
	}
}

func TestParseComments(t *testing.T) {
	m := mustParse(t, `
// header comment
module a; /* inline
   spanning */ public S = "x" // trailing
  ;
`)
	if len(m.Prods) != 1 || m.Prods[0].Name != "S" {
		t.Fatalf("prods = %+v", m.Prods)
	}
}

func parseErr(t *testing.T, src string) string {
	t.Helper()
	_, err := ParseString("bad.mpeg", src)
	if err == nil {
		t.Fatalf("parse %q must fail", src)
	}
	return err.Error()
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"", "expected 'module'"},
		{"x = 1;", "expected 'module'"},
		{"module a; module b;", "duplicate 'module'"},
		{"module a;\nS = lower ;", "upper-case"},
		{"module a;\nlowername = \"x\" ;", "unknown production attribute"},
		{"module a;\nS ~ \"x\" ;", "unexpected character"},
		{"module a;\nS = \"unterminated ;", "unterminated string"},
		{"module a;\nS = [a-z ;", "unterminated character class"},
		{"module a;\nS = [] ;", "empty character class"},
		{"module a;\nS = [z-a] ;", "range out of order"},
		{"module a;\nS = \"\\q\" ;", "unknown escape"},
		{"module a;\nS = \"\\xZZ\" ;", "invalid \\x escape"},
		{"module a;\nS = ( \"x\" ;", "expected ')'"},
		{"module a;\nS := \"x\" @lower ;", "upper-case"},
		{"module a;\noption k = ;", "expected option value"},
		{"module a;\nimport ;", "expected identifier"},
		{"module a;\n/* never closed", "unterminated block comment"},
		{"module a;\npublic public S = \"x\" ;", "duplicate attribute"},
		{"module a(space);", "upper-case"},
		{"module a;\nS = \"a\" $ \"b\" ;", "expected '('"},
	}
	for _, c := range cases {
		if got := parseErr(t, c.src); !strings.Contains(got, c.frag) {
			t.Errorf("error for %q = %q, want fragment %q", c.src, got, c.frag)
		}
	}
}

func TestParseRecoversMultipleErrors(t *testing.T) {
	_, err := ParseString("multi.mpeg", `
module a;
S = lower ;
T = "ok" ;
U = @ ;
`)
	if err == nil {
		t.Fatal("must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "upper-case") || strings.Count(msg, "\n") < 1 {
		t.Fatalf("expected two diagnostics, got: %q", msg)
	}
}

func TestParsePreservesDeclarationOrder(t *testing.T) {
	m := mustParse(t, `
module a;
B = "b" ;
A = "a" ;
C = "c" ;
`)
	var names []string
	for _, p := range m.Prods {
		names = append(names, p.Name)
	}
	if strings.Join(names, ",") != "B,A,C" {
		t.Fatalf("order = %v", names)
	}
}

// Round-trip: parse, print, parse again; the two parses must be equal.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	m1, err := ParseString("rt.mpeg", src)
	if err != nil {
		t.Fatalf("first parse: %v", err)
	}
	printed := peg.FormatModule(m1)
	m2, err := ParseString("rt2.mpeg", printed)
	if err != nil {
		t.Fatalf("re-parse of\n%s\nfailed: %v", printed, err)
	}
	if !peg.EqualModule(m1, m2) {
		t.Fatalf("round trip mismatch:\n--- first\n%s\n--- second\n%s", printed, peg.FormatModule(m2))
	}
}

func TestRoundTripModules(t *testing.T) {
	sources := []string{
		"module a;\nS = \"x\" ;",
		"module calc.base(Space);\nimport calc.lex;\nmodify other.mod(X.Y);\noption root = Sum;\n" +
			"public Sum = <add> l:Prod \"+\" r:Sum @Add / <sub> l:Prod \"-\" r:Sum @Sub / Prod ;\n" +
			"text Number = $([0-9]+ (\".\" [0-9]+)?) ;\n" +
			"void Spacing = ([ \\t\\n\\r] / \"//\" [^\\n]*)* ;\n",
		"module m;\nS = !\"a\" . / &(\"b\" \"c\") () / $(.+) ;",
		"module m;\nS += \"y\" before <base> ;\nT -= a, b ;\nU := [^a-z] ;",
		"module m;\nS = (A / B)* (C D)+ E? ;",
		"module m;\nS = \"a\" / ;",
		"module m;\nS = x:(A / B) y:(!C) ;",
	}
	for _, src := range sources {
		roundTrip(t, src)
	}
}

func TestRoundTripIsIdempotentOnPrinted(t *testing.T) {
	// print(parse(print(m))) == print(m) for all the corpus modules above.
	src := "module m;\nS = <l> x:A \"k\" @N / B* ;\nT := [a-c] ;\n"
	m1, err := ParseString("i1", src)
	if err != nil {
		t.Fatal(err)
	}
	p1 := peg.FormatModule(m1)
	m2, err := ParseString("i2", p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := peg.FormatModule(m2)
	if p1 != p2 {
		t.Fatalf("printer not stable:\n%s\nvs\n%s", p1, p2)
	}
}
