package syntax

import (
	"testing"

	"modpeg/internal/text"
)

// lexAll scans src into kinds and payloads until EOF or error.
func lexAll(src string) (kinds []tokKind, texts []string) {
	l := newLexer(text.NewSource("lex", src))
	for {
		tok := l.next()
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
		if tok.kind == tokEOF || tok.kind == tokError {
			return
		}
	}
}

func TestLexPunctuation(t *testing.T) {
	kinds, _ := lexAll(`; ( ) / & ! ? * + . : , @ < > $ = := += -=`)
	want := []tokKind{
		tokSemi, tokLParen, tokRParen, tokSlash, tokAmp, tokBang, tokQuest,
		tokStar, tokPlus, tokDot, tokColon, tokComma, tokAt, tokLAngle,
		tokRAngle, tokDollar, tokEq, tokColonEq, tokPlusEq, tokMinusEq, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexIdentifiers(t *testing.T) {
	cases := []struct {
		src  string
		want string
		rest tokKind // kind of the token following the identifier
	}{
		{"hello", "hello", tokEOF},
		{"_x9$", "_x9", tokError}, // '$' is its own token; "$x" invalid alone -> '$' then ident... here '$' then EOF? '$' is tokDollar
		{"Upper.lower.Name", "Upper.lower.Name", tokEOF},
		{"a.b c", "a.b", tokIdent},
		{"a .b", "a", tokDot}, // space breaks qualification
		{"a. b", "a", tokDot}, // dot not followed by ident-start stays free
		{"x.9", "x", tokDot},  // digit cannot start a segment
		{"keyword;", "keyword", tokSemi},
	}
	for _, c := range cases {
		l := newLexer(text.NewSource("lex", c.src))
		tok := l.next()
		if tok.kind != tokIdent || tok.text != c.want {
			t.Errorf("%q: first = %v %q, want ident %q", c.src, tok.kind, tok.text, c.want)
			continue
		}
		if c.src == "_x9$" {
			// '$' scans as tokDollar, not an error; adjust expectation here.
			if next := l.next(); next.kind != tokDollar {
				t.Errorf("%q: next = %v", c.src, next.kind)
			}
			continue
		}
		if next := l.next(); next.kind != c.rest {
			t.Errorf("%q: next = %v, want %v", c.src, next.kind, c.rest)
		}
	}
}

func TestLexStrings(t *testing.T) {
	cases := []struct{ src, want string }{
		{`"plain"`, "plain"},
		{`'single'`, "single"},
		{`"a\nb\tc\rd"`, "a\nb\tc\rd"},
		{`"q\"q"`, `q"q`},
		{`'\''`, "'"},
		{`"\\"`, `\`},
		{`"\x41\x7a"`, "Az"},
		{`"\0"`, "\x00"},
		{`""`, ""},
	}
	for _, c := range cases {
		l := newLexer(text.NewSource("lex", c.src))
		tok := l.next()
		if tok.kind != tokString || tok.text != c.want {
			t.Errorf("%q = %v %q, want string %q", c.src, tok.kind, tok.text, c.want)
		}
	}
}

func TestLexStringErrors(t *testing.T) {
	for _, src := range []string{`"open`, "\"line\nbreak\"", `"\q"`, `"\x4"`, `"\xZZ"`, `"\`} {
		l := newLexer(text.NewSource("lex", src))
		if tok := l.next(); tok.kind != tokError {
			t.Errorf("%q must be a lexical error, got %v %q", src, tok.kind, tok.text)
		}
	}
}

func TestLexClasses(t *testing.T) {
	cases := []struct{ src, want string }{
		{`[a-z]`, "a-z"},
		{`[^a-z0-9]`, "^a-z0-9"},
		{`[\]\-\\]`, `\]\-\\`},
		{`[ \t]`, " \\t"},
	}
	for _, c := range cases {
		l := newLexer(text.NewSource("lex", c.src))
		tok := l.next()
		if tok.kind != tokClass || tok.text != c.want {
			t.Errorf("%q = %v %q, want class %q", c.src, tok.kind, tok.text, c.want)
		}
	}
	for _, src := range []string{"[abc", "[a\nb]", `[ab\`} {
		l := newLexer(text.NewSource("lex", src))
		if tok := l.next(); tok.kind != tokError {
			t.Errorf("%q must be a lexical error, got %v", src, tok.kind)
		}
	}
}

func TestLexComments(t *testing.T) {
	kinds, texts := lexAll("a // line\n b /* block\nmulti */ c")
	var idents []string
	for i, k := range kinds {
		if k == tokIdent {
			idents = append(idents, texts[i])
		}
	}
	if len(idents) != 3 || idents[0] != "a" || idents[2] != "c" {
		t.Fatalf("idents = %v", idents)
	}
	kinds, _ = lexAll("/* unterminated")
	if kinds[len(kinds)-1] != tokError {
		t.Fatal("unterminated block comment must error")
	}
	// A line comment at EOF without newline is fine.
	kinds, _ = lexAll("x // trailing")
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexSpans(t *testing.T) {
	l := newLexer(text.NewSource("lex", "  abc "))
	tok := l.next()
	if tok.span != text.NewSpan(2, 5) {
		t.Fatalf("span = %v", tok.span)
	}
	eof := l.next()
	if eof.kind != tokEOF || eof.span.Start != 6 {
		t.Fatalf("eof span = %v", eof.span)
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	for _, src := range []string{"#", "~", "%", "`", "-"} {
		l := newLexer(text.NewSource("lex", src))
		if tok := l.next(); tok.kind != tokError {
			t.Errorf("%q must be a lexical error, got %v", src, tok.kind)
		}
	}
	// '-' only forms -=; a lone '-' is an error.
	l := newLexer(text.NewSource("lex", "-="))
	if tok := l.next(); tok.kind != tokMinusEq {
		t.Fatalf("-= = %v", tok.kind)
	}
}

func TestTokKindStrings(t *testing.T) {
	all := []tokKind{
		tokEOF, tokIdent, tokString, tokClass, tokSemi, tokLParen, tokRParen,
		tokSlash, tokAmp, tokBang, tokQuest, tokStar, tokPlus, tokDot,
		tokColon, tokComma, tokAt, tokLAngle, tokRAngle, tokDollar, tokEq,
		tokColonEq, tokPlusEq, tokMinusEq, tokError,
	}
	seen := map[string]bool{}
	for _, k := range all {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if tokKind(99).String() == "" {
		t.Fatal("unknown kind must render")
	}
}
