package syntax

import (
	"fmt"
	"strings"

	"modpeg/internal/peg"
	"modpeg/internal/text"
)

// Parse parses a complete module source into a peg.Module. On failure it
// returns every diagnostic found (the parser recovers at declaration
// boundaries), as a *text.ErrorList.
func Parse(src *text.Source) (*peg.Module, error) {
	p := &parser{lex: newLexer(src), src: src}
	p.advance()
	m := p.parseModule()
	if err := p.errs.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseString parses module source given directly as a string; name is used
// for diagnostics.
func ParseString(name, source string) (*peg.Module, error) {
	return Parse(text.NewSource(name, source))
}

// ParseExprString parses a single parsing expression, for tools and tests.
func ParseExprString(source string) (*peg.Choice, error) {
	m, err := ParseString("<expr>", "module m;\nX = "+source+" ;\n")
	if err != nil {
		return nil, err
	}
	return m.Prods[0].Choice, nil
}

// bailout is the sentinel panic used for parse-error recovery.
type bailout struct{}

type parser struct {
	lex  *lexer
	src  *text.Source
	tok  token
	errs text.ErrorList
}

func (p *parser) advance() {
	p.tok = p.lex.next()
	if p.tok.kind == tokError {
		p.errs.Addf(p.src, p.tok.span, "%s", p.tok.text)
		// Treat lexical errors as hard: skip to end of input so the parser
		// does not cascade.
		p.tok = token{kind: tokEOF, span: p.tok.span}
	}
}

func (p *parser) fail(sp text.Span, format string, args ...any) {
	p.errs.Addf(p.src, sp, format, args...)
	panic(bailout{})
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k tokKind) token {
	if p.tok.kind != k {
		p.fail(p.tok.span, "expected %s, found %s", k, p.describe())
	}
	t := p.tok
	p.advance()
	return t
}

func (p *parser) describe() string {
	switch p.tok.kind {
	case tokIdent:
		return fmt.Sprintf("%q", p.tok.text)
	case tokString:
		return fmt.Sprintf("string %q", p.tok.text)
	default:
		return p.tok.kind.String()
	}
}

// at reports whether the current token is an identifier with the exact
// given text (used for soft keywords).
func (p *parser) at(word string) bool {
	return p.tok.kind == tokIdent && p.tok.text == word
}

// recoverTo skips tokens until just past the next ';' (or to EOF).
func (p *parser) recoverTo() {
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokSemi {
			p.advance()
			return
		}
		p.advance()
	}
}

func (p *parser) parseModule() *peg.Module {
	m := &peg.Module{Source: p.src, Options: map[string]string{}}
	func() {
		defer p.recoverDecl()
		start := p.tok.span
		if !p.at("module") {
			p.fail(p.tok.span, "expected 'module' header, found %s", p.describe())
		}
		p.advance()
		m.Name = p.expect(tokIdent).text
		if p.tok.kind == tokLParen {
			p.advance()
			for {
				m.Params = append(m.Params, p.parseUpperName("module parameter"))
				if p.tok.kind != tokComma {
					break
				}
				p.advance()
			}
			p.expect(tokRParen)
		}
		semi := p.expect(tokSemi)
		m.Sp = start.Union(semi.span)
	}()

	for p.tok.kind != tokEOF {
		func() {
			defer p.recoverDecl()
			switch {
			case p.at("import"), p.at("modify"):
				m.Deps = append(m.Deps, p.parseDependency())
			case p.at("option"):
				k, v := p.parseOption()
				m.Options[k] = v
			case p.at("module"):
				p.fail(p.tok.span, "duplicate 'module' header")
			default:
				m.Prods = append(m.Prods, p.parseProduction())
			}
		}()
	}
	return m
}

// recoverDecl converts a bailout panic into declaration-level recovery.
func (p *parser) recoverDecl() {
	if r := recover(); r != nil {
		if _, ok := r.(bailout); !ok {
			panic(r)
		}
		p.recoverTo()
	}
}

func (p *parser) parseDependency() peg.Dependency {
	d := peg.Dependency{Modify: p.at("modify"), Sp: p.tok.span}
	p.advance()
	d.Module = p.expect(tokIdent).text
	if p.tok.kind == tokLParen {
		p.advance()
		for {
			d.Args = append(d.Args, p.expect(tokIdent).text)
			if p.tok.kind != tokComma {
				break
			}
			p.advance()
		}
		p.expect(tokRParen)
	}
	semi := p.expect(tokSemi)
	d.Sp = d.Sp.Union(semi.span)
	return d
}

func (p *parser) parseOption() (string, string) {
	p.advance() // 'option'
	key := p.expect(tokIdent).text
	p.expect(tokEq)
	var val string
	switch p.tok.kind {
	case tokIdent, tokString:
		val = p.tok.text
		p.advance()
	default:
		p.fail(p.tok.span, "expected option value, found %s", p.describe())
	}
	p.expect(tokSemi)
	return key, val
}

// parseUpperName consumes an identifier that must start with an upper-case
// letter (optionally module-qualified, in which case the final segment must
// be upper-case).
func (p *parser) parseUpperName(what string) string {
	t := p.expect(tokIdent)
	if !isProductionName(t.text) {
		p.fail(t.span, "%s %q must start with an upper-case letter", what, t.text)
	}
	return t.text
}

// isProductionName reports whether the (possibly qualified) name's final
// segment starts with an upper-case letter.
func isProductionName(name string) bool {
	seg := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		seg = name[i+1:]
	}
	return seg != "" && seg[0] >= 'A' && seg[0] <= 'Z'
}

func (p *parser) parseProduction() *peg.Production {
	prod := &peg.Production{Sp: p.tok.span}
	// Attributes: lower-case identifiers before the production name.
	for p.tok.kind == tokIdent && !isProductionName(p.tok.text) {
		bit, ok := peg.ParseAttr(p.tok.text)
		if !ok {
			p.fail(p.tok.span, "unknown production attribute %q", p.tok.text)
		}
		if prod.Attrs.Has(bit) {
			p.errs.Addf(p.src, p.tok.span, "duplicate attribute %q", p.tok.text)
		}
		prod.Attrs |= bit
		p.advance()
	}
	prod.Name = p.parseUpperName("production name")

	switch p.tok.kind {
	case tokEq:
		prod.Kind = peg.Define
	case tokColonEq:
		prod.Kind = peg.Override
	case tokPlusEq:
		prod.Kind = peg.AddAlts
	case tokMinusEq:
		prod.Kind = peg.RemoveAlts
	default:
		p.fail(p.tok.span, "expected '=', ':=', '+=' or '-=' after production name, found %s", p.describe())
	}
	p.advance()

	if prod.Kind == peg.RemoveAlts {
		for {
			t := p.expect(tokIdent)
			prod.Removed = append(prod.Removed, t.text)
			if p.tok.kind != tokComma {
				break
			}
			p.advance()
		}
	} else {
		prod.Choice = p.parseChoice()
		// A lower-case identifier left over after the body is almost always
		// a mis-cased nonterminal reference; say so instead of a bare
		// "expected ';'".
		if p.tok.kind == tokIdent && !isProductionName(p.tok.text) &&
			!(prod.Kind == peg.AddAlts && (p.at("before") || p.at("after"))) {
			p.fail(p.tok.span, "reference %q must start with an upper-case letter", p.tok.text)
		}
		if prod.Kind == peg.AddAlts && (p.at("before") || p.at("after")) {
			if p.at("before") {
				prod.Anchor = peg.Before
			} else {
				prod.Anchor = peg.After
			}
			p.advance()
			p.expect(tokLAngle)
			prod.AnchorLabel = p.expect(tokIdent).text
			p.expect(tokRAngle)
		}
	}
	semi := p.expect(tokSemi)
	prod.Sp = prod.Sp.Union(semi.span)
	return prod
}

func (p *parser) parseChoice() *peg.Choice {
	start := p.tok.span
	c := &peg.Choice{Sp: start}
	c.Alts = append(c.Alts, p.parseSequence())
	for p.tok.kind == tokSlash {
		p.advance()
		c.Alts = append(c.Alts, p.parseSequence())
	}
	c.Sp = start.Union(c.Alts[len(c.Alts)-1].Span())
	return c
}

func (p *parser) parseSequence() *peg.Seq {
	start := p.tok.span
	s := &peg.Seq{Sp: start}
	if p.tok.kind == tokLAngle {
		p.advance()
		s.Label = p.expect(tokIdent).text
		p.expect(tokRAngle)
	}
	for p.startsItem() {
		s.Items = append(s.Items, p.parseItem())
	}
	if p.tok.kind == tokAt {
		p.advance()
		s.Ctor = p.parseUpperName("node constructor")
	}
	if len(s.Items) > 0 {
		s.Sp = start.Union(s.Items[len(s.Items)-1].Expr.Span())
	} else {
		// Normalize epsilon alternatives to an explicit Empty item so that
		// printing and re-parsing are stable.
		s.Items = []peg.Item{{Expr: &peg.Empty{Sp: start}}}
	}
	return s
}

// startsItem reports whether the current token can begin a sequence item.
// Lower-case identifiers begin an item only as bindings (followed by ':'),
// which keeps soft keywords like 'before'/'after' out of item position.
func (p *parser) startsItem() bool {
	switch p.tok.kind {
	case tokString, tokClass, tokDot, tokLParen, tokAmp, tokBang, tokDollar:
		return true
	case tokIdent:
		if isProductionName(p.tok.text) {
			return true
		}
		// Peek: binding name? Save lexer state cheaply by re-scanning.
		save := *p.lex
		nt := p.lex.next()
		*p.lex = save
		return nt.kind == tokColon
	}
	return false
}

func (p *parser) parseItem() peg.Item {
	var it peg.Item
	if p.tok.kind == tokIdent && !isProductionName(p.tok.text) {
		// Must be a binding (startsItem guaranteed the ':').
		it.Bind = p.tok.text
		p.advance()
		p.expect(tokColon)
		it.Expr = p.parseSuffixed()
		return it
	}
	it.Expr = p.parsePrefixed()
	return it
}

func (p *parser) parsePrefixed() peg.Expr {
	start := p.tok.span
	switch p.tok.kind {
	case tokAmp:
		p.advance()
		e := p.parseSuffixed()
		return &peg.And{Expr: e, Sp: start.Union(e.Span())}
	case tokBang:
		p.advance()
		e := p.parseSuffixed()
		return &peg.Not{Expr: e, Sp: start.Union(e.Span())}
	}
	return p.parseSuffixed()
}

func (p *parser) parseSuffixed() peg.Expr {
	e := p.parsePrimary()
	for {
		switch p.tok.kind {
		case tokQuest:
			e = &peg.Optional{Expr: e, Sp: e.Span().Union(p.tok.span)}
			p.advance()
		case tokStar:
			e = &peg.Repeat{Min: 0, Expr: e, Sp: e.Span().Union(p.tok.span)}
			p.advance()
		case tokPlus:
			e = &peg.Repeat{Min: 1, Expr: e, Sp: e.Span().Union(p.tok.span)}
			p.advance()
		default:
			return e
		}
	}
}

func (p *parser) parsePrimary() peg.Expr {
	start := p.tok.span
	switch p.tok.kind {
	case tokString:
		t := p.tok
		p.advance()
		if t.text == "" {
			return &peg.Empty{Sp: t.span}
		}
		return &peg.Literal{Text: t.text, Sp: t.span}
	case tokClass:
		t := p.tok
		p.advance()
		return p.decodeClass(t)
	case tokDot:
		p.advance()
		return &peg.Any{Sp: start}
	case tokDollar:
		p.advance()
		p.expect(tokLParen)
		inner := p.parseChoice()
		end := p.expect(tokRParen)
		return &peg.Capture{Expr: simplifyChoice(inner), Sp: start.Union(end.span)}
	case tokLParen:
		p.advance()
		if p.tok.kind == tokRParen {
			end := p.tok
			p.advance()
			return &peg.Empty{Sp: start.Union(end.span)}
		}
		inner := p.parseChoice()
		end := p.expect(tokRParen)
		e := simplifyChoice(inner)
		setSpan(e, start.Union(end.span))
		return e
	case tokIdent:
		if !isProductionName(p.tok.text) {
			p.fail(p.tok.span, "reference %q must start with an upper-case letter", p.tok.text)
		}
		t := p.tok
		p.advance()
		return &peg.NonTerm{Name: t.text, Sp: t.span}
	}
	p.fail(p.tok.span, "expected a parsing expression, found %s", p.describe())
	return nil
}

// simplifyChoice unwraps single-alternative, single-item, unlabeled,
// unconstructed choices produced by parenthesization, so that "(A)" parses
// to exactly the reference A.
func simplifyChoice(c *peg.Choice) peg.Expr {
	if len(c.Alts) == 1 {
		a := c.Alts[0]
		if a.Label == "" && a.Ctor == "" && len(a.Items) == 1 && a.Items[0].Bind == "" {
			return a.Items[0].Expr
		}
		if a.Label == "" && a.Ctor == "" && !a.HasBindings() {
			return a
		}
	}
	return c
}

// setSpan widens an expression's span to cover its parentheses, so that
// diagnostics point at the whole group.
func setSpan(e peg.Expr, sp text.Span) {
	switch e := e.(type) {
	case *peg.Empty:
		e.Sp = sp
	case *peg.Literal:
		e.Sp = sp
	case *peg.CharClass:
		e.Sp = sp
	case *peg.Any:
		e.Sp = sp
	case *peg.NonTerm:
		e.Sp = sp
	case *peg.Seq:
		e.Sp = sp
	case *peg.Choice:
		e.Sp = sp
	case *peg.Repeat:
		e.Sp = sp
	case *peg.Optional:
		e.Sp = sp
	case *peg.And:
		e.Sp = sp
	case *peg.Not:
		e.Sp = sp
	case *peg.Capture:
		e.Sp = sp
	}
}

// decodeClass parses the raw interior of a [...] token into a CharClass.
func (p *parser) decodeClass(t token) *peg.CharClass {
	raw := t.text
	c := &peg.CharClass{Sp: t.span}
	i := 0
	if strings.HasPrefix(raw, "^") {
		c.Negated = true
		i = 1
	}
	readByte := func() (byte, bool) {
		if i >= len(raw) {
			return 0, false
		}
		if raw[i] == '\\' {
			b, n, err := decodeEscape(raw[i:])
			if err != "" {
				p.errs.Addf(p.src, t.span, "in character class: %s", err)
				i = len(raw)
				return 0, false
			}
			i += n
			return b, true
		}
		b := raw[i]
		i++
		return b, true
	}
	for i < len(raw) {
		lo, ok := readByte()
		if !ok {
			break
		}
		hi := lo
		if i < len(raw) && raw[i] == '-' && i+1 < len(raw) {
			i++ // '-'
			h, ok := readByte()
			if !ok {
				break
			}
			hi = h
		}
		if hi < lo {
			p.errs.Addf(p.src, t.span, "character class range out of order: %q > %q", lo, hi)
			lo, hi = hi, lo
		}
		c.Ranges = append(c.Ranges, peg.CharRange{Lo: lo, Hi: hi})
	}
	if len(c.Ranges) == 0 {
		p.errs.Addf(p.src, t.span, "empty character class")
	}
	return c
}
