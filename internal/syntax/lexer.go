// Package syntax implements the front end for the modpeg grammar language:
// a lexer and recursive-descent parser that turn `.mpeg` module sources into
// peg.Module values.
//
// # The grammar language
//
// A module file looks like:
//
//	module calc.base;
//
//	import calc.lex;
//	modify calc.core;
//	option root = Program;
//
//	public transient Program = Spacing e:Sum EOF ;
//
//	Sum =
//	    <add> l:Prod "+" Spacing r:Sum @Add
//	  / <sub> l:Prod "-" Spacing r:Sum @Sub
//	  / Prod
//	  ;
//
//	Number = $([0-9]+) Spacing ;
//	void Spacing = ([ \t\n\r] / Comment)* ;
//
// Module headers may declare parameters (`module calc.expr(Space);`) that
// dependencies instantiate with arguments (`import calc.expr(my.Space);`).
// Modification modules change productions of the modules they `modify`:
//
//	Sum += <mod> l:Prod "%" Spacing r:Sum @Mod after <sub> ;
//	Sum -= sub ;
//	Number := $([0-9]+ ("." [0-9]+)?) Spacing ;
//
// Lexical notes: `//` and `/* */` comments; string literals in double or
// single quotes with the usual escapes; character classes in brackets;
// production names start with an upper-case letter while attribute and
// structure keywords are lower-case; qualified names (`calc.lex.Space`)
// must be written without interior spaces, since a free-standing `.` is the
// any-byte expression.
package syntax

import (
	"fmt"
	"strings"

	"modpeg/internal/text"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // literal; payload is the decoded text
	tokClass  // character class; payload is the raw inside of [ ]
	tokSemi
	tokLParen
	tokRParen
	tokSlash
	tokAmp
	tokBang
	tokQuest
	tokStar
	tokPlus
	tokDot
	tokColon
	tokComma
	tokAt
	tokLAngle
	tokRAngle
	tokDollar
	tokEq      // =
	tokColonEq // :=
	tokPlusEq  // +=
	tokMinusEq // -=
	tokError   // lexical error; payload is the message
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string literal"
	case tokClass:
		return "character class"
	case tokSemi:
		return "';'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokSlash:
		return "'/'"
	case tokAmp:
		return "'&'"
	case tokBang:
		return "'!'"
	case tokQuest:
		return "'?'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokAt:
		return "'@'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokDollar:
		return "'$'"
	case tokEq:
		return "'='"
	case tokColonEq:
		return "':='"
	case tokPlusEq:
		return "'+='"
	case tokMinusEq:
		return "'-='"
	case tokError:
		return "lexical error"
	}
	return fmt.Sprintf("tokKind(%d)", int(k))
}

// token is one lexical token with its decoded payload and source span.
type token struct {
	kind tokKind
	text string
	span text.Span
}

// lexer scans an .mpeg source into tokens.
type lexer struct {
	src *text.Source
	in  string
	pos int
}

func newLexer(src *text.Source) *lexer {
	return &lexer{src: src, in: src.Content()}
}

func (l *lexer) errTok(start int, format string, args ...any) token {
	return token{kind: tokError, text: fmt.Sprintf(format, args...),
		span: text.NewSpan(text.Pos(start), text.Pos(l.pos))}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// skipSpace consumes whitespace and comments; it returns false on an
// unterminated block comment (and positions at its start for the error).
func (l *lexer) skipSpace() (ok bool, errStart int) {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '/':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '*':
			start := l.pos
			l.pos += 2
			for {
				if l.pos+1 >= len(l.in) {
					l.pos = len(l.in)
					return false, start
				}
				if l.in[l.pos] == '*' && l.in[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return true, 0
		}
	}
	return true, 0
}

// next scans and returns the next token.
func (l *lexer) next() token {
	if ok, errStart := l.skipSpace(); !ok {
		return l.errTok(errStart, "unterminated block comment")
	}
	start := l.pos
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, span: text.NewSpan(text.Pos(start), text.Pos(start))}
	}
	c := l.in[l.pos]
	mk := func(k tokKind, n int) token {
		l.pos += n
		return token{kind: k, text: l.in[start:l.pos],
			span: text.NewSpan(text.Pos(start), text.Pos(l.pos))}
	}
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.in) {
			if isIdentPart(l.in[l.pos]) {
				l.pos++
				continue
			}
			// Qualified names: a dot immediately followed by an identifier
			// start extends the name ("calc.lex"). A free-standing dot is
			// the any-byte token.
			if l.in[l.pos] == '.' && l.pos+1 < len(l.in) && isIdentStart(l.in[l.pos+1]) {
				l.pos += 2
				continue
			}
			break
		}
		return token{kind: tokIdent, text: l.in[start:l.pos],
			span: text.NewSpan(text.Pos(start), text.Pos(l.pos))}
	case c == '"' || c == '\'':
		return l.scanString(c)
	case c == '[':
		return l.scanClass()
	}
	switch c {
	case ';':
		return mk(tokSemi, 1)
	case '(':
		return mk(tokLParen, 1)
	case ')':
		return mk(tokRParen, 1)
	case '/':
		return mk(tokSlash, 1)
	case '&':
		return mk(tokAmp, 1)
	case '!':
		return mk(tokBang, 1)
	case '?':
		return mk(tokQuest, 1)
	case '*':
		return mk(tokStar, 1)
	case '.':
		return mk(tokDot, 1)
	case ',':
		return mk(tokComma, 1)
	case '@':
		return mk(tokAt, 1)
	case '<':
		return mk(tokLAngle, 1)
	case '>':
		return mk(tokRAngle, 1)
	case '$':
		return mk(tokDollar, 1)
	case '=':
		return mk(tokEq, 1)
	case ':':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			return mk(tokColonEq, 2)
		}
		return mk(tokColon, 1)
	case '+':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			return mk(tokPlusEq, 2)
		}
		return mk(tokPlus, 1)
	case '-':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			return mk(tokMinusEq, 2)
		}
	}
	l.pos++
	return l.errTok(start, "unexpected character %q", c)
}

// scanString scans a quoted literal, decoding escapes into the payload.
func (l *lexer) scanString(quote byte) token {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.in) || l.in[l.pos] == '\n' {
			return l.errTok(start, "unterminated string literal")
		}
		c := l.in[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: b.String(),
				span: text.NewSpan(text.Pos(start), text.Pos(l.pos))}
		}
		if c == '\\' {
			dec, n, err := decodeEscape(l.in[l.pos:])
			if err != "" {
				l.pos++
				return l.errTok(start, "%s", err)
			}
			b.WriteByte(dec)
			l.pos += n
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
}

// scanClass scans a bracketed character class; the payload is the raw text
// between the brackets (decoded later by the parser, which understands
// ranges).
func (l *lexer) scanClass() token {
	start := l.pos
	l.pos++ // '['
	for {
		if l.pos >= len(l.in) || l.in[l.pos] == '\n' {
			return l.errTok(start, "unterminated character class")
		}
		c := l.in[l.pos]
		if c == ']' {
			l.pos++
			return token{kind: tokClass, text: l.in[start+1 : l.pos-1],
				span: text.NewSpan(text.Pos(start), text.Pos(l.pos))}
		}
		if c == '\\' {
			if l.pos+1 >= len(l.in) {
				return l.errTok(start, "unterminated character class")
			}
			l.pos += 2
			continue
		}
		l.pos++
	}
}

// decodeEscape decodes a backslash escape at the head of s, returning the
// byte value, the number of input bytes consumed, and an error message
// ("" on success).
func decodeEscape(s string) (byte, int, string) {
	if len(s) < 2 {
		return 0, 0, "truncated escape sequence"
	}
	switch s[1] {
	case 'n':
		return '\n', 2, ""
	case 'r':
		return '\r', 2, ""
	case 't':
		return '\t', 2, ""
	case '0':
		return 0, 2, ""
	case '\\', '\'', '"', ']', '[', '-', '^':
		return s[1], 2, ""
	case 'x':
		if len(s) < 4 {
			return 0, 0, "truncated \\x escape"
		}
		hi, ok1 := hexVal(s[2])
		lo, ok2 := hexVal(s[3])
		if !ok1 || !ok2 {
			return 0, 0, fmt.Sprintf("invalid \\x escape %q", s[:4])
		}
		return hi<<4 | lo, 4, ""
	}
	return 0, 0, fmt.Sprintf("unknown escape sequence \\%c", s[1])
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
