package syntax

import (
	"fmt"
	"math/rand"
	"testing"

	"modpeg/internal/peg"
)

// Random-module round-trip: for arbitrary well-formed modules, parsing
// the printer's output reproduces the module exactly. This pins the
// concrete syntax, the printer's parenthesization, and the parser's
// precedence handling against each other across the whole construct
// space.

type moduleGen struct {
	r *rand.Rand
}

func (g *moduleGen) ident(upper bool) string {
	letters := "abcdefgh"
	if upper {
		letters = "ABCDEFGH"
	}
	return string(letters[g.r.Intn(len(letters))]) + fmt.Sprint(g.r.Intn(100))
}

func (g *moduleGen) module() *peg.Module {
	m := &peg.Module{Name: "gen." + g.ident(false), Options: map[string]string{}}
	for i := 0; i < g.r.Intn(3); i++ {
		m.Params = append(m.Params, g.ident(true))
	}
	for i := 0; i < g.r.Intn(3); i++ {
		d := peg.Dependency{Module: "dep." + g.ident(false), Modify: g.r.Intn(2) == 0}
		for j := 0; j < g.r.Intn(2); j++ {
			d.Args = append(d.Args, "dep.Arg"+fmt.Sprint(j))
		}
		m.Deps = append(m.Deps, d)
	}
	if g.r.Intn(2) == 0 {
		m.Options["root"] = g.ident(true)
	}
	n := 1 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		m.Prods = append(m.Prods, g.production(i))
	}
	return m
}

func (g *moduleGen) production(i int) *peg.Production {
	p := &peg.Production{Name: fmt.Sprintf("P%d", i)}
	switch g.r.Intn(6) {
	case 0:
		p.Attrs |= peg.AttrPublic
	case 1:
		p.Attrs |= peg.AttrVoid
	case 2:
		p.Attrs |= peg.AttrText
	case 3:
		p.Attrs |= peg.AttrPublic | peg.AttrTransient
	}
	switch g.r.Intn(6) {
	case 0:
		p.Kind = peg.Override
		p.Choice = g.choice(3)
	case 1:
		p.Kind = peg.AddAlts
		p.Choice = g.choice(2)
		switch g.r.Intn(3) {
		case 0:
			p.Anchor, p.AnchorLabel = peg.Before, "anchor"
		case 1:
			p.Anchor, p.AnchorLabel = peg.After, "anchor"
		}
	case 2:
		p.Kind = peg.RemoveAlts
		for j := 0; j <= g.r.Intn(2); j++ {
			p.Removed = append(p.Removed, g.ident(false))
		}
	default:
		p.Kind = peg.Define
		p.Choice = g.choice(3)
	}
	return p
}

func (g *moduleGen) choice(depth int) *peg.Choice {
	c := &peg.Choice{}
	n := 1 + g.r.Intn(3)
	labels := g.r.Intn(2) == 0
	for i := 0; i < n; i++ {
		s := g.seq(depth)
		if labels {
			s.Label = fmt.Sprintf("l%d", i)
		}
		if g.r.Intn(3) == 0 {
			s.Ctor = "N" + fmt.Sprint(i)
		}
		c.Alts = append(c.Alts, s)
	}
	return c
}

func (g *moduleGen) seq(depth int) *peg.Seq {
	s := &peg.Seq{}
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		it := peg.Item{Expr: g.expr(depth)}
		if g.r.Intn(4) == 0 {
			it.Bind = "b" + fmt.Sprint(i)
			// A bound expression must parse back at suffix precedence;
			// the printer parenthesizes, so any expression is fine.
		}
		s.Items = append(s.Items, it)
	}
	return s
}

func (g *moduleGen) expr(depth int) peg.Expr {
	if depth <= 0 {
		return g.terminal()
	}
	switch g.r.Intn(12) {
	case 0:
		return peg.Opt(g.expr(depth - 1))
	case 1:
		return peg.Star(g.expr(depth - 1))
	case 2:
		return peg.Plus(g.expr(depth - 1))
	case 3:
		return peg.Ahead(g.expr(depth - 1))
	case 4:
		return peg.Never(g.expr(depth - 1))
	case 5:
		return peg.Text(g.expr(depth - 1))
	case 6:
		// Nested choice: printed parenthesized, re-parsed identically
		// unless it is the trivial single-alternative case, which the
		// parser simplifies; generate at least two alternatives.
		c := g.choice(depth - 1)
		for len(c.Alts) < 2 {
			c.Alts = append(c.Alts, g.seq(depth-1))
		}
		// Labels and ctors inside nested choices round-trip too, but a
		// nested single-item choice with bindings simplifies; keep them.
		return c
	case 7:
		return peg.Ref(g.ident(true))
	case 8:
		return peg.Ref("q.mod." + g.ident(true))
	default:
		return g.terminal()
	}
}

func (g *moduleGen) terminal() peg.Expr {
	switch g.r.Intn(6) {
	case 0:
		return peg.Lit("lit" + fmt.Sprint(g.r.Intn(10)))
	case 1:
		return peg.Lit("\\\"\n\t\x01") // escapes round-trip
	case 2:
		cls := peg.Class('a', 'f', '0', '9')
		if g.r.Intn(2) == 0 {
			cls.Negated = true
		}
		return cls
	case 3:
		return peg.Class(']', ']', '-', '-', '^', '^')
	case 4:
		return peg.Dot()
	default:
		return peg.Eps()
	}
}

func TestRandomModuleRoundTrip(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		g := &moduleGen{r: rand.New(rand.NewSource(int64(seed)))}
		m1 := g.module()
		printed := peg.FormatModule(m1)
		m2, err := ParseString("rt.mpeg", printed)
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v\n%s", seed, err, printed)
		}
		if !peg.EqualModule(m1, m2) {
			t.Fatalf("seed %d: round-trip mismatch\n--- original\n%s\n--- reparsed\n%s",
				seed, printed, peg.FormatModule(m2))
		}
		// And the printer is a fixpoint.
		if again := peg.FormatModule(m2); again != printed {
			t.Fatalf("seed %d: printer not stable\n%s\nvs\n%s", seed, printed, again)
		}
	}
}
