package registry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modpeg"
)

// Test grammars: a tiny self-contained base language ("a" sequences)
// plus extension modules exercising every modification form the paper
// defines (+=, -=, :=) against an already-registered base.

const baseV1 = `module t.base;
option root = Top;
public Top = Item+ EOF ;
Item = <a> "a" ;
void EOF = !. ;
`

// baseV2 accepts "a" and "z" — a compatible upgrade of the base.
const baseV2 = `module t.base;
option root = Top;
public Top = Item+ EOF ;
Item = <a> "a" / <z> "z" ;
void EOF = !. ;
`

// baseOnlyB accepts only "b" — used to prove swaps are all-or-nothing.
const baseOnlyB = `module t.base;
option root = Top;
public Top = Item+ EOF ;
Item = <b> "b" ;
void EOF = !. ;
`

// extAdd splices a new alternative into the base without touching it.
const extAdd = `module t.ext;
modify t.base;
option root = t.base.Top;
Item += <b> "b" ;
`

// extCut removes the base's <a> alternative and substitutes <c>.
const extCut = `module t.cut;
modify t.base;
option root = t.base.Top;
Item += <c> "c" ;
Item -= a ;
`

// extOverride replaces the Item production outright.
const extOverride = `module t.over;
modify t.base;
option root = t.base.Top;
Item := <d> "d" ;
`

func testRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	if cfg.DefaultLimits == (modpeg.Limits{}) {
		cfg.DefaultLimits = modpeg.Limits{
			MaxInputBytes:    1 << 20,
			MaxMemoBytes:     16 << 20,
			MaxCallDepth:     10000,
			MaxParseDuration: 5 * time.Second,
		}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustUpload(t *testing.T, r *Registry, tenant, name string, up Upload) VersionInfo {
	t.Helper()
	info, err := r.Upload(context.Background(), tenant, name, up)
	if err != nil {
		t.Fatalf("upload %s/%s: %v", tenant, name, err)
	}
	return info
}

// parseWith leases (tenant, name, version) and reports whether input
// parses under the lease.
func parseWith(t *testing.T, r *Registry, tenant, name string, version int, input string) bool {
	t.Helper()
	lease, err := r.Acquire(tenant, name, version)
	if err != nil {
		t.Fatalf("acquire %s/%s@%d: %v", tenant, name, version, err)
	}
	defer lease.Release()
	_, err = lease.Parser.ParseContext(context.Background(), "test", input, lease.Limits)
	if err != nil {
		var pe *modpeg.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("parse %q: non-syntax error %v", input, err)
		}
		return false
	}
	return true
}

func wantKind(t *testing.T, err error, kind ErrKind) *Error {
	t.Helper()
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *registry.Error", err)
	}
	if re.Kind != kind {
		t.Fatalf("error kind = %q, want %q (%v)", re.Kind, kind, err)
	}
	return re
}

func TestUploadActivateParse(t *testing.T) {
	r := testRegistry(t, Config{})
	info := mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
	if info.Version != 1 || info.State != string(stateActive) {
		t.Fatalf("info = %+v, want version 1 active", info)
	}
	if !parseWith(t, r, "acme", "t.base", 0, "aaa") {
		t.Error(`"aaa" must parse against the active base`)
	}
	if parseWith(t, r, "acme", "t.base", 0, "b") {
		t.Error(`"b" must not parse against base v1`)
	}
	lease, err := r.Acquire("acme", "t.base", 0)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Label != "acme/t.base@v1" || lease.Version != 1 {
		t.Errorf("lease = %q v%d", lease.Label, lease.Version)
	}
	lease.Release()
}

func TestUploadValidation(t *testing.T) {
	r := testRegistry(t, Config{MaxSourceBytes: 256})
	ctx := context.Background()
	cases := []struct {
		name    string
		tenant  string
		grammar string
		up      Upload
		kind    ErrKind
	}{
		{"empty source", "acme", "t.base", Upload{}, KindBadRequest},
		{"bad tenant", "Not A Tenant", "t.base", Upload{Source: baseV1}, KindBadRequest},
		{"bad grammar name", "acme", "../../etc/passwd", Upload{Source: baseV1}, KindBadRequest},
		{"unparsable source", "acme", "t.base", Upload{Source: "not a module"}, KindModule},
		{"name mismatch", "acme", "t.other", Upload{Source: baseV1}, KindModule},
		{"oversized source", "acme", "t.base", Upload{Source: baseV1 + strings.Repeat("// pad\n", 64)}, KindCapacity},
	}
	for _, tc := range cases {
		_, err := r.Upload(ctx, tc.tenant, tc.grammar, tc.up)
		if err == nil {
			t.Errorf("%s: upload succeeded, want %q error", tc.name, tc.kind)
			continue
		}
		var re *Error
		if !errors.As(err, &re) {
			t.Errorf("%s: untyped error %v", tc.name, err)
			continue
		}
		if re.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q (%v)", tc.name, re.Kind, tc.kind, err)
		}
	}
	// Pre-build rejects consume no version number and create no state.
	if got := len(r.List().Tenants); got != 0 {
		t.Errorf("rejected uploads left %d tenants behind", got)
	}

	// A module that parses but does not compose fails later, in the
	// build: it is recorded as a failed version (visible in listings,
	// never servable).
	_, err := r.Upload(ctx, "acme", "t.dangling",
		Upload{Source: "module t.dangling;\nmodify t.nonexistent;\nX += <q> \"q\" ;\n"})
	wantKind(t, err, KindModule)
	gi, err := r.Grammar("acme", "t.dangling")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Active != 0 || len(gi.Versions) != 1 || gi.Versions[0].State != string(stateFailed) {
		t.Errorf("non-composing upload recorded as %+v, want one failed version", gi)
	}
	if _, err := r.Acquire("acme", "t.dangling", 0); err == nil {
		t.Error("grammar with only a failed version must not be acquirable")
	}
}

// TestModificationForms registers a base and then exercises +=, -=, and
// := extension modules against it — the paper's module modification
// machinery driven entirely through the runtime upload path.
func TestModificationForms(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})

	mustUpload(t, r, "acme", "t.ext", Upload{Source: extAdd})
	if !parseWith(t, r, "acme", "t.ext", 0, "ab") {
		t.Error(`+=: "ab" must parse against the extension`)
	}
	if parseWith(t, r, "acme", "t.base", 0, "b") {
		t.Error(`+=: the base grammar must be unaffected by the extension`)
	}

	mustUpload(t, r, "acme", "t.cut", Upload{Source: extCut})
	if !parseWith(t, r, "acme", "t.cut", 0, "cc") {
		t.Error(`-=: "cc" must parse after substitution`)
	}
	if parseWith(t, r, "acme", "t.cut", 0, "a") {
		t.Error(`-=: removed alternative <a> must no longer parse`)
	}

	mustUpload(t, r, "acme", "t.over", Upload{Source: extOverride})
	if !parseWith(t, r, "acme", "t.over", 0, "d") || parseWith(t, r, "acme", "t.over", 0, "a") {
		t.Error(`:=: override must accept "d" and drop "a"`)
	}
}

// TestTenantIsolation: one tenant's registered grammars are invisible
// to another tenant's compositions.
func TestTenantIsolation(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
	_, err := r.Upload(context.Background(), "rival", "t.ext", Upload{Source: extAdd})
	wantKind(t, err, KindModule)
	if _, err := r.Acquire("rival", "t.base", 0); err == nil {
		t.Error("rival must not acquire acme's grammar")
	}
}

func TestSmokeGate(t *testing.T) {
	r := testRegistry(t, Config{})
	probes := []Probe{
		{Name: "accepts-a", Input: "aa"},
		{Name: "rejects-q", Input: "q", Fail: true},
	}
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1, Probes: probes})

	// baseOnlyB cannot parse "aa", so the inherited probe corpus must
	// keep it from activating.
	_, err := r.Upload(context.Background(), "acme", "t.base", Upload{Source: baseOnlyB})
	wantKind(t, err, KindSmoke)
	gi, err := r.Grammar("acme", "t.base")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Active != 1 {
		t.Fatalf("active = v%d after failed upload, want v1", gi.Active)
	}
	if len(gi.Versions) != 2 || gi.Versions[1].State != string(stateFailed) || gi.Versions[1].Error == "" {
		t.Fatalf("failed version not recorded: %+v", gi.Versions)
	}
	if !parseWith(t, r, "acme", "t.base", 0, "aa") {
		t.Error("active version must keep serving after a failed upload")
	}
	// The failed version is not servable even by pin.
	if _, err := r.Acquire("acme", "t.base", 2); err == nil {
		t.Error("failed version must not be acquirable")
	}

	// A Fail probe that parses is a smoke failure too: baseV2 accepts
	// "z", so a corpus declaring "z" must-fail gates it.
	_, err = r.Upload(context.Background(), "acme", "t.base", Upload{
		Source: baseV2,
		Probes: []Probe{{Input: "aa"}, {Name: "z-must-fail", Input: "z", Fail: true}},
	})
	wantKind(t, err, KindSmoke)
}

func TestVersionPinAndRollback(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
	info := mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2})
	if info.Version != 2 || info.State != string(stateActive) {
		t.Fatalf("v2 info = %+v", info)
	}
	// Active serves v2; v1 stays pinnable.
	if !parseWith(t, r, "acme", "t.base", 0, "az") {
		t.Error(`active must serve v2 ("z" accepted)`)
	}
	if parseWith(t, r, "acme", "t.base", 1, "z") {
		t.Error(`pinned v1 must still reject "z"`)
	}

	// Rollback: deleting the active version reactivates v1.
	res, err := r.Delete("acme", "t.base", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewActive != 1 {
		t.Fatalf("delete result = %+v, want new_active 1", res)
	}
	if parseWith(t, r, "acme", "t.base", 0, "z") {
		t.Error("after rollback the active version must reject \"z\"")
	}
	if _, err := r.Acquire("acme", "t.base", 2); err == nil {
		t.Error("deleted version must not be acquirable")
	}

	// Deleting the last version removes the grammar and its tenant.
	if _, err := r.Delete("acme", "t.base", 1); err != nil {
		t.Fatal(err)
	}
	_, err = r.Acquire("acme", "t.base", 0)
	wantKind(t, err, KindNotFound)
	if got := len(r.List().Tenants); got != 0 {
		t.Errorf("empty tenant still listed (%d tenants)", got)
	}
}

func TestNoActivate(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
	info := mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2, NoActivate: true})
	if info.State != string(stateReady) {
		t.Fatalf("no-activate upload state = %q, want ready", info.State)
	}
	if parseWith(t, r, "acme", "t.base", 0, "z") {
		t.Error("no-activate upload must not change the active version")
	}
	if !parseWith(t, r, "acme", "t.base", 2, "z") {
		t.Error("no-activate version must be servable by pin")
	}
	// Deleting the active v1 promotes the staged v2.
	res, err := r.Delete("acme", "t.base", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewActive != 2 {
		t.Fatalf("delete result = %+v, want new_active 2", res)
	}
	if !parseWith(t, r, "acme", "t.base", 0, "z") {
		t.Error("staged version must serve after promotion")
	}
}

func TestCapacityCaps(t *testing.T) {
	r := testRegistry(t, Config{MaxTenants: 1, MaxGrammarsPerTenant: 1, MaxVersionsPerGrammar: 2})
	ctx := context.Background()
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})

	_, err := r.Upload(ctx, "rival", "t.base", Upload{Source: baseV1})
	wantKind(t, err, KindCapacity)
	_, err = r.Upload(ctx, "acme", "t.ext", Upload{Source: extAdd})
	wantKind(t, err, KindCapacity)

	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2})
	_, err = r.Upload(ctx, "acme", "t.base", Upload{Source: baseV1})
	wantKind(t, err, KindCapacity)
	// Deleting a version frees a slot.
	if _, err := r.Delete("acme", "t.base", 1); err != nil {
		t.Fatal(err)
	}
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
}

func TestTenantLimitsTightenOnly(t *testing.T) {
	r := testRegistry(t, Config{DefaultLimits: modpeg.Limits{
		MaxInputBytes: 1000, MaxCallDepth: 10000, MaxParseDuration: time.Second,
	}})
	mustUpload(t, r, "acme", "t.base", Upload{
		Source: baseV1,
		Limits: &modpeg.Limits{MaxInputBytes: 10},
	})
	if got := r.Limits("acme").MaxInputBytes; got != 10 {
		t.Fatalf("tenant MaxInputBytes = %d, want 10", got)
	}
	// A later upload cannot loosen the budget back.
	mustUpload(t, r, "acme", "t.base", Upload{
		Source: baseV1,
		Limits: &modpeg.Limits{MaxInputBytes: 5000},
	})
	if got := r.Limits("acme").MaxInputBytes; got != 10 {
		t.Fatalf("tenant MaxInputBytes loosened to %d", got)
	}
	// The tightened budget is enforced through the lease.
	lease, err := r.Acquire("acme", "t.base", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	_, err = lease.Parser.ParseContext(context.Background(), "big", strings.Repeat("a", 50), lease.Limits)
	var le *modpeg.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("oversized parse error = %v, want a limit error", err)
	}
}

func TestListingShape(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "beta", "t.base", Upload{Source: baseV1})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
	mustUpload(t, r, "acme", "t.ext", Upload{Source: extAdd})
	l := r.List()
	if len(l.Tenants) != 2 || l.Tenants[0].Name != "acme" || l.Tenants[1].Name != "beta" {
		t.Fatalf("tenants = %+v", l.Tenants)
	}
	gs := l.Tenants[0].Grammars
	if len(gs) != 2 || gs[0].Name != "t.base" || gs[1].Name != "t.ext" {
		t.Fatalf("acme grammars = %+v", gs)
	}
	if gs[0].Versions[0].Label != "acme/t.base@v1" {
		t.Errorf("label = %q", gs[0].Versions[0].Label)
	}
}

func TestPersistenceReload(t *testing.T) {
	dir := t.TempDir()
	probes := []Probe{{Name: "smoke", Input: "aa"}}
	r := testRegistry(t, Config{Dir: dir})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1, Probes: probes})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2})
	mustUpload(t, r, "acme", "t.ext", Upload{Source: extAdd})
	// Roll back so the recorded active version (1) differs from the
	// highest persisted one (2) — reload must honor the recording.
	if _, err := r.Delete("acme", "t.base", 2); err != nil {
		t.Fatal(err)
	}
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2, NoActivate: true})

	r2 := testRegistry(t, Config{Dir: dir})
	gi, err := r2.Grammar("acme", "t.base")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Active != 1 {
		t.Fatalf("reloaded active = v%d, want v1", gi.Active)
	}
	if len(gi.Versions) != 2 {
		t.Fatalf("reloaded versions = %+v", gi.Versions)
	}
	if !parseWith(t, r2, "acme", "t.base", 0, "aa") || parseWith(t, r2, "acme", "t.base", 0, "z") {
		t.Error("reloaded active version must behave like v1")
	}
	if !parseWith(t, r2, "acme", "t.base", 3, "z") {
		t.Error("reloaded staged version must stay pinnable")
	}
	if !parseWith(t, r2, "acme", "t.ext", 0, "ab") {
		t.Error("reloaded extension must still compose against the base")
	}
	// Version numbering continues past the persisted high-water mark.
	info := mustUpload(t, r2, "acme", "t.base", Upload{Source: baseV1})
	if info.Version != 4 {
		t.Errorf("post-reload upload got version %d, want 4", info.Version)
	}
}

func TestPersistenceSkipsFailedVersions(t *testing.T) {
	dir := t.TempDir()
	r := testRegistry(t, Config{Dir: dir})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1, Probes: []Probe{{Input: "aa"}}})
	if _, err := r.Upload(context.Background(), "acme", "t.base", Upload{Source: baseOnlyB}); err == nil {
		t.Fatal("smoke-failing upload must error")
	}
	if _, err := os.Stat(filepath.Join(dir, "acme", "t.base", "v2.mpeg")); err == nil {
		t.Error("failed upload left v2.mpeg on disk")
	}
	r2 := testRegistry(t, Config{Dir: dir})
	gi, err := r2.Grammar("acme", "t.base")
	if err != nil {
		t.Fatal(err)
	}
	if len(gi.Versions) != 1 || gi.Active != 1 {
		t.Fatalf("reloaded grammar carries the failed version: %+v", gi)
	}
}

// ------------------------------------------------------- race coverage
//
// These tests are written for -race: they hammer the swap, drain, and
// failed-build paths from many goroutines and assert the atomicity
// contract — a request parses entirely against the version it leased,
// and a failed build never touches the active pointer.

// TestSwapNeverMixed uploads versions whose languages are disjoint
// ({"a"} vs {"b"}) while parser goroutines run. Each iteration leases
// once and parses both probe inputs on that single lease: whatever the
// leased version is, exactly one input must parse and it must be the
// one matching the lease's version — any other outcome means a request
// observed a half-swapped grammar.
func TestSwapNeverMixed(t *testing.T) {
	r := testRegistry(t, Config{MaxVersionsPerGrammar: 1000})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})

	const parsers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var iterations atomic.Int64
	for w := 0; w < parsers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lease, err := r.Acquire("acme", "t.base", 0)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				okA := parses(lease, "aaa")
				okB := parses(lease, "bbb")
				odd := lease.Version%2 == 1
				if odd && (!okA || okB) {
					t.Errorf("v%d (odd, language {a}) parsed a=%v b=%v", lease.Version, okA, okB)
				}
				if !odd && (okA || !okB) {
					t.Errorf("v%d (even, language {b}) parsed a=%v b=%v", lease.Version, okA, okB)
				}
				lease.Release()
				iterations.Add(1)
				if t.Failed() {
					return
				}
			}
		}()
	}

	// Swap back and forth: odd versions accept only "a", even only "b".
	// Keep swapping until the parsers have observed plenty of leases
	// (bounded by an upload cap so a wedged parser can't hang the test).
	for n := 2; iterations.Load() < 500 && n < 200 && !t.Failed(); n++ {
		src := baseOnlyB // even version numbers: language {b}
		if n%2 == 1 {
			src = baseV1 // odd version numbers: language {a}
		}
		mustUpload(t, r, "acme", "t.base", Upload{Source: src})
	}
	close(stop)
	wg.Wait()
	if iterations.Load() == 0 {
		t.Error("no parser iterations completed")
	}
}

func parses(l *Lease, input string) bool {
	_, err := l.Parser.ParseContext(context.Background(), "race", input, l.Limits)
	return err == nil
}

// TestFailedBuildsNeverReplaceActive uploads a mix of broken and
// smoke-failing sources from many goroutines; the active version must
// keep serving v1's language throughout and afterwards.
func TestFailedBuildsNeverReplaceActive(t *testing.T) {
	r := testRegistry(t, Config{MaxVersionsPerGrammar: 1000})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1, Probes: []Probe{{Input: "aa"}}})

	bad := []Upload{
		{Source: "module t.base; syntax error"},
		{Source: baseOnlyB},                     // fails the "aa" probe
		{Source: strings.Repeat("//x\n", 1<<6)}, // not a module at all
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				up := bad[(w+i)%len(bad)]
				if _, err := r.Upload(context.Background(), "acme", "t.base", up); err == nil {
					t.Error("broken upload unexpectedly succeeded")
				}
				lease, err := r.Acquire("acme", "t.base", 0)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if !parses(lease, "aa") {
					t.Errorf("active version stopped parsing \"aa\" (v%d)", lease.Version)
				}
				lease.Release()
			}
		}(w)
	}
	wg.Wait()
	gi, err := r.Grammar("acme", "t.base")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Active != 1 {
		t.Fatalf("active = v%d after failed uploads, want v1", gi.Active)
	}
}

// TestDrainCount: after a swap the old version's in-flight count is
// visible in listings and falls to zero as leases release.
func TestDrainCount(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})

	const held = 5
	leases := make([]*Lease, held)
	for i := range leases {
		l, err := r.Acquire("acme", "t.base", 0)
		if err != nil {
			t.Fatal(err)
		}
		leases[i] = l
	}
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2})

	inflight := func(version int) int64 {
		gi, err := r.Grammar("acme", "t.base")
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range gi.Versions {
			if v.Version == version {
				return v.Inflight
			}
		}
		t.Fatalf("version %d not listed", version)
		return 0
	}
	if got := inflight(1); got != held {
		t.Fatalf("old version in-flight = %d, want %d", got, held)
	}
	// Held leases keep parsing the old program after the swap.
	if !parses(leases[0], "aa") || parses(leases[0], "z") {
		t.Error("drained version's lease must still serve v1's language")
	}
	for _, l := range leases {
		l.Release()
	}
	if got := inflight(1); got != 0 {
		t.Fatalf("old version in-flight = %d after release, want 0", got)
	}
}

// TestConcurrentUploadsDistinctVersions: concurrent uploads of the same
// grammar all get distinct version numbers and exactly one ends active.
func TestConcurrentUploadsDistinctVersions(t *testing.T) {
	r := testRegistry(t, Config{MaxVersionsPerGrammar: 1000})
	const n = 16
	var wg sync.WaitGroup
	seen := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := r.Upload(context.Background(), "acme", "t.base", Upload{Source: baseV1})
			if err != nil {
				t.Errorf("upload: %v", err)
				return
			}
			seen <- info.Version
		}()
	}
	wg.Wait()
	close(seen)
	versions := make(map[int]bool)
	for v := range seen {
		if versions[v] {
			t.Errorf("version %d assigned twice", v)
		}
		versions[v] = true
	}
	if len(versions) != n {
		t.Fatalf("%d distinct versions, want %d", len(versions), n)
	}
	gi, err := r.Grammar("acme", "t.base")
	if err != nil {
		t.Fatal(err)
	}
	actives := 0
	for _, v := range gi.Versions {
		if v.State == string(stateActive) {
			actives++
		}
	}
	if actives != 1 || gi.Active == 0 {
		t.Fatalf("%d active versions (active=%d), want exactly 1", actives, gi.Active)
	}
}

func TestUploadCancelStillActivates(t *testing.T) {
	r := testRegistry(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the wait begins
	_, err := r.Upload(ctx, "acme", "t.base", Upload{Source: baseV1})
	if err == nil {
		t.Fatal("canceled upload must return an error to the waiter")
	}
	// ...but the background build completes and activates.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gi, err := r.Grammar("acme", "t.base"); err == nil && gi.Active == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background build did not activate after waiter cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !parseWith(t, r, "acme", "t.base", 0, "aa") {
		t.Error("activated version must serve")
	}
}

func TestLabel(t *testing.T) {
	if got := Label("acme", "t.base", 3); got != "acme/t.base@v3" {
		t.Errorf("Label = %q", got)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Kind: KindModule, Msg: "outer", Err: fmt.Errorf("inner")}
	if e.Error() != "outer: inner" || !errors.Is(e, e.Err) {
		t.Errorf("error = %q unwrap ok=%v", e.Error(), errors.Is(e, e.Err))
	}
}

// TestObservabilitySettings covers the per-tenant tail-forensics knobs:
// the sampling rate reaches every live parser the tenant owns (and can
// move in both directions, unlike Limits), the slow-parse threshold
// rides the lease, bad values are rejected, and both survive a
// registry reload.
func TestObservabilitySettings(t *testing.T) {
	intp := func(v int) *int { return &v }
	dir := t.TempDir()
	r := testRegistry(t, Config{Dir: dir})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})
	mustUpload(t, r, "acme", "t.ext", Upload{Source: extAdd, SampleEvery: intp(100), SlowParseMS: intp(40)})

	checkRate := func(name string, want int) {
		t.Helper()
		lease, err := r.Acquire("acme", name, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer lease.Release()
		if got := lease.Parser.Sampling(); got != want {
			t.Errorf("%s sampling rate = %d, want %d", name, got, want)
		}
		if want := 40 * time.Millisecond; lease.SlowParse != want {
			t.Errorf("%s lease.SlowParse = %v, want %v", name, lease.SlowParse, want)
		}
	}
	// The rate is tenant-wide: it reaches the grammar uploaded before
	// the setting existed, too.
	checkRate("t.base", 100)
	checkRate("t.ext", 100)

	// Unlike Limits, the rate may loosen as well as tighten.
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2, SampleEvery: intp(500)})
	lease, err := r.Acquire("acme", "t.ext", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := lease.Parser.Sampling(); got != 500 {
		t.Errorf("loosened sampling rate = %d, want 500", got)
	}
	lease.Release()

	// Negative knobs are rejected up front.
	for _, up := range []Upload{
		{Source: baseV1, SampleEvery: intp(-1)},
		{Source: baseV1, SlowParseMS: intp(-5)},
	} {
		_, err := r.Upload(context.Background(), "acme", "t.base", up)
		wantKind(t, err, KindBadRequest)
	}

	// The listing surfaces the effective settings.
	l := r.List()
	if len(l.Tenants) != 1 || l.Tenants[0].SampleEvery != 500 || l.Tenants[0].SlowParseMS != 40 {
		t.Fatalf("listing observability = %+v", l.Tenants)
	}

	// Reload: both knobs are persisted tenant metadata, and the rate is
	// re-applied to the recompiled parsers.
	r2 := testRegistry(t, Config{Dir: dir})
	lease, err = r2.Acquire("acme", "t.base", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if got := lease.Parser.Sampling(); got != 500 {
		t.Errorf("reloaded sampling rate = %d, want 500", got)
	}
	if want := 40 * time.Millisecond; lease.SlowParse != want {
		t.Errorf("reloaded lease.SlowParse = %v, want %v", lease.SlowParse, want)
	}
	l = r2.List()
	if len(l.Tenants) != 1 || l.Tenants[0].SampleEvery != 500 || l.Tenants[0].SlowParseMS != 40 {
		t.Fatalf("reloaded listing observability = %+v", l.Tenants)
	}
}
