// Package registry is the multi-tenant grammar store behind `modpeg
// serve`: per-tenant namespaces of named, versioned grammars that can
// be uploaded, composed, validated, and hot-swapped at runtime without
// restarting the service. It turns the paper's core contribution —
// third-party module modification (`+=`/`-=`/`:=`) without touching
// the base grammar — into a runtime feature: a tenant uploads a base
// module, then uploads extension modules that modify it, and both
// serve traffic the moment they activate.
//
// # Lifecycle
//
// An upload reserves a monotonically increasing version number for its
// (tenant, grammar) slot, then builds in the background: the source is
// parsed, composed against the tenant's other registered grammars (the
// uploaded module may `modify` any of them) with the bundled grammars
// as fallback, compiled for the optimized engine, and smoked against
// the grammar's probe corpus — every probe input must parse (or must
// fail, for negative probes) under the tenant's budgets before the
// version may activate. Only then is the version atomically swapped in.
//
// # Swap and drain
//
// The active version of a grammar is an atomic.Pointer. A request
// acquires a lease — one pointer load plus an in-flight increment — and
// parses against an immutable compiled program, so no request can ever
// observe a half-swapped grammar: it parses entirely against the
// version it leased. After a swap the old version stays resident and
// drains: its in-flight count (visible in listings) falls to zero as
// leased requests complete, and the compiled program is only garbage
// collected once the last lease releases. A failed build never touches
// the active pointer.
//
// # Telemetry
//
// Every compiled version is labeled "tenant/grammar@vN", so the
// per-grammar labeled counters and the Prometheus exposition break
// parse traffic down by tenant, grammar, and version with no extra
// hot-path cost.
package registry

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modpeg"
	"modpeg/internal/syntax"
	"modpeg/internal/text"
)

// ErrKind classifies registry errors for typed HTTP mapping.
type ErrKind string

const (
	// KindBadRequest: malformed tenant/grammar names or upload fields.
	KindBadRequest ErrKind = "bad-request"
	// KindNotFound: the tenant, grammar, or version does not exist (or
	// the version is not servable — still compiling, or failed).
	KindNotFound ErrKind = "not-found"
	// KindCapacity: a registry capacity cap was hit (max tenants,
	// grammars per tenant, versions per grammar, or source size).
	KindCapacity ErrKind = "capacity"
	// KindModule: the uploaded source does not parse, declares the
	// wrong module name, or does not compose/compile.
	KindModule ErrKind = "module"
	// KindSmoke: the compiled grammar failed its probe corpus.
	KindSmoke ErrKind = "smoke"
)

// Error is the typed error every registry operation returns on
// failure. Upload, Acquire, and Delete never corrupt registry state on
// error: a failed upload leaves the active version untouched.
type Error struct {
	Kind ErrKind
	Msg  string
	Err  error // underlying cause, if any
}

func (e *Error) Error() string {
	if e.Err != nil && e.Msg != "" {
		return e.Msg + ": " + e.Err.Error()
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return e.Msg
}

func (e *Error) Unwrap() error { return e.Err }

func errf(kind ErrKind, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// Config describes a registry.
type Config struct {
	// Dir persists uploaded sources and activation state; empty keeps
	// the registry in memory only. On construction a non-empty Dir is
	// reloaded: every persisted version is recompiled (against the
	// current active set) and re-smoked, and the recorded active
	// version reactivates.
	Dir string
	// MaxTenants caps the number of tenant namespaces (0 = 64).
	MaxTenants int
	// MaxGrammarsPerTenant caps named grammars per tenant (0 = 64).
	MaxGrammarsPerTenant int
	// MaxVersionsPerGrammar caps live versions per grammar (0 = 32).
	MaxVersionsPerGrammar int
	// MaxSourceBytes caps one uploaded module source (0 = 1 MiB).
	MaxSourceBytes int
	// MaxProbes caps a grammar's probe corpus (0 = 64).
	MaxProbes int
	// DefaultLimits are the per-tenant parse budgets new tenants start
	// with; an upload may tighten (never loosen) its tenant's budgets.
	DefaultLimits modpeg.Limits
	// ModuleDir optionally adds a directory of .mpeg modules to every
	// composition, between the tenant's grammars and the bundled ones.
	ModuleDir string
	// SmokeTimeout bounds each conformance probe (0 = 2s).
	SmokeTimeout time.Duration
}

func (c *Config) withDefaults() {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.MaxGrammarsPerTenant <= 0 {
		c.MaxGrammarsPerTenant = 64
	}
	if c.MaxVersionsPerGrammar <= 0 {
		c.MaxVersionsPerGrammar = 32
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 64
	}
	if c.SmokeTimeout <= 0 {
		c.SmokeTimeout = 2 * time.Second
	}
}

// Probe is one conformance check of a grammar's smoke corpus: Input
// must parse (or, with Fail set, must be rejected with a syntax error)
// before a new version may activate.
type Probe struct {
	// Name labels the probe in failure messages.
	Name string `json:"name,omitempty"`
	// Input is the probe text.
	Input string `json:"input"`
	// Fail inverts the expectation: the input must NOT parse.
	Fail bool `json:"fail,omitempty"`
}

// Upload describes one grammar-version upload.
type Upload struct {
	// Source is the .mpeg module source. Its `module` declaration must
	// match the grammar name it is uploaded under.
	Source string `json:"source"`
	// Probes, when non-nil, replaces the grammar's probe corpus (an
	// empty non-nil slice clears it). Nil keeps the existing corpus.
	Probes []Probe `json:"probes,omitempty"`
	// NoActivate compiles and smokes the version but leaves the active
	// version unchanged; the new version is servable by explicit pin
	// and can be activated later by deleting the versions above it.
	NoActivate bool `json:"no_activate,omitempty"`
	// Limits optionally tightens the tenant's parse budgets (each
	// budget may shrink, never grow; see vm.Limits.Tighten).
	Limits *modpeg.Limits `json:"limits,omitempty"`
	// Engine selects this version's parse engine: "" or "optimized"
	// for the interpreting engine, "compiled" for the closure-compiled
	// one. The choice is per version — a later upload may switch it —
	// and survives restarts.
	Engine string `json:"engine,omitempty"`
	// SampleEvery, when non-nil, sets the tenant's always-on profiling
	// rate: 1 in SampleEvery parses against any of the tenant's grammar
	// versions runs under the per-production profiler, feeding the
	// rolling sampled profiles (/debug/profiles and the hot-production
	// Prometheus counters). 0 disables sampling. Nil keeps the current
	// rate. Unlike Limits, the rate may move in either direction.
	SampleEvery *int `json:"sample_every,omitempty"`
	// SlowParseMS, when non-nil, sets the tenant's slow-parse
	// flight-recorder threshold in milliseconds: parses slower than
	// this are captured in the flight recorder. 0 restores the server
	// default. Nil keeps the current threshold.
	SlowParseMS *int `json:"slow_parse_ms,omitempty"`
}

// state is a version's lifecycle phase, guarded by its grammar's mutex
// (the data plane never reads it — it reads the active pointer).
type state string

const (
	stateCompiling state = "compiling"
	stateReady     state = "ready" // compiled and smoked; not active
	stateActive    state = "active"
	stateFailed    state = "failed"
)

// version is one immutable compiled grammar version. Everything except
// the in-flight counter is written once, before the version becomes
// visible to the data plane.
type version struct {
	number   int
	source   string
	engine   string // "" = optimized; "compiled" = closure-compiled
	created  time.Time
	st       state // guarded by grammar.mu
	failure  string
	parser   *modpeg.Parser // nil while compiling or failed
	inflight atomic.Int64
}

// grammar is one named grammar's version history inside a tenant.
type grammar struct {
	tenant, name string
	mu           sync.Mutex // control plane: uploads, deletes, activation
	nextVersion  int
	versions     []*version // ascending by number; includes failed/compiling
	probes       []Probe
	active       atomic.Pointer[version] // data plane: the serving version
}

// tenant is one namespace of grammars with its parse budgets.
type tenant struct {
	name   string
	limits modpeg.Limits // guarded by Registry.mu
	// sampleEvery and slowParse are the tenant's tail-latency
	// observability settings, guarded by Registry.mu like limits:
	// 1-in-N sampled profiling across the tenant's grammar versions
	// (0 = off) and the slow-parse flight-recorder threshold
	// (0 = server default).
	sampleEvery int
	slowParse   time.Duration
	grammars    map[string]*grammar
}

// Registry is the multi-tenant grammar store. All methods are safe for
// concurrent use; the parse path (Acquire/Release) is two map reads
// under an RLock, one atomic pointer load, and one atomic add.
type Registry struct {
	cfg     Config
	mu      sync.RWMutex
	tenants map[string]*tenant
}

// New builds a registry and, when cfg.Dir is set, reloads its
// persisted state from disk.
func New(cfg Config) (*Registry, error) {
	cfg.withDefaults()
	r := &Registry{cfg: cfg, tenants: make(map[string]*tenant)}
	if cfg.Dir != "" {
		if err := r.load(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

var (
	tenantRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)
	// grammarRe matches module names: dot-separated identifiers.
	grammarRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$`)
)

// maxGrammarName bounds grammar names (they become file names and
// telemetry labels).
const maxGrammarName = 128

func validateNames(tenantName, grammarName string) *Error {
	if !tenantRe.MatchString(tenantName) {
		return errf(KindBadRequest, "invalid tenant %q: want lowercase letters, digits, dashes (max 64)", tenantName)
	}
	if len(grammarName) > maxGrammarName || !grammarRe.MatchString(grammarName) {
		return errf(KindBadRequest, "invalid grammar name %q: want a dotted module name like %q", grammarName, "acme.lang")
	}
	return nil
}

// Limits returns tenant's current parse budgets (the registry default
// if the tenant does not exist yet).
func (r *Registry) Limits(tenantName string) modpeg.Limits {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if t, ok := r.tenants[tenantName]; ok {
		return t.limits
	}
	return r.cfg.DefaultLimits
}

// ------------------------------------------------------------ upload

// VersionInfo is the public snapshot of one version.
type VersionInfo struct {
	Version     int       `json:"version"`
	State       string    `json:"state"`
	Label       string    `json:"label"`
	Engine      string    `json:"engine,omitempty"`
	SourceBytes int       `json:"source_bytes"`
	CreatedAt   time.Time `json:"created_at"`
	Inflight    int64     `json:"inflight"`
	Error       string    `json:"error,omitempty"`
}

// Upload registers a new version of (tenant, name). The version number
// is reserved immediately; the build — parse, compose, compile, smoke —
// runs in a background goroutine and Upload waits for its outcome. If
// ctx is canceled while the build runs, Upload returns early with the
// context error but the build completes and records its result (the
// version activates or fails as if the client had waited). A build
// failure never changes the active version.
func (r *Registry) Upload(ctx context.Context, tenantName, name string, up Upload) (VersionInfo, error) {
	if err := validateNames(tenantName, name); err != nil {
		return VersionInfo{}, err
	}
	if up.Source == "" {
		return VersionInfo{}, errf(KindBadRequest, "empty module source")
	}
	if len(up.Source) > r.cfg.MaxSourceBytes {
		return VersionInfo{}, errf(KindCapacity, "module source is %d bytes, cap %d", len(up.Source), r.cfg.MaxSourceBytes)
	}
	if len(up.Probes) > r.cfg.MaxProbes {
		return VersionInfo{}, errf(KindCapacity, "%d probes, cap %d", len(up.Probes), r.cfg.MaxProbes)
	}
	switch up.Engine {
	case "", "optimized", "compiled":
	default:
		return VersionInfo{}, errf(KindBadRequest, "unknown engine %q (want optimized or compiled)", up.Engine)
	}
	if up.SampleEvery != nil && *up.SampleEvery < 0 {
		return VersionInfo{}, errf(KindBadRequest, "sample_every must be >= 0 (0 disables sampling)")
	}
	if up.SlowParseMS != nil && *up.SlowParseMS < 0 {
		return VersionInfo{}, errf(KindBadRequest, "slow_parse_ms must be >= 0 (0 restores the server default)")
	}

	// The module must parse and must declare the name it is uploaded
	// under, before a version number is consumed.
	mod, err := syntax.Parse(text.NewSource(name+".mpeg", up.Source))
	if err != nil {
		return VersionInfo{}, &Error{Kind: KindModule, Msg: "module source does not parse", Err: err}
	}
	if mod.Name != name {
		return VersionInfo{}, errf(KindModule, "module declares name %q but was uploaded as %q", mod.Name, name)
	}

	g, lim, err2 := r.slot(tenantName, name, up.Limits)
	if err2 != nil {
		return VersionInfo{}, err2
	}
	sampleEvery := r.applyObservability(tenantName, up.SampleEvery, up.SlowParseMS)

	// Reserve the version and snapshot the tenant's other grammars for
	// composition.
	g.mu.Lock()
	live := 0
	for _, v := range g.versions {
		if v.st != stateFailed {
			live++
		}
	}
	if live >= r.cfg.MaxVersionsPerGrammar {
		g.mu.Unlock()
		return VersionInfo{}, errf(KindCapacity, "grammar %s/%s has %d live versions, cap %d (delete one first)",
			tenantName, name, live, r.cfg.MaxVersionsPerGrammar)
	}
	g.nextVersion++
	v := &version{
		number:  g.nextVersion,
		source:  up.Source,
		engine:  up.Engine,
		created: time.Now().UTC(),
		st:      stateCompiling,
	}
	g.versions = append(g.versions, v)
	probes := g.probes
	if up.Probes != nil {
		probes = up.Probes
	}
	g.mu.Unlock()

	modules := r.snapshotSources(tenantName)
	modules[name] = up.Source // the uploaded source wins for its own name

	// Build in the background; activation happens in the build
	// goroutine so a canceled waiter does not abort the swap.
	done := make(chan error, 1)
	go func() {
		done <- r.build(g, v, modules, probes, lim, sampleEvery, up.NoActivate)
	}()
	select {
	case buildErr := <-done:
		g.mu.Lock()
		info := infoOf(v)
		g.mu.Unlock()
		return info, buildErr
	case <-ctx.Done():
		return VersionInfo{Version: v.number, State: string(stateCompiling)},
			&Error{Kind: KindBadRequest, Msg: "upload wait canceled (build continues)", Err: ctx.Err()}
	}
}

// slot finds or creates the (tenant, grammar) slot, enforcing the
// capacity caps, and applies an optional tenant-limit tightening.
// Returns the grammar and the tenant's effective limits.
func (r *Registry) slot(tenantName, name string, tighten *modpeg.Limits) (*grammar, modpeg.Limits, *Error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[tenantName]
	if t == nil {
		if len(r.tenants) >= r.cfg.MaxTenants {
			return nil, modpeg.Limits{}, errf(KindCapacity, "registry holds %d tenants, cap %d", len(r.tenants), r.cfg.MaxTenants)
		}
		t = &tenant{name: tenantName, limits: r.cfg.DefaultLimits, grammars: make(map[string]*grammar)}
		r.tenants[tenantName] = t
	}
	if tighten != nil {
		t.limits = t.limits.Tighten(*tighten)
		r.persistTenant(t)
	}
	g := t.grammars[name]
	if g == nil {
		if len(t.grammars) >= r.cfg.MaxGrammarsPerTenant {
			return nil, modpeg.Limits{}, errf(KindCapacity, "tenant %q holds %d grammars, cap %d", tenantName, len(t.grammars), r.cfg.MaxGrammarsPerTenant)
		}
		g = &grammar{tenant: tenantName, name: name}
		t.grammars[name] = g
	}
	return g, t.limits, nil
}

// applyObservability records a tenant's sampled-profiling rate and
// slow-parse threshold (a nil pointer leaves that setting unchanged)
// and pushes the rate onto every live compiled version. The registry
// lock is released before the per-grammar locks are taken: build()
// acquires g.mu and persists under it, so holding r.mu across g.mu
// would invert the lock order. Returns the tenant's effective sample
// rate, which the caller applies to the version it is about to build.
func (r *Registry) applyObservability(tenantName string, sampleEvery, slowParseMS *int) int {
	r.mu.Lock()
	t := r.tenants[tenantName]
	if t == nil {
		r.mu.Unlock()
		return 0
	}
	changed := false
	if sampleEvery != nil && t.sampleEvery != *sampleEvery {
		t.sampleEvery = *sampleEvery
		changed = true
	}
	if slowParseMS != nil {
		if d := time.Duration(*slowParseMS) * time.Millisecond; t.slowParse != d {
			t.slowParse = d
			changed = true
		}
	}
	rate := t.sampleEvery
	var grammars []*grammar
	if changed {
		r.persistTenant(t)
		grammars = make([]*grammar, 0, len(t.grammars))
		for _, g := range t.grammars {
			grammars = append(grammars, g)
		}
	}
	r.mu.Unlock()
	for _, g := range grammars {
		g.mu.Lock()
		for _, v := range g.versions {
			if v.parser != nil {
				v.parser.SetSampling(rate)
			}
		}
		g.mu.Unlock()
	}
	return rate
}

// snapshotSources copies the active source of every grammar in the
// tenant — the module set an uploaded extension composes against.
func (r *Registry) snapshotSources(tenantName string) map[string]string {
	out := make(map[string]string)
	r.mu.RLock()
	t := r.tenants[tenantName]
	if t != nil {
		for gname, g := range t.grammars {
			if v := g.active.Load(); v != nil {
				out[gname] = v.source
			}
		}
	}
	r.mu.RUnlock()
	return out
}

// Label returns the telemetry label of one version:
// "tenant/grammar@vN". The per-grammar labeled counters and the
// Prometheus `grammar` label use it verbatim.
func Label(tenantName, name string, number int) string {
	return tenantName + "/" + name + "@v" + strconv.Itoa(number)
}

// build compiles and smokes a reserved version, then (on success)
// records it and optionally activates it. It runs outside every
// registry lock, so in-flight parses and other uploads proceed while a
// build is running.
func (r *Registry) build(g *grammar, v *version, modules map[string]string, probes []Probe, lim modpeg.Limits, sampleEvery int, noActivate bool) error {
	parser, err := r.compile(g, v, modules)
	if err == nil {
		parser.SetSampling(sampleEvery)
		err = r.smoke(parser, probes, lim)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if v.st != stateCompiling {
		// Deleted while building: drop the result, keep the active
		// version untouched.
		return errf(KindNotFound, "version %d of %s/%s was deleted during its build", v.number, g.tenant, g.name)
	}
	if err != nil {
		v.st = stateFailed
		v.failure = err.Error()
		return err
	}
	v.parser = parser
	v.st = stateReady
	g.probes = probes
	if !noActivate {
		activateLocked(g, v)
	}
	r.persistGrammar(g)
	return nil
}

// compile composes the uploaded module against the tenant snapshot,
// the optional module directory, and the bundled grammars.
func (r *Registry) compile(g *grammar, v *version, modules map[string]string) (*modpeg.Parser, error) {
	opts := []modpeg.Option{modpeg.WithModules(modules)}
	if r.cfg.ModuleDir != "" {
		opts = append(opts, modpeg.WithModuleDir(r.cfg.ModuleDir))
	}
	if v.engine == "compiled" {
		opts = append(opts, modpeg.WithEngine(modpeg.EngineCompiled()))
	}
	parser, err := modpeg.New(g.name, opts...)
	if err != nil {
		return nil, &Error{Kind: KindModule, Msg: fmt.Sprintf("grammar %s/%s@v%d does not compose", g.tenant, g.name, v.number), Err: err}
	}
	parser.SetLabel(Label(g.tenant, g.name, v.number))
	return parser, nil
}

// smoke runs the probe corpus against a freshly compiled parser under
// the tenant's budgets (each probe additionally time-boxed), so an
// uploaded grammar that cannot parse its own corpus — or loops on it —
// never activates.
func (r *Registry) smoke(parser *modpeg.Parser, probes []Probe, lim modpeg.Limits) error {
	lim = lim.Tighten(modpeg.Limits{MaxParseDuration: r.cfg.SmokeTimeout})
	for i, p := range probes {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("probe[%d]", i)
		}
		_, err := parser.ParseContext(context.Background(), name, p.Input, lim)
		if p.Fail {
			var pe *modpeg.ParseError
			if err == nil {
				return errf(KindSmoke, "probe %q: input parsed but the probe requires a syntax rejection", name)
			}
			if !errors.As(err, &pe) {
				return &Error{Kind: KindSmoke, Msg: fmt.Sprintf("probe %q: want a syntax rejection", name), Err: err}
			}
			continue
		}
		if err != nil {
			return &Error{Kind: KindSmoke, Msg: fmt.Sprintf("probe %q failed", name), Err: err}
		}
	}
	return nil
}

// activateLocked swaps v in as the grammar's active version. Caller
// holds g.mu. The pointer store is the single linearization point: a
// request that loaded the old pointer parses entirely against the old
// compiled program; the next load sees the new one.
func activateLocked(g *grammar, v *version) {
	if old := g.active.Load(); old != nil && old != v {
		old.st = stateReady
	}
	v.st = stateActive
	g.active.Store(v)
}

// ------------------------------------------------------------ acquire

// Lease is one request's hold on a grammar version. The parser is
// immutable and remains valid for the lease's lifetime regardless of
// swaps or deletes; Release decrements the version's in-flight count
// (the drain signal listings expose).
type Lease struct {
	Tenant  string
	Grammar string
	Version int
	Label   string
	// Parser is the leased compiled grammar.
	Parser *modpeg.Parser
	// Limits are the tenant's parse budgets at acquire time.
	Limits modpeg.Limits
	// SlowParse is the tenant's slow-parse flight-recorder threshold
	// at acquire time (0 = use the server default).
	SlowParse time.Duration
	v         *version
}

// Release ends the lease. It must be called exactly once.
func (l *Lease) Release() { l.v.inflight.Add(-1) }

// Inflight reports the leased version's current in-flight count
// (including this lease).
func (l *Lease) Inflight() int64 { return l.v.inflight.Load() }

// Acquire leases a grammar version for one parse: the active version
// when versionNumber is 0, or an explicitly pinned version. Pinned
// versions may be in any servable state (active or ready — a drained
// old version stays pinnable until deleted).
func (r *Registry) Acquire(tenantName, name string, versionNumber int) (*Lease, error) {
	r.mu.RLock()
	t := r.tenants[tenantName]
	var g *grammar
	var lim modpeg.Limits
	var slow time.Duration
	if t != nil {
		g = t.grammars[name]
		lim = t.limits
		slow = t.slowParse
	}
	r.mu.RUnlock()
	if g == nil {
		return nil, errf(KindNotFound, "grammar %s/%s is not registered", tenantName, name)
	}

	var v *version
	if versionNumber == 0 {
		v = g.active.Load()
		if v == nil {
			return nil, errf(KindNotFound, "grammar %s/%s has no active version", tenantName, name)
		}
	} else {
		g.mu.Lock()
		for _, cand := range g.versions {
			if cand.number == versionNumber {
				if cand.st == stateReady || cand.st == stateActive {
					v = cand
				} else {
					g.mu.Unlock()
					return nil, errf(KindNotFound, "version %d of %s/%s is %s, not servable",
						versionNumber, tenantName, name, cand.st)
				}
				break
			}
		}
		g.mu.Unlock()
		if v == nil {
			return nil, errf(KindNotFound, "grammar %s/%s has no version %d", tenantName, name, versionNumber)
		}
	}
	v.inflight.Add(1)
	return &Lease{
		Tenant:    tenantName,
		Grammar:   name,
		Version:   v.number,
		Label:     Label(tenantName, name, v.number),
		Parser:    v.parser,
		Limits:    lim,
		SlowParse: slow,
		v:         v,
	}, nil
}

// ------------------------------------------------------------ delete

// DeleteResult reports a version deletion: the version removed, the
// in-flight count it was still draining, and the version activated in
// its place (0 when the grammar is left with no active version).
type DeleteResult struct {
	Tenant    string `json:"tenant"`
	Grammar   string `json:"grammar"`
	Deleted   int    `json:"deleted"`
	Inflight  int64  `json:"inflight"`
	NewActive int    `json:"new_active"`
}

// Delete removes one version. Deleting the active version is the
// rollback path: the highest-numbered remaining ready version
// reactivates atomically (in-flight requests on the deleted version
// drain unharmed — their leases keep the compiled program alive).
// Deleting the last version removes the grammar from its tenant.
func (r *Registry) Delete(tenantName, name string, versionNumber int) (DeleteResult, error) {
	if err := validateNames(tenantName, name); err != nil {
		return DeleteResult{}, err
	}
	r.mu.Lock()
	t := r.tenants[tenantName]
	var g *grammar
	if t != nil {
		g = t.grammars[name]
	}
	r.mu.Unlock()
	if g == nil {
		return DeleteResult{}, errf(KindNotFound, "grammar %s/%s is not registered", tenantName, name)
	}

	g.mu.Lock()
	idx := -1
	for i, v := range g.versions {
		if v.number == versionNumber {
			idx = i
			break
		}
	}
	if idx < 0 {
		g.mu.Unlock()
		return DeleteResult{}, errf(KindNotFound, "grammar %s/%s has no version %d", tenantName, name, versionNumber)
	}
	v := g.versions[idx]
	wasActive := v.st == stateActive
	v.st = stateFailed // tombstone: a concurrent build of this version drops its result
	v.failure = "deleted"
	g.versions = append(g.versions[:idx], g.versions[idx+1:]...)
	res := DeleteResult{Tenant: tenantName, Grammar: name, Deleted: versionNumber, Inflight: v.inflight.Load()}
	if wasActive {
		var next *version
		for _, cand := range g.versions {
			if cand.st == stateReady && (next == nil || cand.number > next.number) {
				next = cand
			}
		}
		if next != nil {
			activateLocked(g, next)
			res.NewActive = next.number
		} else {
			g.active.Store(nil)
		}
	} else if a := g.active.Load(); a != nil {
		res.NewActive = a.number
	}
	empty := len(g.versions) == 0
	r.persistGrammar(g)
	g.mu.Unlock()

	if empty {
		r.mu.Lock()
		if t := r.tenants[tenantName]; t != nil {
			delete(t.grammars, name)
			if len(t.grammars) == 0 {
				delete(r.tenants, tenantName)
			}
		}
		r.mu.Unlock()
		r.removeGrammarDir(tenantName, name)
	}
	return res, nil
}

// ------------------------------------------------------------ listing

// GrammarInfo is the public snapshot of one grammar.
type GrammarInfo struct {
	Tenant   string        `json:"tenant"`
	Name     string        `json:"name"`
	Active   int           `json:"active"` // 0 = no active version
	Probes   int           `json:"probes"`
	Versions []VersionInfo `json:"versions"`
}

// TenantInfo is the public snapshot of one tenant namespace.
type TenantInfo struct {
	Name   string        `json:"name"`
	Limits modpeg.Limits `json:"limits"`
	// SampleEvery is the tenant's 1-in-N sampled-profiling rate
	// (0 = sampling off).
	SampleEvery int `json:"sample_every,omitempty"`
	// SlowParseMS is the tenant's slow-parse flight-recorder threshold
	// in milliseconds (0 = server default).
	SlowParseMS int           `json:"slow_parse_ms,omitempty"`
	Grammars    []GrammarInfo `json:"grammars"`
}

// Listing is the full registry snapshot GET /grammars serves.
type Listing struct {
	Tenants []TenantInfo `json:"tenants"`
}

func infoOf(v *version) VersionInfo {
	eng := v.engine
	if eng == "" {
		eng = "optimized"
	}
	return VersionInfo{
		Version:     v.number,
		State:       string(v.st),
		Engine:      eng,
		SourceBytes: len(v.source),
		CreatedAt:   v.created,
		Inflight:    v.inflight.Load(),
		Error:       v.failure,
	}
}

func (g *grammar) info() GrammarInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	gi := GrammarInfo{Tenant: g.tenant, Name: g.name, Probes: len(g.probes)}
	if a := g.active.Load(); a != nil {
		gi.Active = a.number
	}
	for _, v := range g.versions {
		vi := infoOf(v)
		vi.Label = Label(g.tenant, g.name, v.number)
		gi.Versions = append(gi.Versions, vi)
	}
	return gi
}

// List snapshots the whole registry, deterministically sorted.
func (r *Registry) List() Listing {
	r.mu.RLock()
	tenants := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	grammarsOf := make(map[string][]*grammar, len(tenants))
	tenantInfo := make(map[string]TenantInfo, len(tenants))
	for _, t := range tenants {
		tenantInfo[t.name] = TenantInfo{
			Name:        t.name,
			Limits:      t.limits,
			SampleEvery: t.sampleEvery,
			SlowParseMS: int(t.slowParse / time.Millisecond),
		}
		for _, g := range t.grammars {
			grammarsOf[t.name] = append(grammarsOf[t.name], g)
		}
	}
	r.mu.RUnlock()

	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	var out Listing
	for _, t := range tenants {
		ti := tenantInfo[t.name]
		gs := grammarsOf[t.name]
		sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
		for _, g := range gs {
			ti.Grammars = append(ti.Grammars, g.info())
		}
		out.Tenants = append(out.Tenants, ti)
	}
	return out
}

// Grammar snapshots one grammar, or a typed not-found error.
func (r *Registry) Grammar(tenantName, name string) (GrammarInfo, error) {
	r.mu.RLock()
	t := r.tenants[tenantName]
	var g *grammar
	if t != nil {
		g = t.grammars[name]
	}
	r.mu.RUnlock()
	if g == nil {
		return GrammarInfo{}, errf(KindNotFound, "grammar %s/%s is not registered", tenantName, name)
	}
	return g.info(), nil
}
