package registry

import (
	"context"
	"errors"
	"testing"
	"time"

	"modpeg"
)

// FuzzRegistryUpload drives arbitrary module source through the full
// upload pipeline — parse, compose, compile, smoke — against a registry
// that already serves a good version, and checks the registry's two
// hard promises:
//
//   - every rejection is a typed *registry.Error (the HTTP layer maps
//     kinds to statuses; an untyped error would surface as a 500), and
//   - the active version never corrupts: after any upload outcome the
//     active version still parses the probe input, because activation
//     is gated on the smoke corpus.
func FuzzRegistryUpload(f *testing.F) {
	f.Add(baseV1)
	f.Add(baseV2)
	f.Add(baseOnlyB)
	f.Add("module t.base;\n")
	f.Add("module wrong.name;\noption root = Top;\npublic Top = \"a\" ;\n")
	f.Add("module t.base;\nmodify t.missing;\nItem += <x> \"x\" ;\n")
	f.Add("not a module at all")
	f.Add("module t.base;\noption root = Top;\npublic Top = Loop ;\nLoop = Loop \"a\" ;\n")
	f.Add("module t.base;\noption root = Nope;\npublic Top = \"a\" ;\n")

	limits := modpeg.Limits{
		MaxInputBytes:    1 << 16,
		MaxMemoBytes:     1 << 20,
		MaxCallDepth:     1000,
		MaxParseDuration: 200 * time.Millisecond,
	}

	f.Fuzz(func(t *testing.T, src string) {
		r, err := New(Config{
			MaxSourceBytes: 1 << 16,
			DefaultLimits:  limits,
			SmokeTimeout:   200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		probes := []Probe{{Name: "canary", Input: "aa"}}
		if _, err := r.Upload(context.Background(), "fz", "t.base", Upload{Source: baseV1, Probes: probes}); err != nil {
			t.Fatalf("seeding the good version: %v", err)
		}

		_, err = r.Upload(context.Background(), "fz", "t.base", Upload{Source: src})
		if err != nil {
			var re *Error
			if !errors.As(err, &re) {
				t.Fatalf("upload returned an untyped error: %v", err)
			}
			if re.Kind == "" {
				t.Fatalf("typed error with empty kind: %v", err)
			}
		}

		// Whatever happened, the active version still parses the canary:
		// either the old version survived a failed upload, or the new one
		// passed the probe corpus on its way in.
		lease, err := r.Acquire("fz", "t.base", 0)
		if err != nil {
			t.Fatalf("acquire after upload: %v", err)
		}
		defer lease.Release()
		if _, err := lease.Parser.ParseContext(context.Background(), "canary", "aa", lease.Limits); err != nil {
			t.Fatalf("active version v%d no longer parses the canary: %v", lease.Version, err)
		}
	})
}
