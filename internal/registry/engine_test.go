package registry

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestUploadEngineSelection covers the per-version engine choice: an
// upload may pick the compiled engine, the choice is reported in
// version listings, a later upload may switch back, and an unknown
// engine is rejected before a version number is consumed.
func TestUploadEngineSelection(t *testing.T) {
	r := testRegistry(t, Config{})
	info := mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1, Engine: "compiled"})
	if info.Engine != "compiled" {
		t.Fatalf("v1 engine = %q, want compiled", info.Engine)
	}
	if !parseWith(t, r, "acme", "t.base", 0, "aaa") {
		t.Error(`"aaa" must parse on the compiled engine`)
	}
	if parseWith(t, r, "acme", "t.base", 0, "b") {
		t.Error(`"b" must not parse on the compiled engine`)
	}
	info = mustUpload(t, r, "acme", "t.base", Upload{Source: baseV2})
	if info.Engine != "optimized" {
		t.Fatalf("v2 engine = %q, want optimized (the default)", info.Engine)
	}
	if _, err := r.Upload(context.Background(), "acme", "t.base", Upload{Source: baseV2, Engine: "turbo"}); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
}

// TestEngineChoiceSurvivesReload proves the engine choice is part of a
// version's persisted identity: after a restart the reloaded version
// still parses (it was recompiled on its recorded engine) and still
// reports the engine it was uploaded for.
func TestEngineChoiceSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	r := testRegistry(t, Config{Dir: dir})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1, Engine: "compiled"})

	r2 := testRegistry(t, Config{Dir: dir})
	if !parseWith(t, r2, "acme", "t.base", 0, "aa") {
		t.Error("reloaded compiled version must serve")
	}
	listing := r2.List()
	if len(listing.Tenants) != 1 || len(listing.Tenants[0].Grammars) != 1 {
		t.Fatalf("reloaded listing = %+v, want one tenant with one grammar", listing)
	}
	vs := listing.Tenants[0].Grammars[0].Versions
	if len(vs) != 1 || vs[0].Engine != "compiled" {
		t.Fatalf("reloaded versions = %+v, want one compiled version", vs)
	}
}

// TestHotSwapEngineRace hot-swaps a grammar between the optimized and
// compiled engines while parse traffic hammers it from many
// goroutines. Every request leases one immutable version, so no parse
// may ever observe a mixed program: whichever engine a request lands
// on, the accept/reject answer is identical, and nothing races (-race
// is the real assertion here).
func TestHotSwapEngineRace(t *testing.T) {
	r := testRegistry(t, Config{})
	mustUpload(t, r, "acme", "t.base", Upload{Source: baseV1})

	input := strings.Repeat("a", 512)
	var stop atomic.Bool
	var wg sync.WaitGroup
	const goroutines = 6
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				lease, err := r.Acquire("acme", "t.base", 0)
				if err != nil {
					t.Errorf("goroutine %d: acquire: %v", g, err)
					return
				}
				_, perr := lease.Parser.ParseContext(context.Background(), "req", input, lease.Limits)
				if perr != nil {
					t.Errorf("goroutine %d: %q must parse on %s: %v", g, "a...", lease.Label, perr)
					lease.Release()
					return
				}
				if _, perr := lease.Parser.ParseContext(context.Background(), "req", "b"+input, lease.Limits); perr == nil {
					t.Errorf("goroutine %d: %q must be rejected on %s", g, "b...", lease.Label)
					lease.Release()
					return
				}
				lease.Release()
			}
		}(g)
	}
	// Control plane: flip the engine back and forth under load.
	engines := []string{"compiled", "", "compiled", "", "compiled"}
	for _, eng := range engines {
		if _, err := r.Upload(context.Background(), "acme", "t.base", Upload{Source: baseV1, Engine: eng}); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("hot-swap upload (engine %q): %v", eng, err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
