package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"modpeg"
)

// Disk layout (Config.Dir):
//
//	<dir>/<tenant>/tenant.json           {"limits": {...}}
//	<dir>/<tenant>/<grammar>/meta.json   {"active": N, "next": N, "probes": [...]}
//	<dir>/<tenant>/<grammar>/v<N>.mpeg   one source per live version
//
// Only successfully built versions are persisted — a failed upload
// leaves no trace on disk, so a restart reloads exactly the servable
// state. Writes happen on the control plane (upload/delete), never on
// the parse path. Persistence errors are reported on load (a corrupt
// store fails New) but tolerated on save: the registry keeps serving
// from memory and the next successful control-plane write retries.
//
// Tenant and grammar names are validated (tenantRe/grammarRe) before
// they ever reach the filesystem, so path traversal is structurally
// impossible.

type tenantMeta struct {
	Limits modpeg.Limits `json:"limits"`
	// SampleEvery and SlowParseMS persist the tenant's tail-latency
	// observability settings (sampled-profiling rate and flight-recorder
	// threshold) so a restart restores them alongside the budgets.
	SampleEvery int `json:"sample_every,omitempty"`
	SlowParseMS int `json:"slow_parse_ms,omitempty"`
}

type grammarMeta struct {
	Active int     `json:"active"`
	Next   int     `json:"next"`
	Probes []Probe `json:"probes,omitempty"`
	// Engines records each persisted version's engine choice, keyed by
	// version number; versions absent from the map use the optimized
	// interpreter. Kept per version so a reload rebuilds every version
	// on the engine it was uploaded for.
	Engines map[int]string `json:"engines,omitempty"`
}

// persistTenant writes the tenant's budget file. Caller holds r.mu.
func (r *Registry) persistTenant(t *tenant) {
	if r.cfg.Dir == "" {
		return
	}
	dir := filepath.Join(r.cfg.Dir, t.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(tenantMeta{
		Limits:      t.limits,
		SampleEvery: t.sampleEvery,
		SlowParseMS: int(t.slowParse / time.Millisecond),
	}, "", "  ")
	if err != nil {
		return
	}
	writeFileAtomic(filepath.Join(dir, "tenant.json"), append(data, '\n'))
}

// persistGrammar writes the grammar's sources and metadata. Caller
// holds g.mu.
func (r *Registry) persistGrammar(g *grammar) {
	if r.cfg.Dir == "" {
		return
	}
	dir := filepath.Join(r.cfg.Dir, g.tenant, g.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	keep := make(map[string]bool, len(g.versions)+1)
	keep["meta.json"] = true
	active := 0
	if a := g.active.Load(); a != nil {
		active = a.number
	}
	for _, v := range g.versions {
		if v.st != stateReady && v.st != stateActive {
			continue
		}
		fn := "v" + strconv.Itoa(v.number) + ".mpeg"
		keep[fn] = true
		path := filepath.Join(dir, fn)
		if _, err := os.Stat(path); err != nil { // sources are immutable: write once
			writeFileAtomic(path, []byte(v.source))
		}
	}
	meta := grammarMeta{Active: active, Next: g.nextVersion, Probes: g.probes}
	for _, v := range g.versions {
		if v.engine != "" && (v.st == stateReady || v.st == stateActive) {
			if meta.Engines == nil {
				meta.Engines = make(map[int]string)
			}
			meta.Engines[v.number] = v.engine
		}
	}
	if data, err := json.MarshalIndent(meta, "", "  "); err == nil {
		writeFileAtomic(filepath.Join(dir, "meta.json"), append(data, '\n'))
	}
	// Drop files of deleted versions.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !keep[e.Name()] {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// removeGrammarDir deletes a grammar's (and, when emptied, its
// tenant's) persistence directory.
func (r *Registry) removeGrammarDir(tenantName, name string) {
	if r.cfg.Dir == "" {
		return
	}
	os.RemoveAll(filepath.Join(r.cfg.Dir, tenantName, name))
	tdir := filepath.Join(r.cfg.Dir, tenantName)
	if entries, err := os.ReadDir(tdir); err == nil {
		rest := 0
		for _, e := range entries {
			if e.Name() != "tenant.json" {
				rest++
			}
		}
		if rest == 0 {
			os.RemoveAll(tdir)
		}
	}
}

// writeFileAtomic writes data via a temp file + rename so a crashed
// write never leaves a torn file behind.
func writeFileAtomic(path string, data []byte) {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}

// load rebuilds the registry from Config.Dir: every persisted version
// is recompiled against the tenant's current active source set and
// re-smoked against the stored probe corpus, and the recorded active
// version reactivates (falling back to the highest version that still
// builds). A version that no longer composes — say its base grammar
// was since replaced by an incompatible one — is surfaced as a failed
// version rather than silently dropped.
func (r *Registry) load() error {
	tenants, err := os.ReadDir(r.cfg.Dir)
	if os.IsNotExist(err) {
		return os.MkdirAll(r.cfg.Dir, 0o755)
	}
	if err != nil {
		return fmt.Errorf("registry: reading %s: %w", r.cfg.Dir, err)
	}
	for _, te := range tenants {
		if !te.IsDir() || !tenantRe.MatchString(te.Name()) {
			continue
		}
		if err := r.loadTenant(te.Name()); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) loadTenant(tenantName string) error {
	tdir := filepath.Join(r.cfg.Dir, tenantName)
	t := &tenant{name: tenantName, limits: r.cfg.DefaultLimits, grammars: make(map[string]*grammar)}
	if data, err := os.ReadFile(filepath.Join(tdir, "tenant.json")); err == nil {
		var meta tenantMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return fmt.Errorf("registry: %s/tenant.json: %w", tenantName, err)
		}
		t.limits = meta.Limits
		t.sampleEvery = meta.SampleEvery
		t.slowParse = time.Duration(meta.SlowParseMS) * time.Millisecond
	}

	entries, err := os.ReadDir(tdir)
	if err != nil {
		return fmt.Errorf("registry: reading tenant %s: %w", tenantName, err)
	}
	// First pass: read every grammar's sources and metadata, so the
	// second pass can compose extensions against the full active set.
	type loaded struct {
		g       *grammar
		meta    grammarMeta
		sources map[int]string // version number -> source
	}
	var all []*loaded
	activeSources := make(map[string]string)
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) > maxGrammarName || !grammarRe.MatchString(e.Name()) {
			continue
		}
		gdir := filepath.Join(tdir, e.Name())
		var meta grammarMeta
		if data, err := os.ReadFile(filepath.Join(gdir, "meta.json")); err == nil {
			if err := json.Unmarshal(data, &meta); err != nil {
				return fmt.Errorf("registry: %s/%s/meta.json: %w", tenantName, e.Name(), err)
			}
		}
		l := &loaded{
			g:       &grammar{tenant: tenantName, name: e.Name(), probes: meta.Probes},
			meta:    meta,
			sources: make(map[int]string),
		}
		files, err := os.ReadDir(gdir)
		if err != nil {
			return fmt.Errorf("registry: reading %s/%s: %w", tenantName, e.Name(), err)
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".mpeg") {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".mpeg"))
			if err != nil || n <= 0 {
				continue
			}
			data, err := os.ReadFile(filepath.Join(gdir, name))
			if err != nil {
				return fmt.Errorf("registry: reading %s/%s/%s: %w", tenantName, e.Name(), name, err)
			}
			l.sources[n] = string(data)
		}
		if len(l.sources) == 0 {
			continue
		}
		if src, ok := l.sources[meta.Active]; ok {
			activeSources[l.g.name] = src
		}
		all = append(all, l)
	}

	// Second pass: compile every version against the active set.
	for _, l := range all {
		numbers := make([]int, 0, len(l.sources))
		for n := range l.sources {
			numbers = append(numbers, n)
		}
		sort.Ints(numbers)
		for _, n := range numbers {
			src := l.sources[n]
			v := &version{number: n, source: src, engine: l.meta.Engines[n], created: time.Now().UTC(), st: stateCompiling}
			modules := make(map[string]string, len(activeSources)+1)
			for k, s := range activeSources {
				modules[k] = s
			}
			modules[l.g.name] = src
			parser, err := r.compile(l.g, v, modules)
			if err == nil {
				parser.SetSampling(t.sampleEvery)
				err = r.smoke(parser, l.g.probes, t.limits)
			}
			if err != nil {
				v.st = stateFailed
				v.failure = "reload: " + err.Error()
			} else {
				v.parser = parser
				v.st = stateReady
			}
			l.g.versions = append(l.g.versions, v)
		}
		l.g.nextVersion = l.meta.Next
		if last := numbers[len(numbers)-1]; l.g.nextVersion < last {
			l.g.nextVersion = last
		}
		// Reactivate: the recorded active version if it rebuilt, else
		// the highest version that did.
		var act *version
		for _, v := range l.g.versions {
			if v.st != stateReady {
				continue
			}
			if v.number == l.meta.Active {
				act = v
				break
			}
			if act == nil || v.number > act.number {
				act = v
			}
		}
		if act != nil {
			activateLocked(l.g, act)
		}
		t.grammars[l.g.name] = l.g
	}
	if len(t.grammars) > 0 || len(entries) > 0 {
		r.tenants[tenantName] = t
	}
	return nil
}
