package core

import (
	"fmt"
	"os"
	"path/filepath"

	"modpeg/internal/text"
)

// DirResolver loads module sources from files named "<module>.mpeg" inside
// a directory, e.g. module "calc.base" from "<dir>/calc.base.mpeg".
type DirResolver struct {
	Dir string
}

// Resolve implements Resolver.
func (d DirResolver) Resolve(name string) (*text.Source, error) {
	path := filepath.Join(d.Dir, name+".mpeg")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: module %q: %w", name, err)
	}
	return text.NewSource(path, string(data)), nil
}

// MultiResolver tries each resolver in order, returning the first success.
// It lets the CLI overlay user module directories on top of the embedded
// standard grammars.
type MultiResolver []Resolver

// Resolve implements Resolver.
func (m MultiResolver) Resolve(name string) (*text.Source, error) {
	var firstErr error
	for _, r := range m {
		src, err := r.Resolve(name)
		if err == nil {
			return src, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("core: unknown module %q", name)
	}
	return nil, firstErr
}
