package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modpeg/internal/peg"
	"modpeg/internal/syntax"
)

// compose is a test helper composing modules given as name -> source.
func compose(t *testing.T, top string, mods map[string]string) *peg.Grammar {
	t.Helper()
	g, err := Compose(top, MapResolver(mods))
	if err != nil {
		t.Fatalf("compose failed: %v", err)
	}
	return g
}

func composeErr(t *testing.T, top string, mods map[string]string) string {
	t.Helper()
	_, err := Compose(top, MapResolver(mods))
	if err == nil {
		t.Fatal("compose must fail")
	}
	return err.Error()
}

func TestComposeSingleModule(t *testing.T) {
	g := compose(t, "m", map[string]string{
		"m": `
module m;
public S = A B ;
A = "a" ;
B = "b" ;
`,
	})
	if g.Root != "m.S" {
		t.Fatalf("root = %q", g.Root)
	}
	if len(g.Order) != 3 {
		t.Fatalf("productions = %v", g.Order)
	}
	// References must be fully resolved.
	s := g.Prods["m.S"]
	refs := collectRefs(s)
	if refs[0] != "m.A" || refs[1] != "m.B" {
		t.Fatalf("refs = %v", refs)
	}
}

func collectRefs(p *peg.Production) []string {
	var out []string
	peg.Walk(p.Choice, func(e peg.Expr) {
		if nt, ok := e.(*peg.NonTerm); ok {
			out = append(out, nt.Name)
		}
	})
	return out
}

func TestComposeRootOption(t *testing.T) {
	g := compose(t, "m", map[string]string{
		"m": `
module m;
option root = T;
public S = "s" ;
public T = "t" ;
`,
	})
	if g.Root != "m.T" {
		t.Fatalf("root = %q", g.Root)
	}
}

func TestComposeImports(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import lib;
public S = Num "+" Num ;
`,
		"lib": `
module lib;
public Num = [0-9]+ ;
Helper = "h" ;
`,
	}
	g := compose(t, "top", mods)
	if g.Root != "top.S" {
		t.Fatalf("root = %q", g.Root)
	}
	refs := collectRefs(g.Prods["top.S"])
	if refs[0] != "lib.Num" || refs[1] != "lib.Num" {
		t.Fatalf("refs = %v", refs)
	}
	if len(g.ModuleNames) != 2 || g.ModuleNames[0] != "lib" || g.ModuleNames[1] != "top" {
		t.Fatalf("modules = %v", g.ModuleNames)
	}
}

func TestComposeQualifiedReference(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import a.lex;
public S = a.lex.Num ;
`,
		"a.lex": `
module a.lex;
public Num = [0-9]+ ;
`,
	}
	g := compose(t, "top", mods)
	if refs := collectRefs(g.Prods["top.S"]); refs[0] != "a.lex.Num" {
		t.Fatalf("refs = %v", refs)
	}
}

func TestComposePrivateNotVisible(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import lib;
public S = Helper ;
`,
		"lib": `
module lib;
public Num = [0-9] ;
Helper = "h" ;
`,
	}
	msg := composeErr(t, "top", mods)
	if !strings.Contains(msg, "unresolved reference \"Helper\"") {
		t.Fatalf("error = %q", msg)
	}
	// Qualified access to a private production is also rejected.
	mods["top"] = `
module top;
import lib;
public S = lib.Helper ;
`
	msg = composeErr(t, "top", mods)
	if !strings.Contains(msg, "not public") {
		t.Fatalf("error = %q", msg)
	}
}

func TestComposeAmbiguousReference(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import a;
import b;
public S = Num ;
`,
		"a": "module a;\npublic Num = [0-9] ;\n",
		"b": "module b;\npublic Num = [0-9] ;\n",
	}
	msg := composeErr(t, "top", mods)
	if !strings.Contains(msg, "ambiguous reference \"Num\"") ||
		!strings.Contains(msg, "a.Num") || !strings.Contains(msg, "b.Num") {
		t.Fatalf("error = %q", msg)
	}
}

func TestComposeOverride(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import base;
import ext;
public S = Num ;
`,
		"base": "module base;\npublic Num = [0-9]+ ;\n",
		"ext": `
module ext;
modify base;
Num := [0-9]+ ("." [0-9]+)? ;
`,
	}
	g := compose(t, "top", mods)
	num := g.Prods["base.Num"]
	if num == nil {
		t.Fatal("base.Num missing")
	}
	if body := peg.FormatExpr(num.Choice); !strings.Contains(body, `"."`) {
		t.Fatalf("override did not take: %s", body)
	}
}

func TestComposeAddRemoveAlternatives(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import base;
import ext;
public S = Sum ;
`,
		"base": `
module base;
public Sum =
    <add> Atom "+" Sum
  / <sub> Atom "-" Sum
  / <atom> Atom
  ;
public Atom = [0-9]+ ;
`,
		"ext": `
module ext;
modify base;
Sum += <mul> Atom "*" Sum after <add> ;
Sum += <pow> Atom "^" Sum before <add> ;
Sum += <last> Atom "!" ;
Sum -= sub ;
`,
	}
	g := compose(t, "top", mods)
	sum := g.Prods["base.Sum"]
	var labels []string
	for _, a := range sum.Choice.Alts {
		labels = append(labels, a.Label)
	}
	want := "pow,add,mul,atom,last"
	if got := strings.Join(labels, ","); got != want {
		t.Fatalf("labels = %s, want %s", got, want)
	}
	// Added alternatives must resolve in the extension's scope (Atom is
	// public in base, which ext modifies).
	refs := collectRefs(sum)
	for _, r := range refs {
		if !strings.HasPrefix(r, "base.") {
			t.Fatalf("unresolved ref %q", r)
		}
	}
}

func TestComposeModificationIntroducingHelpers(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import base;
import ext;
public S = Sum ;
`,
		"base": `
module base;
public Sum = <atom> Atom ;
public Atom = [0-9]+ ;
`,
		"ext": `
module ext;
modify base;
Sum += <call> Atom "(" Args ")" before <atom> ;
Args = Atom ("," Atom)* ;
`,
	}
	g := compose(t, "top", mods)
	sum := g.Prods["base.Sum"]
	refs := collectRefs(sum)
	found := false
	for _, r := range refs {
		if r == "ext.Args" {
			found = true
		}
	}
	if !found {
		t.Fatalf("helper reference not resolved into ext namespace: %v", refs)
	}
	if g.Prods["ext.Args"] == nil {
		t.Fatal("helper production missing from grammar")
	}
}

func TestComposeTwoIndependentExtensions(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import base;
import ext1;
import ext2;
public S = Sum ;
`,
		"base": `
module base;
public Sum = <atom> Atom ;
public Atom = [0-9]+ ;
`,
		"ext1": `
module ext1;
modify base;
Sum += <add> Atom "+" Sum before <atom> ;
`,
		"ext2": `
module ext2;
modify base;
Sum += <mul> Atom "*" Sum before <atom> ;
`,
	}
	g := compose(t, "top", mods)
	sum := g.Prods["base.Sum"]
	var labels []string
	for _, a := range sum.Choice.Alts {
		labels = append(labels, a.Label)
	}
	// ext1 composes before ext2 (dependency/clause order), both anchored
	// before <atom>.
	if got := strings.Join(labels, ","); got != "add,mul,atom" {
		t.Fatalf("labels = %s", got)
	}
}

func TestComposeParameterizedModule(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import lex;
import expr(lex.Space);
public S = Sum ;
`,
		"lex": `
module lex;
public Space = " "* ;
`,
		"expr": `
module expr(Space);
public Sum = Atom ("+" Space Atom)* ;
public Atom = [0-9]+ Space ;
`,
	}
	g := compose(t, "top", mods)
	inst := "expr<lex.Space>"
	if g.Prods[inst+".Sum"] == nil || g.Prods[inst+".Atom"] == nil {
		t.Fatalf("instance productions missing: %v", g.Order)
	}
	refs := collectRefs(g.Prods[inst+".Atom"])
	if len(refs) != 1 || refs[0] != "lex.Space" {
		t.Fatalf("param substitution failed: %v", refs)
	}
}

func TestComposeParameterizedTwoInstances(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import lexa;
import lexb;
import list(lexa.Sep) ;
import list(lexb.Sep) ;
public S = list.Items ;
`,
		"lexa": "module lexa;\npublic Sep = \",\" ;\n",
		"lexb": "module lexb;\npublic Sep = \";\" ;\n",
		"list": `
module list(Sep);
public Items = [0-9] (Sep [0-9])* ;
`,
	}
	// Unqualified/qualified references to two instances are ambiguous.
	msg := composeErr(t, "top", mods)
	if !strings.Contains(msg, "ambiguous") {
		t.Fatalf("error = %q", msg)
	}
	// But both instances exist if referenced unambiguously from distinct
	// modules.
	mods["top"] = `
module top;
import wa;
import wb;
public S = wa.A wb.B ;
`
	mods["wa"] = "module wa;\nimport lexa;\nimport list(lexa.Sep);\npublic A = Items ;\n"
	mods["wb"] = "module wb;\nimport lexb;\nimport list(lexb.Sep);\npublic B = Items ;\n"
	g := compose(t, "top", mods)
	if g.Prods["list<lexa.Sep>.Items"] == nil || g.Prods["list<lexb.Sep>.Items"] == nil {
		t.Fatalf("instances missing: %v", g.Order)
	}
}

func TestComposeSharedInstanceIsDeduped(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import a;
import b;
public S = a.X b.Y ;
`,
		"a":   "module a;\nimport lib;\npublic X = Num ;\n",
		"b":   "module b;\nimport lib;\npublic Y = Num ;\n",
		"lib": "module lib;\npublic Num = [0-9] ;\n",
	}
	g := compose(t, "top", mods)
	count := 0
	for _, m := range g.ModuleNames {
		if m == "lib" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("lib composed %d times", count)
	}
}

func TestComposeErrors(t *testing.T) {
	cases := []struct {
		name string
		top  string
		mods map[string]string
		frag string
	}{
		{
			"unknown module", "top",
			map[string]string{"top": "module top;\nimport nope;\npublic S = \"x\" ;\n"},
			"cannot load module \"nope\"",
		},
		{
			"cycle", "a",
			map[string]string{
				"a": "module a;\nimport b;\npublic S = \"x\" ;\n",
				"b": "module b;\nimport a;\npublic T = \"y\" ;\n",
			},
			"cycle",
		},
		{
			"self cycle", "a",
			map[string]string{"a": "module a;\nimport a;\npublic S = \"x\" ;\n"},
			"cycle",
		},
		{
			"wrong module name", "top",
			map[string]string{"top": "module other;\npublic S = \"x\" ;\n"},
			"declares name",
		},
		{
			"wrong arity", "top",
			map[string]string{
				"top": "module top;\nimport p(a.X, a.Y);\npublic S = \"x\" ;\n",
				"p":   "module p(One);\npublic Q = One ;\n",
				"a":   "module a;\npublic X = \"x\" ;\npublic Y = \"y\" ;\n",
			},
			"expects 1 argument",
		},
		{
			"bad argument", "top",
			map[string]string{
				"top": "module top;\nimport p(lowercase);\npublic S = \"x\" ;\n",
				"p":   "module p(One);\npublic Q = One ;\n",
			},
			"must be a module parameter or a qualified",
		},
		{
			"duplicate production", "top",
			map[string]string{"top": "module top;\npublic S = \"a\" ;\nS = \"b\" ;\n"},
			"duplicate production",
		},
		{
			"unresolved", "top",
			map[string]string{"top": "module top;\npublic S = Missing ;\n"},
			"unresolved reference",
		},
		{
			"unresolved qualified", "top",
			map[string]string{"top": "module top;\npublic S = nowhere.Missing ;\n"},
			"unresolved qualified reference",
		},
		{
			"no root", "top",
			map[string]string{"top": "module top;\nS = \"x\" ;\n"},
			"no public production",
		},
		{
			"bad root option", "top",
			map[string]string{"top": "module top;\noption root = Nope;\npublic S = \"x\" ;\n"},
			"option root",
		},
		{
			"modification without modify", "top",
			map[string]string{
				"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
				"base": "module base;\npublic Num = [0-9] ;\n",
				"ext":  "module ext;\nimport base;\nNum := [0-9]+ ;\n",
			},
			"requires a 'modify' dependency",
		},
		{
			"modify target missing", "top",
			map[string]string{
				"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
				"base": "module base;\npublic Num = [0-9] ;\n",
				"ext":  "module ext;\nmodify base;\nNope := [0-9]+ ;\n",
			},
			"no modified module defines",
		},
		{
			"bad anchor", "top",
			map[string]string{
				"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
				"base": "module base;\npublic Num = <d> [0-9] ;\n",
				"ext":  "module ext;\nmodify base;\nNum += \"x\" after <zz> ;\n",
			},
			"anchor alternative <zz> not found",
		},
		{
			"bad removal", "top",
			map[string]string{
				"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
				"base": "module base;\npublic Num = <d> [0-9] ;\n",
				"ext":  "module ext;\nmodify base;\nNum -= zz ;\n",
			},
			"alternative <zz> not found",
		},
		{
			"empty removal", "top",
			map[string]string{
				"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
				"base": "module base;\npublic Num = <d> [0-9] ;\n",
				"ext":  "module ext;\nmodify base;\nNum -= d ;\n",
			},
			"without alternatives",
		},
		{
			"attrs on +=", "top",
			map[string]string{
				"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
				"base": "module base;\npublic Num = <d> [0-9] ;\n",
				"ext":  "module ext;\nmodify base;\ntransient Num += \"x\" ;\n",
			},
			"attributes are not allowed",
		},
		{
			"duplicate labels", "top",
			map[string]string{
				"top": "module top;\npublic S = <a> \"x\" / <a> \"y\" ;\n",
			},
			"duplicate alternative label",
		},
		{
			"parse error in dep", "top",
			map[string]string{
				"top": "module top;\nimport bad;\npublic S = \"x\" ;\n",
				"bad": "module bad;\nthis is not valid",
			},
			"unknown production attribute",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg := composeErr(t, c.top, c.mods)
			if !strings.Contains(msg, c.frag) {
				t.Fatalf("error = %q, want fragment %q", msg, c.frag)
			}
		})
	}
}

func TestComposeOverrideKeepsOrReplacesAttrs(t *testing.T) {
	mods := map[string]string{
		"top":  "module top;\nimport base;\nimport ext;\npublic S = Num ;\n",
		"base": "module base;\npublic text Num = [0-9]+ ;\n",
		"ext":  "module ext;\nmodify base;\nNum := [0-9a-f]+ ;\n",
	}
	g := compose(t, "top", mods)
	if !g.Prods["base.Num"].Attrs.Has(peg.AttrText) {
		t.Fatal("override without attrs must keep target attrs")
	}
	mods["ext"] = "module ext;\nmodify base;\npublic void Num := [0-9a-f]+ ;\n"
	g = compose(t, "top", mods)
	if a := g.Prods["base.Num"].Attrs; !a.Has(peg.AttrVoid|peg.AttrPublic) || a.Has(peg.AttrText) {
		t.Fatalf("override with attrs must replace: %v", a)
	}
}

func TestComposeModules(t *testing.T) {
	m1, err := parseModule("module a;\npublic S = B ;\nB = \"b\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ComposeModules([]*peg.Module{m1}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != "a.S" {
		t.Fatalf("root = %q", g.Root)
	}
	if _, err := ComposeModules([]*peg.Module{m1}, "missing"); err == nil {
		t.Fatal("unknown top module must fail")
	}
}

func parseModule(src string) (*peg.Module, error) {
	return syntax.ParseString("test.mpeg", src)
}

func TestDirResolver(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "m.mpeg"),
		[]byte("module m;\npublic S = \"x\" ;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Compose("m", DirResolver{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != "m.S" {
		t.Fatalf("root = %q", g.Root)
	}
	if _, err := (DirResolver{Dir: dir}).Resolve("missing"); err == nil {
		t.Fatal("missing module must fail")
	}
}

func TestMultiResolver(t *testing.T) {
	r := MultiResolver{
		MapResolver{"a": "module a;\npublic S = \"x\" ;\n"},
		MapResolver{"a": "module a;\npublic S = \"OVERRIDDEN\" ;\n", "b": "module b;\npublic T = \"y\" ;\n"},
	}
	src, err := r.Resolve("a")
	if err != nil || !strings.Contains(src.Content(), `"x"`) {
		t.Fatalf("first resolver must win: %v", err)
	}
	if _, err := r.Resolve("b"); err != nil {
		t.Fatalf("fallback resolver: %v", err)
	}
	if _, err := r.Resolve("zz"); err == nil {
		t.Fatal("unknown module must fail")
	}
	if _, err := (MultiResolver{}).Resolve("zz"); err == nil {
		t.Fatal("empty resolver must fail")
	}
}

func TestComposeModifyParameterizedInstance(t *testing.T) {
	mods := map[string]string{
		"top": `
module top;
import lex;
import list(lex.Comma);
import ext;
public S = Items ;
`,
		"lex":  "module lex;\npublic Comma = \",\" ;\npublic Semi = \";\" ;\n",
		"list": "module list(Sep);\npublic Items = <digits> [0-9] (Sep [0-9])* ;\n",
		"ext": `
module ext;
modify list(lex.Comma);
import lex;
Items += <alpha> [a-z] (Comma [a-z])* before <digits> ;
`,
	}
	g := compose(t, "top", mods)
	items := g.Prods["list<lex.Comma>.Items"]
	if items == nil {
		t.Fatalf("instance missing: %v", g.Order)
	}
	if len(items.Choice.Alts) != 2 || items.Choice.Alts[0].Label != "alpha" {
		t.Fatalf("alts = %v", peg.FormatExpr(items.Choice))
	}
	// Every reference is fully resolved (no bare parameter names survive).
	refs := collectRefs(items)
	for _, r := range refs {
		if !strings.Contains(r, ".") {
			t.Fatalf("unresolved reference %q", r)
		}
	}
}

func TestComposeModifyIsWhiteBox(t *testing.T) {
	mods := map[string]string{
		"top":  "module top;\nimport base;\nimport ext;\npublic S = Entry ;\n",
		"base": "module base;\npublic Entry = Hidden ;\nHidden = <h> \"h\" ;\n",
		"ext":  "module ext;\nmodify base;\nHidden += <x> \"x\" ;\n",
	}
	g := compose(t, "top", mods)
	if len(g.Prods["base.Hidden"].Choice.Alts) != 2 {
		t.Fatal("modification of private production failed")
	}
	// But plain imports still cannot see private productions.
	mods["ext"] = "module ext;\nimport base;\npublic Other = Hidden ;\n"
	mods["top"] = "module top;\nimport base;\nimport ext;\npublic S = Entry Other ;\n"
	if msg := composeErr(t, "top", mods); !strings.Contains(msg, "unresolved reference") {
		t.Fatalf("error = %q", msg)
	}
}

func TestComposeDeterministicOrder(t *testing.T) {
	mods := map[string]string{
		"top": "module top;\nimport a;\nimport b;\npublic S = a.X b.Y ;\n",
		"a":   "module a;\npublic X = \"x\" ;\n",
		"b":   "module b;\npublic Y = \"y\" ;\n",
	}
	g1 := compose(t, "top", mods)
	for i := 0; i < 5; i++ {
		g2 := compose(t, "top", mods)
		if !peg.EqualGrammar(g1, g2) {
			t.Fatal("composition is not deterministic")
		}
		if strings.Join(g1.Order, ",") != strings.Join(g2.Order, ",") {
			t.Fatal("production order is not deterministic")
		}
	}
}
