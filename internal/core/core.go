// Package core implements the paper's central contribution: composition of
// modular parsing expression grammars.
//
// A grammar is assembled from modules (parsed by internal/syntax). Starting
// from a top module, core loads the transitive dependency closure,
// instantiates parameterized modules, resolves every nonterminal reference,
// applies production modifications, and produces a closed peg.Grammar in
// which every reference names a production of the grammar.
//
// # Names and scope
//
// Internally every production gets a *full name* "<instance>.<production>",
// where <instance> is the module name, extended with "<arg,...>" for
// parameterized instances. References inside a module resolve in this
// order:
//
//  1. module parameters (substituted with the instantiating arguments),
//  2. productions of the module itself,
//  3. public productions of its direct dependencies (unqualified; it is an
//     error if two dependencies export the same name),
//  4. qualified references "dep.module.Name" to public productions of a
//     direct dependency.
//
// Only public productions are visible across module boundaries; everything
// else is module-private.
//
// # Modifications
//
// A module that declares `modify M;` may contain modification productions
// that rewrite M's productions in place:
//
//	P := body ;            overrides P entirely
//	P += alts [before <l> / after <l>] ;   adds alternatives
//	P -= l1, l2 ;          removes labeled alternatives
//
// The expressions of added or overriding alternatives resolve in the scope
// of the *modifying* module, so extensions can introduce and reference
// their own helper productions. Modifications apply in dependency order,
// which makes composition deterministic; several independent extensions of
// the same base module compose as long as their anchors still exist.
package core

import (
	"fmt"
	"sort"
	"strings"

	"modpeg/internal/peg"
	"modpeg/internal/syntax"
	"modpeg/internal/text"
)

// Resolver maps module names to their sources. Implementations include
// MapResolver (in-memory, used by the embedded grammars and tests) and
// DirResolver (files on disk, used by the CLI).
type Resolver interface {
	Resolve(name string) (*text.Source, error)
}

// MapResolver resolves module names from an in-memory map of sources.
type MapResolver map[string]string

// Resolve implements Resolver.
func (m MapResolver) Resolve(name string) (*text.Source, error) {
	src, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown module %q", name)
	}
	return text.NewSource(name+".mpeg", src), nil
}

// instance is one instantiation of a module: the module together with the
// substitution of its parameters.
type instance struct {
	key   string // full instance name, e.g. "calc.expr<calc.lex.Space>"
	mod   *peg.Module
	subst map[string]string // parameter -> argument full production name
	deps  []instanceDep     // resolved dependencies in clause order
}

type instanceDep struct {
	inst   *instance
	modify bool
}

// composer carries the state of one composition.
type composer struct {
	resolver Resolver
	parsed   map[string]*peg.Module // module name -> parsed module
	insts    map[string]*instance   // instance key -> instance
	loading  map[string]bool        // cycle detection on instance keys
	order    []*instance            // topological (dependencies first)
	grammar  *peg.Grammar
	errs     text.ErrorList
}

// Compose loads the top module and its transitive dependencies through the
// resolver and composes them into a closed grammar.
func Compose(top string, resolver Resolver) (*peg.Grammar, error) {
	c := &composer{
		resolver: resolver,
		parsed:   map[string]*peg.Module{},
		insts:    map[string]*instance{},
		loading:  map[string]bool{},
		grammar:  &peg.Grammar{Prods: map[string]*peg.Production{}},
	}
	topInst := c.load(top, nil, nil, text.NoSpan)
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	for _, inst := range c.order {
		c.compose(inst)
	}
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	c.resolveRoot(topInst)
	c.check()
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	return c.grammar, nil
}

// ComposeModules composes pre-parsed modules (dependencies resolved among
// them by name); top names the root module.
func ComposeModules(mods []*peg.Module, top string) (*peg.Grammar, error) {
	r := moduleResolver{}
	for _, m := range mods {
		r[m.Name] = m
	}
	c := &composer{
		resolver: r,
		parsed:   map[string]*peg.Module{},
		insts:    map[string]*instance{},
		loading:  map[string]bool{},
		grammar:  &peg.Grammar{Prods: map[string]*peg.Production{}},
	}
	for _, m := range mods {
		c.parsed[m.Name] = m
	}
	topInst := c.load(top, nil, nil, text.NoSpan)
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	for _, inst := range c.order {
		c.compose(inst)
	}
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	c.resolveRoot(topInst)
	c.check()
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	return c.grammar, nil
}

// moduleResolver adapts pre-parsed modules to the Resolver interface; it is
// only consulted for modules missing from composer.parsed, which is an
// error.
type moduleResolver map[string]*peg.Module

func (moduleResolver) Resolve(name string) (*text.Source, error) {
	return nil, fmt.Errorf("core: unknown module %q", name)
}

// instanceKey renders the canonical key of a module instantiated with the
// given argument full names.
func instanceKey(name string, args []string) string {
	if len(args) == 0 {
		return name
	}
	return name + "<" + strings.Join(args, ",") + ">"
}

// load parses (if necessary) and instantiates module `name` with the given
// argument full names, returning the instance. from/sp locate the import
// clause for diagnostics.
func (c *composer) load(name string, args []string, from *peg.Module, sp text.Span) *instance {
	key := instanceKey(name, args)
	if inst, ok := c.insts[key]; ok {
		return inst
	}
	if c.loading[key] {
		c.addErr(from, sp, "module dependency cycle through %q", key)
		return nil
	}

	mod, ok := c.parsed[name]
	if !ok {
		src, err := c.resolver.Resolve(name)
		if err != nil {
			c.addErr(from, sp, "cannot load module %q: %v", name, err)
			return nil
		}
		m, err := syntax.Parse(src)
		if err != nil {
			if el, ok := err.(*text.ErrorList); ok {
				c.errs.Merge(el)
			} else {
				c.addErr(from, sp, "module %q: %v", name, err)
			}
			return nil
		}
		if m.Name != name {
			c.errs.Addf(m.Source, m.Sp, "module declares name %q but was loaded as %q", m.Name, name)
			return nil
		}
		mod = m
		c.parsed[name] = mod
	}

	if len(args) != len(mod.Params) {
		c.addErr(from, sp, "module %q expects %d argument(s), got %d", name, len(mod.Params), len(args))
		return nil
	}

	inst := &instance{key: key, mod: mod, subst: map[string]string{}}
	for i, p := range mod.Params {
		inst.subst[p] = args[i]
	}

	c.loading[key] = true
	defer delete(c.loading, key)

	for _, d := range mod.Deps {
		depArgs := make([]string, 0, len(d.Args))
		argsOK := true
		for _, a := range d.Args {
			// Arguments are production references resolved in *this*
			// module's scope — but dependency instances are not loaded yet,
			// so arguments may only be parameters of this module or
			// qualified names resolved later. To keep instantiation simple
			// and predictable, arguments must be either a parameter of the
			// importing module or a fully qualified "module.Production"
			// name.
			if full, ok := inst.subst[a]; ok {
				depArgs = append(depArgs, full)
				continue
			}
			if !strings.Contains(a, ".") || !isUpperFinal(a) {
				c.errs.Addf(mod.Source, d.Sp,
					"argument %q must be a module parameter or a qualified Module.Production name", a)
				argsOK = false
				continue
			}
			depArgs = append(depArgs, a)
		}
		if !argsOK {
			continue
		}
		dep := c.load(d.Module, depArgs, mod, d.Sp)
		if dep == nil {
			continue
		}
		inst.deps = append(inst.deps, instanceDep{inst: dep, modify: d.Modify})
	}

	c.insts[key] = inst
	c.order = append(c.order, inst) // post-order: dependencies first
	return inst
}

func isUpperFinal(name string) bool {
	seg := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		seg = name[i+1:]
	}
	return seg != "" && seg[0] >= 'A' && seg[0] <= 'Z'
}

func (c *composer) addErr(from *peg.Module, sp text.Span, format string, args ...any) {
	var src *text.Source
	if from != nil {
		src = from.Source
	}
	c.errs.Addf(src, sp, format, args...)
}

// compose adds one instance's productions to the grammar and applies its
// modifications. Dependencies have already been composed.
func (c *composer) compose(inst *instance) {
	mod := inst.mod
	// First pass: register plain definitions so that intra-module
	// references (including mutually recursive ones) resolve.
	for _, p := range mod.Prods {
		if p.Kind != peg.Define {
			continue
		}
		full := inst.key + "." + p.Name
		if _, dup := c.grammar.Prods[full]; dup {
			c.errs.Addf(mod.Source, p.Sp, "duplicate production %q in module %q", p.Name, inst.key)
			continue
		}
		np := peg.CloneProduction(p)
		np.Name = full
		c.grammar.Add(np)
	}
	// Second pass: resolve bodies and apply modifications.
	for _, p := range mod.Prods {
		switch p.Kind {
		case peg.Define:
			full := inst.key + "." + p.Name
			def := c.grammar.Prods[full]
			if def == nil {
				continue // duplicate reported above
			}
			c.resolveExpr(inst, def.Choice, p.Sp)
			c.checkLabels(mod, def)
		case peg.Override, peg.AddAlts, peg.RemoveAlts:
			c.applyModification(inst, p)
		}
	}
}

// resolveExpr rewrites every nonterminal in e to its full name, reporting
// unresolved or ambiguous references.
func (c *composer) resolveExpr(inst *instance, e peg.Expr, sp text.Span) {
	if e == nil {
		return
	}
	peg.Walk(e, func(x peg.Expr) {
		nt, ok := x.(*peg.NonTerm)
		if !ok {
			return
		}
		full, err := c.resolveName(inst, nt.Name)
		if err != "" {
			where := nt.Span()
			if !where.IsValid() {
				where = sp
			}
			c.errs.Addf(inst.mod.Source, where, "%s", err)
			return
		}
		nt.Name = full
	})
}

// resolveName maps a reference written in module inst to a full production
// name; it returns a non-empty error message on failure.
func (c *composer) resolveName(inst *instance, name string) (string, string) {
	// 1. Parameters.
	if full, ok := inst.subst[name]; ok {
		return full, ""
	}
	// 2. Own productions (plain definitions only; a modification production
	// does not introduce a name in this module's namespace).
	if !strings.Contains(name, ".") {
		if p := inst.mod.Production(name); p != nil && p.Kind == peg.Define {
			return inst.key + "." + name, ""
		}
		// 3. Productions of direct dependencies: public ones for imports,
		// any production for modify dependencies (modification is
		// white-box — extensions may reference the modified module's
		// internals).
		var matches []string
		for _, d := range inst.deps {
			full := d.inst.key + "." + name
			if p, ok := c.grammar.Prods[full]; ok && (d.modify || p.Attrs.Has(peg.AttrPublic)) {
				matches = append(matches, full)
			}
		}
		switch len(matches) {
		case 0:
			return "", fmt.Sprintf("unresolved reference %q in module %q", name, inst.key)
		case 1:
			return matches[0], ""
		default:
			sort.Strings(matches)
			return "", fmt.Sprintf("ambiguous reference %q in module %q: %s",
				name, inst.key, strings.Join(matches, ", "))
		}
	}
	// 4. Qualified reference: longest dependency-module prefix wins.
	dot := strings.LastIndexByte(name, '.')
	modName, prodName := name[:dot], name[dot+1:]
	var matches []string
	for _, d := range inst.deps {
		if d.inst.mod.Name != modName {
			continue
		}
		full := d.inst.key + "." + prodName
		if p, ok := c.grammar.Prods[full]; ok {
			if !d.modify && !p.Attrs.Has(peg.AttrPublic) {
				return "", fmt.Sprintf("production %q of module %q is not public", prodName, modName)
			}
			matches = append(matches, full)
		}
	}
	if modName == inst.mod.Name {
		if p := inst.mod.Production(prodName); p != nil && p.Kind == peg.Define {
			matches = append(matches, inst.key+"."+prodName)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Sprintf("unresolved qualified reference %q in module %q", name, inst.key)
	case 1:
		return matches[0], ""
	default:
		sort.Strings(matches)
		return "", fmt.Sprintf("ambiguous qualified reference %q in module %q: %s",
			name, inst.key, strings.Join(matches, ", "))
	}
}

// applyModification applies one Override/AddAlts/RemoveAlts production of
// inst to the production it targets in a `modify` dependency.
func (c *composer) applyModification(inst *instance, p *peg.Production) {
	mod := inst.mod
	// Locate the target production among modify-dependencies.
	var targets []string
	for _, d := range inst.deps {
		if !d.modify {
			continue
		}
		full := d.inst.key + "." + p.Name
		if _, ok := c.grammar.Prods[full]; ok {
			targets = append(targets, full)
		}
	}
	switch len(targets) {
	case 0:
		if !hasModifyDep(inst) {
			c.errs.Addf(mod.Source, p.Sp,
				"modification of %q requires a 'modify' dependency that defines it", p.Name)
		} else {
			c.errs.Addf(mod.Source, p.Sp,
				"no modified module defines production %q", p.Name)
		}
		return
	case 1:
		// ok
	default:
		sort.Strings(targets)
		c.errs.Addf(mod.Source, p.Sp, "modification of %q is ambiguous: %s",
			p.Name, strings.Join(targets, ", "))
		return
	}
	target := c.grammar.Prods[targets[0]]

	switch p.Kind {
	case peg.Override:
		body := peg.CloneExpr(p.Choice).(*peg.Choice)
		c.resolveExpr(inst, body, p.Sp)
		target.Choice = body
		if p.Attrs != 0 {
			target.Attrs = p.Attrs
		}
		c.checkLabels(mod, target)
	case peg.AddAlts:
		if p.Attrs != 0 {
			c.errs.Addf(mod.Source, p.Sp, "attributes are not allowed on '+=' modifications")
		}
		added := peg.CloneExpr(p.Choice).(*peg.Choice)
		c.resolveExpr(inst, added, p.Sp)
		idx := len(target.Choice.Alts)
		switch p.Anchor {
		case peg.Before, peg.After:
			at := target.Choice.AltIndex(p.AnchorLabel)
			if at < 0 {
				c.errs.Addf(mod.Source, p.Sp,
					"anchor alternative <%s> not found in %q", p.AnchorLabel, p.Name)
				return
			}
			if p.Anchor == peg.Before {
				idx = at
			} else {
				idx = at + 1
			}
		}
		alts := make([]*peg.Seq, 0, len(target.Choice.Alts)+len(added.Alts))
		alts = append(alts, target.Choice.Alts[:idx]...)
		alts = append(alts, added.Alts...)
		alts = append(alts, target.Choice.Alts[idx:]...)
		target.Choice.Alts = alts
		c.checkLabels(mod, target)
	case peg.RemoveAlts:
		if p.Attrs != 0 {
			c.errs.Addf(mod.Source, p.Sp, "attributes are not allowed on '-=' modifications")
		}
		for _, label := range p.Removed {
			at := target.Choice.AltIndex(label)
			if at < 0 {
				c.errs.Addf(mod.Source, p.Sp,
					"alternative <%s> not found in %q", label, p.Name)
				continue
			}
			target.Choice.Alts = append(target.Choice.Alts[:at], target.Choice.Alts[at+1:]...)
		}
		if len(target.Choice.Alts) == 0 {
			c.errs.Addf(mod.Source, p.Sp,
				"removal left production %q without alternatives", p.Name)
		}
	}
}

func hasModifyDep(inst *instance) bool {
	for _, d := range inst.deps {
		if d.modify {
			return true
		}
	}
	return false
}

// checkLabels verifies that alternative labels within a production are
// unique, since they serve as modification anchors.
func (c *composer) checkLabels(mod *peg.Module, p *peg.Production) {
	if p.Choice == nil {
		return
	}
	seen := map[string]bool{}
	for _, a := range p.Choice.Alts {
		if a.Label == "" {
			continue
		}
		if seen[a.Label] {
			c.errs.Addf(mod.Source, a.Span(), "duplicate alternative label <%s> in %q", a.Label, p.Name)
		}
		seen[a.Label] = true
	}
}

// resolveRoot determines the grammar's start production from the top
// module's `option root` or, failing that, its first public production.
func (c *composer) resolveRoot(top *instance) {
	if top == nil {
		return
	}
	if rootOpt, ok := top.mod.Options["root"]; ok {
		full, err := c.resolveName(top, rootOpt)
		if err != "" {
			c.errs.Addf(top.mod.Source, top.mod.Sp, "option root: %s", err)
			return
		}
		c.grammar.Root = full
		c.recordModules()
		return
	}
	for _, p := range top.mod.Prods {
		if p.Kind == peg.Define && p.Attrs.Has(peg.AttrPublic) {
			c.grammar.Root = top.key + "." + p.Name
			c.recordModules()
			return
		}
	}
	c.errs.Addf(top.mod.Source, top.mod.Sp,
		"module %q has no public production to serve as the grammar root (set 'option root')", top.key)
}

func (c *composer) recordModules() {
	for _, inst := range c.order {
		c.grammar.ModuleNames = append(c.grammar.ModuleNames, inst.key)
	}
}

// check performs closed-grammar sanity checks: every reference resolves and
// the root exists.
func (c *composer) check() {
	if c.grammar.Root != "" {
		if _, ok := c.grammar.Prods[c.grammar.Root]; !ok {
			c.errs.Addf(nil, text.NoSpan, "root production %q does not exist", c.grammar.Root)
		}
	}
	for _, name := range c.grammar.Order {
		p := c.grammar.Prods[name]
		peg.Walk(p.Choice, func(x peg.Expr) {
			if nt, ok := x.(*peg.NonTerm); ok {
				if _, defined := c.grammar.Prods[nt.Name]; !defined {
					c.errs.Addf(nil, text.NoSpan,
						"internal: unresolved reference %q in %q survived composition", nt.Name, name)
				}
			}
		})
	}
	c.errs.Sort()
}
