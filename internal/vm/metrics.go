package vm

import (
	"encoding/json"
	"sync/atomic"
)

// This file is the process-wide engine metrics registry: atomic
// counters every Program in the process feeds, cheap enough to update
// unconditionally (a handful of uncontended atomic adds per parse, none
// per production), exported as a JSON snapshot for scraping. Where the
// per-parse Stats answer "what did this parse do", the registry answers
// "what has this process's engine been doing": how hard the session
// pool is working, how much memo storage the arenas have carved and how
// much of it recycling is saving, and the high-water memo footprint.
//
// Byte counters use the same footprint model as Stats.MemoBytes
// (memoEntrySize et al.), so registry numbers and per-parse numbers are
// directly comparable.

// metricsRegistry holds the process-wide counters.
type metricsRegistry struct {
	parsesStarted   atomic.Int64
	parsesCompleted atomic.Int64
	parsesFailed    atomic.Int64
	poolGets        atomic.Int64
	poolNews        atomic.Int64
	sessionResets   atomic.Int64
	arenaCarved     atomic.Int64
	arenaRecycled   atomic.Int64
	peakMemoBytes   atomic.Int64
	limitStops      atomic.Int64
	memoSheds       atomic.Int64
	panicsContained atomic.Int64

	// Incremental-document counters (incremental.go).
	incrementalApplies      atomic.Int64
	incrementalFullReparses atomic.Int64
	memoEntriesReused       atomic.Int64
	memoEntriesInvalidated  atomic.Int64
	memoEntriesRelocated    atomic.Int64
}

// metrics is the registry instance. Process-wide by design: a fleet of
// Programs shares one scrape target, like runtime.MemStats.
var metrics metricsRegistry

// observePeakMemo raises the peak-memo high-water mark to b (CAS loop;
// lock-free and monotone under concurrent parses).
func (m *metricsRegistry) observePeakMemo(b int64) {
	for {
		cur := m.peakMemoBytes.Load()
		if b <= cur || m.peakMemoBytes.CompareAndSwap(cur, b) {
			return
		}
	}
}

// MetricsSnapshot is a point-in-time copy of the engine metrics
// registry. Counters are monotone since process start (or the last
// ResetMetrics); deltas between scrapes are rates.
type MetricsSnapshot struct {
	// ParsesStarted counts begun parses; every one lands in
	// ParsesCompleted, ParsesFailed (failed = syntax error; the input
	// did not match), or LimitStops (stopped by a resource budget).
	ParsesStarted   int64 `json:"parses_started"`
	ParsesCompleted int64 `json:"parses_completed"`
	ParsesFailed    int64 `json:"parses_failed"`
	// PoolGets counts parser checkouts from the Program.Parse pool;
	// PoolNews counts the misses that built a fresh parser. A high
	// news/gets ratio means the pool is being drained (GC pressure or
	// bursty concurrency).
	PoolGets int64 `json:"pool_gets"`
	PoolNews int64 `json:"pool_news"`
	// SessionResets counts warm rewinds: a parser (pooled or explicit
	// session) that had parsed before beginning another input.
	// ParsesStarted - SessionResets is the number of cold first parses.
	SessionResets int64 `json:"session_resets"`
	// ArenaBytesCarved counts memo-arena slab bytes handed to the
	// allocator; ArenaBytesRecycled counts carved bytes made reusable
	// again by session resets — the allocation traffic the arenas saved.
	ArenaBytesCarved   int64 `json:"arena_bytes_carved"`
	ArenaBytesRecycled int64 `json:"arena_bytes_recycled"`
	// PeakMemoBytes is the largest single-parse memo footprint observed
	// (Stats.MemoBytes model).
	PeakMemoBytes int64 `json:"peak_memo_bytes"`
	// LimitStops counts parses stopped by a resource budget or a
	// canceled context (see Limits); these parses land in neither
	// ParsesCompleted nor ParsesFailed.
	LimitStops int64 `json:"limit_stops"`
	// MemoSheds counts memo-budget hits that degraded a parse into
	// shed-memoization mode instead of stopping it.
	MemoSheds int64 `json:"memo_sheds"`
	// PanicsContained counts interpreter panics converted into
	// *EngineError by the governance layer. Nonzero means an engine or
	// hook bug; the counter exists so a fleet notices.
	PanicsContained int64 `json:"panics_contained"`
	// IncrementalApplies counts Document.Apply calls with at least one
	// edit; IncrementalFullReparses counts the subset that fell back to a
	// from-scratch reparse (damage threshold, arena growth bound,
	// unsupported engine configuration, or a failed incremental pass
	// being re-reported from scratch).
	IncrementalApplies      int64 `json:"incremental_applies"`
	IncrementalFullReparses int64 `json:"incremental_full_reparses"`
	// MemoEntriesReused/Invalidated/Relocated aggregate the per-apply
	// Stats.MemoReused / MemoInvalidated / MemoRelocated counters across
	// every successful incremental apply in the process.
	MemoEntriesReused      int64 `json:"memo_entries_reused"`
	MemoEntriesInvalidated int64 `json:"memo_entries_invalidated"`
	MemoEntriesRelocated   int64 `json:"memo_entries_relocated"`
}

// Metrics returns a snapshot of the process-wide engine metrics.
func Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		ParsesStarted:      metrics.parsesStarted.Load(),
		ParsesCompleted:    metrics.parsesCompleted.Load(),
		ParsesFailed:       metrics.parsesFailed.Load(),
		PoolGets:           metrics.poolGets.Load(),
		PoolNews:           metrics.poolNews.Load(),
		SessionResets:      metrics.sessionResets.Load(),
		ArenaBytesCarved:   metrics.arenaCarved.Load(),
		ArenaBytesRecycled: metrics.arenaRecycled.Load(),
		PeakMemoBytes:      metrics.peakMemoBytes.Load(),
		LimitStops:         metrics.limitStops.Load(),
		MemoSheds:          metrics.memoSheds.Load(),
		PanicsContained:    metrics.panicsContained.Load(),

		IncrementalApplies:      metrics.incrementalApplies.Load(),
		IncrementalFullReparses: metrics.incrementalFullReparses.Load(),
		MemoEntriesReused:       metrics.memoEntriesReused.Load(),
		MemoEntriesInvalidated:  metrics.memoEntriesInvalidated.Load(),
		MemoEntriesRelocated:    metrics.memoEntriesRelocated.Load(),
	}
}

// JSON encodes the snapshot for scraping.
func (s MetricsSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ResetMetrics zeroes the registry — for tests and for scrapers that
// prefer windowed counters over monotone ones. Not atomic as a whole:
// counters racing with in-flight parses may land on either side of the
// reset.
func ResetMetrics() {
	metrics.parsesStarted.Store(0)
	metrics.parsesCompleted.Store(0)
	metrics.parsesFailed.Store(0)
	metrics.poolGets.Store(0)
	metrics.poolNews.Store(0)
	metrics.sessionResets.Store(0)
	metrics.arenaCarved.Store(0)
	metrics.arenaRecycled.Store(0)
	metrics.peakMemoBytes.Store(0)
	metrics.limitStops.Store(0)
	metrics.memoSheds.Store(0)
	metrics.panicsContained.Store(0)
	metrics.incrementalApplies.Store(0)
	metrics.incrementalFullReparses.Store(0)
	metrics.memoEntriesReused.Store(0)
	metrics.memoEntriesInvalidated.Store(0)
	metrics.memoEntriesRelocated.Store(0)
}
