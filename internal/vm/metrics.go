package vm

import (
	"encoding/json"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the process-wide engine metrics registry: atomic
// counters every Program in the process feeds, cheap enough to update
// unconditionally (a handful of uncontended atomic adds per parse, none
// per production), exported as a JSON snapshot for scraping. Where the
// per-parse Stats answer "what did this parse do", the registry answers
// "what has this process's engine been doing": how hard the session
// pool is working, how much memo storage the arenas have carved and how
// much of it recycling is saving, and the high-water memo footprint.
//
// Byte counters use the same footprint model as Stats.MemoBytes
// (memoEntrySize et al.), so registry numbers and per-parse numbers are
// directly comparable.
//
// On top of the scalar counters the registry keeps two fixed-bucket
// histograms (parse latency and input size) and per-grammar labeled
// counters, all lock-free on the hot path: recording is a handful of
// atomic adds per parse (never per production) and allocates nothing,
// so the nil-hook/ungoverned 0 allocs/op guarantee holds with telemetry
// enabled. SetTelemetry(false) disables the per-parse recording
// entirely for ablation measurements (Table 9).

// telemetryEnabled gates the per-parse histogram and per-grammar
// recording. Enabled by default; see SetTelemetry.
var telemetryEnabled atomic.Bool

func init() {
	telemetryEnabled.Store(true)
	metrics.parseDuration.bounds = parseDurationBounds
	metrics.inputSize.bounds = inputSizeBounds
}

// SetTelemetry enables or disables per-parse telemetry recording (the
// latency and input-size histograms and the per-grammar counters) and
// returns the previous setting. The scalar registry counters are always
// on. Telemetry is enabled by default; disabling exists for overhead
// ablations, not as a production configuration — the recording path is
// allocation-free either way.
func SetTelemetry(on bool) bool { return telemetryEnabled.Swap(on) }

// TelemetryEnabled reports whether per-parse telemetry recording is on.
func TelemetryEnabled() bool { return telemetryEnabled.Load() }

// ------------------------------------------------------------ histograms

// Histogram bucket ladders. Fixed at process start so observation is a
// bounded scan over a static array — no sizing heuristics, no locks.
// Upper bounds are inclusive (Prometheus `le` semantics); observations
// beyond the last bound land only in the implicit +Inf bucket.
var (
	// parseDurationBounds is a 1–2.5–5 ladder in nanoseconds from 1µs to
	// 10s: wide enough for a void-grammar microparse and a governed
	// multi-second worst case in the same scrape.
	parseDurationBounds = []int64{
		1_000, 2_500, 5_000, // 1µs 2.5µs 5µs
		10_000, 25_000, 50_000, // 10µs 25µs 50µs
		100_000, 250_000, 500_000, // 100µs 250µs 500µs
		1_000_000, 2_500_000, 5_000_000, // 1ms 2.5ms 5ms
		10_000_000, 25_000_000, 50_000_000, // 10ms 25ms 50ms
		100_000_000, 250_000_000, 500_000_000, // 100ms 250ms 500ms
		1_000_000_000, 2_500_000_000, 5_000_000_000, // 1s 2.5s 5s
		10_000_000_000, // 10s
	}
	// inputSizeBounds covers inputs from a REPL line to the multi-MB
	// adversarial corpus, in bytes.
	inputSizeBounds = []int64{
		64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
	}
)

// histMaxBuckets sizes the static bucket arrays: the longest ladder.
const histMaxBuckets = 22

// Exemplar is one traced observation pinned to a histogram bucket: the
// trace ID of the request that landed there, the grammar label it
// parsed under, the observed value (the histogram's native unit), and
// the wall-clock time it was recorded. Each bucket keeps its most
// recent exemplar, so a scrape of the tail buckets carries concrete
// trace IDs to chase — the OpenMetrics exemplar model.
type Exemplar struct {
	TraceID    string `json:"trace_id"`
	Grammar    string `json:"grammar,omitempty"`
	Value      int64  `json:"value"`
	TimeUnixNS int64  `json:"time_unix_ns"`
}

// histogram is a lock-free fixed-bucket histogram. Per-bucket counts
// are stored non-cumulative (one atomic add per observation) and summed
// into Prometheus-style cumulative buckets at snapshot time. Each
// bucket additionally holds the latest traced observation that landed
// in it (one atomic pointer; the extra slot is the implicit +Inf
// bucket) — written only by traced parses, so the untraced hot path
// never touches it.
type histogram struct {
	bounds    []int64 // ascending inclusive upper bounds; +Inf implicit
	count     atomic.Int64
	sum       atomic.Int64
	buckets   [histMaxBuckets]atomic.Int64
	exemplars [histMaxBuckets + 1]atomic.Pointer[Exemplar]
}

// observe records one value: three atomic adds and a bounded scan, no
// allocation.
func (h *histogram) observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	// Beyond the last bound: counted only by the implicit +Inf bucket,
	// which snapshot derives from count.
}

// exemplar pins (traceID, label, v) to the bucket v lands in — the
// same bucket selection as observe, plus the +Inf slot for values
// beyond the last bound. One small allocation per traced parse, off
// the untraced path entirely.
func (h *histogram) exemplar(v int64, traceID, label string) {
	e := &Exemplar{TraceID: traceID, Grammar: label, Value: v, TimeUnixNS: time.Now().UnixNano()}
	slot := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			slot = i
			break
		}
	}
	h.exemplars[slot].Store(e)
}

func (h *histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
}

// HistogramBucket is one cumulative histogram bucket: the number of
// observations with value <= UpperBound, plus the latest traced
// observation that landed in it (nil when the bucket has never seen a
// traced parse).
type HistogramBucket struct {
	UpperBound int64     `json:"le"`
	Count      int64     `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSnapshot is a point-in-time copy of a registry histogram.
// Buckets are cumulative over the finite upper bounds, in ascending
// order; the +Inf bucket is implicit and equals Count. Sum and the
// bounds are in the histogram's native unit (nanoseconds for the
// latency histogram, bytes for the input-size histogram).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
	// InfExemplar is the latest traced observation beyond the last
	// finite bound (the implicit +Inf bucket).
	InfExemplar *Exemplar `json:"inf_exemplar,omitempty"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]HistogramBucket, len(h.bounds)),
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		s.Buckets[i] = HistogramBucket{UpperBound: b, Count: cum, Exemplar: h.exemplars[i].Load()}
	}
	// Count was loaded before the buckets were summed, so observations
	// racing in between can make the cumulative sum exceed it — which
	// would render a +Inf bucket smaller than the last finite one.
	// Clamp Count up to the sum so the snapshot is always internally
	// monotone (the next scrape sees the full count anyway).
	if cum > s.Count {
		s.Count = cum
	}
	s.InfExemplar = h.exemplars[len(h.bounds)].Load()
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the winning bucket, in
// the histogram's native unit. The first bucket interpolates from zero;
// observations that landed beyond the last finite bound (the implicit
// +Inf bucket) clamp to the last finite bound, so tail quantiles are a
// lower bound once the ladder overflows. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var lo int64    // lower edge of the current bucket
	var below int64 // cumulative count below it
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			in := b.Count - below
			if in <= 0 {
				return b.UpperBound
			}
			frac := (rank - float64(below)) / float64(in)
			return lo + int64(frac*float64(b.UpperBound-lo))
		}
		below = b.Count
		lo = b.UpperBound
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Histogram is the registry's lock-free fixed-bucket histogram exported
// for reuse outside the registry — the loadbench client records its
// request latencies through the exact machinery the server-side
// parse-duration histogram uses, so client and server distributions are
// directly comparable.
type Histogram struct{ h histogram }

// NewHistogram builds a histogram over the given ascending inclusive
// upper bounds (at most histMaxBuckets of them; the +Inf bucket is
// implicit). The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) > histMaxBuckets {
		panic("vm: NewHistogram: too many buckets")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("vm: NewHistogram: bounds not strictly ascending")
		}
	}
	h := &Histogram{}
	h.h.bounds = append([]int64(nil), bounds...)
	return h
}

// Observe records one value: three atomic adds and a bounded scan,
// allocation-free and safe for concurrent use.
func (h *Histogram) Observe(v int64) { h.h.observe(v) }

// Snapshot returns a point-in-time copy with cumulative buckets.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.h.snapshot() }

// Reset zeroes the histogram (not atomic against concurrent Observe).
func (h *Histogram) Reset() { h.h.reset() }

// LatencyBounds returns a copy of the registry's parse-latency bucket
// ladder (nanoseconds, 1µs–10s) — the default ladder for client-side
// latency histograms.
func LatencyBounds() []int64 { return append([]int64(nil), parseDurationBounds...) }

// --------------------------------------------------- per-grammar counters

// grammarStats is one grammar label's counter set. Programs hold a
// resolved pointer (see Program.SetLabel), so hot-path recording is
// plain atomic adds — the label registry's mutex is only taken at
// compile/SetLabel/snapshot/reset time.
type grammarStats struct {
	label      string
	started    atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	limitStops atomic.Int64
	inputBytes atomic.Int64
}

var (
	grammarsMu  sync.Mutex
	grammarsReg = make(map[string]*grammarStats)
)

// grammarStatsFor returns the (process-wide) counter set for label,
// registering it on first use. Counter sets are never removed: Programs
// keep pointers to them, and ResetMetrics zeroes them in place so a
// reset never orphans a live Program's counters.
func grammarStatsFor(label string) *grammarStats {
	grammarsMu.Lock()
	defer grammarsMu.Unlock()
	g := grammarsReg[label]
	if g == nil {
		g = &grammarStats{label: label}
		grammarsReg[label] = g
	}
	return g
}

// GrammarCounters is a point-in-time copy of one grammar label's
// counters. ParsesStarted counts begun parses; each lands in
// ParsesCompleted, ParsesFailed, or LimitStops. InputBytes sums the
// input sizes of begun parses.
type GrammarCounters struct {
	ParsesStarted   int64 `json:"parses_started"`
	ParsesCompleted int64 `json:"parses_completed"`
	ParsesFailed    int64 `json:"parses_failed"`
	LimitStops      int64 `json:"limit_stops"`
	InputBytes      int64 `json:"input_bytes"`
}

// snapshotGrammars copies the per-grammar counters, skipping labels
// that have not recorded a parse since the last reset (registration
// alone — compiling a Program — does not make a label scrapeable).
func snapshotGrammars() map[string]GrammarCounters {
	grammarsMu.Lock()
	defer grammarsMu.Unlock()
	var out map[string]GrammarCounters
	for label, g := range grammarsReg {
		started := g.started.Load()
		if started == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]GrammarCounters)
		}
		out[label] = GrammarCounters{
			ParsesStarted:   started,
			ParsesCompleted: g.completed.Load(),
			ParsesFailed:    g.failed.Load(),
			LimitStops:      g.limitStops.Load(),
			InputBytes:      g.inputBytes.Load(),
		}
	}
	return out
}

// GrammarLabels returns the labels with recorded parses, sorted — the
// iteration order exporters use for deterministic rendering.
func (s MetricsSnapshot) GrammarLabels() []string {
	labels := make([]string, 0, len(s.Grammars))
	for label := range s.Grammars {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	return labels
}

// --------------------------------------------------------------- registry

// metricsRegistry holds the process-wide counters.
type metricsRegistry struct {
	parsesStarted   atomic.Int64
	parsesCompleted atomic.Int64
	parsesFailed    atomic.Int64
	poolGets        atomic.Int64
	poolNews        atomic.Int64
	sessionResets   atomic.Int64
	arenaCarved     atomic.Int64
	arenaRecycled   atomic.Int64
	peakMemoBytes   atomic.Int64
	limitStops      atomic.Int64
	memoSheds       atomic.Int64
	panicsContained atomic.Int64

	// Incremental-document counters (incremental.go).
	incrementalApplies      atomic.Int64
	incrementalFullReparses atomic.Int64
	memoEntriesReused       atomic.Int64
	memoEntriesInvalidated  atomic.Int64
	memoEntriesRelocated    atomic.Int64

	// Telemetry histograms (gated by SetTelemetry).
	parseDuration histogram // per-parse wall time, nanoseconds
	inputSize     histogram // per-parse input size, bytes

	// inflight is the live in-flight-requests gauge the serve layer
	// brackets each parse request with (AddInflight).
	inflight atomic.Int64
}

// processStart anchors the uptime gauge.
var processStart = time.Now()

// AddInflight adjusts the in-flight-requests gauge by d and returns the
// new value. The serve layer calls AddInflight(1) when a parse request
// begins and AddInflight(-1) when it completes; scraping it between the
// two shows how many requests the process is holding right now.
func AddInflight(d int64) int64 { return metrics.inflight.Add(d) }

// metrics is the registry instance. Process-wide by design: a fleet of
// Programs shares one scrape target, like runtime.MemStats.
var metrics metricsRegistry

// observePeakMemo raises the peak-memo high-water mark to b (CAS loop;
// lock-free and monotone under concurrent parses).
func (m *metricsRegistry) observePeakMemo(b int64) {
	for {
		cur := m.peakMemoBytes.Load()
		if b <= cur || m.peakMemoBytes.CompareAndSwap(cur, b) {
			return
		}
	}
}

// MetricsSnapshot is a point-in-time copy of the engine metrics
// registry. Counters are monotone since process start (or the last
// ResetMetrics); deltas between scrapes are rates.
type MetricsSnapshot struct {
	// ParsesStarted counts begun parses; every one lands in
	// ParsesCompleted, ParsesFailed (failed = syntax error; the input
	// did not match), or LimitStops (stopped by a resource budget).
	ParsesStarted   int64 `json:"parses_started"`
	ParsesCompleted int64 `json:"parses_completed"`
	ParsesFailed    int64 `json:"parses_failed"`
	// PoolGets counts parser checkouts from the Program.Parse pool;
	// PoolNews counts the misses that built a fresh parser. A high
	// news/gets ratio means the pool is being drained (GC pressure or
	// bursty concurrency).
	PoolGets int64 `json:"pool_gets"`
	PoolNews int64 `json:"pool_news"`
	// SessionResets counts warm rewinds: a parser (pooled or explicit
	// session) that had parsed before beginning another input.
	// ParsesStarted - SessionResets is the number of cold first parses.
	SessionResets int64 `json:"session_resets"`
	// ArenaBytesCarved counts memo-arena slab bytes handed to the
	// allocator; ArenaBytesRecycled counts carved bytes made reusable
	// again by session resets — the allocation traffic the arenas saved.
	ArenaBytesCarved   int64 `json:"arena_bytes_carved"`
	ArenaBytesRecycled int64 `json:"arena_bytes_recycled"`
	// PeakMemoBytes is the largest single-parse memo footprint observed
	// (Stats.MemoBytes model).
	PeakMemoBytes int64 `json:"peak_memo_bytes"`
	// LimitStops counts parses stopped by a resource budget or a
	// canceled context (see Limits); these parses land in neither
	// ParsesCompleted nor ParsesFailed.
	LimitStops int64 `json:"limit_stops"`
	// MemoSheds counts memo-budget hits that degraded a parse into
	// shed-memoization mode instead of stopping it.
	MemoSheds int64 `json:"memo_sheds"`
	// PanicsContained counts interpreter panics converted into
	// *EngineError by the governance layer. Nonzero means an engine or
	// hook bug; the counter exists so a fleet notices.
	PanicsContained int64 `json:"panics_contained"`
	// IncrementalApplies counts Document.Apply calls with at least one
	// edit; IncrementalFullReparses counts the subset that fell back to a
	// from-scratch reparse (damage threshold, arena growth bound,
	// unsupported engine configuration, or a failed incremental pass
	// being re-reported from scratch).
	IncrementalApplies      int64 `json:"incremental_applies"`
	IncrementalFullReparses int64 `json:"incremental_full_reparses"`
	// MemoEntriesReused/Invalidated/Relocated aggregate the per-apply
	// Stats.MemoReused / MemoInvalidated / MemoRelocated counters across
	// every successful incremental apply in the process.
	MemoEntriesReused      int64 `json:"memo_entries_reused"`
	MemoEntriesInvalidated int64 `json:"memo_entries_invalidated"`
	MemoEntriesRelocated   int64 `json:"memo_entries_relocated"`

	// Runtime gauges, sampled at snapshot time: scheduler and memory
	// state a capacity run correlates with the parse counters.
	// Goroutines is runtime.NumGoroutine(); HeapBytes is live heap
	// (MemStats.HeapAlloc); GCPauseNS is cumulative stop-the-world GC
	// pause since process start (MemStats.PauseTotalNs);
	// InflightRequests is the serve layer's live request gauge
	// (AddInflight); UptimeNS is time since process start.
	Goroutines       int64 `json:"goroutines"`
	HeapBytes        int64 `json:"heap_bytes"`
	GCPauseNS        int64 `json:"gc_pause_ns"`
	InflightRequests int64 `json:"inflight_requests"`
	UptimeNS         int64 `json:"uptime_ns"`

	// ParseDurationNS and ParseInputBytes are the per-parse latency
	// (nanoseconds) and input-size (bytes) histograms; empty while
	// telemetry is disabled (SetTelemetry).
	ParseDurationNS HistogramSnapshot `json:"parse_duration_ns"`
	ParseInputBytes HistogramSnapshot `json:"parse_input_bytes"`
	// Grammars holds per-grammar labeled counters for every grammar
	// label that recorded at least one parse since the last reset. The
	// label defaults to the root production's module qualifier and is
	// overridden by Program.SetLabel.
	Grammars map[string]GrammarCounters `json:"grammars,omitempty"`
	// SampledProfiles holds the rolling 1-in-N sampled profiles, one
	// per grammar label that has been sampled (sample.go); empty while
	// sampling is off everywhere. The Prometheus exporter renders the
	// top rows as hot-production counters.
	SampledProfiles []SampledProfile `json:"sampled_profiles,omitempty"`
}

// Metrics returns a snapshot of the process-wide engine metrics.
// Sampling the runtime gauges calls runtime.ReadMemStats, so Metrics is
// a scrape-time operation, not a hot-path one.
func Metrics() MetricsSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MetricsSnapshot{
		Goroutines:       int64(runtime.NumGoroutine()),
		HeapBytes:        int64(ms.HeapAlloc),
		GCPauseNS:        int64(ms.PauseTotalNs),
		InflightRequests: metrics.inflight.Load(),
		UptimeNS:         int64(time.Since(processStart)),

		ParsesStarted:      metrics.parsesStarted.Load(),
		ParsesCompleted:    metrics.parsesCompleted.Load(),
		ParsesFailed:       metrics.parsesFailed.Load(),
		PoolGets:           metrics.poolGets.Load(),
		PoolNews:           metrics.poolNews.Load(),
		SessionResets:      metrics.sessionResets.Load(),
		ArenaBytesCarved:   metrics.arenaCarved.Load(),
		ArenaBytesRecycled: metrics.arenaRecycled.Load(),
		PeakMemoBytes:      metrics.peakMemoBytes.Load(),
		LimitStops:         metrics.limitStops.Load(),
		MemoSheds:          metrics.memoSheds.Load(),
		PanicsContained:    metrics.panicsContained.Load(),

		IncrementalApplies:      metrics.incrementalApplies.Load(),
		IncrementalFullReparses: metrics.incrementalFullReparses.Load(),
		MemoEntriesReused:       metrics.memoEntriesReused.Load(),
		MemoEntriesInvalidated:  metrics.memoEntriesInvalidated.Load(),
		MemoEntriesRelocated:    metrics.memoEntriesRelocated.Load(),

		ParseDurationNS: metrics.parseDuration.snapshot(),
		ParseInputBytes: metrics.inputSize.snapshot(),
		Grammars:        snapshotGrammars(),
		SampledProfiles: SampledProfiles(),
	}
}

// JSON encodes the snapshot for scraping.
func (s MetricsSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ResetMetrics zeroes the registry — for tests and for scrapers that
// prefer windowed counters over monotone ones. Not atomic as a whole:
// counters racing with in-flight parses may land on either side of the
// reset. Per-grammar counter sets are zeroed in place (not removed), so
// compiled Programs keep feeding the same sets after a reset. The
// runtime gauges are untouched: goroutines/heap/GC-pause/uptime are
// resampled from the runtime at every snapshot, and zeroing the live
// in-flight gauge while requests are in flight would leave it negative
// forever once they complete.
func ResetMetrics() {
	metrics.parsesStarted.Store(0)
	metrics.parsesCompleted.Store(0)
	metrics.parsesFailed.Store(0)
	metrics.poolGets.Store(0)
	metrics.poolNews.Store(0)
	metrics.sessionResets.Store(0)
	metrics.arenaCarved.Store(0)
	metrics.arenaRecycled.Store(0)
	metrics.peakMemoBytes.Store(0)
	metrics.limitStops.Store(0)
	metrics.memoSheds.Store(0)
	metrics.panicsContained.Store(0)
	metrics.incrementalApplies.Store(0)
	metrics.incrementalFullReparses.Store(0)
	metrics.memoEntriesReused.Store(0)
	metrics.memoEntriesInvalidated.Store(0)
	metrics.memoEntriesRelocated.Store(0)
	metrics.parseDuration.reset()
	metrics.inputSize.reset()

	grammarsMu.Lock()
	defer grammarsMu.Unlock()
	for _, g := range grammarsReg {
		g.started.Store(0)
		g.completed.Store(0)
		g.failed.Store(0)
		g.limitStops.Store(0)
		g.inputBytes.Store(0)
	}
}
