package vm

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// This file is the per-production profiler: a Hook implementation that
// turns the engine's parse events into a Profile — per production:
// calls, memo behaviour, dispatch skips, self and cumulative time,
// farthest position matched, and bytes backtracked over. Profiles are
// plain data, aggregatable with Add across repeated parses, resident
// sessions, and ParseAll workers, and render as a top-N "hot
// productions" table or as JSON.
//
// Cost model: profiling reads the clock twice per production call
// (entry and exit) and maintains a call-stack frame; the disabled path
// is the engine's nil-hook fast path and costs nothing. Backtracked
// bytes are an approximation computed from production-call events: the
// farthest position any sub-production reached inside a failed call,
// minus the call's start position. Terminal matches consumed directly
// by a production's own body between calls are not visible as events,
// so the count is a lower bound.

// ProdProfile is the profile of one production.
type ProdProfile struct {
	// Name is the fully qualified production name.
	Name string `json:"name"`
	// Calls counts body evaluations (OnEnter events): invocations that
	// survived dispatch and missed the memo table.
	Calls int64 `json:"calls"`
	// MemoHits counts memo-table answers (stored success or failure).
	MemoHits int64 `json:"memo_hits"`
	// MemoMisses counts memo probes that found nothing. For a memoized
	// production every miss becomes a call, so misses equal calls;
	// transient productions never probe and report zero.
	MemoMisses int64 `json:"memo_misses"`
	// DispatchSkips counts first-byte dispatch rejections of the whole
	// production (choice-alternative skips inside a body are charged to
	// the enclosing production's Stats, not here).
	DispatchSkips int64 `json:"dispatch_skips"`
	// SelfNanos is time spent in the production's own body, excluding
	// sub-production calls; CumNanos includes them.
	SelfNanos int64 `json:"self_ns"`
	CumNanos  int64 `json:"cum_ns"`
	// FarthestPos is the rightmost end position of a successful match.
	FarthestPos int `json:"farthest_pos"`
	// BacktrackedBytes estimates input bytes matched inside this
	// production's failed attempts and then abandoned (see the cost
	// model above).
	BacktrackedBytes int64 `json:"backtracked_bytes"`
}

// add accumulates o into p.
func (p *ProdProfile) add(o ProdProfile) {
	p.Calls += o.Calls
	p.MemoHits += o.MemoHits
	p.MemoMisses += o.MemoMisses
	p.DispatchSkips += o.DispatchSkips
	p.SelfNanos += o.SelfNanos
	p.CumNanos += o.CumNanos
	if o.FarthestPos > p.FarthestPos {
		p.FarthestPos = o.FarthestPos
	}
	p.BacktrackedBytes += o.BacktrackedBytes
}

// Profile is a per-production execution profile. Prods is indexed by
// production index (Program.ProductionName order), one entry per
// production whether or not it ran.
type Profile struct {
	Prods []ProdProfile
}

// NewProfile returns an empty profile shaped for p's productions — the
// accumulator to Add worker or per-parse profiles into.
func (p *Program) NewProfile() *Profile {
	prof := &Profile{Prods: make([]ProdProfile, len(p.prods))}
	for i := range p.prods {
		prof.Prods[i].Name = p.prods[i].name
	}
	return prof
}

// Add accumulates o into p. Both profiles must come from the same
// Program (same production vector); Add panics on a length mismatch.
func (p *Profile) Add(o *Profile) {
	if len(p.Prods) != len(o.Prods) {
		panic(fmt.Sprintf("vm: Profile.Add: %d productions vs %d — profiles of different programs",
			len(p.Prods), len(o.Prods)))
	}
	for i := range o.Prods {
		p.Prods[i].add(o.Prods[i])
	}
}

// TotalCalls sums Calls over all productions; it equals Stats.Calls of
// the profiled parse (or the Stats.Add aggregate of a profiled batch).
func (p *Profile) TotalCalls() int64 {
	var n int64
	for i := range p.Prods {
		n += p.Prods[i].Calls
	}
	return n
}

// Top returns the productions that ran, hottest first: descending self
// time, ties broken by calls then name. n limits the result (n <= 0
// means all active productions).
func (p *Profile) Top(n int) []ProdProfile {
	active := make([]ProdProfile, 0, len(p.Prods))
	for i := range p.Prods {
		pp := p.Prods[i]
		if pp.Calls != 0 || pp.MemoHits != 0 || pp.DispatchSkips != 0 {
			active = append(active, pp)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		a, b := active[i], active[j]
		if a.SelfNanos != b.SelfNanos {
			return a.SelfNanos > b.SelfNanos
		}
		if a.Calls != b.Calls {
			return a.Calls > b.Calls
		}
		return a.Name < b.Name
	})
	if n > 0 && len(active) > n {
		active = active[:n]
	}
	return active
}

// Report renders the hot-production table: one row per active
// production (limited to the top n when n > 0), a separator, and a
// total row whose calls column sums every production — including rows
// the limit cut — so the total always equals Stats.Calls.
func (p *Profile) Report(n int) string {
	rows := p.Top(n)
	var totalSelf int64
	for i := range p.Prods {
		totalSelf += p.Prods[i].SelfNanos
	}
	header := []string{"production", "calls", "memo-hits", "disp-skips", "self-ms", "cum-ms", "self%", "far", "backtracked"}
	cells := make([][]string, 0, len(rows)+2)
	cells = append(cells, header)
	ms := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	pct := func(ns int64) string {
		if totalSelf == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", 100*float64(ns)/float64(totalSelf))
	}
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			fmt.Sprint(r.Calls), fmt.Sprint(r.MemoHits), fmt.Sprint(r.DispatchSkips),
			ms(r.SelfNanos), ms(r.CumNanos), pct(r.SelfNanos),
			fmt.Sprint(r.FarthestPos), fmt.Sprint(r.BacktrackedBytes),
		})
	}
	var t ProdProfile
	for i := range p.Prods {
		t.add(p.Prods[i])
	}
	cells = append(cells, []string{
		"total",
		fmt.Sprint(t.Calls), fmt.Sprint(t.MemoHits), fmt.Sprint(t.DispatchSkips),
		ms(t.SelfNanos), ms(t.CumNanos), pct(t.SelfNanos),
		fmt.Sprint(t.FarthestPos), fmt.Sprint(t.BacktrackedBytes),
	})

	widths := make([]int, len(header))
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c) // names left, numbers right
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(cells[0])
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells[1 : len(cells)-1] {
		writeRow(row)
	}
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	writeRow(cells[len(cells)-1])
	return b.String()
}

// String renders the full report (all active productions).
func (p *Profile) String() string { return p.Report(0) }

// profileJSON is the scraping-friendly encoding: active productions
// only, hottest first, plus the totals.
type profileJSON struct {
	TotalCalls  int64         `json:"total_calls"`
	TotalSelfNS int64         `json:"total_self_ns"`
	Productions []ProdProfile `json:"productions"`
}

// JSON encodes the profile: active productions hottest-first with
// per-production counters, plus total_calls/total_self_ns.
func (p *Profile) JSON() ([]byte, error) {
	var totalSelf int64
	for i := range p.Prods {
		totalSelf += p.Prods[i].SelfNanos
	}
	return json.MarshalIndent(profileJSON{
		TotalCalls:  p.TotalCalls(),
		TotalSelfNS: totalSelf,
		Productions: p.Top(0),
	}, "", "  ")
}

// pgoHot selects the productions a profile marks as inline candidates
// and their observed demand. Two filters beyond raw heat:
//
//   - demand = calls + memo hits, because inlining removes the memo
//     column and every probe that used to hit becomes a re-evaluation;
//   - productions whose memo column actually pays — more than about a
//     quarter of their demand answered from the table — are withheld,
//     since trading a table probe for a body re-evaluation is a loss
//     there. The profitable inline targets are the hot, rarely-hitting
//     productions (lexical glue, expression precedence towers).
func pgoHot(name string, calls, hits int64) (int64, bool) {
	demand := calls + hits
	if demand <= 0 || hits*3 > calls {
		return 0, false
	}
	return demand, true
}

// PGO turns the profile into a hot-production report for profile-guided
// compilation (Options.PGO).
func (p *Profile) PGO() *PGO {
	calls := make(map[string]int64, len(p.Prods))
	for i := range p.Prods {
		pp := &p.Prods[i]
		if demand, ok := pgoHot(pp.Name, pp.Calls, pp.MemoHits); ok {
			calls[pp.Name] = demand
		}
	}
	return &PGO{Calls: calls}
}

// LoadPGO decodes a profile report (the Profile.JSON / `modpeg profile
// -json` encoding) into a hot-production report for Options.PGO.
func LoadPGO(data []byte) (*PGO, error) {
	var report profileJSON
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("vm: decoding profile report: %w", err)
	}
	calls := make(map[string]int64, len(report.Productions))
	for _, pp := range report.Productions {
		if demand, ok := pgoHot(pp.Name, pp.Calls, pp.MemoHits); ok {
			calls[pp.Name] = demand
		}
	}
	return &PGO{Calls: calls}, nil
}

// ------------------------------------------------------------- profiler

// profFrame is one entry of the profiler's shadow call stack.
type profFrame struct {
	start time.Time
	child int64 // nanoseconds spent in sub-production calls
	pos   int   // entry position
	far   int   // farthest position reached within this call
	prod  int32
}

// Profiler is the Hook that accumulates a Profile. One Profiler serves
// one goroutine at a time but any number of consecutive parses — a
// resident Session can keep a single Profiler installed and read the
// aggregate whenever it likes. For concurrent aggregation give each
// worker its own Profiler and merge with Profile.Add (what
// ParseAllProfiled does).
type Profiler struct {
	p        Profile
	memoized []bool
	stack    []profFrame
}

// NewProfiler returns a profiler for p's productions.
func (p *Program) NewProfiler() *Profiler {
	pr := &Profiler{p: *p.NewProfile()}
	pr.memoized = make([]bool, len(p.prods))
	for i := range p.prods {
		pr.memoized[i] = p.prods[i].memoCol >= 0
	}
	return pr
}

// OnEnter implements Hook.
func (pr *Profiler) OnEnter(prod, pos int) {
	pr.p.Prods[prod].Calls++
	pr.stack = append(pr.stack, profFrame{
		start: time.Now(),
		pos:   pos,
		far:   pos,
		prod:  int32(prod),
	})
}

// OnExit implements Hook.
func (pr *Profiler) OnExit(prod, pos, end int, ok bool) {
	top := len(pr.stack) - 1
	f := pr.stack[top]
	pr.stack = pr.stack[:top]
	elapsed := time.Since(f.start).Nanoseconds()
	pp := &pr.p.Prods[prod]
	pp.CumNanos += elapsed
	pp.SelfNanos += elapsed - f.child
	far := f.far
	if ok {
		if end > far {
			far = end
		}
		if end > pp.FarthestPos {
			pp.FarthestPos = end
		}
	} else if bt := int64(far - f.pos); bt > 0 {
		pp.BacktrackedBytes += bt
	}
	if top > 0 {
		parent := &pr.stack[top-1]
		parent.child += elapsed
		if far > parent.far {
			parent.far = far
		}
	}
}

// OnMemoHit implements Hook.
func (pr *Profiler) OnMemoHit(prod, pos, end int, ok bool) {
	pp := &pr.p.Prods[prod]
	pp.MemoHits++
	if ok {
		if end > pp.FarthestPos {
			pp.FarthestPos = end
		}
		if top := len(pr.stack) - 1; top >= 0 && end > pr.stack[top].far {
			pr.stack[top].far = end
		}
	}
}

// OnFail implements Hook.
func (pr *Profiler) OnFail(prod, pos int) {
	pr.p.Prods[prod].DispatchSkips++
}

// reset rewinds the profiler for reuse by the sampling pool
// (sample.go): counters zeroed in place keeping the production names,
// the shadow stack truncated (a limit-stopped parse can leave frames
// behind).
func (pr *Profiler) reset() {
	for i := range pr.p.Prods {
		pr.p.Prods[i] = ProdProfile{Name: pr.p.Prods[i].Name}
	}
	pr.stack = pr.stack[:0]
}

// Profile returns a copy of the accumulated profile, with MemoMisses
// derived (a memoized production's every call follows a miss). The
// profiler keeps accumulating; call Profile again for a later snapshot.
func (pr *Profiler) Profile() *Profile {
	out := &Profile{Prods: append([]ProdProfile(nil), pr.p.Prods...)}
	for i := range out.Prods {
		if pr.memoized[i] {
			out.Prods[i].MemoMisses = out.Prods[i].Calls
		}
	}
	return out
}

// ------------------------------------------------------ profiled parses

// ParseWithProfile is Parse plus a per-production profile of the run.
// Profiling reads the clock on every production entry and exit; use
// plain Parse when the numbers aren't wanted.
func (p *Program) ParseWithProfile(src *text.Source) (ast.Value, Stats, *Profile, error) {
	pr := p.NewProfiler()
	val, stats, err := p.ParseWithHook(src, pr)
	return val, stats, pr.Profile(), err
}

// ParseWithProfile is Session.Parse plus a per-production profile of
// the run. For an aggregate across many session parses, install one
// Profiler with ParseWithHook instead and snapshot it at the end.
func (s *Session) ParseWithProfile(src *text.Source) (ast.Value, Stats, *Profile, error) {
	pr := s.ps.prog.NewProfiler()
	val, stats, err := s.ParseWithHook(src, pr)
	return val, stats, pr.Profile(), err
}

// ParseWithHook is Session.Parse with h receiving the parse's events.
// The same hook may be passed to consecutive parses to aggregate.
func (s *Session) ParseWithHook(src *text.Source, h Hook) (ast.Value, Stats, error) {
	s.ps.begin(src)
	s.ps.hook = h
	val, err := s.ps.run()
	s.ps.hook = nil
	return val, s.ps.stats, err
}

// ParseAllProfiled is ParseAll plus one Profile aggregated across every
// worker: each worker profiles its own parses into a private Profiler
// and the per-worker profiles are merged once at the end, so the
// contract (order-preserving results, cross-worker aggregate) holds
// under the race detector.
func (p *Program) ParseAllProfiled(srcs []*text.Source, workers int) ([]Result, *Profile) {
	total := p.NewProfile()
	results := make([]Result, len(srcs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers <= 1 {
		ps := p.acquire()
		pr := p.NewProfiler()
		for i, src := range srcs {
			ps.begin(src)
			ps.hook = pr
			val, err := ps.run()
			results[i] = Result{Value: val, Stats: ps.stats, Err: err}
		}
		ps.hook = nil
		p.release(ps)
		total.Add(pr.Profile())
		return results, total
	}
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ps := p.acquire()
			defer p.release(ps)
			pr := p.NewProfiler()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(srcs) {
					break
				}
				ps.begin(srcs[i])
				ps.hook = pr
				val, err := ps.run()
				results[i] = Result{Value: val, Stats: ps.stats, Err: err}
			}
			ps.hook = nil
			mu.Lock()
			total.Add(pr.Profile())
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results, total
}
