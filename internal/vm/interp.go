package vm

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"time"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// Stats reports what one parse did — the raw material of the paper's
// time/space tables.
type Stats struct {
	// Calls counts production invocations (after dispatch fast-fails).
	Calls int
	// DispatchSkips counts calls and alternatives skipped by first-byte
	// dispatch.
	DispatchSkips int
	// MemoHits/MemoMisses/MemoStores count memo table activity.
	MemoHits   int
	MemoMisses int
	MemoStores int
	// ChunksAllocated counts lazily allocated memo chunks (chunked layout).
	ChunksAllocated int
	// ChunkRows counts positions that allocated a chunk directory.
	ChunkRows int
	// MemoBytes estimates the memo table's heap footprint in bytes.
	MemoBytes int
	// MemoSheds counts memo-budget hits that shed memoization (0 or 1
	// per parse; see Limits.MaxMemoBytes).
	MemoSheds int
	// MaxPos is the rightmost input position reached.
	MaxPos int

	// Incremental-reparse accounting (Document.Apply; see incremental.go).
	// MemoReused counts memo hits answered by entries recycled from an
	// earlier parse of the document; MemoInvalidated counts entries killed
	// because their examined span overlapped an edit's damage region (after
	// lookahead widening); MemoRelocated counts surviving entries shifted
	// past an edit by remapping the chunk directory. All three are zero for
	// ordinary from-scratch parses.
	MemoReused      int
	MemoInvalidated int
	MemoRelocated   int
}

func (s Stats) String() string {
	out := fmt.Sprintf("calls=%d hits=%d misses=%d stores=%d skips=%d chunks=%d chunkRows=%d memoBytes=%d maxPos=%d",
		s.Calls, s.MemoHits, s.MemoMisses, s.MemoStores, s.DispatchSkips,
		s.ChunksAllocated, s.ChunkRows, s.MemoBytes, s.MaxPos)
	if s.MemoSheds > 0 {
		out += fmt.Sprintf(" sheds=%d", s.MemoSheds)
	}
	if s.MemoReused+s.MemoInvalidated+s.MemoRelocated > 0 {
		out += fmt.Sprintf(" reused=%d invalidated=%d relocated=%d",
			s.MemoReused, s.MemoInvalidated, s.MemoRelocated)
	}
	return out
}

// Add accumulates o into s, summing the counters and taking the maximum
// of MaxPos — the aggregation used for batch-parse reporting.
func (s *Stats) Add(o Stats) {
	s.Calls += o.Calls
	s.DispatchSkips += o.DispatchSkips
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.MemoStores += o.MemoStores
	s.ChunksAllocated += o.ChunksAllocated
	s.ChunkRows += o.ChunkRows
	s.MemoBytes += o.MemoBytes
	s.MemoSheds += o.MemoSheds
	s.MemoReused += o.MemoReused
	s.MemoInvalidated += o.MemoInvalidated
	s.MemoRelocated += o.MemoRelocated
	if o.MaxPos > s.MaxPos {
		s.MaxPos = o.MaxPos
	}
}

// ParseError describes a failed parse with the farthest failure heuristic:
// the position the parser got stuck at and the terminals/productions it
// tried there.
type ParseError struct {
	Src      *text.Source
	Pos      text.Pos
	Expected []string
}

func (e *ParseError) Error() string {
	loc := e.Src.Location(e.Pos)
	found := "end of input"
	if int(e.Pos) < e.Src.Len() {
		found = fmt.Sprintf("%q", e.Src.Content()[e.Pos])
	}
	msg := fmt.Sprintf("%s: syntax error: unexpected %s", loc, found)
	if len(e.Expected) > 0 {
		msg += ", expected " + strings.Join(e.Expected, " or ")
	}
	return msg
}

// Detail renders the error with a quoted source line.
func (e *ParseError) Detail() string {
	return e.Error() + "\n" + e.Src.Quote(text.NewSpan(e.Pos, e.Pos+1))
}

// memoEntry is one memoized outcome. state distinguishes empty slots from
// stored failures and successes. len is the number of bytes the stored
// success consumed — a length rather than an absolute end position, so an
// entry stays valid when incremental reparsing relocates it to a shifted
// position by remapping the chunk directory (incremental.go): the row
// pointers move, the rows never need rewriting. gen tags the entry with
// the document generation that stored it; a memo hit on an entry from an
// earlier generation is a reuse of recycled state (Stats.MemoReused).
// Both fields pack into the padding the old absolute-end layout already
// paid for, keeping the entry at the modeled memoEntrySize.
type memoEntry struct {
	state uint8  // 0 empty, 1 fail, 2 success
	gen   uint16 // storing generation (0 outside incremental documents)
	len   int32  // bytes consumed on success (end = pos + len)
	val   ast.Value
}

const (
	memoEmpty uint8 = iota
	memoFail
	memoOK
)

// Memo footprint model (Stats.MemoBytes). Both layouts are charged for
// the same 24-byte entry payload (state+gen+len packed into one word plus
// a two-word interface value) so their estimates are directly comparable:
//
//   - chunked: every allocated chunk is chunkSize entries of
//     memoEntrySize bytes, plus one 8-byte chunk pointer per directory
//     slot of every position that allocated a directory row;
//   - map: every entry stores an 8-byte (pos, column) key next to the
//     memoEntrySize value (32 payload bytes per entry), plus one
//     control/tophash byte per slot — but slots are only ~65% occupied
//     on average, because the runtime map doubles its capacity and fills
//     from half the maximum ~7/8 load factor back up. Charged per live
//     entry that is (8 + 24 + 1) / 0.65 ≈ 51 bytes, rounded up to
//     payload + 24 = 56 to cover table headers and overflow storage.
const (
	memoEntrySize = 24
	mapEntryBytes = 8 + memoEntrySize + 24
)

// chunkSize is the number of memo columns grouped into one lazily
// allocated chunk — the Rats! chunk optimization: positions pay only for
// the column groups actually probed there, not the whole production set.
const chunkSize = 8

// memoChunk is one group of memo entries.
type memoChunk [chunkSize]memoEntry

// Parser executes one Program over one input at a time. A Parser is
// reusable — begin rewinds it for the next input, recycling the memo
// arenas — but never safe for concurrent use. Program.Parse maintains a
// pool of Parsers; Program.NewSession hands one to the caller directly.
type Parser struct {
	prog  *Program
	src   *text.Source
	in    string
	stats Stats

	// chunked memo: per position, a lazily allocated directory of lazily
	// allocated chunks of chunkSize columns each. The directory slice is
	// kept across parses and grown monotonically; begin clears the window
	// the previous parse used so stale rows can never be read. Rows and
	// chunks live in the session arenas.
	chunks     [][]*memoChunk
	chunkCount int // chunks per position: ceil(memoCols / chunkSize)
	// map memo keyed by position*memoCols + column (cleared, not
	// reallocated, between parses).
	memoMap map[int64]memoEntry

	// session allocators (see arena.go).
	chunkArena chunkArena
	rowArena   rowArena
	values     valueArena

	// scratch is the shared stack where sequences and repetitions
	// accumulate item values before copying them out at their final size.
	// Callers push at len(scratch) and truncate back to their base mark;
	// recursion preserves the stack discipline because nested expressions
	// finish (and truncate) before the enclosing one pushes again.
	scratch []ast.Value

	// examined is the exclusive end of the input region the production
	// invocation currently evaluating has read — matched or merely peeked
	// at by dispatch, literals, classes, and predicates. parseProd frames
	// it per invocation and folds the result into prodLook; EOF probes
	// count the position past the end, so entries whose outcome depended
	// on where the input stopped are widened too.
	examined int
	// prodLook is the per-memo-column farthest-lookahead watermark: the
	// most bytes any invocation of that production examined beyond its
	// match end (beyond its start, for failures). Incremental reparsing
	// widens edit damage by it so entries that peeked across an edit are
	// invalidated (incremental.go); memo hits propagate it so a caller's
	// examined region covers everything the memoized work once read.
	prodLook []int32
	// gen is the memo generation tag incremental documents bump per
	// Apply; stored entries carry it so hits on recycled entries can be
	// counted (Stats.MemoReused). Always 0 outside documents.
	gen uint16

	// farthest-failure tracking: a small dedup slice (not a map) because
	// fail() runs on every mismatched terminal — the hottest path in the
	// parser.
	failPos      int
	failExpected []string
	// suppress failure recording inside predicates (their failures are
	// expected behaviour).
	quiet int

	// hook, when non-nil, receives parse events (see hooks.go): the
	// seam the trace and the profiler plug into. Costs one predictable
	// nil check per event site when disabled.
	hook Hook

	// Resource governance (limits.go), armed by ParseContext and reset
	// to the open defaults by begin. On the ungoverned path these cost
	// one predictable comparison per governed edge and nothing on the
	// per-terminal hot path.
	ctx        context.Context // non-nil only when cancellation is possible
	deadline   time.Time       // zero when no deadline applies
	timeBudget time.Duration   // configured MaxParseDuration (diagnostics)
	timed      bool            // poll the clock/context on governance edges
	maxDepth   int             // call-depth budget (noLimit when unlimited)
	memoBudget int             // memo-bytes budget (noLimit when unlimited)
	strict     bool            // hard-fail instead of shedding memoization
	depth      int             // current production-call nesting
	memoUsed   int             // modeled memo bytes charged so far
	shed       bool            // memoization shed after a budget hit
	poll       int             // countdown to the next clock/context poll

	// used marks a parser that has begun at least one parse, so begin
	// can count warm rewinds (metrics.sessionResets) separately from
	// cold first parses.
	used bool

	// telemetry records whether this parse was captured by the registry
	// histograms (latched from the process toggle at begin so a parse
	// straddling a SetTelemetry flip stays internally consistent);
	// started is its wall-clock start for the latency histogram.
	telemetry bool
	started   time.Time

	// sampler is the profiler a sampled checkout borrowed (sample.go):
	// acquire installs it 1-in-N, begin wires it in as the hook, and
	// release folds it into the label's rolling profile. sampledParses
	// counts the begins it observed within this checkout.
	sampler       *Profiler
	sampledParses int64
	// traceID is the W3C trace ID of a traced parse
	// (ParseContextTraced); finishStats records it as a latency-bucket
	// exemplar. Empty (reset by begin) for untraced parses.
	traceID string
}

// maxExpected caps the recorded expectation set.
const maxExpected = 16

// Parse runs the program over src, requiring the root production to match
// and to consume the whole input. It returns the semantic value and the
// parse statistics.
//
// Parse draws its Parser from an internal pool, so a hot loop of parses
// reaches a steady state with no parser-machinery allocations; see
// NewSession for the explicitly managed variant. Parse is safe to call
// from multiple goroutines: the Program itself is read-only after Compile
// and every call works on its own pooled Parser.
func (p *Program) Parse(src *text.Source) (ast.Value, Stats, error) {
	ps := p.acquire()
	ps.begin(src)
	val, err := ps.run()
	stats := ps.stats
	p.release(ps)
	return val, stats, err
}

// ParseWithTrace is Parse with a human-readable call trace streamed to w:
// one line per production entry, exit, and memo hit, indented by call
// depth. Intended for grammar debugging, not production use. The trace
// is an event hook (see Hook); ParseWithHook installs any other.
func (p *Program) ParseWithTrace(src *text.Source, w io.Writer) (ast.Value, Stats, error) {
	return p.ParseWithHook(src, newTraceHook(p, w))
}

// ParsePrefix runs the program over src, requiring the root production to
// match at position 0 but not to consume the whole input. It returns the
// value, the number of bytes consumed, and the statistics.
func (p *Program) ParsePrefix(src *text.Source) (ast.Value, int, Stats, error) {
	ps := p.acquire()
	ps.begin(src)
	val, end, err := ps.runPrefix()
	stats := ps.stats
	p.release(ps)
	return val, end, stats, err
}

// acquire returns a pooled Parser for p, making a fresh one when the pool
// is empty.
func (p *Program) acquire() *Parser {
	metrics.poolGets.Add(1)
	ps, ok := p.pool.Get().(*Parser)
	if !ok {
		metrics.poolNews.Add(1)
		ps = &Parser{prog: p}
	}
	// Sampled-profiling decision (sample.go): one atomic load when
	// sampling is off; when on, every n-th checkout borrows a profiler
	// that begin installs as the parse hook.
	if n := p.sampleEvery.Load(); n > 0 && p.sampleTick.Add(1)%n == 0 {
		ps.sampler = p.sampledProfiler()
	}
	return ps
}

// release returns ps to the pool. The parser keeps its arenas (and,
// until its next begin, references to the last parse's memoized values);
// the pool drops idle parsers on GC, bounding that retention.
func (p *Program) release(ps *Parser) {
	ps.hook = nil
	if ps.sampler != nil {
		p.finishSample(ps.sampler, ps.sampledParses)
		ps.sampler = nil
		ps.sampledParses = 0
	}
	p.pool.Put(ps)
}

// begin rewinds the parser for a new input: statistics and failure state
// are reset, the memo arenas are recycled, and the chunk-directory window
// used by the previous parse is cleared so no stale entry survives.
func (ps *Parser) begin(src *text.Source) {
	metrics.parsesStarted.Add(1)
	if ps.used {
		metrics.sessionResets.Add(1)
	}
	ps.used = true
	ps.src = src
	ps.in = src.Content()
	ps.stats = Stats{}
	ps.failPos = -1
	ps.failExpected = ps.failExpected[:0]
	ps.quiet = 0
	ps.hook = nil
	if ps.sampler != nil {
		// A sampled checkout profiles every parse it serves; callers
		// that install their own hook after begin override this for
		// that parse (the rolling profile just sees less).
		ps.hook = ps.sampler
		ps.sampledParses++
	}
	ps.traceID = ""
	ps.examined = 0
	ps.gen = 0
	ps.beginTelemetry()
	ps.disarm()
	// Drop value references parked in the scratch stack's capacity.
	scratch := ps.scratch[:cap(ps.scratch)]
	clear(scratch)
	ps.scratch = ps.scratch[:0]
	if !ps.prog.opts.Memoize {
		return
	}
	// Lookahead watermarks start fresh with the memo table; incremental
	// reparses keep both (beginIncremental in incremental.go).
	if n := ps.prog.memoCols; n > 0 {
		if cap(ps.prodLook) >= n {
			ps.prodLook = ps.prodLook[:n]
			clear(ps.prodLook)
		} else {
			ps.prodLook = make([]int32, n)
		}
	}
	if ps.prog.opts.ChunkedMemo {
		ps.chunkCount = (ps.prog.memoCols + chunkSize - 1) / chunkSize
		ps.chunkArena.reset()
		ps.rowArena.reset()
		// len(ps.chunks) is exactly the previous parse's window; clearing
		// it removes every row pointer that parse installed.
		clear(ps.chunks)
		n := len(ps.in) + 1
		if cap(ps.chunks) >= n {
			ps.chunks = ps.chunks[:n]
		} else {
			ps.chunks = make([][]*memoChunk, n)
		}
	} else {
		if ps.memoMap == nil {
			ps.memoMap = make(map[int64]memoEntry)
		}
		clear(ps.memoMap)
	}
}

// enterRoot starts the root production, selecting the execution
// engine: the closure-threaded compiled form when the program carries
// one and no event hook is installed, the node-tree interpreter
// otherwise (hooks need the per-production enter/exit seam only the
// interpreter has). Both lowerings of a program are observationally
// identical, so the choice is invisible to callers.
func (ps *Parser) enterRoot(pos int) (int, ast.Value, bool) {
	if code := ps.prog.code; code != nil && ps.hook == nil {
		return code.root(ps, pos)
	}
	return ps.parseProd(ps.prog.root, pos)
}

func (ps *Parser) run() (val ast.Value, err error) {
	defer ps.contain(&val, &err)
	end, val, ok := ps.enterRoot(0)
	if !ok {
		return nil, ps.syntaxError()
	}
	if end != len(ps.in) {
		if end > ps.failPos {
			ps.failPos = end
			ps.failExpected = append(ps.failExpected[:0], "end of input")
		}
		return nil, ps.syntaxError()
	}
	ps.finishStats()
	metrics.parsesCompleted.Add(1)
	if g := ps.grammarTally(); g != nil {
		g.completed.Add(1)
	}
	return val, nil
}

func (ps *Parser) runPrefix() (val ast.Value, end int, err error) {
	defer ps.contain(&val, &err)
	end, val, ok := ps.enterRoot(0)
	if !ok {
		return nil, 0, ps.syntaxError()
	}
	ps.finishStats()
	metrics.parsesCompleted.Add(1)
	if g := ps.grammarTally(); g != nil {
		g.completed.Add(1)
	}
	return val, end, nil
}

// beginTelemetry latches the process telemetry toggle for this parse
// and records its start: the input-size histogram and the per-grammar
// started/input-bytes counters fire here, the latency histogram and the
// outcome counters at the parse's single exit funnel (finishStats and
// the outcome sites around it). Atomic adds only — no allocation.
func (ps *Parser) beginTelemetry() {
	ps.telemetry = telemetryEnabled.Load()
	if !ps.telemetry {
		return
	}
	ps.started = time.Now()
	metrics.inputSize.observe(int64(len(ps.in)))
	if g := ps.prog.gstats.Load(); g != nil {
		g.started.Add(1)
		g.inputBytes.Add(int64(len(ps.in)))
	}
}

// grammarTally returns the per-grammar counter set when telemetry
// captured this parse, nil otherwise.
func (ps *Parser) grammarTally() *grammarStats {
	if !ps.telemetry {
		return nil
	}
	return ps.prog.gstats.Load()
}

// finishStats is the single per-parse exit funnel: every parse — run
// and runPrefix successes, syntax errors, limit stops, and contained
// panics — crosses it exactly once, so the latency histogram is
// observed here.
func (ps *Parser) finishStats() {
	// See the memo footprint model above memoEntrySize/mapEntryBytes.
	ps.stats.MemoBytes = ps.stats.ChunksAllocated*chunkSize*memoEntrySize +
		ps.stats.ChunkRows*ps.chunkCount*8 +
		len(ps.memoMap)*mapEntryBytes
	metrics.observePeakMemo(int64(ps.stats.MemoBytes))
	if ps.telemetry {
		d := int64(time.Since(ps.started))
		metrics.parseDuration.observe(d)
		if ps.traceID != "" {
			metrics.parseDuration.exemplar(d, ps.traceID, ps.prog.Label())
		}
	}
}

func (ps *Parser) syntaxError() error {
	ps.finishStats()
	metrics.parsesFailed.Add(1)
	if g := ps.grammarTally(); g != nil {
		g.failed.Add(1)
	}
	pos := ps.failPos
	if pos < 0 {
		pos = 0
	}
	expected := append([]string(nil), ps.failExpected...)
	sort.Strings(expected)
	if len(expected) > 8 {
		expected = expected[:8]
	}
	return &ParseError{Src: ps.src, Pos: text.Pos(pos), Expected: expected}
}

// note records that the current evaluation examined input up to (but not
// including) end — matched or merely peeked. Probes that run into the end
// of input pass an end one past the input length, so outcomes that
// depended on where the input stopped are examined-region facts too
// (appending text then correctly invalidates them). The mark is monotone
// within a parseProd frame; the frame turns it into prodLook watermarks.
func (ps *Parser) note(end int) {
	if end > ps.examined {
		ps.examined = end
	}
}

// fail records a failure at pos expecting the given description.
func (ps *Parser) fail(pos int, what string) {
	// The backtrack edge: every failed literal, class, predicate, or
	// production crosses this function, and adversarial exponential
	// inputs spend nearly all their time failing matches — so a timed
	// parse polls the clock and context here (see pollEdge). The poll
	// runs before the quiet/farthest-position early returns: suppressed
	// failures are still work.
	if ps.timed {
		ps.pollEdge(pos)
	}
	if ps.quiet > 0 || pos < ps.failPos {
		return
	}
	if pos > ps.failPos {
		ps.failPos = pos
		ps.failExpected = ps.failExpected[:0]
	}
	if len(ps.failExpected) >= maxExpected {
		return
	}
	for _, e := range ps.failExpected {
		if e == what {
			return
		}
	}
	ps.failExpected = append(ps.failExpected, what)
}

// parseProd invokes production prod at pos, consulting the memo table.
func (ps *Parser) parseProd(prod, pos int) (int, ast.Value, bool) {
	info := &ps.prog.prods[prod]

	// First-byte dispatch: fail fast without touching the memo table.
	// Accepted or not, the decision read the byte at pos (or the end of
	// input), so the caller's examined region covers it.
	if ps.prog.opts.Dispatch && info.firstOK {
		ps.note(pos + 1)
		if pos >= len(ps.in) || !info.first.Has(ps.in[pos]) {
			ps.stats.DispatchSkips++
			if ps.hook != nil {
				ps.hook.OnFail(prod, pos)
			}
			ps.fail(pos, info.display)
			return 0, nil, false
		}
	}

	col := info.memoCol
	if col >= 0 {
		if e, ok := ps.memoLoad(pos, col); ok {
			ps.stats.MemoHits++
			if e.gen != ps.gen {
				ps.stats.MemoReused++
			}
			end := pos + int(e.len)
			// The memoized evaluation examined at most its match extent
			// plus the production's lookahead watermark; propagate that to
			// the caller's examined region.
			ps.note(end + int(ps.prodLook[col]))
			if ps.hook != nil {
				ps.hook.OnMemoHit(prod, pos, end, e.state == memoOK)
			}
			if e.state == memoFail {
				ps.fail(pos, info.display)
				return 0, nil, false
			}
			return end, e.val, true
		}
		ps.stats.MemoMisses++
	}

	ps.stats.Calls++
	ps.depth++
	if ps.depth > ps.maxDepth {
		panic(&LimitError{Kind: LimitDepth, Limit: int64(ps.maxDepth),
			Actual: int64(ps.depth), Pos: pos})
	}
	if ps.hook != nil {
		ps.hook.OnEnter(prod, pos)
	}
	// Frame the examined high-water mark so this invocation's extent can
	// be read off after eval; the caller's own mark is restored (merged)
	// below. Backtracking callers may re-enter at an earlier pos, so the
	// saved mark can exceed the frame's.
	saveExamined := ps.examined
	ps.examined = pos
	end, val, ok := ps.eval(info.body, pos)
	examined := ps.examined
	if saveExamined > examined {
		ps.examined = saveExamined
	}
	ps.depth--
	if ps.hook != nil {
		ps.hook.OnExit(prod, pos, end, ok)
	}
	if ok {
		switch info.kind {
		case valText:
			val = ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end)))
		case valVoid:
			val = nil
		default:
			if n, isNode := val.(*ast.Node); isNode && n != nil && !n.Span.IsValid() {
				n.Span = text.NewSpan(text.Pos(pos), text.Pos(end))
			}
		}
	}

	if col >= 0 {
		// Record how far past its match (past its start, when failing)
		// this invocation read — the production's lookahead watermark.
		matchEnd := pos
		if ok {
			matchEnd = end
		}
		if extra := examined - matchEnd; extra > int(ps.prodLook[col]) {
			ps.prodLook[col] = int32(extra)
		}
		if !ps.shed {
			e := memoEntry{state: memoFail, gen: ps.gen}
			if ok {
				e = memoEntry{state: memoOK, gen: ps.gen, len: int32(end - pos), val: val}
			}
			if ps.memoStore(pos, col, e) {
				ps.stats.MemoStores++
			}
		}
	}
	if !ok {
		ps.fail(pos, info.display)
		return 0, nil, false
	}
	if end > ps.stats.MaxPos {
		ps.stats.MaxPos = end
	}
	return end, val, true
}

func (ps *Parser) memoLoad(pos, col int) (memoEntry, bool) {
	if ps.chunks != nil {
		row := ps.chunks[pos]
		if row == nil {
			return memoEntry{}, false
		}
		chunk := row[col/chunkSize]
		if chunk == nil {
			return memoEntry{}, false
		}
		e := chunk[col%chunkSize]
		return e, e.state != memoEmpty
	}
	e, ok := ps.memoMap[int64(pos)*int64(ps.prog.memoCols)+int64(col)]
	return e, ok
}

// memoStore records e for (pos, col) and reports whether it was stored.
// The chunk-allocation edges — a new directory row or a new chunk, and
// every map insert — are where the memo table grows, so they charge the
// memo budget and carry the governance poll; a budget hit sheds
// memoization and drops the entry.
func (ps *Parser) memoStore(pos, col int, e memoEntry) bool {
	if ps.chunks != nil {
		row := ps.chunks[pos]
		if row == nil {
			if !ps.chargeMemo(ps.chunkCount*8, pos) {
				return false
			}
			row = ps.rowArena.alloc(ps.chunkCount)
			ps.chunks[pos] = row
			ps.stats.ChunkRows++
		}
		chunk := row[col/chunkSize]
		if chunk == nil {
			if !ps.chargeMemo(chunkSize*memoEntrySize, pos) {
				return false
			}
			chunk = ps.chunkArena.alloc()
			row[col/chunkSize] = chunk
			ps.stats.ChunksAllocated++
		}
		chunk[col%chunkSize] = e
		return true
	}
	if !ps.chargeMemo(mapEntryBytes, pos) {
		return false
	}
	ps.memoMap[int64(pos)*int64(ps.prog.memoCols)+int64(col)] = e
	return true
}

// eval interprets a compiled node at pos, returning the end position, the
// semantic value, and success.
func (ps *Parser) eval(n node, pos int) (int, ast.Value, bool) {
	switch n := n.(type) {
	case nEmpty:
		return pos, nil, true

	case nLit:
		end := pos + len(n.text)
		ps.note(end)
		if end > len(ps.in) || ps.in[pos:end] != n.text {
			ps.fail(pos, n.display)
			return 0, nil, false
		}
		return end, nil, true

	case *nClass:
		ps.note(pos + 1)
		if pos >= len(ps.in) || !n.set.Has(ps.in[pos]) {
			ps.fail(pos, "character class")
			return 0, nil, false
		}
		if n.void {
			return pos + 1, nil, true
		}
		return pos + 1, ps.values.newToken(ps.in[pos:pos+1], text.NewSpan(text.Pos(pos), text.Pos(pos+1))), true

	case *nScanClass:
		// One frame for the whole run. The byte that stops the scan (or
		// the end-of-input probe) is examined input, and it records the
		// same failure the last per-byte class attempt would have — so
		// watermarks, error text, and farthest-failure positions are
		// identical to the unfused repetition.
		cur := pos
		if n.stopOK {
			if i := strings.IndexByte(ps.in[cur:], n.stop); i >= 0 {
				cur += i
			} else {
				cur = len(ps.in)
			}
		} else {
			for cur < len(ps.in) && n.set.Has(ps.in[cur]) {
				cur++
			}
		}
		ps.note(cur + 1)
		ps.fail(cur, "character class")
		if cur-pos < n.min {
			return 0, nil, false
		}
		return cur, nil, true

	case *nScanLit:
		cur := pos
		count := 0
		for {
			end := cur + len(n.text)
			ps.note(end)
			if end > len(ps.in) || ps.in[cur:end] != n.text {
				ps.fail(cur, n.display)
				break
			}
			cur = end
			count++
		}
		if count < n.min {
			return 0, nil, false
		}
		return cur, nil, true

	case nAny:
		ps.note(pos + 1)
		if pos >= len(ps.in) {
			ps.fail(pos, "any character")
			return 0, nil, false
		}
		if n.void {
			return pos + 1, nil, true
		}
		return pos + 1, ps.values.newToken(ps.in[pos:pos+1], text.NewSpan(text.Pos(pos), text.Pos(pos+1))), true

	case nCall:
		return ps.parseProd(n.prod, pos)

	case *nCapture:
		end, _, ok := ps.eval(n.body, pos)
		if !ok {
			return 0, nil, false
		}
		return end, ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end))), true

	case *nAnd:
		ps.quiet++
		_, _, ok := ps.eval(n.body, pos)
		ps.quiet--
		if !ok {
			ps.fail(pos, "lookahead")
			return 0, nil, false
		}
		return pos, nil, true

	case *nNot:
		ps.quiet++
		_, _, ok := ps.eval(n.body, pos)
		ps.quiet--
		if ok {
			ps.fail(pos, "negative lookahead")
			return 0, nil, false
		}
		return pos, nil, true

	case *nOpt:
		end, val, ok := ps.eval(n.body, pos)
		if !ok {
			return pos, nil, true
		}
		if n.void {
			return end, nil, true
		}
		return end, val, true

	case *nRepeat:
		cur := pos
		count := 0
		if n.void {
			for {
				end, _, ok := ps.eval(n.body, cur)
				if !ok {
					break
				}
				cur = end
				count++
			}
			if count < n.min {
				return 0, nil, false
			}
			return cur, nil, true
		}
		base := len(ps.scratch)
		for {
			end, val, ok := ps.eval(n.body, cur)
			if !ok {
				break
			}
			cur = end
			count++
			if val != nil {
				ps.scratch = append(ps.scratch, val)
			}
		}
		if count < n.min {
			ps.scratch = ps.scratch[:base]
			return 0, nil, false
		}
		list := ast.List(ps.values.copyVals(ps.scratch[base:]))
		ps.scratch = ps.scratch[:base]
		if list == nil {
			list = ast.List{}
		}
		return cur, list, true

	case *nSeq:
		return ps.evalSeq(n, pos)

	case *nChoice:
		if n.tbl != nil {
			// First-set pruning: one probe selects the alternatives worth
			// trying for the next byte; the rest are skipped without a
			// frame. Reading the byte (or probing the end of input) is an
			// examined-region fact either way.
			ps.note(pos + 1)
			mask := n.tbl.eof
			if pos < len(ps.in) {
				mask = n.tbl.masks[ps.in[pos]]
			}
			if skipped := mask ^ n.tbl.all; skipped != 0 {
				ps.stats.DispatchSkips += bits.OnesCount64(skipped)
			}
			for m := mask; m != 0; m &= m - 1 {
				alt := &n.alts[bits.TrailingZeros64(m)]
				if end, val, ok := ps.eval(alt.n, pos); ok {
					return end, val, true
				}
			}
			return 0, nil, false
		}
		var b byte
		haveByte := pos < len(ps.in)
		if haveByte {
			b = ps.in[pos]
		}
		for i := range n.alts {
			alt := &n.alts[i]
			if alt.dispatchOK {
				ps.note(pos + 1)
				if !haveByte || !alt.first.Has(b) {
					ps.stats.DispatchSkips++
					continue
				}
			}
			if end, val, ok := ps.eval(alt.n, pos); ok {
				return end, val, true
			}
		}
		return 0, nil, false

	case *nInline:
		// A PGO-inlined production call: parseProd minus the memo table,
		// the hooks, and the depth accounting. The dispatch fast-fail and
		// the failure record naming the production are preserved so error
		// reports match the memoized engine's.
		if ps.prog.opts.Dispatch && n.firstOK {
			ps.note(pos + 1)
			if pos >= len(ps.in) || !n.first.Has(ps.in[pos]) {
				ps.stats.DispatchSkips++
				ps.fail(pos, n.display)
				return 0, nil, false
			}
		}
		end, val, ok := ps.eval(n.body, pos)
		if !ok {
			ps.fail(pos, n.display)
			return 0, nil, false
		}
		switch n.kind {
		case valText:
			val = ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end)))
		case valVoid:
			val = nil
		default:
			if nd, isNode := val.(*ast.Node); isNode && nd != nil && !nd.Span.IsValid() {
				nd.Span = text.NewSpan(text.Pos(pos), text.Pos(end))
			}
		}
		return end, val, true

	case *nLeftRec:
		end, acc, ok := ps.eval(n.seed, pos)
		if !ok {
			return 0, nil, false
		}
	grow:
		for {
			for i := range n.suffixes {
				s := &n.suffixes[i]
				nend, base, ok := ps.evalSeqItems(s, end)
				if !ok {
					continue
				}
				acc = ps.foldLeft(acc, s.ctor, base, pos, nend)
				ps.scratch = ps.scratch[:base]
				end = nend
				continue grow
			}
			break
		}
		if n.void {
			return end, nil, true
		}
		return end, acc, true

	default:
		panic(fmt.Sprintf("vm: unknown node %T", n))
	}
}

// evalSeq evaluates a sequence and builds its value per the sequence rules.
func (ps *Parser) evalSeq(n *nSeq, pos int) (int, ast.Value, bool) {
	end, base, ok := ps.evalSeqItems(n, pos)
	if !ok {
		return 0, nil, false
	}
	if n.void {
		return end, nil, true
	}
	v := ps.seqValue(n, base, pos, end)
	ps.scratch = ps.scratch[:base]
	return end, v, true
}

// evalSeqItems matches the items of a sequence, pushing the values that
// participate in the sequence's result (bound values verbatim under a
// binding constructor, non-nil values otherwise; splice sequences build a
// flat list) onto the scratch stack. It returns the end position and the
// stack base mark; the caller reads ps.scratch[base:] and must truncate
// back to base. On failure the stack is already truncated.
func (ps *Parser) evalSeqItems(n *nSeq, pos int) (int, int, bool) {
	base := len(ps.scratch)
	cur := pos
	for i := range n.items {
		it := &n.items[i]
		end, val, ok := ps.eval(it.n, cur)
		if !ok {
			ps.scratch = ps.scratch[:base]
			return 0, base, false
		}
		cur = end
		if n.void {
			continue
		}
		if n.splice {
			switch it.role {
			case roleHead:
				if val != nil {
					ps.scratch = append(ps.scratch, val)
				}
			case roleTail:
				if l, isList := val.(ast.List); isList {
					ps.scratch = append(ps.scratch, l...)
				}
			}
			continue
		}
		if n.ctor != "" && n.hasBind {
			if it.bound {
				ps.scratch = append(ps.scratch, val)
			}
		} else if val != nil {
			ps.scratch = append(ps.scratch, val)
		}
	}
	return cur, base, true
}

// seqValue assembles a sequence's semantic value from the item values at
// ps.scratch[base:], copying them out of the scratch stack at their final
// size. The caller truncates the stack.
func (ps *Parser) seqValue(n *nSeq, base, start, end int) ast.Value {
	vals := ps.scratch[base:]
	if n.splice {
		out := ps.values.copyVals(vals)
		if out == nil {
			out = []ast.Value{}
		}
		return ast.List(out)
	}
	if n.ctor != "" {
		return ps.values.newNode(n.ctor, ps.values.copyVals(vals),
			text.NewSpan(text.Pos(start), text.Pos(end)))
	}
	switch len(vals) {
	case 0:
		return nil
	case 1:
		return vals[0]
	default:
		return ast.List(ps.values.copyVals(vals))
	}
}

// foldLeft folds one left-recursion suffix match (its values at
// ps.scratch[base:]) into the accumulated value. The caller truncates the
// stack.
func (ps *Parser) foldLeft(acc ast.Value, ctor string, base, start, end int) ast.Value {
	vals := ps.scratch[base:]
	if ctor != "" {
		children := ps.values.carve(len(vals) + 1)
		children[0] = acc
		copy(children[1:], vals)
		return ps.values.newNode(ctor, children,
			text.NewSpan(text.Pos(start), text.Pos(end)))
	}
	if len(vals) == 0 {
		return acc
	}
	out := ps.values.carve(len(vals) + 1)
	out[0] = acc
	copy(out[1:], vals)
	return ast.List(out)
}
