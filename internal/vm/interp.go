package vm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// Stats reports what one parse did — the raw material of the paper's
// time/space tables.
type Stats struct {
	// Calls counts production invocations (after dispatch fast-fails).
	Calls int
	// DispatchSkips counts calls and alternatives skipped by first-byte
	// dispatch.
	DispatchSkips int
	// MemoHits/MemoMisses/MemoStores count memo table activity.
	MemoHits   int
	MemoMisses int
	MemoStores int
	// ChunksAllocated counts lazily allocated memo chunks (chunked layout).
	ChunksAllocated int
	// ChunkRows counts positions that allocated a chunk directory.
	ChunkRows int
	// MemoBytes estimates the memo table's heap footprint in bytes.
	MemoBytes int
	// MaxPos is the rightmost input position reached.
	MaxPos int
}

func (s Stats) String() string {
	return fmt.Sprintf("calls=%d hits=%d misses=%d stores=%d skips=%d chunks=%d memoBytes=%d maxPos=%d",
		s.Calls, s.MemoHits, s.MemoMisses, s.MemoStores, s.DispatchSkips,
		s.ChunksAllocated, s.MemoBytes, s.MaxPos)
}

// ParseError describes a failed parse with the farthest failure heuristic:
// the position the parser got stuck at and the terminals/productions it
// tried there.
type ParseError struct {
	Src      *text.Source
	Pos      text.Pos
	Expected []string
}

func (e *ParseError) Error() string {
	loc := e.Src.Location(e.Pos)
	found := "end of input"
	if int(e.Pos) < e.Src.Len() {
		found = fmt.Sprintf("%q", e.Src.Content()[e.Pos])
	}
	msg := fmt.Sprintf("%s: syntax error: unexpected %s", loc, found)
	if len(e.Expected) > 0 {
		msg += ", expected " + strings.Join(e.Expected, " or ")
	}
	return msg
}

// Detail renders the error with a quoted source line.
func (e *ParseError) Detail() string {
	return e.Error() + "\n" + e.Src.Quote(text.NewSpan(e.Pos, e.Pos+1))
}

// memoEntry is one memoized outcome. state distinguishes empty slots from
// stored failures and successes.
type memoEntry struct {
	state uint8 // 0 empty, 1 fail, 2 success
	end   int32
	val   ast.Value
}

const (
	memoEmpty uint8 = iota
	memoFail
	memoOK
)

// memoEntrySize approximates the heap footprint of one entry (state+end,
// padding, and the two-word interface value).
const memoEntrySize = 24

// mapEntryOverhead approximates a hash map cell (key + entry + bucket
// overhead) for the map-based layout.
const mapEntryOverhead = 48

// chunkSize is the number of memo columns grouped into one lazily
// allocated chunk — the Rats! chunk optimization: positions pay only for
// the column groups actually probed there, not the whole production set.
const chunkSize = 8

// memoChunk is one group of memo entries.
type memoChunk [chunkSize]memoEntry

// Parser executes one Program over one input. A Parser is single-use and
// not safe for concurrent use; create one per parse (Program.Parse does).
type Parser struct {
	prog  *Program
	src   *text.Source
	in    string
	stats Stats

	// chunked memo: per position, a lazily allocated directory of lazily
	// allocated chunks of chunkSize columns each.
	chunks     [][]*memoChunk
	chunkCount int // chunks per position: ceil(memoCols / chunkSize)
	// map memo keyed by position*memoCols + column.
	memoMap map[int64]memoEntry

	// farthest-failure tracking: a small dedup slice (not a map) because
	// fail() runs on every mismatched terminal — the hottest path in the
	// parser.
	failPos      int
	failExpected []string
	// suppress failure recording inside predicates (their failures are
	// expected behaviour).
	quiet int

	// trace, when non-nil, receives one line per production entry and
	// exit (the debugging aid; costs nothing when nil).
	trace      io.Writer
	traceDepth int
}

// maxExpected caps the recorded expectation set.
const maxExpected = 16

// Parse runs the program over src, requiring the root production to match
// and to consume the whole input. It returns the semantic value and the
// parse statistics.
func (p *Program) Parse(src *text.Source) (ast.Value, Stats, error) {
	ps := newParser(p, src)
	val, err := ps.run()
	return val, ps.stats, err
}

// ParseWithTrace is Parse with a human-readable call trace streamed to w:
// one line per production entry, exit, and memo hit, indented by call
// depth. Intended for grammar debugging, not production use.
func (p *Program) ParseWithTrace(src *text.Source, w io.Writer) (ast.Value, Stats, error) {
	ps := newParser(p, src)
	ps.trace = w
	val, err := ps.run()
	return val, ps.stats, err
}

// ParsePrefix runs the program over src, requiring the root production to
// match at position 0 but not to consume the whole input. It returns the
// value, the number of bytes consumed, and the statistics.
func (p *Program) ParsePrefix(src *text.Source) (ast.Value, int, Stats, error) {
	ps := newParser(p, src)
	end, val, ok := ps.parseProd(p.root, 0)
	if !ok {
		return nil, 0, ps.stats, ps.syntaxError()
	}
	ps.finishStats()
	return val, end, ps.stats, nil
}

func newParser(p *Program, src *text.Source) *Parser {
	ps := &Parser{
		prog:    p,
		src:     src,
		in:      src.Content(),
		failPos: -1,
	}
	if p.opts.Memoize {
		if p.opts.ChunkedMemo {
			ps.chunkCount = (p.memoCols + chunkSize - 1) / chunkSize
			ps.chunks = make([][]*memoChunk, len(ps.in)+1)
		} else {
			ps.memoMap = make(map[int64]memoEntry)
		}
	}
	return ps
}

func (ps *Parser) run() (ast.Value, error) {
	end, val, ok := ps.parseProd(ps.prog.root, 0)
	if !ok {
		return nil, ps.syntaxError()
	}
	if end != len(ps.in) {
		if end > ps.failPos {
			ps.failPos = end
			ps.failExpected = []string{"end of input"}
		}
		return nil, ps.syntaxError()
	}
	ps.finishStats()
	return val, nil
}

func (ps *Parser) finishStats() {
	// Chunk bytes: the entries themselves plus the per-position chunk
	// directories (one pointer per chunk slot).
	ps.stats.MemoBytes = ps.stats.ChunksAllocated*chunkSize*memoEntrySize +
		ps.stats.ChunkRows*ps.chunkCount*8 +
		len(ps.memoMap)*mapEntryOverhead
}

func (ps *Parser) syntaxError() error {
	ps.finishStats()
	pos := ps.failPos
	if pos < 0 {
		pos = 0
	}
	expected := append([]string(nil), ps.failExpected...)
	sort.Strings(expected)
	if len(expected) > 8 {
		expected = expected[:8]
	}
	return &ParseError{Src: ps.src, Pos: text.Pos(pos), Expected: expected}
}

// fail records a failure at pos expecting the given description.
func (ps *Parser) fail(pos int, what string) {
	if ps.quiet > 0 || pos < ps.failPos {
		return
	}
	if pos > ps.failPos {
		ps.failPos = pos
		ps.failExpected = ps.failExpected[:0]
	}
	if len(ps.failExpected) >= maxExpected {
		return
	}
	for _, e := range ps.failExpected {
		if e == what {
			return
		}
	}
	ps.failExpected = append(ps.failExpected, what)
}

// traceLine emits one indented trace line.
func (ps *Parser) traceLine(format string, args ...any) {
	fmt.Fprintf(ps.trace, "%s", strings.Repeat("  ", ps.traceDepth))
	fmt.Fprintf(ps.trace, format, args...)
	fmt.Fprintln(ps.trace)
}

// parseProd invokes production prod at pos, consulting the memo table.
func (ps *Parser) parseProd(prod, pos int) (int, ast.Value, bool) {
	info := &ps.prog.prods[prod]

	// First-byte dispatch: fail fast without touching the memo table.
	if ps.prog.opts.Dispatch && info.firstOK {
		if pos >= len(ps.in) || !info.first.Has(ps.in[pos]) {
			ps.stats.DispatchSkips++
			ps.fail(pos, info.display)
			return 0, nil, false
		}
	}

	col := info.memoCol
	if col >= 0 {
		if e, ok := ps.memoLoad(pos, col); ok {
			ps.stats.MemoHits++
			if ps.trace != nil {
				outcome := "memo-fail"
				if e.state == memoOK {
					outcome = fmt.Sprintf("memo-hit -> %d", e.end)
				}
				ps.traceLine("%s @%d: %s", info.display, pos, outcome)
			}
			if e.state == memoFail {
				ps.fail(pos, info.display)
				return 0, nil, false
			}
			return int(e.end), e.val, true
		}
		ps.stats.MemoMisses++
	}

	ps.stats.Calls++
	if ps.trace != nil {
		ps.traceLine("%s @%d {", info.display, pos)
		ps.traceDepth++
	}
	end, val, ok := ps.eval(info.body, pos)
	if ps.trace != nil {
		ps.traceDepth--
		if ok {
			ps.traceLine("} %s @%d -> %d", info.display, pos, end)
		} else {
			ps.traceLine("} %s @%d -> fail", info.display, pos)
		}
	}
	if ok {
		switch info.kind {
		case valText:
			val = ast.NewToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end)))
		case valVoid:
			val = nil
		default:
			if n, isNode := val.(*ast.Node); isNode && n != nil && !n.Span.IsValid() {
				n.Span = text.NewSpan(text.Pos(pos), text.Pos(end))
			}
		}
	}

	if col >= 0 {
		e := memoEntry{state: memoFail}
		if ok {
			e = memoEntry{state: memoOK, end: int32(end), val: val}
		}
		ps.memoStore(pos, col, e)
		ps.stats.MemoStores++
	}
	if !ok {
		ps.fail(pos, info.display)
		return 0, nil, false
	}
	if end > ps.stats.MaxPos {
		ps.stats.MaxPos = end
	}
	return end, val, true
}

func (ps *Parser) memoLoad(pos, col int) (memoEntry, bool) {
	if ps.chunks != nil {
		row := ps.chunks[pos]
		if row == nil {
			return memoEntry{}, false
		}
		chunk := row[col/chunkSize]
		if chunk == nil {
			return memoEntry{}, false
		}
		e := chunk[col%chunkSize]
		return e, e.state != memoEmpty
	}
	e, ok := ps.memoMap[int64(pos)*int64(ps.prog.memoCols)+int64(col)]
	return e, ok
}

func (ps *Parser) memoStore(pos, col int, e memoEntry) {
	if ps.chunks != nil {
		row := ps.chunks[pos]
		if row == nil {
			row = make([]*memoChunk, ps.chunkCount)
			ps.chunks[pos] = row
			ps.stats.ChunkRows++
		}
		chunk := row[col/chunkSize]
		if chunk == nil {
			chunk = new(memoChunk)
			row[col/chunkSize] = chunk
			ps.stats.ChunksAllocated++
		}
		chunk[col%chunkSize] = e
		return
	}
	ps.memoMap[int64(pos)*int64(ps.prog.memoCols)+int64(col)] = e
}

// eval interprets a compiled node at pos, returning the end position, the
// semantic value, and success.
func (ps *Parser) eval(n node, pos int) (int, ast.Value, bool) {
	switch n := n.(type) {
	case nEmpty:
		return pos, nil, true

	case nLit:
		end := pos + len(n.text)
		if end > len(ps.in) || ps.in[pos:end] != n.text {
			ps.fail(pos, n.display)
			return 0, nil, false
		}
		return end, nil, true

	case *nClass:
		if pos >= len(ps.in) || !n.tbl[ps.in[pos]] {
			ps.fail(pos, "character class")
			return 0, nil, false
		}
		if n.void {
			return pos + 1, nil, true
		}
		return pos + 1, ast.NewToken(ps.in[pos:pos+1], text.NewSpan(text.Pos(pos), text.Pos(pos+1))), true

	case nAny:
		if pos >= len(ps.in) {
			ps.fail(pos, "any character")
			return 0, nil, false
		}
		if n.void {
			return pos + 1, nil, true
		}
		return pos + 1, ast.NewToken(ps.in[pos:pos+1], text.NewSpan(text.Pos(pos), text.Pos(pos+1))), true

	case nCall:
		return ps.parseProd(n.prod, pos)

	case *nCapture:
		end, _, ok := ps.eval(n.body, pos)
		if !ok {
			return 0, nil, false
		}
		return end, ast.NewToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end))), true

	case *nAnd:
		ps.quiet++
		_, _, ok := ps.eval(n.body, pos)
		ps.quiet--
		if !ok {
			ps.fail(pos, "lookahead")
			return 0, nil, false
		}
		return pos, nil, true

	case *nNot:
		ps.quiet++
		_, _, ok := ps.eval(n.body, pos)
		ps.quiet--
		if ok {
			ps.fail(pos, "negative lookahead")
			return 0, nil, false
		}
		return pos, nil, true

	case *nOpt:
		end, val, ok := ps.eval(n.body, pos)
		if !ok {
			return pos, nil, true
		}
		if n.void {
			return end, nil, true
		}
		return end, val, true

	case *nRepeat:
		cur := pos
		var list ast.List
		count := 0
		for {
			end, val, ok := ps.eval(n.body, cur)
			if !ok {
				break
			}
			cur = end
			count++
			if !n.void && val != nil {
				list = append(list, val)
			}
		}
		if count < n.min {
			return 0, nil, false
		}
		if n.void {
			return cur, nil, true
		}
		if list == nil {
			list = ast.List{}
		}
		return cur, list, true

	case *nSeq:
		return ps.evalSeq(n, pos)

	case *nChoice:
		var b byte
		haveByte := pos < len(ps.in)
		if haveByte {
			b = ps.in[pos]
		}
		for i := range n.alts {
			alt := &n.alts[i]
			if alt.dispatchOK {
				if !haveByte || !alt.first.Has(b) {
					ps.stats.DispatchSkips++
					continue
				}
			}
			if end, val, ok := ps.eval(alt.n, pos); ok {
				return end, val, true
			}
		}
		return 0, nil, false

	case *nLeftRec:
		end, acc, ok := ps.eval(n.seed, pos)
		if !ok {
			return 0, nil, false
		}
	grow:
		for {
			for i := range n.suffixes {
				s := &n.suffixes[i]
				nend, vals, ok := ps.evalSeqItems(s, end)
				if !ok {
					continue
				}
				acc = foldLeft(acc, s, vals, pos, nend)
				end = nend
				continue grow
			}
			break
		}
		if n.void {
			return end, nil, true
		}
		return end, acc, true

	default:
		panic(fmt.Sprintf("vm: unknown node %T", n))
	}
}

// evalSeq evaluates a sequence and builds its value per the sequence rules.
func (ps *Parser) evalSeq(n *nSeq, pos int) (int, ast.Value, bool) {
	end, vals, ok := ps.evalSeqItems(n, pos)
	if !ok {
		return 0, nil, false
	}
	if n.void {
		return end, nil, true
	}
	return end, seqValue(n, vals, pos, end), true
}

// evalSeqItems matches the items of a sequence, collecting the values that
// participate in the sequence's result (bound values verbatim under a
// binding constructor, non-nil values otherwise; splice sequences build a
// flat list).
func (ps *Parser) evalSeqItems(n *nSeq, pos int) (int, []ast.Value, bool) {
	cur := pos
	var vals []ast.Value
	if n.splice {
		vals = ast.List{}
	}
	for i := range n.items {
		it := &n.items[i]
		end, val, ok := ps.eval(it.n, cur)
		if !ok {
			return 0, nil, false
		}
		cur = end
		if n.void {
			continue
		}
		if n.splice {
			switch it.role {
			case roleHead:
				if val != nil {
					vals = append(vals, val)
				}
			case roleTail:
				if l, isList := val.(ast.List); isList {
					vals = append(vals, l...)
				}
			}
			continue
		}
		if n.ctor != "" && n.hasBind {
			if it.bound {
				vals = append(vals, val)
			}
		} else if val != nil {
			vals = append(vals, val)
		}
	}
	return cur, vals, true
}

// seqValue assembles a sequence's semantic value from its collected item
// values.
func seqValue(n *nSeq, vals []ast.Value, start, end int) ast.Value {
	if n.splice {
		return ast.List(vals)
	}
	if n.ctor != "" {
		node := ast.NewNode(n.ctor, vals...)
		node.Span = text.NewSpan(text.Pos(start), text.Pos(end))
		return node
	}
	switch len(vals) {
	case 0:
		return nil
	case 1:
		return vals[0]
	default:
		return ast.List(vals)
	}
}

// foldLeft folds one left-recursion suffix match into the accumulated
// value.
func foldLeft(acc ast.Value, s *nSeq, vals []ast.Value, start, end int) ast.Value {
	if s.ctor != "" {
		children := append([]ast.Value{acc}, vals...)
		node := ast.NewNode(s.ctor, children...)
		node.Span = text.NewSpan(text.Pos(start), text.Pos(end))
		return node
	}
	if len(vals) == 0 {
		return acc
	}
	return ast.List(append([]ast.Value{acc}, vals...))
}
