package vm

// Closure-threaded compiled engine. Compile, when Options.Compiled is
// set, lowers the optimized node tree a second time: every node becomes
// a specialized Go closure of type opFunc, with its constant data
// (literal text, class bitmaps, dispatch tables, memo columns) captured
// in the closure environment. Execution then threads direct indirect
// calls instead of walking a type switch per node — the same
// interpretation the paper's generated parser compiles to Go source,
// available at runtime with no go toolchain (which is what lets the
// registry's hot-reloaded grammars opt in; see internal/registry).
//
// The closures run over the same Parser a node-tree interpretation
// uses: the same memo tables and arenas, the same examined-region
// watermarks (so incremental Document.Apply works unchanged), the same
// governance edges (fail polls the clock, memoStore charges the
// budget), and the same failure records — byte-identical error text is
// a tested invariant (internal/conformance's compiled lane,
// FuzzCompiledParse). Event hooks are the one seam the closures do not
// carry: a parse with a hook installed (trace, profiler) falls back to
// the node-tree interpreter, which every compiled program retains.

import (
	"math/bits"
	"strings"

	"modpeg/internal/analysis"
	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// opFunc is one compiled parsing expression: evaluate at pos, return
// the end position, the semantic value, and success. The contract is
// exactly eval's (interp.go) — the two lowerings of a node must be
// observationally identical, stats and failure records included.
type opFunc func(ps *Parser, pos int) (int, ast.Value, bool)

// compiledProgram is the closure form of a Program's productions.
type compiledProgram struct {
	// prods holds one entry closure per production, indexed like
	// Program.prods. nCall closures resolve through this slice at parse
	// time, which is what ties the mutual recursion: the slice is
	// filled after every call site has already captured it.
	prods []opFunc
	root  opFunc
}

// compileClosures lowers every production body of p into closures.
// Called at the end of Compile, after p.prods is fully built.
//
// Productions compile callees-first (reverse postorder over the call
// graph) so that most nCall sites can capture the callee's finished
// entry closure directly instead of a trampoline through the prods
// slice — only calls that close a cycle keep the indirection.
func compileClosures(p *Program) *compiledProgram {
	cp := &compiledProgram{prods: make([]opFunc, len(p.prods))}
	cc := &closureCompiler{prog: p, code: cp}
	for _, i := range calleeOrder(p) {
		cp.prods[i] = cc.compileProd(i)
	}
	cp.root = cp.prods[p.root]
	return cp
}

// calleeOrder returns production indices in an order that compiles
// callees before callers wherever the call graph allows (postorder of
// a depth-first walk from every production; back edges — recursion —
// are the only calls left unresolved when their caller compiles).
func calleeOrder(p *Program) []int {
	order := make([]int, 0, len(p.prods))
	state := make([]uint8, len(p.prods)) // 0 new, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return
		}
		state[i] = 1
		var walk func(n node)
		walk = func(n node) {
			switch n := n.(type) {
			case nCall:
				visit(n.prod)
			case *nCapture:
				walk(n.body)
			case *nAnd:
				walk(n.body)
			case *nNot:
				walk(n.body)
			case *nOpt:
				walk(n.body)
			case *nRepeat:
				walk(n.body)
			case *nInline:
				walk(n.body)
			case *nSeq:
				for i := range n.items {
					walk(n.items[i].n)
				}
			case *nChoice:
				for i := range n.alts {
					walk(n.alts[i].n)
				}
			case *nLeftRec:
				walk(n.seed)
				for i := range n.suffixes {
					walk(&n.suffixes[i])
				}
			}
		}
		walk(p.prods[i].body)
		state[i] = 2
		order = append(order, i)
	}
	for i := range p.prods {
		visit(i)
	}
	return order
}

type closureCompiler struct {
	prog *Program
	code *compiledProgram
}

// compileProd builds the production-entry closure: parseProd
// (interp.go) minus the hook calls, with the memo layout specialized at
// compile time. The chunked probe is open-coded in the closure — the
// hottest load in a packrat parse should not pay a call or a layout
// branch per probe.
func (cc *closureCompiler) compileProd(i int) opFunc {
	info := &cc.prog.prods[i]
	doDispatch := cc.prog.opts.Dispatch && info.firstOK
	first := info.first
	display := info.display
	kind := info.kind
	col := info.memoCol

	if col < 0 {
		if op := cc.fusedTransient(info); op != nil {
			return op
		}
	}
	body := cc.compileNode(info.body)

	if col < 0 {
		// Transient production: no memo table involvement, and no
		// examined-region framing either — the frame only exists to
		// compute a memo column's lookahead watermark, and a transient
		// invocation's extent folds into the enclosing memoized frame
		// through note's running max exactly as nInline's does. Call
		// accounting and the depth budget stay: governance must observe
		// the same edges in both lowerings.
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			if doDispatch {
				ps.note(pos + 1)
				if pos >= len(ps.in) || !first.Has(ps.in[pos]) {
					ps.stats.DispatchSkips++
					failQuick(ps, pos, display)
					return 0, nil, false
				}
			}
			ps.stats.Calls++
			ps.depth++
			if ps.depth > ps.maxDepth {
				panic(&LimitError{Kind: LimitDepth, Limit: int64(ps.maxDepth),
					Actual: int64(ps.depth), Pos: pos})
			}
			end, val, ok := body(ps, pos)
			ps.depth--
			if !ok {
				failQuick(ps, pos, display)
				return 0, nil, false
			}
			// fixValue, open-coded on the compile-time kind: transient
			// calls are the engine's hottest entry and the switch would
			// otherwise run 87 times for every memoized entry's 15.
			switch kind {
			case valText:
				val = ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end)))
			case valVoid:
				val = nil
			default:
				if n, isNode := val.(*ast.Node); isNode && n != nil && !n.Span.IsValid() {
					n.Span = text.NewSpan(text.Pos(pos), text.Pos(end))
				}
			}
			if end > ps.stats.MaxPos {
				ps.stats.MaxPos = end
			}
			return end, val, true
		}
	}

	chunked := cc.prog.opts.ChunkedMemo
	return func(ps *Parser, pos int) (int, ast.Value, bool) {
		if doDispatch {
			ps.note(pos + 1)
			if pos >= len(ps.in) || !first.Has(ps.in[pos]) {
				ps.stats.DispatchSkips++
				failQuick(ps, pos, display)
				return 0, nil, false
			}
		}
		var e memoEntry
		hit := false
		if chunked {
			if row := ps.chunks[pos]; row != nil {
				if chunk := row[col/chunkSize]; chunk != nil {
					e = chunk[col%chunkSize]
					hit = e.state != memoEmpty
				}
			}
		} else {
			e, hit = ps.memoMap[int64(pos)*int64(ps.prog.memoCols)+int64(col)]
		}
		if hit {
			ps.stats.MemoHits++
			if e.gen != ps.gen {
				ps.stats.MemoReused++
			}
			end := pos + int(e.len)
			ps.note(end + int(ps.prodLook[col]))
			if e.state == memoFail {
				failQuick(ps, pos, display)
				return 0, nil, false
			}
			return end, e.val, true
		}
		ps.stats.MemoMisses++

		end, val, examined, ok := enterProd(ps, body, pos)
		if ok {
			val = fixValue(ps, kind, val, pos, end)
		}
		// Record the lookahead watermark and memoize the outcome, exactly
		// as parseProd does.
		matchEnd := pos
		if ok {
			matchEnd = end
		}
		if extra := examined - matchEnd; extra > int(ps.prodLook[col]) {
			ps.prodLook[col] = int32(extra)
		}
		if !ps.shed {
			me := memoEntry{state: memoFail, gen: ps.gen}
			if ok {
				me = memoEntry{state: memoOK, gen: ps.gen, len: int32(end - pos), val: val}
			}
			if ps.memoStore(pos, col, me) {
				ps.stats.MemoStores++
			}
		}
		if !ok {
			failQuick(ps, pos, display)
			return 0, nil, false
		}
		if end > ps.stats.MaxPos {
			ps.stats.MaxPos = end
		}
		return end, val, true
	}
}

// enterProd runs a production body under the call-accounting and
// examined-region framing parseProd maintains: Calls and depth are
// charged (the depth budget panics on breach, contained by the entry
// points), and the invocation's own examined extent is returned for
// the caller's watermark bookkeeping.
func enterProd(ps *Parser, body opFunc, pos int) (int, ast.Value, int, bool) {
	ps.stats.Calls++
	ps.depth++
	if ps.depth > ps.maxDepth {
		panic(&LimitError{Kind: LimitDepth, Limit: int64(ps.maxDepth),
			Actual: int64(ps.depth), Pos: pos})
	}
	saveExamined := ps.examined
	ps.examined = pos
	end, val, ok := body(ps, pos)
	examined := ps.examined
	if saveExamined > examined {
		ps.examined = saveExamined
	}
	ps.depth--
	return end, val, examined, ok
}

// fixValue applies a production's value rule to its body's raw value —
// the same specialization parseProd performs on success.
func fixValue(ps *Parser, kind valueKind, val ast.Value, pos, end int) ast.Value {
	switch kind {
	case valText:
		return ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end)))
	case valVoid:
		return nil
	default:
		if n, isNode := val.(*ast.Node); isNode && n != nil && !n.Span.IsValid() {
			n.Span = text.NewSpan(text.Pos(pos), text.Pos(end))
		}
		return val
	}
}

// cItem is a compiled sequence item.
type cItem struct {
	op    opFunc
	bound bool
	role  itemRole
}

// cAlt is a compiled choice alternative (the fallback path for choices
// too wide for a pruning-table mask word).
type cAlt struct {
	op         opFunc
	dispatchOK bool
	first      analysis.ByteSet
}

// compileNode lowers one node into its closure. Every case mirrors the
// matching eval case in interp.go — same notes, same failure records,
// same stats — with the node's constant data folded into the closure.
func (cc *closureCompiler) compileNode(n node) opFunc {
	switch n := n.(type) {
	case nEmpty:
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			return pos, nil, true
		}

	case nLit:
		display := n.display
		if len(n.text) == 1 {
			// Single-byte literals (punctuation, operators) dominate real
			// grammars; one byte compare beats a string compare.
			b := n.text[0]
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				ps.note(pos + 1)
				if pos >= len(ps.in) || ps.in[pos] != b {
					failQuick(ps, pos, display)
					return 0, nil, false
				}
				return pos + 1, nil, true
			}
		}
		if len(n.text) == 2 {
			// Two-byte literals (==, &&,++, //) are the next most common
			// band; two compares beat the memeq call either way.
			b0, b1 := n.text[0], n.text[1]
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				ps.note(pos + 2)
				if pos+2 > len(ps.in) || ps.in[pos] != b0 || ps.in[pos+1] != b1 {
					failQuick(ps, pos, display)
					return 0, nil, false
				}
				return pos + 2, nil, true
			}
		}
		txt := n.text
		b0 := n.text[0]
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			end := pos + len(txt)
			ps.note(end)
			// Checking the first byte before the full compare skips the
			// memeq call on the common keyword-probe miss.
			if end > len(ps.in) || ps.in[pos] != b0 || ps.in[pos:end] != txt {
				failQuick(ps, pos, display)
				return 0, nil, false
			}
			return end, nil, true
		}

	case *nClass:
		set := n.set
		if n.void {
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				ps.note(pos + 1)
				if pos >= len(ps.in) || !set.Has(ps.in[pos]) {
					failQuick(ps, pos, "character class")
					return 0, nil, false
				}
				return pos + 1, nil, true
			}
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			ps.note(pos + 1)
			if pos >= len(ps.in) || !set.Has(ps.in[pos]) {
				failQuick(ps, pos, "character class")
				return 0, nil, false
			}
			return pos + 1, ps.values.newToken(ps.in[pos:pos+1], text.NewSpan(text.Pos(pos), text.Pos(pos+1))), true
		}

	case *nScanClass:
		set, min := n.set, n.min
		if n.stopOK {
			stop := n.stop
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				cur := pos
				if i := strings.IndexByte(ps.in[cur:], stop); i >= 0 {
					cur += i
				} else {
					cur = len(ps.in)
				}
				ps.note(cur + 1)
				failQuick(ps, cur, "character class")
				if cur-pos < min {
					return 0, nil, false
				}
				return cur, nil, true
			}
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			cur := pos
			for cur < len(ps.in) && set.Has(ps.in[cur]) {
				cur++
			}
			ps.note(cur + 1)
			failQuick(ps, cur, "character class")
			if cur-pos < min {
				return 0, nil, false
			}
			return cur, nil, true
		}

	case *nScanLit:
		txt, display, min := n.text, n.display, n.min
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			cur := pos
			count := 0
			for {
				end := cur + len(txt)
				ps.note(end)
				if end > len(ps.in) || ps.in[cur:end] != txt {
					failQuick(ps, cur, display)
					break
				}
				cur = end
				count++
			}
			if count < min {
				return 0, nil, false
			}
			return cur, nil, true
		}

	case nAny:
		if n.void {
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				ps.note(pos + 1)
				if pos >= len(ps.in) {
					failQuick(ps, pos, "any character")
					return 0, nil, false
				}
				return pos + 1, nil, true
			}
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			ps.note(pos + 1)
			if pos >= len(ps.in) {
				failQuick(ps, pos, "any character")
				return 0, nil, false
			}
			return pos + 1, ps.values.newToken(ps.in[pos:pos+1], text.NewSpan(text.Pos(pos), text.Pos(pos+1))), true
		}

	case nCall:
		// Callee already compiled (calleeOrder): the call site IS the
		// callee's entry closure, no trampoline. Only cycle-closing
		// calls still resolve through the prods slice at parse time.
		if op := cc.code.prods[n.prod]; op != nil {
			return op
		}
		cp, idx := cc.code, n.prod
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			return cp.prods[idx](ps, pos)
		}

	case *nCapture:
		body := cc.compileNode(n.body)
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			end, _, ok := body(ps, pos)
			if !ok {
				return 0, nil, false
			}
			return end, ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end))), true
		}

	case *nAnd:
		body := cc.compileNode(n.body)
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			ps.quiet++
			_, _, ok := body(ps, pos)
			ps.quiet--
			if !ok {
				failQuick(ps, pos, "lookahead")
				return 0, nil, false
			}
			return pos, nil, true
		}

	case *nNot:
		body := cc.compileNode(n.body)
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			ps.quiet++
			_, _, ok := body(ps, pos)
			ps.quiet--
			if ok {
				failQuick(ps, pos, "negative lookahead")
				return 0, nil, false
			}
			return pos, nil, true
		}

	case *nOpt:
		body := cc.compileNode(n.body)
		if n.void {
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				end, _, ok := body(ps, pos)
				if !ok {
					return pos, nil, true
				}
				return end, nil, true
			}
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			end, val, ok := body(ps, pos)
			if !ok {
				return pos, nil, true
			}
			return end, val, true
		}

	case *nRepeat:
		body := cc.compileNode(n.body)
		min := n.min
		if n.void {
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				cur := pos
				count := 0
				for {
					end, _, ok := body(ps, cur)
					if !ok {
						break
					}
					cur = end
					count++
				}
				if count < min {
					return 0, nil, false
				}
				return cur, nil, true
			}
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			cur := pos
			count := 0
			base := len(ps.scratch)
			for {
				end, val, ok := body(ps, cur)
				if !ok {
					break
				}
				cur = end
				count++
				if val != nil {
					ps.scratch = append(ps.scratch, val)
				}
			}
			if count < min {
				ps.scratch = ps.scratch[:base]
				return 0, nil, false
			}
			list := ast.List(ps.values.copyVals(ps.scratch[base:]))
			ps.scratch = ps.scratch[:base]
			if list == nil {
				list = ast.List{}
			}
			return cur, list, true
		}

	case *nSeq:
		return cc.compileSeq(n)

	case *nChoice:
		alts := make([]cAlt, len(n.alts))
		ops := make([]opFunc, len(n.alts))
		for i := range n.alts {
			alts[i] = cAlt{
				op:         cc.compileNode(n.alts[i].n),
				dispatchOK: n.alts[i].dispatchOK,
				first:      n.alts[i].first,
			}
			ops[i] = alts[i].op
		}
		if n.tbl != nil {
			tbl := n.tbl
			return func(ps *Parser, pos int) (int, ast.Value, bool) {
				ps.note(pos + 1)
				mask := tbl.eof
				if pos < len(ps.in) {
					mask = tbl.masks[ps.in[pos]]
				}
				if skipped := mask ^ tbl.all; skipped != 0 {
					ps.stats.DispatchSkips += bits.OnesCount64(skipped)
				}
				for m := mask; m != 0; m &= m - 1 {
					if end, val, ok := ops[bits.TrailingZeros64(m)](ps, pos); ok {
						return end, val, true
					}
				}
				return 0, nil, false
			}
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			var b byte
			haveByte := pos < len(ps.in)
			if haveByte {
				b = ps.in[pos]
			}
			for i := range alts {
				alt := &alts[i]
				if alt.dispatchOK {
					ps.note(pos + 1)
					if !haveByte || !alt.first.Has(b) {
						ps.stats.DispatchSkips++
						continue
					}
				}
				if end, val, ok := alt.op(ps, pos); ok {
					return end, val, true
				}
			}
			return 0, nil, false
		}

	case *nInline:
		body := cc.compileNode(n.body)
		doDispatch := cc.prog.opts.Dispatch && n.firstOK
		first := n.first
		display := n.display
		kind := n.kind
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			if doDispatch {
				ps.note(pos + 1)
				if pos >= len(ps.in) || !first.Has(ps.in[pos]) {
					ps.stats.DispatchSkips++
					failQuick(ps, pos, display)
					return 0, nil, false
				}
			}
			end, val, ok := body(ps, pos)
			if !ok {
				failQuick(ps, pos, display)
				return 0, nil, false
			}
			return end, fixValue(ps, kind, val, pos, end), true
		}

	case *nLeftRec:
		seed := cc.compileNode(n.seed)
		type cSuffix struct {
			items func(ps *Parser, pos int) (int, int, bool)
			ctor  string
			pre   suffixPre
		}
		suffixes := make([]cSuffix, len(n.suffixes))
		for i := range n.suffixes {
			s := &n.suffixes[i]
			var pre suffixPre
			if len(s.items) > 0 {
				pre = cc.preOf(s.items[0].n)
			}
			suffixes[i] = cSuffix{items: cc.compileSeqItems(s), ctor: s.ctor, pre: pre}
		}
		void := n.void
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			end, acc, ok := seed(ps, pos)
			if !ok {
				return 0, nil, false
			}
		grow:
			for {
				for i := range suffixes {
					s := &suffixes[i]
					// First-byte pre-check: every growth step probes
					// every suffix, and in an expression tower almost
					// all probes fail on the operator byte. The check
					// reproduces exactly the records the suffix's first
					// item would emit before declining the call.
					if s.pre.ok {
						ps.note(end + s.pre.note)
						if end >= len(ps.in) || !s.pre.set.Has(ps.in[end]) {
							if s.pre.skip {
								ps.stats.DispatchSkips++
							}
							failQuick(ps, end, s.pre.display)
							continue
						}
					}
					nend, base, ok := s.items(ps, end)
					if !ok {
						continue
					}
					acc = ps.foldLeft(acc, s.ctor, base, pos, nend)
					ps.scratch = ps.scratch[:base]
					end = nend
					continue grow
				}
				break
			}
			if void {
				return end, nil, true
			}
			return end, acc, true
		}

	default:
		panic("vm: unknown node in closure compiler")
	}
}

// suffixPre is the first-byte fast check of a left-recursion suffix:
// enough constant data to reproduce, without entering the suffix,
// exactly the records (examined note, dispatch-skip count, failure)
// its first item would emit when the next byte cannot start it.
type suffixPre struct {
	ok      bool
	set     analysis.ByteSet
	display string
	skip    bool // models a dispatch edge, so count the skip
	note    int  // examined extent of the probe (literal length or 1)
}

// preOf derives the pre-check for a suffix's first item. Only shapes
// whose rejection path is a pure function of the next byte qualify;
// anything else returns a zero suffixPre and the suffix is entered
// unconditionally.
func (cc *closureCompiler) preOf(n node) suffixPre {
	switch n := n.(type) {
	case nLit:
		var s analysis.ByteSet
		s.Add(n.text[0])
		return suffixPre{ok: true, set: s, display: n.display, note: len(n.text)}
	case *nClass:
		return suffixPre{ok: true, set: n.set, display: "character class", note: 1}
	case nCall:
		info := &cc.prog.prods[n.prod]
		if cc.prog.opts.Dispatch && info.firstOK {
			return suffixPre{ok: true, set: info.first, display: info.display, skip: true, note: 1}
		}
	case *nInline:
		if cc.prog.opts.Dispatch && n.firstOK {
			return suffixPre{ok: true, set: n.first, display: n.display, skip: true, note: 1}
		}
	}
	return suffixPre{}
}

// fusedTransient builds a production-entry closure with the body's
// top-level node embedded, for the shapes that dominate call counts in
// real grammars — void token sequences (keywords, punctuation),
// dispatch-table choices (single-level alternations), and void
// repetition (spacing). One closure call per production call instead
// of two; returns nil when the body shape does not qualify and the
// generic transient entry applies.
func (cc *closureCompiler) fusedTransient(info *prodInfo) opFunc {
	doDispatch := cc.prog.opts.Dispatch && info.firstOK
	first := info.first
	display := info.display
	kind := info.kind

	switch b := info.body.(type) {
	case *nSeq:
		if !b.void || kind != valVoid {
			return nil
		}
		items := make([]opFunc, len(b.items))
		for i := range b.items {
			items[i] = cc.compileNode(b.items[i].n)
		}
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			if doDispatch {
				ps.note(pos + 1)
				if pos >= len(ps.in) || !first.Has(ps.in[pos]) {
					ps.stats.DispatchSkips++
					failQuick(ps, pos, display)
					return 0, nil, false
				}
			}
			ps.stats.Calls++
			ps.depth++
			if ps.depth > ps.maxDepth {
				panic(&LimitError{Kind: LimitDepth, Limit: int64(ps.maxDepth),
					Actual: int64(ps.depth), Pos: pos})
			}
			cur := pos
			for i := range items {
				end, _, ok := items[i](ps, cur)
				if !ok {
					ps.depth--
					failQuick(ps, pos, display)
					return 0, nil, false
				}
				cur = end
			}
			ps.depth--
			if cur > ps.stats.MaxPos {
				ps.stats.MaxPos = cur
			}
			return cur, nil, true
		}

	case *nChoice:
		if b.tbl == nil {
			return nil
		}
		ops := make([]opFunc, len(b.alts))
		for i := range b.alts {
			ops[i] = cc.compileNode(b.alts[i].n)
		}
		tbl := b.tbl
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			if doDispatch {
				ps.note(pos + 1)
				if pos >= len(ps.in) || !first.Has(ps.in[pos]) {
					ps.stats.DispatchSkips++
					failQuick(ps, pos, display)
					return 0, nil, false
				}
			}
			ps.stats.Calls++
			ps.depth++
			if ps.depth > ps.maxDepth {
				panic(&LimitError{Kind: LimitDepth, Limit: int64(ps.maxDepth),
					Actual: int64(ps.depth), Pos: pos})
			}
			ps.note(pos + 1)
			mask := tbl.eof
			if pos < len(ps.in) {
				mask = tbl.masks[ps.in[pos]]
			}
			if skipped := mask ^ tbl.all; skipped != 0 {
				ps.stats.DispatchSkips += bits.OnesCount64(skipped)
			}
			for m := mask; m != 0; m &= m - 1 {
				if end, val, ok := ops[bits.TrailingZeros64(m)](ps, pos); ok {
					ps.depth--
					switch kind {
					case valText:
						val = ps.values.newToken(ps.in[pos:end], text.NewSpan(text.Pos(pos), text.Pos(end)))
					case valVoid:
						val = nil
					default:
						if n, isNode := val.(*ast.Node); isNode && n != nil && !n.Span.IsValid() {
							n.Span = text.NewSpan(text.Pos(pos), text.Pos(end))
						}
					}
					if end > ps.stats.MaxPos {
						ps.stats.MaxPos = end
					}
					return end, val, true
				}
			}
			ps.depth--
			failQuick(ps, pos, display)
			return 0, nil, false
		}

	case *nRepeat:
		if !b.void || kind != valVoid {
			return nil
		}
		rbody := cc.compileNode(b.body)
		min := b.min
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			if doDispatch {
				ps.note(pos + 1)
				if pos >= len(ps.in) || !first.Has(ps.in[pos]) {
					ps.stats.DispatchSkips++
					failQuick(ps, pos, display)
					return 0, nil, false
				}
			}
			ps.stats.Calls++
			ps.depth++
			if ps.depth > ps.maxDepth {
				panic(&LimitError{Kind: LimitDepth, Limit: int64(ps.maxDepth),
					Actual: int64(ps.depth), Pos: pos})
			}
			cur := pos
			count := 0
			for {
				end, _, ok := rbody(ps, cur)
				if !ok {
					break
				}
				cur = end
				count++
			}
			ps.depth--
			if count < min {
				failQuick(ps, pos, display)
				return 0, nil, false
			}
			if cur > ps.stats.MaxPos {
				ps.stats.MaxPos = cur
			}
			return cur, nil, true
		}
	}
	return nil
}

// compileSeq lowers a sequence node, mirroring evalSeq + seqValue. The
// item loop is embedded in the value-shaping closure rather than a
// nested closure: a sequence is the most common body shape, and the
// extra indirect call per evaluation is measurable on large corpora.
func (cc *closureCompiler) compileSeq(n *nSeq) opFunc {
	items := make([]cItem, len(n.items))
	for i := range n.items {
		items[i] = cItem{
			op:    cc.compileNode(n.items[i].n),
			bound: n.items[i].bound,
			role:  n.items[i].role,
		}
	}
	if n.void {
		// No value ever pushed: a bare matching loop suffices.
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			cur := pos
			for i := range items {
				end, _, ok := items[i].op(ps, cur)
				if !ok {
					return 0, nil, false
				}
				cur = end
			}
			return cur, nil, true
		}
	}
	splice := n.splice
	pushBound := n.ctor != "" && n.hasBind
	runItems := func(ps *Parser, pos int) (int, int, bool) {
		base := len(ps.scratch)
		cur := pos
		for i := range items {
			it := &items[i]
			end, val, ok := it.op(ps, cur)
			if !ok {
				ps.scratch = ps.scratch[:base]
				return 0, base, false
			}
			cur = end
			if splice {
				switch it.role {
				case roleHead:
					if val != nil {
						ps.scratch = append(ps.scratch, val)
					}
				case roleTail:
					if l, isList := val.(ast.List); isList {
						ps.scratch = append(ps.scratch, l...)
					}
				}
				continue
			}
			if pushBound {
				if it.bound {
					ps.scratch = append(ps.scratch, val)
				}
			} else if val != nil {
				ps.scratch = append(ps.scratch, val)
			}
		}
		return cur, base, true
	}
	if n.splice {
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			end, base, ok := runItems(ps, pos)
			if !ok {
				return 0, nil, false
			}
			out := ps.values.copyVals(ps.scratch[base:])
			ps.scratch = ps.scratch[:base]
			if out == nil {
				out = []ast.Value{}
			}
			return end, ast.List(out), true
		}
	}
	// A non-splice sequence yields at most len(items) child values, so
	// short sequences (nearly all of them) can collect children in a
	// stack array instead of the interpreter's ps.scratch protocol: no
	// heap appends, no write barriers, no unwind bookkeeping on failure.
	// The children escape only on success, via one carve+copy.
	if n.ctor != "" && len(items) <= seqStackKids {
		ctor := n.ctor
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			var kids [seqStackKids]ast.Value
			nk := 0
			cur := pos
			for i := range items {
				it := &items[i]
				iend, val, ok := it.op(ps, cur)
				if !ok {
					return 0, nil, false
				}
				cur = iend
				if pushBound {
					if it.bound {
						kids[nk] = val
						nk++
					}
				} else if val != nil {
					kids[nk] = val
					nk++
				}
			}
			out := ps.values.carve(nk)
			copy(out, kids[:nk])
			v := ps.values.newNode(ctor, out,
				text.NewSpan(text.Pos(pos), text.Pos(cur)))
			return cur, v, true
		}
	}
	if n.ctor == "" && len(items) <= seqStackKids {
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			var kids [seqStackKids]ast.Value
			nk := 0
			cur := pos
			for i := range items {
				it := &items[i]
				iend, val, ok := it.op(ps, cur)
				if !ok {
					return 0, nil, false
				}
				cur = iend
				if pushBound {
					if it.bound {
						kids[nk] = val
						nk++
					}
				} else if val != nil {
					kids[nk] = val
					nk++
				}
			}
			var v ast.Value
			switch nk {
			case 0:
			case 1:
				v = kids[0]
			default:
				out := ps.values.carve(nk)
				copy(out, kids[:nk])
				v = ast.List(out)
			}
			return cur, v, true
		}
	}
	if n.ctor != "" {
		ctor := n.ctor
		return func(ps *Parser, pos int) (int, ast.Value, bool) {
			base := len(ps.scratch)
			cur := pos
			for i := range items {
				it := &items[i]
				iend, val, ok := it.op(ps, cur)
				if !ok {
					ps.scratch = ps.scratch[:base]
					return 0, nil, false
				}
				cur = iend
				if pushBound {
					if it.bound {
						ps.scratch = append(ps.scratch, val)
					}
				} else if val != nil {
					ps.scratch = append(ps.scratch, val)
				}
			}
			end := cur
			v := ps.values.newNode(ctor, ps.values.copyVals(ps.scratch[base:]),
				text.NewSpan(text.Pos(pos), text.Pos(end)))
			ps.scratch = ps.scratch[:base]
			return end, v, true
		}
	}
	return func(ps *Parser, pos int) (int, ast.Value, bool) {
		base := len(ps.scratch)
		cur := pos
		for i := range items {
			it := &items[i]
			iend, val, ok := it.op(ps, cur)
			if !ok {
				ps.scratch = ps.scratch[:base]
				return 0, nil, false
			}
			cur = iend
			if pushBound {
				if it.bound {
					ps.scratch = append(ps.scratch, val)
				}
			} else if val != nil {
				ps.scratch = append(ps.scratch, val)
			}
		}
		end := cur
		var v ast.Value
		switch vals := ps.scratch[base:]; len(vals) {
		case 0:
		case 1:
			v = vals[0]
		default:
			v = ast.List(ps.values.copyVals(vals))
		}
		ps.scratch = ps.scratch[:base]
		return end, v, true
	}
}

// seqStackKids is the item-count bound under which a compiled sequence
// collects child values in a closure-stack array rather than on
// ps.scratch. Statically knowing the arity bound is a compiled-engine
// privilege: the interpreter must run the generic scratch protocol.
const seqStackKids = 8

// compileSeqItems lowers a sequence's item matching, mirroring
// evalSeqItems: values that participate in the result are pushed onto
// the scratch stack, the caller reads ps.scratch[base:] and truncates.
func (cc *closureCompiler) compileSeqItems(n *nSeq) func(ps *Parser, pos int) (int, int, bool) {
	items := make([]cItem, len(n.items))
	for i := range n.items {
		items[i] = cItem{
			op:    cc.compileNode(n.items[i].n),
			bound: n.items[i].bound,
			role:  n.items[i].role,
		}
	}
	if n.void {
		// No value ever pushed: a bare matching loop suffices.
		return func(ps *Parser, pos int) (int, int, bool) {
			base := len(ps.scratch)
			cur := pos
			for i := range items {
				end, _, ok := items[i].op(ps, cur)
				if !ok {
					return 0, base, false
				}
				cur = end
			}
			return cur, base, true
		}
	}
	splice := n.splice
	pushBound := n.ctor != "" && n.hasBind
	return func(ps *Parser, pos int) (int, int, bool) {
		base := len(ps.scratch)
		cur := pos
		for i := range items {
			it := &items[i]
			end, val, ok := it.op(ps, cur)
			if !ok {
				ps.scratch = ps.scratch[:base]
				return 0, base, false
			}
			cur = end
			if splice {
				switch it.role {
				case roleHead:
					if val != nil {
						ps.scratch = append(ps.scratch, val)
					}
				case roleTail:
					if l, isList := val.(ast.List); isList {
						ps.scratch = append(ps.scratch, l...)
					}
				}
				continue
			}
			if pushBound {
				if it.bound {
					ps.scratch = append(ps.scratch, val)
				}
			} else if val != nil {
				ps.scratch = append(ps.scratch, val)
			}
		}
		return cur, base, true
	}
}

// failQuick is the closure lowering's failure edge: identical to
// Parser.fail, but the overwhelmingly common no-op outcome — an
// untimed parse recording a suppressed or not-farthest failure — is
// decided by an inlined guard without paying the call. Timed parses
// always take the call, because fail is a clock-polling edge.
func failQuick(ps *Parser, pos int, what string) {
	if ps.timed || (ps.quiet == 0 && pos >= ps.failPos) {
		ps.fail(pos, what)
	}
}
