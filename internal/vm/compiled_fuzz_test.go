package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// fuzzLeftRecGrammar exercises the compiled engine's left-recursion
// lowering (seed/suffix closures, suffix first-byte pre-checks) and its
// dispatch-table choices — the paths the right-recursive calcGrammar
// never reaches.
const fuzzLeftRecGrammar = `
option root = Program;
public Program = Spacing e:Expr !. ;
Expr =
    l:Expr "+" Spacing r:Term @Add
  / l:Expr "-" Spacing r:Term @Sub
  / Term
  ;
Term =
    l:Term "*" Spacing r:Atom @Mul
  / Atom
  ;
Atom = Number / Name / "(" Spacing Expr ")" Spacing ;
Number = v:$([0-9]+) Spacing @Num ;
Name = v:$([a-z][a-z0-9]*) Spacing @Name ;
void Spacing = [ \t\n\r]* ;
`

// FuzzCompiledParse is the differential fuzz target for the
// closure-compiled engine, with the optimized interpreter as oracle.
// For every input the two engines must agree exactly on the ungoverned
// parse: accept/reject, the semantic value, the typed error kind, the
// error location, and the full error text (both engines run the same
// transform pipeline and record failures on the same edges). A governed
// compiled parse must additionally uphold the budget invariants: no
// engine panic escapes, the memo footprint respects the budget, and a
// successful governed parse returns the oracle's value — limits may
// stop a parse, never change its answer.
func FuzzCompiledParse(f *testing.F) {
	type pair struct{ opt, comp *Program }
	var pairs []pair
	for _, body := range []string{calcGrammar, fuzzLeftRecGrammar} {
		opt, err := fuzzProgram(body, Optimized())
		if err != nil {
			f.Fatal(err)
		}
		comp, err := fuzzProgram(body, CompiledEngine())
		if err != nil {
			f.Fatal(err)
		}
		pairs = append(pairs, pair{opt, comp})
	}
	f.Add("1 + 2*(3-4)", uint8(0), uint32(0), uint16(0), false)
	f.Add("((((1))))", uint8(1), uint32(100), uint16(3), true)
	f.Add("a*b+c*(d-12)", uint8(1), uint32(0), uint16(0), false)
	f.Add("1+2*", uint8(0), uint32(64), uint16(0), false)
	f.Add("9**9", uint8(1), uint32(1), uint16(1), true)
	f.Fuzz(func(t *testing.T, input string, which uint8, maxMemo uint32, maxDepth uint16, strict bool) {
		if len(input) > 1<<16 {
			t.Skip("bound per-exec work: engine equivalence is input-shape, not input-size")
		}
		p := pairs[int(which)%len(pairs)]
		src := text.NewSource("fuzz", input)

		// Ungoverned differential check: exact equivalence.
		wantV, _, wantErr := p.opt.Parse(src)
		gotV, _, gotErr := p.comp.Parse(src)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept disagrees\ninput: %q\ncompiled: %v\noptimized: %v", input, gotErr, wantErr)
		}
		if gotErr != nil {
			var gotPE, wantPE *ParseError
			if !errors.As(gotErr, &gotPE) || !errors.As(wantErr, &wantPE) {
				t.Fatalf("ungoverned rejection must be a *ParseError on both engines\ncompiled: %T\noptimized: %T", gotErr, wantErr)
			}
			if gotPE.Pos != wantPE.Pos {
				t.Fatalf("error location disagrees: compiled %d vs optimized %d\ninput: %q", gotPE.Pos, wantPE.Pos, input)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text disagrees\ninput: %q\ncompiled:  %v\noptimized: %v", input, gotErr, wantErr)
			}
		} else if !ast.Equal(gotV, wantV) {
			t.Fatalf("value disagrees\ninput: %q\ncompiled:  %s\noptimized: %s", input, ast.Format(gotV), ast.Format(wantV))
		}

		// Governed compiled parse: budget invariants only — engines may
		// count depth differently at inlined frames, so the exact limit
		// kind is not compared, but budgets must never change an answer.
		lim := Limits{
			MaxMemoBytes:     int(maxMemo),
			MaxCallDepth:     int(maxDepth),
			MaxParseDuration: 50 * time.Millisecond,
			Strict:           strict,
		}
		gv, gstats, gerr := p.comp.ParseContext(context.Background(), src, lim)
		if gerr != nil {
			var ee *EngineError
			if errors.As(gerr, &ee) {
				t.Fatalf("fuzzer reached a compiled-engine panic: %v\n%s", ee, ee.Stack)
			}
			var pe *ParseError
			if errors.As(gerr, &pe) && wantErr != nil && gerr.Error() != wantErr.Error() {
				t.Fatalf("governed compiled syntax error drifted from oracle\ninput: %q\ngoverned:  %v\noracle:    %v", input, gerr, wantErr)
			}
			return
		}
		if lim.MaxMemoBytes > 0 && gstats.MemoBytes > lim.MaxMemoBytes {
			t.Fatalf("compiled memo footprint %d exceeds budget %d", gstats.MemoBytes, lim.MaxMemoBytes)
		}
		if wantErr != nil {
			t.Fatalf("governed compiled parse accepted what the oracle rejects: %v", wantErr)
		}
		if !ast.Equal(gv, wantV) {
			t.Fatalf("governed compiled value drifted\ninput: %q\nlimits: %+v", input, lim)
		}
	})
}
