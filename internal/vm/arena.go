package vm

import (
	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// This file holds the session allocators that make steady-state parsing
// allocation-free (for the parser machinery) and cheap (for semantic
// values):
//
//   - chunkArena and rowArena own the memo table's storage. Chunks and
//     per-position chunk directories are carved from large slabs and
//     recycled wholesale on reset, so a reused Parser performs no memo
//     allocations after its first parse (beyond high-water-mark growth).
//   - valueArena batch-allocates the semantic values a parse hands back
//     to the caller. Carved values escape into the caller's AST, so this
//     arena is never recycled — it only amortizes allocator round trips,
//     one slab allocation per slab-load of values.
//
// Recycling correctness rests on one invariant, maintained inductively:
// every chunk (and row pointer) at or beyond an arena's carve point is
// zero. Fresh slabs are born zero; reset zeroes exactly the carved
// prefix [0, high-water) and rewinds the carve point to 0. Zeroing on
// reset rather than on alloc keeps the clear in one bulk memclr per slab
// and drops the previous parse's ast.Value references for the collector.

// chunkSlabLen is the number of memoChunks per arena slab (~96 KB/slab at
// the current chunk geometry) — large enough that a 40 KB parse touches a
// few dozen slabs, small enough not to overshoot tiny inputs badly.
const chunkSlabLen = 512

// chunkArena carves memoChunks out of reusable slabs.
type chunkArena struct {
	slabs [][]memoChunk
	slab  int // index of the slab currently being carved
	used  int // chunks carved from slabs[slab]
}

func (a *chunkArena) alloc() *memoChunk {
	if len(a.slabs) == 0 || a.used == chunkSlabLen {
		a.nextSlab()
	}
	c := &a.slabs[a.slab][a.used]
	a.used++
	return c
}

func (a *chunkArena) nextSlab() {
	if len(a.slabs) > 0 {
		a.slab++
	}
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]memoChunk, chunkSlabLen))
		metrics.arenaCarved.Add(chunkSlabLen * chunkSize * memoEntrySize)
	}
	a.used = 0
}

// reset zeroes the carved prefix and rewinds, making every previously
// handed-out chunk available — and empty — again. The recycled prefix
// is credited to the metrics registry (Stats.MemoBytes model): memo
// storage a session reuse saved the allocator from providing again.
func (a *chunkArena) reset() {
	for i := 0; i < a.slab; i++ {
		clear(a.slabs[i])
	}
	if a.slab < len(a.slabs) {
		clear(a.slabs[a.slab][:a.used])
	}
	metrics.arenaRecycled.Add(int64(a.slab*chunkSlabLen+a.used) * chunkSize * memoEntrySize)
	a.slab, a.used = 0, 0
}

// liveBytes reports the bytes of chunk storage carved since the last
// reset — the arena-level counterpart of the Stats.MemoBytes model,
// used by the governance layer (limits.go) to report actual carved
// storage when the memo budget sheds memoization.
func (a *chunkArena) liveBytes() int {
	return (a.slab*chunkSlabLen + a.used) * chunkSize * memoEntrySize
}

// rowSlabLen is the number of chunk pointers per row-arena slab (~64 KB).
const rowSlabLen = 8192

// rowArena carves per-position chunk directories ([]*memoChunk of the
// program's chunksPerPos length) out of reusable pointer slabs.
type rowArena struct {
	slabs [][]*memoChunk
	slab  int
	used  int
}

func (a *rowArena) alloc(n int) []*memoChunk {
	if n > rowSlabLen {
		// Degenerate geometry (tens of thousands of memoized productions);
		// fall back to the allocator rather than size slabs for it.
		return make([]*memoChunk, n)
	}
	if len(a.slabs) == 0 || a.used+n > rowSlabLen {
		a.nextSlab()
	}
	row := a.slabs[a.slab][a.used : a.used+n : a.used+n]
	a.used += n
	return row
}

func (a *rowArena) nextSlab() {
	if len(a.slabs) > 0 {
		a.slab++
	}
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]*memoChunk, rowSlabLen))
		metrics.arenaCarved.Add(rowSlabLen * 8)
	}
	a.used = 0
}

func (a *rowArena) reset() {
	// Slab tails skipped because a row did not fit are inside the cleared
	// prefix of their slab, so the zero invariant covers them too.
	for i := 0; i < a.slab; i++ {
		clear(a.slabs[i])
	}
	if a.slab < len(a.slabs) {
		clear(a.slabs[a.slab][:a.used])
	}
	metrics.arenaRecycled.Add(int64(a.slab*rowSlabLen+a.used) * 8)
	a.slab, a.used = 0, 0
}

// liveBytes reports the bytes of row-directory storage carved since the
// last reset (see chunkArena.liveBytes).
func (a *rowArena) liveBytes() int {
	return (a.slab*rowSlabLen + a.used) * 8
}

// memoArenaBytes is the actual carved footprint of the memo arenas —
// what the allocator is really holding for this parse, as opposed to
// the modeled Stats.MemoBytes the budgets are denominated in.
func (ps *Parser) memoArenaBytes() int {
	return ps.chunkArena.liveBytes() + ps.rowArena.liveBytes()
}

// Value-arena slab sizes, in elements. Tokens and nodes dominate real
// ASTs; child slices are carved from a shared backing slab.
const (
	tokenSlabLen = 512
	nodeSlabLen  = 512
	valSlabLen   = 2048
)

// valueArena batch-allocates semantic values. It is deliberately not
// recyclable: carved tokens, nodes, and child slices are owned by the
// caller's AST once the parse returns. The arena merely hands out
// elements of slab arrays and forgets each slab as it fills, so the
// collector reclaims a slab when the AST referencing it dies.
type valueArena struct {
	tokens []ast.Token
	nodes  []ast.Node
	vals   []ast.Value
}

func (a *valueArena) newToken(txt string, sp text.Span) *ast.Token {
	if len(a.tokens) == 0 {
		a.tokens = make([]ast.Token, tokenSlabLen)
	}
	t := &a.tokens[0]
	a.tokens = a.tokens[1:]
	t.Text = txt
	t.Span = sp
	return t
}

func (a *valueArena) newNode(name string, children []ast.Value, sp text.Span) *ast.Node {
	if len(a.nodes) == 0 {
		a.nodes = make([]ast.Node, nodeSlabLen)
	}
	n := &a.nodes[0]
	a.nodes = a.nodes[1:]
	n.Name = name
	n.Children = children
	n.Span = sp
	return n
}

// carve returns an uninitialized value slice of length and capacity n.
// Capacity is clamped to n so that a caller-side append can never bleed
// into a neighbouring carve.
func (a *valueArena) carve(n int) []ast.Value {
	if n == 0 {
		return nil
	}
	if n > len(a.vals) {
		if n >= valSlabLen/2 {
			return make([]ast.Value, n)
		}
		a.vals = make([]ast.Value, valSlabLen)
	}
	out := a.vals[:n:n]
	a.vals = a.vals[n:]
	return out
}

// copyVals carves an exact-capacity copy of vs (nil when empty).
func (a *valueArena) copyVals(vs []ast.Value) []ast.Value {
	out := a.carve(len(vs))
	copy(out, vs)
	return out
}
