package vm

import (
	"strings"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// The byte-level hot path (scan fusion, choice tables, PGO inlining)
// must be invisible: same values, same errors, same positions as the
// per-byte slow path. These tests pin each fast path against its
// disabled twin and exercise the corners the fuzzers rarely hit.

func noScan() Options {
	o := Optimized()
	o.ScanFusion = false
	return o
}

func errText(prog *Program, input string) string {
	_, _, err := prog.Parse(text.NewSource("input", input))
	if err == nil {
		return ""
	}
	return err.Error()
}

const scanGrammar = `
option root = S;
public S = Word Spacing Num Tail !. ;
void Spacing = [ \t\n]* ;
Word = $([a-z]+) ;
Num = $([0-9]+) ;
void Tail = ";"* ;
`

func TestScanFusionMatchesPerByte(t *testing.T) {
	fused := build(t, scanGrammar, Optimized())
	plain := build(t, scanGrammar, noScan())
	inputs := []string{
		"abc 123",           // runs of every fused class
		"abc \t\n 123;;;",   // long spacing run, literal repetition
		"a 1",               // single-byte runs
		"abc  12x",          // fails inside a run
		"abc",               // truncated: Num's + has no bytes
		"",                  // empty input
		" abc 1",            // leading spacing not allowed by Word
		"abc 123" + ";;;;;", // trailing literal run to EOF
	}
	for _, in := range inputs {
		fv, _, ferr := fused.Parse(text.NewSource("input", in))
		pv, _, perr := plain.Parse(text.NewSource("input", in))
		if (ferr == nil) != (perr == nil) {
			t.Fatalf("%q: fused err=%v, plain err=%v", in, ferr, perr)
		}
		if ferr != nil {
			if ferr.Error() != perr.Error() {
				t.Errorf("%q: error text diverged\n fused: %v\n plain: %v", in, ferr, perr)
			}
			continue
		}
		if ast.Format(fv) != ast.Format(pv) {
			t.Errorf("%q: value diverged: %s vs %s", in, ast.Format(fv), ast.Format(pv))
		}
	}
}

func TestScanFusionMinRepetition(t *testing.T) {
	// (class)+ fused into a scan with min=1: an empty run must fail at
	// the run's start with the same diagnostic as the per-byte engine.
	g := `
option root = S;
public S = Digits !. ;
void Digits = [0-9]+ ;
`
	fused := build(t, g, Optimized())
	plain := build(t, g, noScan())
	if errText(fused, "123") != "" || errText(plain, "123") != "" {
		t.Fatal("digits must parse")
	}
	fe, pe := errText(fused, "x"), errText(plain, "x")
	if fe == "" || fe != pe {
		t.Fatalf("min-unmet diagnostics diverged:\n fused: %s\n plain: %s", fe, pe)
	}
}

func TestScanFusionNegatedClassToEOF(t *testing.T) {
	// [^\n]* compiles to the IndexByte fast path (single missing byte).
	// A final line without a newline scans to EOF and must still parse.
	g := `
option root = S;
public S = Line ("\n" Line)* !. ;
Line = $([^\n]*) ;
`
	fused := build(t, g, Optimized())
	plain := build(t, g, noScan())
	for _, in := range []string{"one\ntwo\nthree", "no newline", "", "\n\n"} {
		fv, _, ferr := fused.Parse(text.NewSource("input", in))
		pv, _, perr := plain.Parse(text.NewSource("input", in))
		if (ferr == nil) != (perr == nil) {
			t.Fatalf("%q: fused err=%v, plain err=%v", in, ferr, perr)
		}
		if ferr == nil && ast.Format(fv) != ast.Format(pv) {
			t.Errorf("%q: value diverged", in)
		}
	}
}

func TestChoiceTablePrunesAlternatives(t *testing.T) {
	// A keyword-style choice: on input starting with 'w', the table
	// must skip the other alternatives without evaluating them.
	g := `
option root = S;
public S = Kw !. ;
Kw = $("if") / $("else") / $("while") / $("for") / $("return") ;
`
	prog := build(t, g, Optimized())
	v, stats, err := prog.Parse(text.NewSource("input", "while"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.Format(v); !strings.Contains(got, "while") {
		t.Fatalf("value = %s", got)
	}
	if stats.DispatchSkips == 0 {
		t.Error("choice table pruned nothing on a keyword alternation")
	}
	// Reject: a byte outside every alternative's first set fails at the
	// same position as the dispatch-free engine (the expected-set list
	// legitimately differs — dispatch names the production, the per-alt
	// walk names each literal — but the position may not; this mirrors
	// the Table 2 ablation-equivalence contract).
	nodisp := Optimized()
	nodisp.Dispatch = false
	slow := build(t, g, nodisp)
	_, _, ferr := prog.Parse(text.NewSource("input", "42"))
	_, _, serr := slow.Parse(text.NewSource("input", "42"))
	fe, feOK := ferr.(*ParseError)
	se, seOK := serr.(*ParseError)
	if !feOK || !seOK {
		t.Fatalf("want ParseErrors, got %v / %v", ferr, serr)
	}
	if fe.Pos != se.Pos {
		t.Fatalf("reject position diverged: table %d, plain %d", fe.Pos, se.Pos)
	}
}

func TestChoiceTableNullableAlternative(t *testing.T) {
	// A nullable alternative matches the empty string, so no byte (and
	// no EOF) may prune it: the whole choice must still accept inputs
	// that fall through to it.
	g := `
option root = S;
public S = Item "." !. ;
Item = $("x"+) / $("y") / $("z"?) ;
`
	for _, opts := range []Options{Optimized(), noScan()} {
		prog := build(t, g, opts)
		for _, in := range []string{"xx.", "y.", "z.", "."} {
			if e := errText(prog, in); e != "" {
				t.Errorf("%s: %q must parse through the nullable alt, got %s", opts, in, e)
			}
		}
		if e := errText(prog, "q."); e == "" {
			t.Errorf("%s: %q must fail", opts, "q.")
		}
	}
}

func TestPGOInliningAgrees(t *testing.T) {
	// Static PGO (nil Calls): every small production inlines. Values,
	// errors, and accept decisions must match the uninlined engine on
	// the calculator, including damaged inputs.
	pgo := Optimized()
	pgo.PGO = &PGO{}
	inlined := build(t, calcGrammar, pgo)
	plain := build(t, calcGrammar, Optimized())
	for _, in := range []string{"1 + 2*3", "(1+2)*3", "1 +", "x", "", "1 + 2)"} {
		iv, _, ierr := inlined.Parse(text.NewSource("input", in))
		pv, _, perr := plain.Parse(text.NewSource("input", in))
		if (ierr == nil) != (perr == nil) {
			t.Fatalf("%q: inlined err=%v, plain err=%v", in, ierr, perr)
		}
		if ierr != nil {
			if ierr.Error() != perr.Error() {
				t.Errorf("%q: error text diverged\n inlined: %v\n plain:   %v", in, ierr, perr)
			}
			continue
		}
		if ast.Format(iv) != ast.Format(pv) {
			t.Errorf("%q: value diverged", in)
		}
	}
}

func TestPGODropsMemoColumns(t *testing.T) {
	// Inlined productions lose their memo columns: the PGO engine must
	// make strictly fewer memo stores on the same input.
	pgo := Optimized()
	pgo.PGO = &PGO{}
	inlined := build(t, calcGrammar, pgo)
	plain := build(t, calcGrammar, Optimized())
	in := "1+2*3+(4*5)+6"
	_, istats, err := inlined.Parse(text.NewSource("input", in))
	if err != nil {
		t.Fatal(err)
	}
	_, pstats, err := plain.Parse(text.NewSource("input", in))
	if err != nil {
		t.Fatal(err)
	}
	if istats.MemoStores >= pstats.MemoStores {
		t.Errorf("inlined stores %d, plain %d: inlining dropped no columns",
			istats.MemoStores, pstats.MemoStores)
	}
}

func TestProfilePGORoundTrip(t *testing.T) {
	// ParseWithProfile → Profile.PGO → Compile: the profile-driven
	// inline set must parse identically, and LoadPGO must accept the
	// JSON report and reject garbage.
	plain := build(t, calcGrammar, Optimized())
	src := text.NewSource("input", "1+2*3+(4*5)+6")
	_, _, report, err := plain.ParseWithProfile(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := Optimized()
	opts.PGO = report.PGO()
	guided := build(t, calcGrammar, opts)
	v, _, err := guided.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := parse(t, plain, "1+2*3+(4*5)+6")
	if ast.Format(v) != ast.Format(want) {
		t.Fatalf("profile-guided value diverged: %s", ast.Format(v))
	}

	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPGO(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Calls == nil {
		t.Fatal("LoadPGO dropped the calls map")
	}
	if _, err := LoadPGO([]byte("not json")); err == nil {
		t.Error("LoadPGO accepted garbage")
	}
}

func TestPGOWithholdsMemoWinners(t *testing.T) {
	// The inline filter keeps productions whose memo column pays for
	// itself: a high hit rate must disqualify, a cold column must not.
	if _, ok := pgoHot("hot", 100, 0); !ok {
		t.Error("cold-column production must be eligible")
	}
	if _, ok := pgoHot("cached", 100, 90); ok {
		t.Error("production with 90% memo-hit demand must keep its column")
	}
	if _, ok := pgoHot("idle", 0, 0); ok {
		t.Error("never-called production is not hot")
	}
	if d, ok := pgoHot("warm", 90, 10); !ok || d != 100 {
		t.Errorf("demand = %d, %v; want 100, true", d, ok)
	}
}
