package vm

import (
	"context"
	"strings"
	"testing"

	"modpeg/internal/text"
	"modpeg/internal/transform"
)

// traceGrammar is built with the Baseline transform (no inlining) and
// map memoization (no dispatch tables) so its call trace is fully
// deterministic: every production entry, exit, and memo interaction
// appears, in source order.
const traceGrammar = `
option root = S;
public S = B !. / A "y" !. ;
B = A "x" ;
A = $("a") ;
`

func buildTraceProg(t *testing.T) *Program {
	t.Helper()
	return buildWith(t, traceGrammar, transform.Baseline(), Options{Memoize: true})
}

func traceOf(t *testing.T, prog *Program, input string, wantErr bool) string {
	t.Helper()
	var b strings.Builder
	_, _, err := prog.ParseWithTrace(text.NewSource("in", input), &b)
	if wantErr != (err != nil) {
		t.Fatalf("parse %q: err = %v, wantErr %v", input, err, wantErr)
	}
	return b.String()
}

// Golden traces for the three interesting shapes: a straight success, a
// parse that fails outright, and a success that backtracks into a memo
// hit. The trace is a public, documented format (docs/OBSERVABILITY.md);
// these tests pin it exactly.

func TestTraceGoldenSuccess(t *testing.T) {
	got := traceOf(t, buildTraceProg(t), "ax", false)
	want := `S @0 {
  B @0 {
    A @0 {
    } A @0 -> 1
  } B @0 -> 2
} S @0 -> 2
`
	if got != want {
		t.Errorf("success trace:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceGoldenFailure(t *testing.T) {
	got := traceOf(t, buildTraceProg(t), "b", true)
	want := `S @0 {
  B @0 {
    A @0 {
    } A @0 -> fail
  } B @0 -> fail
  A @0: memo-fail
} S @0 -> fail
`
	if got != want {
		t.Errorf("failure trace:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceGoldenMemoHit(t *testing.T) {
	// "ay" fails the first alternative after A has consumed one byte, so
	// the second alternative's A resolves from the memo table.
	got := traceOf(t, buildTraceProg(t), "ay", false)
	want := `S @0 {
  B @0 {
    A @0 {
    } A @0 -> 1
  } B @0 -> fail
  A @0: memo-hit -> 1
} S @0 -> 2
`
	if got != want {
		t.Errorf("memo-hit trace:\n%s\nwant:\n%s", got, want)
	}
}

// recordingHook asserts the Hook contract the interpreter promises:
// OnEnter/OnExit pairs nest strictly and agree on (prod, pos).
type recordingHook struct {
	t     *testing.T
	stack [][2]int
	enters, exits,
	memoHits, fails int
}

func (r *recordingHook) OnEnter(prod, pos int) {
	r.enters++
	r.stack = append(r.stack, [2]int{prod, pos})
}

func (r *recordingHook) OnExit(prod, pos, end int, ok bool) {
	r.exits++
	if len(r.stack) == 0 {
		r.t.Fatal("OnExit with empty stack")
	}
	top := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	if top != [2]int{prod, pos} {
		r.t.Fatalf("OnExit(%d,%d) does not match OnEnter%v", prod, pos, top)
	}
	if ok && end < pos {
		r.t.Fatalf("OnExit(%d,%d): end %d before pos", prod, pos, end)
	}
}

func (r *recordingHook) OnMemoHit(prod, pos, end int, ok bool) { r.memoHits++ }
func (r *recordingHook) OnFail(prod, pos int)                  { r.fails++ }

func TestHookEventNesting(t *testing.T) {
	src := text.NewSource("in", "(1+2)*3 - 4*(5-6)")
	for _, cfg := range engineConfigs {
		prog := build(t, calcGrammar, cfg)
		rec := &recordingHook{t: t}
		_, stats, err := prog.ParseWithHook(src, rec)
		if err != nil {
			t.Fatalf("cfg %v: %v", cfg, err)
		}
		if len(rec.stack) != 0 {
			t.Errorf("cfg %v: %d unmatched OnEnter events", cfg, len(rec.stack))
		}
		if rec.enters != rec.exits {
			t.Errorf("cfg %v: %d enters, %d exits", cfg, rec.enters, rec.exits)
		}
		if rec.enters != stats.Calls {
			t.Errorf("cfg %v: %d enters, stats.Calls %d", cfg, rec.enters, stats.Calls)
		}
		if rec.memoHits != stats.MemoHits {
			t.Errorf("cfg %v: %d memo hits, stats.MemoHits %d", cfg, rec.memoHits, stats.MemoHits)
		}
		if rec.fails > stats.DispatchSkips {
			t.Errorf("cfg %v: %d OnFail > stats.DispatchSkips %d", cfg, rec.fails, stats.DispatchSkips)
		}
	}
}

// TestHookFailingParseStillBalanced checks the contract holds when the
// parse itself errors out.
func TestHookFailingParseStillBalanced(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	rec := &recordingHook{t: t}
	if _, _, err := prog.ParseWithHook(text.NewSource("in", "1+*2"), rec); err == nil {
		t.Fatal("expected syntax error")
	}
	if len(rec.stack) != 0 || rec.enters != rec.exits {
		t.Fatalf("unbalanced events on failing parse: %d enters, %d exits, %d open",
			rec.enters, rec.exits, len(rec.stack))
	}
}

// TestDisabledInstrumentationZeroAllocs is the regression guard the
// observability layer ships under: with no hook installed and no
// profiler attached, the steady-state void-grammar parse must allocate
// exactly zero objects — the hook seam and metrics registry may not
// disturb the zero-allocation property established by the session layer.
func TestDisabledInstrumentationZeroAllocs(t *testing.T) {
	input := strings.Repeat("(1+2)*3-4/5+", 200) + "6"
	src := text.NewSource("in", input)
	prog := build(t, voidCalcGrammar, Optimized())
	s := prog.NewSession()
	if _, _, err := s.Parse(src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := s.Parse(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation added %.1f allocs/op to session parse, want 0", allocs)
	}
	// The governed entry point with a plain background context and zero
	// Limits must be indistinguishable: arming writes a handful of
	// scalars and the edges never fire, so the nil-Limits ParseContext
	// path keeps the same zero-allocation steady state.
	ctx := context.Background()
	allocs = testing.AllocsPerRun(20, func() {
		if _, _, err := s.ParseContext(ctx, src, Limits{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("nil-Limits ParseContext added %.1f allocs/op to session parse, want 0", allocs)
	}
	// The pooled path carries the same guarantee once the pool is warm —
	// except under the race detector, which deliberately randomizes
	// sync.Pool caching and so makes pool misses (fresh parsers) part of
	// normal operation.
	if raceEnabled {
		t.Log("race detector on: skipping pooled-path alloc assertion")
		return
	}
	if _, _, err := prog.Parse(src); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, _, err := prog.Parse(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation added %.1f allocs/op to pooled parse, want 0", allocs)
	}
	// The traced entry point with sampling off and an empty trace ID is
	// the serve layer's default hot path: the sampling decision is one
	// atomic load in acquire and the exemplar branch one string
	// comparison in finishStats — neither may allocate.
	if prog.Sampling() != 0 {
		t.Fatalf("Sampling() = %d, want 0 by default", prog.Sampling())
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, _, err := prog.ParseContextTraced(ctx, src, Limits{}, ""); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("sampling-off untraced ParseContextTraced added %.1f allocs/op, want 0", allocs)
	}
}
