package vm

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// This file is the engine's resource-governance layer: hard budgets on
// what one parse may consume (input bytes, memo storage, call depth,
// wall-clock time), context cancellation, graceful degradation when the
// memo budget is hit, and containment of interpreter panics. The
// serving-grade posture is that no input — hostile, enormous, or merely
// pathological — may pin a goroutine forever or grow the memo arenas
// without bound.
//
// Enforcement is edge-based, not per-opcode: the clock and the context
// are polled on the chunk-allocation edge (memoStore carving a new row
// or chunk — the only place the memo table grows) and on the backtrack
// edge (the failure-recording path every failed literal, class,
// predicate, or production call crosses — the step that dominates
// adversarial exponential inputs). Both edges are off the
// every-matching-terminal hot path, so an ungoverned parse pays one
// predictable bool check per failure and the zero-allocation steady
// state of the session layer is untouched
// (TestDisabledInstrumentationZeroAllocs covers the
// governed-but-unlimited path too).
//
// Degradation model: when MaxMemoBytes is reached the engine sheds
// memoization — every production is treated as transient from that
// point on, exactly the degradation mode Ford's packrat work and the
// Rats! transient optimization motivate: correctness never depended on
// the memo table, only speed did. Entries already stored remain
// readable, the table just stops growing. Callers who prefer
// determinism over degradation set Strict, which turns the budget hit
// into a hard *LimitError.

// Limits bounds one parse. The zero value means unlimited; each budget
// is enforced only when positive. Limits are independent of (and
// combine with) the deadline and cancellation of a context passed to
// ParseContext.
type Limits struct {
	// MaxInputBytes rejects inputs longer than this before parsing
	// starts.
	MaxInputBytes int
	// MaxMemoBytes bounds the memo table's modeled heap footprint (the
	// Stats.MemoBytes model). When the budget is reached the engine
	// sheds memoization (see Strict): the parse continues without
	// storing new memo entries, trading packrat's linearity guarantee
	// for bounded space.
	MaxMemoBytes int
	// MaxCallDepth bounds production-call nesting — the defense against
	// deeply nested inputs driving the interpreter into the guard page.
	MaxCallDepth int
	// MaxParseDuration bounds the parse's wall-clock time, checked on
	// the governance edges.
	MaxParseDuration time.Duration
	// Strict hard-fails with a *LimitError when the memo budget is hit
	// instead of shedding memoization.
	Strict bool
}

// Tighten merges another Limits into this one, returning the stricter
// of the two budget by budget: for each budget the smaller positive
// value wins (zero means unlimited and never loosens a set budget), and
// Strict holds if either side set it. This is the layering primitive of
// a multi-tenant service — server defaults tightened by tenant budgets
// tightened by per-request overrides — with the invariant that no layer
// can ever exceed the one above it.
func (l Limits) Tighten(o Limits) Limits {
	tight := func(a, b int) int {
		if b <= 0 {
			return a
		}
		if a <= 0 || b < a {
			return b
		}
		return a
	}
	l.MaxInputBytes = tight(l.MaxInputBytes, o.MaxInputBytes)
	l.MaxMemoBytes = tight(l.MaxMemoBytes, o.MaxMemoBytes)
	l.MaxCallDepth = tight(l.MaxCallDepth, o.MaxCallDepth)
	if o.MaxParseDuration > 0 && (l.MaxParseDuration <= 0 || o.MaxParseDuration < l.MaxParseDuration) {
		l.MaxParseDuration = o.MaxParseDuration
	}
	l.Strict = l.Strict || o.Strict
	return l
}

// LimitKind names the budget a governed parse exhausted.
type LimitKind uint8

const (
	// LimitInput: the input exceeded Limits.MaxInputBytes.
	LimitInput LimitKind = iota
	// LimitMemo: the memo footprint exceeded Limits.MaxMemoBytes under
	// Strict (without Strict the engine sheds memoization instead).
	LimitMemo
	// LimitDepth: production-call nesting exceeded Limits.MaxCallDepth.
	LimitDepth
	// LimitTime: the deadline (context or MaxParseDuration) passed.
	LimitTime
	// LimitCanceled: the context was canceled.
	LimitCanceled
)

func (k LimitKind) String() string {
	switch k {
	case LimitInput:
		return "input-bytes"
	case LimitMemo:
		return "memo-bytes"
	case LimitDepth:
		return "call-depth"
	case LimitTime:
		return "deadline"
	case LimitCanceled:
		return "canceled"
	}
	return fmt.Sprintf("LimitKind(%d)", uint8(k))
}

// LimitError reports a parse stopped by a resource budget: which budget
// blew, the configured limit, the observed value, and how far into the
// input the parse had reached when it stopped.
type LimitError struct {
	// Kind is the exhausted budget.
	Kind LimitKind
	// Limit is the configured budget (bytes, depth, or nanoseconds);
	// zero for cancellation.
	Limit int64
	// Actual is the observed value that blew the budget, in the same
	// unit as Limit.
	Actual int64
	// Pos is the input position the parse had reached.
	Pos int
	// Cause carries the underlying context error for LimitTime and
	// LimitCanceled (context.DeadlineExceeded, context.Canceled).
	Cause error
}

func (e *LimitError) Error() string {
	switch e.Kind {
	case LimitCanceled:
		return fmt.Sprintf("parse canceled at position %d: %v", e.Pos, e.Cause)
	case LimitTime:
		return fmt.Sprintf("parse deadline exceeded at position %d (budget %s)",
			e.Pos, time.Duration(e.Limit))
	case LimitInput:
		return fmt.Sprintf("input of %d bytes exceeds limit of %d", e.Actual, e.Limit)
	case LimitMemo:
		return fmt.Sprintf("memo footprint of %d bytes exceeds strict limit of %d at position %d",
			e.Actual, e.Limit, e.Pos)
	case LimitDepth:
		return fmt.Sprintf("call depth %d exceeds limit of %d at position %d",
			e.Actual, e.Limit, e.Pos)
	}
	return fmt.Sprintf("resource limit %v exceeded at position %d", e.Kind, e.Pos)
}

// Unwrap exposes the context error, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work on governed parses.
func (e *LimitError) Unwrap() error { return e.Cause }

// EngineError reports an interpreter panic contained by the governance
// layer: instead of unwinding into the caller, the panic is converted
// into an error carrying the panic value, the farthest input position
// the parse had reached, and the stack of the containment point.
type EngineError struct {
	// Panic is the recovered panic value.
	Panic any
	// Pos is the farthest input position reached before the panic.
	Pos int
	// Stack is the containment stack trace (diagnostic only).
	Stack string
}

func (e *EngineError) Error() string {
	return fmt.Sprintf("internal engine error at position %d: %v", e.Pos, e.Panic)
}

// noLimit is the sentinel budget of an ungoverned parse: comparisons
// against it are always false for realistic workloads, so the unlimited
// path needs no extra branch.
const noLimit = int(^uint(0) >> 1)

// pollEvery is the number of governance-edge crossings between clock
// and context polls. Edges fire at sub-microsecond intervals on
// adversarial inputs, so a poll lands within tens of microseconds of a
// deadline while keeping time.Now off the common path.
const pollEvery = 256

// arm installs ctx and lim on a parser that begin has just rewound. It
// returns a *LimitError immediately when the input already exceeds
// MaxInputBytes or the context is already dead. The nil-context,
// zero-Limits case leaves the parser exactly as ungoverned as plain
// Parse — no time is read and nothing allocates.
func (ps *Parser) arm(ctx context.Context, lim Limits) *LimitError {
	if lim.MaxInputBytes > 0 && len(ps.in) > lim.MaxInputBytes {
		return &LimitError{Kind: LimitInput, Limit: int64(lim.MaxInputBytes), Actual: int64(len(ps.in))}
	}
	if lim.MaxCallDepth > 0 {
		ps.maxDepth = lim.MaxCallDepth
	}
	if lim.MaxMemoBytes > 0 {
		ps.memoBudget = lim.MaxMemoBytes
	}
	ps.strict = lim.Strict
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return ctxLimitError(err, lim.MaxParseDuration, 0)
		}
		if ctx.Done() != nil {
			ps.ctx = ctx
			ps.timed = true
		}
		if d, ok := ctx.Deadline(); ok {
			ps.deadline = d
			ps.timed = true
		}
	}
	if lim.MaxParseDuration > 0 {
		ps.timeBudget = lim.MaxParseDuration
		if d := time.Now().Add(lim.MaxParseDuration); ps.deadline.IsZero() || d.Before(ps.deadline) {
			ps.deadline = d
		}
		ps.timed = true
	}
	ps.poll = pollEvery
	return nil
}

// disarm rewinds the governance state to the ungoverned defaults; begin
// calls it so a pooled parser never inherits a previous caller's
// budgets. Scalar writes only — the ungoverned path stays
// allocation-free.
func (ps *Parser) disarm() {
	ps.ctx = nil
	ps.deadline = time.Time{}
	ps.timeBudget = 0
	ps.timed = false
	ps.maxDepth = noLimit
	ps.memoBudget = noLimit
	ps.strict = false
	ps.depth = 0
	ps.memoUsed = 0
	ps.shed = false
	ps.poll = 0
}

// ctxLimitError wraps a context error as the matching *LimitError.
// budget is the configured MaxParseDuration (zero when the deadline
// came from the context alone).
func ctxLimitError(err error, budget time.Duration, pos int) *LimitError {
	kind := LimitCanceled
	var limit int64
	if err == context.DeadlineExceeded {
		kind = LimitTime
		limit = int64(budget)
	}
	return &LimitError{Kind: kind, Limit: limit, Pos: pos, Cause: err}
}

// pollEdge is the governance poll, called from the chunk-allocation and
// backtrack edges of a timed parse. Most crossings only decrement a
// countdown; every pollEvery-th reads the context and the clock and
// aborts the parse (via panic, contained in run) when either says stop.
func (ps *Parser) pollEdge(pos int) {
	ps.poll--
	if ps.poll > 0 {
		return
	}
	ps.poll = pollEvery
	if ps.ctx != nil {
		if err := ps.ctx.Err(); err != nil {
			panic(ctxLimitError(err, ps.timeBudget, pos))
		}
	}
	if !ps.deadline.IsZero() && time.Now().After(ps.deadline) {
		panic(&LimitError{Kind: LimitTime, Limit: int64(ps.timeBudget),
			Pos: pos, Cause: context.DeadlineExceeded})
	}
}

// chargeMemo admits bytes more of memo storage, riding the governance
// poll on this allocation edge. It returns false — after shedding
// memoization — when the budget is exhausted; under Strict it aborts
// the parse instead.
func (ps *Parser) chargeMemo(bytes, pos int) bool {
	if ps.timed {
		ps.pollEdge(pos)
	}
	used := ps.memoUsed + bytes
	if used > ps.memoBudget {
		if ps.strict {
			panic(&LimitError{Kind: LimitMemo, Limit: int64(ps.memoBudget),
				Actual: int64(used), Pos: pos})
		}
		ps.shedMemo(pos)
		return false
	}
	ps.memoUsed = used
	return true
}

// shedMemo switches the parse into degraded mode: every production is
// transient from here on. Existing memo entries stay readable (they are
// already paid for); the table just stops growing. The event is
// recorded in the parse's Stats, the process metrics registry, and —
// when the installed hook implements ShedHook — the hook seam.
func (ps *Parser) shedMemo(pos int) {
	if ps.shed {
		return
	}
	ps.shed = true
	ps.stats.MemoSheds++
	metrics.memoSheds.Add(1)
	if h, ok := ps.hook.(ShedHook); ok {
		h.OnMemoShed(pos, ps.memoArenaBytes())
	}
}

// contain is the deferred recovery installed by run and runPrefix: a
// *LimitError thrown on a governance edge becomes the parse's error,
// and any other interpreter panic is converted into an *EngineError
// with the farthest position attached, so a grammar or engine bug (or a
// panicking hook) degrades into an error return instead of unwinding
// through a server's request handler.
func (ps *Parser) contain(val *ast.Value, err *error) {
	r := recover()
	if r == nil {
		return
	}
	*val = nil
	ps.finishStats()
	far := ps.stats.MaxPos
	if ps.failPos > far {
		far = ps.failPos
	}
	if le, ok := r.(*LimitError); ok {
		metrics.limitStops.Add(1)
		if g := ps.grammarTally(); g != nil {
			g.limitStops.Add(1)
		}
		*err = le
		return
	}
	metrics.panicsContained.Add(1)
	*err = &EngineError{Panic: r, Pos: far, Stack: string(debug.Stack())}
}

// runContext arms the parser and runs it, folding an arming failure
// into the error return. The caller has already called begin.
func (ps *Parser) runContext(ctx context.Context, lim Limits) (ast.Value, error) {
	if le := ps.arm(ctx, lim); le != nil {
		ps.finishStats()
		metrics.limitStops.Add(1)
		if g := ps.grammarTally(); g != nil {
			g.limitStops.Add(1)
		}
		return nil, le
	}
	return ps.run()
}

// ParseContext is Parse under a context and resource budgets: the parse
// aborts with a typed *LimitError when ctx is canceled, a deadline
// (ctx's or lim.MaxParseDuration's) passes, or a budget in lim blows —
// and degrades gracefully (shedding memoization) when the memo budget
// is hit without Strict. A nil-equivalent context (no deadline, no
// cancellation) with zero Limits behaves exactly like Parse, including
// the zero-allocation steady state.
func (p *Program) ParseContext(ctx context.Context, src *text.Source, lim Limits) (ast.Value, Stats, error) {
	ps := p.acquire()
	defer p.release(ps)
	ps.begin(src)
	val, err := ps.runContext(ctx, lim)
	return val, ps.stats, err
}

// ParseContext is Session.Parse under a context and resource budgets;
// see Program.ParseContext.
func (s *Session) ParseContext(ctx context.Context, src *text.Source, lim Limits) (ast.Value, Stats, error) {
	s.ps.begin(src)
	val, err := s.ps.runContext(ctx, lim)
	return val, s.ps.stats, err
}

// ParseContextWithHook is ParseContext with h receiving the parse's
// events — the governed variant of ParseWithHook, for callers (such as
// a parse service) that want budgets, cancellation, and instrumentation
// on the same pooled parse.
func (p *Program) ParseContextWithHook(ctx context.Context, src *text.Source, lim Limits, h Hook) (ast.Value, Stats, error) {
	ps := p.acquire()
	defer p.release(ps)
	ps.begin(src)
	ps.hook = h
	val, err := ps.runContext(ctx, lim)
	return val, ps.stats, err
}
