package vm

import (
	"context"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// This file threads a distributed-trace identity through a parse: the
// serve layer accepts (or mints) a W3C traceparent per request and arms
// the parse with its trace ID, which then (a) reaches the installed
// hook when the hook opts in via TraceContextHook — the Chrome-trace
// exporter stamps its stream with it — and (b) is recorded as an
// exemplar on the latency-histogram bucket the parse lands in, so a
// scrape of the tail buckets carries real trace IDs to chase instead
// of anonymous counts. An empty trace ID (the default, and every parse
// outside the traced entry points) changes nothing: begin resets the
// field with a scalar write and finishStats checks it with one string
// comparison, so the untraced path stays allocation-free.

// TraceContextHook is an optional extension of Hook (like ShedHook):
// when the installed hook also implements it, a traced parse
// (ParseContextTraced and friends) reports its W3C trace ID once,
// before the first parse event, so event streams can be correlated
// with distributed traces. Untraced parses never fire it.
type TraceContextHook interface {
	Hook
	OnTraceContext(traceID string)
}

// setTraceContext arms the parse with traceID. Called after begin (and
// after any hook install), so the hook notification sees the hook that
// will receive this parse's events.
func (ps *Parser) setTraceContext(traceID string) {
	ps.traceID = traceID
	if traceID == "" {
		return
	}
	if h, ok := ps.hook.(TraceContextHook); ok {
		h.OnTraceContext(traceID)
	}
}

// ParseContextTraced is ParseContext carrying a trace ID: the parse's
// latency-histogram observation records (trace ID, grammar label,
// duration) as an exemplar on the bucket it lands in. An empty traceID
// makes this exactly ParseContext, zero-allocation steady state
// included.
func (p *Program) ParseContextTraced(ctx context.Context, src *text.Source, lim Limits, traceID string) (ast.Value, Stats, error) {
	ps := p.acquire()
	defer p.release(ps)
	ps.begin(src)
	ps.setTraceContext(traceID)
	val, err := ps.runContext(ctx, lim)
	return val, ps.stats, err
}

// ParseContextTracedWithHook is ParseContextWithHook carrying a trace
// ID; when h implements TraceContextHook it receives the ID before any
// parse event.
func (p *Program) ParseContextTracedWithHook(ctx context.Context, src *text.Source, lim Limits, traceID string, h Hook) (ast.Value, Stats, error) {
	ps := p.acquire()
	defer p.release(ps)
	ps.begin(src)
	ps.hook = h
	ps.setTraceContext(traceID)
	val, err := ps.runContext(ctx, lim)
	return val, ps.stats, err
}
