package vm

import (
	"fmt"
	"io"
	"strings"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// Hook receives parse events from the interpreter. Hooks are the
// engine's pluggable observability seam: the production-call trace and
// the per-production profiler are both hook implementations, and callers
// can supply their own (coverage maps, breakpoint debuggers, sampling
// profilers) without the engine knowing about them.
//
// The interpreter invokes a hook synchronously from the parse, so an
// implementation must be fast and must not call back into the parser.
// When no hook is installed the engine takes a nil-check fast path that
// adds zero allocations and no measurable time to a parse (the property
// TestDisabledInstrumentationZeroAllocs locks in).
//
// prod is the production index; resolve it to a name with
// Program.ProductionName. Events for one parse always arrive from the
// goroutine running that parse, and OnEnter/OnExit pairs nest strictly,
// so a hook can maintain a call stack by push/pop alone.
type Hook interface {
	// OnEnter fires when a production's body starts evaluating at pos —
	// after first-byte dispatch accepted the position and the memo table
	// (if the production is memoized) reported a miss. One OnEnter is
	// always matched by one OnExit.
	OnEnter(prod, pos int)
	// OnExit fires when the production's body finishes: end is the
	// position after the match when ok, 0 when the production failed.
	OnExit(prod, pos, end int, ok bool)
	// OnMemoHit fires when the memo table answers for prod at pos
	// instead of evaluating it: a stored success ending at end (ok) or a
	// stored failure (!ok, end == pos). The body is not evaluated, so no
	// OnEnter/OnExit pair follows.
	OnMemoHit(prod, pos, end int, ok bool)
	// OnFail fires when first-byte dispatch rejects prod at pos without
	// entering it — the dispatch-skip fast path. (Failures of an entered
	// production are reported as OnExit with ok=false.)
	OnFail(prod, pos int)
}

// ShedHook is an optional extension of Hook for governed parses
// (ParseContext): when the installed hook also implements ShedHook, the
// engine reports the moment a memo-budget hit sheds memoization (see
// Limits.MaxMemoBytes). pos is the input position at the shed;
// arenaBytes is the carved memo-arena footprint at that point. The
// event fires at most once per parse, synchronously like every hook
// event.
//
// On a parse stopped by a limit or a contained panic, OnEnter events
// may be left without their matching OnExit — stack-tracking hooks
// should reset their state per parse rather than assume balance across
// an aborted run.
type ShedHook interface {
	Hook
	OnMemoShed(pos, arenaBytes int)
}

// ProductionName returns the fully qualified name of production prod
// (as used in hook events and profiles), or "" when out of range.
func (p *Program) ProductionName(prod int) string {
	if prod < 0 || prod >= len(p.prods) {
		return ""
	}
	return p.prods[prod].name
}

// ParseWithHook is Parse with h receiving the parse's events. The hook
// is installed for this parse only.
func (p *Program) ParseWithHook(src *text.Source, h Hook) (ast.Value, Stats, error) {
	ps := p.acquire()
	ps.begin(src)
	ps.hook = h
	val, err := ps.run()
	stats := ps.stats
	p.release(ps)
	return val, stats, err
}

// traceHook renders parse events as the human-readable call trace
// ParseWithTrace streams: one line per production entry, exit, and memo
// hit, indented by call depth. It is the reference Hook implementation —
// the engine's original hard-wired trace, rebuilt on the event seam.
type traceHook struct {
	prog  *Program
	w     io.Writer
	depth int
}

func newTraceHook(prog *Program, w io.Writer) *traceHook {
	return &traceHook{prog: prog, w: w}
}

func (t *traceHook) line(format string, args ...any) {
	fmt.Fprintf(t.w, "%s", strings.Repeat("  ", t.depth))
	fmt.Fprintf(t.w, format, args...)
	fmt.Fprintln(t.w)
}

func (t *traceHook) OnEnter(prod, pos int) {
	t.line("%s @%d {", t.prog.prods[prod].display, pos)
	t.depth++
}

func (t *traceHook) OnExit(prod, pos, end int, ok bool) {
	t.depth--
	if ok {
		t.line("} %s @%d -> %d", t.prog.prods[prod].display, pos, end)
	} else {
		t.line("} %s @%d -> fail", t.prog.prods[prod].display, pos)
	}
}

func (t *traceHook) OnMemoHit(prod, pos, end int, ok bool) {
	outcome := "memo-fail"
	if ok {
		outcome = fmt.Sprintf("memo-hit -> %d", end)
	}
	t.line("%s @%d: %s", t.prog.prods[prod].display, pos, outcome)
}

// OnFail is a dispatch skip; the trace has never shown those (they fire
// on every fast-failed alternative and would drown the call structure).
func (t *traceHook) OnFail(prod, pos int) {}
