package vm

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"modpeg/internal/text"
)

// sampleTestProg builds a calc program with its own label and arranges
// for its rolling profile to be dropped when the test ends (the sampled
// registry is process-global).
func sampleTestProg(t *testing.T, label string) *Program {
	t.Helper()
	prog := build(t, calcGrammar, Optimized())
	prog.SetLabel(label)
	t.Cleanup(ResetSampledProfiles)
	return prog
}

func TestSampledProfilingAggregates(t *testing.T) {
	prog := sampleTestProg(t, "test/sample-agg@v1")
	prog.SetSampling(1) // every pooled checkout
	src := text.NewSource("in", "(1+2)*3-4")
	const parses = 5
	for i := 0; i < parses; i++ {
		if _, _, err := prog.Parse(src); err != nil {
			t.Fatal(err)
		}
	}
	sp, ok := SampledProfileFor("test/sample-agg@v1")
	if !ok {
		t.Fatal("no sampled profile recorded at rate 1")
	}
	if sp.Parses != parses {
		t.Errorf("sampled parses = %d, want %d", sp.Parses, parses)
	}
	if len(sp.Productions) == 0 {
		t.Fatal("sampled profile has no production rows")
	}
	// Rows are hottest-first and aggregated across all sampled parses.
	var calls int64
	for i, row := range sp.Productions {
		calls += row.Calls
		if i > 0 && row.SelfNanos > sp.Productions[i-1].SelfNanos {
			t.Errorf("row %d (%s) hotter than row %d: not sorted by self time", i, row.Name, i-1)
		}
	}
	if calls == 0 {
		t.Error("aggregated rows show zero production calls")
	}
	// The JSON form (the /debug/profiles payload) round-trips.
	data, err := SampledProfilesJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []SampledProfile
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("SampledProfilesJSON does not round-trip: %v", err)
	}
}

func TestSamplingRateOneInN(t *testing.T) {
	prog := sampleTestProg(t, "test/sample-rate@v1")
	prog.SetSampling(4)
	src := text.NewSource("in", "1+2")
	for i := 0; i < 8; i++ { // checkouts tick 1..8; ticks 4 and 8 sample
		if _, _, err := prog.Parse(src); err != nil {
			t.Fatal(err)
		}
	}
	sp, ok := SampledProfileFor("test/sample-rate@v1")
	if !ok {
		t.Fatal("no sampled profile recorded at rate 4")
	}
	if sp.Parses != 2 {
		t.Errorf("sampled parses = %d, want 2 of 8 at rate 4", sp.Parses)
	}
}

func TestSamplingOffRecordsNothing(t *testing.T) {
	prog := sampleTestProg(t, "test/sample-off@v1")
	src := text.NewSource("in", "1+2")
	for i := 0; i < 4; i++ {
		if _, _, err := prog.Parse(src); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := SampledProfileFor("test/sample-off@v1"); ok {
		t.Error("sampling off (default) still recorded a profile")
	}
	if prog.Sampling() != 0 {
		t.Errorf("Sampling() = %d, want 0", prog.Sampling())
	}
	prog.SetSampling(-3) // negative clamps to off
	if prog.Sampling() != 0 {
		t.Errorf("Sampling() after SetSampling(-3) = %d, want 0", prog.Sampling())
	}
}

func TestResetSampledProfiles(t *testing.T) {
	prog := sampleTestProg(t, "test/sample-reset@v1")
	prog.SetSampling(1)
	if _, _, err := prog.Parse(text.NewSource("in", "1+2")); err != nil {
		t.Fatal(err)
	}
	if _, ok := SampledProfileFor("test/sample-reset@v1"); !ok {
		t.Fatal("profile missing before reset")
	}
	ResetSampledProfiles()
	if _, ok := SampledProfileFor("test/sample-reset@v1"); ok {
		t.Error("profile survived ResetSampledProfiles")
	}
}

// traceRecorder is a Hook that also implements TraceContextHook.
type traceRecorder struct {
	recordingHook
	traceIDs []string
}

func (tr *traceRecorder) OnTraceContext(traceID string) { tr.traceIDs = append(tr.traceIDs, traceID) }

func TestTraceContextHookNotified(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	src := text.NewSource("in", "1+2*3")
	rec := &traceRecorder{recordingHook: recordingHook{t: t}}
	ctx := context.Background()
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	if _, _, err := prog.ParseContextTracedWithHook(ctx, src, Limits{}, traceID, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.traceIDs) != 1 || rec.traceIDs[0] != traceID {
		t.Fatalf("hook saw trace IDs %v, want exactly [%s]", rec.traceIDs, traceID)
	}
	// An untraced parse fires no notification, and a hook without the
	// optional interface is simply not called.
	rec.traceIDs = nil
	if _, _, err := prog.ParseContextTracedWithHook(ctx, src, Limits{}, "", rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.traceIDs) != 0 {
		t.Errorf("empty trace ID still notified: %v", rec.traceIDs)
	}
	if _, _, err := prog.ParseContextTracedWithHook(ctx, src, Limits{}, traceID, &recordingHook{t: t}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	h.Observe(15)
	h.h.exemplar(15, "aaaabbbbccccdddd", "g@v1")
	h.Observe(1000)
	h.h.exemplar(1000, "eeeeffff00001111", "g@v1")
	s := h.Snapshot()
	if e := s.Buckets[1].Exemplar; e == nil || e.TraceID != "aaaabbbbccccdddd" || e.Value != 15 {
		t.Errorf("bucket le=20 exemplar = %+v, want trace aaaabbbbccccdddd value 15", s.Buckets[1].Exemplar)
	}
	if s.Buckets[0].Exemplar != nil {
		t.Errorf("bucket le=10 has stray exemplar %+v", s.Buckets[0].Exemplar)
	}
	if s.InfExemplar == nil || s.InfExemplar.TraceID != "eeeeffff00001111" {
		t.Errorf("+Inf exemplar = %+v, want trace eeeeffff00001111", s.InfExemplar)
	}
	h.Reset()
	if s := h.Snapshot(); s.Buckets[1].Exemplar != nil || s.InfExemplar != nil {
		t.Error("Reset left exemplars behind")
	}
}

// TestHistogramObserveResetSnapshotRace hammers observe, reset, and
// snapshot concurrently. Under -race this checks the lock-free claims;
// in any mode it checks the snapshot's internal consistency: cumulative
// bucket counts must be monotone and never exceed Count. (A snapshot
// racing a reset once could observe bucket sums above its Count — the
// count was loaded before the buckets were summed — rendering a
// non-monotone exposition; snapshot now clamps Count to the bucket
// total.)
func TestHistogramObserveResetSnapshotRace(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(int64((w*7919 + i) % 2000))
				if i%64 == 0 {
					h.h.exemplar(int64(i%2000), "aaaabbbbccccdddd", "g")
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%100 == 0 {
				h.Reset()
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var prev int64
		for _, b := range s.Buckets {
			if b.Count < prev {
				t.Fatalf("snapshot %d: cumulative buckets not monotone: %v", i, s.Buckets)
			}
			prev = b.Count
		}
		if prev > s.Count {
			t.Fatalf("snapshot %d: finite-bucket total %d exceeds Count %d (torn snapshot)", i, prev, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}
