package vm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// This file implements incremental reparsing over recycled memo tables.
//
// A packrat parse leaves behind a memo table mapping (production,
// position) to outcomes. After a small edit most of that table is still
// an accurate description of the new text: entries whose examined region
// lies entirely before the edit saw nothing change, and entries whose
// position lies entirely after it saw the same bytes at shifted
// positions (PEG evaluation only ever reads forward from its start).
// Document keeps the table between parses and reuses it:
//
//  1. Invalidate every entry whose examined span overlaps an edit's
//     damage region. "Examined" is wider than "matched": first-byte
//     dispatch, literals that failed partway, character classes, and
//     lookahead predicates all read bytes they did not consume, so each
//     entry's match extent is widened by its production's recorded
//     farthest-lookahead watermark (Parser.prodLook, maintained by
//     parseProd's examined-region framing in interp.go).
//  2. Relocate surviving entries past an edit by the length delta. The
//     chunked memo layout makes this a pointer remap: entries record the
//     length they consumed rather than an absolute end position, so
//     moving a whole position's chunk-directory row to its shifted slot
//     relocates every entry in it without rewriting a single row.
//  3. Reparse from the root. Everything outside the damage re-derives
//     instantly from surviving entries (counted as Stats.MemoReused);
//     only productions overlapping the damage are actually re-evaluated.
//
// Two fallbacks keep the scheme honest. When the damage region exceeds
// incrementalDamageFraction of the document, reuse cannot pay for the
// table scan and Apply reparses from scratch. And because invalidated
// entries' storage is only reclaimed by a full reparse (the memo arenas
// recycle wholesale, not entry-by-entry), Apply also falls back when the
// carved arena footprint outgrows incrementalGrowthFactor times the last
// full parse's — bounding a long edit session's memory at a constant
// factor of one parse.
//
// Reused success values are shared subtrees of earlier results: their
// contents are identical to what a from-scratch parse would build, but
// their recorded spans refer to the revision that first parsed them (and
// relocation does not rewrite values). ast.Equal and ast.Format are
// span-insensitive, and the incremental-vs-scratch fuzz oracle holds
// Apply to producing equal values. Failed parses are reported exactly as
// a from-scratch parse would report them: when the incremental pass does
// not accept the document, Apply redoes a full reparse, so farthest-
// failure positions and expectation sets never reflect recycled state.

// Edit describes one textual change to a Document: the OldLen bytes at
// Off (both in pre-edit coordinates) are replaced by Text, whose length
// must equal NewLen. Insertions have OldLen 0; deletions have NewLen 0.
// A batch passed to one Apply call must not contain overlapping edits;
// edits may touch, and are applied in position order.
type Edit struct {
	Off    int    // byte offset of the change in the pre-edit text
	OldLen int    // bytes removed
	NewLen int    // bytes inserted; must equal len(Text)
	Text   string // replacement content
}

// Fallback thresholds; see the file comment.
const (
	// incrementalDamageFraction is the largest fraction of the post-edit
	// document the damage regions may cover before Apply prefers a full
	// reparse.
	incrementalDamageFraction = 0.25
	// incrementalGrowthFactor bounds the carved memo-arena footprint at
	// this multiple of the last full parse's footprint (plus
	// incrementalGrowthSlack for small documents); beyond it Apply does a
	// full reparse to compact the table.
	incrementalGrowthFactor = 4
	incrementalGrowthSlack  = 256 << 10
)

// Document owns a source text plus the memo state of its last parse and
// reparses incrementally as the text is edited. Create one with
// Program.NewDocument; mutate it with Apply. A Document is not safe for
// concurrent use, and it holds a dedicated Parser (with its memo arenas)
// alive for its own lifetime — it is an editor-session object, not a
// per-request one.
//
// Incremental reuse requires the memoizing chunked engine (the Optimized
// configuration). Under other engine configurations a Document still
// works — Apply simply reparses from scratch every time.
type Document struct {
	prog *Program
	ps   *Parser
	name string
	txt  string

	val   ast.Value
	stats Stats
	err   error

	// cumulative live-table accounting in the Stats.MemoBytes model:
	// rows and chunks that survived plus those the last apply allocated.
	liveRows   int
	liveChunks int
	// arena footprint right after the last full reparse, for the growth
	// fallback.
	baseArenaBytes int

	// gens is the document's parse generation; entries stored during
	// apply N carry tag N, so hits on older tags count as reuse. A wrap
	// of the uint16 tag space forces a full reparse, which resets to 0.
	gens uint16

	// spare is the double buffer the chunk-directory remap writes into;
	// after the swap the previous directory is cleared and becomes the
	// next spare. Invariant: spare is fully nil between applies.
	spare [][]*memoChunk
}

// NewDocument parses src and returns a Document holding the result and
// the parse's memo state. The initial parse's outcome is available via
// Value, Stats, and Err; a Document whose current text does not parse is
// still editable (that is the normal state mid-edit).
func (p *Program) NewDocument(src *text.Source) *Document {
	d := &Document{
		prog: p,
		ps:   &Parser{prog: p},
		name: src.Name(),
	}
	d.fullParse(src)
	return d
}

// Value returns the semantic value of the last (re)parse, nil if it
// failed.
func (d *Document) Value() ast.Value { return d.val }

// Stats returns the statistics of the last (re)parse. For incremental
// applies, MemoBytes reports the whole live table (surviving plus new
// storage), not just the apply's own allocations, so it stays comparable
// to a from-scratch parse of the same text.
func (d *Document) Stats() Stats { return d.stats }

// Err returns the last (re)parse's error, nil if it succeeded.
func (d *Document) Err() error { return d.err }

// Text returns the document's current content.
func (d *Document) Text() string { return d.txt }

// Source returns the document's current content as a *text.Source.
func (d *Document) Source() *text.Source { return d.ps.src }

// Apply applies the edits to the document text and reparses, reusing the
// previous parse's memo table where it is still valid. It returns the new
// semantic value, the reparse's statistics (Stats.MemoReused,
// MemoInvalidated, and MemoRelocated describe the reuse), and the parse
// error if the edited text does not parse. Invalid edits (out of bounds,
// overlapping, or NewLen ≠ len(Text)) leave the document untouched and
// return an error. Applying no edits returns the cached result.
func (d *Document) Apply(edits ...Edit) (ast.Value, Stats, error) {
	if len(edits) == 0 {
		return d.val, d.stats, d.err
	}
	sorted, damage, err := normalizeEdits(d.txt, edits)
	if err != nil {
		return nil, Stats{}, err
	}
	newText := spliceEdits(d.txt, sorted)
	src := text.NewSource(d.name, newText)
	metrics.incrementalApplies.Add(1)

	full := !d.canReuse() ||
		float64(damage) > incrementalDamageFraction*float64(len(newText)+1) ||
		d.ps.memoArenaBytes() > incrementalGrowthFactor*d.baseArenaBytes+incrementalGrowthSlack ||
		d.gens == math.MaxUint16
	if full {
		metrics.incrementalFullReparses.Add(1)
		d.fullParse(src)
		return d.val, d.stats, d.err
	}

	invalidated, relocated := d.remap(sorted, len(newText))
	d.gens++
	d.ps.gen = d.gens
	d.ps.beginIncremental(src)
	val, err := d.ps.run()
	stats := d.ps.stats
	if err != nil {
		// Report failures exactly as a from-scratch parse would: reused
		// entries cannot replay the failure records their original
		// evaluation produced, so the farthest-failure diagnosis of a
		// failed incremental pass could otherwise differ from scratch.
		// The returned Stats describe the full reparse that produced the
		// reported result.
		metrics.incrementalFullReparses.Add(1)
		d.fullParse(src)
		return d.val, d.stats, d.err
	}
	d.liveRows += stats.ChunkRows
	d.liveChunks += stats.ChunksAllocated
	stats.MemoInvalidated = invalidated
	stats.MemoRelocated = relocated
	stats.MemoBytes = d.liveChunks*chunkSize*memoEntrySize + d.liveRows*d.ps.chunkCount*8
	metrics.observePeakMemo(int64(stats.MemoBytes))
	metrics.memoEntriesReused.Add(int64(stats.MemoReused))
	metrics.memoEntriesInvalidated.Add(int64(invalidated))
	metrics.memoEntriesRelocated.Add(int64(relocated))
	d.txt = newText
	d.val, d.stats, d.err = val, stats, nil
	return d.val, d.stats, d.err
}

// canReuse reports whether the engine configuration supports memo-table
// recycling: the chunked memoizing layout with at least one memo column.
func (d *Document) canReuse() bool {
	return d.prog.opts.Memoize && d.prog.opts.ChunkedMemo && d.prog.memoCols > 0
}

// fullParse reparses src from scratch, resetting the memo table, the
// lookahead watermarks, and the generation counter.
func (d *Document) fullParse(src *text.Source) {
	d.ps.begin(src)
	d.val, d.err = d.ps.run()
	d.stats = d.ps.stats
	d.txt = src.Content()
	d.liveRows = d.stats.ChunkRows
	d.liveChunks = d.stats.ChunksAllocated
	d.baseArenaBytes = d.ps.memoArenaBytes()
	d.gens = 0
}

// remap performs the invalidate-and-relocate pass over the chunk
// directory: it kills entries whose examined span (match extent widened
// by the production's lookahead watermark) crosses into a damage region,
// drops rows inside the damage, and copies surviving rows into the spare
// directory at their shifted positions. It returns the invalidated and
// relocated entry counts. Row and chunk storage is not rewritten —
// surviving entries move by pointer only.
func (d *Document) remap(edits []Edit, newLen int) (invalidated, relocated int) {
	ps := d.ps
	old := ps.chunks
	newN := newLen + 1
	if cap(d.spare) >= newN {
		d.spare = d.spare[:newN]
	} else {
		d.spare = make([][]*memoChunk, newN)
	}
	newDir := d.spare

	liveRows, liveChunks := 0, 0
	ei, delta := 0, 0
	for pos, row := range old {
		for ei < len(edits) && pos >= edits[ei].Off+edits[ei].OldLen {
			delta += edits[ei].NewLen - edits[ei].OldLen
			ei++
		}
		if row == nil {
			continue
		}
		if ei < len(edits) && pos >= edits[ei].Off {
			// Inside the damage region: the row is dropped wholesale.
			for _, chunk := range row {
				if chunk == nil {
					continue
				}
				for k := range chunk {
					if chunk[k].state != memoEmpty {
						invalidated++
					}
				}
			}
			continue
		}
		// Before the next edit (or past the last): entries survive unless
		// their examined span reaches the upcoming damage.
		limit := math.MaxInt
		if ei < len(edits) {
			limit = edits[ei].Off
		}
		rowLive := 0
		for ci, chunk := range row {
			if chunk == nil {
				continue
			}
			chunkLive := 0
			base := ci * chunkSize
			for k := range chunk {
				e := &chunk[k]
				if e.state == memoEmpty {
					continue
				}
				if pos+int(e.len)+int(ps.prodLook[base+k]) > limit {
					*e = memoEntry{}
					invalidated++
					continue
				}
				chunkLive++
			}
			if chunkLive == 0 {
				// Fully dead chunk: unlink it so the live-table model does
				// not keep charging for it (its arena storage is reclaimed
				// by the next full reparse).
				row[ci] = nil
				continue
			}
			rowLive += chunkLive
			liveChunks++
		}
		if rowLive == 0 {
			continue
		}
		liveRows++
		newDir[pos+delta] = row
		if delta != 0 {
			relocated += rowLive
		}
	}

	// Swap directories; the old one is cleared wholesale and becomes the
	// next spare (Document invariant: spare is fully nil between applies).
	ps.chunks = newDir
	clear(old)
	d.spare = old[:0]
	d.liveRows = liveRows
	d.liveChunks = liveChunks
	return invalidated, relocated
}

// normalizeEdits validates edits against the current text, returning a
// position-sorted copy and the total damage size (the larger of each
// edit's removed and inserted extent, summed — the scan width a reparse
// must re-derive at minimum).
func normalizeEdits(cur string, edits []Edit) ([]Edit, int, error) {
	sorted := make([]Edit, len(edits))
	copy(sorted, edits)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	damage := 0
	prevEnd := 0
	for i, e := range sorted {
		switch {
		case e.Off < 0 || e.OldLen < 0 || e.NewLen < 0:
			return nil, 0, fmt.Errorf("modpeg/vm: invalid edit %+v: negative field", e)
		case e.Off+e.OldLen > len(cur):
			return nil, 0, fmt.Errorf("modpeg/vm: invalid edit %+v: out of bounds (document is %d bytes)", e, len(cur))
		case e.NewLen != len(e.Text):
			return nil, 0, fmt.Errorf("modpeg/vm: invalid edit %+v: NewLen %d != len(Text) %d", e, e.NewLen, len(e.Text))
		case i > 0 && e.Off < prevEnd:
			return nil, 0, fmt.Errorf("modpeg/vm: overlapping edits at offset %d", e.Off)
		}
		prevEnd = e.Off + e.OldLen
		if e.OldLen > e.NewLen {
			damage += e.OldLen
		} else {
			damage += e.NewLen
		}
	}
	return sorted, damage, nil
}

// spliceEdits applies position-sorted, non-overlapping edits to cur.
func spliceEdits(cur string, edits []Edit) string {
	var b strings.Builder
	n := len(cur)
	for _, e := range edits {
		n += e.NewLen - e.OldLen
	}
	b.Grow(n)
	at := 0
	for _, e := range edits {
		b.WriteString(cur[at:e.Off])
		b.WriteString(e.Text)
		at = e.Off + e.OldLen
	}
	b.WriteString(cur[at:])
	return b.String()
}

// beginIncremental rewinds the parser for a reparse that keeps the memo
// state: statistics and failure tracking reset as in begin, but the
// chunk directory, the memo arenas, and the lookahead watermarks are
// preserved — the caller has already remapped the directory for the new
// text and bumped the generation tag.
func (ps *Parser) beginIncremental(src *text.Source) {
	metrics.parsesStarted.Add(1)
	if ps.used {
		metrics.sessionResets.Add(1)
	}
	ps.used = true
	ps.src = src
	ps.in = src.Content()
	ps.stats = Stats{}
	ps.failPos = -1
	ps.failExpected = ps.failExpected[:0]
	ps.quiet = 0
	ps.hook = nil
	ps.examined = 0
	ps.beginTelemetry()
	ps.disarm()
	scratch := ps.scratch[:cap(ps.scratch)]
	clear(scratch)
	ps.scratch = ps.scratch[:0]
}
