package vm

import (
	"sync"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/core"
	"modpeg/internal/text"
	"modpeg/internal/transform"
)

// FuzzIncrementalParse drives a Document through random edit scripts and
// holds every step to the from-scratch oracle: the value must be
// ast.Equal, the error string identical, and the document's memo
// footprint within the documented budget (a constant factor of a scratch
// parse of the same text). The edit scripts are decoded from raw fuzz
// bytes, so the corpus explores insertions, deletions, replacements, and
// batches at arbitrary offsets — including degenerate ones (empty edits,
// whole-document replacements, edits at both ends).
//
// Two fixed grammars are exercised: the calc expression grammar and a
// keyword-heavy statement language whose `!Word` keyword guards and
// `!Keyword` identifier guards generate real lookahead past match ends —
// the case the per-production watermarks exist for.

const fuzzStmtGrammar = `
option root = Program;
public Program = Spacing ss:Stmt* !. ;
Stmt =
    <if> "if" !Word Spacing "(" Spacing c:Expr ")" Spacing t:Stmt e:Else? @If
  / <block> "{" Spacing ss:Stmt* "}" Spacing @Block
  / <asgn> n:Ident "=" Spacing v:Expr ";" Spacing @Set
  ;
Else = "else" !Word Spacing s:Stmt ;
Expr = <add> l:Term "+" Spacing r:Expr @Add / Term ;
Term = Num / Ident / "(" Spacing e:Expr ")" Spacing ;
Num = v:$([0-9]+) !Word Spacing @Num ;
Ident = !Keyword v:$([a-z]+) !Word Spacing @Id ;
Keyword = ("if" / "else") !Word ;
void Word = [a-z0-9] ;
void Spacing = [ \t\n\r]* ;
`

var incrementalFuzzProgs = sync.OnceValue(func() [2]*Program {
	mk := func(body string) *Program {
		g, err := core.Compose("m", core.MapResolver{"m": "module m;\n" + body})
		if err != nil {
			panic(err)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			panic(err)
		}
		prog, err := Compile(tg, Optimized())
		if err != nil {
			panic(err)
		}
		return prog
	}
	return [2]*Program{mk(calcGrammar), mk(fuzzStmtGrammar)}
})

// decodeEditScript turns raw bytes into a sequence of edit batches over
// an evolving document length. Decoding is deterministic and
// length-aware: offsets are taken modulo the current text length so
// every script is valid by construction (validation rejections are
// tested separately; the fuzzer's job is the reuse machinery).
func decodeEditScript(script []byte, startLen int) [][]Edit {
	const fragments = "0123456789+*- ();ifelse{}=ab\n"
	var batches [][]Edit
	docLen := startLen
	i := 0
	next := func() int {
		if i >= len(script) {
			return 0
		}
		b := script[i]
		i++
		return int(b)
	}
	for i < len(script) && len(batches) < 24 {
		nEdits := 1 + next()%2
		var batch []Edit
		at := 0
		for e := 0; e < nEdits; e++ {
			if at > docLen {
				break
			}
			off := at
			if docLen-at > 0 {
				off = at + next()%(docLen-at+1)
			}
			op := next() % 3
			oldLen, newLen := 0, 0
			var txt string
			switch op {
			case 0: // insert
				n := 1 + next()%6
				start := next() % len(fragments)
				if start+n > len(fragments) {
					n = len(fragments) - start
				}
				txt = fragments[start : start+n]
				newLen = len(txt)
			case 1: // delete
				oldLen = next() % 8
				if off+oldLen > docLen {
					oldLen = docLen - off
				}
			default: // replace
				oldLen = next() % 4
				if off+oldLen > docLen {
					oldLen = docLen - off
				}
				start := next() % len(fragments)
				n := 1 + next()%3
				if start+n > len(fragments) {
					n = len(fragments) - start
				}
				txt = fragments[start : start+n]
				newLen = len(txt)
			}
			batch = append(batch, Edit{Off: off, OldLen: oldLen, NewLen: newLen, Text: txt})
			at = off + oldLen
		}
		if len(batch) == 0 {
			break
		}
		for _, e := range batch {
			docLen += e.NewLen - e.OldLen
		}
		batches = append(batches, batch)
	}
	return batches
}

func FuzzIncrementalParse(f *testing.F) {
	f.Add(uint8(0), "1 + 2*3 + (41*5)", []byte{3, 1, 0, 2, 9, 0, 1, 1, 5})
	f.Add(uint8(1), "a = 1; if (a) { b = a + 2; } else c = 3;", []byte{7, 2, 4, 0, 12, 1, 3, 9, 9, 2})
	f.Add(uint8(0), "", []byte{1, 0, 0, 5, 2})
	f.Add(uint8(1), "if (1) x = 2;", []byte{0, 1, 6, 200, 3, 4, 90, 17, 60, 2, 2, 2})
	f.Fuzz(func(t *testing.T, sel uint8, input string, script []byte) {
		if len(input) > 4<<10 || len(script) > 256 {
			t.Skip("oversized fuzz case")
		}
		prog := incrementalFuzzProgs()[int(sel)%2]
		d := prog.NewDocument(text.NewSource("fuzz", input))
		for _, batch := range decodeEditScript(script, len(input)) {
			if _, _, err := d.Apply(batch...); err != nil && d.Err() == nil {
				t.Fatalf("apply %+v rejected: %v", batch, err)
			}
			// Oracle: a from-scratch parse of the document's current text
			// (same source name, so error strings compare byte for byte).
			val, stats, err := prog.Parse(text.NewSource("fuzz", d.Text()))
			if errString(err) != errString(d.Err()) {
				t.Fatalf("error mismatch on %q\n doc:     %v\n scratch: %v",
					d.Text(), d.Err(), err)
			}
			if err == nil {
				if !ast.Equal(val, d.Value()) {
					t.Fatalf("value mismatch on %q\n doc:     %s\n scratch: %s",
						d.Text(), ast.Format(d.Value()), ast.Format(val))
				}
				budget := (incrementalGrowthFactor+1)*stats.MemoBytes + incrementalGrowthSlack
				if d.Stats().MemoBytes > budget {
					t.Fatalf("memo footprint %d exceeds budget %d (scratch %d) on %q",
						d.Stats().MemoBytes, budget, stats.MemoBytes, d.Text())
				}
			}
		}
	})
}
