package vm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// Session is an explicitly managed, reusable parse context: the memo
// table's slabs, the chunk directory, and the parser's scratch buffers
// survive from one Parse to the next, so a session parsing in a loop
// performs zero parser-machinery allocations at steady state (semantic
// values still allocate, amortized through slab allocation).
//
// A Session is bound to one Program and must not be used from more than
// one goroutine at a time. For an implicit, pool-managed equivalent just
// call Program.Parse; for fanning a batch of inputs across cores see
// Program.ParseAll.
type Session struct {
	ps *Parser
}

// NewSession creates an unpooled reusable parse context for p.
func (p *Program) NewSession() *Session {
	return &Session{ps: &Parser{prog: p}}
}

// Parse runs the session's program over src, requiring the root
// production to consume the whole input, exactly like Program.Parse. The
// previous parse's memo state is recycled, never consulted: results and
// statistics are identical to a cold parse.
func (s *Session) Parse(src *text.Source) (ast.Value, Stats, error) {
	s.ps.begin(src)
	val, err := s.ps.run()
	return val, s.ps.stats, err
}

// ParsePrefix is Program.ParsePrefix on the reusable session context.
func (s *Session) ParsePrefix(src *text.Source) (ast.Value, int, Stats, error) {
	s.ps.begin(src)
	val, end, err := s.ps.runPrefix()
	return val, end, s.ps.stats, err
}

// Program returns the program the session executes.
func (s *Session) Program() *Program { return s.ps.prog }

// Result is the outcome of parsing one input of a batch.
type Result struct {
	Value ast.Value
	Stats Stats
	Err   error
}

// TotalStats aggregates the per-input statistics of a batch (see
// Stats.Add).
func TotalStats(results []Result) Stats {
	var total Stats
	for i := range results {
		total.Add(results[i].Stats)
	}
	return total
}

// ParseAll parses every source concurrently and returns one Result per
// input. The contract is order-preserving: results[i] is the outcome of
// srcs[i], regardless of which worker parsed it or when it finished.
//
// workers bounds the number of parsing goroutines; values <= 0 select
// GOMAXPROCS. Each worker draws its own pooled parse session, so the
// inputs share nothing but the read-only Program, and a steady stream of
// batches reuses the same sessions.
func (p *Program) ParseAll(srcs []*text.Source, workers int) []Result {
	return p.ParseAllContext(context.Background(), srcs, workers, Limits{})
}

// ParseAllContext is ParseAll under a context and per-input resource
// budgets (see Limits and Program.ParseContext). Cancellation drains
// the worker pool promptly: inputs whose parse is in flight abort on
// the next governance poll, and inputs not yet started are marked with
// a *LimitError without being parsed at all. Every result slot is
// filled either way — results[i].Err reports what happened to srcs[i].
func (p *Program) ParseAllContext(ctx context.Context, srcs []*text.Source, workers int, lim Limits) []Result {
	results := make([]Result, len(srcs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	parseOne := func(ps *Parser, i int) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				// Drain: the batch was abandoned before this input started.
				results[i] = Result{Err: ctxLimitError(err, lim.MaxParseDuration, 0)}
				return
			}
		}
		ps.begin(srcs[i])
		val, err := ps.runContext(ctx, lim)
		results[i] = Result{Value: val, Stats: ps.stats, Err: err}
	}
	if workers <= 1 {
		ps := p.acquire()
		for i := range srcs {
			parseOne(ps, i)
		}
		p.release(ps)
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ps := p.acquire()
			defer p.release(ps)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(srcs) {
					return
				}
				parseOne(ps, i)
			}
		}()
	}
	wg.Wait()
	return results
}
