package vm

import (
	"encoding/json"
	"strings"
	"testing"

	"modpeg/internal/text"
)

// TestMetricsRegistryCounts drives the pooled and session parse paths
// and checks the process-wide registry's bookkeeping identities.
func TestMetricsRegistryCounts(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()

	ok := text.NewSource("in", "1+2*(3-4)")
	bad := text.NewSource("in", "1+*")
	for i := 0; i < 3; i++ {
		if _, _, err := prog.Parse(ok); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := prog.Parse(bad); err == nil {
		t.Fatal("expected syntax error")
	}
	s := prog.NewSession()
	for i := 0; i < 2; i++ {
		if _, _, err := s.Parse(ok); err != nil {
			t.Fatal(err)
		}
	}

	m := Metrics()
	if m.ParsesStarted != 6 {
		t.Errorf("ParsesStarted = %d, want 6", m.ParsesStarted)
	}
	if m.ParsesCompleted != 5 || m.ParsesFailed != 1 {
		t.Errorf("completed/failed = %d/%d, want 5/1", m.ParsesCompleted, m.ParsesFailed)
	}
	if m.ParsesStarted != m.ParsesCompleted+m.ParsesFailed {
		t.Errorf("started %d != completed %d + failed %d",
			m.ParsesStarted, m.ParsesCompleted, m.ParsesFailed)
	}
	// Four pooled parses: four checkouts, at least one of which built a
	// fresh parser.
	if m.PoolGets != 4 {
		t.Errorf("PoolGets = %d, want 4", m.PoolGets)
	}
	if m.PoolNews < 1 || m.PoolNews > m.PoolGets {
		t.Errorf("PoolNews = %d, want in [1, %d]", m.PoolNews, m.PoolGets)
	}
	// Warm rewinds: the session's second parse always resets; pooled
	// parses after the first reset whenever the pool reuses a parser.
	if m.SessionResets < 1 || m.SessionResets > m.ParsesStarted-1 {
		t.Errorf("SessionResets = %d, want in [1, %d]", m.SessionResets, m.ParsesStarted-1)
	}
	// The chunked memo engine carved arena slabs, recycled them on
	// resets, and observed a nonzero peak footprint.
	if m.ArenaBytesCarved <= 0 {
		t.Errorf("ArenaBytesCarved = %d, want > 0", m.ArenaBytesCarved)
	}
	if m.ArenaBytesRecycled <= 0 {
		t.Errorf("ArenaBytesRecycled = %d, want > 0", m.ArenaBytesRecycled)
	}
	if m.PeakMemoBytes <= 0 {
		t.Errorf("PeakMemoBytes = %d, want > 0", m.PeakMemoBytes)
	}

	ResetMetrics()
	if z := Metrics(); z != (MetricsSnapshot{}) {
		t.Errorf("ResetMetrics left %+v", z)
	}
}

// TestMetricsPeakMonotone checks the high-water mark: a small parse
// after a large one must not lower the peak.
func TestMetricsPeakMonotone(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()
	big := strings.Repeat("(1+2)*3-", 300) + "4"
	if _, _, err := prog.Parse(text.NewSource("in", big)); err != nil {
		t.Fatal(err)
	}
	peak := Metrics().PeakMemoBytes
	if peak <= 0 {
		t.Fatalf("peak = %d after large parse", peak)
	}
	if _, _, err := prog.Parse(text.NewSource("in", "1")); err != nil {
		t.Fatal(err)
	}
	if got := Metrics().PeakMemoBytes; got != peak {
		t.Errorf("peak moved from %d to %d after a smaller parse", peak, got)
	}
	ResetMetrics()
}

// TestMetricsSnapshotJSON pins the scrape format's key names.
func TestMetricsSnapshotJSON(t *testing.T) {
	data, err := MetricsSnapshot{ParsesStarted: 7, PeakMemoBytes: 9}.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"parses_started", "parses_completed", "parses_failed",
		"pool_gets", "pool_news", "session_resets",
		"arena_bytes_carved", "arena_bytes_recycled", "peak_memo_bytes",
		"limit_stops", "memo_sheds", "panics_contained",
	} {
		if _, present := m[key]; !present {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
	if m["parses_started"] != 7 || m["peak_memo_bytes"] != 9 {
		t.Errorf("snapshot values drifted: %v", m)
	}
}
