package vm

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"modpeg/internal/text"
)

// TestMetricsRegistryCounts drives the pooled and session parse paths
// and checks the process-wide registry's bookkeeping identities.
func TestMetricsRegistryCounts(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()

	ok := text.NewSource("in", "1+2*(3-4)")
	bad := text.NewSource("in", "1+*")
	for i := 0; i < 3; i++ {
		if _, _, err := prog.Parse(ok); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := prog.Parse(bad); err == nil {
		t.Fatal("expected syntax error")
	}
	s := prog.NewSession()
	for i := 0; i < 2; i++ {
		if _, _, err := s.Parse(ok); err != nil {
			t.Fatal(err)
		}
	}

	m := Metrics()
	if m.ParsesStarted != 6 {
		t.Errorf("ParsesStarted = %d, want 6", m.ParsesStarted)
	}
	if m.ParsesCompleted != 5 || m.ParsesFailed != 1 {
		t.Errorf("completed/failed = %d/%d, want 5/1", m.ParsesCompleted, m.ParsesFailed)
	}
	if m.ParsesStarted != m.ParsesCompleted+m.ParsesFailed {
		t.Errorf("started %d != completed %d + failed %d",
			m.ParsesStarted, m.ParsesCompleted, m.ParsesFailed)
	}
	// Four pooled parses: four checkouts, at least one of which built a
	// fresh parser.
	if m.PoolGets != 4 {
		t.Errorf("PoolGets = %d, want 4", m.PoolGets)
	}
	if m.PoolNews < 1 || m.PoolNews > m.PoolGets {
		t.Errorf("PoolNews = %d, want in [1, %d]", m.PoolNews, m.PoolGets)
	}
	// Warm rewinds: the session's second parse always resets; pooled
	// parses after the first reset whenever the pool reuses a parser.
	if m.SessionResets < 1 || m.SessionResets > m.ParsesStarted-1 {
		t.Errorf("SessionResets = %d, want in [1, %d]", m.SessionResets, m.ParsesStarted-1)
	}
	// The chunked memo engine carved arena slabs, recycled them on
	// resets, and observed a nonzero peak footprint.
	if m.ArenaBytesCarved <= 0 {
		t.Errorf("ArenaBytesCarved = %d, want > 0", m.ArenaBytesCarved)
	}
	if m.ArenaBytesRecycled <= 0 {
		t.Errorf("ArenaBytesRecycled = %d, want > 0", m.ArenaBytesRecycled)
	}
	if m.PeakMemoBytes <= 0 {
		t.Errorf("PeakMemoBytes = %d, want > 0", m.PeakMemoBytes)
	}

	ResetMetrics()
	z := Metrics()
	if z.ParsesStarted != 0 || z.ParsesCompleted != 0 || z.ParsesFailed != 0 ||
		z.PoolGets != 0 || z.PoolNews != 0 || z.SessionResets != 0 ||
		z.ArenaBytesCarved != 0 || z.ArenaBytesRecycled != 0 || z.PeakMemoBytes != 0 ||
		z.LimitStops != 0 || z.MemoSheds != 0 || z.PanicsContained != 0 {
		t.Errorf("ResetMetrics left %+v", z)
	}
	if z.ParseDurationNS.Count != 0 || z.ParseInputBytes.Count != 0 {
		t.Errorf("ResetMetrics left histogram counts %d/%d",
			z.ParseDurationNS.Count, z.ParseInputBytes.Count)
	}
	if len(z.Grammars) != 0 {
		t.Errorf("ResetMetrics left grammar counters %+v", z.Grammars)
	}
}

// TestMetricsHistograms drives parses of known sizes and checks the
// latency and input-size histograms' counts, sums, and cumulative
// bucket structure.
func TestMetricsHistograms(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()

	inputs := []string{"1+2*(3-4)", "1", "1+*"}
	var bytes int64
	for _, in := range inputs {
		prog.Parse(text.NewSource("in", in)) // the syntax error counts too
		bytes += int64(len(in))
	}

	m := Metrics()
	for name, h := range map[string]HistogramSnapshot{
		"parse_duration_ns": m.ParseDurationNS, "parse_input_bytes": m.ParseInputBytes,
	} {
		if h.Count != int64(len(inputs)) {
			t.Errorf("%s count = %d, want %d", name, h.Count, len(inputs))
		}
		if len(h.Buckets) == 0 {
			t.Fatalf("%s has no buckets", name)
		}
		prev := int64(0)
		for i, b := range h.Buckets {
			if b.Count < prev {
				t.Errorf("%s bucket %d not cumulative: %d after %d", name, i, b.Count, prev)
			}
			if i > 0 && b.UpperBound <= h.Buckets[i-1].UpperBound {
				t.Errorf("%s bounds not ascending at %d", name, i)
			}
			prev = b.Count
		}
		if last := h.Buckets[len(h.Buckets)-1].Count; last > h.Count {
			t.Errorf("%s last bucket %d exceeds count %d", name, last, h.Count)
		}
	}
	if m.ParseDurationNS.Sum <= 0 {
		t.Errorf("duration sum = %d, want > 0", m.ParseDurationNS.Sum)
	}
	if m.ParseInputBytes.Sum != bytes {
		t.Errorf("input-bytes sum = %d, want %d", m.ParseInputBytes.Sum, bytes)
	}
	// All three inputs are tiny: every one lands at or below the 64-byte
	// bound, so the first bucket is already full.
	if got := m.ParseInputBytes.Buckets[0]; got.UpperBound != 64 || got.Count != int64(len(inputs)) {
		t.Errorf("input-bytes first bucket = %+v, want le=64 count=%d", got, len(inputs))
	}
	ResetMetrics()
}

// TestMetricsPerGrammar checks the labeled counter sets: outcomes land
// under the program's label, SetLabel re-points them, and zero-count
// labels stay out of snapshots.
func TestMetricsPerGrammar(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()

	ok := text.NewSource("in", "1+2*3")
	bad := text.NewSource("in", "1+*")
	prog.Parse(ok)
	prog.Parse(ok)
	prog.Parse(bad)

	label := prog.Label()
	if label == "" {
		t.Fatal("program has no label")
	}
	g, present := Metrics().Grammars[label]
	if !present {
		t.Fatalf("no counters under label %q: %+v", label, Metrics().Grammars)
	}
	if g.ParsesStarted != 3 || g.ParsesCompleted != 2 || g.ParsesFailed != 1 {
		t.Errorf("grammar counters = %+v, want 3 started / 2 completed / 1 failed", g)
	}
	if want := int64(2*len(ok.Content()) + len(bad.Content())); g.InputBytes != want {
		t.Errorf("grammar input bytes = %d, want %d", g.InputBytes, want)
	}

	prog.SetLabel("renamed")
	prog.Parse(ok)
	m := Metrics()
	if got := m.Grammars["renamed"]; got.ParsesStarted != 1 || got.ParsesCompleted != 1 {
		t.Errorf("renamed counters = %+v, want 1 started / 1 completed", got)
	}
	if got := m.Grammars[label]; got.ParsesStarted != 3 {
		t.Errorf("original label drifted after SetLabel: %+v", got)
	}
	ResetMetrics()
}

// TestSetTelemetry checks the ablation toggle: with telemetry off the
// scalar counters still advance but histograms and per-grammar sets
// record nothing.
func TestSetTelemetry(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	prev := SetTelemetry(false)
	defer SetTelemetry(prev)
	ResetMetrics()

	if _, _, err := prog.Parse(text.NewSource("in", "1+2*3")); err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.ParsesStarted != 1 || m.ParsesCompleted != 1 {
		t.Errorf("scalar counters = %d/%d, want 1/1", m.ParsesStarted, m.ParsesCompleted)
	}
	if m.ParseDurationNS.Count != 0 || m.ParseInputBytes.Count != 0 {
		t.Errorf("histograms recorded %d/%d observations with telemetry off",
			m.ParseDurationNS.Count, m.ParseInputBytes.Count)
	}
	if len(m.Grammars) != 0 {
		t.Errorf("grammar counters recorded with telemetry off: %+v", m.Grammars)
	}
	ResetMetrics()
}

// TestMetricsPeakMonotone checks the high-water mark: a small parse
// after a large one must not lower the peak.
func TestMetricsPeakMonotone(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()
	big := strings.Repeat("(1+2)*3-", 300) + "4"
	if _, _, err := prog.Parse(text.NewSource("in", big)); err != nil {
		t.Fatal(err)
	}
	peak := Metrics().PeakMemoBytes
	if peak <= 0 {
		t.Fatalf("peak = %d after large parse", peak)
	}
	if _, _, err := prog.Parse(text.NewSource("in", "1")); err != nil {
		t.Fatal(err)
	}
	if got := Metrics().PeakMemoBytes; got != peak {
		t.Errorf("peak moved from %d to %d after a smaller parse", peak, got)
	}
	ResetMetrics()
}

// TestMetricsSnapshotJSON pins the scrape format's key names.
func TestMetricsSnapshotJSON(t *testing.T) {
	data, err := MetricsSnapshot{ParsesStarted: 7, PeakMemoBytes: 9}.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"parses_started", "parses_completed", "parses_failed",
		"pool_gets", "pool_news", "session_resets",
		"arena_bytes_carved", "arena_bytes_recycled", "peak_memo_bytes",
		"limit_stops", "memo_sheds", "panics_contained",
		"parse_duration_ns", "parse_input_bytes",
	} {
		if _, present := m[key]; !present {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
	if m["parses_started"] != float64(7) || m["peak_memo_bytes"] != float64(9) {
		t.Errorf("snapshot values drifted: %v", m)
	}
	for _, key := range []string{"parse_duration_ns", "parse_input_bytes"} {
		h, ok := m[key].(map[string]any)
		if !ok {
			t.Fatalf("%s is %T, want object", key, m[key])
		}
		for _, field := range []string{"count", "sum", "buckets"} {
			if _, present := h[field]; !present {
				t.Errorf("%s missing %q", key, field)
			}
		}
	}
}

// TestHistogramOverflowBucket pins the top-of-ladder behavior: an
// observation beyond the last finite bound must land only in the
// implicit +Inf bucket (Count), never in a finite one, and must still
// contribute to Sum.
func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	for _, v := range []int64{5, 15, 20, 1_000_000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 5+15+20+1_000_000 {
		t.Errorf("sum = %d", s.Sum)
	}
	// Cumulative finite buckets: le=10 -> 1, le=20 -> 3 (the bound is
	// inclusive); the overflow observation appears only in Count.
	if s.Buckets[0].Count != 1 || s.Buckets[1].Count != 3 {
		t.Errorf("buckets = %+v, want cumulative [1 3]", s.Buckets)
	}
	// A tail quantile that falls into the +Inf bucket clamps to the last
	// finite bound — a lower bound, not an invented value.
	if q := s.Quantile(1.0); q != 20 {
		t.Errorf("Quantile(1.0) = %d, want clamp to 20", q)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Buckets[1].Count != 0 {
		t.Errorf("reset left state: %+v", s)
	}
}

// TestHistogramQuantileBoundaries pins the interpolation at exact
// bucket boundaries, where off-by-one rank arithmetic typically hides.
func TestHistogramQuantileBoundaries(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 400})
	// 10 observations in (0,100], none elsewhere.
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	if q := s.Quantile(1.0); q != 100 {
		t.Errorf("Quantile(1.0) = %d, want the bucket's upper bound 100", q)
	}
	if q := s.Quantile(0.5); q != 50 {
		t.Errorf("Quantile(0.5) = %d, want midpoint 50", q)
	}
	// Split 10/10 across the first two buckets: the median sits exactly
	// on the boundary between them.
	h2 := NewHistogram([]int64{100, 200, 400})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
		h2.Observe(150)
	}
	s2 := h2.Snapshot()
	if q := s2.Quantile(0.5); q != 100 {
		t.Errorf("boundary Quantile(0.5) = %d, want 100", q)
	}
	if q := s2.Quantile(0.75); q != 150 {
		t.Errorf("Quantile(0.75) = %d, want 150", q)
	}
	// Degenerate cases.
	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Errorf("empty Quantile = %d, want 0", q)
	}
	if q := s.Quantile(-1); q != s.Quantile(0) {
		t.Errorf("q<0 not clamped")
	}
	if q := s.Quantile(2); q != s.Quantile(1) {
		t.Errorf("q>1 not clamped")
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; with -race this checks Observe's lock-freedom claim, and
// the final snapshot checks no observation was lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64((w*perWorker + i) % 2000))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if got := s.Buckets[len(s.Buckets)-1].Count; got >= s.Count || got == 0 {
		t.Errorf("finite-bucket total %d vs count %d: overflow split missing", got, s.Count)
	}
}

// TestRuntimeGaugesAndInflight checks the snapshot's runtime gauges and
// the serve layer's in-flight bracket.
func TestRuntimeGaugesAndInflight(t *testing.T) {
	m := Metrics()
	if m.Goroutines <= 0 {
		t.Errorf("goroutines = %d", m.Goroutines)
	}
	if m.HeapBytes <= 0 {
		t.Errorf("heap_bytes = %d", m.HeapBytes)
	}
	if m.UptimeNS <= 0 {
		t.Errorf("uptime_ns = %d", m.UptimeNS)
	}
	base := Metrics().InflightRequests
	if got := AddInflight(1); got != base+1 {
		t.Errorf("AddInflight(1) = %d, want %d", got, base+1)
	}
	if m := Metrics(); m.InflightRequests != base+1 {
		t.Errorf("snapshot inflight = %d, want %d", m.InflightRequests, base+1)
	}
	AddInflight(-1)
	if m := Metrics(); m.InflightRequests != base {
		t.Errorf("inflight after bracket = %d, want %d", m.InflightRequests, base)
	}
	// ResetMetrics must leave the live gauge alone.
	AddInflight(1)
	ResetMetrics()
	if m := Metrics(); m.InflightRequests != base+1 {
		t.Errorf("ResetMetrics zeroed the live in-flight gauge: %d", m.InflightRequests)
	}
	AddInflight(-1)
}
