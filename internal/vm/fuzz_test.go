package vm

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"modpeg/internal/analysis"
	"modpeg/internal/ast"
	"modpeg/internal/peg"
	"modpeg/internal/text"
	"modpeg/internal/transform"
)

// The randomized equivalence harness: generate random well-formed
// grammars, generate random inputs (both matching and arbitrary), and
// assert that every engine configuration and every optimizer
// configuration produces identical accept/reject decisions and identical
// semantic values. This exercises the full pipeline — analysis,
// transformation, compilation, execution — far beyond the hand-written
// cases.

// grammarGen builds random grammars over a small terminal alphabet. The
// construction guarantees well-formedness by design: every generated
// sub-expression consumes at least one byte unless wrapped in ?/*
// carefully, references only already-planned productions (no cycles except
// a guarded self-recursion pattern), and never puts a nullable body under
// repetition.
type grammarGen struct {
	r     *rand.Rand
	names []string
}

func (g *grammarGen) grammar(numProds int) *peg.Grammar {
	g.names = nil
	for i := 0; i < numProds; i++ {
		g.names = append(g.names, fmt.Sprintf("P%d", i))
	}
	gr := &peg.Grammar{Root: "fuzz.P0", Prods: map[string]*peg.Production{}}
	for i := numProds - 1; i >= 0; i-- {
		// Production i may reference productions with larger indices
		// (strictly layered -> acyclic), plus guarded self-recursion.
		p := &peg.Production{
			Name:   "fuzz." + g.names[i],
			Kind:   peg.Define,
			Choice: g.choice(i, 3),
		}
		switch g.r.Intn(6) {
		case 0:
			p.Attrs |= peg.AttrText
		case 1:
			p.Attrs |= peg.AttrTransient
		case 2:
			p.Attrs |= peg.AttrMemo
		}
		gr.Add(p)
	}
	// Reverse Order so P0 comes first (cosmetic determinism).
	for l, r := 0, len(gr.Order)-1; l < r; l, r = l+1, r-1 {
		gr.Order[l], gr.Order[r] = gr.Order[r], gr.Order[l]
	}
	return gr
}

// choice returns a random choice whose alternatives each consume at least
// one byte.
func (g *grammarGen) choice(layer, depth int) *peg.Choice {
	n := 1 + g.r.Intn(3)
	c := &peg.Choice{}
	for i := 0; i < n; i++ {
		seq := g.seq(layer, depth)
		if g.r.Intn(4) == 0 {
			seq.Ctor = fmt.Sprintf("N%d", g.r.Intn(5))
		}
		c.Alts = append(c.Alts, seq)
	}
	return c
}

func (g *grammarGen) seq(layer, depth int) *peg.Seq {
	n := 1 + g.r.Intn(3)
	s := &peg.Seq{}
	for i := 0; i < n; i++ {
		it := peg.Item{Expr: g.expr(layer, depth, i == 0)}
		if g.r.Intn(4) == 0 {
			it.Bind = fmt.Sprintf("b%d", i)
		}
		s.Items = append(s.Items, it)
	}
	return s
}

// expr returns a random expression; if mustConsume, it consumes >=1 byte
// on success.
func (g *grammarGen) expr(layer, depth int, mustConsume bool) peg.Expr {
	if depth <= 0 {
		return g.terminal()
	}
	switch g.r.Intn(10) {
	case 0:
		if !mustConsume {
			return peg.Opt(g.expr(layer, depth-1, true))
		}
		return g.terminal()
	case 1:
		if !mustConsume {
			return peg.Star(g.expr(layer, depth-1, true))
		}
		return peg.Plus(g.expr(layer, depth-1, true))
	case 2:
		return peg.Plus(g.expr(layer, depth-1, true))
	case 3:
		if !mustConsume {
			return peg.Ahead(g.expr(layer, depth-1, true))
		}
		return g.terminal()
	case 4:
		if !mustConsume {
			return peg.Never(g.expr(layer, depth-1, true))
		}
		return g.terminal()
	case 5:
		return peg.Text(g.expr(layer, depth-1, true))
	case 6:
		// Reference to a deeper layer, when one exists.
		if layer+1 < len(g.names) {
			return peg.Ref("fuzz." + g.names[layer+1+g.r.Intn(len(g.names)-layer-1)])
		}
		return g.terminal()
	case 7:
		return g.choice(layer, depth-1)
	default:
		return g.terminal()
	}
}

func (g *grammarGen) terminal() peg.Expr {
	switch g.r.Intn(4) {
	case 0:
		return peg.Lit(string([]byte{byte('a' + g.r.Intn(3))}))
	case 1:
		lits := []string{"ab", "ba", "aa", "abc"}
		return peg.Lit(lits[g.r.Intn(len(lits))])
	case 2:
		return peg.Class('a', 'c')
	default:
		return peg.Class('a', 'b')
	}
}

// randomInput produces strings over the grammar's alphabet with varying
// lengths, plus the empty string.
func randomInput(r *rand.Rand) string {
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(3)))
	}
	return b.String()
}

func TestFuzzEngineEquivalence(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	if s := os.Getenv("MODPEG_FUZZ_SEEDS"); s != "" {
		fmt.Sscan(s, &seeds)
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		gg := &grammarGen{r: r}
		g := gg.grammar(2 + r.Intn(4))
		if err := analysis.Analyze(g).Check(); err != nil {
			// The construction should prevent this; a violation is a bug
			// in the generator worth knowing about.
			t.Fatalf("seed %d: generated grammar ill-formed: %v", seed, err)
		}

		type cfg struct {
			name  string
			topts transform.Options
			eopts Options
		}
		configs := []cfg{
			{"back/raw", transform.Options{LeftRecursion: true}, Backtracking()},
			{"naive/baseline", transform.Baseline(), NaivePackrat()},
			{"opt/defaults", transform.Defaults(), Optimized()},
			{"memoall-chunks/defaults", transform.Defaults(),
				Options{Memoize: true, MemoEverything: true, ChunkedMemo: true, Dispatch: true}},
		}
		var progs []*Program
		for _, c := range configs {
			tg, _, err := transform.Apply(g, c.topts)
			if err != nil {
				t.Fatalf("seed %d %s: transform: %v", seed, c.name, err)
			}
			prog, err := Compile(tg, c.eopts)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v\n%s", seed, c.name, err, peg.FormatGrammar(g))
			}
			progs = append(progs, prog)
		}

		for trial := 0; trial < 25; trial++ {
			input := randomInput(r)
			src := text.NewSource("fuzz", input)
			refV, refN, _, refErr := progs[0].ParsePrefix(src)
			for ci, prog := range progs[1:] {
				v, n, _, err := prog.ParsePrefix(src)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("seed %d input %q: %s accept=%v vs %s accept=%v\ngrammar:\n%s",
						seed, input, configs[ci+1].name, err == nil, configs[0].name, refErr == nil,
						peg.FormatGrammar(g))
				}
				if err != nil {
					continue
				}
				if n != refN {
					t.Fatalf("seed %d input %q: %s consumed %d vs %d\ngrammar:\n%s",
						seed, input, configs[ci+1].name, n, refN, peg.FormatGrammar(g))
				}
				if !ast.Equal(refV, v) {
					t.Fatalf("seed %d input %q: value mismatch\n %s: %s\n %s: %s\ngrammar:\n%s",
						seed, input, configs[0].name, ast.Format(refV),
						configs[ci+1].name, ast.Format(v), peg.FormatGrammar(g))
				}
			}
		}
	}
}

// TestFuzzPrintParseCompile round-trips random grammars through the
// printer and checks the result still analyzes identically (the printer
// and the front end agree on every construct the generator emits).
func TestFuzzGrammarFormatStable(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		r := rand.New(rand.NewSource(int64(1000 + seed)))
		gg := &grammarGen{r: r}
		g := gg.grammar(2 + r.Intn(3))
		s1 := peg.FormatGrammar(g)
		s2 := peg.FormatGrammar(g.Clone())
		if s1 != s2 {
			t.Fatalf("seed %d: clone formats differently", seed)
		}
		tg, _, err := transform.Apply(g, transform.Defaults())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Transform must not mutate the original.
		if peg.FormatGrammar(g) != s1 {
			t.Fatalf("seed %d: transform mutated input", seed)
		}
		if err := analysis.Analyze(tg).CheckTransformed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
