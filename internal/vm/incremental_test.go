package vm

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// The incremental-reparse tests hold Document.Apply to one contract:
// after any sequence of edits, the document's value and error must be
// exactly what a from-scratch parse of the same text produces. The
// scratch oracle below runs on the same Program but through the pooled
// Parse path, so it never shares memo state with the document.

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// checkAgainstScratch asserts the document's last result matches a
// from-scratch parse of its current text.
func checkAgainstScratch(t *testing.T, d *Document, label string) Stats {
	t.Helper()
	// Same source name as the document so error strings are comparable
	// byte for byte (locations embed the name).
	val, stats, err := d.prog.Parse(text.NewSource(d.Source().Name(), d.Text()))
	if errString(err) != errString(d.Err()) {
		t.Fatalf("%s: error mismatch\n doc:     %v\n scratch: %v\n text: %q",
			label, d.Err(), err, d.Text())
	}
	if err == nil && !ast.Equal(val, d.Value()) {
		t.Fatalf("%s: value mismatch\n doc:     %s\n scratch: %s\n text: %q",
			label, ast.Format(d.Value()), ast.Format(val), d.Text())
	}
	return stats
}

// calcInput builds a deterministic, well-formed calc expression of at
// least n bytes.
func calcInput(r *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%d", 1+r.Intn(99)))
	for b.Len() < n {
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&b, " + %d", r.Intn(1000))
		case 1:
			fmt.Fprintf(&b, " - %d", r.Intn(1000))
		case 2:
			fmt.Fprintf(&b, "*%d", 1+r.Intn(99))
		default:
			fmt.Fprintf(&b, " + (%d*%d - %d)", r.Intn(50), r.Intn(50), r.Intn(50))
		}
	}
	return b.String()
}

func newCalcDocument(t *testing.T, opts Options, input string) *Document {
	t.Helper()
	prog := build(t, calcGrammar, opts)
	d := prog.NewDocument(text.NewSource("doc", input))
	if d.Err() != nil {
		t.Fatalf("initial parse: %v", d.Err())
	}
	return d
}

func TestDocumentSingleEdits(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "1 + 2*3 + (41*5)")
	steps := []struct {
		label string
		edit  Edit
	}{
		{"insert digit", Edit{Off: 4, OldLen: 0, NewLen: 1, Text: "9"}},
		{"replace operator", Edit{Off: 2, OldLen: 1, NewLen: 1, Text: "-"}},
		{"delete factor", Edit{Off: 5, OldLen: 2, NewLen: 0, Text: ""}},
		{"append at end", Edit{Off: 15, OldLen: 0, NewLen: 3, Text: "*77"}},
		{"prepend at start", Edit{Off: 0, OldLen: 0, NewLen: 4, Text: "70 -"}},
	}
	for _, s := range steps {
		if s.edit.Off+s.edit.OldLen > len(d.Text()) {
			t.Fatalf("%s: test edit out of range for %q", s.label, d.Text())
		}
		if _, _, err := d.Apply(s.edit); err != nil {
			t.Fatalf("%s: apply: %v", s.label, err)
		}
		checkAgainstScratch(t, d, s.label)
	}
}

func TestDocumentAppendAtEOF(t *testing.T) {
	// Appending is the subtle damage case: entries that matched up to the
	// old end of input and whose continuation failed on EOF must be
	// invalidated, or the reparse would reuse a root that "ends" before
	// the appended text. EOF probes are noted one past the input length
	// for exactly this reason (Parser.note).
	d := newCalcDocument(t, Optimized(), "1+2")
	for i := 0; i < 6; i++ {
		app := fmt.Sprintf("+%d", i)
		_, _, err := d.Apply(Edit{Off: len(d.Text()), NewLen: len(app), Text: app})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		checkAgainstScratch(t, d, "append")
	}
	want := "1+2+0+1+2+3+4+5"
	if d.Text() != want {
		t.Fatalf("text = %q, want %q", d.Text(), want)
	}
}

func TestDocumentBatchedEdits(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "10 + 20*30 + (40*50 - 60)")
	// Deliberately out of order; Apply sorts. Offsets are pre-edit.
	_, stats, err := d.Apply(
		Edit{Off: 17, OldLen: 2, NewLen: 1, Text: "7"},
		Edit{Off: 0, OldLen: 2, NewLen: 3, Text: "111"},
		Edit{Off: 7, OldLen: 0, NewLen: 1, Text: "0"},
	)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	want := "111 + 200*30 + (40*7 - 60)"
	if d.Text() != want {
		t.Fatalf("text = %q, want %q", d.Text(), want)
	}
	checkAgainstScratch(t, d, "batched")
	if stats.MemoInvalidated == 0 {
		t.Fatalf("batched edits invalidated no entries: %+v", stats)
	}

	// Two insertions at the same offset apply in argument order.
	d2 := newCalcDocument(t, Optimized(), "1+2")
	if _, _, err := d2.Apply(
		Edit{Off: 2, NewLen: 1, Text: "3"},
		Edit{Off: 2, NewLen: 1, Text: "4"},
	); err != nil {
		t.Fatalf("same-offset inserts: %v", err)
	}
	if d2.Text() != "1+342" {
		t.Fatalf("text = %q, want %q", d2.Text(), "1+342")
	}
	checkAgainstScratch(t, d2, "same-offset inserts")
}

func TestDocumentEditValidation(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "1+2")
	before := d.Text()
	cases := []struct {
		label string
		edits []Edit
	}{
		{"negative offset", []Edit{{Off: -1, NewLen: 1, Text: "x"}}},
		{"out of bounds", []Edit{{Off: 2, OldLen: 5, NewLen: 0}}},
		{"length mismatch", []Edit{{Off: 0, NewLen: 3, Text: "xx"}}},
		{"overlap", []Edit{{Off: 0, OldLen: 2, NewLen: 2, Text: "34"}, {Off: 1, OldLen: 1, NewLen: 1, Text: "5"}}},
	}
	for _, c := range cases {
		if _, _, err := d.Apply(c.edits...); err == nil {
			t.Fatalf("%s: Apply accepted invalid edits", c.label)
		}
		if d.Text() != before {
			t.Fatalf("%s: failed Apply mutated the document to %q", c.label, d.Text())
		}
	}
	// The document is still usable after rejected edits.
	if _, _, err := d.Apply(Edit{Off: 3, NewLen: 2, Text: "*4"}); err != nil {
		t.Fatalf("apply after rejections: %v", err)
	}
	checkAgainstScratch(t, d, "after rejections")
}

func TestDocumentApplyNoEdits(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "1+2")
	v, stats, err := d.Apply()
	if err != nil || !ast.Equal(v, d.Value()) || stats != d.Stats() {
		t.Fatalf("empty Apply changed the result: %v %v", v, err)
	}
}

func TestDocumentErrorThenFix(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "12 + 34*56")
	// Break it: "12 ? 34*56" is a syntax error.
	_, _, err := d.Apply(Edit{Off: 3, OldLen: 1, NewLen: 1, Text: "?"})
	if err == nil {
		t.Fatal("edited document must fail to parse")
	}
	checkAgainstScratch(t, d, "broken")
	if d.Value() != nil {
		t.Fatal("failed document retains a value")
	}
	// Fix it again; incremental reuse must resume afterwards.
	if _, _, err := d.Apply(Edit{Off: 3, OldLen: 1, NewLen: 1, Text: "-"}); err != nil {
		t.Fatalf("fixing edit: %v", err)
	}
	checkAgainstScratch(t, d, "fixed")
	_, stats, err := d.Apply(Edit{Off: 0, OldLen: 1, NewLen: 1, Text: "9"})
	if err != nil {
		t.Fatalf("post-fix edit: %v", err)
	}
	if stats.MemoReused == 0 {
		t.Fatalf("no reuse after error recovery: %+v", stats)
	}
}

func TestDocumentReuseCounters(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	input := calcInput(r, 8<<10)
	d := newCalcDocument(t, Optimized(), input)
	fullStats := d.Stats()

	// A one-byte edit in the middle: most of the table must survive, the
	// tail must relocate, and the neighbourhood of the edit must die.
	off := len(input) / 2
	for input[off] < '0' || input[off] > '9' {
		off++
	}
	_, stats, err := d.Apply(Edit{Off: off, NewLen: 1, Text: "7"})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	checkAgainstScratch(t, d, "middle insert")
	if stats.MemoReused == 0 || stats.MemoInvalidated == 0 || stats.MemoRelocated == 0 {
		t.Fatalf("expected all reuse counters nonzero, got %+v", stats)
	}
	// The point of the exercise: the incremental pass re-derives a small
	// fraction of what the full parse computed.
	if stats.Calls*4 > fullStats.Calls {
		t.Fatalf("incremental apply made %d calls, full parse %d — too little reuse",
			stats.Calls, fullStats.Calls)
	}
	if s := stats.String(); !strings.Contains(s, "reused=") {
		t.Fatalf("Stats.String does not render reuse counters: %s", s)
	}
	// A from-scratch parse's Stats never report reuse.
	if scratch := checkAgainstScratch(t, d, "scratch"); scratch.MemoReused != 0 ||
		scratch.MemoInvalidated != 0 || scratch.MemoRelocated != 0 {
		t.Fatalf("scratch parse reports reuse: %+v", scratch)
	}
}

func TestDocumentDamageFallback(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "1 + 2*3")
	// Replacing most of the document exceeds the damage threshold; the
	// apply must fall back to a full reparse (observable as zero reuse).
	_, stats, err := d.Apply(Edit{Off: 0, OldLen: 5, NewLen: 5, Text: "7 - 6"})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if stats.MemoReused != 0 || stats.MemoRelocated != 0 {
		t.Fatalf("threshold fallback still reused entries: %+v", stats)
	}
	checkAgainstScratch(t, d, "fallback")
}

func TestDocumentGenerationWrap(t *testing.T) {
	d := newCalcDocument(t, Optimized(), "1+2*3")
	d.gens = math.MaxUint16 // white box: simulate 65535 applies
	_, stats, err := d.Apply(Edit{Off: 0, OldLen: 1, NewLen: 1, Text: "9"})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if d.gens != 0 {
		t.Fatalf("generation wrap did not force a full reparse (gens=%d)", d.gens)
	}
	if stats.MemoReused != 0 {
		t.Fatalf("wrap fallback reused entries: %+v", stats)
	}
	checkAgainstScratch(t, d, "wrap")
}

func TestDocumentOtherEnginesFallBack(t *testing.T) {
	for _, opts := range []Options{Backtracking(), NaivePackrat()} {
		d := newCalcDocument(t, opts, "1 + 2*3 + 4")
		_, stats, err := d.Apply(Edit{Off: 4, NewLen: 1, Text: "5"})
		if err != nil {
			t.Fatalf("%+v: apply: %v", opts, err)
		}
		if stats.MemoReused != 0 || stats.MemoRelocated != 0 || stats.MemoInvalidated != 0 {
			t.Fatalf("%+v: non-chunked engine reported reuse: %+v", opts, stats)
		}
		checkAgainstScratch(t, d, "non-chunked engine")
	}
}

// TestDocumentDirectoryInvariants white-boxes the double-buffer remap:
// after every apply the live directory matches the text length and the
// spare buffer is fully nil (the invariant the remap relies on).
func TestDocumentDirectoryInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := newCalcDocument(t, Optimized(), calcInput(r, 512))
	for i := 0; i < 40; i++ {
		applyRandomEdit(t, r, d)
		if got, want := len(d.ps.chunks), len(d.Text())+1; got != want {
			t.Fatalf("apply %d: directory window %d, want %d", i, got, want)
		}
		for j, row := range d.spare[:cap(d.spare)] {
			if row != nil {
				t.Fatalf("apply %d: spare[%d] not nil after swap", i, j)
			}
		}
	}
}

// applyRandomEdit performs one random insert/delete/replace drawn from
// the calc alphabet and asserts scratch equivalence. Parse errors are
// fine — broken intermediate states are what editors produce — but the
// error must match the oracle's.
func applyRandomEdit(t *testing.T, r *rand.Rand, d *Document) {
	t.Helper()
	txt := d.Text()
	const alphabet = "0123456789+-*() "
	var e Edit
	switch r.Intn(3) {
	case 0: // insert
		n := 1 + r.Intn(4)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		e = Edit{Off: r.Intn(len(txt) + 1), NewLen: n, Text: b.String()}
	case 1: // delete
		if len(txt) == 0 {
			return
		}
		off := r.Intn(len(txt))
		n := 1 + r.Intn(4)
		if off+n > len(txt) {
			n = len(txt) - off
		}
		e = Edit{Off: off, OldLen: n}
	default: // replace one byte
		if len(txt) == 0 {
			return
		}
		e = Edit{Off: r.Intn(len(txt)), OldLen: 1, NewLen: 1,
			Text: string(alphabet[r.Intn(len(alphabet))])}
	}
	if _, _, err := d.Apply(e); err != nil && d.Err() == nil {
		t.Fatalf("apply %+v: %v", e, err)
	}
	checkAgainstScratch(t, d, fmt.Sprintf("random edit %+v", e))
}

// TestDocumentRandomizedEquivalence is the in-process cousin of
// FuzzIncrementalParse: long random edit scripts, every step checked
// against the scratch oracle, with the memo footprint held to the
// documented budget (a constant factor of a from-scratch parse).
func TestDocumentRandomizedEquivalence(t *testing.T) {
	scripts := 12
	steps := 60
	if testing.Short() {
		scripts, steps = 4, 25
	}
	for seed := 0; seed < scripts; seed++ {
		r := rand.New(rand.NewSource(int64(100 + seed)))
		d := newCalcDocument(t, Optimized(), calcInput(r, 256+r.Intn(2048)))
		for i := 0; i < steps; i++ {
			applyRandomEdit(t, r, d)
			if d.Err() == nil {
				sStats := checkAgainstScratch(t, d, "budget probe")
				budget := incrementalGrowthFactor*sStats.MemoBytes + incrementalGrowthSlack + sStats.MemoBytes
				if d.Stats().MemoBytes > budget {
					t.Fatalf("seed %d step %d: memo footprint %d exceeds budget %d (scratch %d)",
						seed, i, d.Stats().MemoBytes, budget, sStats.MemoBytes)
				}
			}
		}
	}
}
