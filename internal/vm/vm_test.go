package vm

import (
	"strings"
	"testing"

	"modpeg/internal/analysis"
	"modpeg/internal/ast"
	"modpeg/internal/core"
	"modpeg/internal/peg"
	"modpeg/internal/text"
	"modpeg/internal/transform"
)

// build composes, transforms (with the default pipeline unless raw), and
// compiles a single-module grammar.
func build(t *testing.T, body string, opts Options) *Program {
	t.Helper()
	g := grammarOf(t, body)
	out, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	prog, err := Compile(out, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func grammarOf(t *testing.T, body string) *peg.Grammar {
	t.Helper()
	g, err := core.Compose("m", core.MapResolver{"m": "module m;\n" + body})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	return g
}

func parse(t *testing.T, prog *Program, input string) ast.Value {
	t.Helper()
	v, _, err := prog.Parse(text.NewSource("input", input))
	if err != nil {
		t.Fatalf("parse %q: %v", input, err)
	}
	return v
}

const calcGrammar = `
option root = Program;
public Program = Spacing e:Sum !. ;
Sum =
    <add> l:Prod "+" Spacing r:Sum @Add
  / <sub> l:Prod "-" Spacing r:Sum @Sub
  / Prod
  ;
Prod =
    <mul> l:Atom "*" Spacing r:Prod @Mul
  / Atom
  ;
Atom = Number / "(" Spacing Sum ")" Spacing ;
Number = v:$([0-9]+) Spacing @Num ;
void Spacing = [ \t\n\r]* ;
`

func TestParseCalc(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	v := parse(t, prog, "1 + 2*3")
	want := `(Add (Num "1") (Mul (Num "2") (Num "3")))`
	if got := ast.Format(v); got != want {
		t.Fatalf("value = %s, want %s", got, want)
	}
}

func TestParseParens(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	v := parse(t, prog, "(1+2)*3")
	want := `(Mul (Add (Num "1") (Num "2")) (Num "3"))`
	if got := ast.Format(v); got != want {
		t.Fatalf("value = %s", got)
	}
}

func TestParseLeftRecursionAssociativity(t *testing.T) {
	prog := build(t, `
option root = Program;
public Program = e:Sum !. ;
Sum = <sub> l:Sum "-" r:Num @Sub / Num ;
Num = v:$([0-9]+) @N ;
`, Optimized())
	v := parse(t, prog, "1-2-3")
	// Left associativity: ((1-2)-3).
	want := `(Sub (Sub (N "1") (N "2")) (N "3"))`
	if got := ast.Format(v); got != want {
		t.Fatalf("value = %s, want %s", got, want)
	}
}

func TestParseRepetitionValues(t *testing.T) {
	prog := build(t, `
public S = xs:Ident* !. ;
Ident = v:$([a-z]+) " "? @Id ;
`, Optimized())
	v := parse(t, prog, "ab cd ef")
	want := `[(Id "ab") (Id "cd") (Id "ef")]`
	if got := ast.Format(v); got != want {
		t.Fatalf("value = %s", got)
	}
	// Zero repetitions produce an empty list, not nil.
	v = parse(t, prog, "")
	if got := ast.Format(v); got != "[]" {
		t.Fatalf("empty value = %s", got)
	}
}

func TestParseOptionalAndPredicates(t *testing.T) {
	prog := build(t, `
public S = sign:Sign? d:$([0-9]+) !. @Lit ;
Sign = $("-" / "+") ;
`, Optimized())
	if got := ast.Format(parse(t, prog, "-42")); got != `(Lit "-" "42")` {
		t.Fatalf("value = %s", got)
	}
	if got := ast.Format(parse(t, prog, "42")); got != `(Lit () "42")` {
		t.Fatalf("value = %s", got)
	}
}

func TestParseKeywordExclusion(t *testing.T) {
	prog := build(t, `
public S = (Keyword / Ident) !. ;
Keyword = v:$("if" ![a-z]) @Kw ;
Ident = v:$([a-z]+) @Id ;
`, Optimized())
	if got := ast.Format(parse(t, prog, "if")); !strings.HasPrefix(got, "(Kw") {
		t.Fatalf("if = %s", got)
	}
	if got := ast.Format(parse(t, prog, "iffy")); !strings.HasPrefix(got, "(Id") {
		t.Fatalf("iffy = %s", got)
	}
}

func TestParseErrorReporting(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	_, _, err := prog.Parse(text.NewSource("bad", "1 + "))
	if err == nil {
		t.Fatal("must fail")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos != 4 {
		t.Fatalf("failure pos = %d: %v", pe.Pos, err)
	}
	if !strings.Contains(err.Error(), "syntax error") {
		t.Fatalf("error = %v", err)
	}
	if !strings.Contains(pe.Detail(), "^") {
		t.Fatal("detail must include caret")
	}
	// Error at end of input names it.
	if !strings.Contains(err.Error(), "end of input") {
		t.Fatalf("error = %v", err)
	}
}

func TestParseErrorTrailingInput(t *testing.T) {
	prog := build(t, `
public S = "ab" ;
`, Optimized())
	_, _, err := prog.Parse(text.NewSource("bad", "abc"))
	if err == nil || !strings.Contains(err.Error(), "expected end of input") {
		t.Fatalf("err = %v", err)
	}
}

func TestParsePrefix(t *testing.T) {
	prog := build(t, `
public S = "ab" ;
`, Optimized())
	_, n, _, err := prog.ParsePrefix(text.NewSource("in", "abc"))
	if err != nil || n != 2 {
		t.Fatalf("n = %d, err = %v", n, err)
	}
	_, _, _, err = prog.ParsePrefix(text.NewSource("in", "xx"))
	if err == nil {
		t.Fatal("prefix mismatch must fail")
	}
}

// engineConfigs are the three paper configurations plus mixed variants.
var engineConfigs = []Options{
	Backtracking(),
	NaivePackrat(),
	Optimized(),
	{Memoize: true},                    // packrat, map memo, no dispatch
	{Memoize: true, ChunkedMemo: true}, // chunks without dispatch
	{Memoize: true, Dispatch: true},    // dispatch without chunks
	{Memoize: true, MemoEverything: true, ChunkedMemo: true, Dispatch: true},
}

func TestEngineEquivalence(t *testing.T) {
	inputs := []string{
		"1",
		"1+2",
		"1 + 2*3",
		"(1+2)*3",
		"1*2*3*4*5",
		"((((1))))",
		"1 - 2 - 3 - 4",
		"  42  ",
	}
	g := grammarOf(t, calcGrammar)
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var progs []*Program
	for _, cfg := range engineConfigs {
		prog, err := Compile(tg, cfg)
		if err != nil {
			t.Fatalf("compile %v: %v", cfg, err)
		}
		progs = append(progs, prog)
	}
	for _, in := range inputs {
		ref, _, refErr := progs[0].Parse(text.NewSource("in", in))
		for i, prog := range progs[1:] {
			got, _, err := prog.Parse(text.NewSource("in", in))
			if (err == nil) != (refErr == nil) {
				t.Fatalf("config %v input %q: err=%v vs ref err=%v", engineConfigs[i+1], in, err, refErr)
			}
			if err == nil && !ast.Equal(ref, got) {
				t.Fatalf("config %v input %q: %s vs %s",
					engineConfigs[i+1], in, ast.Format(got), ast.Format(ref))
			}
		}
	}
}

func TestEngineEquivalenceAcrossTransforms(t *testing.T) {
	// The same grammar, untransformed baseline vs fully optimized, must
	// produce identical values.
	g := grammarOf(t, calcGrammar)
	base, _, err := transform.Apply(g, transform.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	pBase, err := Compile(base, NaivePackrat())
	if err != nil {
		t.Fatal(err)
	}
	pOpt, err := Compile(opt, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"1+2*3", "(1-2)*3+4", "7"} {
		v1, _, err1 := pBase.Parse(text.NewSource("in", in))
		v2, _, err2 := pOpt.Parse(text.NewSource("in", in))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("input %q: %v vs %v", in, err1, err2)
		}
		if err1 == nil && !ast.Equal(v1, v2) {
			t.Fatalf("input %q: %s vs %s", in, ast.Format(v1), ast.Format(v2))
		}
	}
}

func TestStatsBehaviour(t *testing.T) {
	g := grammarOf(t, calcGrammar)
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	input := text.NewSource("in", "1+2*3-4*(5+6)")

	back, _ := Compile(tg, Backtracking())
	_, sBack, err := back.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if sBack.MemoHits != 0 || sBack.MemoStores != 0 || sBack.MemoBytes != 0 {
		t.Fatalf("backtracking must not memoize: %v", sBack)
	}

	naive, _ := Compile(tg, NaivePackrat())
	_, sNaive, err := naive.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if sNaive.MemoStores == 0 {
		t.Fatal("naive packrat must store")
	}

	opt, _ := Compile(tg, Optimized())
	_, sOpt, err := opt.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if sOpt.MemoStores >= sNaive.MemoStores {
		t.Fatalf("optimized must store less: %d vs %d", sOpt.MemoStores, sNaive.MemoStores)
	}
	if sOpt.MemoBytes >= sNaive.MemoBytes {
		t.Fatalf("optimized must use less memo space: %d vs %d", sOpt.MemoBytes, sNaive.MemoBytes)
	}
	if sOpt.DispatchSkips == 0 {
		t.Fatal("dispatch must skip some alternatives")
	}
	if s := sOpt.String(); !strings.Contains(s, "calls=") {
		t.Fatalf("stats string = %q", s)
	}
}

func TestCompileRejectsLeftRecursion(t *testing.T) {
	g := grammarOf(t, `
public S = S "x" / "y" ;
`)
	if _, err := Compile(g, Optimized()); err == nil {
		t.Fatal("untransformed left recursion must be rejected")
	}
}

func TestCompileRejectsMissingRoot(t *testing.T) {
	g := grammarOf(t, "public S = \"x\" ;\n")
	g.Root = "nowhere"
	if _, err := Compile(g, Optimized()); err == nil {
		t.Fatal("missing root must be rejected")
	}
}

func TestOptionsString(t *testing.T) {
	if Backtracking().String() != "backtracking" {
		t.Fatal("backtracking name")
	}
	if NaivePackrat().String() != "naive-packrat" {
		t.Fatal("naive name")
	}
	s := Optimized().String()
	if !strings.Contains(s, "chunks") || !strings.Contains(s, "dispatch") {
		t.Fatalf("optimized name = %q", s)
	}
}

func TestTextAndVoidProductions(t *testing.T) {
	prog := build(t, `
public S = n:Number !. @S ;
text Number = [0-9]+ ("." [0-9]+)? ;
`, Optimized())
	v := parse(t, prog, "3.14")
	if got := ast.Format(v); got != `(S "3.14")` {
		t.Fatalf("value = %s", got)
	}
}

func TestNodeSpans(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	v := parse(t, prog, "1+2")
	n, ok := v.(*ast.Node)
	if !ok || !n.Span.IsValid() {
		t.Fatalf("root node span missing: %v", ast.Format(v))
	}
	if n.Span.Start != 0 {
		t.Fatalf("span = %v", n.Span)
	}
}

func TestCaptureSpans(t *testing.T) {
	prog := build(t, `
public S = t:$([a-z]+) !. @S ;
`, Optimized())
	v := parse(t, prog, "abc")
	tok := v.(*ast.Node).Child(0).(*ast.Token)
	if tok.Span != text.NewSpan(0, 3) || tok.Text != "abc" {
		t.Fatalf("token = %+v", tok)
	}
}

func TestPathologicalBacktrackingIsLinearWithMemo(t *testing.T) {
	// Classic exponential grammar for plain backtracking: both alternatives
	// share the expensive prefix "(" E ")", so an unmemoized parser parses
	// the nested expression twice per level — 2^depth work — while packrat
	// stays linear.
	src := `
public S = E !. ;
E = "(" E ")" "x" / "(" E ")" "y" / "a" ;
`
	g := grammarOf(t, src)
	tg, _, err := transform.Apply(g, transform.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	depth := 14
	input := "a"
	for i := 0; i < depth; i++ {
		input = "(" + input + ")y"
	}
	naive, _ := Compile(tg, NaivePackrat())
	_, sNaive, err := naive.Parse(text.NewSource("in", input))
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	back, _ := Compile(tg, Backtracking())
	_, sBack, err := back.Parse(text.NewSource("in", input))
	if err != nil {
		t.Fatalf("backtracking: %v", err)
	}
	if sBack.Calls <= sNaive.Calls*4 {
		t.Fatalf("expected exponential blowup without memo: back=%d naive=%d", sBack.Calls, sNaive.Calls)
	}
}

func TestDeepRecursionDepth(t *testing.T) {
	prog := build(t, `
public S = E !. ;
E = "(" E ")" / "x" ;
`, Optimized())
	depth := 2000
	input := strings.Repeat("(", depth) + "x" + strings.Repeat(")", depth)
	if _, _, err := prog.Parse(text.NewSource("in", input)); err != nil {
		t.Fatalf("deep nesting failed: %v", err)
	}
}

func TestCheckTransformedGate(t *testing.T) {
	// Sanity: the analysis gate really runs inside Compile.
	g := grammarOf(t, `
public S = A* ;
A = "a"? ;
`)
	if err := analysis.Analyze(g).Check(); err == nil {
		t.Fatal("analysis must reject nullable repetition")
	}
	if _, err := Compile(g, Optimized()); err == nil {
		t.Fatal("Compile must reject nullable repetition")
	}
}

func TestParseWithTrace(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	var buf strings.Builder
	v, _, err := prog.ParseWithTrace(text.NewSource("in", "1+1"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("no value")
	}
	trace := buf.String()
	for _, frag := range []string{"Program @0 {", "Sum @0", "-> 3", "memo-hit"} {
		if !strings.Contains(trace, frag) {
			t.Fatalf("trace missing %q:\n%s", frag, trace)
		}
	}
	// Trace on failure shows the failing exits.
	buf.Reset()
	_, _, err = prog.ParseWithTrace(text.NewSource("in", "1+"), &buf)
	if err == nil {
		t.Fatal("must fail")
	}
	if !strings.Contains(buf.String(), "-> fail") {
		t.Fatal("failure trace missing")
	}
}
