package vm

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/text"
	"modpeg/internal/transform"
)

// buildWith is build with explicit transform options, for tests that
// need the grammar structure preserved (no inlining).
func buildWith(t *testing.T, body string, topts transform.Options, opts Options) *Program {
	t.Helper()
	g := grammarOf(t, body)
	out, _, err := transform.Apply(g, topts)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	prog, err := Compile(out, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// TestProfileMatchesStats cross-checks the profiler against the
// engine's own counters on every engine configuration: per-production
// calls must sum to Stats.Calls, memo hits to Stats.MemoHits, memo
// misses to Stats.MemoMisses, and whole-production dispatch skips can
// not exceed Stats.DispatchSkips (which additionally counts
// choice-alternative skips inside production bodies).
func TestProfileMatchesStats(t *testing.T) {
	src := text.NewSource("in", "(1+2)*3 - 4*(5-6)")
	for _, cfg := range engineConfigs {
		prog := build(t, calcGrammar, cfg)
		val, stats, prof, err := prog.ParseWithProfile(src)
		if err != nil {
			t.Fatalf("cfg %v: %v", cfg, err)
		}
		if val == nil {
			t.Fatalf("cfg %v: no value", cfg)
		}
		var hits, misses, skips int64
		for _, pp := range prof.Prods {
			hits += pp.MemoHits
			misses += pp.MemoMisses
			skips += pp.DispatchSkips
		}
		if got := prof.TotalCalls(); got != int64(stats.Calls) {
			t.Errorf("cfg %v: profile calls %d, stats calls %d", cfg, got, stats.Calls)
		}
		if hits != int64(stats.MemoHits) {
			t.Errorf("cfg %v: profile hits %d, stats hits %d", cfg, hits, stats.MemoHits)
		}
		if misses != int64(stats.MemoMisses) {
			t.Errorf("cfg %v: profile misses %d, stats misses %d", cfg, misses, stats.MemoMisses)
		}
		if skips > int64(stats.DispatchSkips) {
			t.Errorf("cfg %v: profile skips %d > stats skips %d", cfg, skips, stats.DispatchSkips)
		}
		// The profiled value must match the unprofiled parse.
		want, wantStats, err := prog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if ast.Format(val) != ast.Format(want) {
			t.Errorf("cfg %v: profiled value drift", cfg)
		}
		if stats != wantStats {
			t.Errorf("cfg %v: profiled stats drift: %v vs %v", cfg, stats, wantStats)
		}
	}
}

// TestProfileTimesAndFarthest sanity-checks the derived fields: self
// time sums into cumulative time, the root's cumulative time dominates,
// and farthest positions are within the input.
func TestProfileTimesAndFarthest(t *testing.T) {
	src := text.NewSource("in", "1+2*3")
	prog := build(t, calcGrammar, Optimized())
	_, _, prof, err := prog.ParseWithProfile(src)
	if err != nil {
		t.Fatal(err)
	}
	var totalSelf, maxCum int64
	for _, pp := range prof.Prods {
		if pp.SelfNanos < 0 || pp.CumNanos < 0 {
			t.Fatalf("%s: negative time self=%d cum=%d", pp.Name, pp.SelfNanos, pp.CumNanos)
		}
		if pp.Calls > 0 && pp.SelfNanos > pp.CumNanos {
			t.Errorf("%s: self %d > cum %d", pp.Name, pp.SelfNanos, pp.CumNanos)
		}
		if pp.FarthestPos > src.Len() {
			t.Errorf("%s: farthest %d beyond input %d", pp.Name, pp.FarthestPos, src.Len())
		}
		totalSelf += pp.SelfNanos
		if pp.CumNanos > maxCum {
			maxCum = pp.CumNanos
		}
	}
	// Self time partitions the root's cumulative time (both cover the
	// whole parse once, modulo clock granularity on either side).
	if totalSelf == 0 || maxCum == 0 {
		t.Fatalf("no time recorded: self=%d maxCum=%d", totalSelf, maxCum)
	}
}

// TestProfileBacktrackedBytes drives a production that consumes input
// via a sub-production and then fails, and expects the consumed bytes
// charged to it.
func TestProfileBacktrackedBytes(t *testing.T) {
	prog := buildWith(t, `
option root = S;
public S = B !. / A "y" !. ;
B = A "x" ;
A = $("aaa") ;
`, transform.Baseline(), Options{Memoize: true})
	_, _, prof, err := prog.ParseWithProfile(text.NewSource("in", "aaay"))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ProdProfile{}
	for _, pp := range prof.Prods {
		byName[pp.Name] = pp
	}
	// B entered A (which matched 3 bytes) and then failed on "x".
	if got := byName["m.B"].BacktrackedBytes; got != 3 {
		t.Errorf("B backtracked %d bytes, want 3", got)
	}
	// A succeeded on its only evaluation; the second use was a memo hit.
	if a := byName["m.A"]; a.Calls != 1 || a.MemoHits != 1 || a.BacktrackedBytes != 0 {
		t.Errorf("A profile = %+v, want 1 call, 1 memo hit, 0 backtracked", a)
	}
}

// TestProfilerAggregatesAcrossParses installs one Profiler on a session
// for several parses and checks the aggregate equals the sum of
// per-parse stats.
func TestProfilerAggregatesAcrossParses(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	s := prog.NewSession()
	pr := prog.NewProfiler()
	var want int64
	for _, in := range []string{"1+2", "3*4*5", "(1+2)*(3+4)", "7"} {
		_, stats, err := s.ParseWithHook(text.NewSource("in", in), pr)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(stats.Calls)
	}
	if got := pr.Profile().TotalCalls(); got != want {
		t.Errorf("aggregated calls %d, want %d", got, want)
	}
	// Profile() snapshots without resetting: a later snapshot includes
	// earlier parses.
	if _, _, err := s.ParseWithHook(text.NewSource("in", "8+9"), pr); err != nil {
		t.Fatal(err)
	}
	if got := pr.Profile().TotalCalls(); got <= want {
		t.Errorf("snapshot after another parse %d, want > %d", got, want)
	}
}

// TestParseAllProfiledAggregation fans a batch across workers and
// checks the merged profile against the aggregated per-input stats —
// run under -race by scripts/verify.sh, this also proves the workers'
// profilers never share state.
func TestParseAllProfiledAggregation(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	var srcs []*text.Source
	for i := 0; i < 48; i++ {
		in := fmt.Sprintf("%d+%d*%d", i, i+1, i+2)
		if i%9 == 4 { // sprinkle failures through the batch
			in += "+"
		}
		srcs = append(srcs, text.NewSource(fmt.Sprintf("in%d", i), in))
	}
	for _, workers := range []int{0, 1, 4, 64} {
		results, prof := prog.ParseAllProfiled(srcs, workers)
		if len(results) != len(srcs) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		total := TotalStats(results)
		if got := prof.TotalCalls(); got != int64(total.Calls) {
			t.Errorf("workers=%d: profile calls %d, stats calls %d", workers, got, total.Calls)
		}
		var hits int64
		for _, pp := range prof.Prods {
			hits += pp.MemoHits
		}
		if hits != int64(total.MemoHits) {
			t.Errorf("workers=%d: profile hits %d, stats hits %d", workers, hits, total.MemoHits)
		}
		// Results must match the unprofiled batch API.
		plain := prog.ParseAll(srcs, workers)
		for i := range plain {
			if (plain[i].Err == nil) != (results[i].Err == nil) {
				t.Fatalf("workers=%d input %d: err drift", workers, i)
			}
		}
	}
}

// TestProfileAddAndTop covers merging and the hottest-first ordering.
func TestProfileAddAndTop(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	src := text.NewSource("in", "1+2*3")
	_, _, a, err := prog.ParseWithProfile(src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, b, err := prog.ParseWithProfile(src)
	if err != nil {
		t.Fatal(err)
	}
	sum := prog.NewProfile()
	sum.Add(a)
	sum.Add(b)
	if got, want := sum.TotalCalls(), a.TotalCalls()+b.TotalCalls(); got != want {
		t.Errorf("merged calls %d, want %d", got, want)
	}
	top := sum.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d rows", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].SelfNanos > top[i-1].SelfNanos {
			t.Errorf("Top not sorted: %d ns after %d ns", top[i].SelfNanos, top[i-1].SelfNanos)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Add of mismatched profiles must panic")
		}
	}()
	sum.Add(&Profile{Prods: make([]ProdProfile, 1)})
}

// TestProfileReportAndJSON checks the rendered table (total row sums
// every production even when top-N truncates) and the JSON encoding.
func TestProfileReportAndJSON(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	_, stats, prof, err := prog.ParseWithProfile(text.NewSource("in", "(1+2)*3-4"))
	if err != nil {
		t.Fatal(err)
	}
	report := prof.Report(2)
	if !strings.Contains(report, "production") || !strings.Contains(report, "self-ms") {
		t.Fatalf("report missing header:\n%s", report)
	}
	if !strings.Contains(report, fmt.Sprintf("total  %d", stats.Calls)) &&
		!strings.Contains(report, "total") {
		t.Fatalf("report missing total row:\n%s", report)
	}
	// The total row's calls cell must equal Stats.Calls even though the
	// table shows only 2 productions.
	lines := strings.Split(strings.TrimSpace(report), "\n")
	last := strings.Fields(lines[len(lines)-1])
	if last[0] != "total" || last[1] != fmt.Sprint(stats.Calls) {
		t.Fatalf("total row = %v, want calls %d", last, stats.Calls)
	}

	data, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TotalCalls  int64         `json:"total_calls"`
		Productions []ProdProfile `json:"productions"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if decoded.TotalCalls != int64(stats.Calls) {
		t.Errorf("JSON total_calls %d, want %d", decoded.TotalCalls, stats.Calls)
	}
	if len(decoded.Productions) == 0 || decoded.Productions[0].Name == "" {
		t.Errorf("JSON productions malformed: %+v", decoded.Productions)
	}
}

// TestStatsStringIncludesChunkRows locks in the Stats.String fix: the
// formatted output must include every counter Add accumulates,
// ChunkRows included.
func TestStatsStringIncludesChunkRows(t *testing.T) {
	s := Stats{Calls: 1, MemoHits: 2, MemoMisses: 3, MemoStores: 4,
		DispatchSkips: 5, ChunksAllocated: 6, ChunkRows: 7, MemoBytes: 8, MaxPos: 9}
	got := s.String()
	if !strings.Contains(got, "chunkRows=7") {
		t.Fatalf("Stats.String() = %q, missing chunkRows", got)
	}
	// And a real chunked parse reports a nonzero row count.
	prog := build(t, calcGrammar, Optimized())
	_, stats, err := prog.Parse(text.NewSource("in", "1+2*3"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunkRows == 0 {
		t.Fatal("chunked parse recorded no chunk rows")
	}
	if !strings.Contains(stats.String(), fmt.Sprintf("chunkRows=%d", stats.ChunkRows)) {
		t.Fatalf("Stats.String() = %q, wrong chunkRows", stats.String())
	}
}
