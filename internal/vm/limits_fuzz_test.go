package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"modpeg/internal/ast"
	"modpeg/internal/core"
	"modpeg/internal/text"
	"modpeg/internal/transform"
)

// fuzzProgram compiles a single-module grammar without a *testing.T,
// for use from testing.F setup.
func fuzzProgram(body string, opts Options) (*Program, error) {
	g, err := core.Compose("m", core.MapResolver{"m": "module m;\n" + body})
	if err != nil {
		return nil, err
	}
	out, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		return nil, err
	}
	return Compile(out, opts)
}

// FuzzParseContext throws arbitrary inputs and randomized Limits at the
// governed entry point. The invariants, regardless of input or budget:
// no panic escapes ParseContext (a contained *EngineError is a bug too
// — containment exists for real engine bugs, and the fuzzer must not be
// able to trigger one), and when a governed parse succeeds its value
// matches the ungoverned parse — budgets and shedding may stop a parse,
// never change its answer.
func FuzzParseContext(f *testing.F) {
	progs := make([]*Program, 0, 2)
	for _, opts := range []Options{Optimized(), NaivePackrat()} {
		prog, err := fuzzProgram(calcGrammar, opts)
		if err != nil {
			f.Fatal(err)
		}
		progs = append(progs, prog)
	}
	f.Add("1 + 2*(3-4)", uint32(0), uint16(0), uint16(0), false, uint8(0))
	f.Add("((((1))))", uint32(100), uint16(3), uint16(0), true, uint8(1))
	f.Add("1+2", uint32(0), uint16(0), uint16(1), false, uint8(0))
	f.Add("(1+2)*3-4+(5*6)", uint32(64), uint16(0), uint16(0), false, uint8(1))
	f.Add("9**9", uint32(1), uint16(1), uint16(1), true, uint8(0))
	f.Fuzz(func(t *testing.T, input string, maxMemo uint32, maxDepth, timeoutMicros uint16, strict bool, engine uint8) {
		if len(input) > 1<<16 {
			t.Skip("bound per-exec work: governance behaviour is input-shape, not input-size")
		}
		prog := progs[int(engine)%len(progs)]
		lim := Limits{
			MaxMemoBytes:     int(maxMemo),
			MaxCallDepth:     int(maxDepth),
			MaxParseDuration: time.Duration(timeoutMicros) * time.Microsecond,
			Strict:           strict,
		}
		src := text.NewSource("fuzz", input)
		v, stats, err := prog.ParseContext(context.Background(), src, lim)
		if err != nil {
			var ee *EngineError
			if errors.As(err, &ee) {
				t.Fatalf("fuzzer reached an engine panic: %v\n%s", ee, ee.Stack)
			}
			return
		}
		if lim.MaxMemoBytes > 0 && stats.MemoBytes > lim.MaxMemoBytes {
			t.Fatalf("memo footprint %d exceeds budget %d", stats.MemoBytes, lim.MaxMemoBytes)
		}
		want, _, err := prog.Parse(src)
		if err != nil {
			t.Fatalf("governed parse accepted what ungoverned rejects: %v", err)
		}
		if !ast.Equal(v, want) {
			t.Fatalf("governed value drifted\ninput: %q\nlimits: %+v", input, lim)
		}
	})
}
