package vm

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// TestCompiledZeroAllocs is the compiled engine's allocation canary:
// a warm session parsing a fully void grammar must allocate nothing —
// the closure tree, like the interpreter's dispatch loop, has to run
// entirely on recycled arenas. scripts/bench_check.sh enforces the same
// property on the compiled BenchmarkTable5VoidSteadyState row.
func TestCompiledZeroAllocs(t *testing.T) {
	input := strings.Repeat("(1+2)*3-4/5+", 200) + "6"
	src := text.NewSource("in", input)
	prog := build(t, voidCalcGrammar, CompiledEngine())
	s := prog.NewSession()
	if _, _, err := s.Parse(src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := s.Parse(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state compiled session parse allocated %.1f objects/op, want 0", allocs)
	}
}

// TestCompiledMatchesOptimized is the inline differential check the
// conformance harness runs at corpus scale: same pipeline, both
// engines, exact agreement on value, error text, and rejection point.
func TestCompiledMatchesOptimized(t *testing.T) {
	for _, grammar := range []string{calcGrammar, voidCalcGrammar} {
		opt := build(t, grammar, Optimized())
		comp := build(t, grammar, CompiledEngine())
		inputs := []string{
			"1+2*3", "(1+2)*(3-4)", "((((5))))", "7",
			"", "1+", "(1+2", "1++2", "*3", "1 + \t2\n*3",
			strings.Repeat("(1+2)*3-4/5+", 50) + "6",
		}
		for _, in := range inputs {
			src := text.NewSource("in", in)
			wantV, _, wantErr := opt.Parse(src)
			gotV, _, gotErr := comp.Parse(src)
			if errStr(gotErr) != errStr(wantErr) {
				t.Fatalf("%q: compiled err %q, optimized err %q", in, errStr(gotErr), errStr(wantErr))
			}
			if !ast.Equal(gotV, wantV) {
				t.Fatalf("%q: compiled value %s, optimized %s", in, ast.Format(gotV), ast.Format(wantV))
			}
		}
	}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestCompiledIncrementalAgrees proves the compiled engine maintains
// the examined-region watermarks Document.Apply depends on: an edited
// document must reparse to exactly the from-scratch result, and small
// edits on a large input must actually recycle memo entries rather
// than fall back to a full reparse.
func TestCompiledIncrementalAgrees(t *testing.T) {
	base := strings.Repeat("(1+2)*3-4*5+", 400) + "6"
	doc := build(t, calcGrammar, CompiledEngine()).NewDocument(text.NewSource("doc", base))
	if doc.Err() != nil {
		t.Fatal(doc.Err())
	}
	fresh := build(t, calcGrammar, CompiledEngine())

	txt := base
	// The base text repeats a 12-byte block; each edit keeps it valid:
	// overwrite a digit mid-input, insert a parenthesized factor on a
	// block boundary, delete one whole block from the front.
	edits := []Edit{
		{Off: len(txt)/2 - len(txt)/2%12 + 1, OldLen: 1, NewLen: 1, Text: "7"},
		{Off: 12, OldLen: 0, NewLen: 6, Text: "(8+9)*"},
		{Off: 0, OldLen: 12, NewLen: 0, Text: ""},
	}
	reused := 0
	for i, e := range edits {
		v, stats, err := doc.Apply(e)
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		reused += stats.MemoReused
		txt = txt[:e.Off] + e.Text + txt[e.Off+e.OldLen:]
		want, _, werr := fresh.Parse(text.NewSource("scratch", txt))
		if werr != nil {
			t.Fatalf("edit %d: scratch parse: %v", i, werr)
		}
		if !ast.Equal(v, want) {
			t.Fatalf("edit %d: incremental value differs from scratch parse", i)
		}
	}
	if reused == 0 {
		t.Fatal("no memo entries recycled across three small edits: incremental reuse is not engaging on the compiled engine")
	}
}

// TestCompiledConcurrentParseRace hammers one compiled Program from
// many goroutines — pooled Parse calls, dedicated sessions, and
// ParseAll batches interleaved — proving under -race that the closure
// tree is read-only after compile and pooled parser state never leaks
// between concurrent parses.
func TestCompiledConcurrentParseRace(t *testing.T) {
	prog := build(t, calcGrammar, CompiledEngine())
	inputs := []string{"1+2*3", "(1+2)*(3+4)", "7", "1+", "((9))", ""}
	var srcs []*text.Source
	var want []string
	for i, in := range inputs {
		src := text.NewSource(fmt.Sprintf("in%d", i), in)
		srcs = append(srcs, src)
		v, _, err := prog.NewSession().Parse(src)
		if err != nil {
			want = append(want, "")
		} else {
			want = append(want, ast.Format(v))
		}
	}
	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % len(srcs)
				var v ast.Value
				var err error
				switch (g + i) % 3 {
				case 0:
					v, _, err = prog.Parse(srcs[k])
				case 1:
					s := prog.NewSession()
					s.Parse(srcs[(k+1)%len(srcs)])
					v, _, err = s.Parse(srcs[k])
				default:
					results := prog.ParseAll(srcs, 3)
					if len(results) != len(srcs) {
						t.Errorf("batch returned %d results", len(results))
						return
					}
					v, err = results[k].Value, results[k].Err
				}
				if got := ""; err == nil {
					got = ast.Format(v)
					if got != want[k] {
						t.Errorf("goroutine %d: input %d parsed to %s, want %s", g, k, got, want[k])
						return
					}
				} else if want[k] != "" {
					t.Errorf("goroutine %d: input %d unexpectedly rejected: %v", g, k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
