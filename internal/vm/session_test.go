package vm

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// voidCalcGrammar exercises memoization, choices, repetition, and
// predicates while producing no semantic values at all — the pure
// parser-machinery workload for the zero-allocation assertions.
const voidCalcGrammar = `
option root = S;
public void S = Expr !. ;
void Expr = Term (("+" / "-") Term)* ;
void Term = Factor (("*" / "/") Factor)* ;
void Factor = Number / "(" Expr ")" ;
void Number = [0-9]+ ;
`

func TestSessionReuseMatchesColdParse(t *testing.T) {
	inputs := []string{
		"1 + 2*3",
		"(1+2)*3",
		"1*2*3*4*5",
		"x",     // fails
		"1 + 2", // shorter than the first input: stale memo would be visible
		"((((1))))",
		"(1+2)*(3+4)-5*6+7*(8-9)", // longer again
		"",                        // fails at position 0
	}
	for _, cfg := range engineConfigs {
		prog := build(t, calcGrammar, cfg)
		s := prog.NewSession()
		for _, in := range inputs {
			src := text.NewSource("in", in)
			coldVal, coldStats, coldErr := prog.NewSession().Parse(src)
			gotVal, gotStats, gotErr := s.Parse(src)
			if (gotErr == nil) != (coldErr == nil) {
				t.Fatalf("cfg %v input %q: session err %v, cold err %v", cfg, in, gotErr, coldErr)
			}
			if gotErr != nil && gotErr.Error() != coldErr.Error() {
				t.Fatalf("cfg %v input %q: error drift: %v vs %v", cfg, in, gotErr, coldErr)
			}
			if !ast.Equal(gotVal, coldVal) {
				t.Fatalf("cfg %v input %q: value drift: %s vs %s",
					cfg, in, ast.Format(gotVal), ast.Format(coldVal))
			}
			if gotStats != coldStats {
				t.Fatalf("cfg %v input %q: stats drift:\nsession: %v\ncold:    %v",
					cfg, in, gotStats, coldStats)
			}
		}
	}
}

func TestPooledParseMatchesSessionParse(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	src := text.NewSource("in", "1+2*(3-4)")
	refVal, refStats, err := prog.NewSession().Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated pooled parses reuse a warm parser; nothing may drift.
	for i := 0; i < 5; i++ {
		v, st, err := prog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if !ast.Equal(v, refVal) || st != refStats {
			t.Fatalf("iteration %d drift: %s / %v", i, ast.Format(v), st)
		}
	}
}

func TestSessionParsePrefix(t *testing.T) {
	prog := build(t, "public S = \"ab\" ;\n", Optimized())
	s := prog.NewSession()
	for i := 0; i < 3; i++ {
		_, n, _, err := s.ParsePrefix(text.NewSource("in", "abc"))
		if err != nil || n != 2 {
			t.Fatalf("n = %d, err = %v", n, err)
		}
	}
	if _, _, _, err := s.ParsePrefix(text.NewSource("in", "xx")); err == nil {
		t.Fatal("prefix mismatch must fail")
	}
	if s.Program() != prog {
		t.Fatal("Program identity")
	}
}

// TestSteadyStateAllocsVoidGrammar asserts the headline property of the
// session layer: once warm, the parser machinery itself allocates
// nothing. The grammar is fully void so no semantic values muddy the
// count.
func TestSteadyStateAllocsVoidGrammar(t *testing.T) {
	input := strings.Repeat("(1+2)*3-4/5+", 200) + "6"
	src := text.NewSource("in", input)
	for _, cfg := range []Options{Optimized(), NaivePackrat(), Backtracking()} {
		prog := build(t, voidCalcGrammar, cfg)
		s := prog.NewSession()
		if _, _, err := s.Parse(src); err != nil {
			t.Fatalf("cfg %v: %v", cfg, err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, _, err := s.Parse(src); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("cfg %v: steady-state session parse allocated %.1f objects/op, want 0", cfg, allocs)
		}
	}
}

// TestSteadyStateAllocsCalc bounds the valued calc grammar: the pooled
// path may allocate only for semantic values (amortized through slabs),
// which must be a small fraction of what a cold parse allocates.
func TestSteadyStateAllocsCalc(t *testing.T) {
	input := strings.Repeat("(1+2)*3-4*5+", 200) + "6"
	src := text.NewSource("in", input)
	prog := build(t, calcGrammar, Optimized())

	cold := testing.AllocsPerRun(10, func() {
		if _, _, err := prog.NewSession().Parse(src); err != nil {
			t.Fatal(err)
		}
	})
	s := prog.NewSession()
	s.Parse(src)
	warm := testing.AllocsPerRun(10, func() {
		if _, _, err := s.Parse(src); err != nil {
			t.Fatal(err)
		}
	})
	if warm > cold/2 {
		t.Errorf("warm session allocs = %.1f, cold = %.1f: want warm <= cold/2", warm, cold)
	}
}

func TestParseAllOrderContract(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	var srcs []*text.Source
	var wantOK []bool
	for i := 0; i < 64; i++ {
		in := fmt.Sprintf("%d+%d*%d", i, i+1, i+2)
		ok := true
		if i%7 == 3 { // sprinkle failures through the batch
			in += "+"
			ok = false
		}
		srcs = append(srcs, text.NewSource(fmt.Sprintf("in%d", i), in))
		wantOK = append(wantOK, ok)
	}
	for _, workers := range []int{0, 1, 3, 128} {
		results := prog.ParseAll(srcs, workers)
		if len(results) != len(srcs) {
			t.Fatalf("workers=%d: %d results for %d inputs", workers, len(results), len(srcs))
		}
		for i, r := range results {
			if (r.Err == nil) != wantOK[i] {
				t.Fatalf("workers=%d input %d: err = %v, want ok=%v", workers, i, r.Err, wantOK[i])
			}
			if r.Err != nil {
				continue
			}
			want, _, err := prog.NewSession().Parse(srcs[i])
			if err != nil {
				t.Fatal(err)
			}
			if !ast.Equal(r.Value, want) {
				t.Fatalf("workers=%d input %d: value %s, want %s",
					workers, i, ast.Format(r.Value), ast.Format(want))
			}
		}
	}
	if results := prog.ParseAll(nil, 4); len(results) != 0 {
		t.Fatalf("empty batch: %d results", len(results))
	}
}

func TestTotalStats(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	srcs := []*text.Source{
		text.NewSource("a", "1+2"),
		text.NewSource("b", "3*4*5"),
	}
	results := prog.ParseAll(srcs, 1)
	total := TotalStats(results)
	var want Stats
	for _, src := range srcs {
		_, st, err := prog.NewSession().Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		want.Add(st)
	}
	if total != want {
		t.Fatalf("total = %v, want %v", total, want)
	}
	if total.Calls <= results[0].Stats.Calls {
		t.Fatal("aggregate must exceed a single input's counters")
	}
}

// TestConcurrentParseRace hammers one Program from many goroutines —
// pooled Parse calls interleaved with ParseAll batches — to prove under
// -race that the Program is read-only after compile and sessions never
// leak across goroutines.
func TestConcurrentParseRace(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	inputs := []string{"1+2*3", "(1+2)*(3+4)", "7", "1+", "((9))", ""}
	var srcs []*text.Source
	for i, in := range inputs {
		srcs = append(srcs, text.NewSource(fmt.Sprintf("in%d", i), in))
	}
	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					prog.Parse(srcs[(g+i)%len(srcs)])
				case 1:
					s := prog.NewSession()
					s.Parse(srcs[(g+i)%len(srcs)])
					s.Parse(srcs[(g+i+1)%len(srcs)])
				default:
					results := prog.ParseAll(srcs, 3)
					if len(results) != len(srcs) {
						t.Errorf("batch returned %d results", len(results))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
