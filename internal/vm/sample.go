package vm

import (
	"encoding/json"
	"sort"
	"sync"
)

// This file is the always-on sampled profiler: a process-cheap sampler
// that attaches the per-production Profiler (profile.go) to 1-in-N
// pooled parses and folds the results into per-grammar-label rolling
// profiles. Where ParseWithProfile answers "what did this parse do,
// production by production" for one explicitly profiled call, the
// sampled registry answers "what has this grammar been doing in
// production" without any caller opting in — the tail-forensics
// companion to the latency histograms: once a grammar@version shows a
// fat p999, its rolling profile names the productions burning the time.
//
// Cost model: the sampling decision is one atomic load in acquire when
// sampling is off (the default), preserving the zero-allocation steady
// state; when on, one atomic add selects every N-th checkout, which
// borrows a pooled Profiler and pays the usual profiling cost (two
// clock reads per production call) for that parse only. Sampled parses
// run the interpreter — the closure-compiled engine has no hook seam —
// so N should stay large enough that 1/N of traffic on the slower
// engine is acceptable (the bench gate holds 1-in-100 to <= 2%
// end-to-end). Merging into the rolling profile happens at release
// time under a mutex keyed by grammar label; at 1-in-N traffic the
// lock is uncontended.
//
// Sessions (NewSession) bypass the pool and are never sampled: a
// resident session is an explicitly managed parser whose owner can
// install a Profiler directly.

// SampledProfile is the rolling profile of one grammar label,
// aggregated across every sampled parse since process start (or the
// last ResetSampledProfiles). Productions are keyed by name, not
// production index, so profiles survive hot-swapped recompiles of the
// same label and aggregate across Programs that share one.
type SampledProfile struct {
	// Label is the grammar label (Program.SetLabel; "tenant/name@vN"
	// under the registry).
	Label string `json:"grammar"`
	// Parses counts the sampled parses folded into this profile.
	Parses int64 `json:"sampled_parses"`
	// Productions holds the aggregated per-production rows, hottest
	// first (descending self time, like Profile.Top).
	Productions []ProdProfile `json:"productions"`
}

// sampledEntry is one label's live accumulator.
type sampledEntry struct {
	parses int64
	prods  map[string]*ProdProfile
}

var (
	sampledMu  sync.Mutex
	sampledReg = make(map[string]*sampledEntry)
)

// SetSampling sets this program's sampling rate: every n-th pooled
// parse (Parse/ParseContext and friends — not explicit Sessions) runs
// with a borrowed Profiler and is folded into the label's rolling
// SampledProfile. n <= 0 disables sampling (the default); n == 1
// profiles every pooled parse. Safe to call concurrently with parses —
// in-flight checkouts keep the decision made at acquire time.
func (p *Program) SetSampling(n int) {
	if n < 0 {
		n = 0
	}
	p.sampleEvery.Store(int64(n))
}

// Sampling returns the program's current sampling rate (0 = off).
func (p *Program) Sampling() int { return int(p.sampleEvery.Load()) }

// sampledProfiler borrows a profiler from the program's pool, building
// one on a cold start. Only sampled checkouts (1-in-N) reach here.
func (p *Program) sampledProfiler() *Profiler {
	if pr, ok := p.profPool.Get().(*Profiler); ok {
		return pr
	}
	return p.NewProfiler()
}

// finishSample folds a sampled checkout's profiler into the rolling
// profile of the program's label and returns the profiler to the pool.
// Called from release, so a checkout that served several begins (batch
// workers) merges once with its whole aggregate.
func (p *Program) finishSample(pr *Profiler, parses int64) {
	label := p.Label()
	sampledMu.Lock()
	e := sampledReg[label]
	if e == nil {
		e = &sampledEntry{prods: make(map[string]*ProdProfile)}
		sampledReg[label] = e
	}
	e.parses += parses
	for i := range pr.p.Prods {
		pp := &pr.p.Prods[i]
		if pp.Calls == 0 && pp.MemoHits == 0 && pp.DispatchSkips == 0 {
			continue
		}
		agg := e.prods[pp.Name]
		if agg == nil {
			agg = &ProdProfile{Name: pp.Name}
			e.prods[pp.Name] = agg
		}
		row := *pp
		if pr.memoized[i] {
			row.MemoMisses = row.Calls
		}
		agg.add(row)
	}
	sampledMu.Unlock()
	pr.reset()
	p.profPool.Put(pr)
}

// snapshotSampled copies one entry into its public form, hottest
// production first. Caller holds sampledMu.
func snapshotSampledLocked(label string, e *sampledEntry) SampledProfile {
	rows := make([]ProdProfile, 0, len(e.prods))
	for _, pp := range e.prods {
		rows = append(rows, *pp)
	}
	prof := Profile{Prods: rows}
	return SampledProfile{Label: label, Parses: e.parses, Productions: prof.Top(0)}
}

// SampledProfiles snapshots every label's rolling sampled profile,
// sorted by label — the payload of the /debug/profiles endpoint and
// the source of the Prometheus hot-production counters. Labels whose
// sampled parses recorded no production activity are included (Parses
// counts, Productions empty) so a sampled-but-idle grammar is visible.
func SampledProfiles() []SampledProfile {
	sampledMu.Lock()
	defer sampledMu.Unlock()
	out := make([]SampledProfile, 0, len(sampledReg))
	for label, e := range sampledReg {
		out = append(out, snapshotSampledLocked(label, e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// SampledProfileFor snapshots one label's rolling profile. ok is false
// when the label has never been sampled.
func SampledProfileFor(label string) (SampledProfile, bool) {
	sampledMu.Lock()
	defer sampledMu.Unlock()
	e := sampledReg[label]
	if e == nil {
		return SampledProfile{}, false
	}
	return snapshotSampledLocked(label, e), true
}

// ResetSampledProfiles drops every rolling sampled profile — the
// windowed-scrape companion to ResetMetrics (which deliberately leaves
// the sampled registry alone: histogram windows and profile windows
// reset independently).
func ResetSampledProfiles() {
	sampledMu.Lock()
	defer sampledMu.Unlock()
	clear(sampledReg)
}

// SampledProfilesJSON renders the full sampled-profile snapshot, the
// /debug/profiles payload.
func SampledProfilesJSON() ([]byte, error) {
	return json.MarshalIndent(SampledProfiles(), "", "  ")
}
