// Package vm compiles composed grammars into executable parser programs
// and runs them with three interchangeable engine configurations:
//
//   - plain backtracking recursive descent (no memoization) — the textbook
//     PEG interpreter, exponential in the worst case;
//   - naive packrat — every production memoized at every position;
//   - optimized packrat — the paper's engine: transient productions skip
//     the memo table, memo entries live in per-position chunks allocated
//     lazily, and choices and calls dispatch on the next input byte.
//
// All three produce identical semantic values (a property the test suite
// checks by construction on every bundled grammar), which is what makes
// the paper's time/space comparisons meaningful.
//
// # Value rules
//
// See internal/peg's package documentation. The compiler additionally
// performs value specialization: expressions in *void context* (inside
// captures and predicates, and the bodies of void/text productions) are
// compiled to value-free code that allocates nothing.
package vm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"modpeg/internal/analysis"
	"modpeg/internal/peg"
)

// Options selects the engine configuration. The zero value is the plain
// backtracking interpreter.
type Options struct {
	// Memoize enables the packrat memo table.
	Memoize bool
	// MemoEverything ignores transient attributes and memoizes every
	// production (the naive packrat baseline). Implies Memoize.
	MemoEverything bool
	// ChunkedMemo lays memo entries out in per-position chunks; otherwise
	// a hash map keyed by (position, production) is used.
	ChunkedMemo bool
	// Dispatch enables first-byte dispatch for choices and calls.
	Dispatch bool
}

// Optimized returns the full paper engine configuration.
func Optimized() Options {
	return Options{Memoize: true, ChunkedMemo: true, Dispatch: true}
}

// NaivePackrat returns the memoize-everything baseline (hash-map memo, no
// dispatch), mirroring the straightforward packrat implementations the
// paper compares against.
func NaivePackrat() Options {
	return Options{Memoize: true, MemoEverything: true}
}

// Backtracking returns the plain recursive-descent configuration.
func Backtracking() Options { return Options{} }

// String names the configuration for benchmark output.
func (o Options) String() string {
	switch {
	case !o.Memoize:
		return "backtracking"
	case o.MemoEverything && !o.ChunkedMemo:
		return "naive-packrat"
	default:
		s := "packrat"
		if o.ChunkedMemo {
			s += "+chunks"
		}
		if o.Dispatch {
			s += "+dispatch"
		}
		if o.MemoEverything {
			s += "+memoall"
		}
		return s
	}
}

// Program is a compiled grammar ready for execution. It is read-only
// after Compile, so one Program may serve any number of goroutines
// concurrently (each parse works on its own Parser session).
type Program struct {
	opts  Options
	prods []prodInfo
	index map[string]int
	root  int
	// memoCols is the number of memo columns (memoized productions).
	memoCols int
	// pool recycles Parser sessions across Parse calls; it is the only
	// mutable (and internally synchronized) part of a compiled program.
	pool sync.Pool
	// gstats points at the per-grammar counter set this program's parses
	// feed in the metrics registry (metrics.go). Compile resolves a
	// default from the root production's module qualifier; SetLabel
	// re-points it. Atomic so SetLabel is safe against in-flight parses.
	gstats atomic.Pointer[grammarStats]
}

type valueKind uint8

const (
	valNormal valueKind = iota
	valText             // production produces the matched text as a token
	valVoid             // production produces nil
)

type prodInfo struct {
	name     string
	display  string // short name for failure reporting
	attrs    peg.Attr
	kind     valueKind
	body     node
	memoCol  int // -1 when transient (not memoized)
	nullable bool
	// dispatch data (valid when firstOK)
	firstOK bool
	first   analysis.ByteSet
}

// Options returns the configuration the program was compiled with.
func (p *Program) Options() Options { return p.opts }

// SetLabel sets the grammar label this program's parses are counted
// under in the metrics registry's per-grammar counters (and in the
// Prometheus exporter's `grammar` label). Programs compiled for the
// same label share one counter set. Compile defaults the label to the
// root production's module qualifier; higher layers that know the
// user-facing grammar name (the facade's top module) override it.
func (p *Program) SetLabel(label string) {
	p.gstats.Store(grammarStatsFor(label))
}

// Label returns the program's current grammar label.
func (p *Program) Label() string {
	if g := p.gstats.Load(); g != nil {
		return g.label
	}
	return ""
}

// defaultGrammarLabel derives a label from the fully qualified root
// production name: its module qualifier ("calc.core.Expr" → "calc.core"),
// or the whole name when unqualified.
func defaultGrammarLabel(root string) string {
	if i := strings.LastIndexByte(root, '.'); i >= 0 {
		return root[:i]
	}
	return root
}

// MemoColumns returns the number of memoized productions.
func (p *Program) MemoColumns() int { return p.memoCols }

// NumProductions returns the number of productions compiled.
func (p *Program) NumProductions() int { return len(p.prods) }

// Compile compiles a composed, transformed grammar. The grammar must pass
// analysis.CheckTransformed (no left recursion, no nullable repetition).
func Compile(g *peg.Grammar, opts Options) (*Program, error) {
	a := analysis.Analyze(g)
	if err := a.CheckTransformed(); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	if opts.MemoEverything {
		opts.Memoize = true
	}
	p := &Program{opts: opts, index: make(map[string]int, len(g.Order))}
	for i, name := range g.Order {
		p.index[name] = i
	}
	root, ok := p.index[g.Root]
	if !ok {
		return nil, fmt.Errorf("vm: root production %q not found", g.Root)
	}
	p.root = root
	p.SetLabel(defaultGrammarLabel(g.Root))

	// Memo columns are assigned hottest-first (by static reference count)
	// so that frequently probed productions share the first chunks of
	// every position's chunk directory — the layout half of the chunk
	// optimization.
	memoized := make([]string, 0, len(g.Order))
	for _, name := range g.Order {
		pr := g.Prods[name]
		if opts.Memoize && (opts.MemoEverything || !pr.Attrs.Has(peg.AttrTransient)) {
			memoized = append(memoized, name)
		}
	}
	sort.SliceStable(memoized, func(i, j int) bool {
		return a.RefCount[memoized[i]] > a.RefCount[memoized[j]]
	})
	memoCol := make(map[string]int, len(memoized))
	for i, name := range memoized {
		memoCol[name] = i
	}
	p.memoCols = len(memoized)

	c := &compiler{prog: p, analysis: a}
	p.prods = make([]prodInfo, len(g.Order))
	for i, name := range g.Order {
		pr := g.Prods[name]
		info := &p.prods[i]
		info.name = name
		info.display = displayNameOf(name)
		info.attrs = pr.Attrs
		info.nullable = a.Nullable[name]
		info.firstOK = a.FirstPrecise[name] && !a.Nullable[name]
		if f := a.First[name]; f != nil {
			info.first = *f
		}
		switch {
		case pr.Attrs.Has(peg.AttrText):
			info.kind = valText
		case pr.Attrs.Has(peg.AttrVoid):
			info.kind = valVoid
		default:
			info.kind = valNormal
		}
		voidBody := info.kind != valNormal
		info.body = c.compile(pr.Choice, voidBody)

		if col, ok := memoCol[name]; ok {
			info.memoCol = col
		} else {
			info.memoCol = -1
		}
	}
	return p, nil
}

// ----------------------------------------------------------------- nodes

// node is a compiled parsing expression. Implementations live in this file
// and are interpreted by the engine in interp.go.
type node interface{ isNode() }

type nEmpty struct{}

type nLit struct {
	text    string
	display string // precomputed %q form for failure reporting
}

type nClass struct {
	tbl  *[256]bool
	void bool // no token value needed
}

type nAny struct{ void bool }

type nCall struct{ prod int }

type itemRole uint8

const (
	roleNormal itemRole = iota
	roleHead            // splice protocol: contribute non-nil value
	roleTail            // splice protocol: splice the callee's list
	roleEmpty           // splice protocol: contributes nothing
)

type nItem struct {
	n     node
	bound bool
	role  itemRole
}

type nSeq struct {
	items []nItem
	// ctor builds a node value; empty ctor is pass-through.
	ctor string
	// hasBind: children are the bound item values (nil included); else all
	// non-nil values.
	hasBind bool
	// splice: the sequence uses the repetition-expansion splice protocol
	// and produces a flat ast.List.
	splice bool
	void   bool
}

type nChoice struct {
	alts []nAlt
}

type nAlt struct {
	n node
	// dispatch data: when ok, the alternative is skippable if the next
	// byte is not in first (and the alternative cannot match empty).
	dispatchOK bool
	first      analysis.ByteSet
}

type nRepeat struct {
	min  int
	body node
	void bool // iterations yield no values
}

type nOpt struct {
	body node
	void bool
}

type nAnd struct{ body node }

type nNot struct{ body node }

type nCapture struct{ body node }

type nLeftRec struct {
	seed     node
	suffixes []nSeq
	void     bool
}

func (nEmpty) isNode()    {}
func (nLit) isNode()      {}
func (*nClass) isNode()   {}
func (nAny) isNode()      {}
func (nCall) isNode()     {}
func (*nSeq) isNode()     {}
func (*nChoice) isNode()  {}
func (*nRepeat) isNode()  {}
func (*nOpt) isNode()     {}
func (*nAnd) isNode()     {}
func (*nNot) isNode()     {}
func (*nCapture) isNode() {}
func (*nLeftRec) isNode() {}

// ------------------------------------------------------------- compiler

type compiler struct {
	prog     *Program
	analysis *analysis.Analysis
}

// compile translates e into executable form; void indicates that the value
// of e will be discarded, enabling value-free specialization.
func (c *compiler) compile(e peg.Expr, void bool) node {
	switch e := e.(type) {
	case nil, *peg.Empty:
		return nEmpty{}
	case *peg.Literal:
		return nLit{text: e.Text, display: fmt.Sprintf("%q", e.Text)}
	case *peg.CharClass:
		var tbl [256]bool
		for b := 0; b < 256; b++ {
			tbl[b] = e.Matches(byte(b))
		}
		return &nClass{tbl: &tbl, void: void}
	case *peg.Any:
		return nAny{void: void}
	case *peg.NonTerm:
		return nCall{prod: c.prog.index[e.Name]}
	case *peg.Capture:
		if void {
			// The token would be discarded: compile the body void and skip
			// the capture wrapper entirely.
			return c.compile(e.Expr, true)
		}
		return &nCapture{body: c.compile(e.Expr, true)}
	case *peg.And:
		return &nAnd{body: c.compile(e.Expr, true)}
	case *peg.Not:
		return &nNot{body: c.compile(e.Expr, true)}
	case *peg.Optional:
		bodyVoid := void || !c.analysis.ExprValued(e.Expr)
		return &nOpt{body: c.compile(e.Expr, bodyVoid), void: bodyVoid}
	case *peg.Repeat:
		bodyVoid := void || !c.analysis.ExprValued(e.Expr)
		return &nRepeat{min: e.Min, body: c.compile(e.Expr, bodyVoid), void: bodyVoid}
	case *peg.Seq:
		return c.compileSeq(e, void)
	case *peg.Choice:
		n := &nChoice{alts: make([]nAlt, len(e.Alts))}
		for i, alt := range e.Alts {
			na := nAlt{n: c.compileSeq(alt, void)}
			if c.prog.opts.Dispatch {
				set, precise := c.firstOf(alt)
				if precise && !c.nullable(alt) {
					na.dispatchOK = true
					na.first = *set
				}
			}
			n.alts[i] = na
		}
		return n
	case *peg.LeftRec:
		n := &nLeftRec{seed: c.compile(e.Seed, void), void: void}
		for _, s := range e.Suffixes {
			n.suffixes = append(n.suffixes, *c.compileSeq(s, void))
		}
		return n
	default:
		panic(fmt.Sprintf("vm: unknown expression %T", e))
	}
}

func (c *compiler) compileSeq(s *peg.Seq, void bool) *nSeq {
	n := &nSeq{ctor: s.Ctor, hasBind: s.HasBindings(), void: void}
	if void {
		n.ctor = ""
		n.hasBind = false
	} else if s.IsSpliceSeq() {
		n.splice = true
		n.ctor = ""
		n.hasBind = false
	}
	for _, it := range s.Items {
		role := roleNormal
		switch it.Bind {
		case peg.BindHead:
			role = roleHead
		case peg.BindTail:
			role = roleTail
		case peg.BindEmpty:
			role = roleEmpty
		}
		itemVoid := void
		if !void && !n.splice && n.hasBind && it.Bind == "" {
			// Only bound items contribute children under a binding ctor; an
			// unbound sibling's value is discarded... unless the sequence is
			// pass-through (no ctor), where every value counts.
			itemVoid = n.ctor != ""
		}
		n.items = append(n.items, nItem{
			n:     c.compile(it.Expr, itemVoid || isPredicate(it.Expr)),
			bound: it.Bind != "",
			role:  role,
		})
	}
	return n
}

func isPredicate(e peg.Expr) bool {
	switch e.(type) {
	case *peg.And, *peg.Not:
		return true
	}
	return false
}

func (c *compiler) firstOf(e peg.Expr) (*analysis.ByteSet, bool) {
	return analysis.FirstOfExpr(c.analysis, e)
}

func (c *compiler) nullable(e peg.Expr) bool {
	return analysis.NullableExpr(c.analysis, e)
}

// displayNameOf strips the module qualifier for error messages.
func displayNameOf(full string) string {
	if i := strings.LastIndexByte(full, '.'); i >= 0 {
		return full[i+1:]
	}
	return full
}
