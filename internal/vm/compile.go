// Package vm compiles composed grammars into executable parser programs
// and runs them with three interchangeable engine configurations:
//
//   - plain backtracking recursive descent (no memoization) — the textbook
//     PEG interpreter, exponential in the worst case;
//   - naive packrat — every production memoized at every position;
//   - optimized packrat — the paper's engine: transient productions skip
//     the memo table, memo entries live in per-position chunks allocated
//     lazily, and choices and calls dispatch on the next input byte.
//
// All three produce identical semantic values (a property the test suite
// checks by construction on every bundled grammar), which is what makes
// the paper's time/space comparisons meaningful.
//
// # Value rules
//
// See internal/peg's package documentation. The compiler additionally
// performs value specialization: expressions in *void context* (inside
// captures and predicates, and the bodies of void/text productions) are
// compiled to value-free code that allocates nothing.
package vm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"modpeg/internal/analysis"
	"modpeg/internal/peg"
)

// Options selects the engine configuration. The zero value is the plain
// backtracking interpreter.
type Options struct {
	// Memoize enables the packrat memo table.
	Memoize bool
	// MemoEverything ignores transient attributes and memoizes every
	// production (the naive packrat baseline). Implies Memoize.
	MemoEverything bool
	// ChunkedMemo lays memo entries out in per-position chunks; otherwise
	// a hash map keyed by (position, production) is used.
	ChunkedMemo bool
	// Dispatch enables first-byte dispatch for choices and calls. With it,
	// every choice of up to 64 alternatives gets a 256-entry byte→bitmask
	// pruning table built from the first sets of its alternatives, so one
	// table probe selects the alternatives worth trying (nullable
	// alternatives are never pruned — the nullable-prefix fallback).
	Dispatch bool
	// ScanFusion fuses void-context repetitions of a character class or a
	// literal into scan nodes that consume a whole run in one interpreter
	// frame — the byte-level hot path for whitespace, identifiers, numbers,
	// comments, and string bodies.
	ScanFusion bool
	// PGO, when non-nil, enables profile-guided inlining: small hot
	// productions are compiled inline at their call sites and their memo
	// columns are dropped. See the PGO type.
	PGO *PGO
	// Compiled additionally lowers the program to the closure-threaded
	// compiled engine (compiled.go): every node becomes a specialized
	// Go closure, eliminating the per-node interpretation dispatch.
	// The node tree is kept alongside — parses with an event hook
	// installed (trace, profiler) run it instead, so observability
	// works unchanged. Semantics, error text, and statistics are
	// identical to interpreting the same program.
	Compiled bool
}

// PGO is the hot-production report fed to Compile for profile-guided
// inlining. Build one from a profiler run with Profile.PGO, decode a
// `modpeg profile -json` report with LoadPGO, or use the zero value
// (&PGO{}) to treat every eligible production as hot (static
// small-production inlining).
//
// A production is inlined when it is non-recursive, not the root, its
// body cost (analysis.ExprCost) is at most MaxCost, and — when Calls is
// non-nil — its observed call count is at least HotCalls. Inlined
// productions lose their memo column: their bodies are replicated at
// each call site (bounded by a small transitive-inline depth) and their
// work is charged to the enclosing memoized production.
type PGO struct {
	// Calls maps fully qualified production names to observed call
	// counts (the profiler's calls+memo_hits per production). nil means
	// "no profile": every production passing the static tests is hot.
	Calls map[string]int64
	// HotCalls is the minimum observed call count for inlining when
	// Calls is non-nil. Zero or negative selects the default (32).
	HotCalls int64
	// MaxCost is the maximum analysis.ExprCost body size for inlining.
	// Zero or negative selects the default (48).
	MaxCost int
}

const (
	pgoDefaultHotCalls = 32
	pgoDefaultMaxCost  = 48
	// maxInlineDepth bounds transitive inlining (an inlined body whose
	// calls are themselves inline candidates), capping code growth.
	maxInlineDepth = 3
)

// Optimized returns the full paper engine configuration.
func Optimized() Options {
	return Options{Memoize: true, ChunkedMemo: true, Dispatch: true, ScanFusion: true}
}

// NaivePackrat returns the memoize-everything baseline (hash-map memo, no
// dispatch), mirroring the straightforward packrat implementations the
// paper compares against.
func NaivePackrat() Options {
	return Options{Memoize: true, MemoEverything: true}
}

// Backtracking returns the plain recursive-descent configuration.
func Backtracking() Options { return Options{} }

// CompiledEngine returns the closure-threaded compiled engine
// configuration: the full optimized engine lowered to specialized
// closures at Compile time, with the memo table narrowed to the
// statically-derived backtrack-prefix set (analysis.BacktrackPrefixes)
// instead of the interpreter's profile-guided inlining — no profile is
// needed, which is what lets registry uploads and `modpeg serve`
// compile cold. This is the production fast path: the paper's
// generated-parser speed without running the go toolchain, so it is
// available to runtime-loaded grammars too.
func CompiledEngine() Options {
	o := Optimized()
	o.Compiled = true
	return o
}

// String names the configuration for benchmark output.
func (o Options) String() string {
	suffix := ""
	if o.Compiled {
		suffix = "+compiled"
	}
	switch {
	case !o.Memoize:
		return "backtracking" + suffix
	case o.MemoEverything && !o.ChunkedMemo:
		return "naive-packrat" + suffix
	default:
		s := "packrat"
		if o.ChunkedMemo {
			s += "+chunks"
		}
		if o.Dispatch {
			s += "+dispatch"
		}
		if o.ScanFusion {
			s += "+scan"
		}
		if o.PGO != nil {
			s += "+pgo"
		}
		if o.MemoEverything {
			s += "+memoall"
		}
		return s + suffix
	}
}

// Program is a compiled grammar ready for execution. It is read-only
// after Compile, so one Program may serve any number of goroutines
// concurrently (each parse works on its own Parser session).
type Program struct {
	opts  Options
	prods []prodInfo
	index map[string]int
	root  int
	// memoCols is the number of memo columns (memoized productions).
	memoCols int
	// code is the closure-threaded lowering of prods, non-nil iff the
	// program was compiled with Options.Compiled (compiled.go). Hookless
	// parses run it; hooked parses interpret prods.
	code *compiledProgram
	// pool recycles Parser sessions across Parse calls; it is the only
	// mutable (and internally synchronized) part of a compiled program.
	pool sync.Pool
	// gstats points at the per-grammar counter set this program's parses
	// feed in the metrics registry (metrics.go). Compile resolves a
	// default from the root production's module qualifier; SetLabel
	// re-points it. Atomic so SetLabel is safe against in-flight parses.
	gstats atomic.Pointer[grammarStats]
	// sampleEvery/sampleTick drive the always-on sampled profiler
	// (sample.go): every sampleEvery-th pooled checkout (counted by
	// sampleTick) borrows a profiler from profPool. sampleEvery == 0
	// (the default) disables sampling at the cost of one atomic load
	// per acquire.
	sampleEvery atomic.Int64
	sampleTick  atomic.Int64
	profPool    sync.Pool
}

type valueKind uint8

const (
	valNormal valueKind = iota
	valText             // production produces the matched text as a token
	valVoid             // production produces nil
)

type prodInfo struct {
	name     string
	display  string // short name for failure reporting
	attrs    peg.Attr
	kind     valueKind
	body     node
	memoCol  int // -1 when transient (not memoized)
	nullable bool
	// dispatch data (valid when firstOK)
	firstOK bool
	first   analysis.ByteSet
}

// Options returns the configuration the program was compiled with.
func (p *Program) Options() Options { return p.opts }

// SetLabel sets the grammar label this program's parses are counted
// under in the metrics registry's per-grammar counters (and in the
// Prometheus exporter's `grammar` label). Programs compiled for the
// same label share one counter set. Compile defaults the label to the
// root production's module qualifier; higher layers that know the
// user-facing grammar name (the facade's top module) override it.
func (p *Program) SetLabel(label string) {
	p.gstats.Store(grammarStatsFor(label))
}

// Label returns the program's current grammar label.
func (p *Program) Label() string {
	if g := p.gstats.Load(); g != nil {
		return g.label
	}
	return ""
}

// defaultGrammarLabel derives a label from the fully qualified root
// production name: its module qualifier ("calc.core.Expr" → "calc.core"),
// or the whole name when unqualified.
func defaultGrammarLabel(root string) string {
	if i := strings.LastIndexByte(root, '.'); i >= 0 {
		return root[:i]
	}
	return root
}

// MemoColumns returns the number of memoized productions.
func (p *Program) MemoColumns() int { return p.memoCols }

// NumProductions returns the number of productions compiled.
func (p *Program) NumProductions() int { return len(p.prods) }

// Compile compiles a composed, transformed grammar. The grammar must pass
// analysis.CheckTransformed (no left recursion, no nullable repetition).
func Compile(g *peg.Grammar, opts Options) (*Program, error) {
	a := analysis.Analyze(g)
	if err := a.CheckTransformed(); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	if opts.MemoEverything {
		opts.Memoize = true
	}
	p := &Program{opts: opts, index: make(map[string]int, len(g.Order))}
	for i, name := range g.Order {
		p.index[name] = i
	}
	root, ok := p.index[g.Root]
	if !ok {
		return nil, fmt.Errorf("vm: root production %q not found", g.Root)
	}
	p.root = root
	p.SetLabel(defaultGrammarLabel(g.Root))

	// Profile-guided inlining: decide the inline set up front, before memo
	// columns are assigned, so inlined productions drop their columns and
	// the chunk directory shrinks. Call sites beyond the transitive-inline
	// depth bound still emit nCall, which then behaves as a transient call.
	inline := map[string]bool{}
	if pgo := opts.PGO; pgo != nil {
		hot := pgo.HotCalls
		if hot <= 0 {
			hot = pgoDefaultHotCalls
		}
		maxCost := pgo.MaxCost
		if maxCost <= 0 {
			maxCost = pgoDefaultMaxCost
		}
		// Recursive productions are eligible too: the transitive-inline
		// depth cap bounds the expansion, and call sites at the frontier
		// fall back to plain (transient) calls. That matters in practice —
		// expression precedence towers are recursive through the
		// parenthesized-primary cycle, yet their memo columns almost never
		// hit, making them the most profitable productions to inline.
		for _, name := range g.Order {
			if name == g.Root || a.Cost[name] > maxCost {
				continue
			}
			if pgo.Calls != nil && pgo.Calls[name] < hot {
				continue
			}
			inline[name] = true
		}
	}

	// Memo columns are assigned hottest-first (by static reference count)
	// so that frequently probed productions share the first chunks of
	// every position's chunk directory — the layout half of the chunk
	// optimization.
	// The compiled engine replaces profile-guided inlining with a static
	// memo policy: only productions an ordered-choice retry can actually
	// re-enter at the same position (plus the root, whose entry memo is
	// what lets an unchanged incremental reparse return instantly) keep
	// a column. Everything else becomes a transient closure call — the
	// closure lowering shares one body closure per production, so this
	// is inlining without code growth or a depth cap.
	var keep map[string]bool
	if opts.Compiled && opts.Memoize && !opts.MemoEverything {
		keep = a.BacktrackPrefixes()
	}
	memoized := make([]string, 0, len(g.Order))
	for _, name := range g.Order {
		pr := g.Prods[name]
		// Inlined productions drop their memo column — except recursive
		// ones, whose call sites at the transitive-inline frontier fall
		// back to nCall. A transient frontier would re-derive the whole
		// cycle on every backtrack (exponential on nested input, the
		// classic unmemoized-PEG blowup); a memoized frontier caps each
		// position's work once, so inlining stays a constant-factor win.
		if inline[name] && !a.Recursive[name] {
			continue
		}
		if !opts.Memoize || (!opts.MemoEverything && pr.Attrs.Has(peg.AttrTransient)) {
			continue
		}
		if keep != nil && name != g.Root && !keep[name] && !pr.Attrs.Has(peg.AttrMemo) {
			continue
		}
		memoized = append(memoized, name)
	}
	sort.SliceStable(memoized, func(i, j int) bool {
		return a.RefCount[memoized[i]] > a.RefCount[memoized[j]]
	})
	memoCol := make(map[string]int, len(memoized))
	for i, name := range memoized {
		memoCol[name] = i
	}
	p.memoCols = len(memoized)

	c := &compiler{prog: p, analysis: a, inline: inline}
	p.prods = make([]prodInfo, len(g.Order))
	for i, name := range g.Order {
		pr := g.Prods[name]
		info := &p.prods[i]
		info.name = name
		info.display = displayNameOf(name)
		info.attrs = pr.Attrs
		info.nullable = a.Nullable[name]
		// Fast-fail on the first byte for every non-nullable production:
		// the first set is an over-approximation of what a non-empty
		// match can start with even when imprecise (predicates constrain,
		// never extend, it), so a byte outside the set is a definitive
		// failure, not merely a skip.
		info.firstOK = !a.Nullable[name]
		if f := a.First[name]; f != nil {
			info.first = *f
		}
		switch {
		case pr.Attrs.Has(peg.AttrText):
			info.kind = valText
		case pr.Attrs.Has(peg.AttrVoid):
			info.kind = valVoid
		default:
			info.kind = valNormal
		}
		voidBody := info.kind != valNormal
		info.body = c.compile(pr.Choice, voidBody)

		if col, ok := memoCol[name]; ok {
			info.memoCol = col
		} else {
			info.memoCol = -1
		}
	}
	if opts.Compiled {
		p.code = compileClosures(p)
	}
	return p, nil
}

// ----------------------------------------------------------------- nodes

// node is a compiled parsing expression. Implementations live in this file
// and are interpreted by the engine in interp.go.
type node interface{ isNode() }

type nEmpty struct{}

type nLit struct {
	text    string
	display string // precomputed %q form for failure reporting
}

type nClass struct {
	// set is the class as a 256-bit bitmap: matching is one table probe
	// (two shifts and a mask) regardless of how many ranges the source
	// class had, and negated classes cost the same as positive ones.
	set  analysis.ByteSet
	void bool // no token value needed
}

// nScanClass is a fused (class)* / (class)+ repetition in void context: it
// consumes the whole run of matching bytes in one interpreter frame
// instead of one frame per byte. When the class rejects exactly one byte
// (the [^"]* shape), stopOK routes the scan through strings.IndexByte.
type nScanClass struct {
	set    analysis.ByteSet
	min    int  // minimum run length (0 for *, 1 for +)
	stop   byte // when stopOK: the single byte the class rejects
	stopOK bool
}

// nScanLit is a fused (literal)* / (literal)+ repetition in void context.
type nScanLit struct {
	text    string
	display string
	min     int
}

// choiceTable is an nChoice's first-set pruning table: masks[b] has bit i
// set when alternative i is worth trying with b as the next input byte —
// b is in the alternative's first-set over-approximation, or the
// alternative is nullable (the nullable-prefix fallback: it may match
// without consuming, so no byte may prune it). eof is the mask at end of
// input, where only nullable alternatives can still match. Pruning with
// an over-approximate first set is sound even when the set is imprecise
// (predicates constrain, never extend, what a match may start with), and
// it preserves failure positions: a pruned alternative could not have
// consumed its first byte, so every failure it would have recorded sits
// at the choice's own position.
type choiceTable struct {
	masks [256]uint64
	eof   uint64
	all   uint64 // every alternative's bit, for skip accounting
}

type nAny struct{ void bool }

type nCall struct{ prod int }

type itemRole uint8

const (
	roleNormal itemRole = iota
	roleHead            // splice protocol: contribute non-nil value
	roleTail            // splice protocol: splice the callee's list
	roleEmpty           // splice protocol: contributes nothing
)

type nItem struct {
	n     node
	bound bool
	role  itemRole
}

type nSeq struct {
	items []nItem
	// ctor builds a node value; empty ctor is pass-through.
	ctor string
	// hasBind: children are the bound item values (nil included); else all
	// non-nil values.
	hasBind bool
	// splice: the sequence uses the repetition-expansion splice protocol
	// and produces a flat ast.List.
	splice bool
	void   bool
}

type nChoice struct {
	alts []nAlt
	// tbl, when non-nil, prunes alternatives by next byte (see
	// choiceTable); the per-alternative dispatchOK path is the fallback
	// for choices too wide for a mask word.
	tbl *choiceTable
}

type nAlt struct {
	n node
	// dispatch data: when ok, the alternative is skippable if the next
	// byte is not in first (and the alternative cannot match empty).
	dispatchOK bool
	first      analysis.ByteSet
}

type nRepeat struct {
	min  int
	body node
	void bool // iterations yield no values
}

type nOpt struct {
	body node
	void bool
}

type nAnd struct{ body node }

type nNot struct{ body node }

type nCapture struct{ body node }

type nLeftRec struct {
	seed     node
	suffixes []nSeq
	void     bool
}

// nInline is a production body inlined at a call site by profile-guided
// inlining. It replicates parseProd's semantics minus the memo table and
// the event hooks: the same dispatch fast-fail, the same failure record
// naming the production, and the same value specialization (token for
// text productions, nil for void, span fix-up for node values). kind is
// the production's value rule as seen from this call site — a value the
// site discards compiles to valVoid regardless of the production's own
// kind.
type nInline struct {
	body    node
	display string
	kind    valueKind
	// dispatch data, mirroring prodInfo (valid when firstOK).
	firstOK bool
	first   analysis.ByteSet
}

func (nEmpty) isNode()      {}
func (nLit) isNode()        {}
func (*nClass) isNode()     {}
func (*nScanClass) isNode() {}
func (*nScanLit) isNode()   {}
func (nAny) isNode()        {}
func (nCall) isNode()       {}
func (*nSeq) isNode()       {}
func (*nChoice) isNode()    {}
func (*nRepeat) isNode()    {}
func (*nOpt) isNode()       {}
func (*nAnd) isNode()       {}
func (*nNot) isNode()       {}
func (*nCapture) isNode()   {}
func (*nLeftRec) isNode()   {}
func (*nInline) isNode()    {}

// ------------------------------------------------------------- compiler

type compiler struct {
	prog     *Program
	analysis *analysis.Analysis
	// inline is the PGO inline set; inlineDepth tracks transitive
	// inlining so code growth stays bounded (maxInlineDepth).
	inline      map[string]bool
	inlineDepth int
}

// compile translates e into executable form; void indicates that the value
// of e will be discarded, enabling value-free specialization.
func (c *compiler) compile(e peg.Expr, void bool) node {
	switch e := e.(type) {
	case nil, *peg.Empty:
		return nEmpty{}
	case *peg.Literal:
		return nLit{text: e.Text, display: fmt.Sprintf("%q", e.Text)}
	case *peg.CharClass:
		return &nClass{set: classSet(e), void: void}
	case *peg.Any:
		return nAny{void: void}
	case *peg.NonTerm:
		if c.inline[e.Name] && c.inlineDepth < maxInlineDepth {
			c.inlineDepth++
			n := c.inlineCall(e.Name, void)
			c.inlineDepth--
			return n
		}
		return nCall{prod: c.prog.index[e.Name]}
	case *peg.Capture:
		if void {
			// The token would be discarded: compile the body void and skip
			// the capture wrapper entirely.
			return c.compile(e.Expr, true)
		}
		return &nCapture{body: c.compile(e.Expr, true)}
	case *peg.And:
		return &nAnd{body: c.compile(e.Expr, true)}
	case *peg.Not:
		return &nNot{body: c.compile(e.Expr, true)}
	case *peg.Optional:
		bodyVoid := void || !c.analysis.ExprValued(e.Expr)
		return &nOpt{body: c.compile(e.Expr, bodyVoid), void: bodyVoid}
	case *peg.Repeat:
		bodyVoid := void || !c.analysis.ExprValued(e.Expr)
		if c.prog.opts.ScanFusion && bodyVoid {
			switch b := e.Expr.(type) {
			case *peg.CharClass:
				n := &nScanClass{set: classSet(b), min: e.Min}
				if n.set.Len() == 255 {
					for i := 0; i < 256; i++ {
						if !n.set.Has(byte(i)) {
							n.stop, n.stopOK = byte(i), true
							break
						}
					}
				}
				return n
			case *peg.Literal:
				if len(b.Text) > 0 {
					return &nScanLit{text: b.Text, display: fmt.Sprintf("%q", b.Text), min: e.Min}
				}
			}
		}
		return &nRepeat{min: e.Min, body: c.compile(e.Expr, bodyVoid), void: bodyVoid}
	case *peg.Seq:
		return collapseSeq(c.compileSeq(e, void))
	case *peg.Choice:
		if len(e.Alts) == 1 {
			return collapseSeq(c.compileSeq(e.Alts[0], void))
		}
		n := &nChoice{alts: make([]nAlt, len(e.Alts))}
		for i, alt := range e.Alts {
			na := nAlt{n: collapseSeq(c.compileSeq(alt, void))}
			if c.prog.opts.Dispatch {
				set, precise := c.firstOf(alt)
				if precise && !c.nullable(alt) {
					na.dispatchOK = true
					na.first = *set
				}
			}
			n.alts[i] = na
		}
		if c.prog.opts.Dispatch && len(e.Alts) <= 64 {
			n.tbl = c.choiceTableOf(e)
		}
		return n
	case *peg.LeftRec:
		n := &nLeftRec{seed: c.compile(e.Seed, void), void: void}
		for _, s := range e.Suffixes {
			n.suffixes = append(n.suffixes, *c.compileSeq(s, void))
		}
		return n
	default:
		panic(fmt.Sprintf("vm: unknown expression %T", e))
	}
}

func (c *compiler) compileSeq(s *peg.Seq, void bool) *nSeq {
	n := &nSeq{ctor: s.Ctor, hasBind: s.HasBindings(), void: void}
	if void {
		n.ctor = ""
		n.hasBind = false
	} else if s.IsSpliceSeq() {
		n.splice = true
		n.ctor = ""
		n.hasBind = false
	}
	for _, it := range s.Items {
		role := roleNormal
		switch it.Bind {
		case peg.BindHead:
			role = roleHead
		case peg.BindTail:
			role = roleTail
		case peg.BindEmpty:
			role = roleEmpty
		}
		itemVoid := void
		if !void && !n.splice && n.hasBind && it.Bind == "" {
			// Only bound items contribute children under a binding ctor; an
			// unbound sibling's value is discarded... unless the sequence is
			// pass-through (no ctor), where every value counts.
			itemVoid = n.ctor != ""
		}
		n.items = append(n.items, nItem{
			n:     c.compile(it.Expr, itemVoid || isPredicate(it.Expr)),
			bound: it.Bind != "",
			role:  role,
		})
	}
	return n
}

// collapseSeq unwraps a pass-through sequence of exactly one plain item:
// its value is the item's value verbatim (seqValue's single-element
// case), so the wrapping frame is pure interpretation overhead — one
// eval dispatch per attempt, paid on every choice alternative. Sequences
// with a constructor, bindings, or the splice protocol keep their frame.
func collapseSeq(n *nSeq) node {
	if len(n.items) == 1 && n.ctor == "" && !n.hasBind && !n.splice && n.items[0].role == roleNormal {
		return n.items[0].n
	}
	return n
}

// classSet builds the bitmap of a character class, byte-for-byte
// equivalent to CharClass.Matches.
func classSet(e *peg.CharClass) analysis.ByteSet {
	var s analysis.ByteSet
	for _, r := range e.Ranges {
		s.AddRange(r.Lo, r.Hi)
	}
	if e.Negated {
		s.Invert()
	}
	return s
}

// choiceTableOf builds the byte→alternatives pruning table of a choice,
// or returns nil when no byte would prune anything (the table would be
// pure overhead). Unlike the per-alternative dispatchOK path this uses
// the first set whether or not it is precise: over-approximate sets are
// always sound to prune on (see the choiceTable comment); precision only
// matters for the whole-production fast-fail, which turns a byte miss
// into a definitive failure rather than a skip.
func (c *compiler) choiceTableOf(e *peg.Choice) *choiceTable {
	tbl := &choiceTable{}
	for i, alt := range e.Alts {
		bit := uint64(1) << i
		tbl.all |= bit
		if c.nullable(alt) {
			tbl.eof |= bit
			for b := 0; b < 256; b++ {
				tbl.masks[b] |= bit
			}
			continue
		}
		set, _ := c.firstOf(alt)
		for b := 0; b < 256; b++ {
			if set.Has(byte(b)) {
				tbl.masks[b] |= bit
			}
		}
	}
	if tbl.eof != tbl.all {
		return tbl
	}
	for b := 0; b < 256; b++ {
		if tbl.masks[b] != tbl.all {
			return tbl
		}
	}
	return nil
}

// inlineCall compiles production name's body inline at a call site (PGO
// inlining). void marks a site that discards the value, which degrades
// the site's value rule to valVoid and compiles the body value-free.
func (c *compiler) inlineCall(name string, void bool) node {
	pr := c.analysis.Grammar.Prods[name]
	kind := valNormal
	switch {
	case pr.Attrs.Has(peg.AttrText):
		kind = valText
	case pr.Attrs.Has(peg.AttrVoid):
		kind = valVoid
	}
	bodyVoid := kind != valNormal || void
	siteKind := kind
	if void {
		siteKind = valVoid
	}
	n := &nInline{
		body:    c.compile(pr.Choice, bodyVoid),
		display: displayNameOf(name),
		kind:    siteKind,
	}
	n.firstOK = !c.analysis.Nullable[name] // see prodInfo.firstOK
	if f := c.analysis.First[name]; f != nil {
		n.first = *f
	}
	return n
}

func isPredicate(e peg.Expr) bool {
	switch e.(type) {
	case *peg.And, *peg.Not:
		return true
	}
	return false
}

func (c *compiler) firstOf(e peg.Expr) (*analysis.ByteSet, bool) {
	return analysis.FirstOfExpr(c.analysis, e)
}

func (c *compiler) nullable(e peg.Expr) bool {
	return analysis.NullableExpr(c.analysis, e)
}

// displayNameOf strips the module qualifier for error messages.
func displayNameOf(full string) string {
	if i := strings.LastIndexByte(full, '.'); i >= 0 {
		return full[i+1:]
	}
	return full
}
