package vm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"modpeg/internal/ast"
	"modpeg/internal/text"
)

// pathologicalGrammar triggers exponential backtracking without
// memoization: every level of nesting retries the expensive prefix.
const pathologicalGrammar = `
option root = S;
public S = E !. ;
E = "(" E ")" "x" / "(" E ")" "y" / "a" ;
`

// pathological returns the matching worst-case input of the given depth
// (every level takes the second alternative).
func pathological(depth int) string {
	return strings.Repeat("(", depth) + "a" + strings.Repeat(")y", depth)
}

// nested returns a depth-deep parenthesized expression for calcGrammar.
func nested(depth int) string {
	return strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
}

func limitErr(t *testing.T, err error, kind LimitKind) *LimitError {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *LimitError", err, err)
	}
	if le.Kind != kind {
		t.Fatalf("limit kind = %v, want %v (%v)", le.Kind, kind, le)
	}
	return le
}

func TestLimitInputBytes(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	src := text.NewSource("in", strings.Repeat("1+", 600)+"1")
	_, _, err := prog.ParseContext(context.Background(), src, Limits{MaxInputBytes: 1000})
	le := limitErr(t, err, LimitInput)
	if le.Limit != 1000 || le.Actual != int64(src.Len()) {
		t.Fatalf("limit error = %+v", le)
	}
	// Under the limit, the parse must behave exactly like Parse.
	v, _, err := prog.ParseContext(context.Background(), src, Limits{MaxInputBytes: src.Len()})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := prog.Parse(src)
	if err != nil || !valuesEqual(v, want) {
		t.Fatalf("governed parse drifted: %v", err)
	}
}

func TestLimitCallDepth(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	deep := text.NewSource("in", nested(10000))
	_, _, err := prog.ParseContext(context.Background(), deep, Limits{MaxCallDepth: 500})
	le := limitErr(t, err, LimitDepth)
	if le.Limit != 500 {
		t.Fatalf("limit error = %+v", le)
	}
	// A shallow input parses fine under the same budget.
	if _, _, err := prog.ParseContext(context.Background(),
		text.NewSource("in", nested(20)), Limits{MaxCallDepth: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLimitDeadlineAdversarial(t *testing.T) {
	prog := build(t, pathologicalGrammar, Backtracking())
	// Depth 40 is ~2^40 production calls unbounded — days of work. The
	// 1 ms deadline must stop it within the acceptance bound of 50 ms.
	src := text.NewSource("in", pathological(40))
	start := time.Now()
	_, _, err := prog.ParseContext(context.Background(), src, Limits{MaxParseDuration: time.Millisecond})
	elapsed := time.Since(start)
	le := limitErr(t, err, LimitTime)
	if !errors.Is(le, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want DeadlineExceeded", le.Cause)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("1ms deadline took %v to fire, want <50ms", elapsed)
	}
}

func TestLimitContextDeadline(t *testing.T) {
	prog := build(t, pathologicalGrammar, Backtracking())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	src := text.NewSource("in", pathological(40))
	start := time.Now()
	_, _, err := prog.ParseContext(ctx, src, Limits{})
	if time.Since(start) > 50*time.Millisecond {
		t.Fatalf("context deadline took %v to fire", time.Since(start))
	}
	// A context deadline surfaces through ctx.Err() as either kind
	// depending on which poll sees it first; both unwrap to the context.
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v does not unwrap to DeadlineExceeded", err)
	}
}

func TestLimitCancel(t *testing.T) {
	prog := build(t, pathologicalGrammar, Backtracking())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := prog.ParseContext(ctx, text.NewSource("in", pathological(40)), Limits{})
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("cancellation took %v to be honored", time.Since(start))
	}
	le := limitErr(t, err, LimitCanceled)
	if !errors.Is(le, context.Canceled) {
		t.Fatalf("cause = %v", le.Cause)
	}
}

func TestLimitPreCanceledContext(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := prog.ParseContext(ctx, text.NewSource("in", "1+2"), Limits{})
	limitErr(t, err, LimitCanceled)
}

// TestMemoShedding is the graceful-degradation contract: when the memo
// budget is hit the parse completes with the same value as an unlimited
// run, the modeled footprint stays within the budget, and the shed is
// recorded in stats, metrics, and the hook seam.
func TestMemoShedding(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	input := strings.Repeat("(1+2)*3-4+", 400) + "6"
	src := text.NewSource("in", input)
	want, full, err := prog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if full.MemoBytes == 0 {
		t.Fatal("workload too small: no memo footprint to bound")
	}
	budget := full.MemoBytes / 4
	ResetMetrics()
	shedHook := &recordingShedHook{}
	ps := prog.NewSession().ps
	ps.begin(src)
	ps.hook = shedHook // installed post-begin so the shed event is observable
	v, err := ps.runContext(context.Background(), Limits{MaxMemoBytes: budget})
	stats := ps.stats
	if err != nil {
		t.Fatalf("degraded parse failed: %v", err)
	}
	if !valuesEqual(v, want) {
		t.Fatal("degraded parse changed the semantic value")
	}
	if stats.MemoSheds != 1 {
		t.Fatalf("stats.MemoSheds = %d, want 1", stats.MemoSheds)
	}
	if stats.MemoBytes > budget {
		t.Fatalf("memo footprint %d exceeds budget %d after shedding", stats.MemoBytes, budget)
	}
	if m := Metrics(); m.MemoSheds != 1 || m.LimitStops != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if shedHook.sheds != 1 || shedHook.arenaBytes <= 0 {
		t.Fatalf("shed hook saw %d sheds, %d arena bytes", shedHook.sheds, shedHook.arenaBytes)
	}
}

// recordingShedHook counts shed events through the optional seam.
type recordingShedHook struct {
	sheds      int
	arenaBytes int
}

func (h *recordingShedHook) OnEnter(prod, pos int)              {}
func (h *recordingShedHook) OnExit(prod, pos, end int, ok bool) {}
func (h *recordingShedHook) OnMemoHit(prod, pos, end int, ok bool) {
}
func (h *recordingShedHook) OnFail(prod, pos int) {}
func (h *recordingShedHook) OnMemoShed(pos, arenaBytes int) {
	h.sheds++
	h.arenaBytes = arenaBytes
}

func TestMemoSheddingMapMemo(t *testing.T) {
	prog := build(t, calcGrammar, NaivePackrat())
	input := strings.Repeat("(1+2)*3-4+", 400) + "6"
	src := text.NewSource("in", input)
	want, full, err := prog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.MemoBytes / 4
	v, stats, err := prog.ParseContext(context.Background(), src, Limits{MaxMemoBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !valuesEqual(v, want) {
		t.Fatal("degraded map-memo parse changed the semantic value")
	}
	if stats.MemoSheds != 1 || stats.MemoBytes > budget {
		t.Fatalf("stats = %+v, budget %d", stats, budget)
	}
}

func TestStrictMemoLimit(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	input := strings.Repeat("(1+2)*3-4+", 400) + "6"
	src := text.NewSource("in", input)
	_, full, err := prog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ResetMetrics()
	_, _, err = prog.ParseContext(context.Background(), src,
		Limits{MaxMemoBytes: full.MemoBytes / 4, Strict: true})
	le := limitErr(t, err, LimitMemo)
	if le.Actual <= le.Limit {
		t.Fatalf("limit error = %+v", le)
	}
	if m := Metrics(); m.LimitStops != 1 || m.MemoSheds != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// panicHook panics from inside the parse, standing in for an engine bug.
type panicHook struct{ after int }

func (h *panicHook) OnEnter(prod, pos int) {
	h.after--
	if h.after <= 0 {
		panic("hook exploded")
	}
}
func (h *panicHook) OnExit(prod, pos, end int, ok bool)    {}
func (h *panicHook) OnMemoHit(prod, pos, end int, ok bool) {}
func (h *panicHook) OnFail(prod, pos int)                  {}

func TestPanicContainment(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ResetMetrics()
	_, _, err := prog.ParseWithHook(text.NewSource("in", "1+2*3"), &panicHook{after: 5})
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T), want *EngineError", err, err)
	}
	if ee.Panic != "hook exploded" || ee.Stack == "" {
		t.Fatalf("engine error = %+v", ee)
	}
	if !strings.Contains(ee.Error(), "hook exploded") {
		t.Fatalf("message = %q", ee.Error())
	}
	if m := Metrics(); m.PanicsContained != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// The pooled parser must be reusable after containment.
	if _, _, err := prog.Parse(text.NewSource("in", "1+2*3")); err != nil {
		t.Fatalf("parse after contained panic: %v", err)
	}
}

// TestLimitErrorsAfterReuse checks that a pooled parser that hit a
// limit is fully rewound: the next ungoverned parse sees no budgets.
func TestLimitsDoNotLeakAcrossParses(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	s := prog.NewSession()
	deep := text.NewSource("in", nested(3000))
	if _, _, err := s.ParseContext(context.Background(), deep, Limits{MaxCallDepth: 100}); err == nil {
		t.Fatal("expected depth limit")
	}
	// Same session, no limits: must parse the same input fine.
	if _, _, err := s.Parse(deep); err != nil {
		t.Fatalf("session still governed after limit stop: %v", err)
	}
	// And a fresh governed parse with generous budgets succeeds.
	if _, _, err := s.ParseContext(context.Background(), deep, Limits{MaxCallDepth: 100000}); err != nil {
		t.Fatalf("generous budgets failed: %v", err)
	}
}

func TestParseAllContextCancelDrains(t *testing.T) {
	prog := build(t, pathologicalGrammar, Backtracking())
	// 16 inputs, each individually hours of work without a deadline.
	var srcs []*text.Source
	for i := 0; i < 16; i++ {
		srcs = append(srcs, text.NewSource("in", pathological(40)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := prog.ParseAllContext(ctx, srcs, 4, Limits{})
	elapsed := time.Since(start)
	if elapsed > 250*time.Millisecond {
		t.Fatalf("cancellation drained the pool in %v, want <250ms", elapsed)
	}
	if len(results) != len(srcs) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		le := limitErr(t, r.Err, LimitCanceled)
		if !errors.Is(le, context.Canceled) {
			t.Fatalf("result %d cause = %v", i, le.Cause)
		}
	}
}

// TestConcurrentCancellation hammers one shared canceled context from
// many goroutines — the -race companion of the drain test.
func TestConcurrentCancellation(t *testing.T) {
	prog := build(t, pathologicalGrammar, Backtracking())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			_, _, err := prog.ParseContext(ctx, text.NewSource("in", pathological(40)), Limits{})
			done <- err
		}()
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	deadline := time.After(2 * time.Second)
	for g := 0; g < 8; g++ {
		select {
		case err := <-done:
			limitErr(t, err, LimitCanceled)
		case <-deadline:
			t.Fatal("goroutines still parsing 2s after cancellation")
		}
	}
}

// TestParseAllContextPerInputLimits applies one budget to every input
// of a batch: oversized inputs fail in place, the rest parse.
func TestParseAllContextPerInputLimits(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	srcs := []*text.Source{
		text.NewSource("small", "1+2"),
		text.NewSource("big", strings.Repeat("1+", 200)+"1"),
		text.NewSource("small2", "3*4"),
	}
	results := prog.ParseAllContext(context.Background(), srcs, 2, Limits{MaxInputBytes: 64})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("small inputs failed: %v / %v", results[0].Err, results[2].Err)
	}
	limitErr(t, results[1].Err, LimitInput)
}

// TestGovernedZeroAllocs pins the acceptance bound: the nil-Limits,
// background-context governed path must keep the zero-allocation
// steady state of the session layer.
func TestGovernedZeroAllocs(t *testing.T) {
	input := strings.Repeat("(1+2)*3-4+", 200) + "6"
	src := text.NewSource("in", input)
	prog := build(t, voidCalcGrammar, Optimized())
	s := prog.NewSession()
	ctx := context.Background()
	if _, _, err := s.ParseContext(ctx, src, Limits{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := s.ParseContext(ctx, src, Limits{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("nil-Limits ParseContext allocates %.1f/op, want 0", allocs)
	}
	// Budget-only limits (no deadline) stay allocation-free too: arming
	// writes scalars and never reads the clock.
	lim := Limits{MaxInputBytes: 1 << 20, MaxMemoBytes: 1 << 30, MaxCallDepth: 1 << 20}
	if _, _, err := s.ParseContext(ctx, src, lim); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, _, err := s.ParseContext(ctx, src, lim); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("budget-governed ParseContext allocates %.1f/op, want 0", allocs)
	}
}

// TestLimitErrorStrings pins the error taxonomy's rendering.
func TestLimitErrorStrings(t *testing.T) {
	cases := []struct {
		err  *LimitError
		want string
	}{
		{&LimitError{Kind: LimitInput, Limit: 10, Actual: 20}, "exceeds limit of 10"},
		{&LimitError{Kind: LimitMemo, Limit: 10, Actual: 20, Pos: 3}, "strict limit"},
		{&LimitError{Kind: LimitDepth, Limit: 10, Actual: 11, Pos: 3}, "call depth"},
		{&LimitError{Kind: LimitTime, Limit: int64(time.Millisecond), Pos: 3}, "deadline"},
		{&LimitError{Kind: LimitCanceled, Cause: context.Canceled}, "canceled"},
	}
	for _, c := range cases {
		if !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%v: %q does not mention %q", c.err.Kind, c.err.Error(), c.want)
		}
	}
	for _, k := range []LimitKind{LimitInput, LimitMemo, LimitDepth, LimitTime, LimitCanceled} {
		if strings.Contains(k.String(), "LimitKind") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestPrefixGoverned covers the runPrefix containment path.
func TestPrefixGoverned(t *testing.T) {
	prog := build(t, calcGrammar, Optimized())
	ps := prog.NewSession().ps
	ps.begin(text.NewSource("in", nested(10000)))
	if le := ps.arm(context.Background(), Limits{MaxCallDepth: 100}); le != nil {
		t.Fatal(le)
	}
	_, _, err := ps.runPrefix()
	limitErr(t, err, LimitDepth)
}

// valuesEqual compares semantic values structurally.
func valuesEqual(a, b ast.Value) bool { return ast.Equal(a, b) }

// TestTighten covers the budget-layering algebra the serve/registry
// stack relies on: server defaults ⊇ tenant budgets ⊇ request
// overrides, where 0 means unlimited and a tightening can only shrink.
func TestTighten(t *testing.T) {
	base := Limits{
		MaxInputBytes:    1000,
		MaxMemoBytes:     0, // unlimited
		MaxCallDepth:     50,
		MaxParseDuration: time.Second,
	}
	got := base.Tighten(Limits{
		MaxInputBytes:    500,             // shrinks
		MaxMemoBytes:     4096,            // bounds the unlimited
		MaxCallDepth:     100,             // looser: ignored
		MaxParseDuration: 2 * time.Second, // looser: ignored
	})
	want := Limits{
		MaxInputBytes:    500,
		MaxMemoBytes:     4096,
		MaxCallDepth:     50,
		MaxParseDuration: time.Second,
	}
	if got != want {
		t.Errorf("Tighten = %+v, want %+v", got, want)
	}

	// Zero on the override side keeps the base bound (0 never loosens).
	if got := base.Tighten(Limits{}); got != base {
		t.Errorf("Tighten(zero) = %+v, want base %+v", got, base)
	}
	// Strict is sticky in either direction.
	if !base.Tighten(Limits{Strict: true}).Strict {
		t.Error("Tighten must propagate Strict from the override")
	}
	strictBase := base
	strictBase.Strict = true
	if !strictBase.Tighten(Limits{}).Strict {
		t.Error("Tighten must keep the base's Strict")
	}
	// Tighten is idempotent and order-insensitive for its min semantics.
	a := Limits{MaxInputBytes: 10, MaxParseDuration: time.Minute}
	b := Limits{MaxInputBytes: 20, MaxParseDuration: time.Millisecond}
	if x, y := a.Tighten(b), b.Tighten(a); x != y {
		t.Errorf("Tighten not commutative: %+v vs %+v", x, y)
	}
}
