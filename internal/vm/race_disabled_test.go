//go:build !race

package vm

// raceEnabled reports whether the race detector is compiled in; some
// allocation assertions are invalid under it (sync.Pool caching is
// deliberately randomized in race mode).
const raceEnabled = false
