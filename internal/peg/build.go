package peg

// Builder helpers: terse constructors used by tests, by the workload
// generators, and by transformation passes that synthesize expressions.
// They leave spans invalid (text.NoSpan zero values are fine for synthetic
// nodes).

// Lit builds a literal expression.
func Lit(s string) *Literal { return &Literal{Text: s} }

// Ref builds a nonterminal reference.
func Ref(name string) *NonTerm { return &NonTerm{Name: name} }

// Class builds a character class from lo/hi byte pairs:
// Class('a', 'z', '0', '9') is [a-z0-9].
func Class(pairs ...byte) *CharClass {
	if len(pairs)%2 != 0 {
		panic("peg.Class: odd number of byte bounds")
	}
	c := &CharClass{}
	for i := 0; i < len(pairs); i += 2 {
		c.Ranges = append(c.Ranges, CharRange{Lo: pairs[i], Hi: pairs[i+1]})
	}
	return c
}

// NotClass builds a negated character class.
func NotClass(pairs ...byte) *CharClass {
	c := Class(pairs...)
	c.Negated = true
	return c
}

// Dot builds the any-byte expression.
func Dot() *Any { return &Any{} }

// Eps builds the empty expression.
func Eps() *Empty { return &Empty{} }

// SeqOf builds an anonymous, unlabeled sequence of unbound items.
func SeqOf(exprs ...Expr) *Seq {
	s := &Seq{}
	for _, e := range exprs {
		s.Items = append(s.Items, Item{Expr: e})
	}
	return s
}

// Ctor builds a sequence with a node constructor.
func Ctor(name string, exprs ...Expr) *Seq {
	s := SeqOf(exprs...)
	s.Ctor = name
	return s
}

// Bind attaches a binding name to a single-item wrapper so that it can be
// spliced into sequences: use as SeqOf is not possible for bound items, so
// build sequences with Items directly or use BindItem.
func BindItem(name string, e Expr) Item { return Item{Bind: name, Expr: e} }

// Alt builds a choice from sequences; non-Seq expressions are wrapped in
// single-item sequences.
func Alt(alts ...Expr) *Choice {
	c := &Choice{}
	for _, a := range alts {
		if s, ok := a.(*Seq); ok {
			c.Alts = append(c.Alts, s)
		} else {
			c.Alts = append(c.Alts, SeqOf(a))
		}
	}
	return c
}

// Star builds zero-or-more repetition.
func Star(e Expr) *Repeat { return &Repeat{Min: 0, Expr: e} }

// Plus builds one-or-more repetition.
func Plus(e Expr) *Repeat { return &Repeat{Min: 1, Expr: e} }

// Opt builds an optional expression.
func Opt(e Expr) *Optional { return &Optional{Expr: e} }

// Ahead builds a positive lookahead.
func Ahead(e Expr) *And { return &And{Expr: e} }

// Never builds a negative lookahead.
func Never(e Expr) *Not { return &Not{Expr: e} }

// Text builds a capture.
func Text(e Expr) *Capture { return &Capture{Expr: e} }

// Define builds a plain production.
func DefineProd(name string, attrs Attr, body *Choice) *Production {
	return &Production{Name: name, Attrs: attrs, Kind: Define, Choice: body}
}
