package peg

import (
	"fmt"
	"strings"
)

// ModuleStats summarizes one module for the grammar-modularity table
// (paper's Table 1 analogue).
type ModuleStats struct {
	Module       string
	Params       int
	Imports      int
	Modifies     int
	Productions  int // plain definitions
	Overrides    int // := modifications
	Additions    int // += modifications
	Removals     int // -= modifications
	Alternatives int // total alternatives across bodies
	Expressions  int // total expression nodes
}

// StatsOf computes the statistics of a module.
func StatsOf(m *Module) ModuleStats {
	s := ModuleStats{Module: m.Name, Params: len(m.Params)}
	for _, d := range m.Deps {
		if d.Modify {
			s.Modifies++
		} else {
			s.Imports++
		}
	}
	for _, p := range m.Prods {
		switch p.Kind {
		case Define:
			s.Productions++
		case Override:
			s.Overrides++
		case AddAlts:
			s.Additions++
		case RemoveAlts:
			s.Removals++
		}
		if p.Choice != nil {
			s.Alternatives += len(p.Choice.Alts)
			Walk(p.Choice, func(Expr) { s.Expressions++ })
		}
	}
	return s
}

// GrammarStats summarizes a composed grammar.
type GrammarStats struct {
	Root         string
	Modules      int
	Productions  int
	Alternatives int
	Expressions  int
	Transient    int
	Void         int
	Text         int
	Public       int
}

// StatsOfGrammar computes the statistics of a composed grammar.
func StatsOfGrammar(g *Grammar) GrammarStats {
	s := GrammarStats{Root: g.Root, Modules: len(g.ModuleNames)}
	for _, name := range g.Order {
		p := g.Prods[name]
		s.Productions++
		if p.Attrs.Has(AttrTransient) {
			s.Transient++
		}
		if p.Attrs.Has(AttrVoid) {
			s.Void++
		}
		if p.Attrs.Has(AttrText) {
			s.Text++
		}
		if p.Attrs.Has(AttrPublic) {
			s.Public++
		}
		if p.Choice != nil {
			s.Alternatives += len(p.Choice.Alts)
			Walk(p.Choice, func(Expr) { s.Expressions++ })
		}
	}
	return s
}

// Row renders the stats as an aligned table row; Header gives the matching
// column header. These feed the Table 1 harness output.
func (s ModuleStats) Row() string {
	return fmt.Sprintf("%-28s %6d %7d %8d %6d %6d %6d %6d %6d",
		s.Module, s.Imports, s.Modifies, s.Productions, s.Overrides,
		s.Additions, s.Removals, s.Alternatives, s.Expressions)
}

// ModuleStatsHeader is the column header matching ModuleStats.Row.
func ModuleStatsHeader() string {
	return fmt.Sprintf("%-28s %6s %7s %8s %6s %6s %6s %6s %6s",
		"module", "import", "modify", "prods", "ovr", "add", "rm", "alts", "exprs")
}

// String renders grammar stats as a one-line summary.
func (s GrammarStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root=%s modules=%d productions=%d alternatives=%d exprs=%d",
		s.Root, s.Modules, s.Productions, s.Alternatives, s.Expressions)
	fmt.Fprintf(&b, " transient=%d void=%d text=%d public=%d", s.Transient, s.Void, s.Text, s.Public)
	return b.String()
}
