package peg

// EqualExpr reports structural equality of two expressions, ignoring source
// spans. It is the basis of the print/parse round-trip property tests and
// of transformation idempotence checks.
func EqualExpr(a, b Expr) bool {
	switch a := a.(type) {
	case nil:
		return b == nil
	case *Empty:
		_, ok := b.(*Empty)
		return ok
	case *Literal:
		bb, ok := b.(*Literal)
		return ok && a.Text == bb.Text
	case *CharClass:
		bb, ok := b.(*CharClass)
		if !ok || a.Negated != bb.Negated || len(a.Ranges) != len(bb.Ranges) {
			return false
		}
		for i := range a.Ranges {
			if a.Ranges[i] != bb.Ranges[i] {
				return false
			}
		}
		return true
	case *Any:
		_, ok := b.(*Any)
		return ok
	case *NonTerm:
		bb, ok := b.(*NonTerm)
		return ok && a.Name == bb.Name
	case *Capture:
		bb, ok := b.(*Capture)
		return ok && EqualExpr(a.Expr, bb.Expr)
	case *And:
		bb, ok := b.(*And)
		return ok && EqualExpr(a.Expr, bb.Expr)
	case *Not:
		bb, ok := b.(*Not)
		return ok && EqualExpr(a.Expr, bb.Expr)
	case *Optional:
		bb, ok := b.(*Optional)
		return ok && EqualExpr(a.Expr, bb.Expr)
	case *Repeat:
		bb, ok := b.(*Repeat)
		return ok && a.Min == bb.Min && EqualExpr(a.Expr, bb.Expr)
	case *Seq:
		bb, ok := b.(*Seq)
		if !ok || a.Label != bb.Label || a.Ctor != bb.Ctor || len(a.Items) != len(bb.Items) {
			return false
		}
		for i := range a.Items {
			if a.Items[i].Bind != bb.Items[i].Bind || !EqualExpr(a.Items[i].Expr, bb.Items[i].Expr) {
				return false
			}
		}
		return true
	case *Choice:
		bb, ok := b.(*Choice)
		if !ok || len(a.Alts) != len(bb.Alts) {
			return false
		}
		for i := range a.Alts {
			if !EqualExpr(a.Alts[i], bb.Alts[i]) {
				return false
			}
		}
		return true
	case *LeftRec:
		bb, ok := b.(*LeftRec)
		if !ok || a.Name != bb.Name || !EqualExpr(a.Seed, bb.Seed) || len(a.Suffixes) != len(bb.Suffixes) {
			return false
		}
		for i := range a.Suffixes {
			if !EqualExpr(a.Suffixes[i], bb.Suffixes[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// EqualProduction reports structural equality of two productions, ignoring
// spans.
func EqualProduction(a, b *Production) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Attrs != b.Attrs || a.Kind != b.Kind ||
		a.Anchor != b.Anchor || a.AnchorLabel != b.AnchorLabel ||
		len(a.Removed) != len(b.Removed) {
		return false
	}
	for i := range a.Removed {
		if a.Removed[i] != b.Removed[i] {
			return false
		}
	}
	if (a.Choice == nil) != (b.Choice == nil) {
		return false
	}
	if a.Choice == nil {
		return true
	}
	return EqualExpr(a.Choice, b.Choice)
}

// EqualModule reports structural equality of two modules, ignoring spans
// and sources.
func EqualModule(a, b *Module) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || len(a.Params) != len(b.Params) ||
		len(a.Deps) != len(b.Deps) || len(a.Prods) != len(b.Prods) ||
		len(a.Options) != len(b.Options) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	for i := range a.Deps {
		da, db := a.Deps[i], b.Deps[i]
		if da.Module != db.Module || da.Modify != db.Modify || len(da.Args) != len(db.Args) {
			return false
		}
		for j := range da.Args {
			if da.Args[j] != db.Args[j] {
				return false
			}
		}
	}
	for k, v := range a.Options {
		if b.Options[k] != v {
			return false
		}
	}
	for i := range a.Prods {
		if !EqualProduction(a.Prods[i], b.Prods[i]) {
			return false
		}
	}
	return true
}

// EqualGrammar reports structural equality of two composed grammars,
// ignoring spans and module provenance but respecting production order.
func EqualGrammar(a, b *Grammar) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Root != b.Root || len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
		if !EqualProduction(a.Prods[a.Order[i]], b.Prods[b.Order[i]]) {
			return false
		}
	}
	return true
}
