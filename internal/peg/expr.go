package peg

import (
	"fmt"
	"sort"

	"modpeg/internal/text"
)

// Expr is a parsing expression. The concrete types are Literal, CharClass,
// Any, NonTerm, Seq, Choice, Repeat, Optional, And, Not, Capture, and Empty.
type Expr interface {
	Span() text.Span
	isExpr()
}

// Empty matches the empty string and produces no value. It appears as the
// body of epsilon alternatives and as the result of some rewrites.
type Empty struct {
	Sp text.Span
}

func (e *Empty) Span() text.Span { return e.Sp }
func (*Empty) isExpr()           {}

// Literal matches its text exactly. Literals are void: they produce no
// semantic value (wrap in a Capture to keep the text).
type Literal struct {
	Text string
	Sp   text.Span
}

func (e *Literal) Span() text.Span { return e.Sp }
func (*Literal) isExpr()           {}

// CharRange is an inclusive byte range within a character class.
type CharRange struct {
	Lo, Hi byte
}

// CharClass matches one byte inside (or, when negated, outside) its ranges
// and produces a one-byte token.
type CharClass struct {
	Ranges  []CharRange
	Negated bool
	Sp      text.Span
}

func (e *CharClass) Span() text.Span { return e.Sp }
func (*CharClass) isExpr()           {}

// Matches reports whether the class accepts byte b.
func (e *CharClass) Matches(b byte) bool {
	for _, r := range e.Ranges {
		if b >= r.Lo && b <= r.Hi {
			return !e.Negated
		}
	}
	return e.Negated
}

// Normalize sorts and merges overlapping or adjacent ranges in place.
func (e *CharClass) Normalize() {
	if len(e.Ranges) <= 1 {
		return
	}
	sort.Slice(e.Ranges, func(i, j int) bool { return e.Ranges[i].Lo < e.Ranges[j].Lo })
	out := e.Ranges[:1]
	for _, r := range e.Ranges[1:] {
		last := &out[len(out)-1]
		if int(r.Lo) <= int(last.Hi)+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	e.Ranges = out
}

// Any matches any single byte and produces a one-byte token. It fails only
// at end of input.
type Any struct {
	Sp text.Span
}

func (e *Any) Span() text.Span { return e.Sp }
func (*Any) isExpr()           {}

// NonTerm references another production by name. Before composition the
// name may be module-qualified ("calc.Spacing") or a parameter name; after
// composition names are flat and always resolve within the grammar.
type NonTerm struct {
	Name string
	Sp   text.Span
}

func (e *NonTerm) Span() text.Span { return e.Sp }
func (*NonTerm) isExpr()           {}

// Item is one element of a sequence, optionally bound to a name. Bindings
// select and order the children of constructed nodes.
type Item struct {
	// Bind is the binding name, or "" when unbound.
	Bind string
	Expr Expr
}

// Magic binding names used by synthetic sequences from the
// repetition-expansion transform. A sequence containing any of them
// produces a flat ast.List: BindHead items contribute their non-nil
// value, BindTail items splice the callee's list, BindEmpty marks the
// empty base case. The grammar-language parser can never produce these
// names (bindings are identifiers), so they are reserved for transforms.
const (
	BindHead  = "@head"
	BindTail  = "@tail"
	BindEmpty = "@empty"
)

// IsSpliceSeq reports whether the sequence uses the splice protocol.
func (e *Seq) IsSpliceSeq() bool {
	for _, it := range e.Items {
		switch it.Bind {
		case BindHead, BindTail, BindEmpty:
			return true
		}
	}
	return false
}

// Seq is a sequence of items with an optional alternative label (used as a
// modification anchor) and an optional node constructor.
type Seq struct {
	// Label names this alternative for += before/after anchoring and for
	// -= removal. Empty for anonymous alternatives.
	Label string
	Items []Item
	// Ctor, when non-empty, makes the sequence produce an
	// ast.Node{Name: Ctor}.
	Ctor string
	Sp   text.Span
}

func (e *Seq) Span() text.Span { return e.Sp }
func (*Seq) isExpr()           {}

// HasBindings reports whether any item carries a binding name.
func (e *Seq) HasBindings() bool {
	for _, it := range e.Items {
		if it.Bind != "" {
			return true
		}
	}
	return false
}

// Choice is an ordered choice between alternatives. Every alternative is a
// Seq so that labels and constructors have a uniform home.
type Choice struct {
	Alts []*Seq
	Sp   text.Span
}

func (e *Choice) Span() text.Span { return e.Sp }
func (*Choice) isExpr()           {}

// AltIndex returns the index of the alternative labeled label, or -1.
func (e *Choice) AltIndex(label string) int {
	for i, a := range e.Alts {
		if a.Label == label {
			return i
		}
	}
	return -1
}

// Repeat matches Expr Min-or-more times (Min is 0 for `*`, 1 for `+`) and
// produces a list of the non-nil iteration values.
type Repeat struct {
	Min  int
	Expr Expr
	Sp   text.Span
}

func (e *Repeat) Span() text.Span { return e.Sp }
func (*Repeat) isExpr()           {}

// Optional matches Expr zero or one time, producing its value or nil.
type Optional struct {
	Expr Expr
	Sp   text.Span
}

func (e *Optional) Span() text.Span { return e.Sp }
func (*Optional) isExpr()           {}

// And is the positive lookahead predicate &e: succeeds iff e matches,
// consumes nothing, produces no value.
type And struct {
	Expr Expr
	Sp   text.Span
}

func (e *And) Span() text.Span { return e.Sp }
func (*And) isExpr()           {}

// Not is the negative lookahead predicate !e: succeeds iff e fails,
// consumes nothing, produces no value.
type Not struct {
	Expr Expr
	Sp   text.Span
}

func (e *Not) Span() text.Span { return e.Sp }
func (*Not) isExpr()           {}

// Capture $(e) matches e and produces a single token covering the entire
// matched text, discarding e's internal values.
type Capture struct {
	Expr Expr
	Sp   text.Span
}

func (e *Capture) Span() text.Span { return e.Sp }
func (*Capture) isExpr()           {}

// LeftRec is the result of transforming a directly left-recursive
// production into iteration (the Rats! left-recursion transformation). It
// never appears in parsed modules; the optimizer synthesizes it.
//
// Operationally: match Seed to obtain an initial value, then repeatedly try
// the Suffixes in order, folding each match into the value left-
// associatively. A suffix is the tail of an original alternative
// "P = P rest..." (its leading self-reference removed). The value of one
// suffix application is:
//
//   - Node{Ctor, acc, vals...} when the suffix has a constructor,
//   - acc itself when the suffix produced no values,
//   - List{acc, vals...} otherwise,
//
// where acc is the value accumulated so far and vals are the suffix's item
// values under the usual sequence rules.
type LeftRec struct {
	// Name records the production this node rewrites, for diagnostics.
	Name     string
	Seed     *Choice
	Suffixes []*Seq
	Sp       text.Span
}

func (e *LeftRec) Span() text.Span { return e.Sp }
func (*LeftRec) isExpr()           {}

// Walk applies fn to e and then, recursively, to each child expression in
// syntactic order. Walking a nil expression is a no-op.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Seq:
		for _, it := range e.Items {
			Walk(it.Expr, fn)
		}
	case *Choice:
		for _, a := range e.Alts {
			Walk(a, fn)
		}
	case *Repeat:
		Walk(e.Expr, fn)
	case *Optional:
		Walk(e.Expr, fn)
	case *And:
		Walk(e.Expr, fn)
	case *Not:
		Walk(e.Expr, fn)
	case *Capture:
		Walk(e.Expr, fn)
	case *LeftRec:
		Walk(e.Seed, fn)
		for _, s := range e.Suffixes {
			Walk(s, fn)
		}
	}
}

// Rewrite rebuilds the expression bottom-up, replacing each node with
// fn(node) after its children have been rewritten. fn must return an
// expression of a type valid in the node's context (alternatives of a
// Choice remain *Seq; fn is not applied to the Seqs of a Choice directly —
// rewrite their items instead — but IS applied to standalone Seqs).
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *Seq:
		for i := range e.Items {
			e.Items[i].Expr = Rewrite(e.Items[i].Expr, fn)
		}
	case *Choice:
		for i, a := range e.Alts {
			na := Rewrite(a, fn)
			seq, ok := na.(*Seq)
			if !ok {
				// Wrap non-Seq rewrites to preserve the Choice invariant.
				seq = &Seq{Items: []Item{{Expr: na}}, Sp: na.Span()}
			}
			e.Alts[i] = seq
		}
		return fn(e)
	case *Repeat:
		e.Expr = Rewrite(e.Expr, fn)
	case *Optional:
		e.Expr = Rewrite(e.Expr, fn)
	case *And:
		e.Expr = Rewrite(e.Expr, fn)
	case *Not:
		e.Expr = Rewrite(e.Expr, fn)
	case *Capture:
		e.Expr = Rewrite(e.Expr, fn)
	case *LeftRec:
		e.Seed = Rewrite(e.Seed, fn).(*Choice)
		for i, s := range e.Suffixes {
			ns := Rewrite(s, fn)
			seq, ok := ns.(*Seq)
			if !ok {
				seq = &Seq{Items: []Item{{Expr: ns}}, Sp: ns.Span()}
			}
			e.Suffixes[i] = seq
		}
	}
	return fn(e)
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Empty:
		c := *e
		return &c
	case *Literal:
		c := *e
		return &c
	case *CharClass:
		c := *e
		c.Ranges = append([]CharRange(nil), e.Ranges...)
		return &c
	case *Any:
		c := *e
		return &c
	case *NonTerm:
		c := *e
		return &c
	case *Seq:
		c := *e
		c.Items = make([]Item, len(e.Items))
		for i, it := range e.Items {
			c.Items[i] = Item{Bind: it.Bind, Expr: CloneExpr(it.Expr)}
		}
		return &c
	case *Choice:
		c := *e
		c.Alts = make([]*Seq, len(e.Alts))
		for i, a := range e.Alts {
			c.Alts[i] = CloneExpr(a).(*Seq)
		}
		return &c
	case *Repeat:
		c := *e
		c.Expr = CloneExpr(e.Expr)
		return &c
	case *Optional:
		c := *e
		c.Expr = CloneExpr(e.Expr)
		return &c
	case *And:
		c := *e
		c.Expr = CloneExpr(e.Expr)
		return &c
	case *Not:
		c := *e
		c.Expr = CloneExpr(e.Expr)
		return &c
	case *Capture:
		c := *e
		c.Expr = CloneExpr(e.Expr)
		return &c
	case *LeftRec:
		c := *e
		c.Seed = CloneExpr(e.Seed).(*Choice)
		c.Suffixes = make([]*Seq, len(e.Suffixes))
		for i, s := range e.Suffixes {
			c.Suffixes[i] = CloneExpr(s).(*Seq)
		}
		return &c
	default:
		panic(fmt.Sprintf("peg: unknown expression type %T", e))
	}
}

// RenameNonTerms returns the expression with every nonterminal name mapped
// through subst (names missing from subst are kept). The input is mutated.
func RenameNonTerms(e Expr, subst map[string]string) Expr {
	return Rewrite(e, func(e Expr) Expr {
		if nt, ok := e.(*NonTerm); ok {
			if to, ok := subst[nt.Name]; ok {
				nt.Name = to
			}
		}
		return e
	})
}
