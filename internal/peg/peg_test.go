package peg

import (
	"strings"
	"testing"
)

func TestAttrBits(t *testing.T) {
	a := AttrPublic | AttrTransient
	if !a.Has(AttrPublic) || !a.Has(AttrTransient) || a.Has(AttrVoid) {
		t.Fatal("Has is wrong")
	}
	if !a.Has(AttrPublic | AttrTransient) {
		t.Fatal("Has must require all bits")
	}
	if got := a.String(); got != "public transient" {
		t.Fatalf("String = %q", got)
	}
	if Attr(0).String() != "" {
		t.Fatal("empty attr set must render empty")
	}
	for _, name := range []string{"public", "transient", "memo", "void", "text", "inline", "noinline", "synthetic"} {
		bit, ok := ParseAttr(name)
		if !ok || bit == 0 {
			t.Errorf("ParseAttr(%q) failed", name)
		}
		if bit.String() != name {
			t.Errorf("round-trip %q -> %q", name, bit.String())
		}
	}
	if _, ok := ParseAttr("bogus"); ok {
		t.Fatal("ParseAttr must reject unknown names")
	}
}

func TestProdKindAnchorStrings(t *testing.T) {
	if Define.String() != "=" || Override.String() != ":=" || AddAlts.String() != "+=" || RemoveAlts.String() != "-=" {
		t.Fatal("ProdKind strings")
	}
	if !strings.Contains(ProdKind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
	if AtEnd.String() != "at end" || Before.String() != "before" || After.String() != "after" {
		t.Fatal("anchor strings")
	}
	if !strings.Contains(Anchor(7).String(), "7") {
		t.Fatal("unknown anchor string")
	}
}

func TestCharClassMatches(t *testing.T) {
	c := Class('a', 'z', '0', '9')
	for _, b := range []byte{'a', 'm', 'z', '0', '5', '9'} {
		if !c.Matches(b) {
			t.Errorf("class must match %q", b)
		}
	}
	for _, b := range []byte{'A', ' ', '~', 0} {
		if c.Matches(b) {
			t.Errorf("class must not match %q", b)
		}
	}
	n := NotClass('\n', '\n')
	if n.Matches('\n') || !n.Matches('x') {
		t.Fatal("negated class is wrong")
	}
}

func TestCharClassNormalize(t *testing.T) {
	c := Class('m', 'p', 'a', 'c', 'b', 'f', 'q', 'q')
	c.Normalize()
	// [a-c]+[b-f] merge to [a-f]; [m-p]+[q] adjacent-merge to [m-q].
	want := []CharRange{{'a', 'f'}, {'m', 'q'}}
	if len(c.Ranges) != len(want) {
		t.Fatalf("ranges = %v", c.Ranges)
	}
	for i := range want {
		if c.Ranges[i] != want[i] {
			t.Fatalf("ranges = %v, want %v", c.Ranges, want)
		}
	}
	single := Class('x', 'x')
	single.Normalize()
	if len(single.Ranges) != 1 {
		t.Fatal("normalize must keep single range")
	}
}

func TestChoiceAltIndex(t *testing.T) {
	c := Alt(
		&Seq{Label: "first", Items: []Item{{Expr: Lit("a")}}},
		SeqOf(Lit("b")),
		&Seq{Label: "third", Items: []Item{{Expr: Lit("c")}}},
	)
	if c.AltIndex("first") != 0 || c.AltIndex("third") != 2 || c.AltIndex("none") != -1 {
		t.Fatal("AltIndex is wrong")
	}
}

func TestSeqHasBindings(t *testing.T) {
	s := SeqOf(Lit("a"))
	if s.HasBindings() {
		t.Fatal("unbound seq")
	}
	s.Items = append(s.Items, BindItem("x", Ref("N")))
	if !s.HasBindings() {
		t.Fatal("bound seq")
	}
}

func sampleExpr() *Choice {
	return Alt(
		&Seq{
			Label: "add",
			Items: []Item{
				BindItem("l", Ref("Mul")),
				{Expr: Lit("+")},
				BindItem("r", Ref("Add")),
			},
			Ctor: "Add",
		},
		SeqOf(Ref("Mul")),
		SeqOf(Star(Class('a', 'z')), Opt(Lit("!")), Plus(Dot())),
		SeqOf(Ahead(Lit("x")), Never(Lit("y")), Text(Plus(Class('0', '9')))),
		SeqOf(Eps()),
	)
}

func TestCloneAndEqual(t *testing.T) {
	e := sampleExpr()
	c := CloneExpr(e).(*Choice)
	if !EqualExpr(e, c) {
		t.Fatal("clone must be structurally equal")
	}
	// Mutating the clone must not affect the original.
	c.Alts[0].Items[1].Expr = Lit("-")
	if EqualExpr(e, c) {
		t.Fatal("mutated clone must differ")
	}
	if e.Alts[0].Items[1].Expr.(*Literal).Text != "+" {
		t.Fatal("original was mutated through the clone")
	}
}

func TestEqualExprMismatches(t *testing.T) {
	pairs := []struct{ a, b Expr }{
		{Lit("a"), Lit("b")},
		{Lit("a"), Ref("a")},
		{Ref("A"), Ref("B")},
		{Class('a', 'b'), Class('a', 'c')},
		{Class('a', 'b'), NotClass('a', 'b')},
		{Class('a', 'b'), Class('a', 'b', 'x', 'y')},
		{Star(Lit("a")), Plus(Lit("a"))},
		{Star(Lit("a")), Star(Lit("b"))},
		{Opt(Lit("a")), Star(Lit("a"))},
		{Ahead(Lit("a")), Never(Lit("a"))},
		{Text(Lit("a")), Lit("a")},
		{SeqOf(Lit("a")), SeqOf(Lit("a"), Lit("b"))},
		{Ctor("X", Lit("a")), Ctor("Y", Lit("a"))},
		{&Seq{Label: "l", Items: []Item{{Expr: Lit("a")}}}, SeqOf(Lit("a"))},
		{Alt(Lit("a")), Alt(Lit("a"), Lit("b"))},
		{Alt(Lit("a")), Lit("a")},
		{Eps(), Lit("")},
		{nil, Eps()},
	}
	for i, p := range pairs {
		if EqualExpr(p.a, p.b) {
			t.Errorf("case %d: %v and %v must differ", i, FormatExpr(p.a), FormatExpr(p.b))
		}
	}
	if !EqualExpr(nil, nil) {
		t.Fatal("nil == nil")
	}
	// Bindings matter.
	a := &Seq{Items: []Item{BindItem("x", Ref("N"))}}
	b := &Seq{Items: []Item{{Expr: Ref("N")}}}
	if EqualExpr(a, b) {
		t.Fatal("bindings must participate in equality")
	}
}

func TestWalkOrderAndCount(t *testing.T) {
	e := sampleExpr()
	var kinds []string
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *Choice:
			kinds = append(kinds, "choice")
		case *Seq:
			kinds = append(kinds, "seq")
		case *NonTerm:
			kinds = append(kinds, "ref")
		case *Literal:
			kinds = append(kinds, "lit")
		default:
			kinds = append(kinds, "other")
		}
	})
	if kinds[0] != "choice" || kinds[1] != "seq" {
		t.Fatalf("walk order = %v", kinds[:4])
	}
	n := 0
	Walk(e, func(Expr) { n++ })
	if n < 15 {
		t.Fatalf("walk visited only %d nodes", n)
	}
	Walk(nil, func(Expr) { t.Fatal("must not visit nil") })
}

func TestRewriteReplacesLeaves(t *testing.T) {
	e := sampleExpr()
	got := Rewrite(CloneExpr(e), func(x Expr) Expr {
		if nt, ok := x.(*NonTerm); ok && nt.Name == "Mul" {
			return &NonTerm{Name: "Term"}
		}
		return x
	})
	found := 0
	Walk(got, func(x Expr) {
		if nt, ok := x.(*NonTerm); ok {
			if nt.Name == "Mul" {
				t.Fatal("Mul must be gone")
			}
			if nt.Name == "Term" {
				found++
			}
		}
	})
	if found != 2 {
		t.Fatalf("Term refs = %d, want 2", found)
	}
	if Rewrite(nil, func(x Expr) Expr { return x }) != nil {
		t.Fatal("rewrite nil")
	}
}

func TestRewriteWrapsNonSeqAlternatives(t *testing.T) {
	// A rewrite that turns a whole Seq into a bare literal must still leave
	// a Choice whose alternatives are Seqs.
	c := Alt(SeqOf(Lit("a")))
	got := Rewrite(c, func(x Expr) Expr {
		if _, ok := x.(*Seq); ok {
			return Lit("z")
		}
		return x
	}).(*Choice)
	if len(got.Alts) != 1 {
		t.Fatal("alt count")
	}
	if _, ok := got.Alts[0].Items[0].Expr.(*Literal); !ok {
		t.Fatalf("wrapped alternative = %T", got.Alts[0].Items[0].Expr)
	}
}

func TestRenameNonTerms(t *testing.T) {
	e := Alt(SeqOf(Ref("A"), Ref("B"), Ref("A")))
	RenameNonTerms(e, map[string]string{"A": "X"})
	names := map[string]int{}
	Walk(e, func(x Expr) {
		if nt, ok := x.(*NonTerm); ok {
			names[nt.Name]++
		}
	})
	if names["X"] != 2 || names["B"] != 1 || names["A"] != 0 {
		t.Fatalf("names = %v", names)
	}
}

func TestGrammarAddRemoveClone(t *testing.T) {
	g := &Grammar{Root: "S"}
	g.Add(DefineProd("S", AttrPublic, Alt(SeqOf(Ref("A")))))
	g.Add(DefineProd("A", 0, Alt(SeqOf(Lit("a")))))
	if len(g.Order) != 2 || g.Order[0] != "S" {
		t.Fatalf("order = %v", g.Order)
	}
	// Replacing keeps order stable.
	g.Add(DefineProd("A", 0, Alt(SeqOf(Lit("b")))))
	if len(g.Order) != 2 {
		t.Fatalf("replace duplicated order: %v", g.Order)
	}
	if g.Production("A").Choice.Alts[0].Items[0].Expr.(*Literal).Text != "b" {
		t.Fatal("replace did not take")
	}

	c := g.Clone()
	c.Production("A").Choice.Alts[0].Items[0].Expr.(*Literal).Text = "z"
	if g.Production("A").Choice.Alts[0].Items[0].Expr.(*Literal).Text != "b" {
		t.Fatal("clone aliases original")
	}
	if !EqualGrammar(g, g.Clone()) {
		t.Fatal("clone must equal original")
	}

	g.Remove("A")
	if g.Production("A") != nil || len(g.Order) != 1 {
		t.Fatal("remove failed")
	}
	g.Remove("A") // no-op
	if len(g.Order) != 1 {
		t.Fatal("double remove changed order")
	}
}

func TestModuleProductionLookup(t *testing.T) {
	m := &Module{
		Name:  "m",
		Prods: []*Production{DefineProd("P", 0, Alt(SeqOf(Lit("p"))))},
	}
	if m.Production("P") == nil || m.Production("Q") != nil {
		t.Fatal("module production lookup")
	}
}

func TestEqualProductionAndModule(t *testing.T) {
	p1 := DefineProd("P", AttrPublic, Alt(SeqOf(Lit("p"))))
	p2 := DefineProd("P", AttrPublic, Alt(SeqOf(Lit("p"))))
	if !EqualProduction(p1, p2) {
		t.Fatal("equal productions")
	}
	p2.Attrs = 0
	if EqualProduction(p1, p2) {
		t.Fatal("attrs must matter")
	}
	rm1 := &Production{Name: "R", Kind: RemoveAlts, Removed: []string{"a"}}
	rm2 := &Production{Name: "R", Kind: RemoveAlts, Removed: []string{"b"}}
	if EqualProduction(rm1, rm2) {
		t.Fatal("removed labels must matter")
	}
	rm3 := &Production{Name: "R", Kind: RemoveAlts, Removed: []string{"a"}}
	if !EqualProduction(rm1, rm3) {
		t.Fatal("identical removals must be equal")
	}
	if EqualProduction(p1, nil) || !EqualProduction(nil, nil) {
		t.Fatal("nil handling")
	}
	if EqualProduction(rm1, &Production{Name: "R", Kind: RemoveAlts, Removed: []string{"a"}, Choice: Alt(SeqOf(Lit("x")))}) {
		t.Fatal("choice presence must matter")
	}

	m1 := &Module{Name: "m", Params: []string{"P"}, Deps: []Dependency{{Module: "d", Args: []string{"x"}}},
		Options: map[string]string{"root": "S"}, Prods: []*Production{p1}}
	m2 := &Module{Name: "m", Params: []string{"P"}, Deps: []Dependency{{Module: "d", Args: []string{"x"}}},
		Options: map[string]string{"root": "S"}, Prods: []*Production{DefineProd("P", AttrPublic, Alt(SeqOf(Lit("p"))))}}
	if !EqualModule(m1, m2) {
		t.Fatal("equal modules")
	}
	m2.Deps[0].Modify = true
	if EqualModule(m1, m2) {
		t.Fatal("dep kind must matter")
	}
	m2.Deps[0].Modify = false
	m2.Deps[0].Args[0] = "y"
	if EqualModule(m1, m2) {
		t.Fatal("dep args must matter")
	}
	m2.Deps[0].Args[0] = "x"
	m2.Options["root"] = "T"
	if EqualModule(m1, m2) {
		t.Fatal("options must matter")
	}
	if EqualModule(m1, nil) || !EqualModule(nil, nil) {
		t.Fatal("nil module handling")
	}
}

func TestEqualGrammarMismatch(t *testing.T) {
	g1 := &Grammar{Root: "S"}
	g1.Add(DefineProd("S", 0, Alt(SeqOf(Lit("a")))))
	g2 := g1.Clone()
	if !EqualGrammar(g1, g2) {
		t.Fatal("clones equal")
	}
	g2.Root = "T"
	if EqualGrammar(g1, g2) {
		t.Fatal("root must matter")
	}
	g2.Root = "S"
	g2.Add(DefineProd("B", 0, Alt(SeqOf(Lit("b")))))
	if EqualGrammar(g1, g2) {
		t.Fatal("production count must matter")
	}
	if EqualGrammar(g1, nil) || !EqualGrammar(nil, nil) {
		t.Fatal("nil grammar handling")
	}
}

func TestStatsOfModule(t *testing.T) {
	m := &Module{
		Name:   "stats",
		Params: []string{"L"},
		Deps: []Dependency{
			{Module: "base"},
			{Module: "other", Modify: true},
		},
		Prods: []*Production{
			DefineProd("A", 0, Alt(SeqOf(Lit("a")), SeqOf(Lit("b")))),
			{Name: "B", Kind: Override, Choice: Alt(SeqOf(Lit("c")))},
			{Name: "C", Kind: AddAlts, Choice: Alt(SeqOf(Lit("d")))},
			{Name: "D", Kind: RemoveAlts, Removed: []string{"x"}},
		},
	}
	s := StatsOf(m)
	if s.Module != "stats" || s.Params != 1 || s.Imports != 1 || s.Modifies != 1 {
		t.Fatalf("header stats wrong: %+v", s)
	}
	if s.Productions != 1 || s.Overrides != 1 || s.Additions != 1 || s.Removals != 1 {
		t.Fatalf("kind stats wrong: %+v", s)
	}
	if s.Alternatives != 4 {
		t.Fatalf("alternatives = %d", s.Alternatives)
	}
	if s.Expressions == 0 {
		t.Fatal("expressions must be counted")
	}
	if !strings.Contains(s.Row(), "stats") || !strings.Contains(ModuleStatsHeader(), "module") {
		t.Fatal("row rendering")
	}
}

func TestStatsOfGrammar(t *testing.T) {
	g := &Grammar{Root: "S", ModuleNames: []string{"a", "b"}}
	g.Add(DefineProd("S", AttrPublic, Alt(SeqOf(Ref("T")))))
	g.Add(DefineProd("T", AttrTransient|AttrText, Alt(SeqOf(Lit("t")))))
	g.Add(DefineProd("V", AttrVoid, Alt(SeqOf(Lit("v")))))
	s := StatsOfGrammar(g)
	if s.Productions != 3 || s.Modules != 2 || s.Alternatives != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Transient != 1 || s.Void != 1 || s.Text != 1 || s.Public != 1 {
		t.Fatalf("attr stats = %+v", s)
	}
	str := s.String()
	for _, frag := range []string{"root=S", "productions=3", "transient=1"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String missing %q: %s", frag, str)
		}
	}
}

func TestBuilders(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Class with odd bounds must panic")
		}
	}()
	if FormatExpr(SeqOf()) != "()" {
		t.Fatal("empty seq formatting")
	}
	Class('a')
}

func sampleLeftRec() *LeftRec {
	return &LeftRec{
		Name: "Sum",
		Seed: Alt(SeqOf(Ref("Num"))),
		Suffixes: []*Seq{
			{Items: []Item{{Expr: Lit("+")}, BindItem("r", Ref("Num"))}, Ctor: "Add"},
			{Items: []Item{{Expr: Lit("-")}, BindItem("r", Ref("Num"))}, Ctor: "Sub"},
		},
	}
}

func TestLeftRecCloneEqualWalk(t *testing.T) {
	lr := sampleLeftRec()
	c := CloneExpr(lr).(*LeftRec)
	if !EqualExpr(lr, c) {
		t.Fatal("clone must equal original")
	}
	c.Suffixes[0].Ctor = "Changed"
	if EqualExpr(lr, c) {
		t.Fatal("mutated clone must differ")
	}
	if lr.Suffixes[0].Ctor != "Add" {
		t.Fatal("clone aliases original")
	}
	// Name participates in equality.
	c2 := CloneExpr(lr).(*LeftRec)
	c2.Name = "Other"
	if EqualExpr(lr, c2) {
		t.Fatal("name must matter")
	}
	// Suffix count participates.
	c3 := CloneExpr(lr).(*LeftRec)
	c3.Suffixes = c3.Suffixes[:1]
	if EqualExpr(lr, c3) {
		t.Fatal("suffix count must matter")
	}
	if EqualExpr(lr, Lit("x")) {
		t.Fatal("kind must matter")
	}

	refs := 0
	Walk(lr, func(e Expr) {
		if _, ok := e.(*NonTerm); ok {
			refs++
		}
	})
	if refs != 3 {
		t.Fatalf("walk found %d refs, want 3", refs)
	}
}

func TestLeftRecRewriteAndPrint(t *testing.T) {
	lr := CloneExpr(sampleLeftRec()).(*LeftRec)
	Rewrite(lr, func(e Expr) Expr {
		if nt, ok := e.(*NonTerm); ok && nt.Name == "Num" {
			nt.Name = "Digit"
		}
		return e
	})
	out := FormatExpr(lr)
	if !strings.Contains(out, "leftrec(") || !strings.Contains(out, "Digit") ||
		!strings.Contains(out, "@Add") || !strings.Contains(out, " ; ") {
		t.Fatalf("printed = %s", out)
	}
	if strings.Contains(out, "Num") {
		t.Fatal("rewrite missed a reference")
	}
}

func TestSpliceSeqDetection(t *testing.T) {
	plain := SeqOf(Lit("a"))
	if plain.IsSpliceSeq() {
		t.Fatal("plain seq is not splice")
	}
	sp := &Seq{Items: []Item{
		{Bind: BindHead, Expr: Lit("a")},
		{Bind: BindTail, Expr: Ref("R")},
	}}
	if !sp.IsSpliceSeq() {
		t.Fatal("splice seq not detected")
	}
	em := &Seq{Items: []Item{{Bind: BindEmpty, Expr: Eps()}}}
	if !em.IsSpliceSeq() {
		t.Fatal("empty splice seq not detected")
	}
	bound := &Seq{Items: []Item{BindItem("x", Lit("a"))}}
	if bound.IsSpliceSeq() {
		t.Fatal("ordinary binding is not splice")
	}
}
