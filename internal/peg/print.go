package peg

import (
	"fmt"
	"strings"
)

// FormatExpr renders an expression in the grammar language's concrete
// syntax. The output re-parses to a structurally equal expression (see the
// round-trip property tests in internal/syntax).
func FormatExpr(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, precChoice)
	return b.String()
}

// Operator precedence levels for parenthesization while printing.
const (
	precChoice = iota
	precSeq
	precPrefix
	precSuffix
	precPrimary
)

func writeExpr(b *strings.Builder, e Expr, min int) {
	switch e := e.(type) {
	case nil:
		b.WriteString("()")
	case *Empty:
		b.WriteString("()")
	case *Literal:
		b.WriteString(quoteLiteral(e.Text))
	case *CharClass:
		writeCharClass(b, e)
	case *Any:
		b.WriteByte('.')
	case *NonTerm:
		b.WriteString(e.Name)
	case *Capture:
		b.WriteString("$(")
		writeExpr(b, e.Expr, precChoice)
		b.WriteByte(')')
	case *And:
		if min > precPrefix {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		b.WriteByte('&')
		writeExpr(b, e.Expr, precSuffix)
	case *Not:
		if min > precPrefix {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		b.WriteByte('!')
		writeExpr(b, e.Expr, precSuffix)
	case *Optional:
		writeExpr(b, e.Expr, precPrimary)
		b.WriteByte('?')
	case *Repeat:
		writeExpr(b, e.Expr, precPrimary)
		if e.Min == 0 {
			b.WriteByte('*')
		} else {
			b.WriteByte('+')
		}
	case *Seq:
		if min > precSeq {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		writeSeqBody(b, e)
	case *Choice:
		if min > precChoice {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		for i, a := range e.Alts {
			if i > 0 {
				b.WriteString(" / ")
			}
			writeSeqBody(b, a)
		}
	case *LeftRec:
		// Pseudo-syntax for synthetic left-recursion nodes; these never
		// round-trip through the parser.
		b.WriteString("leftrec(")
		writeExpr(b, e.Seed, precChoice)
		b.WriteString(" ; ")
		for i, s := range e.Suffixes {
			if i > 0 {
				b.WriteString(" / ")
			}
			writeSeqBody(b, s)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<?%T>", e)
	}
}

func writeSeqBody(b *strings.Builder, s *Seq) {
	if s.Label != "" {
		fmt.Fprintf(b, "<%s> ", s.Label)
	}
	if len(s.Items) == 0 {
		b.WriteString("()")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		if it.Bind != "" {
			b.WriteString(it.Bind)
			b.WriteByte(':')
			writeExpr(b, it.Expr, precSuffix)
		} else {
			writeExpr(b, it.Expr, precPrefix)
		}
	}
	if s.Ctor != "" {
		fmt.Fprintf(b, " @%s", s.Ctor)
	}
}

func writeCharClass(b *strings.Builder, e *CharClass) {
	b.WriteByte('[')
	if e.Negated {
		b.WriteByte('^')
	}
	for _, r := range e.Ranges {
		b.WriteString(classByte(r.Lo))
		if r.Hi != r.Lo {
			b.WriteByte('-')
			b.WriteString(classByte(r.Hi))
		}
	}
	b.WriteByte(']')
}

func classByte(c byte) string {
	switch c {
	case '\\':
		return `\\`
	case ']':
		return `\]`
	case '-':
		return `\-`
	case '^':
		return `\^`
	case '\n':
		return `\n`
	case '\r':
		return `\r`
	case '\t':
		return `\t`
	case '\'':
		return `\'`
	}
	if c < 0x20 || c >= 0x7f {
		return fmt.Sprintf(`\x%02x`, c)
	}
	return string(c)
}

func quoteLiteral(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if c < 0x20 || c >= 0x7f {
				fmt.Fprintf(&b, `\x%02x`, c)
			} else {
				b.WriteByte(c)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// FormatProduction renders a full production declaration.
func FormatProduction(p *Production) string {
	var b strings.Builder
	if p.Attrs != 0 {
		b.WriteString(p.Attrs.String())
		b.WriteByte(' ')
	}
	b.WriteString(p.Name)
	b.WriteByte(' ')
	b.WriteString(p.Kind.String())
	switch p.Kind {
	case RemoveAlts:
		b.WriteByte(' ')
		b.WriteString(strings.Join(p.Removed, ", "))
	default:
		b.WriteByte(' ')
		writeExpr(&b, p.Choice, precChoice)
		if p.Kind == AddAlts && p.Anchor != AtEnd {
			fmt.Fprintf(&b, " %s <%s>", map[Anchor]string{Before: "before", After: "after"}[p.Anchor], p.AnchorLabel)
		}
	}
	b.WriteString(" ;")
	return b.String()
}

// FormatModule renders a module back to grammar-language source.
func FormatModule(m *Module) string {
	var b strings.Builder
	b.WriteString("module ")
	b.WriteString(m.Name)
	if len(m.Params) > 0 {
		fmt.Fprintf(&b, "(%s)", strings.Join(m.Params, ", "))
	}
	b.WriteString(";\n")
	for _, d := range m.Deps {
		if d.Modify {
			b.WriteString("modify ")
		} else {
			b.WriteString("import ")
		}
		b.WriteString(d.Module)
		if len(d.Args) > 0 {
			fmt.Fprintf(&b, "(%s)", strings.Join(d.Args, ", "))
		}
		b.WriteString(";\n")
	}
	// Options print in sorted order for determinism.
	var keys []string
	for k := range m.Options {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "option %s = %s;\n", k, m.Options[k])
	}
	b.WriteByte('\n')
	for _, p := range m.Prods {
		b.WriteString(FormatProduction(p))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatGrammar renders a composed grammar as a single flat module.
func FormatGrammar(g *Grammar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// composed grammar, root %s\n", g.Root)
	if len(g.ModuleNames) > 0 {
		fmt.Fprintf(&b, "// modules: %s\n", strings.Join(g.ModuleNames, ", "))
	}
	for _, name := range g.Order {
		b.WriteString(FormatProduction(g.Prods[name]))
		b.WriteByte('\n')
	}
	return b.String()
}
