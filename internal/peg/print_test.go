package peg

import (
	"strings"
	"testing"
)

func TestFormatExprBasics(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lit("if"), `"if"`},
		{Lit("a\"b\\c"), `"a\"b\\c"`},
		{Lit("nl\n tab\t cr\r"), `"nl\n tab\t cr\r"`},
		{Lit("\x01\x7f"), `"\x01\x7f"`},
		{Ref("Expr"), "Expr"},
		{Dot(), "."},
		{Eps(), "()"},
		{Class('a', 'z', '0', '9'), "[a-z0-9]"},
		{NotClass('\n', '\n'), "[^\\n]"},
		{Class(']', ']', '-', '-', '^', '^', '\\', '\\'), `[\]\-\^\\]`},
		{Class('\t', '\t', '\r', '\r', '\'', '\''), `[\t\r\']`},
		{Class(0x00, 0x01), `[\x00-\x01]`},
		{Star(Ref("A")), "A*"},
		{Plus(Ref("A")), "A+"},
		{Opt(Ref("A")), "A?"},
		{Ahead(Ref("A")), "&A"},
		{Never(Lit("x")), `!"x"`},
		{Text(Plus(Class('0', '9'))), "$([0-9]+)"},
		{SeqOf(Lit("a"), Lit("b")), `"a" "b"`},
		{Alt(SeqOf(Lit("a")), SeqOf(Lit("b"))), `"a" / "b"`},
		{Star(Alt(SeqOf(Lit("a")), SeqOf(Lit("b")))), `("a" / "b")*`},
		{SeqOf(Alt(SeqOf(Lit("a")), SeqOf(Lit("b"))), Lit("c")), `("a" / "b") "c"`},
		{Ctor("Pair", Ref("A"), Ref("B")), "A B @Pair"},
		{Star(SeqOf(Lit("a"), Lit("b"))), `("a" "b")*`},
		{Never(SeqOf(Lit("a"), Lit("b"))), `!("a" "b")`},
	}
	for _, c := range cases {
		if got := FormatExpr(c.e); got != c.want {
			t.Errorf("FormatExpr = %q, want %q", got, c.want)
		}
	}
}

func TestFormatExprBindingsAndLabels(t *testing.T) {
	s := &Seq{
		Label: "add",
		Items: []Item{
			BindItem("l", Ref("Mul")),
			{Expr: Lit("+")},
			BindItem("r", Ref("Add")),
		},
		Ctor: "Add",
	}
	want := `<add> l:Mul "+" r:Add @Add`
	if got := FormatExpr(s); got != want {
		t.Fatalf("FormatExpr = %q, want %q", got, want)
	}
	// A bound suffix keeps tight binding: x:(A)* formats as x:A*.
	b := &Seq{Items: []Item{BindItem("x", Star(Ref("A")))}}
	if got := FormatExpr(b); got != "x:A*" {
		t.Fatalf("bound repeat = %q", got)
	}
	// A bound choice needs parentheses.
	bc := &Seq{Items: []Item{BindItem("x", Alt(SeqOf(Ref("A")), SeqOf(Ref("B"))))}}
	if got := FormatExpr(bc); got != "x:(A / B)" {
		t.Fatalf("bound choice = %q", got)
	}
	// A prefix operator under a binding needs parentheses too.
	bp := &Seq{Items: []Item{BindItem("x", Never(Ref("A")))}}
	if got := FormatExpr(bp); got != "x:(!A)" {
		t.Fatalf("bound not = %q", got)
	}
}

func TestFormatProduction(t *testing.T) {
	p := DefineProd("Sum", AttrPublic|AttrTransient, Alt(SeqOf(Ref("A"))))
	if got := FormatProduction(p); got != "public transient Sum = A ;" {
		t.Fatalf("define = %q", got)
	}
	o := &Production{Name: "X", Kind: Override, Choice: Alt(SeqOf(Lit("x")))}
	if got := FormatProduction(o); got != `X := "x" ;` {
		t.Fatalf("override = %q", got)
	}
	a := &Production{Name: "X", Kind: AddAlts, Choice: Alt(SeqOf(Lit("y"))), Anchor: Before, AnchorLabel: "base"}
	if got := FormatProduction(a); got != `X += "y" before <base> ;` {
		t.Fatalf("add = %q", got)
	}
	ae := &Production{Name: "X", Kind: AddAlts, Choice: Alt(SeqOf(Lit("y")))}
	if got := FormatProduction(ae); got != `X += "y" ;` {
		t.Fatalf("append = %q", got)
	}
	r := &Production{Name: "X", Kind: RemoveAlts, Removed: []string{"a", "b"}}
	if got := FormatProduction(r); got != "X -= a, b ;" {
		t.Fatalf("remove = %q", got)
	}
}

func TestFormatModuleAndGrammar(t *testing.T) {
	m := &Module{
		Name:   "demo.calc",
		Params: []string{"Space"},
		Deps: []Dependency{
			{Module: "demo.lex", Args: []string{"x"}},
			{Module: "demo.base", Modify: true},
		},
		Options: map[string]string{"root": "Sum", "alpha": "1"},
		Prods: []*Production{
			DefineProd("Sum", AttrPublic, Alt(SeqOf(Ref("N")))),
		},
	}
	got := FormatModule(m)
	for _, frag := range []string{
		"module demo.calc(Space);",
		"import demo.lex(x);",
		"modify demo.base;",
		"option alpha = 1;",
		"option root = Sum;",
		"public Sum = N ;",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("FormatModule missing %q in:\n%s", frag, got)
		}
	}
	// Options must come out sorted (alpha before root).
	if strings.Index(got, "option alpha") > strings.Index(got, "option root") {
		t.Error("options not sorted")
	}

	g := &Grammar{Root: "Sum", ModuleNames: []string{"demo.calc"}}
	g.Add(DefineProd("Sum", AttrPublic, Alt(SeqOf(Ref("N")))))
	g.Add(DefineProd("N", AttrText, Alt(SeqOf(Plus(Class('0', '9'))))))
	gs := FormatGrammar(g)
	for _, frag := range []string{"root Sum", "modules: demo.calc", "public Sum = N ;", "text N = [0-9]+ ;"} {
		if !strings.Contains(gs, frag) {
			t.Errorf("FormatGrammar missing %q in:\n%s", frag, gs)
		}
	}
}

func TestFormatUnknownExpr(t *testing.T) {
	if got := FormatExpr(nil); got != "()" {
		t.Fatalf("nil expr = %q", got)
	}
}
