// Package peg defines the intermediate representation of modular parsing
// expression grammars: expressions, productions, modules, and composed
// grammars.
//
// The representation mirrors the design of Rats! (Grimm, PLDI 2006):
//
//   - A *Module* is a unit of syntax definition. It declares a qualified
//     name, optional parameters, dependencies on other modules, and a list
//     of productions. A production in a module may be a plain definition or
//     a *modification* of a production from a dependency: a full override
//     (:=), the addition of alternatives (+=, optionally anchored before or
//     after a labeled alternative), or the removal of labeled alternatives
//     (-=).
//
//   - A *Grammar* is the closed result of composing modules (see
//     internal/core): a flat map from production names to productions with
//     every modification applied and every module parameter substituted.
//
// # Semantic values
//
// Parsers over this IR produce generic ast.Values under these rules:
//
//   - Literal matches are void (no value). Wrap in a capture $(...) to
//     obtain the text.
//   - CharClass and Any matches produce a *ast.Token of the matched byte.
//   - A capture $(e) produces a *ast.Token covering everything e matched,
//     discarding e's internal values.
//   - A sequence with a constructor `@Name` produces ast.Node{Name, ...}
//     whose children are the values of its bound items (in binding order)
//     or, if it has no bindings, all non-nil item values.
//   - A sequence without a constructor passes through: nil if no item
//     produced a value, the value itself if exactly one did, and an
//     ast.List otherwise.
//   - e? produces the value or nil; e* and e+ produce a flat ast.List of
//     the non-nil iteration values — except that a repetition (or option)
//     whose body can never produce a value yields nil instead of an empty
//     list. "Can never produce a value" is decided *interprocedurally*
//     (see analysis.Analysis.Valued), so wrapping a void expression in a
//     helper production does not change value shapes, and inlining cannot
//     either.
//   - &e and !e are void.
//   - A production's value is its matched alternative's value, except:
//     `text` productions produce a single *ast.Token covering the whole
//     match, and `void` productions produce nil.
//
// The IR is deliberately plain data; analyses live in internal/analysis,
// rewrites in internal/transform, composition in internal/core, and
// execution in internal/vm.
package peg

import (
	"fmt"
	"strings"

	"modpeg/internal/text"
)

// Attr is a bit set of production attributes.
type Attr uint16

const (
	// AttrPublic marks a production as visible to importing modules and as
	// a permissible grammar root.
	AttrPublic Attr = 1 << iota
	// AttrTransient declares that the production's results need not be
	// memoized (the central Rats! space optimization).
	AttrTransient
	// AttrMemo forces memoization even when an optimization pass would
	// otherwise mark the production transient.
	AttrMemo
	// AttrVoid declares that the production produces no semantic value.
	AttrVoid
	// AttrText declares that the production produces the matched text as a
	// single token, discarding inner structure (lexical productions).
	AttrText
	// AttrInline invites the optimizer to inline this production at use
	// sites regardless of its cost estimate.
	AttrInline
	// AttrNoInline forbids inlining.
	AttrNoInline
	// AttrSynthetic marks productions introduced by transformation passes
	// (e.g. left-recursion rewrites); printed for debugging only.
	AttrSynthetic
)

var attrNames = []struct {
	bit  Attr
	name string
}{
	{AttrPublic, "public"},
	{AttrTransient, "transient"},
	{AttrMemo, "memo"},
	{AttrVoid, "void"},
	{AttrText, "text"},
	{AttrInline, "inline"},
	{AttrNoInline, "noinline"},
	{AttrSynthetic, "synthetic"},
}

// Has reports whether all bits in q are set.
func (a Attr) Has(q Attr) bool { return a&q == q }

// String renders the attribute set as space-separated keywords.
func (a Attr) String() string {
	var parts []string
	for _, an := range attrNames {
		if a.Has(an.bit) {
			parts = append(parts, an.name)
		}
	}
	return strings.Join(parts, " ")
}

// ParseAttr maps an attribute keyword to its bit; ok is false for unknown
// keywords.
func ParseAttr(name string) (Attr, bool) {
	for _, an := range attrNames {
		if an.name == name {
			return an.bit, true
		}
	}
	return 0, false
}

// ProdKind distinguishes plain definitions from the modification forms a
// module may apply to productions of its dependencies.
type ProdKind int

const (
	// Define introduces a new production (=).
	Define ProdKind = iota
	// Override replaces an inherited production's body entirely (:=).
	Override
	// AddAlts appends or inserts alternatives into an inherited production
	// (+=, with optional before/after anchor).
	AddAlts
	// RemoveAlts deletes labeled alternatives from an inherited production
	// (-=).
	RemoveAlts
)

func (k ProdKind) String() string {
	switch k {
	case Define:
		return "="
	case Override:
		return ":="
	case AddAlts:
		return "+="
	case RemoveAlts:
		return "-="
	}
	return fmt.Sprintf("ProdKind(%d)", int(k))
}

// Anchor positions added alternatives relative to an existing labeled
// alternative.
type Anchor int

const (
	// AtEnd appends added alternatives after all existing ones.
	AtEnd Anchor = iota
	// Before inserts added alternatives immediately before the anchor label.
	Before
	// After inserts added alternatives immediately after the anchor label.
	After
)

func (a Anchor) String() string {
	switch a {
	case AtEnd:
		return "at end"
	case Before:
		return "before"
	case After:
		return "after"
	}
	return fmt.Sprintf("Anchor(%d)", int(a))
}

// Production is one (possibly modifying) production of a module, or — after
// composition — one production of a closed grammar.
type Production struct {
	Name  string
	Attrs Attr
	Kind  ProdKind
	// Choice is the body for Define/Override, and the added alternatives
	// for AddAlts. It is nil for RemoveAlts.
	Choice *Choice
	// Anchor/AnchorLabel position AddAlts alternatives.
	Anchor      Anchor
	AnchorLabel string
	// Removed lists the alternative labels deleted by RemoveAlts.
	Removed []string
	Sp      text.Span
}

// Span returns the production's source span.
func (p *Production) Span() text.Span { return p.Sp }

// Dependency records a module-level import or modification clause.
type Dependency struct {
	// Module is the qualified name of the target module.
	Module string
	// Args are the argument module names substituted for the target's
	// parameters, in order.
	Args []string
	// Modify is true for `modify` clauses: the depending module's
	// modification productions apply to this dependency's productions.
	Modify bool
	Sp     text.Span
}

// Module is a parsed grammar module before composition.
type Module struct {
	Name   string
	Params []string
	Deps   []Dependency
	Prods  []*Production
	// Options carries module-level `option` declarations (e.g. the root
	// production name for executable grammars).
	Options map[string]string
	Source  *text.Source
	Sp      text.Span
}

// Production returns the module's production with the given name, or nil.
func (m *Module) Production(name string) *Production {
	for _, p := range m.Prods {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Grammar is a closed, composed grammar: every nonterminal reference
// resolves to a production in Prods, and Root names the start production.
type Grammar struct {
	// Root is the start production's name.
	Root string
	// Prods maps production name to production. All productions have
	// Kind == Define after composition.
	Prods map[string]*Production
	// Order preserves a deterministic production order (definition order
	// of the composed modules) for printing and code generation.
	Order []string
	// ModuleNames records which modules were composed, in dependency
	// order, for reporting.
	ModuleNames []string
}

// Production returns the named production, or nil.
func (g *Grammar) Production(name string) *Production { return g.Prods[name] }

// Clone returns a deep copy of the grammar. Transformation passes operate
// on clones so that callers can compare optimized and unoptimized forms.
func (g *Grammar) Clone() *Grammar {
	ng := &Grammar{
		Root:        g.Root,
		Prods:       make(map[string]*Production, len(g.Prods)),
		Order:       append([]string(nil), g.Order...),
		ModuleNames: append([]string(nil), g.ModuleNames...),
	}
	for name, p := range g.Prods {
		ng.Prods[name] = CloneProduction(p)
	}
	return ng
}

// Add inserts a production, maintaining Order. It replaces any existing
// production with the same name without duplicating the order entry.
func (g *Grammar) Add(p *Production) {
	if g.Prods == nil {
		g.Prods = make(map[string]*Production)
	}
	if _, exists := g.Prods[p.Name]; !exists {
		g.Order = append(g.Order, p.Name)
	}
	g.Prods[p.Name] = p
}

// Remove deletes a production by name, keeping Order consistent.
func (g *Grammar) Remove(name string) {
	if _, ok := g.Prods[name]; !ok {
		return
	}
	delete(g.Prods, name)
	for i, n := range g.Order {
		if n == name {
			g.Order = append(g.Order[:i], g.Order[i+1:]...)
			break
		}
	}
}

// CloneProduction deep-copies a production.
func CloneProduction(p *Production) *Production {
	if p == nil {
		return nil
	}
	np := *p
	np.Removed = append([]string(nil), p.Removed...)
	if p.Choice != nil {
		np.Choice = CloneExpr(p.Choice).(*Choice)
	}
	return &np
}
