package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"

	"modpeg/internal/vm"
)

// Trace is a parse-event hook that streams Chrome trace-event JSON — a
// timeline loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each production invocation becomes a B/E duration span; memo hits and
// memo sheds become instant events. Dispatch fast-fails (Hook.OnFail)
// are deliberately not emitted: they outnumber real events by orders of
// magnitude and carry no duration.
//
// Install it like any other hook, then Close to terminate the JSON
// array and flush:
//
//	tr := telemetry.NewTrace(prog, f)
//	prog.ParseWithHook(src, tr)
//	err := tr.Close()
//
// A Trace serves one parsing goroutine; consecutive parses may share
// one Trace and land on the same timeline. Timestamps are microseconds
// since the Trace was created. Write errors are latched and returned by
// Close.
type Trace struct {
	prog  *vm.Program
	w     *bufio.Writer
	err   error
	n     int // events emitted
	start time.Time
	clock func() time.Duration
}

// NewTrace creates a trace-event exporter resolving production names
// against prog and streaming JSON to w.
func NewTrace(prog *vm.Program, w io.Writer) *Trace {
	t := &Trace{prog: prog, w: bufio.NewWriter(w), start: time.Now()}
	t.clock = func() time.Duration { return time.Since(t.start) }
	return t
}

// SetClock replaces the event timestamp source (elapsed time since the
// trace began) — for deterministic output in tests. Call it before the
// first event.
func (t *Trace) SetClock(clock func() time.Duration) { t.clock = clock }

// Events returns the number of trace events emitted so far (metadata
// included).
func (t *Trace) Events() int { return t.n }

// Close terminates the JSON array and flushes. The Trace must not
// receive further events. It returns the first error the underlying
// writer reported.
func (t *Trace) Close() error {
	if t.err == nil {
		if t.n == 0 {
			_, t.err = t.w.WriteString("[]\n")
		} else {
			_, t.err = t.w.WriteString("\n]\n")
		}
	}
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// OnEnter emits the opening edge of a production span.
func (t *Trace) OnEnter(prod, pos int) {
	t.event(`{"name":` + t.prodName(prod) +
		`,"cat":"production","ph":"B","ts":` + t.ts() +
		`,"pid":1,"tid":1,"args":{"pos":` + strconv.Itoa(pos) + `}}`)
}

// OnExit emits the closing edge of a production span.
func (t *Trace) OnExit(prod, pos, end int, ok bool) {
	t.event(`{"name":` + t.prodName(prod) +
		`,"cat":"production","ph":"E","ts":` + t.ts() +
		`,"pid":1,"tid":1,"args":{"end":` + strconv.Itoa(end) +
		`,"ok":` + strconv.FormatBool(ok) + `}}`)
}

// OnMemoHit emits an instant event where the memo table answered in
// place of an enter/exit pair.
func (t *Trace) OnMemoHit(prod, pos, end int, ok bool) {
	t.event(`{"name":` + strconv.Quote("memo "+t.prog.ProductionName(prod)) +
		`,"cat":"memo","ph":"i","ts":` + t.ts() +
		`,"pid":1,"tid":1,"s":"t","args":{"pos":` + strconv.Itoa(pos) +
		`,"end":` + strconv.Itoa(end) +
		`,"ok":` + strconv.FormatBool(ok) + `}}`)
}

// OnFail is a no-op: dispatch fast-fails are too numerous to chart.
func (t *Trace) OnFail(prod, pos int) {}

// OnTraceContext stamps the stream with the parse's W3C trace ID
// (vm.TraceContextHook): a metadata record correlating this timeline
// with the distributed trace the request belongs to.
func (t *Trace) OnTraceContext(traceID string) {
	t.event(`{"name":"trace_id","ph":"M","pid":1,"tid":1,"args":{"trace_id":` +
		strconv.Quote(traceID) + `}}`)
}

// OnMemoShed emits an instant event marking the parse shedding
// memoization at its memo budget (vm.ShedHook).
func (t *Trace) OnMemoShed(pos, arenaBytes int) {
	t.event(`{"name":"memo-shed","cat":"memo","ph":"i","ts":` + t.ts() +
		`,"pid":1,"tid":1,"s":"p","args":{"pos":` + strconv.Itoa(pos) +
		`,"arena_bytes":` + strconv.Itoa(arenaBytes) + `}}`)
}

// event appends one pre-rendered JSON object to the stream, emitting
// the array opener and the process-name metadata record first.
func (t *Trace) event(obj string) {
	if t.err != nil {
		return
	}
	if t.n == 0 {
		t.writeString("[\n" +
			`{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{"name":"modpeg"}}`)
		t.n++
	}
	t.writeString(",\n" + obj)
	t.n++
}

func (t *Trace) writeString(s string) {
	if t.err == nil {
		_, t.err = t.w.WriteString(s)
	}
}

// ts renders the current elapsed time as trace-format microseconds,
// keeping nanosecond precision as fractional digits.
func (t *Trace) ts() string {
	return fmt.Sprintf("%.3f", float64(t.clock())/float64(time.Microsecond))
}

// prodName renders production prod's fully qualified name as a JSON
// string.
func (t *Trace) prodName(prod int) string {
	return strconv.Quote(t.prog.ProductionName(prod))
}
