package telemetry_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"modpeg"
)

// tinyGrammar is the two-production grammar the trace goldens use:
// small enough that the full event stream is reviewable by hand.
const tinyGrammar = "module tiny;\npublic A = B B !. ;\npublic B = \"x\" ;\noption root = A;\n"

func tinyParser(t *testing.T) *modpeg.Parser {
	t.Helper()
	// Baseline optimizations keep B out-of-line so the trace shows
	// nested production spans instead of one inlined root span.
	p, err := modpeg.New("tiny",
		modpeg.WithModules(map[string]string{"tiny": tinyGrammar}),
		modpeg.WithoutBundledGrammars(),
		modpeg.WithOptimizations(modpeg.BaselineOptimizations()))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// counterClock returns a deterministic trace clock advancing 1µs per
// event.
func counterClock() func() time.Duration {
	n := 0
	return func() time.Duration {
		n++
		return time.Duration(n) * time.Microsecond
	}
}

// TestTraceGolden pins the Chrome trace-event output for a parse of the
// tiny grammar byte for byte (deterministic via an injected clock).
func TestTraceGolden(t *testing.T) {
	p := tinyParser(t)
	var b strings.Builder
	tr := p.NewTraceJSON(&b)
	tr.SetClock(counterClock())
	if _, _, err := p.ParseWithHook("in", "xx", tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(golden) {
		t.Errorf("trace output drifted from testdata/trace.json.\n--- got ---\n%s\n--- want ---\n%s", b.String(), golden)
	}
}

// TestTraceWellFormed checks the structural contract on a larger
// grammar: the output is a valid JSON array, B/E events balance per
// name, and every event carries the required trace-format fields.
func TestTraceWellFormed(t *testing.T) {
	p, err := modpeg.New("calc.core")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tr := p.NewTraceJSON(&b)
	if _, _, err := p.ParseWithHook("in", "1+2*(3-4)", tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	if tr.Events() != len(events) {
		t.Errorf("Events() = %d, decoded %d", tr.Events(), len(events))
	}
	if ph := events[0]["ph"]; ph != "M" {
		t.Errorf("first event ph = %v, want metadata", ph)
	}
	depth := 0
	var stack []string
	for i, e := range events[1:] {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if name == "" {
			t.Fatalf("event %d has no name", i+1)
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("event %d has no numeric ts", i+1)
		}
		switch ph {
		case "B":
			stack = append(stack, name)
			depth++
		case "E":
			if depth == 0 {
				t.Fatalf("E without B at event %d", i+1)
			}
			if top := stack[len(stack)-1]; top != name {
				t.Fatalf("E %q closes B %q", name, top)
			}
			stack = stack[:len(stack)-1]
			depth--
		case "i":
			if !strings.HasPrefix(name, "memo ") {
				t.Errorf("unexpected instant event %q", name)
			}
		default:
			t.Errorf("unexpected ph %q at event %d", ph, i+1)
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced spans: %d left open", depth)
	}
}

// TestTraceCarriesTraceID checks the W3C trace-context stamp: a traced
// parse with the Chrome exporter installed puts a trace_id metadata
// record on the timeline before the first production span.
func TestTraceCarriesTraceID(t *testing.T) {
	p := tinyParser(t)
	var b strings.Builder
	tr := p.NewTraceJSON(&b)
	tr.SetClock(counterClock())
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	if _, _, err := p.ParseContextTracedWithHook(t.Context(), "in", "xx", modpeg.Limits{}, traceID, tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("traced timeline is not valid JSON: %v", err)
	}
	found := -1
	firstSpan := len(events)
	for i, e := range events {
		name, _ := e["name"].(string)
		if name == "trace_id" {
			if ph := e["ph"]; ph != "M" {
				t.Errorf("trace_id event ph = %v, want metadata", ph)
			}
			args, _ := e["args"].(map[string]any)
			if got := args["trace_id"]; got != traceID {
				t.Errorf("trace_id args = %v, want %q", got, traceID)
			}
			found = i
		}
		if ph, _ := e["ph"].(string); ph == "B" && i < firstSpan {
			firstSpan = i
		}
	}
	if found < 0 {
		t.Fatal("timeline has no trace_id metadata record")
	}
	if found > firstSpan {
		t.Errorf("trace_id record at %d after first span at %d", found, firstSpan)
	}
}

// TestTraceEmptyAndShed covers the no-event stream and the memo-shed
// instant event.
func TestTraceEmptyAndShed(t *testing.T) {
	p := tinyParser(t)
	var empty strings.Builder
	tr := p.NewTraceJSON(&empty)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "[]\n" {
		t.Errorf("empty trace = %q, want []", empty.String())
	}

	var b strings.Builder
	tr = p.NewTraceJSON(&b)
	tr.SetClock(counterClock())
	tr.OnMemoShed(5, 1024)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"name":"memo-shed"`) || !strings.Contains(out, `"arena_bytes":1024`) {
		t.Errorf("shed event malformed: %s", out)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("shed trace is not valid JSON: %v", err)
	}
}
