package telemetry_test

import (
	"encoding/json"
	"strconv"
	"testing"
	"time"

	"modpeg/internal/telemetry"
	"modpeg/internal/vm"
)

func flightRec(i int) telemetry.FlightRecord {
	return telemetry.FlightRecord{
		Time:       time.Unix(1_700_000_000+int64(i), 0).UTC(),
		RequestID:  "req-" + strconv.Itoa(i),
		TraceID:    "4bf92f3577b34da6a3ce929d0e0e47" + strconv.Itoa(10+i),
		Grammar:    "acme/calc@v1",
		InputBytes: 64,
		DurationNS: int64(i+1) * 1_000_000,
		Outcome:    "ok",
		Trigger:    "slow",
		FailPos:    -1,
		Limits:     vm.Limits{MaxCallDepth: 1000},
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	f := telemetry.NewFlightRecorder(3)
	if f.Capacity() != 3 {
		t.Fatalf("Capacity() = %d, want 3", f.Capacity())
	}
	for i := 0; i < 5; i++ {
		f.Record(flightRec(i))
	}
	if f.Total() != 5 {
		t.Errorf("Total() = %d, want 5 (evicted records still count)", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot() holds %d records, want capacity 3", len(snap))
	}
	// Newest first: records 4, 3, 2 survive; 0 and 1 were evicted.
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if snap[i].RequestID != want {
			t.Errorf("snapshot[%d].RequestID = %q, want %q (newest first)", i, snap[i].RequestID, want)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := telemetry.NewFlightRecorder(8)
	f.Record(flightRec(0))
	f.Record(flightRec(1))
	snap := f.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() holds %d records, want 2 (no zero-value padding)", len(snap))
	}
	if snap[0].RequestID != "req-1" || snap[1].RequestID != "req-0" {
		t.Errorf("snapshot order = [%s %s], want newest first", snap[0].RequestID, snap[1].RequestID)
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	for _, size := range []int{0, -7} {
		if got := telemetry.NewFlightRecorder(size).Capacity(); got != telemetry.DefaultFlightRecords {
			t.Errorf("NewFlightRecorder(%d).Capacity() = %d, want default %d",
				size, got, telemetry.DefaultFlightRecords)
		}
	}
}

func TestFlightRecorderJSONRoundTrip(t *testing.T) {
	f := telemetry.NewFlightRecorder(4)
	rec := flightRec(0)
	rec.TopProductions = []vm.ProdProfile{{Name: "calc.core.Sum", SelfNanos: 900, Calls: 40}}
	f.Record(rec)
	data, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetry.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("JSON() does not round-trip: %v", err)
	}
	if dump.Capacity != 4 || dump.Total != 1 || len(dump.Records) != 1 {
		t.Fatalf("dump = capacity %d total %d records %d, want 4/1/1",
			dump.Capacity, dump.Total, len(dump.Records))
	}
	got := dump.Records[0]
	if got.RequestID != rec.RequestID || got.TraceID != rec.TraceID ||
		got.DurationNS != rec.DurationNS || got.Limits.MaxCallDepth != 1000 {
		t.Errorf("record did not survive the round-trip: %+v", got)
	}
	if len(got.TopProductions) != 1 || got.TopProductions[0].Name != "calc.core.Sum" {
		t.Errorf("top productions lost: %+v", got.TopProductions)
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	f := telemetry.NewFlightRecorder(16)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				f.Record(flightRec(i))
				f.Snapshot()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if f.Total() != 400 {
		t.Errorf("Total() = %d after 4x100 concurrent records, want 400", f.Total())
	}
}
