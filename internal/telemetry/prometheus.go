// Package telemetry turns the engine's in-process observability state
// (the vm metrics registry, parse-event hooks) into exportable forms:
// Prometheus text exposition for scraping, Chrome trace-event (Perfetto)
// JSON for timeline inspection, and structured slog records for request
// logs. It is the bridge between the instrumentation built into
// internal/vm and the outside world; `modpeg serve` wires all three to
// a running HTTP service.
package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"

	"modpeg/internal/vm"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// scalar metrics rendered from the snapshot, in declaration order.
// Counters carry the conventional _total suffix; peak_memo_bytes is a
// gauge (ResetMetrics can lower it).
var scalarMetrics = []struct {
	name, typ, help string
	value           func(vm.MetricsSnapshot) int64
}{
	{"modpeg_parses_started_total", "counter", "Parses begun; each lands in completed, failed, or limit_stops.",
		func(m vm.MetricsSnapshot) int64 { return m.ParsesStarted }},
	{"modpeg_parses_completed_total", "counter", "Parses that matched the whole input.",
		func(m vm.MetricsSnapshot) int64 { return m.ParsesCompleted }},
	{"modpeg_parses_failed_total", "counter", "Parses rejected with a syntax error.",
		func(m vm.MetricsSnapshot) int64 { return m.ParsesFailed }},
	{"modpeg_pool_gets_total", "counter", "Parser checkouts from the session pool.",
		func(m vm.MetricsSnapshot) int64 { return m.PoolGets }},
	{"modpeg_pool_news_total", "counter", "Pool misses that built a fresh parser.",
		func(m vm.MetricsSnapshot) int64 { return m.PoolNews }},
	{"modpeg_session_resets_total", "counter", "Warm parser rewinds (reuse of a parser that had parsed before).",
		func(m vm.MetricsSnapshot) int64 { return m.SessionResets }},
	{"modpeg_arena_bytes_carved_total", "counter", "Memo-arena slab bytes obtained from the allocator.",
		func(m vm.MetricsSnapshot) int64 { return m.ArenaBytesCarved }},
	{"modpeg_arena_bytes_recycled_total", "counter", "Carved arena bytes made reusable again by session resets.",
		func(m vm.MetricsSnapshot) int64 { return m.ArenaBytesRecycled }},
	{"modpeg_peak_memo_bytes", "gauge", "Largest single-parse memo footprint observed (Stats.MemoBytes model).",
		func(m vm.MetricsSnapshot) int64 { return m.PeakMemoBytes }},
	{"modpeg_limit_stops_total", "counter", "Parses stopped by a resource budget or canceled context.",
		func(m vm.MetricsSnapshot) int64 { return m.LimitStops }},
	{"modpeg_memo_sheds_total", "counter", "Memo-budget hits that shed memoization instead of stopping the parse.",
		func(m vm.MetricsSnapshot) int64 { return m.MemoSheds }},
	{"modpeg_panics_contained_total", "counter", "Interpreter panics converted into EngineError by the governance layer.",
		func(m vm.MetricsSnapshot) int64 { return m.PanicsContained }},
	{"modpeg_incremental_applies_total", "counter", "Document.Apply calls with at least one edit.",
		func(m vm.MetricsSnapshot) int64 { return m.IncrementalApplies }},
	{"modpeg_incremental_full_reparses_total", "counter", "Incremental applies that fell back to a from-scratch reparse.",
		func(m vm.MetricsSnapshot) int64 { return m.IncrementalFullReparses }},
	{"modpeg_memo_entries_reused_total", "counter", "Memo hits answered by entries recycled from an earlier revision.",
		func(m vm.MetricsSnapshot) int64 { return m.MemoEntriesReused }},
	{"modpeg_memo_entries_invalidated_total", "counter", "Recycled memo entries killed by edit damage.",
		func(m vm.MetricsSnapshot) int64 { return m.MemoEntriesInvalidated }},
	{"modpeg_memo_entries_relocated_total", "counter", "Recycled memo entries shifted past an edit by directory remap.",
		func(m vm.MetricsSnapshot) int64 { return m.MemoEntriesRelocated }},
}

// runtimeGauges are the process-runtime gauges sampled into the
// snapshot at scrape time (goroutines, heap, GC pause, in-flight
// requests, uptime). Nanosecond-denominated values render as
// conventional seconds via the unit factor.
var runtimeGauges = []struct {
	name, help string
	value      func(vm.MetricsSnapshot) int64
	unit       float64 // 0 = integer sample; else value * unit as float
}{
	{"modpeg_goroutines", "Goroutines at scrape time.",
		func(m vm.MetricsSnapshot) int64 { return m.Goroutines }, 0},
	{"modpeg_heap_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc) at scrape time.",
		func(m vm.MetricsSnapshot) int64 { return m.HeapBytes }, 0},
	{"modpeg_gc_pause_seconds", "Cumulative GC stop-the-world pause time since process start.",
		func(m vm.MetricsSnapshot) int64 { return m.GCPauseNS }, 1e-9},
	{"modpeg_inflight_requests", "Parse requests currently in flight in the serve layer.",
		func(m vm.MetricsSnapshot) int64 { return m.InflightRequests }, 0},
	{"modpeg_uptime_seconds", "Seconds since process start.",
		func(m vm.MetricsSnapshot) int64 { return m.UptimeNS }, 1e-9},
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format v0.0.4: the scalar registry counters, the process-runtime
// gauges, the parse-duration (seconds) and input-size (bytes)
// histograms, and the per-grammar labeled counters. Rendering is
// deterministic: fixed metric order, grammar labels sorted.
func WritePrometheus(w io.Writer, m vm.MetricsSnapshot) error {
	bw := bufio.NewWriter(w)
	p := promWriter{w: bw}

	for _, s := range scalarMetrics {
		p.header(s.name, s.help, s.typ)
		p.sample(s.name, "", strconv.FormatInt(s.value(m), 10))
	}

	for _, g := range runtimeGauges {
		p.header(g.name, g.help, "gauge")
		if g.unit != 0 {
			p.sample(g.name, "", formatFloat(float64(g.value(m))*g.unit))
		} else {
			p.sample(g.name, "", strconv.FormatInt(g.value(m), 10))
		}
	}

	p.histogram("modpeg_parse_duration_seconds",
		"Wall-clock time of each parse, by outcome bucket.", m.ParseDurationNS, 1e-9)
	p.histogram("modpeg_parse_input_bytes",
		"Input size of each parse in bytes.", m.ParseInputBytes, 1)

	writeSampledProfiles(&p, m.SampledProfiles)

	if labels := m.GrammarLabels(); len(labels) > 0 {
		p.header("modpeg_grammar_parses_started_total",
			"Parses begun, by grammar label.", "counter")
		for _, label := range labels {
			p.sample("modpeg_grammar_parses_started_total",
				`{grammar="`+escapeLabel(label)+`"}`,
				strconv.FormatInt(m.Grammars[label].ParsesStarted, 10))
		}
		p.header("modpeg_grammar_parses_total",
			"Parse outcomes, by grammar label.", "counter")
		for _, label := range labels {
			g := m.Grammars[label]
			esc := escapeLabel(label)
			p.sample("modpeg_grammar_parses_total",
				`{grammar="`+esc+`",outcome="completed"}`, strconv.FormatInt(g.ParsesCompleted, 10))
			p.sample("modpeg_grammar_parses_total",
				`{grammar="`+esc+`",outcome="failed"}`, strconv.FormatInt(g.ParsesFailed, 10))
			p.sample("modpeg_grammar_parses_total",
				`{grammar="`+esc+`",outcome="limit"}`, strconv.FormatInt(g.LimitStops, 10))
		}
		p.header("modpeg_grammar_input_bytes_total",
			"Input bytes submitted, by grammar label.", "counter")
		for _, label := range labels {
			p.sample("modpeg_grammar_input_bytes_total",
				`{grammar="`+escapeLabel(label)+`"}`,
				strconv.FormatInt(m.Grammars[label].InputBytes, 10))
		}
	}

	if p.err != nil {
		return p.err
	}
	return bw.Flush()
}

// Handler serves the process-wide metrics registry in exposition
// format — the GET /metrics scrape endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = WritePrometheus(w, vm.Metrics())
	})
}

// promWriter accumulates exposition lines, latching the first write
// error (the bufio layer makes subsequent calls cheap no-ops).
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) line(s string) {
	if p.err != nil {
		return
	}
	if _, err := p.w.WriteString(s); err != nil {
		p.err = err
		return
	}
	p.err = p.w.WriteByte('\n')
}

func (p *promWriter) header(name, help, typ string) {
	p.line("# HELP " + name + " " + help)
	p.line("# TYPE " + name + " " + typ)
}

func (p *promWriter) sample(name, labels, value string) {
	p.line(name + labels + " " + value)
}

// histogram renders h with its native int64 bounds and sum scaled by
// unit (1e-9 converts the nanosecond latency histogram to conventional
// seconds). Buckets in a HistogramSnapshot are already cumulative; the
// +Inf bucket is the total count. Buckets carrying an exemplar get the
// OpenMetrics `# {trace_id=...} value timestamp` suffix; exemplar-free
// output is byte-identical to the plain exposition format, so existing
// scrapers are unaffected until a traced parse lands.
func (p *promWriter) histogram(name, help string, h vm.HistogramSnapshot, unit float64) {
	p.header(name, help, "histogram")
	for _, b := range h.Buckets {
		p.sample(name+"_bucket",
			`{le="`+formatFloat(float64(b.UpperBound)*unit)+`"}`,
			strconv.FormatInt(b.Count, 10)+exemplarSuffix(b.Exemplar, unit))
	}
	p.sample(name+"_bucket", `{le="+Inf"}`,
		strconv.FormatInt(h.Count, 10)+exemplarSuffix(h.InfExemplar, unit))
	p.sample(name+"_sum", "", formatFloat(float64(h.Sum)*unit))
	p.sample(name+"_count", "", strconv.FormatInt(h.Count, 10))
}

// exemplarSuffix renders a bucket's exemplar in OpenMetrics syntax
// (` # {trace_id="...",grammar="..."} value timestamp`), or "" for
// buckets without one. The exemplar value is scaled by the same unit
// as the histogram; the timestamp is Unix seconds.
func exemplarSuffix(e *vm.Exemplar, unit float64) string {
	if e == nil {
		return ""
	}
	s := ` # {trace_id="` + escapeLabel(e.TraceID) + `"`
	if e.Grammar != "" {
		s += `,grammar="` + escapeLabel(e.Grammar) + `"`
	}
	s += `} ` + formatFloat(float64(e.Value)*unit)
	if e.TimeUnixNS != 0 {
		s += " " + strconv.FormatFloat(float64(e.TimeUnixNS)/1e9, 'f', 3, 64)
	}
	return s
}

// hotProductionTopK bounds the per-grammar hot-production rows merged
// into the exposition (the full rolling profiles stay on
// GET /debug/profiles).
const hotProductionTopK = 5

// writeSampledProfiles renders the rolling sampled profiles as
// per-grammar counters: sampled-parse counts plus the top-K hottest
// productions' self time and calls. Silent (no headers) while sampling
// is off everywhere, keeping the default exposition byte-identical.
func writeSampledProfiles(p *promWriter, profiles []vm.SampledProfile) {
	if len(profiles) == 0 {
		return
	}
	p.header("modpeg_sampled_parses_total",
		"Parses captured by the 1-in-N sampled profiler, by grammar label.", "counter")
	for _, sp := range profiles {
		p.sample("modpeg_sampled_parses_total",
			`{grammar="`+escapeLabel(sp.Label)+`"}`,
			strconv.FormatInt(sp.Parses, 10))
	}
	p.header("modpeg_hot_production_self_seconds_total",
		"Sampled self time of the hottest productions, by grammar label (top 5).", "counter")
	for _, sp := range profiles {
		for _, r := range topRows(sp.Productions) {
			p.sample("modpeg_hot_production_self_seconds_total",
				`{grammar="`+escapeLabel(sp.Label)+`",production="`+escapeLabel(r.Name)+`"}`,
				formatFloat(float64(r.SelfNanos)*1e-9))
		}
	}
	p.header("modpeg_hot_production_calls_total",
		"Sampled calls of the hottest productions, by grammar label (top 5).", "counter")
	for _, sp := range profiles {
		for _, r := range topRows(sp.Productions) {
			p.sample("modpeg_hot_production_calls_total",
				`{grammar="`+escapeLabel(sp.Label)+`",production="`+escapeLabel(r.Name)+`"}`,
				strconv.FormatInt(r.Calls, 10))
		}
	}
}

func topRows(rows []vm.ProdProfile) []vm.ProdProfile {
	if len(rows) > hotProductionTopK {
		return rows[:hotProductionTopK]
	}
	return rows
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
