package telemetry_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"modpeg"
	"modpeg/internal/telemetry"
	"modpeg/internal/vm"
)

// TestWritePrometheusGolden pins the exposition-format rendering of a
// fixed snapshot byte for byte: metric names, HELP/TYPE lines, bucket
// bounds, label escaping, and ordering.
func TestWritePrometheusGolden(t *testing.T) {
	snap := vm.MetricsSnapshot{
		ParsesStarted:   4,
		ParsesCompleted: 2,
		ParsesFailed:    1,
		PoolGets:        4,
		PoolNews:        1,
		PeakMemoBytes:   2048,
		LimitStops:      1,

		Goroutines:       9,
		HeapBytes:        1 << 20,
		GCPauseNS:        1_500_000, // renders as 0.0015 s
		InflightRequests: 2,
		UptimeNS:         61_500_000_000, // renders as 61.5 s
		ParseDurationNS: vm.HistogramSnapshot{
			Count: 4,
			Sum:   4_000_000,
			Buckets: []vm.HistogramBucket{
				{UpperBound: 1_000_000, Count: 3},
				{UpperBound: 10_000_000, Count: 4},
			},
		},
		ParseInputBytes: vm.HistogramSnapshot{
			Count: 4,
			Sum:   220,
			Buckets: []vm.HistogramBucket{
				{UpperBound: 64, Count: 3},
				{UpperBound: 256, Count: 4},
			},
		},
		Grammars: map[string]vm.GrammarCounters{
			"calc.core":  {ParsesStarted: 3, ParsesCompleted: 2, ParsesFailed: 1, InputBytes: 20},
			`wei"rd\lbl`: {ParsesStarted: 1, LimitStops: 1, InputBytes: 200},
		},
	}
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(golden) {
		t.Errorf("exposition output drifted from testdata/metrics.prom.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestWritePrometheusExemplarGolden pins the tail-forensics additions
// byte for byte: OpenMetrics exemplar suffixes on traced histogram
// buckets and the sampled-profile counter families (with the top-5
// hot-production truncation). TestWritePrometheusGolden above remains
// the byte-identity proof for the exemplar-free rendering — its golden
// file is untouched by this feature.
func TestWritePrometheusExemplarGolden(t *testing.T) {
	hot := func(name string, selfNS, calls int64) vm.ProdProfile {
		return vm.ProdProfile{Name: name, SelfNanos: selfNS, Calls: calls}
	}
	snap := vm.MetricsSnapshot{
		ParsesStarted:   4,
		ParsesCompleted: 3,
		ParsesFailed:    1,
		PoolGets:        4,
		ParseDurationNS: vm.HistogramSnapshot{
			Count: 4,
			Sum:   16_000_000,
			Buckets: []vm.HistogramBucket{
				{UpperBound: 1_000_000, Count: 1},
				{UpperBound: 10_000_000, Count: 3, Exemplar: &vm.Exemplar{
					TraceID:    "4bf92f3577b34da6a3ce929d0e0e4736",
					Grammar:    "acme/calc@v3",
					Value:      7_500_000,
					TimeUnixNS: 1_700_000_123_456_000_000,
				}},
			},
			InfExemplar: &vm.Exemplar{
				TraceID:    "00f067aa0ba902b7aabbccdd11223344",
				Grammar:    "acme/calc@v3",
				Value:      12_000_000,
				TimeUnixNS: 1_700_000_124_000_000_000,
			},
		},
		ParseInputBytes: vm.HistogramSnapshot{
			Count:   4,
			Sum:     220,
			Buckets: []vm.HistogramBucket{{UpperBound: 256, Count: 4}},
		},
		SampledProfiles: []vm.SampledProfile{
			{
				Label:  "acme/calc@v3",
				Parses: 7,
				Productions: []vm.ProdProfile{
					// Six rows: the exposition must keep the top 5.
					hot("calc.core.Sum", 900_000, 40),
					hot("calc.core.Product", 700_000, 38),
					hot("calc.core.Value", 400_000, 120),
					hot("calc.core.Number", 300_000, 90),
					hot("calc.core.Space", 200_000, 300),
					hot("calc.core.Digit", 100_000, 500),
				},
			},
			{Label: `wei"rd\lbl`, Parses: 2, Productions: []vm.ProdProfile{hot("p", 1_000, 1)}},
		},
	}
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/metrics_exemplar.prom")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(golden) {
		t.Errorf("exemplar exposition drifted from testdata/metrics_exemplar.prom.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// expositionLine matches the sample-line grammar of the text format:
// metric name, optional label set, and a float/integer value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+0-9.eE]+(e[-+][0-9]+)?$|^\+Inf$`)

// TestPrometheusFormatValid scrapes a live snapshot and checks every
// line against the exposition grammar, plus the histogram invariants
// (cumulative buckets, +Inf == count).
func TestPrometheusFormatValid(t *testing.T) {
	p, err := modpeg.New("calc.core")
	if err != nil {
		t.Fatal(err)
	}
	modpeg.ResetMetrics()
	p.Parse("in", "1+2*3")
	p.Parse("in", "1+")

	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, modpeg.Metrics()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var lastBucket = map[string]int64{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		// Strip an OpenMetrics exemplar suffix before grammar-checking:
		// the base sample must stand alone without it.
		if i := strings.Index(line, " # {"); i >= 0 {
			line = line[:i]
		}
		if !expositionLine.MatchString(line) && !strings.Contains(line, `le="+Inf"`) {
			t.Errorf("malformed exposition line: %q", line)
		}
		if i := strings.Index(line, "_bucket{le="); i >= 0 {
			name := line[:i]
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Errorf("bucket value unparsable in %q", line)
				continue
			}
			if v < lastBucket[name] {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			lastBucket[name] = v
		}
	}
	for _, want := range []string{
		"# TYPE modpeg_parse_duration_seconds histogram",
		`modpeg_parse_duration_seconds_bucket{le="+Inf"} 2`,
		"modpeg_parse_duration_seconds_count 2",
		"# TYPE modpeg_grammar_parses_total counter",
		`modpeg_grammar_parses_total{grammar="calc.core",outcome="completed"} 1`,
		`modpeg_grammar_parses_total{grammar="calc.core",outcome="failed"} 1`,
		"modpeg_parses_started_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition output missing %q", want)
		}
	}
	modpeg.ResetMetrics()
}

// TestJSONPrometheusRoundTrip checks that the JSON snapshot and the
// Prometheus rendering of the same snapshot agree on histogram counts,
// sums, and per-grammar counters.
func TestJSONPrometheusRoundTrip(t *testing.T) {
	p, err := modpeg.New("json.value")
	if err != nil {
		t.Fatal(err)
	}
	modpeg.ResetMetrics()
	inputs := []string{`{"a": [1, 2, 3]}`, `[true, false, null]`, `{"broken":`}
	for _, in := range inputs {
		p.Parse("in", in)
	}
	snap := modpeg.Metrics()

	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	rendered := b.String()

	scrape := func(line string) int64 {
		idx := strings.Index(rendered, line+" ")
		if idx < 0 {
			t.Fatalf("rendering missing sample %q", line)
		}
		rest := rendered[idx+len(line)+1:]
		end := strings.IndexByte(rest, '\n')
		v, err := strconv.ParseFloat(rest[:end], 64)
		if err != nil {
			t.Fatalf("sample %q value unparsable: %v", line, err)
		}
		return int64(v + 0.5)
	}

	if got := scrape("modpeg_parse_duration_seconds_count"); got != snap.ParseDurationNS.Count {
		t.Errorf("duration count: prometheus %d, json %d", got, snap.ParseDurationNS.Count)
	}
	if got := scrape("modpeg_parse_input_bytes_count"); got != snap.ParseInputBytes.Count {
		t.Errorf("input-bytes count: prometheus %d, json %d", got, snap.ParseInputBytes.Count)
	}
	if got := scrape("modpeg_parse_input_bytes_sum"); got != snap.ParseInputBytes.Sum {
		t.Errorf("input-bytes sum: prometheus %d, json %d", got, snap.ParseInputBytes.Sum)
	}
	// Every finite duration bucket must agree with the JSON cumulative
	// count (the rendering only rescales the bound, never the count).
	for _, bkt := range snap.ParseDurationNS.Buckets {
		line := `modpeg_parse_duration_seconds_bucket{le="` +
			strconv.FormatFloat(float64(bkt.UpperBound)*1e-9, 'g', -1, 64) + `"}`
		if got := scrape(line); got != bkt.Count {
			t.Errorf("bucket %s: prometheus %d, json %d", line, got, bkt.Count)
		}
	}
	g := snap.Grammars["json.value"]
	if got := scrape(`modpeg_grammar_parses_started_total{grammar="json.value"}`); got != g.ParsesStarted {
		t.Errorf("grammar started: prometheus %d, json %d", got, g.ParsesStarted)
	}
	if got := scrape(`modpeg_grammar_input_bytes_total{grammar="json.value"}`); got != g.InputBytes {
		t.Errorf("grammar input bytes: prometheus %d, json %d", got, g.InputBytes)
	}
	modpeg.ResetMetrics()
}

// TestHandlerContentType pins the scrape endpoint's Content-Type to the
// Prometheus text exposition format v0.0.4 byte for byte — scrapers
// negotiate on this exact string.
func TestHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	telemetry.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := rec.Header().Get("Content-Type"); got != want {
		t.Errorf("Content-Type = %q, want %q", got, want)
	}
	if got := telemetry.ContentType; got != want {
		t.Errorf("telemetry.ContentType = %q, want %q", got, want)
	}
	// The body must carry the runtime gauges a capacity run scrapes.
	for _, name := range []string{
		"modpeg_goroutines", "modpeg_heap_bytes", "modpeg_gc_pause_seconds",
		"modpeg_inflight_requests", "modpeg_uptime_seconds",
	} {
		if !strings.Contains(rec.Body.String(), "# TYPE "+name+" gauge") {
			t.Errorf("scrape body missing gauge %q", name)
		}
	}
}
