package telemetry_test

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modpeg/internal/telemetry"
	"modpeg/internal/text"
	"modpeg/internal/vm"
)

// testLogger returns a slog logger writing JSON lines to a builder,
// with the timestamp removed for determinism.
func testLogger() (*slog.Logger, *strings.Builder) {
	var b strings.Builder
	h := slog.NewJSONHandler(&b, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	return slog.New(h), &b
}

func TestOutcome(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{&vm.ParseError{Src: text.NewSource("in", "x"), Pos: 0}, "syntax"},
		{&vm.LimitError{Kind: vm.LimitTime}, "limit:deadline"},
		{&vm.LimitError{Kind: vm.LimitInput}, "limit:input-bytes"},
		{&vm.LimitError{Kind: vm.LimitMemo}, "limit:memo-bytes"},
		{&vm.EngineError{Panic: "boom"}, "engine"},
		{errors.New("other"), "error"},
	}
	for _, c := range cases {
		if got := telemetry.Outcome(c.err); got != c.want {
			t.Errorf("Outcome(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestLogParse(t *testing.T) {
	log, buf := testLogger()
	telemetry.LogParse(log, "calc.core", "req-1", 42, 3*time.Millisecond,
		vm.Stats{Calls: 7, MemoBytes: 1024}, nil)
	telemetry.LogParse(log, "calc.core", "req-2", 9, time.Millisecond,
		vm.Stats{}, &vm.LimitError{Kind: vm.LimitDepth})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var ok, limited map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &limited); err != nil {
		t.Fatal(err)
	}
	if ok["level"] != "INFO" || ok["outcome"] != "ok" || ok["grammar"] != "calc.core" ||
		ok["input_bytes"] != float64(42) || ok["calls"] != float64(7) {
		t.Errorf("success record = %v", ok)
	}
	if limited["level"] != "WARN" || limited["outcome"] != "limit:call-depth" {
		t.Errorf("limit record = %v", limited)
	}
	if _, present := limited["error"]; !present {
		t.Errorf("limit record missing error field: %v", limited)
	}

	// Engine errors log at Error; a nil logger is a no-op.
	log2, buf2 := testLogger()
	telemetry.LogParse(log2, "g", "n", 0, 0, vm.Stats{}, &vm.EngineError{Panic: "boom"})
	if !strings.Contains(buf2.String(), `"level":"ERROR"`) {
		t.Errorf("engine record = %s", buf2.String())
	}
	telemetry.LogParse(nil, "g", "n", 0, 0, vm.Stats{}, nil)
}

func TestLogRequests(t *testing.T) {
	log, buf := testLogger()
	h := telemetry.LogRequests(log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("hello"))
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/missing", nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var first, second map[string]any
	json.Unmarshal([]byte(lines[0]), &first)
	json.Unmarshal([]byte(lines[1]), &second)
	if first["level"] != "INFO" || first["path"] != "/ok" ||
		first["status"] != float64(200) || first["bytes"] != float64(5) {
		t.Errorf("first record = %v", first)
	}
	if second["level"] != "WARN" || second["status"] != float64(404) {
		t.Errorf("second record = %v", second)
	}

	// Nil logger short-circuits to the wrapped handler.
	direct := telemetry.LogRequests(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec = httptest.NewRecorder()
	direct.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Errorf("nil-logger wrapper altered handler: %d", rec.Code)
	}
}
