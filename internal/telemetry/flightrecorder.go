package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"modpeg/internal/vm"
)

// This file is the slow-parse flight recorder: a fixed-size ring of
// bounded records describing the worst parses a process served — the
// ones that crossed a latency threshold, blew a resource budget, or
// died in the engine. Where the latency histogram says "something sat
// in the 500ms bucket", the flight recorder says which request: its
// request and trace IDs, tenant and grammar@version, the limits it ran
// under, how far it got, and (when the sampler caught it) the hottest
// productions. The ring is deliberately small and lock-cheap — one
// mutexed slot write per recorded parse, and recorded parses are by
// definition rare and slow, so the lock never shows up in a profile.
// Healthy fast parses never touch it.

// FlightRecord is one captured parse. Field sizes are bounded by
// construction (IDs are capped upstream, profiles are top-10), so the
// ring's footprint is a few hundred KB at the default capacity.
type FlightRecord struct {
	// Time is when the parse finished (and was recorded).
	Time time.Time `json:"time"`
	// RequestID is the serve layer's X-Request-ID for the request.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the W3C trace ID propagated (or minted) for the
	// request — the join key against distributed traces and the
	// latency-histogram exemplars.
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the registry tenant, empty for static grammars.
	Tenant string `json:"tenant,omitempty"`
	// Grammar is the telemetry label the parse ran under
	// ("tenant/name@vN" for registry grammars).
	Grammar string `json:"grammar"`
	// Production is the root production requested, when not the
	// grammar default.
	Production string `json:"production,omitempty"`
	// InputBytes is the input size.
	InputBytes int `json:"input_bytes"`
	// DurationNS is the parse's server-side wall time.
	DurationNS int64 `json:"duration_ns"`
	// Outcome classifies how the parse ended: "ok", "syntax",
	// "limit:<kind>" (e.g. "limit:deadline"), or "engine".
	Outcome string `json:"outcome"`
	// Trigger says why the record was captured: "slow", "limit", or
	// "error".
	Trigger string `json:"trigger"`
	// FailPos is the farthest-failure input position for syntax and
	// limit outcomes (-1 when not applicable).
	FailPos int `json:"fail_pos"`
	// Limits are the effective budgets the parse ran under.
	Limits vm.Limits `json:"limits"`
	// TopProductions holds the hottest profile rows when the request
	// was explicitly profiled or the grammar's rolling sampled profile
	// had data — the "why was it slow" payload.
	TopProductions []vm.ProdProfile `json:"top_productions,omitempty"`
}

// FlightRecorder is the fixed-size ring. Safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightRecord
	next  int // slot the next record overwrites
	count int // live records, <= len(buf)
	total int64
}

// DefaultFlightRecords is the default ring capacity.
const DefaultFlightRecords = 256

// NewFlightRecorder builds a recorder holding the last size records
// (size <= 0 selects DefaultFlightRecords).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecords
	}
	return &FlightRecorder{buf: make([]FlightRecord, size)}
}

// Record captures one parse, evicting the oldest record when the ring
// is full.
func (f *FlightRecorder) Record(r FlightRecord) {
	f.mu.Lock()
	f.buf[f.next] = r
	f.next = (f.next + 1) % len(f.buf)
	if f.count < len(f.buf) {
		f.count++
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot copies the live records, newest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, f.count)
	for i := 0; i < f.count; i++ {
		out[i] = f.buf[(f.next-1-i+len(f.buf))%len(f.buf)]
	}
	return out
}

// Total returns the number of records ever captured (including ones
// the ring has since evicted).
func (f *FlightRecorder) Total() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Capacity returns the ring size.
func (f *FlightRecorder) Capacity() int { return len(f.buf) }

// FlightDump is the GET /debug/flightrecorder payload.
type FlightDump struct {
	Capacity int            `json:"capacity"`
	Total    int64          `json:"total_recorded"`
	Records  []FlightRecord `json:"records"`
}

// Dump snapshots the recorder into its wire form.
func (f *FlightRecorder) Dump() FlightDump {
	records := f.Snapshot()
	return FlightDump{Capacity: f.Capacity(), Total: f.Total(), Records: records}
}

// JSON renders the dump.
func (f *FlightRecorder) JSON() ([]byte, error) {
	return json.MarshalIndent(f.Dump(), "", "  ")
}
