package telemetry

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"time"

	"modpeg/internal/vm"
)

// Outcome classifies a parse error for logs and dashboards: "ok" (nil),
// "syntax" (*vm.ParseError), "limit:<kind>" (*vm.LimitError, e.g.
// "limit:deadline"), "engine" (*vm.EngineError), or "error" for
// anything else.
func Outcome(err error) string {
	if err == nil {
		return "ok"
	}
	var le *vm.LimitError
	if errors.As(err, &le) {
		return "limit:" + le.Kind.String()
	}
	var pe *vm.ParseError
	if errors.As(err, &pe) {
		return "syntax"
	}
	var ee *vm.EngineError
	if errors.As(err, &ee) {
		return "engine"
	}
	return "error"
}

// LogParse emits one structured record for a completed parse attempt.
// Successful and syntax-rejected parses log at Info (a rejection is the
// parser doing its job), limit stops at Warn (a client or budget
// problem worth noticing), and engine errors at Error (an engine bug).
func LogParse(log *slog.Logger, grammar, name string, inputBytes int, d time.Duration, stats vm.Stats, err error) {
	if log == nil {
		return
	}
	outcome := Outcome(err)
	level := slog.LevelInfo
	var le *vm.LimitError
	var ee *vm.EngineError
	switch {
	case errors.As(err, &ee):
		level = slog.LevelError
	case errors.As(err, &le):
		level = slog.LevelWarn
	}
	attrs := []any{
		slog.String("grammar", grammar),
		slog.String("input", name),
		slog.Int("input_bytes", inputBytes),
		slog.Duration("duration", d),
		slog.String("outcome", outcome),
		slog.Int("calls", stats.Calls),
		slog.Int("memo_bytes", stats.MemoBytes),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	log.Log(context.Background(), level, "parse", attrs...)
}

// LogRequests wraps next, emitting one structured slog record per HTTP
// request: method, path, status, response bytes, duration, and the
// request id (read from the X-Request-ID response header the serve
// layer's middleware stamps on every response, so client-supplied and
// generated ids log alike). A nil logger disables logging without a
// handler indirection.
func LogRequests(log *slog.Logger, next http.Handler) http.Handler {
	if log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		level := slog.LevelInfo
		if rec.status >= 500 {
			level = slog.LevelError
		} else if rec.status >= 400 {
			level = slog.LevelWarn
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
		}
		if id := rec.Header().Get("X-Request-ID"); id != "" {
			attrs = append(attrs, slog.String("request_id", id))
		}
		log.Log(r.Context(), level, "http", attrs...)
	})
}

// statusRecorder captures the status code and body size a handler
// wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}
