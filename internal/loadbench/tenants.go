package loadbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"modpeg/internal/grammars"
)

// Mixed-tenant mode (Config.Tenants > 0) exercises the registry data
// path under load: before the first phase every distinct corpus grammar
// is uploaded — bundled source, unchanged — to tenants t0..t{N-1}
// through POST /grammars/{tenant}/{name}, and each request in the ring
// then pins one tenant. The server resolves every such request through
// a registry lease (atomic active-version load + inflight count)
// instead of the static grammar table, so the run measures the swap
// machinery's steady-state cost, and hot-swapping a tenant's grammar
// mid-run is safe by construction.

// tenantNames returns the fixed tenant naming scheme t0..t{n-1}.
func tenantNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	return names
}

// registerTenants uploads every distinct corpus grammar to each tenant
// and fails fast on anything but a 201: a loadtest against a server
// without a registry (404s here) should not degenerate into a phase
// full of unknown-grammar errors.
func registerTenants(ctx context.Context, cfg *Config, names []string) error {
	seen := make(map[string]bool)
	for _, it := range cfg.Corpus {
		if seen[it.Grammar] {
			continue
		}
		seen[it.Grammar] = true
		src, err := grammars.Source(it.Grammar)
		if err != nil {
			return fmt.Errorf("loadbench: tenants mode needs bundled sources: %w", err)
		}
		body, err := json.Marshal(struct {
			Source string `json:"source"`
		}{src})
		if err != nil {
			return err
		}
		for _, tenant := range names {
			if err := uploadGrammar(ctx, cfg, tenant, it.Grammar, body); err != nil {
				return err
			}
		}
	}
	return nil
}

func uploadGrammar(ctx context.Context, cfg *Config, tenant, grammar string, body []byte) error {
	url := fmt.Sprintf("%s/grammars/%s/%s", cfg.BaseURL, tenant, grammar)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadbench: uploading %s/%s: %w", tenant, grammar, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("loadbench: uploading %s/%s: HTTP %d: %s",
			tenant, grammar, resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
