package loadbench

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modpeg"
	"modpeg/internal/registry"
	"modpeg/internal/serve"
)

// testCorpus is a small fast mix: two grammars, one guaranteed syntax
// error, so classification and error accounting are exercised without
// multi-kilobyte bodies.
func testCorpus() []Item {
	return []Item{
		{Name: "calc", Grammar: "calc.full", Input: "1+2*(3-4)", Expect: "ok", Weight: 3},
		{Name: "json", Grammar: "json.value", Input: `{"a":[1,2,3]}`, Expect: "ok", Weight: 2},
		{Name: "bad", Grammar: "calc.full", Input: "1+2*(3-4", Expect: "syntax", Weight: 1},
	}
}

func newServeEndpoint(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{Grammars: []string{"calc.full", "json.value"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoop(t *testing.T) {
	ts := newServeEndpoint(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:       ts.URL,
		Corpus:        testCorpus(),
		Mode:          ModeClosed,
		Workers:       4,
		Duration:      400 * time.Millisecond,
		Seed:          1,
		ScrapeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(rep.Phases))
	}
	ph := rep.Phases[0]
	if ph.Sent == 0 || ph.AchievedRPS <= 0 {
		t.Fatalf("no traffic recorded: sent=%d rps=%f", ph.Sent, ph.AchievedRPS)
	}
	if ph.Outcomes["ok"] == 0 || ph.Outcomes["syntax"] == 0 {
		t.Errorf("outcome mix missing classes: %v", ph.Outcomes)
	}
	if ph.Unexpected != 0 {
		t.Errorf("unexpected errors against healthy server: %d (%v)", ph.Unexpected, ph.Outcomes)
	}
	if ph.P50NS <= 0 || ph.P99NS < ph.P50NS || ph.MaxNS < ph.P99NS/2 {
		t.Errorf("implausible latency quantiles: p50=%d p99=%d max=%d", ph.P50NS, ph.P99NS, ph.MaxNS)
	}
	if ph.Server == nil {
		t.Fatal("ScrapeMetrics on but no server delta")
	}
	if got := ph.Server.After.ParsesStarted - ph.Server.Before.ParsesStarted; got <= 0 {
		t.Errorf("server parse counter did not move: delta %d", got)
	}
	if ph.Server.After.Goroutines <= 0 || ph.Server.After.HeapBytes <= 0 {
		t.Errorf("runtime gauges not scraped: %+v", ph.Server.After)
	}
	if rep.MaxGoroutines <= 0 || rep.MaxHeapBytes <= 0 {
		t.Errorf("report ceilings not derived: goroutines=%d heap=%d", rep.MaxGoroutines, rep.MaxHeapBytes)
	}
}

func TestOpenLoopPacing(t *testing.T) {
	ts := newServeEndpoint(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Corpus:   testCorpus(),
		Mode:     ModeOpen,
		RPS:      100,
		Duration: 500 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := rep.Phases[0]
	// 100 RPS for 0.5s schedules 50 requests; the pacer must send all
	// of them (the server answers in well under the phase duration) and
	// must not send more than scheduled.
	if ph.Sent < 40 || ph.Sent > 50 {
		t.Errorf("open loop sent %d requests, want ~50", ph.Sent)
	}
	if ph.TargetRPS != 100 {
		t.Errorf("TargetRPS = %f", ph.TargetRPS)
	}
}

func TestRampFindsSaturation(t *testing.T) {
	ts := newServeEndpoint(t)
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Corpus:  testCorpus(),
		Mode:    ModeRamp,
		Ramp: RampConfig{
			StartRPS: 20, StepRPS: 20, MaxRPS: 60,
			StepDuration: 250 * time.Millisecond,
		},
		SLO:  SLO{MaxP99: 5 * time.Second, MaxErrorRate: 0.001},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An in-process server at ≤60 RPS is far from saturation, so every
	// step passes and the last target is the reported saturation point.
	if rep.SaturationRPS != 60 {
		t.Errorf("saturation = %f, want 60 (phases: %d)", rep.SaturationRPS, len(rep.Phases))
	}
	if !rep.Pass {
		t.Error("ramp with all steps passing must report Pass")
	}
}

func TestRampStopsOnSLOFailure(t *testing.T) {
	// A server that always fails with an engine error: the first ramp
	// step exceeds any error budget, so the search stops immediately
	// and reports no sustainable rate.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "engine", "message": "boom"})
	}))
	defer broken.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: broken.URL,
		Corpus:  testCorpus(),
		Mode:    ModeRamp,
		Ramp: RampConfig{
			StartRPS: 40, StepRPS: 40, MaxRPS: 200,
			StepDuration: 200 * time.Millisecond,
		},
		SLO:  SLO{MaxP99: time.Second, MaxErrorRate: 0.001},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 {
		t.Errorf("ramp ran %d phases after SLO failure, want 1", len(rep.Phases))
	}
	if rep.SaturationRPS != 0 || rep.Pass {
		t.Errorf("broken server reported sustainable: saturation=%f pass=%v",
			rep.SaturationRPS, rep.Pass)
	}
	if rep.Phases[0].Outcomes["engine"] == 0 {
		t.Errorf("engine errors not classified: %v", rep.Phases[0].Outcomes)
	}
}

func TestOutcomeClassification(t *testing.T) {
	ts := newServeEndpoint(t)
	c := &client{cfg: &Config{BaseURL: ts.URL, Client: http.DefaultClient}}
	cases := []struct {
		item Item
		want string
	}{
		{Item{Grammar: "calc.full", Input: "1+2"}, "ok"},
		{Item{Grammar: "calc.full", Input: "1+"}, "syntax"},
		{Item{Grammar: "no.such", Input: "x"}, "unknown-grammar"},
	}
	for _, tc := range cases {
		ring := buildRing([]Item{tc.item}, 0, false, nil)
		if got := c.do(context.Background(), ring[0]); got != tc.want {
			t.Errorf("classify %q/%q = %q, want %q", tc.item.Grammar, tc.item.Input, got, tc.want)
		}
	}
	// A body that is not a typed error falls back to the status code.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer plain.Close()
	c2 := &client{cfg: &Config{BaseURL: plain.URL, Client: http.DefaultClient}}
	ring := buildRing([]Item{{Grammar: "calc.full", Input: "1"}}, 0, false, nil)
	if got := c2.do(context.Background(), ring[0]); got != "http:418" {
		t.Errorf("untyped error body classified as %q, want http:418", got)
	}
}

func TestUnexpectedMatrix(t *testing.T) {
	cases := []struct {
		expect, outcome string
		want            bool
	}{
		{"ok", "ok", false},
		{"ok", "syntax", true},
		{"ok", "limit:deadline", true},
		{"syntax", "syntax", false},
		{"syntax", "ok", true},
		{"reject", "syntax", false},
		{"reject", "limit:call-depth", false},
		{"reject", "ok", true},
		{"any", "ok", false},
		{"any", "syntax", false},
		{"any", "limit:memo-bytes", false},
		{"any", "transport", true},
		{"any", "engine", true},
		{"any", "http:503", true},
		{"any", "http:404", false},
	}
	for _, tc := range cases {
		if got := unexpected(tc.expect, tc.outcome); got != tc.want {
			t.Errorf("unexpected(%q, %q) = %v, want %v", tc.expect, tc.outcome, got, tc.want)
		}
	}
}

func TestBuildRingDeterministic(t *testing.T) {
	corpus := DefaultCorpus(true)
	a, b := buildRing(corpus, 42, false, nil), buildRing(corpus, 42, false, nil)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("ring lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("same seed, different order at %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
	// Weights must expand: calc-64B (weight 6) appears 6 times.
	count := 0
	for _, p := range a {
		if p.Name == "calc-64B" {
			count++
		}
	}
	if count != 6 {
		t.Errorf("weight expansion: calc-64B appears %d times, want 6", count)
	}
}

func TestReportTextAndJSON(t *testing.T) {
	rep := &Report{
		Target: "http://x", Mode: ModeRamp, CorpusItems: 3, Seed: 7,
		SLO: SLO{MaxP99: 50 * time.Millisecond, MaxErrorRate: 0.001},
		Phases: []*Phase{
			{Label: "ramp/100rps", Mode: ModeRamp, TargetRPS: 100, Workers: 64,
				DurationNS: int64(time.Second), Sent: 100, AchievedRPS: 99.5,
				P50NS: 800_000, P99NS: 4_000_000, P999NS: 9_000_000, MaxNS: 12_000_000,
				Outcomes: map[string]int64{"ok": 98, "syntax": 2}, SLOPass: true,
				Server: &ServerDelta{
					Before: ServerSample{Goroutines: 10, HeapBytes: 1 << 20, ParsesStarted: 5},
					After:  ServerSample{Goroutines: 14, HeapBytes: 3 << 20, ParsesStarted: 105},
				}},
			{Label: "ramp/200rps", Mode: ModeRamp, TargetRPS: 200, Workers: 64,
				DurationNS: int64(time.Second), Sent: 200, AchievedRPS: 180,
				P50NS: 2_000_000, P99NS: 80_000_000, P999NS: 120_000_000, MaxNS: 150_000_000,
				Outcomes:   map[string]int64{"ok": 190, "limit:deadline": 10},
				Unexpected: 10, ErrorRate: 0.05, SLOPass: false},
		},
		SaturationRPS: 100,
	}
	rep.finish()
	if !rep.Pass {
		t.Error("ramp with a passing saturation step must pass")
	}
	if gp := rep.GatePhase(); gp == nil || gp.Label != "ramp/100rps" {
		t.Errorf("GatePhase = %v, want the passing step", gp)
	}
	if rep.MaxGoroutines != 14 || rep.MaxHeapBytes != 3<<20 {
		t.Errorf("ceilings: goroutines=%d heap=%d", rep.MaxGoroutines, rep.MaxHeapBytes)
	}

	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"saturation: 100 RPS",
		"ramp/100rps", "ramp/200rps", "FAIL", "pass",
		"limit:deadline=10", "ok=288",
		"goroutines=14", "verdict: PASS",
		"p99", "4.0ms", "80.0ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SaturationRPS != 100 || len(back.Phases) != 2 || !back.Pass {
		t.Errorf("JSON round trip lost fields: %+v", back)
	}
	if back.Phases[1].Outcomes["limit:deadline"] != 10 {
		t.Errorf("outcome map lost in JSON: %v", back.Phases[1].Outcomes)
	}
}

func TestScrapeLiveEndpoint(t *testing.T) {
	ts := newServeEndpoint(t)
	s, err := Scrape(context.Background(), http.DefaultClient, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Goroutines <= 0 || s.HeapBytes <= 0 || s.UptimeSeconds <= 0 {
		t.Errorf("gauges not populated: %+v", s)
	}
}

// TestMixedTenantMode drives the registry data path: grammars are
// pre-registered per tenant over HTTP and every request leases a
// tenant's active version instead of hitting the static table.
func TestMixedTenantMode(t *testing.T) {
	reg, err := registry.New(registry.Config{
		DefaultLimits: modpeg.Limits{
			MaxInputBytes: 1 << 20, MaxCallDepth: 100000,
			MaxParseDuration: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Corpus:   testCorpus(),
		Mode:     ModeClosed,
		Workers:  4,
		Duration: 300 * time.Millisecond,
		Seed:     1,
		Tenants:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants != 3 {
		t.Errorf("report tenants = %d, want 3", rep.Tenants)
	}
	ph := rep.Phases[0]
	if ph.Outcomes["ok"] == 0 || ph.Outcomes["syntax"] == 0 {
		t.Errorf("outcome mix missing classes: %v", ph.Outcomes)
	}
	if ph.Unexpected != 0 {
		t.Errorf("unexpected errors in tenant mode: %d (%v)", ph.Unexpected, ph.Outcomes)
	}
	// All three tenants were registered and served.
	l := reg.List()
	if len(l.Tenants) != 3 {
		t.Fatalf("registry holds %d tenants, want 3", len(l.Tenants))
	}
	for _, ti := range l.Tenants {
		if len(ti.Grammars) != 2 {
			t.Errorf("tenant %s has %d grammars, want 2 (calc.full, json.value)", ti.Name, len(ti.Grammars))
		}
	}
}

// TestMixedTenantModeNeedsRegistry: a server without a registry fails
// the pre-registration step loudly instead of producing a phase of
// errors.
func TestMixedTenantModeNeedsRegistry(t *testing.T) {
	ts := newServeEndpoint(t)
	_, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Corpus:   testCorpus(),
		Mode:     ModeClosed,
		Workers:  1,
		Duration: 100 * time.Millisecond,
		Tenants:  2,
	})
	if err == nil || !strings.Contains(err.Error(), "uploading") {
		t.Fatalf("err = %v, want an upload failure", err)
	}
}
