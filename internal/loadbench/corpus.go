// Package loadbench is the capacity harness behind `modpeg loadtest`:
// it drives a running `modpeg serve` instance with mixed-grammar,
// mixed-size, partly adversarial traffic and reports client-side
// latency distributions (p50/p99/p999 from the same fixed-bucket
// histogram machinery the server's telemetry uses), achieved
// throughput, an error breakdown by typed-error kind, and server-side
// runtime telemetry scraped from /metrics before and after each phase.
//
// Three modes cover the standard load-testing questions:
//
//   - closed loop (N workers, back-to-back requests): what does the
//     service do at full pull — the throughput ceiling for a given
//     concurrency.
//   - open loop (fixed target RPS): what latency does a real arrival
//     rate see. The pacer is coordinated-omission-safe: every request
//     has a scheduled send time and latency is measured from that
//     schedule, so a stalled server inflates the recorded tail instead
//     of silently pausing the load.
//   - step ramp: open-loop phases at increasing RPS until the SLO
//     (p99 ceiling, unexpected-error rate) fails — the last passing
//     target is the max sustainable RPS.
package loadbench

import (
	"encoding/json"
	"math/rand"

	"modpeg/internal/workload"
)

// Item is one request template in the traffic mix.
type Item struct {
	// Name identifies the item in reports ("calc-1KB", "adv-deep-parens").
	Name string
	// Grammar is the top module the request parses against.
	Grammar string
	// Input is the text to parse.
	Input string
	// Expect classifies the response the server should give:
	//
	//	"ok"     — 200 with a value
	//	"syntax" — a typed syntax rejection (422)
	//	"reject" — any typed rejection (syntax or limit)
	//	"any"    — adversarial: whatever the server's budgets decide;
	//	           only transport failures, engine errors, and 5xx
	//	           count as unexpected
	//
	// A response outside the expectation counts as an unexpected error
	// against the SLO's error budget.
	Expect string
	// Weight is the item's relative frequency in the mix.
	Weight int
}

// DefaultCorpus builds the standard traffic mix: deterministic
// realistic corpora from internal/workload across three grammar
// families and three size decades, plus (when adversarial is true) the
// worst-case shapes Ford's packrat analysis says must be part of any
// throughput claim — deep nesting, guaranteed syntax errors, and
// oversized inputs that pressure the memo arenas. Grammars used:
// calc.full, json.value, java.core.
func DefaultCorpus(adversarial bool) []Item {
	items := []Item{
		{Name: "calc-64B", Grammar: "calc.full", Expect: "ok", Weight: 6,
			Input: workload.Expression(workload.Config{Seed: 11, Size: 64})},
		{Name: "calc-1KB", Grammar: "calc.full", Expect: "ok", Weight: 4,
			Input: workload.Expression(workload.Config{Seed: 12, Size: 1 << 10})},
		{Name: "calc-8KB", Grammar: "calc.full", Expect: "ok", Weight: 2,
			Input: workload.Expression(workload.Config{Seed: 13, Size: 8 << 10})},
		{Name: "json-256B", Grammar: "json.value", Expect: "ok", Weight: 6,
			Input: workload.JSONDoc(workload.Config{Seed: 21, Size: 256})},
		{Name: "json-4KB", Grammar: "json.value", Expect: "ok", Weight: 3,
			Input: workload.JSONDoc(workload.Config{Seed: 22, Size: 4 << 10})},
		{Name: "json-32KB", Grammar: "json.value", Expect: "ok", Weight: 1,
			Input: workload.JSONDoc(workload.Config{Seed: 23, Size: 32 << 10})},
		{Name: "java-2KB", Grammar: "java.core", Expect: "ok", Weight: 3,
			Input: workload.JavaProgram(workload.Config{Seed: 31, Size: 2 << 10})},
		{Name: "java-16KB", Grammar: "java.core", Expect: "ok", Weight: 1,
			Input: workload.JavaProgram(workload.Config{Seed: 32, Size: 16 << 10})},
	}
	if adversarial {
		items = append(items,
			Item{Name: "adv-deep-parens", Grammar: "calc.full", Expect: "any", Weight: 1,
				Input: workload.DeepExpression(2000)},
			Item{Name: "adv-deep-json", Grammar: "json.value", Expect: "any", Weight: 1,
				Input: workload.DeepJSONArray(2000)},
			Item{Name: "adv-syntax", Grammar: "calc.full", Expect: "syntax", Weight: 2,
				Input: "1+2*(3-4"},
			Item{Name: "adv-huge-expr", Grammar: "calc.full", Expect: "any", Weight: 1,
				Input: workload.Expression(workload.Config{Seed: 41, Size: 64 << 10})},
		)
	}
	return items
}

// preparedItem is an Item with its POST /parse body marshaled once.
type preparedItem struct {
	Item
	body []byte
}

// buildRing expands the weighted corpus into a deterministic shuffled
// request ring: each item appears Weight times, the order is fixed by
// seed, and workers walk the ring round-robin — so every run with the
// same corpus and seed issues the same request sequence. With
// omitValues set, every request asks the server to skip the AST in the
// response, isolating parse cost from serialization cost. A non-empty
// tenants list fans each item out once per tenant (the request body's
// tenant field routes it through the registry), so the mix is uniform
// across tenants.
func buildRing(corpus []Item, seed int64, omitValues bool, tenants []string) []*preparedItem {
	variants := tenants
	if len(variants) == 0 {
		variants = []string{""}
	}
	var ring []*preparedItem
	for i := range corpus {
		it := &corpus[i]
		for _, tenant := range variants {
			body, err := json.Marshal(struct {
				Grammar   string `json:"grammar"`
				Input     string `json:"input"`
				Name      string `json:"name"`
				Tenant    string `json:"tenant,omitempty"`
				OmitValue bool   `json:"omit_value,omitempty"`
			}{it.Grammar, it.Input, it.Name, tenant, omitValues})
			if err != nil {
				continue // statically impossible: strings always marshal
			}
			p := &preparedItem{Item: *it, body: body}
			w := it.Weight
			if w <= 0 {
				w = 1
			}
			for n := 0; n < w; n++ {
				ring = append(ring, p)
			}
		}
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(ring), func(i, j int) { ring[i], ring[j] = ring[j], ring[i] })
	return ring
}
