package loadbench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"modpeg/internal/telemetry"
)

// ReportSchemaVersion identifies the LOADTEST.json layout. Version 1
// reports predate the field (a report without schema_version is v1);
// version 2 added schema_version and worst_requests. See
// docs/LOADTEST.md for the compatibility rules.
const ReportSchemaVersion = 2

// Phase is the measured result of one load phase.
type Phase struct {
	// Label names the phase in reports, e.g. "closed/w8" or "ramp/200rps".
	Label string `json:"label"`
	// Mode is the run mode that produced the phase.
	Mode string `json:"mode"`
	// TargetRPS is the open-loop arrival rate; 0 for closed loop.
	TargetRPS float64 `json:"target_rps,omitempty"`
	// Workers is the concurrency (closed loop) or in-flight cap (open).
	Workers int `json:"workers"`
	// DurationNS is the measured phase wall time.
	DurationNS int64 `json:"duration_ns"`
	// Sent is the number of requests that completed and were recorded.
	Sent int64 `json:"sent"`
	// AchievedRPS is Sent divided by the phase wall time.
	AchievedRPS float64 `json:"achieved_rps"`
	// P50NS/P99NS/P999NS are client-side latency quantiles; open-loop
	// latencies are measured from the scheduled send time.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	// MaxNS is the worst observed latency (exact, not bucketed).
	MaxNS int64 `json:"max_ns"`
	// Outcomes counts responses by class: "ok", "syntax",
	// "limit:<kind>", "engine", "transport", "http:<status>", ...
	Outcomes map[string]int64 `json:"outcomes"`
	// Unexpected counts responses outside their corpus item's Expect
	// class; ErrorRate is Unexpected/Sent.
	Unexpected int64   `json:"unexpected_errors"`
	ErrorRate  float64 `json:"error_rate"`
	// SLOPass records whether the phase met the configured SLO.
	SLOPass bool `json:"slo_pass"`
	// Server is the /metrics delta around the phase, when scraped.
	Server *ServerDelta `json:"server,omitempty"`
}

// ServerDelta brackets a phase with server-side telemetry scrapes.
type ServerDelta struct {
	Before ServerSample `json:"before"`
	After  ServerSample `json:"after"`
}

// Report is the full loadtest result; its JSON form is the
// LOADTEST.json artifact.
type Report struct {
	// SchemaVersion is ReportSchemaVersion; consumers should treat an
	// absent field as version 1.
	SchemaVersion int `json:"schema_version"`
	// Target is the serve endpoint the run drove.
	Target string `json:"target"`
	// Mode is the configured run mode.
	Mode string `json:"mode"`
	// CorpusItems is the number of distinct items in the traffic mix.
	CorpusItems int `json:"corpus_items"`
	// Tenants is the mixed-tenant fan-out (0 = static grammar table).
	Tenants int `json:"tenants,omitempty"`
	// Seed is the corpus shuffle seed (reruns with the same seed issue
	// the same request sequence).
	Seed int64 `json:"seed"`
	// SLO is the per-phase pass criterion; zero means ungated.
	SLO SLO `json:"slo"`
	// Phases are the measured phases in execution order.
	Phases []*Phase `json:"phases"`
	// SaturationRPS is the last ramp target that met the SLO (0 when
	// the first step failed, or in non-ramp modes).
	SaturationRPS float64 `json:"saturation_rps,omitempty"`
	// Pass is the run verdict: every phase met the SLO (ramp mode
	// instead requires at least one passing step).
	Pass bool `json:"pass"`
	// MaxGoroutines/MaxHeapBytes are server-side ceilings across all
	// phase scrapes (0 when scraping was off).
	MaxGoroutines int64 `json:"max_goroutines,omitempty"`
	MaxHeapBytes  int64 `json:"max_heap_bytes,omitempty"`
	// WorstRequests are the slowest entries in the server's slow-parse
	// flight recorder after the last phase, worst first — the named
	// tail of the latency distribution the quantile rows summarize.
	// Empty when scraping is off or the server recorded nothing.
	WorstRequests []telemetry.FlightRecord `json:"worst_requests,omitempty"`
}

// finish derives the run verdict and server-side ceilings.
func (r *Report) finish() {
	r.Pass = len(r.Phases) > 0
	for _, ph := range r.Phases {
		if !ph.SLOPass && r.Mode != ModeRamp {
			r.Pass = false
		}
		if ph.Server != nil {
			for _, s := range []ServerSample{ph.Server.Before, ph.Server.After} {
				if s.Goroutines > r.MaxGoroutines {
					r.MaxGoroutines = s.Goroutines
				}
				if s.HeapBytes > r.MaxHeapBytes {
					r.MaxHeapBytes = s.HeapBytes
				}
			}
		}
	}
	if r.Mode == ModeRamp {
		r.Pass = r.SaturationRPS > 0
	}
}

// GatePhase returns the phase CI gates should judge: the last
// SLO-passing phase (in ramp mode, the saturation step), falling back
// to the first phase when none passed.
func (r *Report) GatePhase() *Phase {
	var last *Phase
	for _, ph := range r.Phases {
		if ph.SLOPass {
			last = ph
		}
	}
	if last == nil && len(r.Phases) > 0 {
		return r.Phases[0]
	}
	return last
}

// JSON renders the report as the indented LOADTEST.json artifact.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteText renders the human-readable report: one table row per
// phase, the SLO verdict, the error breakdown, and the server-side
// telemetry deltas.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest %s  mode=%s  corpus=%d items  seed=%d\n",
		r.Target, r.Mode, r.CorpusItems, r.Seed)
	if r.Tenants > 0 {
		fmt.Fprintf(&b, "mixed-tenant registry mode: %d tenants\n", r.Tenants)
	}
	if r.SLO.enabled() {
		fmt.Fprintf(&b, "SLO: p99 <= %s, unexpected-error rate <= %.2f%%\n",
			time.Duration(r.SLO.MaxP99), r.SLO.MaxErrorRate*100)
	}
	b.WriteString("\n")

	rows := [][]string{{"phase", "target", "achieved", "sent", "p50", "p99", "p99.9", "max", "err%", "slo"}}
	for _, ph := range r.Phases {
		target := "-"
		if ph.TargetRPS > 0 {
			target = fmt.Sprintf("%.0f", ph.TargetRPS)
		}
		verdict := "pass"
		if !ph.SLOPass {
			verdict = "FAIL"
		}
		if !r.SLO.enabled() {
			verdict = "-"
		}
		rows = append(rows, []string{
			ph.Label, target,
			fmt.Sprintf("%.1f", ph.AchievedRPS),
			fmt.Sprintf("%d", ph.Sent),
			fmtDur(ph.P50NS), fmtDur(ph.P99NS), fmtDur(ph.P999NS), fmtDur(ph.MaxNS),
			fmt.Sprintf("%.2f", ph.ErrorRate*100),
			verdict,
		})
	}
	writeAligned(&b, rows)

	if r.Mode == ModeRamp {
		if r.SaturationRPS > 0 {
			fmt.Fprintf(&b, "\nsaturation: %.0f RPS (last target meeting the SLO)\n", r.SaturationRPS)
		} else {
			b.WriteString("\nsaturation: none (first ramp step failed the SLO)\n")
		}
	}

	total := make(map[string]int64)
	var sent int64
	for _, ph := range r.Phases {
		sent += ph.Sent
		for k, v := range ph.Outcomes {
			total[k] += v
		}
	}
	keys := make([]string, 0, len(total))
	for k := range total {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "\noutcomes (%d requests):", sent)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, total[k])
	}
	b.WriteString("\n")

	if len(r.WorstRequests) > 0 {
		fmt.Fprintf(&b, "\nworst requests (server flight recorder, top %d by duration):\n", len(r.WorstRequests))
		wr := [][]string{{"duration", "grammar", "outcome", "trigger", "bytes", "trace"}}
		for _, rec := range r.WorstRequests {
			trace := rec.TraceID
			if len(trace) > 16 {
				trace = trace[:16] + "…"
			}
			wr = append(wr, []string{
				fmtDur(rec.DurationNS), rec.Grammar, rec.Outcome, rec.Trigger,
				fmt.Sprintf("%d", rec.InputBytes), trace,
			})
		}
		writeAligned(&b, wr)
	}

	if r.MaxGoroutines > 0 || r.MaxHeapBytes > 0 {
		fmt.Fprintf(&b, "server ceilings: goroutines=%d heap=%s\n",
			r.MaxGoroutines, fmtBytes(r.MaxHeapBytes))
		if last := r.Phases[len(r.Phases)-1]; last.Server != nil {
			d := last.Server
			fmt.Fprintf(&b, "server (last phase): parses +%d, failed +%d, limit-stops +%d, gc-pause +%.1fms\n",
				d.After.ParsesStarted-d.Before.ParsesStarted,
				d.After.ParsesFailed-d.Before.ParsesFailed,
				d.After.LimitStops-d.Before.LimitStops,
				(d.After.GCPauseSeconds-d.Before.GCPauseSeconds)*1e3)
		}
	}
	if r.SLO.enabled() {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "verdict: %s\n", verdict)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeAligned renders rows as a left-aligned column table.
func writeAligned(b *strings.Builder, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
}

// fmtDur renders nanoseconds compactly (µs below 1ms, ms below 10s).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
