package loadbench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"modpeg/internal/telemetry"
)

// ServerSample is one scrape of the serve process's runtime telemetry:
// the modpeg_* gauges and parse counters a capacity run correlates
// with client-side latency.
type ServerSample struct {
	Goroutines       int64   `json:"goroutines"`
	HeapBytes        int64   `json:"heap_bytes"`
	GCPauseSeconds   float64 `json:"gc_pause_seconds"`
	InflightRequests int64   `json:"inflight_requests"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	ParsesStarted    int64   `json:"parses_started"`
	ParsesFailed     int64   `json:"parses_failed"`
	LimitStops       int64   `json:"limit_stops"`
}

// scrapeFields maps exposition sample names to ServerSample fields.
var scrapeFields = map[string]func(*ServerSample, float64){
	"modpeg_goroutines":           func(s *ServerSample, v float64) { s.Goroutines = int64(v) },
	"modpeg_heap_bytes":           func(s *ServerSample, v float64) { s.HeapBytes = int64(v) },
	"modpeg_gc_pause_seconds":     func(s *ServerSample, v float64) { s.GCPauseSeconds = v },
	"modpeg_inflight_requests":    func(s *ServerSample, v float64) { s.InflightRequests = int64(v) },
	"modpeg_uptime_seconds":       func(s *ServerSample, v float64) { s.UptimeSeconds = v },
	"modpeg_parses_started_total": func(s *ServerSample, v float64) { s.ParsesStarted = int64(v) },
	"modpeg_parses_failed_total":  func(s *ServerSample, v float64) { s.ParsesFailed = int64(v) },
	"modpeg_limit_stops_total":    func(s *ServerSample, v float64) { s.LimitStops = int64(v) },
}

// Scrape fetches baseURL/metrics and extracts the runtime gauges and
// parse counters. Labeled samples (per-grammar counters, histogram
// buckets) are skipped; only the exact unlabeled names in scrapeFields
// are read.
func Scrape(ctx context.Context, client *http.Client, baseURL string) (*ServerSample, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadbench: scrape %s/metrics: status %d", baseURL, resp.StatusCode)
	}
	s := &ServerSample{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		set, ok := scrapeFields[line[:sp]]
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		set(s, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// worstRequestsTopK bounds the report's worst-requests section.
const worstRequestsTopK = 10

// ScrapeWorstRequests fetches the server's slow-parse flight recorder
// (GET /debug/flightrecorder) and returns the top n records by
// duration, worst first. A server without the endpoint (or with an
// empty ring) yields nil — the section simply stays out of the report.
func ScrapeWorstRequests(ctx context.Context, client *http.Client, baseURL string, n int) []telemetry.FlightRecord {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/flightrecorder", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var dump telemetry.FlightDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil
	}
	recs := dump.Records
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].DurationNS > recs[j].DurationNS })
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}
