package loadbench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"modpeg/internal/vm"
)

// Mode selects how load is generated.
const (
	// ModeClosed runs Workers goroutines issuing requests back to back.
	ModeClosed = "closed"
	// ModeOpen paces requests at a fixed target RPS on a schedule that
	// does not depend on response times (coordinated-omission-safe).
	ModeOpen = "open"
	// ModeRamp runs open-loop phases at increasing RPS until the SLO
	// fails, reporting the last passing target as the saturation point.
	ModeRamp = "ramp"
)

// SLO is the pass criterion applied to each phase.
type SLO struct {
	// MaxP99 is the p99 latency ceiling; 0 disables the criterion.
	MaxP99 time.Duration `json:"max_p99_ns"`
	// MaxErrorRate is the tolerated fraction of unexpected errors
	// (responses outside the corpus item's Expect class), e.g. 0.001
	// for 0.1%.
	MaxErrorRate float64 `json:"max_error_rate"`
}

func (s SLO) enabled() bool { return s.MaxP99 > 0 || s.MaxErrorRate > 0 }

// RampConfig shapes the step-ramp saturation search.
type RampConfig struct {
	StartRPS     float64       `json:"start_rps"`
	StepRPS      float64       `json:"step_rps"`
	MaxRPS       float64       `json:"max_rps"`
	StepDuration time.Duration `json:"step_duration_ns"`
}

// Config describes one loadtest run.
type Config struct {
	// BaseURL is the serve endpoint root, e.g. "http://localhost:8317".
	BaseURL string
	// Client is the HTTP client; nil uses a keep-alive tuned default.
	Client *http.Client
	// Corpus is the traffic mix; empty uses DefaultCorpus(true).
	Corpus []Item
	// Mode is ModeClosed, ModeOpen, or ModeRamp.
	Mode string
	// Workers is the closed-loop concurrency, and the cap on in-flight
	// requests in open-loop/ramp modes (0 means 64).
	Workers int
	// RPS is the open-loop target arrival rate.
	RPS float64
	// Duration bounds each closed- or open-loop phase.
	Duration time.Duration
	// Ramp shapes ModeRamp; zero values get defaults from RPS/Duration.
	Ramp RampConfig
	// SLO gates each phase; the zero value disables gating.
	SLO SLO
	// Seed fixes the corpus shuffle so runs are reproducible.
	Seed int64
	// OmitValues asks the server to drop the AST from every response
	// (ParseRequest.OmitValue), measuring parse capacity rather than
	// parse + serialization capacity.
	OmitValues bool
	// Tenants, when positive, switches to mixed-tenant registry mode:
	// every distinct corpus grammar is uploaded to tenants t0..t{N-1}
	// through the registry API before the first phase, and each request
	// pins one tenant so the whole run flows through registry leases
	// instead of the static grammar table. Needs a registry-enabled
	// server.
	Tenants int
	// Warmup, when positive, runs a short unmeasured closed-loop burst
	// before the first phase so parser caches and connection pools are
	// hot.
	Warmup time.Duration
	// ScrapeMetrics samples the server's /metrics endpoint around each
	// phase and attaches the delta to the report.
	ScrapeMetrics bool
}

func (cfg *Config) withDefaults() error {
	if cfg.BaseURL == "" {
		return errors.New("loadbench: BaseURL required")
	}
	if cfg.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     30 * time.Second,
		}
		cfg.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	if len(cfg.Corpus) == 0 {
		cfg.Corpus = DefaultCorpus(true)
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeClosed
	}
	if cfg.Workers <= 0 {
		if cfg.Mode == ModeClosed {
			cfg.Workers = 8
		} else {
			cfg.Workers = 64
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	switch cfg.Mode {
	case ModeClosed:
	case ModeOpen:
		if cfg.RPS <= 0 {
			return errors.New("loadbench: open mode needs RPS > 0")
		}
	case ModeRamp:
		if cfg.Ramp.StartRPS <= 0 {
			cfg.Ramp.StartRPS = 50
		}
		if cfg.Ramp.StepRPS <= 0 {
			cfg.Ramp.StepRPS = cfg.Ramp.StartRPS
		}
		if cfg.Ramp.MaxRPS <= 0 {
			cfg.Ramp.MaxRPS = cfg.Ramp.StartRPS * 20
		}
		if cfg.Ramp.StepDuration <= 0 {
			cfg.Ramp.StepDuration = cfg.Duration
		}
		if !cfg.SLO.enabled() {
			cfg.SLO = SLO{MaxP99: 50 * time.Millisecond, MaxErrorRate: 0.001}
		}
	default:
		return fmt.Errorf("loadbench: unknown mode %q", cfg.Mode)
	}
	return nil
}

// Run executes the configured loadtest and returns its report. The
// context cancels the run early; phases completed so far stay in the
// report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	var tenants []string
	if cfg.Tenants > 0 {
		tenants = tenantNames(cfg.Tenants)
		if err := registerTenants(ctx, &cfg, tenants); err != nil {
			return nil, err
		}
	}
	ring := buildRing(cfg.Corpus, cfg.Seed, cfg.OmitValues, tenants)
	if len(ring) == 0 {
		return nil, errors.New("loadbench: empty corpus")
	}
	c := &client{cfg: &cfg, ring: ring}
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		Target:        cfg.BaseURL,
		Mode:          cfg.Mode,
		CorpusItems:   len(cfg.Corpus),
		Tenants:       cfg.Tenants,
		SLO:           cfg.SLO,
		Seed:          cfg.Seed,
	}

	if cfg.Warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, cfg.Warmup)
		c.runClosed(warmCtx, 2, cfg.Warmup, newPhaseStats())
		cancel()
	}

	switch cfg.Mode {
	case ModeClosed:
		ph := c.phase(ctx, fmt.Sprintf("closed/w%d", cfg.Workers), 0, cfg.Duration)
		rep.Phases = append(rep.Phases, ph)
	case ModeOpen:
		ph := c.phase(ctx, fmt.Sprintf("open/%grps", cfg.RPS), cfg.RPS, cfg.Duration)
		rep.Phases = append(rep.Phases, ph)
	case ModeRamp:
		for rps := cfg.Ramp.StartRPS; rps <= cfg.Ramp.MaxRPS+1e-9; rps += cfg.Ramp.StepRPS {
			if ctx.Err() != nil {
				break
			}
			ph := c.phase(ctx, fmt.Sprintf("ramp/%grps", rps), rps, cfg.Ramp.StepDuration)
			rep.Phases = append(rep.Phases, ph)
			if !ph.SLOPass {
				break
			}
			rep.SaturationRPS = rps
		}
	}
	if cfg.ScrapeMetrics {
		rep.WorstRequests = ScrapeWorstRequests(ctx, cfg.Client, cfg.BaseURL, worstRequestsTopK)
	}
	rep.finish()
	if ctx.Err() != nil && len(rep.Phases) == 0 {
		return rep, ctx.Err()
	}
	return rep, nil
}

// client holds the per-run request machinery shared by all phases.
type client struct {
	cfg  *Config
	ring []*preparedItem
	next atomic.Uint64 // ring cursor, shared across phases
}

// phase runs one measured phase (targetRPS == 0 means closed loop) and
// assembles its Phase record, including the /metrics delta when
// scraping is on.
func (c *client) phase(ctx context.Context, label string, targetRPS float64, d time.Duration) *Phase {
	st := newPhaseStats()
	var before, after *ServerSample
	if c.cfg.ScrapeMetrics {
		if s, err := Scrape(ctx, c.cfg.Client, c.cfg.BaseURL); err == nil {
			before = s
		}
	}
	start := time.Now()
	if targetRPS > 0 {
		c.runOpen(ctx, targetRPS, d, st)
	} else {
		c.runClosed(ctx, c.cfg.Workers, d, st)
	}
	elapsed := time.Since(start)
	if c.cfg.ScrapeMetrics {
		if s, err := Scrape(ctx, c.cfg.Client, c.cfg.BaseURL); err == nil {
			after = s
		}
	}
	ph := st.phase(label, c.cfg.Mode, targetRPS, c.cfg.Workers, elapsed)
	if before != nil && after != nil {
		ph.Server = &ServerDelta{Before: *before, After: *after}
	}
	ph.SLOPass = evalSLO(ph, c.cfg.SLO, targetRPS)
	return ph
}

// runClosed issues requests from workers goroutines back to back until
// the deadline.
func (c *client) runClosed(ctx context.Context, workers int, d time.Duration, st *phaseStats) {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				it := c.ring[c.next.Add(1)%uint64(len(c.ring))]
				t0 := time.Now()
				outcome := c.do(ctx, it)
				if ctx.Err() != nil && outcome == "transport" {
					return // deadline cut the request short; not a server error
				}
				st.record(it, outcome, time.Since(t0))
			}
		}()
	}
	wg.Wait()
}

// runOpen paces requests at targetRPS. Every request has a scheduled
// send time computed from the phase start; latency is measured from
// that schedule, so time spent waiting behind a slow server is charged
// to the response (no coordinated omission). The in-flight request
// count is capped at cfg.Workers; when the cap is hit the pacer blocks,
// and the queueing delay shows up in the recorded latencies.
func (c *client) runOpen(ctx context.Context, targetRPS float64, d time.Duration, st *phaseStats) {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	interval := time.Duration(float64(time.Second) / targetRPS)
	total := int(targetRPS * d.Seconds())
	sem := make(chan struct{}, c.cfg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < total && ctx.Err() == nil; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if wait := time.Until(sched); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		it := c.ring[c.next.Add(1)%uint64(len(c.ring))]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			outcome := c.do(ctx, it)
			if ctx.Err() != nil && outcome == "transport" {
				return
			}
			st.record(it, outcome, time.Since(sched))
		}()
	}
	wg.Wait()
}

// do issues one POST /parse and classifies the response:
// "ok", "syntax", "limit:<kind>", "bad-request", "unknown-grammar",
// "engine", "transport" (connection/client error), or "http:<status>"
// for responses whose body is not a typed error.
func (c *client) do(ctx context.Context, it *preparedItem) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.cfg.BaseURL+"/parse", bytes.NewReader(it.body))
	if err != nil {
		return "transport"
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return "transport"
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		// Only the status matters; drain so the connection is reused.
		io.Copy(io.Discard, resp.Body)
		return "ok"
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	io.Copy(io.Discard, resp.Body)
	var e struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if json.Unmarshal(body, &e) != nil || e.Error == "" {
		return fmt.Sprintf("http:%d", resp.StatusCode)
	}
	if e.Error == "limit" {
		return "limit:" + e.Kind
	}
	return e.Error
}

// unexpected reports whether outcome violates the item's Expect class.
func unexpected(expect, outcome string) bool {
	switch expect {
	case "ok":
		return outcome != "ok"
	case "syntax":
		return outcome != "syntax"
	case "reject":
		return outcome != "syntax" && !isLimit(outcome)
	default: // "any"
		return outcome == "transport" || outcome == "engine" || is5xx(outcome)
	}
}

func isLimit(outcome string) bool {
	return len(outcome) > 6 && outcome[:6] == "limit:"
}

func is5xx(outcome string) bool {
	return len(outcome) > 5 && outcome[:6] == "http:5"
}

// phaseStats accumulates one phase's measurements. The latency
// histogram is the same lock-free fixed-bucket machinery the server's
// parse-duration telemetry uses, so client- and server-side quantiles
// are directly comparable.
type phaseStats struct {
	hist  *vm.Histogram
	maxNS atomic.Int64

	mu         sync.Mutex
	outcomes   map[string]int64
	unexpected int64
	sent       int64
}

func newPhaseStats() *phaseStats {
	return &phaseStats{
		hist:     vm.NewHistogram(vm.LatencyBounds()),
		outcomes: make(map[string]int64),
	}
}

func (st *phaseStats) record(it *preparedItem, outcome string, lat time.Duration) {
	st.hist.Observe(int64(lat))
	for {
		old := st.maxNS.Load()
		if int64(lat) <= old || st.maxNS.CompareAndSwap(old, int64(lat)) {
			break
		}
	}
	bad := unexpected(it.Expect, outcome)
	st.mu.Lock()
	st.sent++
	st.outcomes[outcome]++
	if bad {
		st.unexpected++
	}
	st.mu.Unlock()
}

func (st *phaseStats) phase(label, mode string, targetRPS float64, workers int, elapsed time.Duration) *Phase {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := st.hist.Snapshot()
	// Interpolated quantiles can overshoot the worst observation when a
	// bucket is sparsely filled; the exact max is a tighter bound.
	maxNS := st.maxNS.Load()
	clamp := func(q float64) int64 {
		v := snap.Quantile(q)
		if maxNS > 0 && v > maxNS {
			return maxNS
		}
		return v
	}
	ph := &Phase{
		Label:      label,
		Mode:       mode,
		TargetRPS:  targetRPS,
		Workers:    workers,
		DurationNS: int64(elapsed),
		Sent:       st.sent,
		P50NS:      clamp(0.50),
		P99NS:      clamp(0.99),
		P999NS:     clamp(0.999),
		MaxNS:      maxNS,
		Outcomes:   make(map[string]int64, len(st.outcomes)),
		Unexpected: st.unexpected,
	}
	for k, v := range st.outcomes {
		ph.Outcomes[k] = v
	}
	if elapsed > 0 {
		ph.AchievedRPS = float64(st.sent) / elapsed.Seconds()
	}
	if st.sent > 0 {
		ph.ErrorRate = float64(st.unexpected) / float64(st.sent)
	}
	return ph
}

// evalSLO applies the SLO to a finished phase. In open/ramp modes a
// phase that achieved less than 90% of its target is failing even with
// clean latencies — the generator could not push the load through.
func evalSLO(ph *Phase, slo SLO, targetRPS float64) bool {
	if !slo.enabled() {
		return true
	}
	if slo.MaxP99 > 0 && ph.P99NS > int64(slo.MaxP99) {
		return false
	}
	if ph.ErrorRate > slo.MaxErrorRate {
		return false
	}
	if targetRPS > 0 && ph.AchievedRPS < 0.9*targetRPS {
		return false
	}
	return true
}
