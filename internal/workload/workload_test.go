package workload

import (
	"strings"
	"testing"

	"modpeg/internal/core"
	"modpeg/internal/grammars"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
)

func progFor(t *testing.T, top string) *vm.Program {
	t.Helper()
	g, err := grammars.Compose(top)
	if err != nil {
		t.Fatalf("compose %s: %v", top, err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Compile(tg, vm.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func mustParse(t *testing.T, prog *vm.Program, input, what string) {
	t.Helper()
	if _, _, err := prog.Parse(text.NewSource(what, input)); err != nil {
		if pe, ok := err.(*vm.ParseError); ok {
			t.Fatalf("%s corpus does not parse: %v\n%s", what, err, pe.Detail())
		}
		t.Fatalf("%s corpus does not parse: %v", what, err)
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Size: 4000}
	if Expression(cfg) != Expression(cfg) {
		t.Fatal("Expression not deterministic")
	}
	if JSONDoc(cfg) != JSONDoc(cfg) {
		t.Fatal("JSONDoc not deterministic")
	}
	if JavaProgram(cfg) != JavaProgram(cfg) {
		t.Fatal("JavaProgram not deterministic")
	}
	if JavaProgramExt(cfg) != JavaProgramExt(cfg) {
		t.Fatal("JavaProgramExt not deterministic")
	}
	if CProgram(cfg) != CProgram(cfg) {
		t.Fatal("CProgram not deterministic")
	}
	if Expression(Config{Seed: 8, Size: 4000}) == Expression(cfg) {
		t.Fatal("different seeds must differ")
	}
}

func TestGeneratorsHitSizeTargets(t *testing.T) {
	for _, size := range []int{500, 5000, 50000} {
		cfg := Config{Seed: 1, Size: size}
		for name, gen := range map[string]func(Config) string{
			"expr": Expression, "json": JSONDoc, "java": JavaProgram, "c": CProgram,
		} {
			out := gen(cfg)
			if len(out) < size {
				t.Errorf("%s(%d) produced only %d bytes", name, size, len(out))
			}
			if len(out) > size*3+2000 {
				t.Errorf("%s(%d) overshot to %d bytes", name, size, len(out))
			}
		}
	}
}

func TestExpressionCorpusParses(t *testing.T) {
	prog := progFor(t, grammars.CalcCore)
	for seed := int64(0); seed < 5; seed++ {
		mustParse(t, prog, Expression(Config{Seed: seed, Size: 3000}), "calc")
	}
	full := progFor(t, grammars.CalcFull)
	for seed := int64(0); seed < 5; seed++ {
		mustParse(t, full, ExpressionExt(Config{Seed: seed, Size: 3000}), "calc-ext")
	}
}

func TestNestedExpressionParses(t *testing.T) {
	prog := progFor(t, grammars.CalcCore)
	for _, depth := range []int{1, 10, 100} {
		mustParse(t, prog, NestedExpression(depth), "nested")
	}
	if NestedExpression(2) != "((1+1)+1)" {
		t.Fatalf("NestedExpression(2) = %q", NestedExpression(2))
	}
}

func TestJSONCorpusParses(t *testing.T) {
	prog := progFor(t, grammars.JSON)
	for seed := int64(0); seed < 5; seed++ {
		mustParse(t, prog, JSONDoc(Config{Seed: seed, Size: 5000}), "json")
	}
}

func TestJavaCorpusParses(t *testing.T) {
	base := progFor(t, grammars.JavaCore)
	full := progFor(t, grammars.JavaFull)
	for seed := int64(0); seed < 5; seed++ {
		src := JavaProgram(Config{Seed: seed, Size: 8000})
		mustParse(t, base, src, "java-base")
		mustParse(t, full, src, "java-base-on-full")
	}
	sawExt := false
	for seed := int64(0); seed < 5; seed++ {
		src := JavaProgramExt(Config{Seed: seed, Size: 8000})
		mustParse(t, full, src, "java-ext")
		if strings.Contains(src, "assert ") || strings.Contains(src, " ** ") || strings.Contains(src, " : data") {
			sawExt = true
		}
	}
	if !sawExt {
		t.Fatal("extended generator never used an extension construct")
	}
}

func TestCCorpusParses(t *testing.T) {
	prog := progFor(t, grammars.CCore)
	for seed := int64(0); seed < 5; seed++ {
		mustParse(t, prog, CProgram(Config{Seed: seed, Size: 8000}), "c")
	}
}

func TestPathological(t *testing.T) {
	if Pathological(2) != "((a)y)y" {
		t.Fatalf("Pathological(2) = %q", Pathological(2))
	}
	g, err := core.Compose("path", core.MapResolver{"path": PathologicalGrammar})
	if err != nil {
		t.Fatal(err)
	}
	tg, _, err := transform.Apply(g, transform.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Compile(tg, vm.Optimized())
	if err != nil {
		t.Fatal(err)
	}
	mustParse(t, prog, Pathological(12), "pathological")
}
