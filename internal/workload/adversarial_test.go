package workload

import (
	"strings"
	"testing"
)

// TestAdversarialInputsParseUngoverned checks that the attack inputs
// are *valid* inputs for the grammars they target: an attack that is a
// syntax error would test error reporting, not resource exhaustion.
// The exponential-backtracking input is excluded — completing it
// ungoverned is the attack (2^40 production calls on the plain
// backtracking engine); the governed limits tests cover it.
func TestAdversarialInputsParseUngoverned(t *testing.T) {
	// Modest depth/size so the ungoverned parses stay cheap; the limits
	// tests crank these up.
	for _, a := range AdversarialCorpus(200, 50_000) {
		if a.Attacks == "time" {
			continue
		}
		mustParse(t, progFor(t, a.Module), a.Input, a.Name)
	}
}

func TestAdversarialGeneratorsAreDeterministic(t *testing.T) {
	if DeepExpression(64) != DeepExpression(64) {
		t.Fatal("DeepExpression not deterministic")
	}
	if DeepJSONArray(64) != DeepJSONArray(64) {
		t.Fatal("DeepJSONArray not deterministic")
	}
	for i, a := range AdversarialCorpus(100, 10_000) {
		b := AdversarialCorpus(100, 10_000)[i]
		if a != b {
			t.Fatalf("corpus entry %s not deterministic", a.Name)
		}
	}
}

// TestAdversarialShapes pins the structural properties each attack
// relies on: pure nesting at exactly the requested depth, and large
// inputs at roughly the requested size.
func TestAdversarialShapes(t *testing.T) {
	if got := DeepExpression(3); got != "(((1)))" {
		t.Fatalf("DeepExpression(3) = %q", got)
	}
	if got := DeepJSONArray(2); got != "[[0]]" {
		t.Fatalf("DeepJSONArray(2) = %q", got)
	}
	if n := strings.Count(DeepExpression(500), "("); n != 500 {
		t.Fatalf("DeepExpression(500) has %d open parens", n)
	}
	corpus := AdversarialCorpus(500, 100_000)
	names := map[string]bool{}
	for _, a := range corpus {
		names[a.Name] = true
		if a.Attacks != "depth" && a.Attacks != "time" && a.Attacks != "memory" {
			t.Errorf("%s: unknown attack class %q", a.Name, a.Attacks)
		}
		if a.Attacks == "memory" && len(a.Input) < 50_000 {
			t.Errorf("%s: memory attack only %d bytes", a.Name, len(a.Input))
		}
	}
	if len(names) != len(corpus) {
		t.Errorf("corpus has duplicate names: %v", names)
	}
}
