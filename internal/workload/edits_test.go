package workload

import (
	"strings"
	"testing"

	"modpeg/internal/text"
)

func TestSQLQueryCorpusParses(t *testing.T) {
	prog := progFor(t, "sql")
	for _, size := range []int{20, 500, 5000, 50000} {
		q := SQLQuery(Config{Seed: int64(size), Size: size})
		if size >= 500 && len(q) < size {
			t.Errorf("SQLQuery(%d) produced only %d bytes", size, len(q))
		}
		mustParse(t, prog, q, "sql")
	}
	if SQLQuery(Config{Seed: 3, Size: 4000}) != SQLQuery(Config{Seed: 3, Size: 4000}) {
		t.Fatal("SQLQuery not deterministic")
	}
}

func TestJavaSQLCorpusParses(t *testing.T) {
	prog := progFor(t, "demo.javasql.top")
	src := JavaSQLProgram(Config{Seed: 11, Size: 8000})
	if !strings.Contains(src, "`SELECT") {
		t.Fatal("corpus contains no embedded queries")
	}
	mustParse(t, prog, src, "javasql")
	if JavaSQLProgram(Config{Seed: 11, Size: 8000}) != src {
		t.Fatal("JavaSQLProgram not deterministic")
	}
}

// TestJavaEditPairs applies each generated edit pair to a live document
// and checks three things: the edited text still parses, the inverse
// restores the original text byte-for-byte, and the pair round-trips
// under incremental reparsing (the shape the benchmarks rely on).
func TestJavaEditPairs(t *testing.T) {
	prog := progFor(t, "java.core")
	src := JavaProgram(Config{Seed: 5, Size: 16000})
	pairs := map[string]EditPair{
		"byte": JavaEditByte(src),
		"line": JavaEditLine(src),
		"blob": JavaEditBlob(src, 0.10),
	}
	if blob := pairs["blob"]; blob.Insert.NewLen < len(src)/10 {
		t.Fatalf("blob insert is only %d bytes for a %d-byte document", blob.Insert.NewLen, len(src))
	}
	for name, p := range pairs {
		d := prog.NewDocument(text.NewSource("t", src))
		if d.Err() != nil {
			t.Fatalf("base corpus does not parse: %v", d.Err())
		}
		if _, _, err := d.Apply(p.Insert); err != nil || d.Err() != nil {
			t.Fatalf("%s insert: apply=%v parse=%v", name, err, d.Err())
		}
		if _, _, err := d.Apply(p.Delete); err != nil || d.Err() != nil {
			t.Fatalf("%s delete: apply=%v parse=%v", name, err, d.Err())
		}
		if d.Text() != src {
			t.Fatalf("%s pair does not round-trip the text", name)
		}
	}
}
