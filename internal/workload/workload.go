// Package workload generates deterministic synthetic inputs for the
// benchmark harness — the stand-in for the paper's real-world corpora
// (JDK sources for the Java grammar, C packages for the C grammar). The
// generators are seeded and size-targeted, so every benchmark run parses
// byte-identical inputs.
//
// Each generator emits text valid under the corresponding bundled grammar;
// the package tests parse every generated corpus to enforce that.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes a generator.
type Config struct {
	// Seed drives the deterministic random source.
	Seed int64
	// Size is the approximate output size in bytes; generators emit whole
	// units (members, statements) until they reach it.
	Size int
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// ------------------------------------------------------------ calculator

// Expression generates an arithmetic expression for the calculator
// grammar (core operators only).
func Expression(cfg Config) string {
	r := cfg.rng()
	var b strings.Builder
	genExpr(r, &b, 6, false)
	for b.Len() < cfg.Size {
		op := []string{" + ", " - ", " * ", " / "}[r.Intn(4)]
		b.WriteString(op)
		genExpr(r, &b, 6, false)
	}
	return b.String()
}

// IntExpression generates an arithmetic expression restricted to integer
// literals (no decimal points), for grammars whose number syntax is
// integral — e.g. the generated-parser benchmark grammar.
func IntExpression(cfg Config) string {
	out := Expression(cfg)
	// Decimal points only occur inside "d.dd" literals; rewriting them to
	// digit separators keeps the text a valid integer expression of the
	// same length.
	return strings.Map(func(r rune) rune {
		if r == '.' {
			return '0'
		}
		return r
	}, out)
}

// ExpressionExt generates an expression that uses the calc.pow and
// calc.cmp extensions as well (for composed-grammar benchmarks).
func ExpressionExt(cfg Config) string {
	r := cfg.rng()
	var b strings.Builder
	genExpr(r, &b, 6, true)
	for b.Len() < cfg.Size {
		b.WriteString([]string{" + ", " - ", " * ", " ** "}[r.Intn(4)])
		genExpr(r, &b, 6, true)
	}
	// One top-level comparison exercises the calc.cmp layer.
	b.WriteString(" < 1000000")
	return b.String()
}

func genExpr(r *rand.Rand, b *strings.Builder, depth int, ext bool) {
	if depth <= 0 || r.Intn(4) == 0 {
		fmt.Fprintf(b, "%d", r.Intn(1000))
		return
	}
	switch r.Intn(6) {
	case 0:
		b.WriteByte('(')
		genExpr(r, b, depth-1, ext)
		b.WriteByte(')')
	case 1:
		genExpr(r, b, depth-1, ext)
		b.WriteString(" + ")
		genExpr(r, b, depth-1, ext)
	case 2:
		genExpr(r, b, depth-1, ext)
		b.WriteString(" * ")
		genExpr(r, b, depth-1, ext)
	case 3:
		genExpr(r, b, depth-1, ext)
		b.WriteString(" - ")
		genExpr(r, b, depth-1, ext)
	case 4:
		if ext {
			fmt.Fprintf(b, "%d ** ", r.Intn(9)+1)
			genExpr(r, b, depth-1, ext)
			return
		}
		genExpr(r, b, depth-1, ext)
		b.WriteString(" / ")
		fmt.Fprintf(b, "%d", r.Intn(99)+1)
	default:
		fmt.Fprintf(b, "%d.%02d", r.Intn(100), r.Intn(100))
	}
}

// NestedExpression generates a parenthesis chain of the given depth —
// the input for the linear-time scaling figure.
func NestedExpression(depth int) string {
	return strings.Repeat("(", depth) + "1" + strings.Repeat("+1)", depth)
}

// ----------------------------------------------------------------- json

// JSONDoc generates a JSON document of roughly cfg.Size bytes.
func JSONDoc(cfg Config) string {
	r := cfg.rng()
	var b strings.Builder
	b.WriteString("{\n")
	i := 0
	for b.Len() < cfg.Size {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  \"key%d\": ", i)
		genJSON(r, &b, 4)
		i++
	}
	b.WriteString("\n}")
	return b.String()
}

func genJSON(r *rand.Rand, b *strings.Builder, depth int) {
	if depth <= 0 {
		genJSONScalar(r, b)
		return
	}
	switch r.Intn(6) {
	case 0: // object
		b.WriteByte('{')
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "\"f%d\": ", i)
			genJSON(r, b, depth-1)
		}
		b.WriteByte('}')
	case 1: // array
		b.WriteByte('[')
		n := r.Intn(5)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			genJSON(r, b, depth-1)
		}
		b.WriteByte(']')
	default:
		genJSONScalar(r, b)
	}
}

func genJSONScalar(r *rand.Rand, b *strings.Builder) {
	switch r.Intn(5) {
	case 0:
		fmt.Fprintf(b, "%d", r.Intn(100000))
	case 1:
		fmt.Fprintf(b, "-%d.%03de%+d", r.Intn(100), r.Intn(1000), r.Intn(20)-10)
	case 2:
		fmt.Fprintf(b, "\"str %d with \\\"escapes\\\"\"", r.Intn(1000))
	case 3:
		b.WriteString([]string{"true", "false", "null"}[r.Intn(3)])
	default:
		fmt.Fprintf(b, "%d", r.Intn(10))
	}
}

// ----------------------------------------------------- pathological input

// Pathological generates the nested-choice input that blows up
// unmemoized backtracking under the grammar
//
//	E = "(" E ")" "x" / "(" E ")" "y" / "a"
//
// where every level takes the second alternative: a plain recursive-
// descent parser re-parses the nested body at every level (2^depth work),
// while a packrat parser stays linear.
func Pathological(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteByte('(')
	}
	b.WriteByte('a')
	for i := 0; i < depth; i++ {
		b.WriteString(")y")
	}
	return b.String()
}

// PathologicalGrammar is the module source matching Pathological inputs.
const PathologicalGrammar = `
module path;
public S = E !. ;
E = "(" E ")" "x" / "(" E ")" "y" / "a" ;
`
