package workload

import "strings"

// This file is the adversarial corpus: inputs crafted to exhaust a
// specific parser resource rather than to model a realistic program.
// The governance layer (vm.Limits) is tested and benchmarked against
// these — every generator here should make an *ungoverned* parse either
// recurse deeply, backtrack exponentially, or chew through memory, and
// a governed parse stop with the matching typed limit error.
//
// Like the benchmark generators, everything is deterministic: the same
// call returns byte-identical input forever.

// DeepExpression generates a parenthesis chain of the given depth for
// the calculator grammars — pure nesting with no width, the classic
// stack-depth attack. (NestedExpression adds a "+1" per level, which
// makes the input 4x larger for the same depth; the adversarial variant
// is as dense as the grammar allows.)
func DeepExpression(depth int) string {
	return strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
}

// DeepJSONArray generates a depth-deep nested JSON array — the
// stack-depth attack against the JSON grammar (the shape that felled
// many real-world JSON parsers before they grew depth limits).
func DeepJSONArray(depth int) string {
	return strings.Repeat("[", depth) + "0" + strings.Repeat("]", depth)
}

// AdversarialInput is one named attack input with the top module it
// targets.
type AdversarialInput struct {
	// Name identifies the attack in test output and experiment tables.
	Name string
	// Module is the bundled top module the input targets ("path" means
	// PathologicalGrammar, which is not bundled).
	Module string
	// Attacks names the resource the input is built to exhaust:
	// "depth", "time", or "memory".
	Attacks string
	// Input is the attack text.
	Input string
}

// AdversarialCorpus returns the standard attack set the limits tests
// and the Table 7 experiment run: deep nesting against the calculator
// and JSON grammars, exponential backtracking against the pathological
// grammar, and multi-megabyte flat inputs that inflate the memo table.
// size scales the large inputs (bytes); depth scales the nested ones.
func AdversarialCorpus(depth, size int) []AdversarialInput {
	return []AdversarialInput{
		{Name: "deep-parens", Module: "calc.full", Attacks: "depth",
			Input: DeepExpression(depth)},
		{Name: "deep-json-array", Module: "json.value", Attacks: "depth",
			Input: DeepJSONArray(depth)},
		{Name: "exp-backtrack", Module: "path", Attacks: "time",
			Input: Pathological(40)},
		{Name: "huge-expression", Module: "calc.full", Attacks: "memory",
			Input: Expression(Config{Seed: 71, Size: size})},
		{Name: "huge-json", Module: "json.value", Attacks: "memory",
			Input: JSONDoc(Config{Seed: 72, Size: size})},
	}
}
