package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// JavaProgram generates a Java-subset source file of roughly cfg.Size
// bytes: a package declaration, imports, and one class with fields,
// constructors, and methods whose bodies draw from the full statement and
// expression repertoire of the base grammar.
func JavaProgram(cfg Config) string {
	return javaProgram(cfg, false)
}

// JavaProgramExt additionally uses the bundled extensions (assert,
// enhanced for, **) so that only the composed java.full grammar accepts
// it.
func JavaProgramExt(cfg Config) string {
	return javaProgram(cfg, true)
}

func javaProgram(cfg Config, ext bool) string {
	r := cfg.rng()
	g := &javaGen{r: r, ext: ext}
	var b strings.Builder
	b.WriteString("package com.example.generated;\n\n")
	b.WriteString("import java.util.List;\n")
	b.WriteString("import java.io.*;\n\n")
	b.WriteString("interface Measurable {\n    int measure(int a, int b);\n}\n\n")
	b.WriteString("public class Workload extends Object implements Measurable {\n")
	b.WriteString("    static final int LIMIT = 1024;\n")
	b.WriteString("    static final int[] SEEDS = {3, 5, 7, 11,};\n")
	b.WriteString("    private int state = 0;\n")
	b.WriteString("    private int[] data = new int[64];\n\n")
	b.WriteString("    public int measure(int a, int b) {\n        return a + b + state;\n    }\n\n")
	b.WriteString("    public Workload(int seed) {\n        this.state = seed;\n    }\n\n")
	for i := 0; b.Len() < cfg.Size; i++ {
		g.method(&b, i)
	}
	b.WriteString("}\n")
	return b.String()
}

type javaGen struct {
	r   *rand.Rand
	ext bool
}

func (g *javaGen) method(b *strings.Builder, i int) {
	fmt.Fprintf(b, "    int method%d(int a, int b) {\n", i)
	n := 3 + g.r.Intn(6)
	for j := 0; j < n; j++ {
		g.stmt(b, 2, 2)
	}
	fmt.Fprintf(b, "        return %s;\n    }\n\n", g.expr(2))
}

func (g *javaGen) stmt(b *strings.Builder, indent, depth int) {
	pad := strings.Repeat("    ", indent)
	max := 10
	if g.ext {
		max = 13
	}
	if depth <= 0 {
		fmt.Fprintf(b, "%sstate = %s;\n", pad, g.expr(1))
		return
	}
	switch g.r.Intn(max) {
	case 0:
		fmt.Fprintf(b, "%sint v%d = %s;\n", pad, g.r.Intn(100), g.expr(depth))
	case 1:
		fmt.Fprintf(b, "%sif (%s) {\n", pad, g.cond())
		g.stmt(b, indent+1, depth-1)
		fmt.Fprintf(b, "%s} else {\n", pad)
		g.stmt(b, indent+1, depth-1)
		fmt.Fprintf(b, "%s}\n", pad)
	case 2:
		fmt.Fprintf(b, "%sfor (int i = 0; i < %d; i++) {\n", pad, g.r.Intn(64)+1)
		g.stmt(b, indent+1, depth-1)
		fmt.Fprintf(b, "%s}\n", pad)
	case 3:
		fmt.Fprintf(b, "%swhile (state > %d) {\n", pad, g.r.Intn(100))
		fmt.Fprintf(b, "%s    state = state / 2;\n", pad)
		fmt.Fprintf(b, "%s}\n", pad)
	case 4:
		fmt.Fprintf(b, "%sdata[%d] = %s;\n", pad, g.r.Intn(64), g.expr(depth))
	case 5:
		fmt.Fprintf(b, "%sstate += method%d(%s, %s) + data[a %% 64];\n",
			pad, g.r.Intn(3), g.expr(1), g.expr(1))
	case 6:
		fmt.Fprintf(b, "%sString s%d = \"value \" + %d;\n", pad, g.r.Intn(100), g.r.Intn(1000))
	case 7:
		fmt.Fprintf(b, "%stry {\n%s    state = data[b];\n%s} catch (Exception e) {\n%s    state = 0;\n%s}\n",
			pad, pad, pad, pad, pad)
	case 8:
		fmt.Fprintf(b, "%sswitch (a %% %d) {\n%scase 0:\n%s    state += %d;\n%s    break;\n%scase 1:\n%s    state = super.hashCode();\n%s    break;\n%sdefault:\n%s    state--;\n%s}\n",
			pad, g.r.Intn(4)+2, pad, pad, g.r.Intn(100), pad, pad, pad, pad, pad, pad, pad)
	case 9:
		fmt.Fprintf(b, "%sint[] tmp%d = {%s, %s, %s};\n", pad, g.r.Intn(100), g.atom(), g.atom(), g.atom())
	case 10: // ext: assert
		fmt.Fprintf(b, "%sassert state >= 0 : \"negative\";\n", pad)
	case 11: // ext: enhanced for
		fmt.Fprintf(b, "%sfor (int x : data) {\n%s    state += x;\n%s}\n", pad, pad, pad)
	case 12: // ext: pow
		fmt.Fprintf(b, "%sstate = 2 ** %d + state;\n", pad, g.r.Intn(10)+1)
	}
}

func (g *javaGen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("%s + %s", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("%s * %s", g.expr(depth-1), g.atom())
	case 2:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.atom())
	case 3:
		return fmt.Sprintf("%s %% %d", g.atom(), g.r.Intn(99)+1)
	case 4:
		return fmt.Sprintf("data[%s %% 64]", g.atom())
	case 5:
		return fmt.Sprintf("(%s & 0xFF | %d)", g.atom(), g.r.Intn(16))
	case 6:
		return fmt.Sprintf("(%s << %d >> 1)", g.atom(), g.r.Intn(4)+1)
	default:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(), g.atom(), g.atom())
	}
}

func (g *javaGen) cond() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s < %s", g.atom(), g.atom())
	case 1:
		return fmt.Sprintf("%s == %d && state != %d", g.atom(), g.r.Intn(10), g.r.Intn(10))
	case 2:
		return fmt.Sprintf("%s >= 0 || b > %d", g.atom(), g.r.Intn(100))
	default:
		return "!(state == 0)"
	}
}

func (g *javaGen) atom() string {
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(1000))
	case 1:
		return "a"
	case 2:
		return "b"
	case 3:
		return "state"
	default:
		return fmt.Sprintf("data[%d]", g.r.Intn(64))
	}
}
