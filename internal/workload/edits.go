package workload

import (
	"fmt"
	"strings"

	"modpeg/internal/vm"
)

// ------------------------------------------------------------------- sql

// SQLQuery generates a query for the bundled sql grammar of roughly
// cfg.Size bytes: a wide column list (flat repetition, so size does not
// translate into recursion depth) and a bounded AND-chain WHERE clause
// exercising every comparison operator and operand kind.
func SQLQuery(cfg Config) string {
	r := cfg.rng()
	var b strings.Builder
	b.WriteString("SELECT ")
	if cfg.Size < 32 {
		b.WriteString("* FROM tiny")
		return b.String()
	}
	b.WriteString("id")
	for b.Len() < cfg.Size*7/10 {
		fmt.Fprintf(&b, ", col_%d", r.Intn(10000))
	}
	b.WriteString(" FROM measurements WHERE ")
	ops := []string{"<=", ">=", "<>", "=", "<", ">"}
	terms := 1 + r.Intn(32)
	for i := 0; i < terms || b.Len() < cfg.Size; i++ {
		if i > 0 {
			b.WriteString(" AND ")
		}
		op := ops[r.Intn(len(ops))]
		switch r.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "x_%d %s %d", r.Intn(100), op, r.Intn(100000))
		case 1:
			fmt.Fprintf(&b, "name %s 'val_%d'", op, r.Intn(1000))
		default:
			fmt.Fprintf(&b, "%d %s threshold", r.Intn(1000), op)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// JavaSQLProgram generates input for the demo.javasql.top composed
// grammar: a Java-subset program whose method bodies include backquoted
// SQL queries in expression position.
func JavaSQLProgram(cfg Config) string {
	r := cfg.rng()
	g := &javaGen{r: r}
	var b strings.Builder
	b.WriteString("package com.example.embedded;\n\n")
	b.WriteString("public class Queries {\n")
	b.WriteString("    private int state = 0;\n\n")
	for i := 0; b.Len() < cfg.Size; i++ {
		fmt.Fprintf(&b, "    int method%d(int a, int b) {\n", i)
		n := 2 + r.Intn(4)
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				fmt.Fprintf(&b, "        int rs%d = `SELECT id, col_%d FROM t_%d WHERE x_%d >= %d AND name = 'v%d'`;\n",
					r.Intn(100), r.Intn(100), r.Intn(10), r.Intn(10), r.Intn(1000), r.Intn(100))
			} else {
				g.stmt(&b, 2, 1)
			}
		}
		fmt.Fprintf(&b, "        return %s;\n    }\n\n", g.expr(1))
	}
	b.WriteString("}\n")
	return b.String()
}

// ------------------------------------------------------------ edit pairs

// EditPair is an insertion plus its exact inverse, so an incremental
// benchmark can ping-pong a document between two states without the text
// (or the memo table) drifting across iterations.
type EditPair struct {
	Insert vm.Edit
	Delete vm.Edit
}

func pair(off int, text string) EditPair {
	return EditPair{
		Insert: vm.Edit{Off: off, NewLen: len(text), Text: text},
		Delete: vm.Edit{Off: off, OldLen: len(text)},
	}
}

// javaAnchor returns the offset just past the ";\n" statement terminator
// nearest the middle of src — a position where a new statement line is
// grammatically valid (for the generated corpora, whose class-level field
// declarations all sit near the top of the file).
func javaAnchor(src string) int {
	mid := len(src) / 2
	after := strings.Index(src[mid:], ";\n")
	before := strings.LastIndex(src[:mid], ";\n")
	switch {
	case after >= 0 && (before < 0 || after <= mid-before):
		return mid + after + 2
	case before >= 0:
		return before + 2
	default:
		return len(src)
	}
}

// JavaEditByte is the smallest interesting edit: one digit appended to
// the numeric literal (or numbered identifier) nearest the middle of the
// document. Valid wherever a digit already is.
func JavaEditByte(src string) EditPair {
	mid := len(src) / 2
	off := -1
	for i := 0; i < len(src)/2; i++ {
		if j := mid + i; j < len(src) && src[j] >= '0' && src[j] <= '9' {
			off = j + 1
			break
		}
		if j := mid - i; j >= 0 && src[j] >= '0' && src[j] <= '9' {
			off = j + 1
			break
		}
	}
	if off < 0 {
		off = javaAnchor(src)
		return pair(off, "        state = 7;\n")
	}
	return pair(off, "7")
}

// JavaEditLine inserts one whole statement line at a statement boundary
// near the middle of the document — the paper-style "programmer typed a
// line" edit.
func JavaEditLine(src string) EditPair {
	return pair(javaAnchor(src), "        state = state + 1;\n")
}

// JavaEditBlob inserts a block of statements sized at the given fraction
// of the document (e.g. 0.10 for a 10% paste) at a statement boundary
// near the middle.
func JavaEditBlob(src string, frac float64) EditPair {
	const line = "        state = state + 1;\n"
	n := int(float64(len(src))*frac)/len(line) + 1
	return pair(javaAnchor(src), strings.Repeat(line, n))
}
