package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// CProgram generates a C-subset source file of roughly cfg.Size bytes:
// a struct, globals, and functions exercising pointers, loops, switch,
// and the expression repertoire of the bundled C grammar.
func CProgram(cfg Config) string {
	r := cfg.rng()
	g := &cGen{r: r}
	var b strings.Builder
	b.WriteString("/* generated C workload */\n")
	b.WriteString("#include <stdio.h>\n\n")
	b.WriteString("typedef unsigned long size_t;\n\n")
	b.WriteString("struct state {\n    int counter;\n    int values[64];\n    char tag;\n};\n\n")
	b.WriteString("static int global = 0;\n")
	b.WriteString("static struct state st;\n\n")
	for i := 0; b.Len() < cfg.Size; i++ {
		g.function(&b, i)
	}
	b.WriteString("int main(void) {\n    return fn0(1, 2);\n}\n")
	return b.String()
}

type cGen struct {
	r *rand.Rand
}

func (g *cGen) function(b *strings.Builder, i int) {
	fmt.Fprintf(b, "int fn%d(int a, int b) {\n", i)
	fmt.Fprintf(b, "    int local = %d;\n", g.r.Intn(100))
	b.WriteString("    int *p = &local;\n")
	n := 3 + g.r.Intn(6)
	for j := 0; j < n; j++ {
		g.stmt(b, 1, 2)
	}
	fmt.Fprintf(b, "    return local + %s;\n}\n\n", g.expr(1))
}

func (g *cGen) stmt(b *strings.Builder, indent, depth int) {
	pad := strings.Repeat("    ", indent)
	if depth <= 0 {
		fmt.Fprintf(b, "%sglobal = %s;\n", pad, g.expr(1))
		return
	}
	switch g.r.Intn(9) {
	case 0:
		fmt.Fprintf(b, "%sint v%d = %s;\n", pad, g.r.Intn(100), g.expr(depth))
	case 1:
		fmt.Fprintf(b, "%sif (%s) {\n", pad, g.cond())
		g.stmt(b, indent+1, depth-1)
		fmt.Fprintf(b, "%s} else {\n", pad)
		g.stmt(b, indent+1, depth-1)
		fmt.Fprintf(b, "%s}\n", pad)
	case 2:
		fmt.Fprintf(b, "%sfor (local = 0; local < %d; local++) {\n", pad, g.r.Intn(64)+1)
		g.stmt(b, indent+1, depth-1)
		fmt.Fprintf(b, "%s}\n", pad)
	case 3:
		fmt.Fprintf(b, "%swhile (global > %d) {\n%s    global = global >> 1;\n%s}\n",
			pad, g.r.Intn(100), pad, pad)
	case 4:
		fmt.Fprintf(b, "%sst.values[%d] = %s;\n", pad, g.r.Intn(64), g.expr(depth))
	case 5:
		fmt.Fprintf(b, "%s*p = %s;\n", pad, g.expr(1))
	case 6:
		fmt.Fprintf(b, "%sswitch (local %% 3) {\n%scase 0:\n%s    global++;\n%s    break;\n%sdefault:\n%s    global--;\n%s    break;\n%s}\n",
			pad, pad, pad, pad, pad, pad, pad, pad)
	case 7:
		fmt.Fprintf(b, "%sst.counter = st.counter + %s;\n", pad, g.expr(1))
	default:
		fmt.Fprintf(b, "%sdo {\n%s    local++;\n%s} while (local < %d);\n", pad, pad, pad, g.r.Intn(16)+1)
	}
}

func (g *cGen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("%s + %s", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("%s * %s", g.expr(depth-1), g.atom())
	case 2:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.atom())
	case 3:
		return fmt.Sprintf("(%s & 0xFF | %d)", g.atom(), g.r.Intn(16))
	case 4:
		return fmt.Sprintf("st.values[%s %% 64]", g.atom())
	case 5:
		return fmt.Sprintf("(%s << %d)", g.atom(), g.r.Intn(4)+1)
	case 6:
		return fmt.Sprintf("(int)%s", g.atom())
	default:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(), g.atom(), g.atom())
	}
}

func (g *cGen) cond() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s < %s", g.atom(), g.atom())
	case 1:
		return fmt.Sprintf("%s == %d && global != %d", g.atom(), g.r.Intn(10), g.r.Intn(10))
	case 2:
		return fmt.Sprintf("%s >= 0 || b > %d", g.atom(), g.r.Intn(100))
	default:
		return "!(global == 0)"
	}
}

func (g *cGen) atom() string {
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(1000))
	case 1:
		return "a"
	case 2:
		return "b"
	case 3:
		return "global"
	case 4:
		return "*p"
	default:
		return fmt.Sprintf("st.values[%d]", g.r.Intn(64))
	}
}
