// Package analysis computes the static grammar properties that drive
// modpeg's optimizer, engines, and well-formedness checks:
//
//   - nullability (which productions can match the empty string),
//   - reachability from the root,
//   - reference counts,
//   - recursion (general, left, and directly-left-recursive productions),
//   - first-byte sets for terminal dispatch,
//   - a cost model for inlining decisions.
//
// Analyze computes everything in one pass object; Check turns the
// properties into the errors the paper's system reports at generation time
// (left recursion that cannot be transformed, repetition of nullable
// expressions, unreachable or missing productions).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"modpeg/internal/peg"
)

// Analysis holds the computed properties of one composed grammar.
type Analysis struct {
	Grammar *peg.Grammar

	// Nullable reports per production whether it can succeed without
	// consuming input.
	Nullable map[string]bool
	// Reachable reports per production whether the root can reach it.
	Reachable map[string]bool
	// RefCount counts, per production, the number of reference sites in
	// reachable productions (the root gets one implicit reference).
	RefCount map[string]int
	// Recursive reports per production whether it can (transitively) call
	// itself.
	Recursive map[string]bool
	// LeftRecursive reports per production whether it can call itself
	// without consuming input first (general left recursion).
	LeftRecursive map[string]bool
	// DirectLeftRec reports productions with the *directly* rewritable
	// pattern: an alternative whose first item is a reference to the
	// production itself.
	DirectLeftRec map[string]bool
	// Cost estimates the work of parsing one attempt of the production's
	// body (used by the inliner).
	Cost map[string]int
	// First maps productions to an over-approximate set of bytes a
	// successful non-empty match can start with; FirstPrecise reports
	// whether the set is exact enough for dispatch (no predicates or
	// imprecision on the left edge).
	First        map[string]*ByteSet
	FirstPrecise map[string]bool
	// Valued reports per production whether it can ever produce a non-nil
	// semantic value. The engines use this (interprocedural) property for
	// value specialization — in particular, a repetition whose body is
	// never valued produces nil rather than an empty list, and the
	// property must not change under inlining.
	Valued map[string]bool
}

// Analyze computes all properties of g.
func Analyze(g *peg.Grammar) *Analysis {
	a := &Analysis{
		Grammar:       g,
		Nullable:      map[string]bool{},
		Reachable:     map[string]bool{},
		RefCount:      map[string]int{},
		Recursive:     map[string]bool{},
		LeftRecursive: map[string]bool{},
		DirectLeftRec: map[string]bool{},
		Cost:          map[string]int{},
		First:         map[string]*ByteSet{},
		FirstPrecise:  map[string]bool{},
		Valued:        map[string]bool{},
	}
	a.computeNullable()
	a.computeValued()
	a.computeReachable()
	a.computeRefCounts()
	a.computeRecursion()
	a.computeDirectLeftRec()
	a.computeCosts()
	a.computeFirstSets()
	return a
}

// ---------------------------------------------------------------- nullable

func (a *Analysis) computeNullable() {
	changed := true
	for changed {
		changed = false
		for _, name := range a.Grammar.Order {
			p := a.Grammar.Prods[name]
			if a.Nullable[name] {
				continue
			}
			if p.Choice != nil && a.exprNullable(p.Choice) {
				a.Nullable[name] = true
				changed = true
			}
		}
	}
}

// exprNullable reports whether e can succeed without consuming input, under
// the current (monotonically growing) production table.
func (a *Analysis) exprNullable(e peg.Expr) bool {
	switch e := e.(type) {
	case *peg.Empty:
		return true
	case *peg.Literal:
		return len(e.Text) == 0
	case *peg.CharClass, *peg.Any:
		return false
	case *peg.NonTerm:
		return a.Nullable[e.Name]
	case *peg.Capture:
		return a.exprNullable(e.Expr)
	case *peg.And, *peg.Not:
		return true
	case *peg.Optional:
		return true
	case *peg.Repeat:
		if e.Min == 0 {
			return true
		}
		return a.exprNullable(e.Expr)
	case *peg.Seq:
		for _, it := range e.Items {
			if !a.exprNullable(it.Expr) {
				return false
			}
		}
		return true
	case *peg.Choice:
		for _, alt := range e.Alts {
			if a.exprNullable(alt) {
				return true
			}
		}
		return false
	case *peg.LeftRec:
		// Suffixes iterate zero or more times; the seed decides.
		return a.exprNullable(e.Seed)
	default:
		return false
	}
}

// ----------------------------------------------------------------- valued

// computeValued computes, to a fixpoint, whether each production can
// produce a non-nil semantic value. text productions always produce a
// token; void productions never produce anything; otherwise the body
// decides, looking through references.
func (a *Analysis) computeValued() {
	changed := true
	for changed {
		changed = false
		for _, name := range a.Grammar.Order {
			if a.Valued[name] {
				continue
			}
			p := a.Grammar.Prods[name]
			v := false
			switch {
			case p.Attrs.Has(peg.AttrText):
				v = true
			case p.Attrs.Has(peg.AttrVoid):
				v = false
			default:
				v = a.ExprValued(p.Choice)
			}
			if v {
				a.Valued[name] = true
				changed = true
			}
		}
	}
}

// ExprValued reports whether e can produce a non-nil semantic value,
// looking through nonterminal references (monotone under the current
// Valued table; exact after Analyze).
func (a *Analysis) ExprValued(e peg.Expr) bool {
	switch e := e.(type) {
	case nil, *peg.Empty, *peg.Literal, *peg.And, *peg.Not:
		return false
	case *peg.CharClass, *peg.Any, *peg.Capture:
		return true
	case *peg.NonTerm:
		if _, defined := a.Grammar.Prods[e.Name]; !defined {
			return true // undefined (reported elsewhere): stay conservative
		}
		return a.Valued[e.Name]
	case *peg.Optional:
		return a.ExprValued(e.Expr)
	case *peg.Repeat:
		return a.ExprValued(e.Expr)
	case *peg.Seq:
		if e.Ctor != "" {
			return true
		}
		for _, it := range e.Items {
			if a.ExprValued(it.Expr) {
				return true
			}
		}
		return false
	case *peg.Choice:
		for _, alt := range e.Alts {
			if a.ExprValued(alt) {
				return true
			}
		}
		return false
	case *peg.LeftRec:
		if a.ExprValued(e.Seed) {
			return true
		}
		for _, s := range e.Suffixes {
			if a.ExprValued(s) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// -------------------------------------------------------------- reachable

func (a *Analysis) computeReachable() {
	if a.Grammar.Root == "" {
		return
	}
	var visit func(name string)
	visit = func(name string) {
		if a.Reachable[name] {
			return
		}
		a.Reachable[name] = true
		p := a.Grammar.Prods[name]
		if p == nil {
			return
		}
		peg.Walk(p.Choice, func(e peg.Expr) {
			if nt, ok := e.(*peg.NonTerm); ok {
				visit(nt.Name)
			}
		})
	}
	visit(a.Grammar.Root)
}

func (a *Analysis) computeRefCounts() {
	if a.Grammar.Root != "" {
		a.RefCount[a.Grammar.Root]++
	}
	for _, name := range a.Grammar.Order {
		if !a.Reachable[name] {
			continue
		}
		p := a.Grammar.Prods[name]
		peg.Walk(p.Choice, func(e peg.Expr) {
			if nt, ok := e.(*peg.NonTerm); ok {
				a.RefCount[nt.Name]++
			}
		})
	}
}

// -------------------------------------------------------------- recursion

// computeRecursion finds cycles in the full call graph (Recursive) and in
// the left-edge call graph (LeftRecursive).
func (a *Analysis) computeRecursion() {
	full := map[string][]string{}
	left := map[string][]string{}
	for _, name := range a.Grammar.Order {
		p := a.Grammar.Prods[name]
		fullSet := map[string]bool{}
		peg.Walk(p.Choice, func(e peg.Expr) {
			if nt, ok := e.(*peg.NonTerm); ok {
				fullSet[nt.Name] = true
			}
		})
		full[name] = sortedKeys(fullSet)
		leftSet := map[string]bool{}
		if p.Choice != nil {
			a.leftCalls(p.Choice, leftSet)
		}
		left[name] = sortedKeys(leftSet)
	}
	for name, set := range reachesSelf(full) {
		a.Recursive[name] = set
	}
	for name, set := range reachesSelf(left) {
		a.LeftRecursive[name] = set
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reachesSelf returns, for every node of the graph, whether the node can
// reach itself through one or more edges.
func reachesSelf(graph map[string][]string) map[string]bool {
	out := map[string]bool{}
	for start := range graph {
		seen := map[string]bool{}
		stack := append([]string(nil), graph[start]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == start {
				out[start] = true
				break
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, graph[n]...)
		}
	}
	return out
}

// leftCalls collects the productions callable before any input has been
// consumed by e. Predicates are included (they parse at the same position).
func (a *Analysis) leftCalls(e peg.Expr, out map[string]bool) {
	switch e := e.(type) {
	case *peg.NonTerm:
		out[e.Name] = true
	case *peg.Capture:
		a.leftCalls(e.Expr, out)
	case *peg.And:
		a.leftCalls(e.Expr, out)
	case *peg.Not:
		a.leftCalls(e.Expr, out)
	case *peg.Optional:
		a.leftCalls(e.Expr, out)
	case *peg.Repeat:
		a.leftCalls(e.Expr, out)
	case *peg.Seq:
		for _, it := range e.Items {
			a.leftCalls(it.Expr, out)
			if !a.exprNullable(it.Expr) {
				break
			}
		}
	case *peg.Choice:
		for _, alt := range e.Alts {
			a.leftCalls(alt, out)
		}
	case *peg.LeftRec:
		a.leftCalls(e.Seed, out)
		if a.exprNullable(e.Seed) {
			for _, s := range e.Suffixes {
				a.leftCalls(s, out)
			}
		}
	}
}

// computeDirectLeftRec flags productions whose choice has an alternative
// literally beginning with a self-reference — the pattern the optimizer's
// left-recursion transform rewrites to iteration.
func (a *Analysis) computeDirectLeftRec() {
	for _, name := range a.Grammar.Order {
		p := a.Grammar.Prods[name]
		if p.Choice == nil {
			continue
		}
		for _, alt := range p.Choice.Alts {
			if len(alt.Items) == 0 {
				continue
			}
			if nt, ok := alt.Items[0].Expr.(*peg.NonTerm); ok && nt.Name == name {
				a.DirectLeftRec[name] = true
				break
			}
		}
	}
}

// ------------------------------------------------------------------- cost

// Cost weights per expression kind; a nonterminal reference costs the call
// overhead, not the callee's cost (inlining decisions look at the callee's
// own cost separately).
const (
	costByte    = 1 // one byte comparison
	costCall    = 4 // nonterminal invocation (memo probe + dispatch)
	costPred    = 2 // predicate save/restore
	costRepeat  = 3 // loop setup
	costCapture = 2
)

// ExprCost estimates the work of one attempt at e.
func ExprCost(e peg.Expr) int {
	switch e := e.(type) {
	case nil, *peg.Empty:
		return 0
	case *peg.Literal:
		return costByte * len(e.Text)
	case *peg.CharClass, *peg.Any:
		return costByte
	case *peg.NonTerm:
		return costCall
	case *peg.Capture:
		return costCapture + ExprCost(e.Expr)
	case *peg.And:
		return costPred + ExprCost(e.Expr)
	case *peg.Not:
		return costPred + ExprCost(e.Expr)
	case *peg.Optional:
		return 1 + ExprCost(e.Expr)
	case *peg.Repeat:
		return costRepeat + ExprCost(e.Expr)
	case *peg.Seq:
		n := 0
		for _, it := range e.Items {
			n += ExprCost(it.Expr)
		}
		return n
	case *peg.Choice:
		n := 0
		for _, alt := range e.Alts {
			n += ExprCost(alt)
		}
		return n
	case *peg.LeftRec:
		n := costRepeat + ExprCost(e.Seed)
		for _, s := range e.Suffixes {
			n += ExprCost(s)
		}
		return n
	default:
		return costCall
	}
}

func (a *Analysis) computeCosts() {
	for _, name := range a.Grammar.Order {
		a.Cost[name] = ExprCost(a.Grammar.Prods[name].Choice)
	}
}

// ------------------------------------------------------------- first sets

// computeFirstSets computes, per production, the set of bytes a successful
// match can start with. The computation iterates to a fixpoint; precision
// is tracked so the engines only build dispatch tables from exact sets.
func (a *Analysis) computeFirstSets() {
	for _, name := range a.Grammar.Order {
		a.First[name] = &ByteSet{}
		a.FirstPrecise[name] = true
	}
	changed := true
	for changed {
		changed = false
		for _, name := range a.Grammar.Order {
			p := a.Grammar.Prods[name]
			set, precise := a.firstOf(p.Choice)
			old := a.First[name]
			if !setEqual(old, set) {
				a.First[name] = set
				changed = true
			}
			if precise != a.FirstPrecise[name] && !precise {
				a.FirstPrecise[name] = false
				changed = true
			}
		}
	}
}

func setEqual(x, y *ByteSet) bool { return x.bits == y.bits }

// firstOf returns the first-byte over-approximation of e and whether it is
// precise. A precise set S guarantees: if the next input byte is not in S
// and e is not nullable, e cannot match.
func (a *Analysis) firstOf(e peg.Expr) (*ByteSet, bool) {
	set := &ByteSet{}
	precise := true
	switch e := e.(type) {
	case nil, *peg.Empty:
		// matches empty; contributes nothing
	case *peg.Literal:
		if len(e.Text) > 0 {
			set.Add(e.Text[0])
		}
	case *peg.CharClass:
		for _, r := range e.Ranges {
			set.AddRange(r.Lo, r.Hi)
		}
		if e.Negated {
			set.Invert()
		}
	case *peg.Any:
		set.AddAll()
	case *peg.NonTerm:
		if f := a.First[e.Name]; f != nil {
			set.Union(f)
			precise = a.FirstPrecise[e.Name]
		} else {
			// Undefined reference (reported by Check): assume anything.
			set.AddAll()
			precise = false
		}
	case *peg.Capture:
		return a.firstOf(e.Expr)
	case *peg.And, *peg.Not:
		// Predicates do not consume; they constrain, which only ever
		// shrinks the true first set, so contributing nothing stays an
		// over-approximation. But a sequence headed by a predicate cannot
		// be dispatched on, so mark imprecise.
		precise = false
	case *peg.Optional:
		s, p := a.firstOf(e.Expr)
		set.Union(s)
		precise = p
	case *peg.Repeat:
		s, p := a.firstOf(e.Expr)
		set.Union(s)
		precise = p
	case *peg.Seq:
		for _, it := range e.Items {
			s, p := a.firstOf(it.Expr)
			set.Union(s)
			if !p {
				precise = false
			}
			if !a.exprNullable(it.Expr) {
				break
			}
		}
	case *peg.Choice:
		for _, alt := range e.Alts {
			s, p := a.firstOf(alt)
			set.Union(s)
			if !p {
				precise = false
			}
		}
	case *peg.LeftRec:
		s, p := a.firstOf(e.Seed)
		set.Union(s)
		if !p {
			precise = false
		}
		if a.exprNullable(e.Seed) {
			for _, sx := range e.Suffixes {
				s, p := a.firstOf(sx)
				set.Union(s)
				if !p {
					precise = false
				}
			}
		}
	}
	return set, precise
}

// ------------------------------------------------------------------ check

// FirstOfExpr exposes the expression-level first-byte computation for
// engine compilers building dispatch tables.
func FirstOfExpr(a *Analysis, e peg.Expr) (*ByteSet, bool) { return a.firstOf(e) }

// NullableExpr exposes the expression-level nullability test.
func NullableExpr(a *Analysis, e peg.Expr) bool { return a.exprNullable(e) }

// Check validates the grammar for execution: the root exists, every
// reference is defined, no production is left-recursive unless it is the
// directly-rewritable pattern (which the optimizer can transform and the
// engines refuse to run untransformed), and no repetition body is nullable.
//
// The returned error (if any) aggregates every violation, one per line.
func (a *Analysis) Check() error {
	var problems []string
	g := a.Grammar
	if g.Root == "" {
		problems = append(problems, "grammar has no root production")
	} else if g.Prods[g.Root] == nil {
		problems = append(problems, fmt.Sprintf("root production %q is not defined", g.Root))
	}
	for _, name := range g.Order {
		p := g.Prods[name]
		peg.Walk(p.Choice, func(e peg.Expr) {
			switch e := e.(type) {
			case *peg.NonTerm:
				if g.Prods[e.Name] == nil {
					problems = append(problems, fmt.Sprintf("%s: undefined reference %q", name, e.Name))
				}
			case *peg.Repeat:
				if a.exprNullable(e.Expr) {
					problems = append(problems,
						fmt.Sprintf("%s: repetition body %s can match the empty string (would loop forever)",
							name, peg.FormatExpr(e.Expr)))
				}
			case *peg.LeftRec:
				for _, s := range e.Suffixes {
					if a.exprNullable(s) {
						problems = append(problems,
							fmt.Sprintf("%s: left-recursion suffix %s can match the empty string (would loop forever)",
								name, peg.FormatExpr(s)))
					}
				}
			}
		})
		if a.LeftRecursive[name] && !a.DirectLeftRec[name] {
			problems = append(problems,
				fmt.Sprintf("%s: left recursion is not in the directly transformable form", name))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	sort.Strings(problems)
	return fmt.Errorf("grammar check failed:\n  %s", strings.Join(problems, "\n  "))
}

// CheckTransformed is the stricter post-optimization check: in addition to
// Check, no left recursion at all may remain (the engines assume it).
func (a *Analysis) CheckTransformed() error {
	if err := a.Check(); err != nil {
		return err
	}
	var problems []string
	for _, name := range a.Grammar.Order {
		if a.LeftRecursive[name] {
			problems = append(problems, fmt.Sprintf("%s: left recursion survived transformation", name))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	sort.Strings(problems)
	return fmt.Errorf("grammar check failed:\n  %s", strings.Join(problems, "\n  "))
}
