// Backtrack-prefix tests live in an external test package so they can
// run the left-recursion transform (transform imports analysis).
package analysis_test

import (
	"testing"

	"modpeg/internal/analysis"
	"modpeg/internal/core"
	"modpeg/internal/peg"
	"modpeg/internal/transform"
)

func composed(t *testing.T, body string) *peg.Grammar {
	t.Helper()
	g, err := core.Compose("m", core.MapResolver{"m": "module m;\n" + body})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	return g
}

func names(set map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k, v := range set {
		if v {
			out[k] = true
		}
	}
	return out
}

// TestBacktrackPrefixesChoice pins the policy on the paper's motivating
// shape: a conditional whose two alternatives both start by parsing the
// same operator tower. Only the outermost shared production is worth a
// memo column — once it hits, the retry never descends further, so the
// inner tower members must be filtered out as dominated.
func TestBacktrackPrefixesChoice(t *testing.T) {
	// The tower below Or is deliberately choice-free (repetitions, not
	// ordered alternatives) so the only competition is Cond's retry.
	g := composed(t, `
option root = S;
public S = c:Cond !. ;
Cond = c:Or "?" t:Cond ":" f:Cond @If / Or ;
Or = l:And ("|" And)* ;
And = l:Prim ("&" Prim)* ;
Prim = v:$([0-9]+) @N ;
`)
	got := names(analysis.Analyze(g).BacktrackPrefixes())
	if !got["m.Or"] {
		t.Errorf("Or is re-entered by the Cond retry and must be memoized; got %v", got)
	}
	for _, dominated := range []string{"m.And", "m.Prim"} {
		if got[dominated] {
			t.Errorf("%s sits below Or on the shared frontier and must be dominated out; got %v", dominated, got)
		}
	}
	if got["m.Cond"] || got["m.S"] {
		t.Errorf("no choice point re-enters Cond or S at the same position; got %v", got)
	}
}

// TestBacktrackPrefixesNullablePrefix covers the sequence rule: in
// `A? B`, when A fails or succeeds empty, B probes the position A just
// examined, so a production on both leftmost frontiers is parsed twice.
func TestBacktrackPrefixesNullablePrefix(t *testing.T) {
	g := composed(t, `
public S = A? B !. ;
A = X "a" ;
B = X "b" ;
X = "x" ;
`)
	got := names(analysis.Analyze(g).BacktrackPrefixes())
	if !got["m.X"] {
		t.Errorf("X is probed by both A? and B at the same position; got %v", got)
	}
	for _, absent := range []string{"m.A", "m.B", "m.S"} {
		if got[absent] {
			t.Errorf("%s is never re-entered at one position; got %v", absent, got)
		}
	}
}

// TestBacktrackPrefixesLeftRecSuffixes covers the transformed grammar:
// each growth step of a left recursion tries every suffix at the
// current end, so productions shared across suffix frontiers compete.
func TestBacktrackPrefixesLeftRecSuffixes(t *testing.T) {
	g := composed(t, `
option root = P;
public P = e:E !. ;
E = <add> l:E Sp "+" r:T @Add / <sub> l:E Sp "-" r:T @Sub / T ;
T = v:$([0-9]+) @N ;
void Sp = " "* ;
`)
	tg, _, err := transform.Apply(g, transform.Options{LeftRecursion: true})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	got := names(analysis.Analyze(tg).BacktrackPrefixes())
	if !got["m.Sp"] {
		t.Errorf("Sp leads both left-recursion suffixes and must be memoized; got %v", got)
	}
	if got["m.T"] {
		t.Errorf("T is only reached after a suffix consumed its operator; got %v", got)
	}
}

// TestBacktrackPrefixesNoCompetition: straight-line grammars create no
// same-position re-entry, so the memo set must be empty — this is what
// lets the compiled engine run simple grammars with zero memo columns.
func TestBacktrackPrefixesNoCompetition(t *testing.T) {
	g := composed(t, `
public S = "a" B "c" !. ;
B = "b"+ ;
`)
	if got := names(analysis.Analyze(g).BacktrackPrefixes()); len(got) != 0 {
		t.Errorf("no competition anywhere, want empty memo set, got %v", got)
	}
}
