package analysis

import (
	"fmt"
	"strings"
)

// ByteSet is a set of byte values, used for first-byte (dispatch) analysis.
type ByteSet struct {
	bits [4]uint64
}

// Add inserts byte b.
func (s *ByteSet) Add(b byte) { s.bits[b>>6] |= 1 << (b & 63) }

// AddRange inserts every byte in [lo, hi].
func (s *ByteSet) AddRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		s.Add(byte(b))
	}
}

// AddAll inserts every byte value.
func (s *ByteSet) AddAll() {
	for i := range s.bits {
		s.bits[i] = ^uint64(0)
	}
}

// Has reports membership of byte b.
func (s *ByteSet) Has(b byte) bool { return s.bits[b>>6]&(1<<(b&63)) != 0 }

// Union merges o into s.
func (s *ByteSet) Union(o *ByteSet) {
	for i := range s.bits {
		s.bits[i] |= o.bits[i]
	}
}

// Invert complements the set in place.
func (s *ByteSet) Invert() {
	for i := range s.bits {
		s.bits[i] = ^s.bits[i]
	}
}

// Len returns the number of bytes in the set.
func (s *ByteSet) Len() int {
	n := 0
	for _, w := range s.bits {
		n += popcount(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *ByteSet) Empty() bool {
	return s.bits[0] == 0 && s.bits[1] == 0 && s.bits[2] == 0 && s.bits[3] == 0
}

// Intersects reports whether the two sets share any byte.
func (s *ByteSet) Intersects(o *ByteSet) bool {
	for i := range s.bits {
		if s.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns a copy of the set.
func (s *ByteSet) Clone() *ByteSet {
	c := *s
	return &c
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// String renders the set compactly as ranges, for debugging output.
func (s *ByteSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < 256; {
		if !s.Has(byte(i)) {
			i++
			continue
		}
		j := i
		for j+1 < 256 && s.Has(byte(j+1)) {
			j++
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		if i == j {
			fmt.Fprintf(&b, "%s", byteName(byte(i)))
		} else {
			fmt.Fprintf(&b, "%s-%s", byteName(byte(i)), byteName(byte(j)))
		}
		i = j + 1
	}
	b.WriteByte('}')
	return b.String()
}

func byteName(c byte) string {
	if c >= 0x21 && c < 0x7f {
		return string(c)
	}
	return fmt.Sprintf("%02x", c)
}
