package analysis

import (
	"testing"

	"modpeg/internal/peg"
)

// The dispatch pipeline (bitmap terminals, scan fusion, first-set choice
// pruning) leans on ByteSet and firstOf being over-approximations in
// every corner case. These tests pin the corners named in the design:
// negated classes spanning the whole byte range, case-insensitive
// literal alternations, nullable-prefix First unions, and imprecision
// under predicates.

func classOf(t *testing.T, body string) (*Analysis, *peg.CharClass) {
	t.Helper()
	g := grammarOf(t, "public S = "+body+" ;\n")
	a := Analyze(g)
	choice := g.Prods[g.Root].Choice
	if len(choice.Alts) != 1 {
		t.Fatalf("unexpected root shape: %d alts", len(choice.Alts))
	}
	seq := choice.Alts[0]
	cc, ok := seq.Items[0].Expr.(*peg.CharClass)
	if !ok {
		t.Fatalf("root item is %T, want *peg.CharClass", seq.Items[0].Expr)
	}
	return a, cc
}

func TestNegatedFullRangeClass(t *testing.T) {
	// [^\x00-\xff] excludes every byte: its first set must be empty and
	// the class can never match — the degenerate bitmap, not a panic.
	a, cc := classOf(t, `[^\x00-\xff]`)
	set, precise := FirstOfExpr(a, cc)
	if !precise {
		t.Error("a bare class is a precise first set")
	}
	if !set.Empty() || set.Len() != 0 {
		t.Errorf("first([^\\x00-\\xff]) = %s, want {}", set)
	}
	for _, b := range []byte{0, 'a', 0xff} {
		if cc.Matches(b) {
			t.Errorf("negated full-range class matches %#x", b)
		}
	}
}

func TestNegatedEmptyClassIsFullRange(t *testing.T) {
	// A negated class with no ranges accepts every byte, including 0x00
	// and 0xff at the bitmap's word boundaries. The surface syntax
	// rejects an empty [^], so build the expression directly — the
	// transform pipeline can still produce one (e.g. by dead-range
	// elimination), and the bitmap compiler must cope.
	a, _ := classOf(t, `[^\x00-\xff]`)
	cc := &peg.CharClass{Negated: true}
	set, _ := FirstOfExpr(a, cc)
	if set.Len() != 256 {
		t.Fatalf("first([^]) has %d bytes, want 256", set.Len())
	}
	for _, b := range []byte{0x00, 0x3f, 0x40, 0x7f, 0x80, 0xbf, 0xc0, 0xff} {
		if !set.Has(b) || !cc.Matches(b) {
			t.Errorf("byte %#x missing from negated empty class", b)
		}
	}
}

func TestCaseInsensitiveLiteralFirstUnion(t *testing.T) {
	// The grammar language spells case-insensitive keywords as an
	// alternation (or a class head): the choice's first set must union
	// both cases, so dispatch cannot prune the other-case alternative.
	g := grammarOf(t, `
public S = KW ;
KW = "select" / "SELECT" / [sS] "et" ;
`)
	a := Analyze(g)
	set := a.First["m.KW"]
	if set == nil {
		t.Fatal("no first set for m.KW")
	}
	if !set.Has('s') || !set.Has('S') {
		t.Errorf("first(KW) = %s, want both 's' and 'S'", set)
	}
	if set.Len() != 2 {
		t.Errorf("first(KW) = %s, want exactly {S s}", set)
	}
	if !a.FirstPrecise["m.KW"] {
		t.Error("literal/class alternation must stay precise")
	}
}

func TestNullableLiteralContributesNothing(t *testing.T) {
	// An empty literal matches without consuming: no first byte.
	g := grammarOf(t, `
public S = E "x" ;
E = "" ;
`)
	a := Analyze(g)
	if !a.Nullable["m.E"] {
		t.Fatal("empty literal must be nullable")
	}
	if set := a.First["m.E"]; !set.Empty() {
		t.Errorf("first(\"\") = %s, want {}", set)
	}
	// The enclosing sequence unions past the nullable prefix.
	if set := a.First["m.S"]; !set.Has('x') || set.Len() != 1 {
		t.Errorf("first(S) = %s, want {x}", set)
	}
}

func TestNullablePrefixFirstUnion(t *testing.T) {
	// A sequence unions first sets up to and including the first
	// non-nullable item; everything after it must not leak in.
	g := grammarOf(t, `
public S = A? B* C "z" ;
A = "a" ;
B = "b" ;
C = "c" ;
`)
	a := Analyze(g)
	set := a.First["m.S"]
	for _, b := range []byte{'a', 'b', 'c'} {
		if !set.Has(b) {
			t.Errorf("first(S) = %s, missing %q", set, b)
		}
	}
	if set.Has('z') {
		t.Errorf("first(S) = %s: 'z' leaked past the non-nullable C", set)
	}
	if a.Nullable["m.S"] {
		t.Error("S consumes C; not nullable")
	}
	if !a.FirstPrecise["m.S"] {
		t.Error("optional/star prefixes keep the first set precise")
	}
}

func TestPredicateHeadedFirstIsImprecise(t *testing.T) {
	// Predicates consume nothing and only constrain; they contribute no
	// bytes but poison precision, so dispatch keeps an over-approximate
	// set and the engine may not treat it as exact.
	g := grammarOf(t, `
public S = P N ;
P = &[0-9] [0-9a-f]+ ;
N = ![,\]] Item ;
Item = [a-z]+ ;
`)
	a := Analyze(g)
	pset := a.First["m.P"]
	// The &[0-9] guard means only digits can really start P, but firstOf
	// must not shrink below the consuming item's set: over-approximation.
	for b := byte('0'); b <= 'f'; b++ {
		if (b <= '9' || b >= 'a') && !pset.Has(b) {
			t.Errorf("first(P) = %s, missing %q", pset, b)
		}
	}
	if a.FirstPrecise["m.P"] {
		t.Error("predicate-headed production must be imprecise")
	}
	nset := a.First["m.N"]
	if !nset.Has('a') || !nset.Has('z') || nset.Has(',') {
		t.Errorf("first(N) = %s, want the Item letters only", nset)
	}
	if a.FirstPrecise["m.N"] {
		t.Error("negative-lookahead head must be imprecise")
	}
	// Imprecise sets still gate soundly: a byte outside the set cannot
	// start a match, because predicates never extend the true first set.
	if pset.Has(',') || nset.Has('.') {
		t.Error("over-approximation admitted bytes no alternative can consume")
	}
}
