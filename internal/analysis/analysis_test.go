package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"modpeg/internal/core"
	"modpeg/internal/peg"
)

// grammarOf composes a single-module grammar from source for testing.
func grammarOf(t *testing.T, body string) *peg.Grammar {
	t.Helper()
	g, err := core.Compose("m", core.MapResolver{"m": "module m;\n" + body})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	return g
}

func TestNullable(t *testing.T) {
	g := grammarOf(t, `
public S = A B ;
A = "a"? ;
B = "b" ;
C = A A ;
D = &B ;
E = !B ;
F = B* ;
G = B+ ;
H = $(A) ;
I = () ;
J = B ;
`)
	a := Analyze(g)
	want := map[string]bool{
		"m.S": false, // A? then B: B consumes
		"m.A": true,
		"m.B": false,
		"m.C": true,
		"m.D": true,
		"m.E": true,
		"m.F": true,
		"m.G": false,
		"m.H": true,
		"m.I": true,
		"m.J": false,
	}
	for name, w := range want {
		if a.Nullable[name] != w {
			t.Errorf("Nullable[%s] = %v, want %v", name, a.Nullable[name], w)
		}
	}
}

func TestNullableMutualRecursion(t *testing.T) {
	// S -> A, A -> S "x" / eps: A nullable, S nullable through A.
	g := grammarOf(t, `
public S = A ;
A = "x" A / ;
`)
	a := Analyze(g)
	if !a.Nullable["m.S"] || !a.Nullable["m.A"] {
		t.Fatalf("nullable = %v", a.Nullable)
	}
}

func TestReachableAndRefCount(t *testing.T) {
	g := grammarOf(t, `
public S = A A ;
A = "a" ;
Dead = "d" DeadHelper ;
DeadHelper = "h" ;
`)
	a := Analyze(g)
	if !a.Reachable["m.S"] || !a.Reachable["m.A"] {
		t.Fatal("S and A must be reachable")
	}
	if a.Reachable["m.Dead"] || a.Reachable["m.DeadHelper"] {
		t.Fatal("Dead must be unreachable")
	}
	if a.RefCount["m.A"] != 2 {
		t.Fatalf("RefCount[A] = %d", a.RefCount["m.A"])
	}
	if a.RefCount["m.S"] != 1 { // implicit root reference
		t.Fatalf("RefCount[S] = %d", a.RefCount["m.S"])
	}
	if a.RefCount["m.DeadHelper"] != 0 {
		t.Fatal("references from unreachable productions must not count")
	}
}

func TestRecursionKinds(t *testing.T) {
	g := grammarOf(t, `
public S = Expr ;
Expr = Expr "+" Term / Term ;
Term = "(" Expr ")" / [0-9] ;
Right = "x" Right / "x" ;
Hidden = Opt Hidden "z" / "y" ;
Opt = "o"? ;
NotRec = [0-9] ;
`)
	a := Analyze(g)
	if !a.Recursive["m.Expr"] || !a.Recursive["m.Term"] || !a.Recursive["m.Right"] {
		t.Fatal("recursion flags missing")
	}
	if a.Recursive["m.NotRec"] || a.Recursive["m.S"] {
		t.Fatal("spurious recursion flags")
	}
	if !a.LeftRecursive["m.Expr"] {
		t.Fatal("Expr is left recursive")
	}
	if a.LeftRecursive["m.Term"] || a.LeftRecursive["m.Right"] {
		t.Fatal("Term/Right are not left recursive")
	}
	// Hidden: Opt is nullable, so Hidden can reach itself at the left edge.
	if !a.LeftRecursive["m.Hidden"] {
		t.Fatal("Hidden left recursion through nullable prefix missed")
	}
	if !a.DirectLeftRec["m.Expr"] {
		t.Fatal("Expr has the direct pattern")
	}
	if a.DirectLeftRec["m.Hidden"] {
		t.Fatal("Hidden is not directly rewritable")
	}
}

func TestIndirectLeftRecursionDetected(t *testing.T) {
	g := grammarOf(t, `
public S = A ;
A = B "x" / "a" ;
B = A "y" / "b" ;
`)
	a := Analyze(g)
	if !a.LeftRecursive["m.A"] || !a.LeftRecursive["m.B"] {
		t.Fatal("indirect left recursion missed")
	}
	err := a.Check()
	if err == nil || !strings.Contains(err.Error(), "not in the directly transformable form") {
		t.Fatalf("Check = %v", err)
	}
}

func TestCheckAcceptsCleanGrammar(t *testing.T) {
	g := grammarOf(t, `
public S = A* "end" ;
A = [a-z]+ ;
`)
	if err := Analyze(g).Check(); err != nil {
		t.Fatalf("Check = %v", err)
	}
	if err := Analyze(g).CheckTransformed(); err != nil {
		t.Fatalf("CheckTransformed = %v", err)
	}
}

func TestCheckNullableRepetition(t *testing.T) {
	g := grammarOf(t, `
public S = A* "x" ;
A = "a"? ;
`)
	err := Analyze(g).Check()
	if err == nil || !strings.Contains(err.Error(), "would loop forever") {
		t.Fatalf("Check = %v", err)
	}
}

func TestCheckDirectLeftRecursionPassesCheckButNotTransformed(t *testing.T) {
	g := grammarOf(t, `
public S = S "+" [0-9] / [0-9] ;
`)
	a := Analyze(g)
	if err := a.Check(); err != nil {
		t.Fatalf("direct left recursion must pass Check (transformable): %v", err)
	}
	err := a.CheckTransformed()
	if err == nil || !strings.Contains(err.Error(), "survived transformation") {
		t.Fatalf("CheckTransformed = %v", err)
	}
}

func TestCheckMissingRoot(t *testing.T) {
	g := &peg.Grammar{Prods: map[string]*peg.Production{}}
	err := Analyze(g).Check()
	if err == nil || !strings.Contains(err.Error(), "no root") {
		t.Fatalf("Check = %v", err)
	}
	g2 := &peg.Grammar{Root: "Gone", Prods: map[string]*peg.Production{}}
	err = Analyze(g2).Check()
	if err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("Check = %v", err)
	}
}

func TestCheckUndefinedReference(t *testing.T) {
	g := &peg.Grammar{Root: "S", Prods: map[string]*peg.Production{}}
	g.Add(peg.DefineProd("S", peg.AttrPublic, peg.Alt(peg.SeqOf(peg.Ref("Nope")))))
	err := Analyze(g).Check()
	if err == nil || !strings.Contains(err.Error(), "undefined reference") {
		t.Fatalf("Check = %v", err)
	}
}

func TestFirstSets(t *testing.T) {
	g := grammarOf(t, `
public S = Num / Ident / Paren ;
Num = [0-9]+ ;
Ident = [a-z] [a-z0-9]* ;
Paren = "(" S ")" ;
`)
	a := Analyze(g)
	s := a.First["m.S"]
	for _, b := range []byte{'0', '9', 'a', 'z', '('} {
		if !s.Has(b) {
			t.Errorf("First[S] missing %q", b)
		}
	}
	for _, b := range []byte{'A', ' ', ')'} {
		if s.Has(b) {
			t.Errorf("First[S] must not contain %q", b)
		}
	}
	if !a.FirstPrecise["m.S"] {
		t.Fatal("First[S] should be precise")
	}
	num := a.First["m.Num"]
	if num.Len() != 10 {
		t.Fatalf("First[Num] = %s", num)
	}
}

func TestFirstSetsWithPredicatesImprecise(t *testing.T) {
	g := grammarOf(t, `
public S = !"if" Ident / Key ;
Ident = [a-z]+ ;
Key = "if" ;
`)
	a := Analyze(g)
	if a.FirstPrecise["m.S"] {
		t.Fatal("predicate on the left edge must be imprecise")
	}
	if a.FirstPrecise["m.Ident"] != true {
		t.Fatal("Ident is precise")
	}
}

func TestFirstSetNullablePrefixUnionsFollow(t *testing.T) {
	g := grammarOf(t, `
public S = A "z" ;
A = "a"? ;
`)
	a := Analyze(g)
	s := a.First["m.S"]
	if !s.Has('a') || !s.Has('z') {
		t.Fatalf("First[S] = %s", s)
	}
}

func TestFirstSetNegatedClassAndAny(t *testing.T) {
	g := grammarOf(t, `
public S = [^a] / "b" ;
T = . ;
`)
	a := Analyze(g)
	s := a.First["m.S"]
	if s.Has('a') != true { // 'b' is in [^a] complement? 'a' excluded by class but "b" alt adds 'b'; 'a' not in any alt
		// [^a] includes every byte except 'a'; so First[S] = all bytes except 'a', plus 'b'.
		t.Log("checking negated class semantics")
	}
	if s.Has('a') {
		t.Fatal("'a' must not start S")
	}
	if !s.Has(0) || !s.Has(255) || !s.Has('b') {
		t.Fatalf("First[S] = %s", s)
	}
	at := a.First["m.T"]
	if at.Len() != 256 {
		t.Fatalf("First[.] = %d bytes", at.Len())
	}
}

func TestCosts(t *testing.T) {
	g := grammarOf(t, `
public S = "abc" ;
T = A B ;
A = "a" ;
B = "b" ;
`)
	a := Analyze(g)
	if a.Cost["m.S"] != 3*costByte {
		t.Fatalf("Cost[S] = %d", a.Cost["m.S"])
	}
	if a.Cost["m.T"] != 2*costCall {
		t.Fatalf("Cost[T] = %d", a.Cost["m.T"])
	}
	if ExprCost(nil) != 0 || ExprCost(peg.Eps()) != 0 {
		t.Fatal("trivial costs")
	}
	if ExprCost(peg.Text(peg.Lit("ab"))) != costCapture+2 {
		t.Fatal("capture cost")
	}
	if ExprCost(peg.Ahead(peg.Lit("a"))) != costPred+1 || ExprCost(peg.Never(peg.Lit("a"))) != costPred+1 {
		t.Fatal("predicate cost")
	}
	if ExprCost(peg.Star(peg.Lit("a"))) != costRepeat+1 {
		t.Fatal("repeat cost")
	}
	if ExprCost(peg.Opt(peg.Lit("a"))) != 2 {
		t.Fatal("optional cost")
	}
}

func TestByteSetOps(t *testing.T) {
	var s ByteSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero set")
	}
	s.Add('a')
	s.AddRange('0', '9')
	if !s.Has('a') || !s.Has('5') || s.Has('b') {
		t.Fatal("membership")
	}
	if s.Len() != 11 {
		t.Fatalf("Len = %d", s.Len())
	}
	var o ByteSet
	o.Add('b')
	if s.Intersects(&o) {
		t.Fatal("disjoint")
	}
	o.Add('a')
	if !s.Intersects(&o) {
		t.Fatal("intersecting")
	}
	c := s.Clone()
	c.Add('z')
	if s.Has('z') {
		t.Fatal("clone aliases")
	}
	s.Union(&o)
	if !s.Has('b') {
		t.Fatal("union")
	}
	s.Invert()
	if s.Has('a') || !s.Has('c') {
		t.Fatal("invert")
	}
	var all ByteSet
	all.AddAll()
	if all.Len() != 256 {
		t.Fatal("AddAll")
	}
}

func TestByteSetString(t *testing.T) {
	var s ByteSet
	s.AddRange('a', 'c')
	s.Add(0x00)
	s.Add(' ')
	got := s.String()
	if !strings.Contains(got, "a-c") || !strings.Contains(got, "00") || !strings.Contains(got, "20") {
		t.Fatalf("String = %q", got)
	}
	var e ByteSet
	if e.String() != "{}" {
		t.Fatalf("empty String = %q", e.String())
	}
}

func TestByteSetProperties(t *testing.T) {
	// Union is monotone in Len; inversion is an involution.
	f := func(bs []byte, cs []byte) bool {
		var x, y ByteSet
		for _, b := range bs {
			x.Add(b)
		}
		for _, c := range cs {
			y.Add(c)
		}
		before := x.Len()
		x2 := x.Clone()
		x2.Union(&y)
		if x2.Len() < before || x2.Len() < y.Len() {
			return false
		}
		inv := x.Clone()
		inv.Invert()
		inv.Invert()
		return setEqual(inv, &x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirstSetSoundnessProperty(t *testing.T) {
	// For every production and byte b: if b can start a match (checked on
	// simple literal grammars), then b is in the first set. We verify with
	// a fixed grammar over alternatives whose first bytes are known.
	g := grammarOf(t, `
public S = "foo" / "bar" / [x-z] "!" / "q"? "w" ;
`)
	a := Analyze(g)
	s := a.First["m.S"]
	for _, b := range []byte{'f', 'b', 'x', 'y', 'z', 'q', 'w'} {
		if !s.Has(b) {
			t.Errorf("First[S] missing %q", b)
		}
	}
}

func TestValued(t *testing.T) {
	g := grammarOf(t, `
public S = V T N R RV ;
void V = [a-z] ;
text T = [a-z] ;
N = "lit" ;
R = N* ;
RV = T* ;
Chain = N ;
ChainDeep = Chain Chain ;
Tok = [0-9] ;
Pred = &Tok !Tok ;
Cap = $(N) ;
CtorOnly = "x" @X ;
`)
	a := Analyze(g)
	want := map[string]bool{
		"m.S":         true,  // contains T
		"m.V":         false, // void attr
		"m.T":         true,  // text attr
		"m.N":         false, // literal body
		"m.R":         false, // repetition of valueless production
		"m.RV":        true,  // repetition of token-producing production
		"m.Chain":     false, // reference to valueless production
		"m.ChainDeep": false,
		"m.Tok":       true, // char class token
		"m.Pred":      false,
		"m.Cap":       true, // capture
		"m.CtorOnly":  true, // constructor always builds a node
	}
	for name, w := range want {
		if a.Valued[name] != w {
			t.Errorf("Valued[%s] = %v, want %v", name, a.Valued[name], w)
		}
	}
	// ExprValued on an undefined reference stays conservative.
	if !a.ExprValued(peg.Ref("m.Missing")) {
		t.Error("undefined reference must be conservatively valued")
	}
	if a.ExprValued(nil) || a.ExprValued(peg.Eps()) {
		t.Error("nil/empty must be valueless")
	}
}

func TestValuedMutualRecursion(t *testing.T) {
	// Mutually recursive productions that only ever pass each other's
	// (value-free) results along are valueless at the fixpoint.
	g := grammarOf(t, `
public S = A ;
A = "a" B / "a" ;
B = "b" A / "b" ;
`)
	a := Analyze(g)
	if a.Valued["m.A"] || a.Valued["m.B"] {
		t.Fatalf("valued = %v", a.Valued)
	}
	// Adding one token deep in the cycle flips both.
	g2 := grammarOf(t, `
public S = A ;
A = "a" B / "a" ;
B = [x-z] A / "b" ;
`)
	a2 := Analyze(g2)
	if !a2.Valued["m.A"] || !a2.Valued["m.B"] {
		t.Fatalf("valued = %v", a2.Valued)
	}
}

func TestLint(t *testing.T) {
	g := grammarOf(t, `
public S = Keyword / "x" ;
Keyword = "in" / "int" ;
Dead = "d" ;
memo transient Both = "b" ;
void Discarded = x:[a-z] ;
`)
	warnings := Analyze(g).Lint()
	joined := strings.Join(warnings, "\n")
	for _, frag := range []string{
		`"int" is unreachable (shadowed by earlier "in")`,
		"m.Dead: unreachable",
		"m.Both: unreachable",
		"both memo and transient",
		"bindings in a",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("lint missing %q in:\n%s", frag, joined)
		}
	}
	// A clean grammar lints clean.
	clean := grammarOf(t, `
public S = "int" / "in" ;
`)
	if w := Analyze(clean).Lint(); len(w) != 0 {
		t.Fatalf("clean grammar warned: %v", w)
	}
}

func TestLintBundledGrammarsAreClean(t *testing.T) {
	// The shadowing detector must not fire on the ordered keyword lists of
	// the bundled grammars (they are longest-first on purpose).
	g, err := core.Compose("m", core.MapResolver{"m": `
module m;
public S = Kw ;
void Kw = ("interface" / "int" / "in") ![a-z] ;
`})
	if err != nil {
		t.Fatal(err)
	}
	if w := Analyze(g).Lint(); len(w) != 0 {
		t.Fatalf("longest-first keywords warned: %v", w)
	}
}
