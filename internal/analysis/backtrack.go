package analysis

import "modpeg/internal/peg"

// BacktrackPrefixes returns the productions an ordered parse can invoke
// a second time at the same input position — the memoization set that
// actually pays for itself. A packrat column earns its keep only when
// some choice point re-enters the production at a position it has
// already been tried at, and in a PEG those re-entries are statically
// visible: they are the common leftmost prefixes of expressions that
// compete for the same starting position. Three constructs create such
// competition:
//
//   - ordered choice: when `A = X α / Y β` fails out of the first
//     alternative, the second starts over at the choice's position, so
//     any production on both alternatives' leftmost frontiers is parsed
//     twice there (Conditional's `c:Or "?" … / Or` re-enters Or);
//   - a nullable prefix in a sequence: in `A? B`, when A succeeds empty
//     or fails, B probes the same position A just examined;
//   - left-recursion suffixes: each growth step tries every suffix at
//     the current end, so the suffixes' leftmost frontiers compete.
//
// For each competition group the pairwise intersections of the
// competitors' transitive leftmost-call closures are taken, and only
// the outermost members of each intersection are kept: once the
// outermost shared production memo-hits, the retry never descends to
// the inner ones, so memoizing those would be dead weight (Conditional
// retry hits LogicalOr and never re-probes the tower below it).
//
// The compiled engine (internal/vm) uses this set as its memo policy in
// place of the interpreter's profile-guided inlining: it needs no
// profile, which is what lets registry uploads compile cold.
func (a *Analysis) BacktrackPrefixes() map[string]bool {
	// Transitive closure of the leftmost-call graph, per production.
	direct := make(map[string][]string, len(a.Grammar.Order))
	for _, name := range a.Grammar.Order {
		p := a.Grammar.Prods[name]
		if p.Choice == nil {
			continue
		}
		set := map[string]bool{}
		a.leftCalls(p.Choice, set)
		direct[name] = sortedKeys(set)
	}
	closure := make(map[string]map[string]bool, len(direct))
	for name := range direct {
		seen := map[string]bool{}
		stack := append([]string(nil), direct[name]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, direct[n]...)
		}
		closure[name] = seen
	}

	// expand is a competitor's leftmost frontier: the productions its
	// expression can call before consuming input, plus everything those
	// can left-call in turn.
	expand := func(e peg.Expr) map[string]bool {
		out := map[string]bool{}
		a.leftCalls(e, out)
		for _, name := range sortedKeys(out) {
			for q := range closure[name] {
				out[q] = true
			}
		}
		return out
	}

	out := map[string]bool{}
	mark := func(group []map[string]bool) {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				for p := range group[i] {
					if !group[j][p] {
						continue
					}
					// Keep p unless some other shared production sits
					// strictly above it on the leftmost frontier.
					dominated := false
					for q := range group[i] {
						if q != p && group[j][q] && closure[q][p] && !closure[p][q] {
							dominated = true
							break
						}
					}
					if !dominated {
						out[p] = true
					}
				}
			}
		}
	}

	for _, name := range a.Grammar.Order {
		if !a.Reachable[name] {
			continue
		}
		p := a.Grammar.Prods[name]
		if p.Choice == nil {
			continue
		}
		peg.Walk(p.Choice, func(e peg.Expr) {
			switch e := e.(type) {
			case *peg.Choice:
				if len(e.Alts) < 2 {
					return
				}
				group := make([]map[string]bool, len(e.Alts))
				for i, alt := range e.Alts {
					group[i] = expand(alt)
				}
				mark(group)
			case *peg.Seq:
				// Items up to and including the first non-nullable one
				// all start at the sequence's own position.
				var group []map[string]bool
				for _, it := range e.Items {
					group = append(group, expand(it.Expr))
					if !a.exprNullable(it.Expr) {
						break
					}
				}
				if len(group) >= 2 {
					mark(group)
				}
			case *peg.LeftRec:
				if len(e.Suffixes) < 2 {
					return
				}
				group := make([]map[string]bool, len(e.Suffixes))
				for i, s := range e.Suffixes {
					group[i] = expand(s)
				}
				mark(group)
			}
		})
	}
	return out
}
