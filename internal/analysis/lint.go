package analysis

import (
	"fmt"
	"sort"

	"modpeg/internal/peg"
)

// Lint reports non-fatal grammar smells — issues Check does not reject
// but that usually indicate composition mistakes:
//
//   - productions unreachable from the root (dead weight unless the
//     grammar is a library meant for further composition),
//   - contradictory attribute combinations (memo+transient, void+text),
//   - bindings inside void or text productions (their values are
//     discarded),
//   - alternatives whose first set is fully covered by an *earlier*
//     alternative that can never fail shorter — detected for the simple
//     literal-prefix case ("a" before "ab" makes "ab" unreachable),
//   - public productions never referenced by the grammar (root aside).
//
// The returned messages are sorted and deterministic.
func (a *Analysis) Lint() []string {
	var warnings []string
	warn := func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	g := a.Grammar

	for _, name := range g.Order {
		p := g.Prods[name]
		if !a.Reachable[name] && name != g.Root {
			warn("%s: unreachable from the root", name)
		}
		if p.Attrs.Has(peg.AttrMemo) && p.Attrs.Has(peg.AttrTransient) {
			warn("%s: both memo and transient (memo wins)", name)
		}
		if p.Attrs.Has(peg.AttrVoid) && p.Attrs.Has(peg.AttrText) {
			warn("%s: both void and text (text wins)", name)
		}
		if (p.Attrs.Has(peg.AttrVoid) || p.Attrs.Has(peg.AttrText)) && p.Choice != nil {
			peg.Walk(p.Choice, func(e peg.Expr) {
				if s, ok := e.(*peg.Seq); ok && s.HasBindings() && !s.IsSpliceSeq() {
					warn("%s: bindings in a %s production are discarded",
						name, p.Attrs&(peg.AttrVoid|peg.AttrText))
				}
			})
		}
		if p.Choice != nil {
			a.lintShadowedAlternatives(name, p.Choice, warn)
		}
	}
	sort.Strings(warnings)
	return dedup(warnings)
}

// lintShadowedAlternatives flags the literal-prefix shadowing case: an
// alternative that is a single literal L1 placed before an alternative
// that is a single literal L2 with prefix L1 — L2 can never match.
func (a *Analysis) lintShadowedAlternatives(prod string, c *peg.Choice, warn func(string, ...any)) {
	lits := make([]string, len(c.Alts))
	for i, alt := range c.Alts {
		if len(alt.Items) == 1 {
			if l, ok := alt.Items[0].Expr.(*peg.Literal); ok {
				lits[i] = l.Text
			}
		}
	}
	for i, earlier := range lits {
		if earlier == "" {
			continue
		}
		for j := i + 1; j < len(lits); j++ {
			later := lits[j]
			if later == "" || len(later) <= len(earlier) {
				continue
			}
			if later[:len(earlier)] == earlier {
				warn("%s: alternative %q is unreachable (shadowed by earlier %q)",
					prod, later, earlier)
			}
		}
	}
	// Recurse into nested choices.
	for _, alt := range c.Alts {
		for _, it := range alt.Items {
			peg.Walk(it.Expr, func(e peg.Expr) {
				if nc, ok := e.(*peg.Choice); ok && nc != c {
					a.lintShadowedAlternatives(prod, nc, warn)
				}
			})
		}
	}
}

func dedup(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}
