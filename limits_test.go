package modpeg

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"modpeg/internal/workload"
)

// These tests exercise the resource-governance layer through the public
// facade, against the adversarial corpus: every attack input must be
// stopped by the matching limit kind with a typed *LimitError, and the
// memo-shedding degradation must keep parsing the full corpus in
// bounded space.

// pathologicalParser builds a backtracking (unmemoized) parser for the
// exponential-blowup grammar — the worst case the time limits defend
// against.
func pathologicalParser(t testing.TB) *Parser {
	t.Helper()
	p, err := New("path",
		WithModules(map[string]string{"path": workload.PathologicalGrammar}),
		WithEngine(EngineBacktracking()))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAdversarialDeadline is the headline acceptance bound: an input
// that would take days unbounded returns a typed *LimitError within
// 50ms of a 1ms deadline.
func TestAdversarialDeadline(t *testing.T) {
	p := pathologicalParser(t)
	input := workload.Pathological(40)
	start := time.Now()
	_, err := p.ParseContext(context.Background(), "adversarial", input,
		Limits{MaxParseDuration: time.Millisecond})
	elapsed := time.Since(start)
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != LimitTime {
		t.Fatalf("err = %v, want *LimitError{Kind: LimitTime}", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err does not unwrap to DeadlineExceeded: %v", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("1ms deadline took %v to stop the parse, want <50ms", elapsed)
	}
}

// TestAdversarialCorpusUnderLimits runs every corpus input under the
// limit kind it attacks and checks the typed outcome.
func TestAdversarialCorpusUnderLimits(t *testing.T) {
	corpus := workload.AdversarialCorpus(20000, 1<<20)
	parsers := map[string]*Parser{"path": pathologicalParser(t)}
	for _, mod := range []string{"calc.full", "json.value"} {
		p, err := New(mod)
		if err != nil {
			t.Fatal(err)
		}
		parsers[mod] = p
	}
	ctx := context.Background()
	for _, a := range corpus {
		t.Run(a.Name, func(t *testing.T) {
			p := parsers[a.Module]
			var lim Limits
			var want LimitKind
			switch a.Attacks {
			case "depth":
				lim, want = Limits{MaxCallDepth: 256}, LimitDepth
			case "time":
				lim, want = Limits{MaxParseDuration: time.Millisecond}, LimitTime
			case "memory":
				// Strict mode: the memory attack must hard-fail instead
				// of degrading (shedding is covered below).
				lim, want = Limits{MaxMemoBytes: 64 << 10, Strict: true}, LimitMemo
			}
			_, err := p.ParseContext(ctx, a.Name, a.Input, lim)
			var le *LimitError
			if !errors.As(err, &le) || le.Kind != want {
				t.Fatalf("%s under %s limit: err = %v, want kind %v", a.Name, a.Attacks, err, want)
			}
			// The same input parses clean with generous budgets — the
			// corpus attacks resources, not the grammars. (Except the
			// exponential-backtracking input, which no budget makes
			// feasible on an unmemoized engine — that is its point.)
			if a.Attacks == "time" {
				return
			}
			if _, err := p.ParseContext(ctx, a.Name, a.Input, Limits{
				MaxCallDepth:     1 << 20,
				MaxMemoBytes:     1 << 30,
				MaxParseDuration: 2 * time.Minute,
			}); err != nil {
				t.Fatalf("%s rejected under generous budgets: %v", a.Name, err)
			}
		})
	}
}

// TestMemoSheddingBoundsFootprint parses the memory attacks of the
// corpus under a tight memo budget WITHOUT Strict: every parse must
// succeed (graceful degradation) with its reported memo footprint
// within the budget.
func TestMemoSheddingBoundsFootprint(t *testing.T) {
	const budget = 64 << 10
	for _, mod := range []string{"calc.full", "json.value"} {
		p, err := New(mod)
		if err != nil {
			t.Fatal(err)
		}
		s := p.NewSession()
		for _, a := range workload.AdversarialCorpus(2000, 1<<20) {
			if a.Module != mod || a.Attacks != "memory" {
				continue
			}
			want, full, err := s.ParseWithStats(a.Name, a.Input)
			if err != nil {
				t.Fatal(err)
			}
			if full.MemoBytes <= budget {
				t.Fatalf("%s: input too small to need shedding (%d memo bytes)", a.Name, full.MemoBytes)
			}
			v, stats, err := s.ParseContext(context.Background(), a.Name, a.Input,
				Limits{MaxMemoBytes: budget})
			if err != nil {
				t.Fatalf("%s: degraded parse failed: %v", a.Name, err)
			}
			if stats.MemoSheds != 1 {
				t.Fatalf("%s: MemoSheds = %d, want 1", a.Name, stats.MemoSheds)
			}
			if stats.MemoBytes > budget {
				t.Fatalf("%s: footprint %d exceeds budget %d after shedding", a.Name, stats.MemoBytes, budget)
			}
			if !ValuesEqual(v, want) {
				t.Fatalf("%s: shedding changed the semantic value", a.Name)
			}
		}
	}
}

func TestInputSizeLimit(t *testing.T) {
	p, err := New("calc.full")
	if err != nil {
		t.Fatal(err)
	}
	big := workload.Expression(workload.Config{Seed: 3, Size: 1 << 16})
	_, err = p.ParseContext(context.Background(), "big", big, Limits{MaxInputBytes: 1 << 10})
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != LimitInput {
		t.Fatalf("err = %v, want input-bytes limit", err)
	}
}

// TestParseBatchContextCancellation checks the pool-drain contract on
// the public batch API: cancelling mid-batch returns promptly with
// every result slot holding a cancellation error.
func TestParseBatchContextCancellation(t *testing.T) {
	p := pathologicalParser(t)
	inputs := make([]string, 12)
	for i := range inputs {
		inputs[i] = workload.Pathological(40)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := p.ParseBatchContext(ctx, "batch", inputs, 4, Limits{})
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("cancellation drained the batch in %v, want <250ms", elapsed)
	}
	for i, r := range results {
		var le *LimitError
		if !errors.As(r.Err, &le) || le.Kind != LimitCanceled {
			t.Fatalf("result %d: err = %v, want cancellation", i, r.Err)
		}
	}
}

// TestConcurrentCancellationPublic cancels one context shared by many
// governed parses — run under -race this doubles as the data-race check
// on the governance state.
func TestConcurrentCancellationPublic(t *testing.T) {
	p := pathologicalParser(t)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = p.ParseContext(ctx, fmt.Sprintf("g%d", g),
				workload.Pathological(40), Limits{})
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()
	for g, err := range errs {
		var le *LimitError
		if !errors.As(err, &le) || le.Kind != LimitCanceled {
			t.Fatalf("goroutine %d: err = %v, want cancellation", g, err)
		}
	}
}

// TestGovernedFacadeMatchesParse pins that the governed facade with
// background context and zero limits is behaviourally identical to
// Parse on a real grammar.
func TestGovernedFacadeMatchesParse(t *testing.T) {
	p, err := New("json.value")
	if err != nil {
		t.Fatal(err)
	}
	doc := workload.JSONDoc(workload.Config{Seed: 9, Size: 4096})
	want, err := p.Parse("doc", doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ParseContext(context.Background(), "doc", doc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !ValuesEqual(got, want) {
		t.Fatal("ParseContext(background, zero limits) drifted from Parse")
	}
}
