.PHONY: build test verify bench experiments

build:
	go build ./...

test:
	go test ./...

# Full gate: build + vet + race-enabled test suite.
verify:
	sh scripts/verify.sh

# Session-residency benchmarks; writes BENCH_1.json.
bench:
	sh scripts/bench.sh

experiments:
	go run ./cmd/modpeg experiment all
