.PHONY: build test verify bench profile experiments

build:
	go build ./...

test:
	go test ./...

# Full gate: gofmt drift + build + vet + race-enabled test suite.
verify:
	sh scripts/verify.sh

# Session-residency + observability-overhead benchmarks; writes
# BENCH_2.json.
bench:
	sh scripts/bench.sh

# Per-production profile of the bundled Java grammar on a generated
# 40 KB workload: hot productions, memo behaviour, engine metrics.
profile:
	go run ./cmd/modpeg profile -gen 40 -n 3 -top 15 -metrics java.core

experiments:
	go run ./cmd/modpeg experiment all
