.PHONY: build test verify bench profile experiments

build:
	go build ./...

test:
	go test ./...

# Fast gate: gofmt drift + build + vet + test suite. CI runs the race
# detector as a separate job; reproduce it with `go test -race ./...`.
verify:
	sh scripts/verify.sh

# Session-residency, observability-overhead, resource-governance,
# incremental-reparse, and telemetry-overhead benchmarks; writes
# BENCH_5.json.
bench:
	sh scripts/bench.sh

# Gate on the allocation canary in a bench JSON (default BENCH_5.json):
# the void-grammar steady state must stay at exactly 0 allocs/op.
bench-check:
	sh scripts/bench_check.sh

# Per-production profile of the bundled Java grammar on a generated
# 40 KB workload: hot productions, memo behaviour, engine metrics.
profile:
	go run ./cmd/modpeg profile -gen 40 -n 3 -top 15 -metrics java.core

experiments:
	go run ./cmd/modpeg experiment all
