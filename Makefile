.PHONY: build test verify bench profile experiments

build:
	go build ./...

test:
	go test ./...

# Fast gate: gofmt drift + build + vet + test suite. CI runs the race
# detector as a separate job; reproduce it with `go test -race ./...`.
verify:
	sh scripts/verify.sh

# Engine-comparison (40 KB java), compiled-vs-interpreter paired
# comparison, session-residency, observability-overhead, resource-
# governance, incremental-reparse, and telemetry-overhead benchmarks;
# writes BENCH_9.json.
bench:
	sh scripts/bench.sh

# Gate a bench JSON (default BENCH_9.json): expected derived rows
# present, void-grammar steady state at exactly 0 allocs/op on both
# engines, the java-40KB-ns-per-byte hot-path ratchet, and the
# compiled-engine speedup floors.
bench-check:
	sh scripts/bench_check.sh

# Old-vs-new ns/op deltas for the Table 3 engine rows.
bench-diff:
	sh scripts/benchdiff.sh BENCH_6.json BENCH_9.json

# Per-production profile of the bundled Java grammar on a generated
# 40 KB workload: hot productions, memo behaviour, engine metrics.
profile:
	go run ./cmd/modpeg profile -gen 40 -n 3 -top 15 -metrics java.core

experiments:
	go run ./cmd/modpeg experiment all
