package modpeg

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestParseWithProfileFacade checks the public profiling entry point on
// a bundled grammar: the profile's call total must equal the engine's
// own Stats.Calls, and the parse result must not drift from Parse.
func TestParseWithProfileFacade(t *testing.T) {
	p, err := New("java.core")
	if err != nil {
		t.Fatal(err)
	}
	input := "class A { int f(int x) { return x * (x + 1); } }"
	v, stats, prof, err := p.ParseWithProfile("in", input)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Parse("in", input)
	if err != nil {
		t.Fatal(err)
	}
	if !ValuesEqual(v, want) {
		t.Fatalf("profiled value drift: %s vs %s", FormatValue(v), FormatValue(want))
	}
	if got := prof.TotalCalls(); got != int64(stats.Calls) {
		t.Errorf("profile calls %d, stats calls %d", got, stats.Calls)
	}
	report := prof.Report(10)
	if !strings.Contains(report, "production") || !strings.Contains(report, "total") {
		t.Fatalf("malformed report:\n%s", report)
	}
	// Session facade agrees.
	_, sStats, sProf, err := p.NewSession().ParseWithProfile("in", input)
	if err != nil {
		t.Fatal(err)
	}
	if sProf.TotalCalls() != int64(sStats.Calls) || sStats != stats {
		t.Errorf("session profile drift: %d calls vs stats %v", sProf.TotalCalls(), sStats)
	}
}

// TestProfilerHookFacade aggregates one Profiler across parses driven
// through the public hook seam.
func TestProfilerHookFacade(t *testing.T) {
	p, err := New("calc.full")
	if err != nil {
		t.Fatal(err)
	}
	pr := p.NewProfiler()
	var want int64
	for _, in := range []string{"1+2**3", "4*5", "(1+2)*(3-4)"} {
		_, st, err := p.ParseWithHook("in", in, pr)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(st.Calls)
	}
	if got := pr.Profile().TotalCalls(); got != want {
		t.Errorf("aggregated calls %d, want %d", got, want)
	}
}

// TestParseBatchProfiledFacade cross-checks the batch profile against
// the aggregated batch stats.
func TestParseBatchProfiledFacade(t *testing.T) {
	p, err := New("json.value")
	if err != nil {
		t.Fatal(err)
	}
	var inputs []string
	for i := 0; i < 20; i++ {
		inputs = append(inputs, fmt.Sprintf(`{"k%d": [%d, true, "v"]}`, i, i))
	}
	inputs = append(inputs, "not json")
	results, prof := p.ParseBatchProfiled("doc", inputs, 4)
	if len(results) != len(inputs) {
		t.Fatalf("results = %d", len(results))
	}
	if results[len(results)-1].Err == nil {
		t.Fatal("invalid input must fail in place")
	}
	if got, want := prof.TotalCalls(), int64(BatchStats(results).Calls); got != want {
		t.Errorf("batch profile calls %d, stats calls %d", got, want)
	}
}

// TestMetricsFacade exercises the registry snapshot through the public
// API.
func TestMetricsFacade(t *testing.T) {
	p, err := New("calc.core")
	if err != nil {
		t.Fatal(err)
	}
	ResetMetrics()
	if _, err := p.Parse("in", "1+2*3"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse("in", "1+"); err == nil {
		t.Fatal("expected syntax error")
	}
	m := Metrics()
	if m.ParsesStarted != 2 || m.ParsesCompleted != 1 || m.ParsesFailed != 1 {
		t.Errorf("metrics = %+v, want 2 started / 1 completed / 1 failed", m)
	}
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["parses_started"] != float64(2) {
		t.Errorf("JSON parses_started = %v", decoded["parses_started"])
	}
	if _, present := decoded["parse_duration_ns"]; !present {
		t.Error("JSON snapshot missing parse_duration_ns histogram")
	}
	ResetMetrics()
}
