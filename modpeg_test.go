package modpeg

import (
	"strings"
	"testing"
)

func TestNewBundledCalc(t *testing.T) {
	p, err := New("calc.full")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Parse("in", "1 + 2**3")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatValue(v); got != `(Add (Num "1") (Pow (Num "2") (Num "3")))` {
		t.Fatalf("value = %s", got)
	}
	if p.Top() != "calc.full" {
		t.Fatal("Top")
	}
	if len(p.Modules()) < 4 {
		t.Fatalf("modules = %v", p.Modules())
	}
	if p.Check() != nil {
		t.Fatal("Check must be clean")
	}
	if s := p.Stats(); s.Productions == 0 {
		t.Fatal("stats empty")
	}
	if !strings.Contains(p.Grammar(), "calc.core.Sum") {
		t.Fatal("Grammar rendering")
	}
	if !strings.Contains(p.OptimizationReport(), "transient") {
		t.Fatalf("report = %q", p.OptimizationReport())
	}
	if p.OptimizedStats().Productions > p.Stats().Productions {
		t.Fatal("optimization must not add productions here")
	}
	if !strings.Contains(p.OptimizedGrammar(), "leftrec") {
		t.Fatal("optimized grammar must show leftrec rewrite")
	}
}

func TestNewWithInMemoryModules(t *testing.T) {
	p, err := New("tiny", WithModules(map[string]string{
		"tiny": "module tiny;\npublic S = $([a-z]+) !. ;\n",
	}), WithoutBundledGrammars())
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Parse("in", "hello")
	if err != nil {
		t.Fatal(err)
	}
	tok, ok := v.(*Token)
	if !ok || tok.Text != "hello" {
		t.Fatalf("value = %v", FormatValue(v))
	}
}

func TestNewUserModulesCanExtendBundled(t *testing.T) {
	p, err := New("user.top", WithModules(map[string]string{
		"user.top": `
module user.top;
import calc.core;
import user.ext;
option root = calc.core.Program;
`,
		"user.ext": `
module user.ext;
modify calc.core;
import calc.lex;
Atom += <neg> MINUS e:Atom @Neg before <num> ;
`,
	}))
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Parse("in", "-3 + 4")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatValue(v); got != `(Add (Neg (Num "3")) (Num "4"))` {
		t.Fatalf("value = %s", got)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("calc.full", WithoutBundledGrammars()); err == nil {
		t.Fatal("no sources must fail")
	}
	if _, err := New("no.such.module"); err == nil {
		t.Fatal("unknown module must fail")
	}
	if _, err := New("bad", WithModules(map[string]string{
		"bad": "module bad;\npublic S = Missing ;\n",
	})); err == nil {
		t.Fatal("composition errors must surface")
	}
}

func TestEngineAndOptimizationOptions(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"optimized", nil},
		{"naive", []Option{
			WithOptimizations(BaselineOptimizations()),
			WithEngine(EngineNaivePackrat()),
		}},
		{"backtracking", []Option{WithEngine(EngineBacktracking())}},
	} {
		p, err := New("json.value", tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		v, stats, err := p.ParseWithStats("in", `{"a": [1, 2, {"b": null}]}`)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if FindNode(v, "Member") == nil {
			t.Fatalf("%s: no Member node", tc.name)
		}
		if tc.name == "backtracking" && stats.MemoStores != 0 {
			t.Fatal("backtracking must not memoize")
		}
		if tc.name == "naive" && stats.MemoStores == 0 {
			t.Fatal("naive must memoize")
		}
	}
}

func TestParseErrorsAreReported(t *testing.T) {
	p, err := New("json.value")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Parse("doc.json", `{"a": }`)
	if err == nil || !strings.Contains(err.Error(), "doc.json") {
		t.Fatalf("err = %v", err)
	}
}

func TestGenerateGo(t *testing.T) {
	p, err := New("calc.core")
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.GenerateGo("calcparser")
	if err != nil {
		t.Fatal(err)
	}
	s := string(src)
	if !strings.Contains(s, "package calcparser") || !strings.Contains(s, "func Parse(input string)") {
		t.Fatalf("generated source looks wrong:\n%.200s", s)
	}
}

func TestValueHelpers(t *testing.T) {
	p, err := New("calc.core")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Parse("in", "1+2*3")
	if err != nil {
		t.Fatal(err)
	}
	if TextOf(v) != "123" {
		t.Fatalf("TextOf = %q", TextOf(v))
	}
	if len(FindAllNodes(v, "Num")) != 3 {
		t.Fatal("FindAllNodes")
	}
	if !ValuesEqual(v, v) {
		t.Fatal("ValuesEqual")
	}
	if !strings.Contains(IndentValue(v), "Mul") {
		t.Fatal("IndentValue")
	}
	if BundledGrammars()[0] == "" {
		t.Fatal("BundledGrammars")
	}
}

func TestLintAndJSONAndTraceAPI(t *testing.T) {
	p, err := New("smelly", WithModules(map[string]string{
		"smelly": "module smelly;\npublic S = \"a\" / \"ab\" ;\nDead = \"d\" ;\n",
	}))
	if err != nil {
		t.Fatal(err)
	}
	warnings := p.Lint()
	if len(warnings) != 2 {
		t.Fatalf("lint = %v", warnings)
	}

	// calc.full's pow extension retries Atom at the same position, so the
	// trace is guaranteed to show a memo hit.
	calc, err := New("calc.full")
	if err != nil {
		t.Fatal(err)
	}
	v, err := calc.Parse("in", "1+2")
	if err != nil {
		t.Fatal(err)
	}
	js, err := ValueToJSON(v)
	if err != nil || !strings.Contains(js, `"name": "Add"`) {
		t.Fatalf("json = %v / %.80s", err, js)
	}

	var trace strings.Builder
	if _, err := calc.ParseWithTrace("in", "1+2", &trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), "memo-hit") {
		t.Fatal("trace must show memo activity")
	}
}

func TestSessionFacade(t *testing.T) {
	p, err := New("calc.full")
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	inputs := []string{"1 + 2**3", "4*5", "1 + 2**3"}
	for _, in := range inputs {
		want, wantStats, err := p.ParseWithStats("in", in)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := s.ParseWithStats("in", in)
		if err != nil {
			t.Fatal(err)
		}
		if !ValuesEqual(got, want) {
			t.Fatalf("input %q: session %s, cold %s", in, FormatValue(got), FormatValue(want))
		}
		if gotStats != wantStats {
			t.Fatalf("input %q: stats drift %v vs %v", in, gotStats, wantStats)
		}
	}
	if _, err := s.Parse("bad", "1 +"); err == nil {
		t.Fatal("session must propagate parse errors")
	}
	if v, err := s.Parse("in", "2*3"); err != nil || FormatValue(v) != `(Mul (Num "2") (Num "3"))` {
		t.Fatalf("session after failure: %v %v", v, err)
	}
}

func TestParseBatchFacade(t *testing.T) {
	p, err := New("json.value")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []string{
		`{"a": 1, "b": [true, false]}`,
		`not json`,
		`[1, 2, 3]`,
		`"hello"`,
	}
	results := p.ParseBatch("doc", inputs, 0)
	if len(results) != len(inputs) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		want, err := p.Parse("x", inputs[i])
		if (err == nil) != (r.Err == nil) {
			t.Fatalf("input %d: batch err %v, direct err %v", i, r.Err, err)
		}
		if r.Err == nil && !ValuesEqual(r.Value, want) {
			t.Fatalf("input %d: %s vs %s", i, FormatValue(r.Value), FormatValue(want))
		}
	}
	if results[1].Err == nil {
		t.Fatal("invalid input must fail in place")
	}
	if !strings.Contains(results[1].Err.Error(), "doc[1]") {
		t.Fatalf("batch error must carry the indexed name: %v", results[1].Err)
	}
	total := BatchStats(results)
	if total.Calls <= results[0].Stats.Calls {
		t.Fatalf("aggregate stats too small: %v", total)
	}
}

// TestSteadyStateAllocsJava bounds the pooled path on a real grammar: a
// warm session parsing the Java-subset corpus must allocate at most a
// small fraction of a cold parse (only value slabs and list headers
// remain; the parser machinery is recycled).
func TestSteadyStateAllocsJava(t *testing.T) {
	p, err := New("java.core")
	if err != nil {
		t.Fatal(err)
	}
	input := "class A { int f(int x) { return x * (x + 1); } void g() { f(2); } }"
	cold := testing.AllocsPerRun(10, func() {
		if _, err := p.NewSession().Parse("in", input); err != nil {
			t.Fatal(err)
		}
	})
	s := p.NewSession()
	s.Parse("in", input)
	warm := testing.AllocsPerRun(10, func() {
		if _, err := s.Parse("in", input); err != nil {
			t.Fatal(err)
		}
	})
	// Generous bound: the warm path must shed at least half of the cold
	// allocations even on this small input (on corpus-sized inputs the
	// reduction is >95%; see BenchmarkTable5Sessions).
	if warm > cold/2 {
		t.Errorf("warm session allocs = %.1f, cold = %.1f: want warm <= cold/2", warm, cold)
	}
}

func TestDocumentFacade(t *testing.T) {
	p, err := New("java.core")
	if err != nil {
		t.Fatal(err)
	}
	src := "class A { int f() { int state = 1; state = state + 2; return state; } }"
	d := p.NewDocument("A.java", src)
	if d.Err() != nil {
		t.Fatalf("initial parse: %v", d.Err())
	}
	// Insert a statement; the result must match a from-scratch parse.
	at := strings.Index(src, "state = state") // insert before this statement
	v, stats, err := d.Apply(Edit{Off: at, NewLen: 11, Text: "state = 9; "})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	scratch, err := p.Parse("A.java", d.Text())
	if err != nil {
		t.Fatal(err)
	}
	if !ValuesEqual(v, scratch) {
		t.Fatalf("incremental value diverges:\n doc:     %s\n scratch: %s",
			FormatValue(v), FormatValue(scratch))
	}
	if stats.MemoReused == 0 {
		t.Fatalf("no memo reuse on small edit: %+v", stats)
	}
	if d.Value() == nil || d.Stats() != stats {
		t.Fatal("Document accessors out of sync with Apply result")
	}

	// Breaking and fixing the document reports errors exactly as Parse.
	bad := strings.Index(d.Text(), "()")
	if _, _, err := d.Apply(Edit{Off: bad, OldLen: 1, NewLen: 1, Text: "*"}); err == nil {
		t.Fatalf("mangled document must fail to parse: %q", d.Text())
	}
	if _, perr := p.Parse("A.java", d.Text()); perr == nil || perr.Error() != d.Err().Error() {
		t.Fatalf("document error diverges from Parse:\n doc:   %v\n parse: %v", d.Err(), perr)
	}
	if _, _, err := d.Apply(Edit{Off: bad, OldLen: 1, NewLen: 1, Text: "("}); err != nil {
		t.Fatalf("fixing edit: %v", err)
	}

	// Invalid edits are rejected without touching the document.
	before := d.Text()
	if _, _, err := d.Apply(Edit{Off: len(before) + 1, NewLen: 1, Text: "x"}); err == nil {
		t.Fatal("out-of-bounds edit accepted")
	}
	if d.Text() != before {
		t.Fatal("rejected edit mutated the document")
	}

	// The incremental counters reach the process-wide metrics registry.
	m := Metrics()
	if m.IncrementalApplies == 0 || m.MemoEntriesReused == 0 {
		t.Fatalf("metrics registry missed incremental activity: %+v", m)
	}
}
