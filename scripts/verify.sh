#!/bin/sh
# verify.sh — the repo's full correctness gate: build everything, vet
# everything, and run the whole test suite under the race detector (the
# session pool and ParseAll make concurrency a first-class code path).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...
echo "verify: OK"
