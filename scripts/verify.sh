#!/bin/sh
# verify.sh — the repo's fast correctness gate: formatting drift, build,
# vet, and the whole test suite. The race detector runs as its own CI
# job (see .github/workflows/ci.yml) so this gate stays quick enough to
# run on every change; use `go test -race ./...` directly when touching
# the session pool, ParseAll/ParseBatchContext, or the governance layer.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
fmt_drift=$(gofmt -l .)
if [ -n "$fmt_drift" ]; then
	echo "gofmt drift in:" >&2
	echo "$fmt_drift" >&2
	exit 1
fi
echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "verify: OK"
