#!/bin/sh
# verify.sh — the repo's full correctness gate: formatting drift, build,
# vet, and the whole test suite under the race detector (the session
# pool, ParseAll, and the profiled batch path make concurrency a
# first-class code path).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
fmt_drift=$(gofmt -l .)
if [ -n "$fmt_drift" ]; then
	echo "gofmt drift in:" >&2
	echo "$fmt_drift" >&2
	exit 1
fi
echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...
echo "verify: OK"
